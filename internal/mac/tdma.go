// Package mac implements the medium-access algorithms KARYON studies
// (paper Sec. V-A2): a self-stabilizing TDMA slot-allocation algorithm in
// the style of Leone & Schiller [25], decentralized TDMA pulse alignment
// without external time sources in the style of Mustafa et al. [27], and a
// CSMA/CA baseline for the utilization comparison.
package mac

import (
	"fmt"

	"karyon/internal/sim"
	"karyon/internal/wireless"
)

// Beacon is the frame payload TDMA nodes exchange: the sender's claimed
// slot plus the slot occupancy it heard during the previous frame, which is
// how colliding nodes (who cannot hear each other) learn about conflicts.
type Beacon struct {
	ID   wireless.NodeID
	Slot int
	// Heard maps slot -> owner heard in the previous frame. Slots in which
	// energy was sensed but no beacon decoded (collision) map to -1.
	Heard map[int]wireless.NodeID
}

// collisionMark marks a slot where a collision (undecodable energy) was
// observed.
const collisionMark wireless.NodeID = -1

// TDMAConfig parameterizes the self-stabilizing TDMA algorithm.
type TDMAConfig struct {
	// Slots per TDMA frame.
	Slots int
	// SlotDuration is the length of one slot; it must exceed the medium's
	// airtime plus propagation delay.
	SlotDuration sim.Time
	// ClaimProb is the probability an unclaimed node attempts a claim in a
	// free slot each frame (randomized symmetry breaking).
	ClaimProb float64
	// BackoffProb is the probability a node involved in a detected
	// conflict releases its slot.
	BackoffProb float64
}

// DefaultTDMAConfig returns parameters suitable for VANET beaconing: a
// 100-slot frame of 1 ms slots (10 Hz beacons).
func DefaultTDMAConfig() TDMAConfig {
	return TDMAConfig{
		Slots:        32,
		SlotDuration: sim.Millisecond,
		ClaimProb:    0.5,
		BackoffProb:  0.5,
	}
}

// TDMANode runs the self-stabilizing slot-allocation algorithm on one
// radio. Construct with NewTDMANode, then Start.
type TDMANode struct {
	cfg    TDMAConfig
	kernel *sim.Kernel
	radio  *wireless.Radio

	slot int // claimed slot, -1 when unclaimed
	// heardThisFrame accumulates slot -> owner during the current frame.
	heardThisFrame map[int]wireless.NodeID
	// heardLastFrame is the completed previous frame's observation.
	heardLastFrame map[int]wireless.NodeID
	// conflict is set when evidence shows our own slot is contested.
	conflict bool

	ticker  *sim.Ticker
	stopped bool

	// SlotChanges counts claim/release transitions (stability metric).
	SlotChanges int
	// TxCount counts transmitted beacons.
	TxCount int
}

// NewTDMANode creates a node over the radio. The radio's receive handler
// is taken over by the node.
func NewTDMANode(kernel *sim.Kernel, radio *wireless.Radio, cfg TDMAConfig) (*TDMANode, error) {
	if cfg.Slots < 2 {
		return nil, fmt.Errorf("mac: TDMA needs at least 2 slots, got %d", cfg.Slots)
	}
	if cfg.SlotDuration <= 0 {
		return nil, fmt.Errorf("mac: slot duration must be positive")
	}
	n := &TDMANode{
		cfg:            cfg,
		kernel:         kernel,
		radio:          radio,
		slot:           -1,
		heardThisFrame: make(map[int]wireless.NodeID),
		heardLastFrame: make(map[int]wireless.NodeID),
	}
	radio.OnReceive(n.onFrame)
	return n, nil
}

// Slot returns the node's claimed slot, or -1.
func (n *TDMANode) Slot() int { return n.slot }

// ID returns the underlying radio's node id.
func (n *TDMANode) ID() wireless.NodeID { return n.radio.ID() }

// Start begins frame processing. Each node slices virtual time into frames
// of Slots*SlotDuration and schedules its own slot transmissions.
func (n *TDMANode) Start() {
	frame := sim.Time(n.cfg.Slots) * n.cfg.SlotDuration
	// Stagger per-slot ticks: schedule a tick at the start of every slot.
	t, err := n.kernel.Every(n.cfg.SlotDuration, n.onSlotTick)
	if err != nil {
		// Config validated in NewTDMANode; unreachable.
		return
	}
	n.ticker = t
	_ = frame
}

// Stop halts the node (crash or shutdown).
func (n *TDMANode) Stop() {
	n.stopped = true
	if n.ticker != nil {
		n.ticker.Stop()
	}
}

// currentSlot returns the global slot index within the frame at time t.
func (n *TDMANode) currentSlot(t sim.Time) int {
	return int(t/n.cfg.SlotDuration) % n.cfg.Slots
}

// onSlotTick fires at each slot boundary. At the start of slot s: transmit
// if s is ours; at the start of slot 0 a new frame begins and the previous
// frame's observations are rolled over and acted upon.
func (n *TDMANode) onSlotTick() {
	if n.stopped {
		return
	}
	s := n.currentSlot(n.kernel.Now())
	if s == 0 {
		n.endOfFrame()
	}
	if n.slot == s {
		n.transmit()
	}
}

func (n *TDMANode) transmit() {
	heard := make(map[int]wireless.NodeID, len(n.heardLastFrame))
	for k, v := range n.heardLastFrame {
		heard[k] = v
	}
	n.radio.Broadcast(Beacon{ID: n.radio.ID(), Slot: n.slot, Heard: heard})
	n.TxCount++
}

// onFrame handles a received beacon.
func (n *TDMANode) onFrame(f wireless.Frame) {
	if n.stopped {
		return
	}
	b, ok := f.Payload.(Beacon)
	if !ok {
		return
	}
	slot := n.currentSlot(f.SentAt)
	n.heardThisFrame[slot] = b.ID
	// Conflict evidence: a neighbor heard our slot occupied by someone
	// else, or observed a collision in it, while we believe we own it.
	if n.slot >= 0 {
		if owner, reported := b.Heard[n.slot]; reported && owner != n.radio.ID() {
			n.conflict = true
		}
		// A beacon decoded in our own slot from another node means the
		// neighborhood has a direct double-claim.
		if slot == n.slot && b.ID != n.radio.ID() {
			n.conflict = true
		}
	}
}

// endOfFrame rolls frame state and runs the stabilization step.
func (n *TDMANode) endOfFrame() {
	rng := n.kernel.Rand()
	// Additional conflict evidence: we own a slot but a neighbor's report
	// shows a collision mark there.
	if n.slot >= 0 {
		if owner, ok := n.heardThisFrame[n.slot]; ok && owner != n.radio.ID() {
			n.conflict = true
		}
	}
	if n.conflict && n.slot >= 0 {
		if rng.Float64() < n.cfg.BackoffProb {
			n.slot = -1
			n.SlotChanges++
		}
	}
	n.conflict = false

	if n.slot < 0 && rng.Float64() < n.cfg.ClaimProb {
		if s, ok := n.pickFreeSlot(rng); ok {
			n.slot = s
			n.SlotChanges++
		}
	}

	n.heardLastFrame = n.heardThisFrame
	n.heardThisFrame = make(map[int]wireless.NodeID, len(n.heardLastFrame))
}

// pickFreeSlot chooses uniformly among slots not heard occupied last frame.
func (n *TDMANode) pickFreeSlot(rng interface{ Intn(int) int }) (int, bool) {
	free := make([]int, 0, n.cfg.Slots)
	for s := 0; s < n.cfg.Slots; s++ {
		if _, occupied := n.heardLastFrame[s]; !occupied {
			free = append(free, s)
		}
	}
	if len(free) == 0 {
		return 0, false
	}
	return free[rng.Intn(len(free))], true
}

// Converged reports whether every node holds a slot and, within each
// radio neighborhood, slots are unique — the TDMA safety property.
func Converged(nodes []*TDMANode) bool {
	for _, n := range nodes {
		if n.stopped {
			continue
		}
		if n.slot < 0 {
			return false
		}
	}
	for _, a := range nodes {
		if a.stopped {
			continue
		}
		for _, id := range a.radio.Neighbors() {
			for _, b := range nodes {
				if b.stopped || b.radio.ID() != id {
					continue
				}
				if b.slot == a.slot {
					return false
				}
			}
		}
	}
	return true
}
