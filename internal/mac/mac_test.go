package mac

import (
	"testing"

	"karyon/internal/sim"
	"karyon/internal/wireless"
)

func tdmaSetup(t *testing.T, seed int64, n int, cfg TDMAConfig, spacing float64) (*sim.Kernel, *TDMANetwork) {
	t.Helper()
	k := sim.NewKernel(seed)
	mcfg := wireless.DefaultConfig()
	mcfg.Airtime = 200 * sim.Microsecond
	medium := wireless.NewMedium(k, mcfg)
	nw := NewTDMANetwork(k, medium, cfg)
	for i := 0; i < n; i++ {
		node, err := nw.AddNode(wireless.NodeID(i), wireless.Position{X: float64(i) * spacing})
		if err != nil {
			t.Fatal(err)
		}
		node.Start()
	}
	return k, nw
}

func TestTDMAValidation(t *testing.T) {
	k := sim.NewKernel(1)
	medium := wireless.NewMedium(k, wireless.DefaultConfig())
	r, err := medium.Attach(1, wireless.Position{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTDMANode(k, r, TDMAConfig{Slots: 1, SlotDuration: sim.Millisecond}); err == nil {
		t.Fatal("1-slot config should be rejected")
	}
	if _, err := NewTDMANode(k, r, TDMAConfig{Slots: 4, SlotDuration: 0}); err == nil {
		t.Fatal("zero slot duration should be rejected")
	}
}

func TestTDMASingleNodeClaims(t *testing.T) {
	k, nw := tdmaSetup(t, 1, 1, DefaultTDMAConfig(), 10)
	k.RunFor(10 * 32 * sim.Millisecond)
	node, _ := nw.Node(0)
	if node.Slot() < 0 {
		t.Fatal("lone node never claimed a slot")
	}
}

func TestTDMAConvergesSmallClique(t *testing.T) {
	cfg := DefaultTDMAConfig()
	k, nw := tdmaSetup(t, 7, 8, cfg, 10) // all in range of each other
	frame := sim.Time(cfg.Slots) * cfg.SlotDuration
	deadline := 200
	converged := -1
	for f := 0; f < deadline; f++ {
		k.RunFor(frame)
		if nw.Converged() {
			converged = f
			break
		}
	}
	if converged < 0 {
		t.Fatal("8-node clique did not converge within 200 frames")
	}
	// Stability: once converged, slots must not change (closure).
	nodes := nw.NodeList()
	slots := make([]int, len(nodes))
	for i, n := range nodes {
		slots[i] = n.Slot()
	}
	k.RunFor(50 * frame)
	for i, n := range nodes {
		if n.Slot() != slots[i] {
			t.Fatalf("node %d changed slot after convergence: %d -> %d", i, slots[i], n.Slot())
		}
	}
	if !nw.Converged() {
		t.Fatal("network left converged state")
	}
}

func TestTDMAUniqueSlotsInNeighborhood(t *testing.T) {
	cfg := DefaultTDMAConfig()
	cfg.Slots = 16
	k, nw := tdmaSetup(t, 11, 10, cfg, 10)
	frame := sim.Time(cfg.Slots) * cfg.SlotDuration
	k.RunFor(300 * frame)
	if !nw.Converged() {
		t.Fatal("did not converge")
	}
	seen := map[int]bool{}
	for _, n := range nw.NodeList() {
		if seen[n.Slot()] {
			t.Fatalf("duplicate slot %d in clique", n.Slot())
		}
		seen[n.Slot()] = true
	}
}

func TestTDMASpatialReuse(t *testing.T) {
	// Two far-apart cliques may reuse slots; convergence must still hold.
	cfg := DefaultTDMAConfig()
	cfg.Slots = 4
	k := sim.NewKernel(13)
	mcfg := wireless.DefaultConfig()
	mcfg.Range = 50
	medium := wireless.NewMedium(k, mcfg)
	nw := NewTDMANetwork(k, medium, cfg)
	// Clique A at x~0, clique B at x~10000; 3 nodes each with 4 slots.
	for i := 0; i < 3; i++ {
		a, err := nw.AddNode(wireless.NodeID(i), wireless.Position{X: float64(i) * 5})
		if err != nil {
			t.Fatal(err)
		}
		a.Start()
		b, err := nw.AddNode(wireless.NodeID(10+i), wireless.Position{X: 10000 + float64(i)*5})
		if err != nil {
			t.Fatal(err)
		}
		b.Start()
	}
	frame := sim.Time(cfg.Slots) * cfg.SlotDuration
	k.RunFor(400 * frame)
	if !nw.Converged() {
		t.Fatal("two-clique network did not converge")
	}
}

func TestTDMARecoversFromChurn(t *testing.T) {
	cfg := DefaultTDMAConfig()
	k, nw := tdmaSetup(t, 17, 6, cfg, 10)
	frame := sim.Time(cfg.Slots) * cfg.SlotDuration
	k.RunFor(200 * frame)
	if !nw.Converged() {
		t.Fatal("initial convergence failed")
	}
	// A new node joins; the network must re-stabilize (self-stabilization
	// from a perturbed configuration).
	joiner, err := nw.AddNode(100, wireless.Position{X: 30})
	if err != nil {
		t.Fatal(err)
	}
	joiner.Start()
	reconverged := false
	for f := 0; f < 300; f++ {
		k.RunFor(frame)
		if nw.Converged() {
			reconverged = true
			break
		}
	}
	if !reconverged {
		t.Fatal("network did not re-converge after join")
	}
	// A node leaves; remaining network must stay/return converged.
	nw.RemoveNode(0)
	k.RunFor(50 * frame)
	if !nw.Converged() {
		t.Fatal("network broke after leave")
	}
}

func TestTDMAStoppedNodeStopsTransmitting(t *testing.T) {
	cfg := DefaultTDMAConfig()
	k, nw := tdmaSetup(t, 19, 2, cfg, 10)
	frame := sim.Time(cfg.Slots) * cfg.SlotDuration
	k.RunFor(100 * frame)
	node, _ := nw.Node(0)
	node.Stop()
	before := node.TxCount
	k.RunFor(50 * frame)
	if node.TxCount != before {
		t.Fatal("stopped node kept transmitting")
	}
}

func TestCSMAValidation(t *testing.T) {
	k := sim.NewKernel(1)
	medium := wireless.NewMedium(k, wireless.DefaultConfig())
	r, _ := medium.Attach(1, wireless.Position{})
	if _, err := NewCSMANode(k, r, CSMAConfig{Period: 0}); err == nil {
		t.Fatal("zero period should be rejected")
	}
}

func TestCSMATwoNodesExchange(t *testing.T) {
	k := sim.NewKernel(23)
	medium := wireless.NewMedium(k, wireless.DefaultConfig())
	cfg := DefaultCSMAConfig()
	var nodes []*CSMANode
	for i := 0; i < 2; i++ {
		r, err := medium.Attach(wireless.NodeID(i), wireless.Position{X: float64(i) * 10})
		if err != nil {
			t.Fatal(err)
		}
		n, err := NewCSMANode(k, r, cfg)
		if err != nil {
			t.Fatal(err)
		}
		n.Start()
		nodes = append(nodes, n)
	}
	k.RunFor(sim.Second)
	for i, n := range nodes {
		if n.Generated == 0 || n.Transmitted == 0 {
			t.Fatalf("node %d never transmitted: %+v", i, n)
		}
		if n.Received == 0 {
			t.Fatalf("node %d never received", i)
		}
	}
}

func TestCSMACollapsesUnderDensity(t *testing.T) {
	// With many saturating nodes in one clique, CSMA's delivery ratio
	// degrades well below TDMA's collision-free schedule — E6's claim.
	k := sim.NewKernel(29)
	medium := wireless.NewMedium(k, wireless.DefaultConfig())
	cfg := CSMAConfig{Period: 4 * sim.Millisecond, MaxBackoff: sim.Millisecond, MaxAttempts: 3}
	n := 20
	for i := 0; i < n; i++ {
		r, err := medium.Attach(wireless.NodeID(i), wireless.Position{X: float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		node, err := NewCSMANode(k, r, cfg)
		if err != nil {
			t.Fatal(err)
		}
		node.Start()
	}
	k.RunFor(2 * sim.Second)
	s := medium.Stats()
	if s.Collisions == 0 {
		t.Fatal("saturated CSMA network had no collisions (model too optimistic)")
	}
}

func TestPulseValidation(t *testing.T) {
	k := sim.NewKernel(1)
	medium := wireless.NewMedium(k, wireless.DefaultConfig())
	r, _ := medium.Attach(1, wireless.Position{})
	c := sim.NewDriftClock(k, 0, 0)
	if _, err := NewPulseNode(k, r, c, PulseConfig{Period: 0, Gain: 0.5}); err == nil {
		t.Fatal("zero period should be rejected")
	}
	if _, err := NewPulseNode(k, r, c, PulseConfig{Period: sim.Second, Gain: 1.5}); err == nil {
		t.Fatal("gain > 1 should be rejected")
	}
}

func TestPulseSyncConverges(t *testing.T) {
	k := sim.NewKernel(31)
	medium := wireless.NewMedium(k, wireless.DefaultConfig())
	cfg := DefaultPulseConfig()
	var nodes []*PulseNode
	n := 8
	for i := 0; i < n; i++ {
		r, err := medium.Attach(wireless.NodeID(i), wireless.Position{X: float64(i) * 10})
		if err != nil {
			t.Fatal(err)
		}
		drift := (k.Rand().Float64()*2 - 1) * 50e-6 // ±50 ppm
		offset := sim.Time(k.Rand().Int63n(int64(cfg.Period)))
		clock := sim.NewDriftClock(k, drift, offset)
		node, err := NewPulseNode(k, r, clock, cfg)
		if err != nil {
			t.Fatal(err)
		}
		node.Start()
		nodes = append(nodes, node)
	}
	initial := MaxPairwiseError(nodes, cfg.Period)
	k.RunFor(60 * sim.Second)
	final := MaxPairwiseError(nodes, cfg.Period)
	if final >= initial/4 && initial > 4*sim.Millisecond {
		t.Fatalf("pulse sync did not converge: initial=%v final=%v", initial, final)
	}
	if final > 5*sim.Millisecond {
		t.Fatalf("final phase error too large: %v", final)
	}
}

func TestPulseSyncStableWhenAligned(t *testing.T) {
	k := sim.NewKernel(37)
	medium := wireless.NewMedium(k, wireless.DefaultConfig())
	cfg := DefaultPulseConfig()
	var nodes []*PulseNode
	for i := 0; i < 4; i++ {
		r, err := medium.Attach(wireless.NodeID(i), wireless.Position{X: float64(i) * 10})
		if err != nil {
			t.Fatal(err)
		}
		clock := sim.NewDriftClock(k, 0, 0) // perfect clocks, aligned
		node, err := NewPulseNode(k, r, clock, cfg)
		if err != nil {
			t.Fatal(err)
		}
		node.Start()
		nodes = append(nodes, node)
	}
	k.RunFor(10 * sim.Second)
	if err := MaxPairwiseError(nodes, cfg.Period); err > 500*sim.Microsecond {
		t.Fatalf("aligned perfect clocks drifted apart: %v", err)
	}
}
