package mac

import (
	"fmt"

	"karyon/internal/sim"
	"karyon/internal/wireless"
)

// CSMAConfig parameterizes the CSMA/CA baseline.
type CSMAConfig struct {
	// Period is the beacon generation period (offered load).
	Period sim.Time
	// MaxBackoff is the upper bound of the uniform random backoff applied
	// when the carrier is busy.
	MaxBackoff sim.Time
	// MaxAttempts bounds retries per beacon before it is dropped.
	MaxAttempts int
}

// DefaultCSMAConfig matches the default TDMA offered load: one beacon per
// frame (32 slots x 1 ms).
func DefaultCSMAConfig() CSMAConfig {
	return CSMAConfig{
		Period:      32 * sim.Millisecond,
		MaxBackoff:  4 * sim.Millisecond,
		MaxAttempts: 5,
	}
}

// CSMANode periodically generates a beacon and transmits it with carrier
// sensing and random backoff — the contention baseline the paper's TDMA
// work is compared against.
type CSMANode struct {
	cfg    CSMAConfig
	kernel *sim.Kernel
	radio  *wireless.Radio

	ticker  *sim.Ticker
	stopped bool

	// Generated counts beacons offered; Transmitted counts beacons that
	// made it onto the air; Abandoned counts beacons dropped after
	// exhausting attempts.
	Generated   int
	Transmitted int
	Abandoned   int
	// Received counts beacons successfully decoded from others.
	Received int
	// AccessDelays collects generation-to-transmission delays in
	// milliseconds — CSMA's unpredictability is in this distribution's
	// tail, which is the property the paper's TDMA work removes.
	AccessDelays []float64
}

// NewCSMANode creates a node over the radio and takes over its receive
// handler.
func NewCSMANode(kernel *sim.Kernel, radio *wireless.Radio, cfg CSMAConfig) (*CSMANode, error) {
	if cfg.Period <= 0 {
		return nil, fmt.Errorf("mac: CSMA period must be positive")
	}
	if cfg.MaxAttempts < 1 {
		cfg.MaxAttempts = 1
	}
	n := &CSMANode{cfg: cfg, kernel: kernel, radio: radio}
	radio.OnReceive(func(wireless.Frame) { n.Received++ })
	return n, nil
}

// ID returns the radio's node id.
func (n *CSMANode) ID() wireless.NodeID { return n.radio.ID() }

// Start begins periodic beacon generation. Each node's cycle starts at a
// random phase within one period — stations are not synchronized.
func (n *CSMANode) Start() {
	phase := sim.Time(n.kernel.Rand().Int63n(int64(n.cfg.Period)))
	n.kernel.Schedule(phase, func() {
		if n.stopped {
			return
		}
		t, err := n.kernel.Every(n.cfg.Period, func() {
			n.Generated++
			n.attempt(0, n.kernel.Now())
		})
		if err != nil {
			return // validated in constructor
		}
		n.ticker = t
	})
}

// Stop halts the node.
func (n *CSMANode) Stop() {
	n.stopped = true
	if n.ticker != nil {
		n.ticker.Stop()
	}
}

func (n *CSMANode) attempt(tries int, generatedAt sim.Time) {
	if n.stopped {
		return
	}
	if tries >= n.cfg.MaxAttempts {
		n.Abandoned++
		return
	}
	if n.radio.CarrierBusy() {
		backoff := sim.Time(n.kernel.Rand().Int63n(int64(n.cfg.MaxBackoff) + 1))
		n.kernel.Schedule(backoff, func() { n.attempt(tries+1, generatedAt) })
		return
	}
	n.radio.Broadcast(Beacon{ID: n.radio.ID()})
	n.Transmitted++
	delay := n.kernel.Now() - generatedAt
	n.AccessDelays = append(n.AccessDelays, float64(delay)/float64(sim.Millisecond))
}
