package mac

import (
	"fmt"

	"karyon/internal/sim"
	"karyon/internal/wireless"
)

// TDMANetwork wires a set of TDMA nodes to one medium and feeds collision
// observations back into the nodes' frame state: a real receiver senses
// undecodable energy in a slot, which the algorithm needs as the
// collision mark in beacons' Heard maps.
type TDMANetwork struct {
	cfg    TDMAConfig
	medium *wireless.Medium
	kernel *sim.Kernel
	nodes  map[wireless.NodeID]*TDMANode
}

// NewTDMANetwork creates the coordinator and installs the medium drop
// observer.
func NewTDMANetwork(kernel *sim.Kernel, medium *wireless.Medium, cfg TDMAConfig) *TDMANetwork {
	nw := &TDMANetwork{
		cfg:    cfg,
		medium: medium,
		kernel: kernel,
		nodes:  make(map[wireless.NodeID]*TDMANode),
	}
	medium.SetDropObserver(nw.onDrop)
	return nw
}

// AddNode attaches a new TDMA node at the given position.
func (nw *TDMANetwork) AddNode(id wireless.NodeID, pos wireless.Position) (*TDMANode, error) {
	radio, err := nw.medium.Attach(id, pos)
	if err != nil {
		return nil, fmt.Errorf("mac: add node: %w", err)
	}
	node, err := NewTDMANode(nw.kernel, radio, nw.cfg)
	if err != nil {
		return nil, err
	}
	nw.nodes[id] = node
	return node, nil
}

// RemoveNode stops and detaches a node (churn).
func (nw *TDMANetwork) RemoveNode(id wireless.NodeID) {
	if n, ok := nw.nodes[id]; ok {
		n.Stop()
		nw.medium.Detach(id)
		delete(nw.nodes, id)
	}
}

// Nodes returns the live nodes in insertion-independent (map) form; use
// NodeList for deterministic iteration.
func (nw *TDMANetwork) Node(id wireless.NodeID) (*TDMANode, bool) {
	n, ok := nw.nodes[id]
	return n, ok
}

// NodeList returns the live nodes sorted by id.
func (nw *TDMANetwork) NodeList() []*TDMANode {
	ids := make([]wireless.NodeID, 0, len(nw.nodes))
	for id := range nw.nodes {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	out := make([]*TDMANode, len(ids))
	for i, id := range ids {
		out[i] = nw.nodes[id]
	}
	return out
}

// onDrop translates a per-receiver collision into a collision mark in the
// receiver's current frame observation.
func (nw *TDMANetwork) onDrop(to wireless.NodeID, reason wireless.DropReason) {
	if reason != wireless.DropCollision {
		return
	}
	node, ok := nw.nodes[to]
	if ok && !node.stopped {
		// Delivery happens airtime+prop after transmission start; map the
		// completion instant back to the transmission's slot.
		mcfg := nw.medium.Config()
		sentAt := nw.kernel.Now() - mcfg.Airtime - mcfg.PropDelay
		if sentAt < 0 {
			sentAt = 0
		}
		node.heardThisFrame[node.currentSlot(sentAt)] = collisionMark
	}
}

// Converged reports whether the network's live nodes have stabilized (all
// claimed, neighborhood-unique).
func (nw *TDMANetwork) Converged() bool {
	return Converged(nw.NodeList())
}
