package mac

import (
	"fmt"
	"sort"

	"karyon/internal/sim"
	"karyon/internal/wireless"
)

// pulseMsg is the payload of a synchronization pulse.
type pulseMsg struct {
	ID wireless.NodeID
}

// PulseConfig parameterizes the decentralized pulse-synchronization
// algorithm (Mustafa et al. [27]): nodes broadcast pulses every Period of
// *local* time and nudge their local clocks toward the median observed
// neighbor phase — no GPS or base station involved.
type PulseConfig struct {
	// Period is the pulse period in local-clock units.
	Period sim.Time
	// Gain is the correction factor applied to the median phase error,
	// in (0, 1].
	Gain float64
}

// DefaultPulseConfig returns a 100 ms pulse period with gain 0.5.
func DefaultPulseConfig() PulseConfig {
	return PulseConfig{Period: 100 * sim.Millisecond, Gain: 0.5}
}

// PulseNode runs pulse synchronization over a drifting local clock.
type PulseNode struct {
	cfg    PulseConfig
	kernel *sim.Kernel
	radio  *wireless.Radio
	clock  *sim.DriftClock

	// phase errors observed since the last own pulse, in local time units
	// mapped to [-Period/2, +Period/2).
	errs    []sim.Time
	stopped bool
	// lastPulseLocal is the local time of our last pulse emission.
	lastPulseLocal sim.Time
}

// NewPulseNode creates a pulse-synchronization node. The radio's receive
// handler is taken over.
func NewPulseNode(kernel *sim.Kernel, radio *wireless.Radio, clock *sim.DriftClock, cfg PulseConfig) (*PulseNode, error) {
	if cfg.Period <= 0 {
		return nil, fmt.Errorf("mac: pulse period must be positive")
	}
	if cfg.Gain <= 0 || cfg.Gain > 1 {
		return nil, fmt.Errorf("mac: pulse gain %v outside (0,1]", cfg.Gain)
	}
	n := &PulseNode{cfg: cfg, kernel: kernel, radio: radio, clock: clock}
	radio.OnReceive(n.onPulse)
	return n, nil
}

// Clock exposes the node's local clock.
func (n *PulseNode) Clock() *sim.DriftClock { return n.clock }

// Start schedules the first pulse at the next multiple of Period on the
// node's *local* clock, so emission phase initially reflects the node's
// arbitrary clock state — the adversarial starting configuration a
// self-stabilizing algorithm must recover from.
func (n *PulseNode) Start() {
	local := n.clock.Now()
	target := (local/n.cfg.Period + 1) * n.cfg.Period
	d := n.toKernelDelay(target - local)
	n.kernel.Schedule(d, n.pulse)
}

// Stop halts pulsing.
func (n *PulseNode) Stop() { n.stopped = true }

// toKernelDelay converts a local-clock duration into kernel time.
func (n *PulseNode) toKernelDelay(local sim.Time) sim.Time {
	d := sim.Time(float64(local) / (1 + n.clock.Drift()))
	if d < 0 {
		d = 0
	}
	return d
}

func (n *PulseNode) pulse() {
	if n.stopped {
		return
	}
	// Compute the correction from neighbor observations: a negative median
	// means neighbors pulse earlier than us, so we pull our next emission
	// earlier and move our clock forward by the same amount.
	shift := n.correction()
	n.clock.Adjust(-shift)
	n.lastPulseLocal = n.clock.Now()
	n.radio.Broadcast(pulseMsg{ID: n.radio.ID()})
	// Next pulse one local period later, displaced by the correction.
	d := n.toKernelDelay(n.cfg.Period) + shift
	// Keep the cycle bounded even under a pathological correction.
	if min := n.toKernelDelay(n.cfg.Period / 4); d < min {
		d = min
	}
	if max := n.toKernelDelay(2 * n.cfg.Period); d > max {
		d = max
	}
	n.kernel.Schedule(d, n.pulse)
}

// onPulse records the phase difference between the neighbor's pulse and
// our own cycle.
func (n *PulseNode) onPulse(f wireless.Frame) {
	if n.stopped {
		return
	}
	if _, ok := f.Payload.(pulseMsg); !ok {
		return
	}
	local := n.clock.Now()
	phase := (local - n.lastPulseLocal) % n.cfg.Period
	// Map to [-P/2, +P/2): a neighbor pulsing just before our next pulse
	// means we are late (negative error pulls us back).
	if phase >= n.cfg.Period/2 {
		phase -= n.cfg.Period
	}
	n.errs = append(n.errs, phase)
}

// correction returns Gain x median observed phase error and resets the
// observation window. The median tolerates a minority of outlier
// observations (e.g. delayed frames), mirroring the robustness argument in
// [27]. A zero return means no evidence this cycle.
func (n *PulseNode) correction() sim.Time {
	if len(n.errs) == 0 {
		return 0
	}
	sort.Slice(n.errs, func(i, j int) bool { return n.errs[i] < n.errs[j] })
	med := n.errs[len(n.errs)/2]
	if len(n.errs)%2 == 0 {
		med = (n.errs[len(n.errs)/2-1] + n.errs[len(n.errs)/2]) / 2
	}
	n.errs = n.errs[:0]
	return sim.Time(n.cfg.Gain * float64(med))
}

// MaxPairwiseError returns the largest pairwise *phase* misalignment among
// the nodes — the TDMA-alignment convergence metric for E7. Pulse
// synchronization aligns slot boundaries, so clock differences are compared
// modulo the pulse period and mapped to [-P/2, +P/2).
func MaxPairwiseError(nodes []*PulseNode, period sim.Time) sim.Time {
	var maxErr sim.Time
	for i := range nodes {
		for j := i + 1; j < len(nodes); j++ {
			d := nodes[i].clock.ErrorVersus(nodes[j].clock)
			d %= period
			if d < 0 {
				d += period
			}
			if d >= period/2 {
				d = period - d
			}
			if d > maxErr {
				maxErr = d
			}
		}
	}
	return maxErr
}
