package avionics

import (
	"math"
	"testing"

	"karyon/internal/core"
	"karyon/internal/sim"
	"karyon/internal/wireless"
)

func TestSeparationMinimaGeometry(t *testing.T) {
	m := SeparationMinima{Lateral: 1000, Vertical: 150}
	a := wireless.Position{Z: 3000}
	cases := []struct {
		name string
		b    wireless.Position
		want bool
	}{
		{"co-located", wireless.Position{Z: 3000}, true},
		{"laterally clear", wireless.Position{X: 2000, Z: 3000}, false},
		{"vertically clear", wireless.Position{Z: 3200}, false},
		{"inside both", wireless.Position{X: 500, Z: 3100}, true},
		{"edge lateral", wireless.Position{X: 1000, Z: 3000}, false},
		{"diagonal lateral", wireless.Position{X: 800, Y: 800, Z: 3000}, false},
	}
	for _, c := range cases {
		if got := m.Violated(a, c.b); got != c.want {
			t.Fatalf("%s: Violated = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestAircraftStepAltitudeCapture(t *testing.T) {
	a := &Aircraft{Speed: 100, Pos: wireless.Position{Z: 1000}, TargetAlt: 1100, ClimbRate: 10}
	for i := 0; i < 200; i++ {
		a.Step(0.1)
	}
	if math.Abs(a.Pos.Z-1100) > 1 {
		t.Fatalf("altitude = %v, want ~1100", a.Pos.Z)
	}
	if a.Pos.X < 1900 || a.Pos.X > 2100 {
		t.Fatalf("ground track = %v, want ~2000", a.Pos.X)
	}
	// Descent works symmetrically.
	a.TargetAlt = 900
	for i := 0; i < 300; i++ {
		a.Step(0.1)
	}
	if math.Abs(a.Pos.Z-900) > 1 {
		t.Fatalf("descent altitude = %v", a.Pos.Z)
	}
}

func TestAircraftHeading(t *testing.T) {
	a := &Aircraft{Speed: 10, Heading: math.Pi / 2, ClimbRate: 5}
	a.Step(1)
	if math.Abs(a.Pos.Y-10) > 1e-9 || math.Abs(a.Pos.X) > 1e-9 {
		t.Fatalf("pos = %+v, want (0,10)", a.Pos)
	}
}

func TestScenarioNames(t *testing.T) {
	if len(Scenarios()) != 3 {
		t.Fatal("paper defines three avionic use cases")
	}
	names := map[Scenario]string{
		ScenarioSameDirection: "same-direction",
		ScenarioCrossing:      "leveled-crossing",
		ScenarioLevelChange:   "level-change",
	}
	for s, want := range names {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", int(s), s.String())
		}
	}
}

func runEncounter(t *testing.T, seed int64, s Scenario, collaborative bool) EncounterResult {
	t.Helper()
	k := sim.NewKernel(seed)
	e, err := NewEncounter(k, DefaultEncounterConfig(s, collaborative))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEncounterCollaborativeNoViolations(t *testing.T) {
	for _, s := range Scenarios() {
		res := runEncounter(t, 1, s, true)
		if res.ViolationTicks != 0 {
			t.Fatalf("%v: %d violation ticks with ADS-B traffic", s, res.ViolationTicks)
		}
		if res.TimeAtLoS3Frac < 0.5 {
			t.Fatalf("%v: only %.0f%% of run cooperative with ADS-B", s, res.TimeAtLoS3Frac*100)
		}
	}
}

func TestEncounterSameDirectionManeuvers(t *testing.T) {
	res := runEncounter(t, 2, ScenarioSameDirection, true)
	if !res.Maneuvered {
		t.Fatal("overtaking geometry never triggered avoidance")
	}
	if res.MinLateral >= 6000 {
		t.Fatal("aircraft never closed in (geometry broken)")
	}
}

func TestEncounterNonCollaborativeStaysAtLoS2(t *testing.T) {
	res := runEncounter(t, 3, ScenarioCrossing, false)
	if res.LoSAtEnd > 2 {
		t.Fatalf("LoS = %v with voice-only intruder", res.LoSAtEnd)
	}
	if res.TimeAtLoS3Frac > 0.05 {
		t.Fatalf("cooperative fraction %.2f with voice-only intruder", res.TimeAtLoS3Frac)
	}
}

func TestEncounterNonCollaborativeSafeButConservative(t *testing.T) {
	// The paper's expected shape: non-collaborative traffic still avoids
	// violations, but only by maneuvering more (bigger margins).
	coll := runEncounter(t, 4, ScenarioCrossing, true)
	voice := runEncounter(t, 4, ScenarioCrossing, false)
	if voice.ViolationTicks != 0 {
		t.Fatalf("non-collaborative run violated minima %d ticks", voice.ViolationTicks)
	}
	// The collaborative run may pass closer (smaller padding) while
	// remaining legal.
	if coll.MinLateral > voice.MinLateral+1 && coll.Maneuvered && voice.Maneuvered {
		t.Fatalf("collaborative pass (%.0f m) wider than voice pass (%.0f m): padding inverted",
			coll.MinLateral, voice.MinLateral)
	}
}

func TestMarginMonotoneInLoS(t *testing.T) {
	if !(marginForLoS(1) > marginForLoS(2) && marginForLoS(2) > marginForLoS(3)) {
		t.Fatal("separation margin must shrink as LoS rises")
	}
	if marginForLoS(5) != marginForLoS(3) {
		t.Fatal("levels above 3 should use the cooperative margin")
	}
	_ = core.LevelSafe
}

func TestRPVMissionProfile(t *testing.T) {
	legs := RPVMission()
	if len(legs) != 8 {
		t.Fatalf("mission has %d legs", len(legs))
	}
	a := &Aircraft{Speed: 60, ClimbRate: 8}
	track, elapsed := FlyMission(a, legs, 0.5, 3600)
	if elapsed >= 3600 {
		t.Fatal("mission did not complete within an hour")
	}
	if len(track) == 0 {
		t.Fatal("empty track")
	}
	// The aircraft reached sweep altitude and returned to the ground.
	alts := SummarizeTrack(track)
	if alts.Max() < 2900 {
		t.Fatalf("never reached sweep altitude: max %v", alts.Max())
	}
	final := track[len(track)-1]
	if final.Z > 50 {
		t.Fatalf("did not land: final altitude %v", final.Z)
	}
	// The grid sweep covers the Y span.
	var maxY float64
	for _, p := range track {
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	if maxY < 3500 {
		t.Fatalf("sweep did not cover the grid: maxY %v", maxY)
	}
}
