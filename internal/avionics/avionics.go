// Package avionics implements the paper's avionic use cases (Sec. VI-B,
// Figs. 6 and 7): aerial vehicles with a separation-minima safe-state
// volume, collaborative traffic (ADS-B-like position broadcasts with
// satellite-grade accuracy) versus non-collaborative traffic (coarse
// voice-relayed position estimates), and the three encounter scenarios —
// common trajectory in the same direction, leveled crossing trajectories,
// and coordinated flight-level change — plus the RPV mission profile of
// Fig. 6.
package avionics

import (
	"fmt"
	"math"

	"karyon/internal/coord"
	"karyon/internal/core"
	"karyon/internal/metrics"
	"karyon/internal/sim"
	"karyon/internal/wireless"
)

// SeparationMinima is the safe-state volume around an aerial vehicle
// (Fig. 7): a cylinder described by a lateral and a vertical distance.
type SeparationMinima struct {
	// Lateral is the required horizontal distance in meters.
	Lateral float64
	// Vertical is the required altitude difference in meters.
	Vertical float64
}

// DefaultMinima returns en-route-like minima scaled to the simulation
// (paper values would be nautical miles; the shape, not the magnitude,
// is what the reproduction preserves).
func DefaultMinima() SeparationMinima {
	return SeparationMinima{Lateral: 1000, Vertical: 150}
}

// Violated reports whether two positions infringe the volume: inside the
// lateral radius AND inside the vertical band simultaneously.
func (m SeparationMinima) Violated(a, b wireless.Position) bool {
	dx, dy := a.X-b.X, a.Y-b.Y
	lateral := math.Sqrt(dx*dx + dy*dy)
	vertical := math.Abs(a.Z - b.Z)
	return lateral < m.Lateral && vertical < m.Vertical
}

// Aircraft is one aerial vehicle flying waypoint legs in 3-D.
type Aircraft struct {
	ID wireless.NodeID
	// Pos is the true position (Z = altitude).
	Pos wireless.Position
	// Velocity in m/s per axis.
	Vel wireless.Position
	// Collaborative aircraft broadcast precise ADS-B state; the rest are
	// tracked only through coarse, delayed estimates.
	Collaborative bool
	// Speed is the commanded ground speed.
	Speed float64
	// TargetAlt is the commanded altitude.
	TargetAlt float64
	// ClimbRate bounds vertical maneuvering (m/s).
	ClimbRate float64
	// Heading in radians (0 = +X).
	Heading float64
}

// Step integrates the aircraft over dt seconds: fly the heading at the
// commanded speed, converge altitude toward the target.
func (a *Aircraft) Step(dt float64) {
	a.Vel.X = a.Speed * math.Cos(a.Heading)
	a.Vel.Y = a.Speed * math.Sin(a.Heading)
	dz := a.TargetAlt - a.Pos.Z
	climb := a.ClimbRate
	if climb <= 0 {
		climb = 5
	}
	switch {
	case dz > climb*dt:
		a.Vel.Z = climb
	case dz < -climb*dt:
		a.Vel.Z = -climb
	default:
		a.Vel.Z = dz / dt
	}
	a.Pos.X += a.Vel.X * dt
	a.Pos.Y += a.Vel.Y * dt
	a.Pos.Z += a.Vel.Z * dt
}

// Scenario selects one of the paper's three encounter geometries.
type Scenario int

// The three avionic use cases of Sec. VI-B.
const (
	// ScenarioSameDirection is the ACC analogue: two aircraft on a common
	// trajectory, the rear one faster.
	ScenarioSameDirection Scenario = iota + 1
	// ScenarioCrossing is the intersection analogue: leveled crossing
	// trajectories meeting at a point.
	ScenarioCrossing
	// ScenarioLevelChange is the lane-change analogue: an RPV descending
	// through another vehicle's flight level, not on a direct collision
	// path.
	ScenarioLevelChange
)

// String renders the scenario.
func (s Scenario) String() string {
	switch s {
	case ScenarioSameDirection:
		return "same-direction"
	case ScenarioCrossing:
		return "leveled-crossing"
	case ScenarioLevelChange:
		return "level-change"
	default:
		return fmt.Sprintf("scenario(%d)", int(s))
	}
}

// Scenarios lists all encounter geometries.
func Scenarios() []Scenario {
	return []Scenario{ScenarioSameDirection, ScenarioCrossing, ScenarioLevelChange}
}

// EncounterConfig parameterizes one two-aircraft encounter run.
type EncounterConfig struct {
	Scenario Scenario
	// IntruderCollaborative selects traffic scenario (1) vs (2) of the
	// paper: ADS-B equipped vs voice-position only.
	IntruderCollaborative bool
	// Minima is the protected volume.
	Minima SeparationMinima
	// ControlPeriod is the ownship's avoidance loop period.
	ControlPeriod sim.Time
	// ADSBPeriod is the collaborative state broadcast period.
	ADSBPeriod sim.Time
	// VoicePeriod is the non-collaborative coarse update period (much
	// slower) and VoiceError its position error (1-sigma).
	VoicePeriod sim.Time
	VoiceError  float64
	// Duration is the simulated encounter length.
	Duration sim.Time
}

// DefaultEncounterConfig returns the E15 parameters.
func DefaultEncounterConfig(s Scenario, collaborative bool) EncounterConfig {
	return EncounterConfig{
		Scenario:              s,
		IntruderCollaborative: collaborative,
		Minima:                DefaultMinima(),
		ControlPeriod:         200 * sim.Millisecond,
		ADSBPeriod:            sim.Second,
		VoicePeriod:           15 * sim.Second,
		VoiceError:            800,
		Duration:              6 * sim.Minute,
	}
}

// EncounterResult aggregates one run.
type EncounterResult struct {
	// ViolationTicks counts control periods with the minima violated.
	ViolationTicks int64
	// MinLateral and MinVertical record the closest approach.
	MinLateral  float64
	MinVertical float64
	// Maneuvered reports whether the ownship had to deviate.
	Maneuvered bool
	// LoSAtEnd is the ownship's final level of service.
	LoSAtEnd core.LoS
	// TimeAtLoS3Frac is the fraction of the run spent cooperative.
	TimeAtLoS3Frac float64
}

// adsbMsg is the collaborative position broadcast.
type adsbMsg struct {
	State coord.CoopState
	Alt   float64
	VelX  float64
	VelY  float64
	VelZ  float64
}

// Encounter wires one ownship (with a KARYON safety kernel) against one
// intruder on the configured geometry.
type Encounter struct {
	cfg    EncounterConfig
	kernel *sim.Kernel
	medium *wireless.Medium

	own           *Aircraft
	intruder      *Aircraft
	ownRadio      *wireless.Radio
	intruderRadio *wireless.Radio

	// estimate is the ownship's belief about the intruder.
	estPos      wireless.Position
	estVel      wireless.Position
	estAt       sim.Time
	estValidity float64
	haveEst     bool

	manager *core.Manager
	fn      *core.Functionality

	// clearStreak counts consecutive conflict-free checks while deviated.
	clearStreak int

	res     EncounterResult
	tickers []*sim.Ticker
}

// clearedAlt is the ownship's assigned cruise level.
func (e *Encounter) clearedAlt() float64 { return 3000 }

// ownCruiseSpeed is the ownship's nominal ground speed (m/s).
const ownCruiseSpeed = 100.0

// resolutionAltitudes lists candidate avoidance levels ordered away from
// the conflict altitude: first the opposite side of the intruder, then
// progressively wider offsets.
func resolutionAltitudes(conflictAlt, verticalPad float64) []float64 {
	up := conflictAlt + verticalPad + 100
	down := conflictAlt - verticalPad - 100
	if down < 500 {
		down = 500
	}
	return []float64{up, down, up + 300, down - 300, up + 600}
}

// NewEncounter builds the encounter world.
func NewEncounter(kernel *sim.Kernel, cfg EncounterConfig) (*Encounter, error) {
	if cfg.ControlPeriod <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("avionics: invalid timing config")
	}
	mcfg := wireless.DefaultConfig()
	mcfg.Range = 50000 // airspace-scale radio horizon
	e := &Encounter{
		cfg:    cfg,
		kernel: kernel,
		medium: wireless.NewMedium(kernel, mcfg),
	}
	e.res.MinLateral = math.MaxFloat64
	e.res.MinVertical = math.MaxFloat64

	// Geometry per scenario. The ownship flies +X at 100 m/s, altitude
	// 3000 m.
	e.own = &Aircraft{
		ID: 1, Collaborative: true, Speed: 100,
		Pos: wireless.Position{X: 0, Z: 3000}, TargetAlt: 3000, ClimbRate: 8,
	}
	switch cfg.Scenario {
	case ScenarioSameDirection:
		// Intruder ahead on the same track, slower: ownship overtakes.
		e.intruder = &Aircraft{
			ID: 2, Speed: 70,
			Pos: wireless.Position{X: 6000, Z: 3000}, TargetAlt: 3000, ClimbRate: 8,
		}
	case ScenarioCrossing:
		// Intruder crossing at 90° timed to meet at the origin-ahead
		// point (20 km, 0).
		e.intruder = &Aircraft{
			ID: 2, Speed: 100, Heading: math.Pi / 2,
			Pos: wireless.Position{X: 20000, Y: -20000, Z: 3000}, TargetAlt: 3000, ClimbRate: 8,
		}
	case ScenarioLevelChange:
		// Intruder descending through the ownship's level, laterally
		// offset so it is not a direct collision course.
		e.intruder = &Aircraft{
			ID: 2, Speed: 90, Heading: math.Pi,
			Pos: wireless.Position{X: 25000, Y: 600, Z: 4000}, TargetAlt: 2500, ClimbRate: 6,
		}
	default:
		return nil, fmt.Errorf("avionics: unknown scenario %v", cfg.Scenario)
	}
	e.intruder.Collaborative = cfg.IntruderCollaborative

	ownRadio, err := e.medium.Attach(e.own.ID, e.own.Pos)
	if err != nil {
		return nil, err
	}
	e.ownRadio = ownRadio
	ownRadio.OnReceive(e.onFrame)
	intruderRadio, err := e.medium.Attach(e.intruder.ID, e.intruder.Pos)
	if err != nil {
		return nil, err
	}
	e.intruderRadio = intruderRadio

	// Ownship safety kernel: LoS3 = cooperative (fresh precise intruder
	// state), LoS2 = surveilled (any recent estimate), LoS1 = blind.
	ri := core.NewRuntimeInfo(kernel)
	mgr, err := core.NewManager(kernel, ri, core.ManagerConfig{
		Period:           cfg.ControlPeriod,
		UpgradeStability: 3,
	})
	if err != nil {
		return nil, err
	}
	fn, err := mgr.AddFunctionality("separation", 3)
	if err != nil {
		return nil, err
	}
	if err := fn.AddRule(2, core.MinValidity("intruder.validity", 0.2)); err != nil {
		return nil, err
	}
	// The LoS3 threshold doubles as a staleness bound: the validity
	// indicator decays exponentially with the estimate's age (see step),
	// so a silent intruder drops below 0.8 within a few broadcast periods.
	if err := fn.AddRule(3, core.MinValidity("intruder.validity", 0.8)); err != nil {
		return nil, err
	}
	e.manager = mgr
	e.fn = fn
	return e, nil
}

// Run executes the encounter and returns the result.
func (e *Encounter) Run() (EncounterResult, error) {
	if err := e.manager.Start(); err != nil {
		return EncounterResult{}, err
	}
	// Intruder state emission.
	period := e.cfg.VoicePeriod
	if e.intruder.Collaborative {
		period = e.cfg.ADSBPeriod
	}
	it, err := e.kernel.Every(period, e.emitIntruder)
	if err != nil {
		return EncounterResult{}, err
	}
	e.tickers = append(e.tickers, it)
	// Plant integration + ownship control.
	ct, err := e.kernel.Every(e.cfg.ControlPeriod, e.step)
	if err != nil {
		return EncounterResult{}, err
	}
	e.tickers = append(e.tickers, ct)

	e.kernel.RunFor(e.cfg.Duration)

	for _, t := range e.tickers {
		t.Stop()
	}
	e.manager.Stop()
	e.res.LoSAtEnd = e.fn.Current()
	total := e.cfg.Duration
	e.res.TimeAtLoS3Frac = float64(e.fn.TimeAt(3, e.kernel.Now())) / float64(total)
	return e.res, nil
}

// emitIntruder broadcasts the intruder's state: precise via ADS-B for
// collaborative traffic, coarse and slow ("relayed by voice") otherwise.
func (e *Encounter) emitIntruder() {
	pos := e.intruder.Pos
	validity := 1.0
	if !e.intruder.Collaborative {
		rng := e.kernel.Rand()
		pos.X += rng.NormFloat64() * e.cfg.VoiceError
		pos.Y += rng.NormFloat64() * e.cfg.VoiceError
		pos.Z += rng.NormFloat64() * e.cfg.VoiceError / 10
		validity = 0.4
	}
	msg := adsbMsg{
		State: coord.CoopState{
			ID:       e.intruder.ID,
			Pos:      pos,
			Speed:    e.intruder.Speed,
			Time:     e.kernel.Now(),
			Validity: validity,
		},
		Alt:  pos.Z,
		VelX: e.intruder.Vel.X,
		VelY: e.intruder.Vel.Y,
		VelZ: e.intruder.Vel.Z,
	}
	e.intruderRadio.SetPosition(e.intruder.Pos)
	e.intruderRadio.Broadcast(msg)
}

func (e *Encounter) onFrame(f wireless.Frame) {
	m, ok := f.Payload.(adsbMsg)
	if !ok {
		return
	}
	e.estPos = m.State.Pos
	e.estVel = wireless.Position{X: m.VelX, Y: m.VelY, Z: m.VelZ}
	e.estAt = m.State.Time
	e.estValidity = m.State.Validity
	e.haveEst = true
}

// step advances both aircraft and runs the ownship's avoidance logic.
func (e *Encounter) step() {
	dt := e.cfg.ControlPeriod.Seconds()
	now := e.kernel.Now()

	// Feed the kernel: the intruder estimate's decayed validity.
	ri := e.manager.Runtime()
	if e.haveEst {
		age := (now - e.estAt).Seconds()
		decay := math.Exp(-age / 30) // information ages out over ~30 s
		ri.Set("intruder.validity", e.estValidity*decay)
	}

	// Avoidance: predict the intruder forward by the estimate's age, pad
	// the minima by the LoS-dependent uncertainty margin, and deviate
	// vertically if the padded volume would be pierced within the
	// lookahead. Propagation is 3-D: both the ownship's planned climb and
	// the intruder's reported vertical rate are modeled, so the ownship
	// never resolves *into* a climbing/descending intruder.
	level := e.fn.Current()
	margin := marginForLoS(level)
	predicted := e.estPos
	if e.haveEst {
		age := (now - e.estAt).Seconds()
		predicted.X += e.estVel.X * age
		predicted.Y += e.estVel.Y * age
		predicted.Z += e.estVel.Z * age
	}
	padded := SeparationMinima{
		Lateral:  e.cfg.Minima.Lateral + margin,
		Vertical: e.cfg.Minima.Vertical + margin/10,
	}
	threatAt := func(targetAlt float64) (bool, float64) {
		const lookahead = 90.0
		const steps = 45
		climb := e.own.ClimbRate
		for i := 0; i <= steps; i++ {
			t := lookahead * float64(i) / float64(steps)
			// Ownship altitude converges to targetAlt at the climb rate.
			oz := e.own.Pos.Z
			dz := targetAlt - oz
			if math.Abs(dz) > climb*t {
				oz += math.Copysign(climb*t, dz)
			} else {
				oz = targetAlt
			}
			o := wireless.Position{
				X: e.own.Pos.X + e.own.Vel.X*t,
				Y: e.own.Pos.Y + e.own.Vel.Y*t,
				Z: oz,
			}
			p := wireless.Position{
				X: predicted.X + e.estVel.X*t,
				Y: predicted.Y + e.estVel.Y*t,
				Z: predicted.Z + e.estVel.Z*t,
			}
			if padded.Violated(o, p) {
				return true, p.Z
			}
		}
		return false, 0
	}
	if e.haveEst {
		conflict, conflictAlt := threatAt(e.own.TargetAlt)
		switch {
		case conflict:
			e.clearStreak = 0
			e.res.Maneuvered = true
			// Resolve away from the intruder's altitude at conflict time;
			// verify the candidate actually clears, otherwise widen.
			for _, candidate := range resolutionAltitudes(conflictAlt, padded.Vertical) {
				if bad, _ := threatAt(candidate); !bad {
					e.own.TargetAlt = candidate
					break
				}
			}
		case e.own.TargetAlt != e.clearedAlt():
			// Return to the cleared level only after a stable all-clear,
			// and only if the return path itself is conflict-free.
			e.clearStreak++
			if e.clearStreak > 25 {
				if bad, _ := threatAt(e.clearedAlt()); !bad {
					e.own.TargetAlt = e.clearedAlt()
				}
			}
		}
	}
	if !e.haveEst && level == core.LevelSafe {
		// Blind in shared airspace: hold altitude, slow down (the safe
		// LoS for an RPV without surveillance).
		e.own.Speed = 70
	} else {
		e.own.Speed = ownCruiseSpeed
	}

	e.own.Step(dt)
	e.intruder.Step(dt)
	e.ownRadio.SetPosition(e.own.Pos)

	// Separation accounting against ground truth.
	dx, dy := e.own.Pos.X-e.intruder.Pos.X, e.own.Pos.Y-e.intruder.Pos.Y
	lateral := math.Sqrt(dx*dx + dy*dy)
	vertical := math.Abs(e.own.Pos.Z - e.intruder.Pos.Z)
	if e.cfg.Minima.Violated(e.own.Pos, e.intruder.Pos) {
		e.res.ViolationTicks++
	}
	// Track the closest approach (pointwise minimum of both components
	// when inside lateral conflict range, otherwise lateral only).
	if lateral < e.res.MinLateral {
		e.res.MinLateral = lateral
		e.res.MinVertical = vertical
	}
}

// marginForLoS returns the extra separation padding demanded at a level:
// poorer knowledge of the intruder demands a wider berth — the avionic
// form of "higher LoS, smaller margin".
func marginForLoS(level core.LoS) float64 {
	switch {
	case level >= 3:
		return 200
	case level == 2:
		return 1200
	default:
		return 3000
	}
}

// MissionLeg is one segment of the RPV mission profile (Fig. 6).
type MissionLeg struct {
	Name string
	// TargetAlt is the leg's altitude.
	TargetAlt float64
	// Waypoint is the leg's end point (X, Y).
	Waypoint wireless.Position
}

// RPVMission is the Fig. 6 profile: climb into non-segregated airspace,
// sweep a grid, descend, hand back to ground control, land.
func RPVMission() []MissionLeg {
	return []MissionLeg{
		{Name: "climb", TargetAlt: 3000, Waypoint: wireless.Position{X: 5000}},
		{Name: "sweep-1", TargetAlt: 3000, Waypoint: wireless.Position{X: 15000, Y: 0}},
		{Name: "sweep-2", TargetAlt: 3000, Waypoint: wireless.Position{X: 15000, Y: 2000}},
		{Name: "sweep-3", TargetAlt: 3000, Waypoint: wireless.Position{X: 5000, Y: 2000}},
		{Name: "sweep-4", TargetAlt: 3000, Waypoint: wireless.Position{X: 5000, Y: 4000}},
		{Name: "sweep-5", TargetAlt: 3000, Waypoint: wireless.Position{X: 15000, Y: 4000}},
		{Name: "descend", TargetAlt: 500, Waypoint: wireless.Position{X: 20000, Y: 4000}},
		{Name: "land", TargetAlt: 0, Waypoint: wireless.Position{X: 22000, Y: 4000}},
	}
}

// FlyMission runs an aircraft through the legs and returns the flown track
// sampled every dt seconds, plus the total mission time in seconds.
func FlyMission(a *Aircraft, legs []MissionLeg, dt float64, maxTime float64) ([]wireless.Position, float64) {
	var track []wireless.Position
	elapsed := 0.0
	for _, leg := range legs {
		a.TargetAlt = leg.TargetAlt
		for elapsed < maxTime {
			dx := leg.Waypoint.X - a.Pos.X
			dy := leg.Waypoint.Y - a.Pos.Y
			dist := math.Sqrt(dx*dx + dy*dy)
			if dist < a.Speed*dt*1.5 && math.Abs(a.Pos.Z-leg.TargetAlt) < 20 {
				break
			}
			if dist > 1 {
				a.Heading = math.Atan2(dy, dx)
			}
			a.Step(dt)
			track = append(track, a.Pos)
			elapsed += dt
		}
	}
	return track, elapsed
}

// SummarizeTrack reduces a track to a histogram of altitudes (used by the
// mission-profile bench output).
func SummarizeTrack(track []wireless.Position) *metrics.Histogram {
	var h metrics.Histogram
	for _, p := range track {
		h.Observe(p.Z)
	}
	return &h
}
