package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"karyon/internal/metrics"
	"karyon/internal/sim"
)

// PanicError reports a replica whose scenario panicked. The backend
// recovers the panic so one bad scenario fails only its run — never the
// process hosting it (the karyon-d daemon in particular) — and captures
// the goroutine stack at the panic site so the failure is debuggable from
// the job status alone.
type PanicError struct {
	// Value is what was passed to panic, rendered as a string.
	Value string
	// Stack is the panicking goroutine's stack (runtime/debug.Stack form).
	Stack string
}

// Error keeps the one-line form; the stack travels as a field so callers
// (the service's job status) can surface it separately.
func (e *PanicError) Error() string {
	return fmt.Sprintf("scenario panicked: %s", e.Value)
}

// ReplicaEmit receives one replica's result during a streaming run. The
// backend calls it once per replica in seed order — replica i is emitted as
// soon as it and every earlier replica have completed — so consumers can
// forward results incrementally while keeping the stream a pure function of
// (scenario config, seed matrix). Calls are serialized (never concurrent)
// but may happen on a worker goroutine; the callback must not block for
// long or it stalls the pool.
type ReplicaEmit func(index int, seed int64, res *metrics.Result)

// Backend executes replicated scenario runs on some substrate. The local
// backend is the in-process worker pool this package has always had; the
// interface exists so callers — the karyon-d service today, remote
// executors tomorrow — depend on "run this seed matrix", not on where it
// runs. Implementations must uphold the harness determinism contract: the
// Report, and the byte content and order of emitted replica results, are
// pure functions of (scenario, Options.Seed, Options.Replicas,
// Options.Shards) — never of the backend or its parallelism.
type Backend interface {
	// Name identifies the backend in logs and service stats.
	Name() string
	// Run executes the scenario once per seed in the matrix and returns the
	// seed-order aggregate. If emit is non-nil it is invoked as described on
	// ReplicaEmit; on error, emission stops at the first incomplete or
	// failed replica and Run reports the failure.
	Run(ctx context.Context, s Scenario, opts Options, emit ReplicaEmit) (*Report, error)
}

// Runner executes replicated runs through a pluggable Backend. The zero
// value runs in process (LocalBackend); the karyon-d service wraps one
// Runner per worker slot, and a future remote backend slots in here
// without touching any call site.
type Runner struct {
	Backend Backend
}

func (r Runner) backend() Backend {
	if r.Backend == nil {
		return LocalBackend{}
	}
	return r.Backend
}

// Run executes the scenario across the seed matrix and returns the
// aggregated report.
func (r Runner) Run(ctx context.Context, s Scenario, opts Options) (*Report, error) {
	return r.backend().Run(ctx, s, opts, nil)
}

// RunStream is Run plus incremental delivery: emit receives each replica
// result in seed order as soon as it is available (see ReplicaEmit).
func (r Runner) RunStream(ctx context.Context, s Scenario, opts Options, emit ReplicaEmit) (*Report, error) {
	return r.backend().Run(ctx, s, opts, emit)
}

// LocalBackend runs replicas on an in-process worker pool: one
// deterministic kernel per goroutine, kernels never shared, results merged
// in seed order. It is the execution engine behind the package-level Run.
type LocalBackend struct{}

// Name implements Backend.
func (LocalBackend) Name() string { return "local" }

// Run implements Backend. A failed, panicked, or cancelled replica
// surfaces as an error — never as a silent gap in the aggregate or the
// emitted stream.
func (LocalBackend) Run(ctx context.Context, s Scenario, opts Options, emit ReplicaEmit) (*Report, error) {
	opts = opts.normalized()
	seeds := Seeds(opts.Seed, opts.Replicas)
	results := make([]*metrics.Result, len(seeds))
	errs := make([]error, len(seeds))

	idx := make(chan int, len(seeds))
	for i := range seeds {
		idx <- i
	}
	close(idx)

	// finished releases completed replicas to emit in seed order: worker
	// goroutines complete out of order, so each completion drains the
	// longest fully-done prefix. A failed replica stops the stream — the
	// run errors as a whole, and a partial suffix must not leak.
	var emitMu sync.Mutex
	done := make([]bool, len(seeds))
	next := 0
	finished := func(i int) {
		if emit == nil {
			return
		}
		emitMu.Lock()
		defer emitMu.Unlock()
		done[i] = true
		for next < len(seeds) && done[next] && errs[next] == nil && results[next] != nil {
			emit(next, seeds[next], results[next])
			next++
		}
	}

	// failed short-circuits queued replicas once any replica errs; their
	// slots stay nil but the run reports the first error anyway.
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < opts.Parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if failed.Load() {
					continue
				}
				results[i], errs[i] = runReplica(ctx, s, seeds[i], opts.Shards)
				if errs[i] != nil {
					failed.Store(true)
				}
				finished(i)
			}
		}()
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("harness: %s replica %d (seed %d): %w", s.Name(), i, seeds[i], err)
		}
	}
	return &Report{
		Name:     s.Name(),
		BaseSeed: opts.Seed,
		Seeds:    seeds,
		Summary:  metrics.Aggregate(results),
	}, nil
}

func runReplica(ctx context.Context, s Scenario, seed int64, shards int) (res *metrics.Result, err error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Value: fmt.Sprint(p), Stack: string(debug.Stack())}
		}
	}()
	if sh, ok := s.(Shardable); ok {
		res, err = sh.RunSharded(ctx, seed, shards)
	} else {
		res, err = s.Run(sim.NewKernel(seed))
	}
	if err == nil && res == nil {
		err = errors.New("scenario returned no result")
	}
	return res, err
}
