// Package harness unifies KARYON's two execution paths — the named
// scenarios of cmd/karyon-sim and the E1..E16 experiment registry — behind
// one replicated, seed-matrix runner.
//
// A Scenario is a pure function of a kernel seed: configure, build on a
// fresh sim.Kernel, run, collect a structured metrics.Result. The Runner
// executes N replicas of a scenario across a worker pool (one deterministic
// kernel per goroutine; kernels are never shared) and merges the replica
// results in seed order, so the aggregated output is byte-identical
// regardless of the parallelism that produced it. The paper's safety
// argument is probabilistic — evidence comes from many replicated runs, not
// single traces — and this package is what makes "many" cheap.
//
// Where the replicas execute is a Backend: Runner's zero value uses the
// in-process LocalBackend, and the karyon-d service (internal/service)
// builds on the same Runner — local execution today, remote execution
// tomorrow. Backends can also stream each replica's result in seed order
// as it completes (Runner.RunStream), which is what makes a run's NDJSON
// result stream deterministic enough to be content-addressed and cached.
package harness

import (
	"context"

	"karyon/internal/metrics"
	"karyon/internal/sim"
)

// Scenario is one runnable simulation: build a model on the supplied fresh
// kernel, run it, and collect structured results. Implementations must be
// pure functions of the kernel's seed — all randomness from k.Rand(), no
// wall-clock, no shared mutable state — so that replicas parallelize
// safely and a seed matrix fully determines the aggregate.
type Scenario interface {
	Name() string
	Run(k *sim.Kernel) (*metrics.Result, error)
}

// Func adapts a plain function to Scenario.
type Func struct {
	ScenarioName string
	Fn           func(k *sim.Kernel) (*metrics.Result, error)
}

// Name implements Scenario.
func (f Func) Name() string { return f.ScenarioName }

// Run implements Scenario.
func (f Func) Run(k *sim.Kernel) (*metrics.Result, error) { return f.Fn(k) }

// Shardable marks a scenario that can split one replica's world across
// shard kernels (sim.ShardedKernel). The runner routes every replica of a
// Shardable scenario through RunSharded — including shards == 1 — so the
// execution path, and therefore the output bytes, are identical for every
// shard count. Implementations must uphold the sharded-kernel determinism
// contract: the result is a pure function of (seed, scenario config),
// never of shards.
type Shardable interface {
	Scenario
	// RunSharded builds the replica's world over a sharded kernel of the
	// given width and runs it to completion. Cancellation of ctx must
	// surface as an error (sim.ShardedKernel.Run checks it at every window
	// barrier).
	RunSharded(ctx context.Context, seed int64, shards int) (*metrics.Result, error)
}

// SeedStride spaces replica seeds. Experiments derive sub-kernel seeds by
// small offsets from their base seed (seed+1, seed+2, ...); a wide prime
// stride keeps replica seed ranges disjoint so replicas never reuse each
// other's sub-streams.
const SeedStride = 1_000_003

// Seeds returns the deterministic seed matrix for a base seed: replica i
// runs with base + i*SeedStride.
func Seeds(base int64, replicas int) []int64 {
	if replicas < 1 {
		replicas = 1
	}
	seeds := make([]int64, replicas)
	for i := range seeds {
		seeds[i] = base + int64(i)*SeedStride
	}
	return seeds
}

// Options configures one replicated run.
type Options struct {
	// Seed is the base of the seed matrix.
	Seed int64
	// Replicas is the number of independent runs to aggregate (min 1).
	Replicas int
	// Parallel is the worker-pool width (min 1). It affects wall time only:
	// the aggregated output is identical for every value.
	Parallel int
	// Shards splits each replica's world across this many shard kernels
	// (min 1). Only Shardable scenarios use it; like Parallel it affects
	// wall time only — the output is byte-identical for every value.
	Shards int
}

func (o Options) normalized() Options {
	if o.Replicas < 1 {
		o.Replicas = 1
	}
	if o.Parallel < 1 {
		o.Parallel = 1
	}
	if o.Parallel > o.Replicas {
		o.Parallel = o.Replicas
	}
	if o.Shards < 1 {
		o.Shards = 1
	}
	return o
}

// Report is the outcome of one replicated scenario run.
type Report struct {
	Name     string           `json:"name"`
	BaseSeed int64            `json:"base_seed"`
	Seeds    []int64          `json:"seeds"`
	Summary  *metrics.Summary `json:"summary"`
}

// Run executes the scenario once per seed in the matrix, fanning replicas
// across opts.Parallel workers of the in-process backend, and aggregates
// the results in seed order. A failed, panicked, or cancelled replica
// surfaces as an error — never as a silent gap in the aggregate. It is
// shorthand for Runner{}.Run; use a Runner with an explicit Backend to
// execute elsewhere.
func Run(ctx context.Context, s Scenario, opts Options) (*Report, error) {
	return Runner{}.Run(ctx, s, opts)
}
