package harness

import (
	"context"
	"fmt"
	"time"

	"karyon/internal/avionics"
	"karyon/internal/core"
	"karyon/internal/metrics"
	"karyon/internal/sim"
	"karyon/internal/world"
)

// HighwayScenario runs the multi-car highway world under one LoS policy.
type HighwayScenario struct {
	Duration time.Duration
	Cars     int
	// Mode is adaptive, fixed1, fixed2, fixed3, or reckless.
	Mode string
}

// Name implements Scenario.
func (s HighwayScenario) Name() string { return "highway" }

// Run implements Scenario.
func (s HighwayScenario) Run(k *sim.Kernel) (*metrics.Result, error) {
	cfg := world.DefaultHighwayConfig()
	cfg.Cars = s.Cars
	switch s.Mode {
	case "adaptive":
		cfg.Mode = world.ModeAdaptive
	case "fixed1", "fixed2", "fixed3":
		cfg.Mode = world.ModeFixed
		cfg.FixedLoS = core.LoS(s.Mode[len(s.Mode)-1] - '0')
	case "reckless":
		cfg.Mode = world.ModeReckless
		cfg.FixedLoS = 3
	default:
		return nil, fmt.Errorf("unknown mode %q", s.Mode)
	}
	h, err := world.NewHighway(k, cfg)
	if err != nil {
		return nil, err
	}
	if err := h.Start(); err != nil {
		return nil, err
	}
	k.RunFor(sim.FromDuration(s.Duration))
	res := metrics.NewResult(fmt.Sprintf("highway: %d cars, %s simulated", s.Cars, s.Duration))
	levels := map[core.LoS]int{}
	for _, c := range h.Cars() {
		levels[c.LoS()]++
	}
	res.Record("mode", s.Mode).
		Int("events", int64(k.Executed())).
		Val("mean speed m/s", h.MeanSpeed(), metrics.F2).
		Val("flow veh/h", h.Flow(), metrics.F2).
		Val("min timegap s", h.TimeGaps.Min(), metrics.F2).
		Val("p5 timegap s", h.TimeGaps.Percentile(5), metrics.F2).
		Int("collisions", h.Collisions).
		Int("final LoS1", int64(levels[1])).
		Int("final LoS2", int64(levels[2])).
		Int("final LoS3", int64(levels[3]))
	return res, nil
}

// MegaHighwayScenario runs the partitioned large-world highway
// (world.ShardedHighway): the scenario whose worlds are big enough that
// one core cannot hold them, and the reason the harness grew a shards
// dimension. It implements Shardable, so the runner splits each replica
// across -shards shard kernels; the output is byte-identical for every
// shard count.
type MegaHighwayScenario struct {
	Duration time.Duration
	Cars     int
	// Length is the ring circumference in meters (0 = default).
	Length float64
	// Loss is the per-beacon loss probability, used verbatim — unlike
	// Cars/Length, zero means a genuinely lossless channel, not "use the
	// config default" (the CLI flag supplies the 5% default, and a
	// lossless run must remain expressible).
	Loss float64
}

// Name implements Scenario.
func (s MegaHighwayScenario) Name() string { return "megahighway" }

// Run implements Scenario: an unsharded replica is just the sharded path
// at width 1, which keeps the two paths byte-identical by construction.
func (s MegaHighwayScenario) Run(k *sim.Kernel) (*metrics.Result, error) {
	return s.RunSharded(context.Background(), k.Seed(), 1)
}

// RunSharded implements Shardable.
func (s MegaHighwayScenario) RunSharded(ctx context.Context, seed int64, shards int) (*metrics.Result, error) {
	cfg := world.DefaultShardedHighwayConfig()
	if s.Cars > 0 {
		cfg.Cars = s.Cars
	}
	if s.Length > 0 {
		cfg.Length = s.Length
	}
	cfg.Loss = s.Loss
	sk, err := sim.NewShardedKernel(seed, shards, cfg.BeaconPeriod)
	if err != nil {
		return nil, err
	}
	h, err := world.NewShardedHighway(sk, cfg)
	if err != nil {
		return nil, err
	}
	if err := h.Start(); err != nil {
		return nil, err
	}
	if err := sk.Run(ctx, sim.FromDuration(s.Duration)); err != nil {
		return nil, err
	}
	res := h.Result()
	res.Records[0].Int("events", int64(sk.Executed()))
	return res, nil
}

// IntersectionScenario runs the traffic-light intersection, optionally
// failing the physical light and engaging the virtual backup.
type IntersectionScenario struct {
	Duration      time.Duration
	FailAt        time.Duration
	VirtualBackup bool
}

// Name implements Scenario.
func (s IntersectionScenario) Name() string { return "intersection" }

// Run implements Scenario.
func (s IntersectionScenario) Run(k *sim.Kernel) (*metrics.Result, error) {
	cfg := world.DefaultIntersectionConfig()
	cfg.LightFailsAt = sim.FromDuration(s.FailAt)
	cfg.VirtualBackup = s.VirtualBackup
	w, err := world.NewIntersection(k, cfg)
	if err != nil {
		return nil, err
	}
	if err := w.Start(); err != nil {
		return nil, err
	}
	k.RunFor(sim.FromDuration(s.Duration))
	res := metrics.NewResult(fmt.Sprintf("intersection: %s simulated", s.Duration))
	res.Record().
		Bool("light alive", w.LightAlive()).
		Int("crossed NS", w.Crossed[world.RoadNS]).
		Int("crossed EW", w.Crossed[world.RoadEW]).
		Val("wait p95 s", w.WaitTimes.Percentile(95), metrics.F2).
		Int("conflicts", w.Conflicts)
	w.Stop()
	return res, nil
}

// EncounterScenario runs one two-aircraft avionic encounter geometry.
type EncounterScenario struct {
	// Geometry is same-direction, leveled-crossing, or level-change.
	Geometry string
	// Collaborative selects ADS-B traffic; false means voice-only.
	Collaborative bool
}

// Name implements Scenario.
func (s EncounterScenario) Name() string { return "encounter" }

// Run implements Scenario.
func (s EncounterScenario) Run(k *sim.Kernel) (*metrics.Result, error) {
	var geom avionics.Scenario
	for _, cand := range avionics.Scenarios() {
		if cand.String() == s.Geometry {
			geom = cand
		}
	}
	if geom == 0 {
		return nil, fmt.Errorf("unknown geometry %q", s.Geometry)
	}
	e, err := avionics.NewEncounter(k, avionics.DefaultEncounterConfig(geom, s.Collaborative))
	if err != nil {
		return nil, err
	}
	enc, err := e.Run()
	if err != nil {
		return nil, err
	}
	traffic := "voice"
	if s.Collaborative {
		traffic = "ADS-B"
	}
	res := metrics.NewResult(fmt.Sprintf("encounter %s (collaborative=%v)", s.Geometry, s.Collaborative))
	res.Record("geometry", s.Geometry, "traffic", traffic).
		Int("violations ticks", enc.ViolationTicks).
		Val("min lateral m", enc.MinLateral, metrics.F2).
		Val("min vertical m", enc.MinVertical, metrics.F2).
		Bool("maneuvered", enc.Maneuvered).
		Int("LoS at end", int64(enc.LoSAtEnd)).
		Val("LoS3 time", enc.TimeAtLoS3Frac, metrics.Pct)
	return res, nil
}
