package harness

import (
	"context"
	"fmt"
	"os"
	"time"

	"karyon/internal/avionics"
	"karyon/internal/core"
	"karyon/internal/faultinject"
	"karyon/internal/metrics"
	"karyon/internal/sim"
	"karyon/internal/world"
)

// HighwayScenario runs the multi-car highway world under one LoS policy,
// optionally under a reproducible fault campaign — the CLI counterpart of
// the E2/E12 experiments, no registry needed. It implements Shardable:
// every replica runs on the partitioned engine (width 1 when unsharded),
// so the output is byte-identical for every -shards value.
type HighwayScenario struct {
	Duration time.Duration
	Cars     int
	// Mode is adaptive, fixed1, fixed2, fixed3, or reckless.
	Mode string
	// SensorFaultRate injects this many randomized sensor/disturbance/jam
	// campaign events per simulated minute (0 disables the campaign).
	SensorFaultRate float64
	// JamEvery/JamBurst jam the V2V channel for JamBurst every JamEvery
	// (both must be positive to take effect) — reproducible beacon-loss
	// bursts, the paper's inaccessibility periods.
	JamEvery time.Duration
	JamBurst time.Duration
	// Medium routes V2V through the slot-level sharded radio (airtime,
	// collisions, carrier sense, jam windows) instead of abstract loss
	// draws; Channels sets its orthogonal channel count.
	Medium   bool
	Channels int
	// SpecDepth >= 2 lets shards run up to that many windows ahead
	// speculatively with deterministic abort-and-replay. Like Shards it
	// affects wall time only: the simulated records are byte-identical at
	// every depth. It does add a "telemetry" record (see
	// recordSpecTelemetry) whose counters legitimately vary with the
	// execution knobs.
	SpecDepth int
	// TracePath writes a record/replay trace of the run (windows,
	// barrier decisions, digests, periodic checkpoints; see
	// internal/world record.go). Recording requires a single replica and
	// no fault campaign — the trace spec cannot reproduce campaign
	// injections. CheckpointEvery sets the checkpoint interval in
	// windows (0 = default 50); PerturbWindow > 0 forces car 0 to brake
	// at that window's barrier, the deliberate-divergence knob the
	// bisect tooling is tested with.
	TracePath       string
	CheckpointEvery int
	PerturbWindow   uint64
}

// Name implements Scenario.
func (s HighwayScenario) Name() string { return "highway" }

// Run implements Scenario: an unsharded replica is the sharded path at
// width 1, which keeps the two paths byte-identical by construction.
func (s HighwayScenario) Run(k *sim.Kernel) (*metrics.Result, error) {
	return s.RunSharded(context.Background(), k.Seed(), 1)
}

// RunSharded implements Shardable.
func (s HighwayScenario) RunSharded(ctx context.Context, seed int64, shards int) (*metrics.Result, error) {
	cfg := world.DefaultHighwayConfig()
	cfg.Cars = s.Cars
	cfg.Medium = s.Medium
	cfg.Channels = s.Channels
	cfg.CarrierSense = s.Medium // CSMA by default on the slot-level radio
	cfg.SpecDepth = s.SpecDepth
	switch s.Mode {
	case "adaptive":
		cfg.Mode = world.ModeAdaptive
	case "fixed1", "fixed2", "fixed3":
		cfg.Mode = world.ModeFixed
		cfg.FixedLoS = core.LoS(s.Mode[len(s.Mode)-1] - '0')
	case "reckless":
		cfg.Mode = world.ModeReckless
		cfg.FixedLoS = 3
	default:
		return nil, fmt.Errorf("unknown mode %q", s.Mode)
	}
	h, err := world.BuildHighway(seed, shards, cfg)
	if err != nil {
		return nil, err
	}
	if err := h.Start(); err != nil {
		return nil, err
	}
	dur := sim.FromDuration(s.Duration)
	scheduleJams(h, s.JamEvery, s.JamBurst, dur)
	var finishTrace func() error
	if s.TracePath != "" {
		if s.SensorFaultRate > 0 {
			return nil, fmt.Errorf("harness: recording cannot reproduce a fault campaign; disable the fault rate")
		}
		spec := world.TraceSpec{
			Scenario: s.Name(), Seed: seed, Shards: shards, Duration: dur,
			Config: cfg, Jams: jamSpecs(s.JamEvery, s.JamBurst, dur),
			PerturbWindow: s.PerturbWindow,
		}
		if finishTrace, err = attachRecorder(h, s.TracePath, s.CheckpointEvery, spec); err != nil {
			return nil, err
		}
	}
	var rep *faultinject.Report
	if s.SensorFaultRate > 0 {
		events := int(s.SensorFaultRate*s.Duration.Minutes() + 0.5)
		campaign, err := faultinject.Generate(sim.NewStream(seed, 9001, 0).Rand, faultinject.GenerateConfig{
			Duration: dur,
			Warmup:   dur / 10,
			Events:   events,
			Targets:  cfg.Cars,
		})
		if err != nil {
			return nil, err
		}
		if rep, err = faultinject.RunOnHighway(ctx, h, campaign, dur); err != nil {
			return nil, err
		}
	} else if err := h.RunContext(ctx, dur); err != nil {
		return nil, err
	}
	if finishTrace != nil {
		if err := finishTrace(); err != nil {
			return nil, err
		}
	}
	res := metrics.NewResult(fmt.Sprintf("highway: %d cars, %s simulated", cfg.Cars, s.Duration))
	levels := map[core.LoS]int{}
	for _, c := range h.Cars() {
		levels[c.LoS()]++
	}
	rec := res.Record("mode", s.Mode).
		Int("events", int64(h.Kernel().Executed())).
		Val("mean speed m/s", h.MeanSpeed(), metrics.F2).
		Val("flow veh/h", h.Flow(), metrics.F2).
		Val("min timegap s", h.TimeGaps.Min(), metrics.F2).
		Val("p5 timegap s", h.TimeGaps.Percentile(5), metrics.F2).
		Int("collisions", h.Collisions).
		Int("final LoS1", int64(levels[1])).
		Int("final LoS2", int64(levels[2])).
		Int("final LoS3", int64(levels[3]))
	if rep != nil {
		var injected int64
		for _, n := range rep.Injected {
			injected += int64(n)
		}
		rec.Int("faults injected", injected).
			Val("fault coverage", rep.Coverage(), metrics.Pct).
			Val("det.p95 ms", rep.DetectionLatencies.Percentile(95), metrics.F2)
	}
	if s.Medium {
		recordMediumStats(rec, h)
	}
	if cfg.SpecDepth >= 2 {
		recordSpecTelemetry(res, h, s.Medium)
	}
	return res, nil
}

// jammable is a world that accepts barrier-scheduled V2V jam bursts.
type jammable interface {
	Schedule(at sim.Time, fn func())
	JamV2V(d sim.Time)
}

// scheduleJams schedules a JamV2V burst every jamEvery until dur. Both
// knobs must be positive *after* conversion to virtual time: a
// sub-microsecond period truncates to zero and would otherwise loop
// forever without advancing. The schedule is derived through jamSpecs so
// a recorded trace's jam list is, by construction, exactly what the run
// executed.
func scheduleJams(w jammable, jamEvery, jamBurst time.Duration, dur sim.Time) {
	for _, j := range jamSpecs(jamEvery, jamBurst, dur) {
		burst := j.Burst
		w.Schedule(j.At, func() { w.JamV2V(burst) })
	}
}

// jamSpecs materializes the periodic jam schedule as the concrete burst
// list that rides a trace header.
func jamSpecs(jamEvery, jamBurst time.Duration, dur sim.Time) []world.JamSpec {
	every, burst := sim.FromDuration(jamEvery), sim.FromDuration(jamBurst)
	if every <= 0 || burst <= 0 {
		return nil
	}
	var out []world.JamSpec
	for t := every; t < dur; t += every {
		out = append(out, world.JamSpec{At: t, Burst: burst})
	}
	return out
}

// attachRecorder opens the trace file and attaches a recorder to the
// world; the returned finish closes the trace (end marker + flush) and
// the file. Call it exactly once after the run.
func attachRecorder(h *world.Highway, path string, every int, spec world.TraceSpec) (finish func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("harness: creating trace %s: %w", path, err)
	}
	if every <= 0 {
		every = 50
	}
	if err := h.RecordTo(f, spec, every); err != nil {
		f.Close()
		return nil, err
	}
	return func() error {
		ferr := h.FinishRecording()
		if cerr := f.Close(); ferr == nil {
			ferr = cerr
		}
		return ferr
	}, nil
}

// recordMediumStats appends the slot-level radio's accounting to a world
// record: delivery ratio, contention outcomes, and the observed
// inaccessibility durations.
func recordMediumStats(rec *metrics.Record, h *world.Highway) {
	st := h.MediumStats()
	inacc := h.Inaccessibility()
	rec.Val("delivery ratio", st.DeliveryRatio(), metrics.Pct).
		Int("radio collisions", st.Collisions).
		Int("radio deferred", st.Deferred).
		Int("radio retried", st.Retries).
		Int("radio jammed", st.Jammed).
		Val("inacc p95 ms", inacc.Percentile(95), metrics.F2).
		Val("inacc max ms", inacc.Max(), metrics.F2)
}

// recordSpecTelemetry appends the speculation controller's counters as a
// separate record labeled telemetry=speculation. Unlike every other record
// these values describe how the run executed, not what it simulated: they
// legitimately vary with Shards and SpecDepth. Tools diffing reports across
// those knobs must exclude this record — the simulated records stay
// byte-identical under the abort-and-replay contract.
func recordSpecTelemetry(res *metrics.Result, h *world.Highway, medium bool) {
	st := h.SpecStats()
	rec := res.Record("telemetry", "speculation").
		Int("batches", int64(st.Batches)).
		Int("commits", int64(st.Commits)).
		Int("aborts", int64(st.Aborts)).
		Int("windows speculated", int64(st.WindowsSpeculated)).
		Int("windows aborted", int64(st.WindowsAborted)).
		Int("windows replayed", int64(st.WindowsReplayed)).
		Int("fences", int64(st.Fences)).
		Int("depth", int64(st.Depth))
	if medium {
		ms := h.MediumStats()
		rec.Int("frames resolved in-arc", ms.ResolvedLocal).
			Int("frames resolved at barrier", ms.ResolvedBoundary)
	}
}

// MegaHighwayScenario runs the large-world highway: the same full-stack
// engine as HighwayScenario, sized so that one core cannot hold it — the
// reason the harness grew a shards dimension. The output is byte-identical
// for every shard count.
type MegaHighwayScenario struct {
	Duration time.Duration
	Cars     int
	// Length is the ring circumference in meters (0 = default 10 km).
	Length float64
	// Loss is the per-beacon loss probability, used verbatim — unlike
	// Cars/Length, zero means a genuinely lossless channel, not "use the
	// config default" (the CLI flag supplies the 5% default, and a
	// lossless run must remain expressible).
	Loss float64
	// V2VRange is the beacon reach in meters (0 = default 300). It bounds
	// the widest partition: each ring arc must be at least this long, so a
	// 300 km ring at 250 m reach admits 1200 shards.
	V2VRange float64
	// Medium routes V2V through the slot-level sharded radio; Channels
	// sets its orthogonal channel count.
	Medium   bool
	Channels int
	// JamEvery/JamBurst add periodic V2V inaccessibility bursts (both
	// must be positive to take effect).
	JamEvery time.Duration
	JamBurst time.Duration
	// SpecDepth >= 2 enables optimistic shard windows (see
	// HighwayScenario.SpecDepth): wall time only, plus a telemetry record.
	SpecDepth int
	// TracePath/CheckpointEvery/PerturbWindow mirror
	// HighwayScenario's recording knobs.
	TracePath       string
	CheckpointEvery int
	PerturbWindow   uint64
}

// Name implements Scenario.
func (s MegaHighwayScenario) Name() string { return "megahighway" }

// Run implements Scenario.
func (s MegaHighwayScenario) Run(k *sim.Kernel) (*metrics.Result, error) {
	return s.RunSharded(context.Background(), k.Seed(), 1)
}

// RunSharded implements Shardable.
func (s MegaHighwayScenario) RunSharded(ctx context.Context, seed int64, shards int) (*metrics.Result, error) {
	cfg := world.DefaultHighwayConfig()
	cfg.Length = 10000
	cfg.Cars = 200
	cfg.V2VRange = 300
	if s.Cars > 0 {
		cfg.Cars = s.Cars
	}
	if s.Length > 0 {
		cfg.Length = s.Length
	}
	if s.V2VRange > 0 {
		cfg.V2VRange = s.V2VRange
	}
	cfg.Loss = s.Loss
	cfg.Medium = s.Medium
	cfg.Channels = s.Channels
	cfg.CarrierSense = s.Medium
	cfg.SpecDepth = s.SpecDepth
	h, err := world.BuildHighway(seed, shards, cfg)
	if err != nil {
		return nil, err
	}
	if err := h.Start(); err != nil {
		return nil, err
	}
	dur := sim.FromDuration(s.Duration)
	scheduleJams(h, s.JamEvery, s.JamBurst, dur)
	var finishTrace func() error
	if s.TracePath != "" {
		spec := world.TraceSpec{
			Scenario: s.Name(), Seed: seed, Shards: shards, Duration: dur,
			Config: cfg, Jams: jamSpecs(s.JamEvery, s.JamBurst, dur),
			PerturbWindow: s.PerturbWindow,
		}
		if finishTrace, err = attachRecorder(h, s.TracePath, s.CheckpointEvery, spec); err != nil {
			return nil, err
		}
	}
	if err := h.RunContext(ctx, dur); err != nil {
		return nil, err
	}
	if finishTrace != nil {
		if err := finishTrace(); err != nil {
			return nil, err
		}
	}
	sent, delivered, lost := h.BeaconStats()
	var ebrakes int64
	for _, c := range h.Cars() {
		ebrakes += c.EmergencyBrakes
	}
	res := metrics.NewResult(fmt.Sprintf("megahighway: %d cars on a %.0f m ring", cfg.Cars, cfg.Length))
	rec := res.Record().
		Val("mean speed m/s", h.MeanSpeed(), metrics.F2).
		Val("flow veh/h", h.Flow(), metrics.F2).
		Val("min timegap s", h.TimeGaps.Min(), metrics.F2).
		Val("p5 timegap s", h.TimeGaps.Percentile(5), metrics.F2).
		Int("collisions", h.Collisions).
		Int("emergency brakes", ebrakes).
		Int("beacons sent", sent).
		Int("beacons delivered", delivered).
		Int("beacons lost", lost).
		Int("events", int64(h.Kernel().Executed()))
	if s.Medium {
		recordMediumStats(rec, h)
	}
	if cfg.SpecDepth >= 2 {
		recordSpecTelemetry(res, h, s.Medium)
	}
	return res, nil
}

// IntersectionScenario runs the traffic-light intersection, optionally
// failing the physical light (the light-failure-time knob) and engaging
// the virtual backup. Shardable: quadrants map onto shard kernels.
type IntersectionScenario struct {
	Duration      time.Duration
	FailAt        time.Duration
	VirtualBackup bool
	// Medium routes the light's I-am-alive beacons through the slot-level
	// sharded radio; Channels sets its channel count.
	Medium   bool
	Channels int
	// JamEvery/JamBurst add periodic V2V inaccessibility bursts (both
	// must be positive to take effect).
	JamEvery time.Duration
	JamBurst time.Duration
}

// Name implements Scenario.
func (s IntersectionScenario) Name() string { return "intersection" }

// Run implements Scenario.
func (s IntersectionScenario) Run(k *sim.Kernel) (*metrics.Result, error) {
	return s.RunSharded(context.Background(), k.Seed(), 1)
}

// RunSharded implements Shardable.
func (s IntersectionScenario) RunSharded(ctx context.Context, seed int64, shards int) (*metrics.Result, error) {
	cfg := world.DefaultIntersectionConfig()
	cfg.LightFailsAt = sim.FromDuration(s.FailAt)
	cfg.VirtualBackup = s.VirtualBackup
	cfg.Medium = s.Medium
	cfg.Channels = s.Channels
	w, err := world.BuildIntersection(seed, shards, cfg)
	if err != nil {
		return nil, err
	}
	if err := w.Start(); err != nil {
		return nil, err
	}
	dur := sim.FromDuration(s.Duration)
	scheduleJams(w, s.JamEvery, s.JamBurst, dur)
	if err := w.RunContext(ctx, dur); err != nil {
		return nil, err
	}
	res := metrics.NewResult(fmt.Sprintf("intersection: %s simulated", s.Duration))
	res.Record().
		Bool("light alive", w.LightAlive()).
		Int("crossed NS", w.Crossed[world.RoadNS]).
		Int("crossed EW", w.Crossed[world.RoadEW]).
		Val("wait p95 s", w.WaitTimes.Percentile(95), metrics.F2).
		Int("conflicts", w.Conflicts).
		Int("events", int64(w.Kernel().Executed()))
	w.Stop()
	return res, nil
}

// EncounterScenario runs one two-aircraft avionic encounter geometry.
type EncounterScenario struct {
	// Geometry is same-direction, leveled-crossing, or level-change.
	Geometry string
	// Collaborative selects ADS-B traffic; false means voice-only.
	Collaborative bool
}

// Name implements Scenario.
func (s EncounterScenario) Name() string { return "encounter" }

// Run implements Scenario.
func (s EncounterScenario) Run(k *sim.Kernel) (*metrics.Result, error) {
	var geom avionics.Scenario
	for _, cand := range avionics.Scenarios() {
		if cand.String() == s.Geometry {
			geom = cand
		}
	}
	if geom == 0 {
		return nil, fmt.Errorf("unknown geometry %q", s.Geometry)
	}
	e, err := avionics.NewEncounter(k, avionics.DefaultEncounterConfig(geom, s.Collaborative))
	if err != nil {
		return nil, err
	}
	enc, err := e.Run()
	if err != nil {
		return nil, err
	}
	traffic := "voice"
	if s.Collaborative {
		traffic = "ADS-B"
	}
	res := metrics.NewResult(fmt.Sprintf("encounter %s (collaborative=%v)", s.Geometry, s.Collaborative))
	res.Record("geometry", s.Geometry, "traffic", traffic).
		Int("violations ticks", enc.ViolationTicks).
		Val("min lateral m", enc.MinLateral, metrics.F2).
		Val("min vertical m", enc.MinVertical, metrics.F2).
		Bool("maneuvered", enc.Maneuvered).
		Int("LoS at end", int64(enc.LoSAtEnd)).
		Val("LoS3 time", enc.TimeAtLoS3Frac, metrics.Pct)
	return res, nil
}
