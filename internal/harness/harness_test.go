package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"karyon/internal/metrics"
	"karyon/internal/sim"
)

// noisy is a scenario whose records depend on the kernel's rand stream and
// seed, so any cross-replica state sharing or ordering bug changes output.
func noisy() Scenario {
	return Func{
		ScenarioName: "noisy",
		Fn: func(k *sim.Kernel) (*metrics.Result, error) {
			res := metrics.NewResult("noisy")
			var sum float64
			k.Schedule(sim.Millisecond, func() {
				sum = k.Rand().Float64() * float64(k.Seed()%997)
			})
			k.RunFor(2 * sim.Millisecond)
			res.Record("case", "a").
				Val("sum", sum, metrics.F3).
				Int("events", int64(k.Executed()))
			return res, nil
		},
	}
}

func report(t *testing.T, parallel int) string {
	t.Helper()
	rep, err := Run(context.Background(), noisy(), Options{Seed: 11, Replicas: 16, Parallel: parallel})
	if err != nil {
		t.Fatal(err)
	}
	js, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return rep.Summary.Table().String() + "\n" + string(js)
}

// The tentpole invariant: the same seed matrix produces byte-identical
// aggregated output (text and JSON) for every worker-pool width.
func TestParallelismDoesNotChangeOutput(t *testing.T) {
	serial := report(t, 1)
	for _, parallel := range []int{2, 4, 8, 32} {
		if got := report(t, parallel); got != serial {
			t.Fatalf("parallel=%d changed output:\nserial:\n%s\nparallel:\n%s", parallel, serial, got)
		}
	}
	if !strings.Contains(serial, "±") {
		t.Fatalf("aggregated output missing dispersion cells:\n%s", serial)
	}
}

func TestSeedMatrix(t *testing.T) {
	seeds := Seeds(5, 3)
	want := []int64{5, 5 + SeedStride, 5 + 2*SeedStride}
	for i := range want {
		if seeds[i] != want[i] {
			t.Fatalf("seeds = %v, want %v", seeds, want)
		}
	}
}

// A failing replica must surface as an error — never as a silent gap in
// the aggregate.
func TestReplicaErrorSurfaces(t *testing.T) {
	boom := errors.New("boom")
	s := Func{
		ScenarioName: "flaky",
		Fn: func(k *sim.Kernel) (*metrics.Result, error) {
			if k.Seed() != 11 { // every replica after the first
				return nil, boom
			}
			return metrics.NewResult("flaky"), nil
		},
	}
	_, err := Run(context.Background(), s, Options{Seed: 11, Replicas: 4, Parallel: 2})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if err == nil || !strings.Contains(err.Error(), "flaky") {
		t.Fatalf("error does not identify the scenario: %v", err)
	}
}

func TestPanickingReplicaSurfaces(t *testing.T) {
	s := Func{
		ScenarioName: "panicky",
		Fn: func(k *sim.Kernel) (*metrics.Result, error) {
			panic(fmt.Sprintf("seed %d", k.Seed()))
		},
	}
	_, err := Run(context.Background(), s, Options{Seed: 1, Replicas: 2, Parallel: 2})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panic not surfaced: %v", err)
	}
}

func TestNilResultIsAnError(t *testing.T) {
	s := Func{
		ScenarioName: "empty",
		Fn:           func(k *sim.Kernel) (*metrics.Result, error) { return nil, nil },
	}
	_, err := Run(context.Background(), s, Options{Replicas: 1})
	if err == nil {
		t.Fatal("nil result accepted")
	}
}

func TestCancelledContextSurfaces(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, noisy(), Options{Seed: 1, Replicas: 4, Parallel: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestScenarioImplementations(t *testing.T) {
	for _, tc := range []struct {
		sc   Scenario
		name string
	}{
		{HighwayScenario{Duration: 5e9, Cars: 5, Mode: "adaptive"}, "highway"},
		{IntersectionScenario{Duration: 10e9, VirtualBackup: true}, "intersection"},
		{EncounterScenario{Geometry: "same-direction", Collaborative: true}, "encounter"},
	} {
		if tc.sc.Name() != tc.name {
			t.Fatalf("Name() = %q, want %q", tc.sc.Name(), tc.name)
		}
		res, err := tc.sc.Run(sim.NewKernel(1))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(res.Records) == 0 || len(res.Records[0].Values) == 0 {
			t.Fatalf("%s produced no measurements", tc.name)
		}
	}
	if _, err := (HighwayScenario{Duration: 1e9, Cars: 3, Mode: "bogus"}).Run(sim.NewKernel(1)); err == nil {
		t.Fatal("bogus highway mode accepted")
	}
	if _, err := (EncounterScenario{Geometry: "bogus"}).Run(sim.NewKernel(1)); err == nil {
		t.Fatal("bogus geometry accepted")
	}
}
