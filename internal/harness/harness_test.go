package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"karyon/internal/metrics"
	"karyon/internal/sim"
)

// noisy is a scenario whose records depend on the kernel's rand stream and
// seed, so any cross-replica state sharing or ordering bug changes output.
func noisy() Scenario {
	return Func{
		ScenarioName: "noisy",
		Fn: func(k *sim.Kernel) (*metrics.Result, error) {
			res := metrics.NewResult("noisy")
			var sum float64
			k.Schedule(sim.Millisecond, func() {
				sum = k.Rand().Float64() * float64(k.Seed()%997)
			})
			k.RunFor(2 * sim.Millisecond)
			res.Record("case", "a").
				Val("sum", sum, metrics.F3).
				Int("events", int64(k.Executed()))
			return res, nil
		},
	}
}

func report(t *testing.T, parallel int) string {
	t.Helper()
	rep, err := Run(context.Background(), noisy(), Options{Seed: 11, Replicas: 16, Parallel: parallel})
	if err != nil {
		t.Fatal(err)
	}
	js, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return rep.Summary.Table().String() + "\n" + string(js)
}

// The tentpole invariant: the same seed matrix produces byte-identical
// aggregated output (text and JSON) for every worker-pool width.
func TestParallelismDoesNotChangeOutput(t *testing.T) {
	serial := report(t, 1)
	for _, parallel := range []int{2, 4, 8, 32} {
		if got := report(t, parallel); got != serial {
			t.Fatalf("parallel=%d changed output:\nserial:\n%s\nparallel:\n%s", parallel, serial, got)
		}
	}
	if !strings.Contains(serial, "±") {
		t.Fatalf("aggregated output missing dispersion cells:\n%s", serial)
	}
}

func TestSeedMatrix(t *testing.T) {
	seeds := Seeds(5, 3)
	want := []int64{5, 5 + SeedStride, 5 + 2*SeedStride}
	for i := range want {
		if seeds[i] != want[i] {
			t.Fatalf("seeds = %v, want %v", seeds, want)
		}
	}
}

// A failing replica must surface as an error — never as a silent gap in
// the aggregate.
func TestReplicaErrorSurfaces(t *testing.T) {
	boom := errors.New("boom")
	s := Func{
		ScenarioName: "flaky",
		Fn: func(k *sim.Kernel) (*metrics.Result, error) {
			if k.Seed() != 11 { // every replica after the first
				return nil, boom
			}
			return metrics.NewResult("flaky"), nil
		},
	}
	_, err := Run(context.Background(), s, Options{Seed: 11, Replicas: 4, Parallel: 2})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if err == nil || !strings.Contains(err.Error(), "flaky") {
		t.Fatalf("error does not identify the scenario: %v", err)
	}
}

func TestPanickingReplicaSurfaces(t *testing.T) {
	s := Func{
		ScenarioName: "panicky",
		Fn: func(k *sim.Kernel) (*metrics.Result, error) {
			panic(fmt.Sprintf("seed %d", k.Seed()))
		},
	}
	_, err := Run(context.Background(), s, Options{Seed: 1, Replicas: 2, Parallel: 2})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panic not surfaced: %v", err)
	}
	// The typed PanicError survives the replica-identifying wrap, carrying
	// the goroutine stack callers need to debug a panic they did not host.
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panic not typed as PanicError: %v", err)
	}
	if pe.Stack == "" || !strings.Contains(pe.Stack, "goroutine") {
		t.Fatalf("PanicError carries no stack: %q", pe.Stack)
	}
}

func TestNilResultIsAnError(t *testing.T) {
	s := Func{
		ScenarioName: "empty",
		Fn:           func(k *sim.Kernel) (*metrics.Result, error) { return nil, nil },
	}
	_, err := Run(context.Background(), s, Options{Replicas: 1})
	if err == nil {
		t.Fatal("nil result accepted")
	}
}

func TestCancelledContextSurfaces(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, noisy(), Options{Seed: 1, Replicas: 4, Parallel: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// shardableFunc is a test scenario that builds its own sharded kernel, so
// the failure paths of the window machinery can be driven from tests.
type shardableFunc struct {
	name string
	fn   func(ctx context.Context, sk *sim.ShardedKernel) (*metrics.Result, error)
}

func (s shardableFunc) Name() string { return s.name }

func (s shardableFunc) Run(k *sim.Kernel) (*metrics.Result, error) {
	return s.RunSharded(context.Background(), k.Seed(), 1)
}

func (s shardableFunc) RunSharded(ctx context.Context, seed int64, shards int) (*metrics.Result, error) {
	sk, err := sim.NewShardedKernel(seed, shards, 10*sim.Millisecond)
	if err != nil {
		return nil, err
	}
	return s.fn(ctx, sk)
}

// The runner must route Shardable scenarios through RunSharded at the
// requested width, and the report must be byte-identical for every width.
func TestShardsDoNotChangeOutput(t *testing.T) {
	counting := shardableFunc{
		name: "counting",
		fn: func(ctx context.Context, sk *sim.ShardedKernel) (*metrics.Result, error) {
			total := make([]int64, sk.Shards())
			for i := 0; i < sk.Shards(); i++ {
				i := i
				if _, err := sk.Shard(i).Kernel().Every(sim.Millisecond, func() { total[i]++ }); err != nil {
					return nil, err
				}
			}
			if err := sk.Run(ctx, 50*sim.Millisecond); err != nil {
				return nil, err
			}
			var sum int64
			for _, n := range total {
				sum += n
			}
			res := metrics.NewResult("counting")
			// Per-shard tick totals scale with the width, so report a
			// width-invariant value: ticks per shard.
			res.Record().Int("ticks per shard", sum/int64(sk.Shards()))
			return res, nil
		},
	}
	var want string
	for _, shards := range []int{1, 2, 4} {
		rep, err := Run(context.Background(), counting,
			Options{Seed: 3, Replicas: 3, Parallel: 2, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if want == "" {
			want = string(js)
		} else if string(js) != want {
			t.Fatalf("shards=%d changed report:\n%s\nvs\n%s", shards, js, want)
		}
	}
}

// A replica that panics inside a shard barrier (window hook or mailbox
// drain) must surface as an error — never a hang or a silent gap.
func TestShardBarrierPanicSurfaces(t *testing.T) {
	s := shardableFunc{
		name: "barrier-panic",
		fn: func(ctx context.Context, sk *sim.ShardedKernel) (*metrics.Result, error) {
			windows := 0
			sk.OnWindow(func(sim.Time) {
				if windows++; windows == 3 {
					panic("barrier boom")
				}
			})
			if err := sk.Run(ctx, sim.Second); err != nil {
				return nil, err
			}
			return metrics.NewResult("unreachable"), nil
		},
	}
	_, err := Run(context.Background(), s, Options{Seed: 1, Replicas: 2, Parallel: 2, Shards: 2})
	if err == nil || !strings.Contains(err.Error(), "barrier boom") {
		t.Fatalf("barrier panic not surfaced: %v", err)
	}
	if !strings.Contains(err.Error(), "barrier-panic") {
		t.Fatalf("error does not identify the scenario: %v", err)
	}
}

// Cancellation mid-window must stop the sharded run at the next barrier
// and surface context.Canceled through the runner.
func TestShardCancellationMidWindowSurfaces(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := shardableFunc{
		name: "cancel-mid-window",
		fn: func(ctx context.Context, sk *sim.ShardedKernel) (*metrics.Result, error) {
			// Cancel from inside a window, mid-run.
			sk.Shard(0).Kernel().Schedule(25*sim.Millisecond, cancel)
			if err := sk.Run(ctx, sim.Second); err != nil {
				return nil, err
			}
			return metrics.NewResult("unreachable"), nil
		},
	}
	_, err := Run(ctx, s, Options{Seed: 1, Replicas: 1, Shards: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestScenarioImplementations(t *testing.T) {
	for _, tc := range []struct {
		sc   Scenario
		name string
	}{
		{HighwayScenario{Duration: 5e9, Cars: 5, Mode: "adaptive"}, "highway"},
		{MegaHighwayScenario{Duration: 1e9, Cars: 40, Length: 2000}, "megahighway"},
		{IntersectionScenario{Duration: 10e9, VirtualBackup: true}, "intersection"},
		{EncounterScenario{Geometry: "same-direction", Collaborative: true}, "encounter"},
	} {
		if tc.sc.Name() != tc.name {
			t.Fatalf("Name() = %q, want %q", tc.sc.Name(), tc.name)
		}
		res, err := tc.sc.Run(sim.NewKernel(1))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(res.Records) == 0 || len(res.Records[0].Values) == 0 {
			t.Fatalf("%s produced no measurements", tc.name)
		}
	}
	if _, err := (HighwayScenario{Duration: 1e9, Cars: 3, Mode: "bogus"}).Run(sim.NewKernel(1)); err == nil {
		t.Fatal("bogus highway mode accepted")
	}
	if _, err := (EncounterScenario{Geometry: "bogus"}).Run(sim.NewKernel(1)); err == nil {
		t.Fatal("bogus geometry accepted")
	}
}

// SpecDepth is an execution knob: apart from the explicitly-labeled
// telemetry record, a speculative scenario report must be byte-identical
// to the lockstep report at every shard width.
func TestSpeculationDoesNotChangeScenarioOutput(t *testing.T) {
	run := func(depth, shards int) *Report {
		sc := MegaHighwayScenario{Duration: 3 * time.Second, Cars: 40, Length: 2000, Loss: 0.05, SpecDepth: depth}
		rep, err := Run(context.Background(), sc, Options{Seed: 7, Replicas: 2, Parallel: 2, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	// Strip the telemetry=speculation rows before comparing: they describe
	// execution, not simulation, and legitimately vary with the knobs.
	strip := func(rep *Report) string {
		var rows []metrics.AggRecord
		for _, r := range rep.Summary.Records {
			if len(r.Labels) > 0 && r.Labels[0].Name == "telemetry" {
				continue
			}
			rows = append(rows, r)
		}
		rep.Summary.Records = rows
		js, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return string(js)
	}
	want := strip(run(0, 1))
	for _, shards := range []int{1, 4} {
		rep := run(8, shards)
		kept := len(rep.Summary.Records)
		got := strip(rep)
		if kept == len(rep.Summary.Records) {
			t.Fatalf("shards=%d: speculative report carries no telemetry record", shards)
		}
		if got != want {
			t.Fatalf("shards=%d: speculation changed the simulated report:\n%s\nvs\n%s", shards, got, want)
		}
	}
}

// A sub-microsecond jam period truncates to zero virtual time; the jam
// scheduler must bail out instead of looping forever without advancing.
func TestSubMicrosecondJamPeriodDoesNotHang(t *testing.T) {
	sc := HighwayScenario{
		Duration: 50 * time.Millisecond, Cars: 3, Mode: "adaptive",
		JamEvery: 500 * time.Nanosecond, JamBurst: time.Millisecond,
	}
	done := make(chan error, 1)
	go func() {
		_, err := sc.RunSharded(context.Background(), 1, 1)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sub-microsecond -jam-every hung the scenario")
	}
}
