package harness

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"karyon/internal/metrics"
	"karyon/internal/sim"
)

// jitterScenario finishes replicas in deliberately scrambled wall-clock
// order (later seeds sleep less) so the in-order release logic is actually
// exercised, not just the already-ordered fast path.
type jitterScenario struct {
	replicas int
	failSeed int64
}

func (jitterScenario) Name() string { return "jitter" }

func (s jitterScenario) Run(k *sim.Kernel) (*metrics.Result, error) {
	if s.failSeed != 0 && k.Seed() == s.failSeed {
		return nil, errors.New("boom")
	}
	// Later replicas (larger seeds) sleep less, so with a parallel pool
	// they complete before earlier ones.
	rank := int((k.Seed() - 1) / SeedStride)
	time.Sleep(time.Duration(s.replicas-rank) * 2 * time.Millisecond)
	res := metrics.NewResult("jitter")
	res.Record("seed", fmt.Sprint(k.Seed())).Int("rank", int64(rank))
	return res, nil
}

func TestLocalBackendEmitsInSeedOrder(t *testing.T) {
	const replicas = 8
	var mu sync.Mutex
	var gotIdx []int
	var gotSeeds []int64
	rep, err := Runner{}.RunStream(context.Background(), jitterScenario{replicas: replicas},
		Options{Seed: 1, Replicas: replicas, Parallel: 4},
		func(i int, seed int64, res *metrics.Result) {
			mu.Lock()
			defer mu.Unlock()
			gotIdx = append(gotIdx, i)
			gotSeeds = append(gotSeeds, seed)
			if res == nil || len(res.Records) != 1 {
				t.Errorf("replica %d: bad result %+v", i, res)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(gotIdx) != replicas {
		t.Fatalf("emitted %d replicas, want %d", len(gotIdx), replicas)
	}
	want := Seeds(1, replicas)
	for i := range gotIdx {
		if gotIdx[i] != i {
			t.Fatalf("emit order %v: index %d out of order", gotIdx, gotIdx[i])
		}
		if gotSeeds[i] != want[i] {
			t.Fatalf("emit seed[%d] = %d, want %d", i, gotSeeds[i], want[i])
		}
	}
	if rep.Summary == nil || rep.Summary.Replicas != replicas {
		t.Fatalf("bad report summary: %+v", rep.Summary)
	}
}

func TestLocalBackendStreamMatchesRun(t *testing.T) {
	// The streamed replica results must be exactly the results the plain
	// aggregate is built from: aggregating the emitted stream reproduces
	// the report's summary byte-for-byte.
	sc := HighwayScenario{Duration: 5 * time.Second, Cars: 5, Mode: "adaptive"}
	opts := Options{Seed: 3, Replicas: 3, Parallel: 3}
	var streamed []*metrics.Result
	var mu sync.Mutex
	rep, err := Runner{}.RunStream(context.Background(), sc, opts,
		func(i int, seed int64, res *metrics.Result) {
			mu.Lock()
			streamed = append(streamed, res)
			mu.Unlock()
		})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(context.Background(), sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := metrics.Aggregate(streamed).Table().String(), plain.Summary.Table().String(); got != want {
		t.Fatalf("aggregate of streamed results differs from plain run:\n%s\nvs\n%s", got, want)
	}
	if got, want := rep.Summary.Table().String(), plain.Summary.Table().String(); got != want {
		t.Fatalf("streaming run's report differs from plain run:\n%s\nvs\n%s", got, want)
	}
}

func TestLocalBackendStreamStopsOnFailure(t *testing.T) {
	const replicas = 6
	failSeed := Seeds(1, replicas)[3]
	var mu sync.Mutex
	var got []int
	_, err := Runner{}.RunStream(context.Background(),
		jitterScenario{replicas: replicas, failSeed: failSeed},
		Options{Seed: 1, Replicas: replicas, Parallel: 3},
		func(i int, seed int64, res *metrics.Result) {
			mu.Lock()
			got = append(got, i)
			mu.Unlock()
		})
	if err == nil {
		t.Fatal("failing replica did not error the run")
	}
	mu.Lock()
	defer mu.Unlock()
	for _, i := range got {
		if i >= 3 {
			t.Fatalf("replica %d emitted at or past the failed replica 3 (emitted %v)", i, got)
		}
	}
}

func TestRunnerZeroValueIsLocal(t *testing.T) {
	if name := (Runner{}).backend().Name(); name != "local" {
		t.Fatalf("zero Runner backend = %q, want local", name)
	}
}
