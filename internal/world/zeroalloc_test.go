package world

import (
	"testing"

	"karyon/internal/sim"
)

// TestSteadyStateAllocBudget is the alloc ratchet for the hot simulation
// window: after warmup, one simulated second of the full highway stack
// must stay within a fixed allocation budget. The budgets carry several
// times headroom over the measured steady state (≈4 allocs/simsec at
// shards=1, ≈11 at shards=8 — mostly the per-Run worker spawns — and
// ≈39 with the radio medium), but sit three orders of magnitude below
// the pre-arena numbers (~12k-36k/simsec), so any reintroduced per-event
// churn — a stray fmt.Sprintf, a closure in a car step, interface boxing
// on a beacon payload — fails loudly here long before it shows up in a
// bench run.
func TestSteadyStateAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc budget probe is not -short friendly")
	}
	for _, tc := range []struct {
		name   string
		shards int
		spec   int
		medium bool
		budget float64 // max allocations per simulated second
	}{
		{"shards=1", 1, 0, false, 32},
		{"shards=8", 8, 0, false, 64},
		{"shards=8/speculate", 8, 8, false, 64},
		{"shards=8/medium", 8, 0, true, 160},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultHighwayConfig()
			cfg.Length = 36000
			cfg.Cars = 1200
			cfg.SpecDepth = tc.spec
			cfg.Medium = tc.medium
			cfg.Channels = 1
			h, err := BuildHighway(1, tc.shards, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := h.Start(); err != nil {
				t.Fatal(err)
			}
			// Warmup: hit the free-list and scratch-buffer high-water
			// marks (checkpoint prewarm, mailbox capacity, snapshot
			// arenas) so the measurement sees only steady-state churn.
			if err := h.Run(2 * sim.Second); err != nil {
				t.Fatal(err)
			}
			per := testing.AllocsPerRun(5, func() {
				if err := h.Run(sim.Second); err != nil {
					t.Fatal(err)
				}
			})
			t.Logf("%s: %.1f allocs per simulated second (budget %.0f)", tc.name, per, tc.budget)
			if per > tc.budget {
				t.Errorf("%s: %.1f allocs per simulated second, budget %.0f — steady-state churn reintroduced",
					tc.name, per, tc.budget)
			}
		})
	}
}
