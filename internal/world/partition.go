package world

import (
	"fmt"
	"math"
)

// RingPartition splits a ring road of the given circumference into n
// contiguous arcs of equal length — the spatial shards of a partitioned
// highway. Shard i owns positions [i*arc, (i+1)*arc); vehicles crossing an
// arc boundary are handed off to the neighboring shard at the next
// synchronization window edge.
type RingPartition struct {
	Length float64
	Shards int
}

// NewRingPartition validates and builds a ring partition. The arc length
// must be at least minReach (the radio range): that guarantees a frame
// sent anywhere in a shard can only reach receivers in the same or an
// adjacent shard, so cross-shard traffic flows through per-boundary
// mailboxes between neighbors only.
func NewRingPartition(length float64, shards int, minReach float64) (RingPartition, error) {
	if length <= 0 {
		return RingPartition{}, fmt.Errorf("world: ring length %v must be positive", length)
	}
	if shards < 1 {
		return RingPartition{}, fmt.Errorf("world: shard count %d must be at least 1", shards)
	}
	if shards > 1 && length/float64(shards) < minReach {
		return RingPartition{}, fmt.Errorf(
			"world: arc length %.0f m below radio reach %.0f m: a frame could skip over a whole shard, breaking the adjacent-shard lookahead bound (use at most %d shards)",
			length/float64(shards), minReach, int(length/minReach))
	}
	return RingPartition{Length: length, Shards: shards}, nil
}

// ArcLength returns the length of one arc.
func (p RingPartition) ArcLength() float64 { return p.Length / float64(p.Shards) }

// ArcStart returns the start position of shard i's arc.
func (p RingPartition) ArcStart(i int) float64 { return float64(i) * p.ArcLength() }

// ShardOf returns the shard owning position x (wrapped onto the ring).
func (p RingPartition) ShardOf(x float64) int {
	x = math.Mod(x, p.Length)
	if x < 0 {
		x += p.Length
	}
	i := int(x / p.ArcLength())
	if i >= p.Shards { // x == Length after float wobble
		i = p.Shards - 1
	}
	return i
}

// Adjacent reports whether shards i and j share a boundary on the ring
// (every shard is adjacent to itself).
func (p RingPartition) Adjacent(i, j int) bool {
	if i == j {
		return true
	}
	d := i - j
	if d < 0 {
		d = -d
	}
	return d == 1 || d == p.Shards-1
}

// QuadrantPartition splits the plane around an intersection center into
// four quadrants — the natural sharding of the signalized-intersection
// world, where each approach road lives in its own quadrant and vehicles
// hand off as they cross the stop line.
type QuadrantPartition struct {
	CenterX float64
	CenterY float64
}

// Shards returns the number of quadrants.
func (QuadrantPartition) Shards() int { return 4 }

// ShardOf returns the quadrant index of (x, y): 0=NE, 1=NW, 2=SW, 3=SE,
// with boundary points assigned to the lower index so ownership is total.
func (p QuadrantPartition) ShardOf(x, y float64) int {
	east := x >= p.CenterX
	north := y >= p.CenterY
	switch {
	case east && north:
		return 0
	case !east && north:
		return 1
	case !east && !north:
		return 2
	default:
		return 3
	}
}

// Adjacent reports whether two quadrants share an axis boundary (diagonal
// quadrants meet only at the center point and are not adjacent).
func (p QuadrantPartition) Adjacent(i, j int) bool {
	if i == j {
		return true
	}
	d := i - j
	if d < 0 {
		d = -d
	}
	return d == 1 || d == 3
}
