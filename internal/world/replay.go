package world

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"karyon/internal/sim"
	"karyon/internal/trace"
)

// This file is the replay half of the record/replay layer: rebuild the
// recorded world from the trace header, restore the nearest checkpoint
// at or before the requested window range, warp the sharded kernel to
// that edge, and re-run the range while verifying every recomputed
// window record against the recording.

// ReplayOptions selects the window range and (optionally) a different
// shard width than the recording's.
type ReplayOptions struct {
	// From/To bound the verified window range, 1-based and inclusive.
	// Zero means "from the first window" / "to the last".
	From, To uint64
	// Shards overrides the recorded shard width (0 = as recorded). The
	// simulation is byte-identical at every width; only the Crossers
	// telemetry varies, and cross-width verification ignores it.
	Shards int
}

// ReplayResult summarizes a verified replay.
type ReplayResult struct {
	Spec TraceSpec
	// From/To is the replayed range; Checkpoint is the window whose
	// checkpoint seeded it (0 = rebuilt from t=0).
	From, To   uint64
	Checkpoint uint64
	// Windows counts verified window records (every window from the
	// restore point through To, so the approach to From is checked too).
	Windows int
	Shards  int
}

// ReplayTrace re-runs a window range of a recorded trace and verifies
// that every recomputed window record matches the recording. A
// *DivergenceError names the first mismatching window — with intact
// traces of the same build that never happens; with a different build
// (or a perturbed one) it is the bisection primitive karyon-bisect
// automates.
func ReplayTrace(data []byte, opt ReplayOptions) (*ReplayResult, error) {
	c, err := trace.Parse(data)
	if err != nil {
		return nil, err
	}
	if len(c.Windows) == 0 {
		return nil, errors.New("world: trace contains no windows")
	}
	var spec TraceSpec
	if err := json.Unmarshal(c.Header.Spec, &spec); err != nil {
		return nil, fmt.Errorf("world: decoding trace spec: %w", err)
	}

	last := uint64(len(c.Windows))
	from, to := opt.From, opt.To
	if from == 0 {
		from = 1
	}
	if to == 0 {
		to = last
	}
	if from > to || to > last {
		return nil, fmt.Errorf("world: window range %d:%d outside the trace's 1:%d", from, to, last)
	}

	shards := opt.Shards
	if shards <= 0 {
		shards = c.Header.Shards
	}
	h, err := BuildHighway(c.Header.Seed, shards, spec.Config)
	if err != nil {
		return nil, err
	}
	if err := h.Start(); err != nil {
		return nil, err
	}
	// Re-apply the recorded interventions; those at or before a restored
	// checkpoint's edge are dropped again by restoreCheckpoint.
	for _, j := range spec.Jams {
		burst := j.Burst
		h.Schedule(j.At, func() { h.JamV2V(burst) })
	}
	if spec.PerturbWindow > 0 {
		h.schedulePerturbation(spec.PerturbWindow)
	}

	// The checkpoint at window K captures the state after window K, so
	// replaying window `from` needs the newest checkpoint at or before
	// from-1. Without one the run starts from t=0 — correct, just
	// longer.
	var ck uint64
	for k := range c.Checkpoints {
		if k <= from-1 && k > ck {
			ck = k
		}
	}
	if ck > 0 {
		rec := c.Checkpoints[ck]
		if err := h.restoreCheckpoint(rec.State, sim.Time(rec.Edge)); err != nil {
			return nil, err
		}
	}

	h.rec = &recorder{
		expect: c.Windows,
		strict: shards == c.Header.Shards,
		idx:    ck,
	}
	windows := to - ck
	if err := h.RunContext(context.Background(), sim.Time(windows)*h.cfg.ControlPeriod); err != nil {
		return nil, err
	}
	if h.rec.err != nil {
		return nil, h.rec.err
	}
	if h.rec.idx != to {
		return nil, fmt.Errorf("world: replay stopped at window %d, expected %d", h.rec.idx, to)
	}
	return &ReplayResult{
		Spec: spec, From: from, To: to, Checkpoint: ck,
		Windows: int(to - ck), Shards: shards,
	}, nil
}
