package world

import (
	"testing"

	"karyon/internal/core"
	"karyon/internal/sensor"
	"karyon/internal/sim"
)

func runHighway(t *testing.T, seed int64, cfg HighwayConfig, d sim.Time) (*sim.Kernel, *Highway) {
	t.Helper()
	k := sim.NewKernel(seed)
	h, err := NewHighway(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	k.RunFor(d)
	return k, h
}

func TestHighwayValidation(t *testing.T) {
	k := sim.NewKernel(1)
	bad := DefaultHighwayConfig()
	bad.Cars = 0
	if _, err := NewHighway(k, bad); err == nil {
		t.Fatal("zero cars accepted")
	}
	bad = DefaultHighwayConfig()
	bad.ControlPeriod = 0
	if _, err := NewHighway(k, bad); err == nil {
		t.Fatal("zero control period accepted")
	}
}

func TestHighwayNominalNoCollisions(t *testing.T) {
	cfg := DefaultHighwayConfig()
	cfg.Cars = 15
	cfg.Length = 1500
	_, h := runHighway(t, 1, cfg, 60*sim.Second)
	if h.Collisions != 0 {
		t.Fatalf("nominal run produced %d collisions", h.Collisions)
	}
	if h.MeanSpeed() < 5 {
		t.Fatalf("fleet barely moving: %v m/s", h.MeanSpeed())
	}
	if h.TimeGaps.Count() == 0 {
		t.Fatal("no time gaps recorded")
	}
}

func TestHighwayAdaptiveReachesCooperativeLevel(t *testing.T) {
	cfg := DefaultHighwayConfig()
	cfg.Cars = 10
	cfg.Length = 1000
	_, h := runHighway(t, 2, cfg, 30*sim.Second)
	atTop := 0
	for _, c := range h.Cars() {
		if c.LoS() == 3 {
			atTop++
		}
	}
	if atTop < len(h.Cars())/2 {
		t.Fatalf("only %d/%d cars reached LoS3 with healthy sensors and V2V",
			atTop, len(h.Cars()))
	}
}

func TestHighwayNoV2VCapsAtLevel2(t *testing.T) {
	cfg := DefaultHighwayConfig()
	cfg.Cars = 8
	cfg.Length = 1000
	cfg.V2VPeriod = 0 // no communication
	_, h := runHighway(t, 3, cfg, 30*sim.Second)
	for i, c := range h.Cars() {
		if c.LoS() > 2 {
			t.Fatalf("car %d at %v without any V2V", i, c.LoS())
		}
		if c.LoS() != 2 {
			t.Fatalf("car %d at %v, want LoS2 from healthy local sensing", i, c.LoS())
		}
	}
}

func TestHighwaySensorFaultForcesDowngrade(t *testing.T) {
	cfg := DefaultHighwayConfig()
	cfg.Cars = 8
	cfg.Length = 1000
	k := sim.NewKernel(4)
	h, err := NewHighway(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	k.RunFor(30 * sim.Second)
	victim := h.Cars()[3]
	if victim.LoS() != 3 {
		t.Fatalf("setup: victim at %v", victim.LoS())
	}
	// A single stuck transducer is masked by the triple-redundant fusion:
	// no downgrade, but the faulty input is flagged as suspect.
	victim.DistanceSensor().Physical().Inject(sensor.Fault{Mode: sensor.FaultStuckAt})
	k.RunFor(5 * sim.Second)
	if victim.LoS() < 2 {
		t.Fatalf("single masked fault dropped victim to %v", victim.LoS())
	}
	if !victim.FusedSensor().Suspected(victim.DistanceSensor().Name()) {
		t.Fatal("masked faulty transducer not flagged as suspect")
	}
	// Total perception loss: all three transducers stuck. Now the fused
	// validity collapses and the kernel must fall to the safe level.
	for _, in := range victim.SensorInputs() {
		in.Physical().Inject(sensor.Fault{Mode: sensor.FaultStuckAt})
	}
	k.RunFor(10 * sim.Second)
	if victim.LoS() != core.LevelSafe {
		t.Fatalf("victim still at %v with all sensors stuck", victim.LoS())
	}
	if h.Collisions != 0 {
		t.Fatalf("%d collisions despite kernel downgrade", h.Collisions)
	}
	// Other cars keep at least the validated-local-perception level. (They
	// may legitimately leave LoS3: once the victim stops, its followers
	// queue behind it and a leader can end up beyond V2V radio range.)
	healthy := h.Cars()[6]
	if healthy.LoS() < 2 {
		t.Fatalf("healthy car dragged down to %v", healthy.LoS())
	}
}

func TestHighwayJamForcesDowngradeFromLoS3(t *testing.T) {
	cfg := DefaultHighwayConfig()
	cfg.Cars = 8
	cfg.Length = 1000
	k := sim.NewKernel(5)
	h, err := NewHighway(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	k.RunFor(30 * sim.Second)
	// Jam V2V for 5 s: all cars must leave LoS3 (no fresh cooperation).
	h.Medium().Jam(0, 5*sim.Second)
	k.RunFor(2 * sim.Second)
	for i, c := range h.Cars() {
		if c.LoS() >= 3 {
			t.Fatalf("car %d still cooperative during jam", i)
		}
	}
	// After the jam ends, the fleet recovers.
	k.RunFor(20 * sim.Second)
	recovered := 0
	for _, c := range h.Cars() {
		if c.LoS() == 3 {
			recovered++
		}
	}
	if recovered < len(h.Cars())/2 {
		t.Fatalf("only %d cars recovered LoS3 after jam", recovered)
	}
	if h.Collisions != 0 {
		t.Fatalf("%d collisions across jam transition", h.Collisions)
	}
}

func TestHighwayFixedLoSGapOrdering(t *testing.T) {
	// Higher fixed LoS → smaller time gaps → higher flow. This is E2's
	// monotone trade-off shape.
	flows := map[core.LoS]float64{}
	for _, level := range []core.LoS{1, 2, 3} {
		cfg := DefaultHighwayConfig()
		// Dense enough (30 m spacing) that the headway policy binds.
		cfg.Cars = 40
		cfg.Length = 1200
		cfg.Mode = ModeFixed
		cfg.FixedLoS = level
		_, h := runHighway(t, 7, cfg, 90*sim.Second)
		if h.Collisions != 0 {
			t.Fatalf("fixed LoS%d produced %d collisions", level, h.Collisions)
		}
		flows[level] = h.Flow()
	}
	if !(flows[3] > flows[2] && flows[2] > flows[1]) {
		t.Fatalf("flow not monotone in LoS: %v", flows)
	}
}

func TestHighwayRecklessModeCrashesUnderFault(t *testing.T) {
	// The contrast experiment: highest level, validity ignored, no gate.
	// A stuck sensor then produces collisions — the hazard the safety
	// kernel exists to prevent.
	cfg := DefaultHighwayConfig()
	cfg.Cars = 12
	cfg.Length = 800
	cfg.Mode = ModeReckless
	cfg.FixedLoS = 3
	cfg.V2VPeriod = 0 // isolate the sensor-fault path: no cooperative rescue
	k := sim.NewKernel(8)
	h, err := NewHighway(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	k.RunFor(20 * sim.Second)
	// Freeze all transducers of three cars (total perception loss), then
	// brake each of their leaders hard: the frozen gap hides the closing
	// leader and the reckless baseline ignores the collapsed validity.
	for _, idx := range []int{2, 5, 8} {
		for _, in := range h.Cars()[idx].SensorInputs() {
			in.Physical().Inject(sensor.Fault{Mode: sensor.FaultStuckAt})
		}
		h.Cars()[idx+1].ForceBrake(k.Now(), 6*sim.Second)
	}
	k.RunFor(40 * sim.Second)
	if h.Collisions == 0 {
		t.Fatal("reckless baseline survived stuck sensors — contrast experiment lost its teeth")
	}
}

func TestHighwayKernelSurvivesSameFault(t *testing.T) {
	// Identical disturbance as the reckless test, but with the kernel on:
	// no collisions.
	cfg := DefaultHighwayConfig()
	cfg.Cars = 12
	cfg.Length = 800
	cfg.V2VPeriod = 0 // same conditions as the reckless contrast run
	k := sim.NewKernel(8)
	h, err := NewHighway(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	k.RunFor(20 * sim.Second)
	for _, idx := range []int{2, 5, 8} {
		for _, in := range h.Cars()[idx].SensorInputs() {
			in.Physical().Inject(sensor.Fault{Mode: sensor.FaultStuckAt})
		}
		h.Cars()[idx+1].ForceBrake(k.Now(), 6*sim.Second)
	}
	k.RunFor(40 * sim.Second)
	if h.Collisions != 0 {
		t.Fatalf("kernel run produced %d collisions under the same fault", h.Collisions)
	}
}

func TestIntersectionValidation(t *testing.T) {
	k := sim.NewKernel(1)
	bad := DefaultIntersectionConfig()
	bad.BoxLength = 0
	if _, err := NewIntersection(k, bad); err == nil {
		t.Fatal("zero box accepted")
	}
	bad = DefaultIntersectionConfig()
	bad.GreenFor = 0
	if _, err := NewIntersection(k, bad); err == nil {
		t.Fatal("zero green accepted")
	}
}

func TestIntersectionPhysicalLightNoConflicts(t *testing.T) {
	k := sim.NewKernel(10)
	cfg := DefaultIntersectionConfig()
	w, err := NewIntersection(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	k.RunFor(3 * sim.Minute)
	if w.Conflicts != 0 {
		t.Fatalf("%d conflicts under a working light", w.Conflicts)
	}
	total := w.Crossed[RoadNS] + w.Crossed[RoadEW]
	if total < 20 {
		t.Fatalf("only %d vehicles crossed in 3 minutes", total)
	}
}

func TestIntersectionVirtualTakeoverKeepsTrafficMoving(t *testing.T) {
	k := sim.NewKernel(11)
	cfg := DefaultIntersectionConfig()
	cfg.LightFailsAt = 60 * sim.Second
	w, err := NewIntersection(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	k.RunFor(60 * sim.Second)
	before := w.Crossed[RoadNS] + w.Crossed[RoadEW]
	k.RunFor(4 * sim.Minute)
	after := w.Crossed[RoadNS] + w.Crossed[RoadEW]
	if w.Conflicts != 0 {
		t.Fatalf("%d conflicts across the virtual takeover", w.Conflicts)
	}
	if after-before < 15 {
		t.Fatalf("traffic stalled after light failure: %d crossed in 4 min", after-before)
	}
	if w.LightAlive() {
		t.Fatal("light should be dead")
	}
}

func TestIntersectionNoBackupStallsSafely(t *testing.T) {
	k := sim.NewKernel(12)
	cfg := DefaultIntersectionConfig()
	cfg.LightFailsAt = 30 * sim.Second
	cfg.VirtualBackup = false
	w, err := NewIntersection(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	k.RunFor(30 * sim.Second)
	k.RunFor(30 * sim.Second) // drain guard + in-flight crossings
	before := w.Crossed[RoadNS] + w.Crossed[RoadEW]
	k.RunFor(2 * sim.Minute)
	after := w.Crossed[RoadNS] + w.Crossed[RoadEW]
	if w.Conflicts != 0 {
		t.Fatalf("%d conflicts with a dead light and no backup", w.Conflicts)
	}
	if after != before {
		t.Fatalf("%d vehicles crossed with no control authority (fail-safe violated)",
			after-before)
	}
}

func TestIntersectionJamDuringVirtualOperation(t *testing.T) {
	// After the physical light dies and the virtual light has taken over,
	// jam the V2V channel: the virtual node goes silent, every approaching
	// car must treat the crossing as red (no conflicts), and traffic must
	// resume once the jam clears.
	k := sim.NewKernel(14)
	cfg := DefaultIntersectionConfig()
	cfg.LightFailsAt = 30 * sim.Second
	w, err := NewIntersection(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	k.RunFor(90 * sim.Second) // virtual light established
	w.Medium().Jam(0, 20*sim.Second)
	k.RunFor(30 * sim.Second)
	if w.Conflicts != 0 {
		t.Fatalf("%d conflicts across a V2V jam on the virtual light", w.Conflicts)
	}
	before := w.Crossed[RoadNS] + w.Crossed[RoadEW]
	k.RunFor(2 * sim.Minute) // jam long gone: traffic must flow again
	after := w.Crossed[RoadNS] + w.Crossed[RoadEW]
	if after-before < 5 {
		t.Fatalf("traffic did not resume after jam: %d crossed", after-before)
	}
	if w.Conflicts != 0 {
		t.Fatalf("%d conflicts after recovery", w.Conflicts)
	}
}

func TestHighwaySeedSweepNoCollisions(t *testing.T) {
	// The zero-collision invariant must not be a lucky seed: sweep seeds
	// on a short nominal run.
	for seed := int64(100); seed < 110; seed++ {
		cfg := DefaultHighwayConfig()
		cfg.Cars = 12
		cfg.Length = 900
		_, h := runHighway(t, seed, cfg, 30*sim.Second)
		if h.Collisions != 0 {
			t.Fatalf("seed %d produced %d collisions", seed, h.Collisions)
		}
	}
}

func TestMultiLaneOvertaking(t *testing.T) {
	// A slow truck in lane 0; the rest of the fleet overtakes through
	// agreement-coordinated lane changes. Safety invariant: zero
	// collisions; liveness: lane changes happen and the fleet is faster
	// than it would be stuck behind the truck.
	run := func(lanes int) (*Highway, int64) {
		cfg := DefaultHighwayConfig()
		cfg.Cars = 10
		cfg.Length = 1500
		cfg.Lanes = lanes
		k := sim.NewKernel(21)
		h, err := NewHighway(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		h.Cars()[0].SetCruiseSpeed(10) // the truck
		if err := h.Start(); err != nil {
			t.Fatal(err)
		}
		k.RunFor(3 * sim.Minute)
		var changes int64
		for _, c := range h.Cars() {
			changes += c.LaneChanges
		}
		return h, changes
	}
	single, _ := run(1)
	double, changes := run(2)
	if single.Collisions != 0 || double.Collisions != 0 {
		t.Fatalf("collisions: single=%d double=%d", single.Collisions, double.Collisions)
	}
	if changes == 0 {
		t.Fatal("no lane changes on a two-lane road with a slow truck")
	}
	if double.MeanSpeed() <= single.MeanSpeed()+1 {
		t.Fatalf("overtaking bought nothing: %0.1f vs %0.1f m/s",
			double.MeanSpeed(), single.MeanSpeed())
	}
}

func TestMultiLaneSeedSweepNoCollisions(t *testing.T) {
	for seed := int64(30); seed < 42; seed++ {
		cfg := DefaultHighwayConfig()
		cfg.Cars = 14
		cfg.Length = 1200
		cfg.Lanes = 3
		k := sim.NewKernel(seed)
		h, err := NewHighway(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		h.Cars()[2].SetCruiseSpeed(12)
		h.Cars()[7].SetCruiseSpeed(15)
		if err := h.Start(); err != nil {
			t.Fatal(err)
		}
		k.RunFor(90 * sim.Second)
		if h.Collisions != 0 {
			t.Fatalf("seed %d: %d collisions on a 3-lane road", seed, h.Collisions)
		}
	}
}
