package world

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"karyon/internal/core"
	"karyon/internal/sensor"
	"karyon/internal/sim"
)

func buildHighway(t *testing.T, seed int64, shards int, cfg HighwayConfig) *Highway {
	t.Helper()
	h, err := BuildHighway(seed, shards, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func runHighway(t *testing.T, seed int64, cfg HighwayConfig, d sim.Time) *Highway {
	t.Helper()
	h := buildHighway(t, seed, 1, cfg)
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.Run(d); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHighwayValidation(t *testing.T) {
	bad := DefaultHighwayConfig()
	bad.Cars = 0
	if _, err := BuildHighway(1, 1, bad); err == nil {
		t.Fatal("zero cars accepted")
	}
	bad = DefaultHighwayConfig()
	bad.ControlPeriod = 0
	if _, err := BuildHighway(1, 1, bad); err == nil {
		t.Fatal("zero control period accepted")
	}
	bad = DefaultHighwayConfig()
	bad.V2VPeriod = 130 * sim.Millisecond
	if _, err := BuildHighway(1, 1, bad); err == nil {
		t.Fatal("non-multiple V2V period accepted")
	}
	wrongWindow, err := sim.NewShardedKernel(1, 2, sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewHighway(wrongWindow, DefaultHighwayConfig()); err == nil {
		t.Fatal("window != control period accepted")
	}
	// BuildHighway clamps an over-wide partition instead of failing.
	cfg := DefaultHighwayConfig() // 2 km ring, 250 m reach: at most 8 shards
	h, err := BuildHighway(1, 64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Kernel().Shards(); got != 8 {
		t.Fatalf("shards clamped to %d, want 8", got)
	}
}

func TestHighwayNominalNoCollisions(t *testing.T) {
	cfg := DefaultHighwayConfig()
	cfg.Cars = 15
	cfg.Length = 1500
	h := runHighway(t, 1, cfg, 60*sim.Second)
	if h.Collisions != 0 {
		t.Fatalf("nominal run produced %d collisions", h.Collisions)
	}
	if h.MeanSpeed() < 5 {
		t.Fatalf("fleet barely moving: %v m/s", h.MeanSpeed())
	}
	if h.TimeGaps.Count() == 0 {
		t.Fatal("no time gaps recorded")
	}
}

func TestHighwayAdaptiveReachesCooperativeLevel(t *testing.T) {
	cfg := DefaultHighwayConfig()
	cfg.Cars = 10
	cfg.Length = 1000
	h := runHighway(t, 2, cfg, 30*sim.Second)
	atTop := 0
	for _, c := range h.Cars() {
		if c.LoS() == 3 {
			atTop++
		}
	}
	if atTop < len(h.Cars())/2 {
		t.Fatalf("only %d/%d cars reached LoS3 with healthy sensors and V2V",
			atTop, len(h.Cars()))
	}
}

func TestHighwayNoV2VCapsAtLevel2(t *testing.T) {
	cfg := DefaultHighwayConfig()
	cfg.Cars = 8
	cfg.Length = 1000
	cfg.V2VPeriod = 0 // no communication
	h := runHighway(t, 3, cfg, 30*sim.Second)
	for i, c := range h.Cars() {
		if c.LoS() > 2 {
			t.Fatalf("car %d at %v without any V2V", i, c.LoS())
		}
		if c.LoS() != 2 {
			t.Fatalf("car %d at %v, want LoS2 from healthy local sensing", i, c.LoS())
		}
	}
}

func TestHighwaySensorFaultForcesDowngrade(t *testing.T) {
	cfg := DefaultHighwayConfig()
	cfg.Cars = 8
	cfg.Length = 1000
	h := buildHighway(t, 4, 1, cfg)
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	victim := h.Cars()[3]
	if victim.LoS() != 3 {
		t.Fatalf("setup: victim at %v", victim.LoS())
	}
	// A single stuck transducer is masked by the triple-redundant fusion:
	// no downgrade, but the faulty input is flagged as suspect.
	victim.DistanceSensor().Physical().Inject(sensor.Fault{Mode: sensor.FaultStuckAt})
	if err := h.Run(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if victim.LoS() < 2 {
		t.Fatalf("single masked fault dropped victim to %v", victim.LoS())
	}
	if !victim.FusedSensor().Suspected(victim.DistanceSensor().Name()) {
		t.Fatal("masked faulty transducer not flagged as suspect")
	}
	// Total perception loss: all three transducers stuck. Now the fused
	// validity collapses and the kernel must fall to the safe level.
	for _, in := range victim.SensorInputs() {
		in.Physical().Inject(sensor.Fault{Mode: sensor.FaultStuckAt})
	}
	if err := h.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if victim.LoS() != core.LevelSafe {
		t.Fatalf("victim still at %v with all sensors stuck", victim.LoS())
	}
	if h.Collisions != 0 {
		t.Fatalf("%d collisions despite kernel downgrade", h.Collisions)
	}
	// Other cars keep at least the validated-local-perception level. (They
	// may legitimately leave LoS3: once the victim stops, its followers
	// queue behind it and a leader can end up beyond V2V radio range.)
	healthy := h.Cars()[6]
	if healthy.LoS() < 2 {
		t.Fatalf("healthy car dragged down to %v", healthy.LoS())
	}
}

func TestHighwayJamForcesDowngradeFromLoS3(t *testing.T) {
	cfg := DefaultHighwayConfig()
	cfg.Cars = 8
	cfg.Length = 1000
	h := buildHighway(t, 5, 1, cfg)
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	// Jam V2V for 5 s: all cars must leave LoS3 (no fresh cooperation).
	h.JamV2V(5 * sim.Second)
	if err := h.Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	for i, c := range h.Cars() {
		if c.LoS() >= 3 {
			t.Fatalf("car %d still cooperative during jam", i)
		}
	}
	// After the jam ends, the fleet recovers.
	if err := h.Run(20 * sim.Second); err != nil {
		t.Fatal(err)
	}
	recovered := 0
	for _, c := range h.Cars() {
		if c.LoS() == 3 {
			recovered++
		}
	}
	if recovered < len(h.Cars())/2 {
		t.Fatalf("only %d cars recovered LoS3 after jam", recovered)
	}
	if h.Collisions != 0 {
		t.Fatalf("%d collisions across jam transition", h.Collisions)
	}
}

func TestHighwayFixedLoSGapOrdering(t *testing.T) {
	// Higher fixed LoS → smaller time gaps → higher flow. This is E2's
	// monotone trade-off shape.
	flows := map[core.LoS]float64{}
	for _, level := range []core.LoS{1, 2, 3} {
		cfg := DefaultHighwayConfig()
		// Dense enough (30 m spacing) that the headway policy binds.
		cfg.Cars = 40
		cfg.Length = 1200
		cfg.Mode = ModeFixed
		cfg.FixedLoS = level
		h := runHighway(t, 7, cfg, 90*sim.Second)
		if h.Collisions != 0 {
			t.Fatalf("fixed LoS%d produced %d collisions", level, h.Collisions)
		}
		flows[level] = h.Flow()
	}
	if !(flows[3] > flows[2] && flows[2] > flows[1]) {
		t.Fatalf("flow not monotone in LoS: %v", flows)
	}
}

func TestHighwayRecklessModeCrashesUnderFault(t *testing.T) {
	// The contrast experiment: highest level, validity ignored, no gate.
	// A stuck sensor then produces collisions — the hazard the safety
	// kernel exists to prevent.
	cfg := DefaultHighwayConfig()
	cfg.Cars = 12
	cfg.Length = 800
	cfg.Mode = ModeReckless
	cfg.FixedLoS = 3
	cfg.V2VPeriod = 0 // isolate the sensor-fault path: no cooperative rescue
	h := buildHighway(t, 8, 1, cfg)
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.Run(20 * sim.Second); err != nil {
		t.Fatal(err)
	}
	// Freeze all transducers of three cars (total perception loss), then
	// brake each of their leaders hard: the frozen gap hides the closing
	// leader and the reckless baseline ignores the collapsed validity.
	for _, idx := range []int{2, 5, 8} {
		for _, in := range h.Cars()[idx].SensorInputs() {
			in.Physical().Inject(sensor.Fault{Mode: sensor.FaultStuckAt})
		}
		h.Cars()[idx+1].ForceBrake(h.Now(), 6*sim.Second)
	}
	if err := h.Run(40 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if h.Collisions == 0 {
		t.Fatal("reckless baseline survived stuck sensors — contrast experiment lost its teeth")
	}
}

func TestHighwayKernelSurvivesSameFault(t *testing.T) {
	// Identical disturbance as the reckless test, but with the kernel on:
	// no collisions.
	cfg := DefaultHighwayConfig()
	cfg.Cars = 12
	cfg.Length = 800
	cfg.V2VPeriod = 0 // same conditions as the reckless contrast run
	h := buildHighway(t, 8, 1, cfg)
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.Run(20 * sim.Second); err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{2, 5, 8} {
		for _, in := range h.Cars()[idx].SensorInputs() {
			in.Physical().Inject(sensor.Fault{Mode: sensor.FaultStuckAt})
		}
		h.Cars()[idx+1].ForceBrake(h.Now(), 6*sim.Second)
	}
	if err := h.Run(40 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if h.Collisions != 0 {
		t.Fatalf("kernel run produced %d collisions under the same fault", h.Collisions)
	}
}

func TestHighwaySeedSweepNoCollisions(t *testing.T) {
	// The zero-collision invariant must not be a lucky seed: sweep seeds
	// on a short nominal run.
	for seed := int64(100); seed < 110; seed++ {
		cfg := DefaultHighwayConfig()
		cfg.Cars = 12
		cfg.Length = 900
		h := runHighway(t, seed, cfg, 30*sim.Second)
		if h.Collisions != 0 {
			t.Fatalf("seed %d produced %d collisions", seed, h.Collisions)
		}
	}
}

func TestMultiLaneOvertaking(t *testing.T) {
	// A slow truck in lane 0; the rest of the fleet overtakes through
	// barrier-arbitrated lane changes. Safety invariant: zero collisions;
	// liveness: lane changes happen and the fleet is faster than it would
	// be stuck behind the truck.
	run := func(lanes int) (*Highway, int64) {
		cfg := DefaultHighwayConfig()
		cfg.Cars = 10
		cfg.Length = 1500
		cfg.Lanes = lanes
		h := buildHighway(t, 21, 1, cfg)
		h.Cars()[0].SetCruiseSpeed(10) // the truck
		if err := h.Start(); err != nil {
			t.Fatal(err)
		}
		if err := h.Run(3 * sim.Minute); err != nil {
			t.Fatal(err)
		}
		var changes int64
		for _, c := range h.Cars() {
			changes += c.LaneChanges
		}
		return h, changes
	}
	single, _ := run(1)
	double, changes := run(2)
	if single.Collisions != 0 || double.Collisions != 0 {
		t.Fatalf("collisions: single=%d double=%d", single.Collisions, double.Collisions)
	}
	if changes == 0 {
		t.Fatal("no lane changes on a two-lane road with a slow truck")
	}
	if double.MeanSpeed() <= single.MeanSpeed()+1 {
		t.Fatalf("overtaking bought nothing: %0.1f vs %0.1f m/s",
			double.MeanSpeed(), single.MeanSpeed())
	}
}

func TestMultiLaneSeedSweepNoCollisions(t *testing.T) {
	for seed := int64(30); seed < 42; seed++ {
		cfg := DefaultHighwayConfig()
		cfg.Cars = 14
		cfg.Length = 1200
		cfg.Lanes = 3
		h := buildHighway(t, seed, 1, cfg)
		h.Cars()[2].SetCruiseSpeed(12)
		h.Cars()[7].SetCruiseSpeed(15)
		if err := h.Start(); err != nil {
			t.Fatal(err)
		}
		if err := h.Run(90 * sim.Second); err != nil {
			t.Fatal(err)
		}
		if h.Collisions != 0 {
			t.Fatalf("seed %d: %d collisions on a 3-lane road", seed, h.Collisions)
		}
	}
}

// highwayFingerprint serializes everything observable about a run — the
// byte string the shard-count invariance test compares.
func highwayFingerprint(t *testing.T, seed int64, shards int, cfg HighwayConfig, d sim.Time) string {
	t.Helper()
	h := buildHighway(t, seed, shards, cfg)
	if got := h.Kernel().Shards(); got != shards {
		t.Fatalf("wanted %d shards, partition gave %d", shards, got)
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.Run(d); err != nil {
		t.Fatal(err)
	}
	if h.Kernel().Clamped() != 0 {
		t.Fatalf("shards=%d violated the conservative contract %d times", shards, h.Kernel().Clamped())
	}
	sent, delivered, lost := h.BeaconStats()
	levels := map[core.LoS]int{}
	var ebrakes, changes int64
	var xs []float64
	for _, c := range h.Cars() {
		levels[c.LoS()]++
		ebrakes += c.EmergencyBrakes
		changes += c.LaneChanges
		xs = append(xs, c.Body.X)
	}
	js, err := json.Marshal(map[string]any{
		"collisions": h.Collisions,
		"mean_speed": h.MeanSpeed(),
		"flow":       h.Flow(),
		"min_gap":    h.TimeGaps.Min(),
		"p5_gap":     h.TimeGaps.Percentile(5),
		"sent":       sent, "delivered": delivered, "lost": lost,
		"los1": levels[1], "los2": levels[2], "los3": levels[3],
		"ebrakes": ebrakes, "lane_changes": changes,
		"positions": xs,
		"events":    h.Kernel().Executed(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(js)
}

// The tentpole invariant: the full-stack highway produces byte-identical
// output for every shard count — sharding affects wall time only.
func TestHighwayShardCountInvariance(t *testing.T) {
	cfg := DefaultHighwayConfig() // 2 km, 30 cars: feasible up to 8 shards
	cfg.Lanes = 2
	cfg.Loss = 0.1 // exercise the per-receiver loss streams
	dur := 10 * sim.Second
	if testing.Short() {
		dur = 3 * sim.Second
	}
	base := highwayFingerprint(t, 42, 1, cfg, dur)
	for _, shards := range []int{2, 4, 8} {
		if got := highwayFingerprint(t, 42, shards, cfg, dur); got != base {
			t.Fatalf("shards=%d changed output:\n1 shard: %s\n%d shards: %s", shards, base, shards, got)
		}
	}
	// Sanity: the output is seed-sensitive, so identical bytes above are
	// not a constant function.
	if other := highwayFingerprint(t, 43, 2, cfg, dur); other == base {
		t.Fatal("different seeds produced identical output")
	}
}

// Cars crossing arc boundaries must be handed off to the owning shard.
func TestHighwayHandoff(t *testing.T) {
	cfg := DefaultHighwayConfig()
	h := buildHighway(t, 7, 4, cfg)
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	for _, c := range h.Cars() {
		if want := h.part.ShardOf(c.Body.X); c.shard != want {
			t.Fatalf("car %d at %.1f owned by shard %d, want %d", c.ID, c.Body.X, c.shard, want)
		}
	}
}

// The sorted-snapshot leader lookup must agree with the old O(n) fleet
// scan on a random world — the regression lock for the hot-path rewrite.
func TestLeaderSnapshotMatchesScan(t *testing.T) {
	cfg := DefaultHighwayConfig()
	cfg.Cars = 60
	cfg.Lanes = 3
	h := buildHighway(t, 9, 1, cfg)
	rng := rand.New(rand.NewSource(99))
	for _, c := range h.Cars() {
		c.Body.X = rng.Float64() * cfg.Length
		c.Body.Lane = rng.Intn(cfg.Lanes)
		c.Body.Speed = 10 + 20*rng.Float64()
		if rng.Float64() < 0.2 {
			target := (c.Body.Lane + 1) % cfg.Lanes
			if err := c.maneuver.Begin(target, 3); err != nil {
				t.Fatal(err)
			}
		}
	}
	h.assignShards()
	h.publishSnapshot(0)

	// bruteLeader is the seed implementation: scan every car, keep the
	// nearest ahead sharing a lane.
	bruteLeader := func(c *Car) (int, float64) {
		bestID := -1
		bestGap := math.MaxFloat64
		for _, o := range h.Cars() {
			if o == c {
				continue
			}
			shared := false
			for lane := 0; lane < cfg.Lanes; lane++ {
				if c.occupies(lane) && o.occupies(lane) {
					shared = true
					break
				}
			}
			if !shared {
				continue
			}
			gap := math.Mod(o.Body.X-c.Body.X+cfg.Length, cfg.Length)
			if gap < bestGap {
				bestGap = gap
				bestID = o.ID
			}
		}
		return bestID, bestGap
	}
	for _, c := range h.Cars() {
		wantID, wantCenter := bruteLeader(c)
		e, gap := h.leaderAt(c)
		if wantID < 0 {
			if e != nil {
				t.Fatalf("car %d: snapshot found leader %d, scan found none", c.ID, e.id)
			}
			continue
		}
		if e == nil {
			t.Fatalf("car %d: scan found leader %d, snapshot found none", c.ID, wantID)
		}
		if e.id != wantID {
			t.Fatalf("car %d: snapshot leader %d, scan leader %d", c.ID, e.id, wantID)
		}
		if want := wantCenter - e.length; math.Abs(want-gap) > 1e-9 {
			t.Fatalf("car %d: snapshot gap %.6f, scan gap %.6f", c.ID, gap, want)
		}
	}
}

func TestIntersectionValidation(t *testing.T) {
	bad := DefaultIntersectionConfig()
	bad.BoxLength = 0
	if _, err := BuildIntersection(1, 1, bad); err == nil {
		t.Fatal("zero box accepted")
	}
	bad = DefaultIntersectionConfig()
	bad.GreenFor = 0
	if _, err := BuildIntersection(1, 1, bad); err == nil {
		t.Fatal("zero green accepted")
	}
	wrongWindow, err := sim.NewShardedKernel(1, 2, sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewIntersection(wrongWindow, DefaultIntersectionConfig()); err == nil {
		t.Fatal("window != control period accepted")
	}
}

func runIntersection(t *testing.T, seed int64, shards int, cfg IntersectionConfig) *Intersection {
	t.Helper()
	w, err := BuildIntersection(seed, shards, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestIntersectionPhysicalLightNoConflicts(t *testing.T) {
	w := runIntersection(t, 10, 1, DefaultIntersectionConfig())
	if err := w.Run(3 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if w.Conflicts != 0 {
		t.Fatalf("%d conflicts under a working light", w.Conflicts)
	}
	total := w.Crossed[RoadNS] + w.Crossed[RoadEW]
	if total < 20 {
		t.Fatalf("only %d vehicles crossed in 3 minutes", total)
	}
}

func TestIntersectionVirtualTakeoverKeepsTrafficMoving(t *testing.T) {
	cfg := DefaultIntersectionConfig()
	cfg.LightFailsAt = 60 * sim.Second
	w := runIntersection(t, 11, 1, cfg)
	if err := w.Run(60 * sim.Second); err != nil {
		t.Fatal(err)
	}
	before := w.Crossed[RoadNS] + w.Crossed[RoadEW]
	if err := w.Run(4 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	after := w.Crossed[RoadNS] + w.Crossed[RoadEW]
	if w.Conflicts != 0 {
		t.Fatalf("%d conflicts across the virtual takeover", w.Conflicts)
	}
	if after-before < 15 {
		t.Fatalf("traffic stalled after light failure: %d crossed in 4 min", after-before)
	}
	if w.LightAlive() {
		t.Fatal("light should be dead")
	}
}

func TestIntersectionNoBackupStallsSafely(t *testing.T) {
	cfg := DefaultIntersectionConfig()
	cfg.LightFailsAt = 30 * sim.Second
	cfg.VirtualBackup = false
	w := runIntersection(t, 12, 1, cfg)
	if err := w.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(30 * sim.Second); err != nil { // drain guard + in-flight crossings
		t.Fatal(err)
	}
	before := w.Crossed[RoadNS] + w.Crossed[RoadEW]
	if err := w.Run(2 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	after := w.Crossed[RoadNS] + w.Crossed[RoadEW]
	if w.Conflicts != 0 {
		t.Fatalf("%d conflicts with a dead light and no backup", w.Conflicts)
	}
	if after != before {
		t.Fatalf("%d vehicles crossed with no control authority (fail-safe violated)",
			after-before)
	}
}

func TestIntersectionJamDuringVirtualOperation(t *testing.T) {
	// After the physical light dies and the virtual light has taken over,
	// jam the V2V channel: the virtual node goes silent, every approaching
	// car must treat the crossing as red (no conflicts), and traffic must
	// resume once the jam clears.
	cfg := DefaultIntersectionConfig()
	cfg.LightFailsAt = 30 * sim.Second
	w := runIntersection(t, 14, 1, cfg)
	if err := w.Run(90 * sim.Second); err != nil { // virtual light established
		t.Fatal(err)
	}
	w.JamV2V(20 * sim.Second)
	if err := w.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if w.Conflicts != 0 {
		t.Fatalf("%d conflicts across a V2V jam on the virtual light", w.Conflicts)
	}
	before := w.Crossed[RoadNS] + w.Crossed[RoadEW]
	if err := w.Run(2 * sim.Minute); err != nil { // jam long gone: traffic must flow again
		t.Fatal(err)
	}
	after := w.Crossed[RoadNS] + w.Crossed[RoadEW]
	if after-before < 5 {
		t.Fatalf("traffic did not resume after jam: %d crossed", after-before)
	}
	if w.Conflicts != 0 {
		t.Fatalf("%d conflicts after recovery", w.Conflicts)
	}
}

// intersectionFingerprint serializes everything observable about a run.
func intersectionFingerprint(t *testing.T, seed int64, shards int, cfg IntersectionConfig, d sim.Time) string {
	t.Helper()
	w, err := BuildIntersection(seed, shards, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(d); err != nil {
		t.Fatal(err)
	}
	if w.Kernel().Clamped() != 0 {
		t.Fatalf("shards=%d violated the conservative contract %d times", shards, w.Kernel().Clamped())
	}
	var state []string
	for _, c := range w.cars {
		state = append(state, fmt.Sprintf("%d:%s:%.6f:%.6f:%v:%v",
			c.id, c.road, c.body.X, c.body.Speed, c.done, c.waited))
	}
	js, err := json.Marshal(map[string]any{
		"crossed_ns": w.Crossed[RoadNS],
		"crossed_ew": w.Crossed[RoadEW],
		"conflicts":  w.Conflicts,
		"wait_p95":   w.WaitTimes.Percentile(95),
		"active":     w.ActiveCars(),
		"cars":       state,
		"events":     w.Kernel().Executed(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(js)
}

// The intersection must be byte-identical across shard widths too — with
// the light failure deliberately straddling a window barrier (mid-window
// instant), the exact case where a sloppy port would let the failure land
// on different edges for different widths.
func TestIntersectionShardCountInvariance(t *testing.T) {
	cfg := DefaultIntersectionConfig()
	cfg.LightFailsAt = 30*sim.Second + 37*sim.Millisecond // straddles a window barrier
	dur := 80 * sim.Second
	if testing.Short() {
		dur = 45 * sim.Second
	}
	base := intersectionFingerprint(t, 42, 1, cfg, dur)
	for _, shards := range []int{2, 4} {
		if got := intersectionFingerprint(t, 42, shards, cfg, dur); got != base {
			t.Fatalf("shards=%d changed output:\n1 shard: %s\n%d shards: %s", shards, base, shards, got)
		}
	}
	if other := intersectionFingerprint(t, 43, 2, cfg, dur); other == base {
		t.Fatal("different seeds produced identical output")
	}
}

// Two maneuvers granted at the same barrier (different regions, same
// target lane) must see each other: the first grant marks its dual-lane
// occupancy in the snapshot before the second's clearance check runs.
func TestArbitrateSameWindowGrantsSeeEachOther(t *testing.T) {
	cfg := DefaultHighwayConfig()
	cfg.Cars = 6
	cfg.Lanes = 3
	h := buildHighway(t, 17, 1, cfg)
	a, b := h.Cars()[0], h.Cars()[1]
	a.Body.X, a.Body.Lane, a.Body.Speed = 199, 0, 20
	b.Body.X, b.Body.Lane, b.Body.Speed = 205, 2, 20
	// Park the remaining cars far away in their own lanes.
	for i, c := range h.Cars()[2:] {
		c.Body.X = 1000 + 50*float64(i)
	}
	h.assignShards()
	h.publishSnapshot(0)
	a.wantRegion, a.wantLane = "lc@0", 1
	b.wantRegion, b.wantLane = "lc@1", 1
	h.arbitrate(0)
	if !a.maneuver.Active() || a.maneuver.TargetLane != 1 {
		t.Fatal("first grantee should begin its maneuver")
	}
	if b.maneuver.Active() {
		t.Fatal("second grantee began converging into the same spot: stale-snapshot clearance")
	}
	if b.heldRegion != "" {
		t.Fatalf("denied car still holds %q", b.heldRegion)
	}
}
