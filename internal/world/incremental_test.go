package world

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"karyon/internal/sim"
)

// bruteSnapshot is the seed's from-scratch snapshot: every car's state,
// globally sorted by (x, id), with ownership recomputed from scratch.
func bruteSnapshot(h *Highway) []hwSnap {
	var snap []hwSnap
	for _, c := range h.cars {
		lane2 := -1
		if c.maneuver.Active() {
			lane2 = c.maneuver.TargetLane
		}
		snap = append(snap, hwSnap{
			id: c.ID, x: c.Body.X, speed: c.Body.Speed, length: c.Body.Length,
			lane: c.Body.Lane, lane2: lane2, shard: h.part.ShardOf(c.Body.X),
		})
	}
	sort.Slice(snap, func(i, j int) bool {
		if snap[i].x != snap[j].x {
			return snap[i].x < snap[j].x
		}
		return snap[i].id < snap[j].id
	})
	return snap
}

// TestStitchedSnapshotMatchesBruteSort property-tests the incremental
// snapshot machinery: random rounds of car movement — forward drift across
// arc boundaries, cars planted exactly ON boundaries, wrap-around past
// x=0, and mid-maneuver lane2 entries — followed by the per-shard phase
// and the barrier merge must leave the stitched global snapshot
// element-for-element equal to the brute-force (x, id) sort, ownership
// equal to ShardOf, and the per-shard ownership lists id-ordered.
func TestStitchedSnapshotMatchesBruteSort(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		cfg := DefaultHighwayConfig() // 2 km ring, 250 m reach: up to 8 arcs
		cfg.Cars = 64
		cfg.Lanes = 3
		h := buildHighway(t, 5, shards, cfg)
		if got := h.Kernel().Shards(); got != shards {
			t.Fatalf("wanted %d shards, got %d", shards, got)
		}
		h.assignShards()
		h.publishSnapshot(0)
		rng := rand.New(rand.NewSource(int64(1000 + shards)))
		for round := 1; round <= 60; round++ {
			for _, c := range h.cars {
				switch rng.Intn(12) {
				case 0:
					// Exactly on an arc boundary (owned by the upper arc).
					c.Body.X = h.part.ArcStart(rng.Intn(shards))
				case 1:
					// Hugging the wrap: the next drift crosses x=0.
					c.Body.X = cfg.Length - 0.5 - rng.Float64()
				default:
					// A window's travel, occasionally enough to cross.
					c.Body.X += rng.Float64() * 5
					if c.Body.X >= cfg.Length {
						c.Body.X -= cfg.Length
					}
				}
				c.Body.Speed = 5 + 25*rng.Float64()
				if !c.maneuver.Active() {
					c.Body.Lane = rng.Intn(cfg.Lanes)
					if rng.Intn(4) == 0 {
						if err := c.maneuver.Begin((c.Body.Lane+1)%cfg.Lanes, 3); err != nil {
							t.Fatal(err)
						}
					}
				} else if rng.Intn(3) == 0 {
					for !c.maneuver.Step(&c.Body, 0.5) {
					}
				}
			}
			// Republish the mutated kinematics into the SoA hot table — the
			// write barrier every real mutation point (step end, maneuver
			// grant, full rebuild) performs before the shard phase reads it.
			for _, c := range h.cars {
				h.syncHot(c)
			}
			edge := sim.Time(round) * cfg.ControlPeriod
			for s := 0; s < shards; s++ {
				h.shardPhase(s, edge)
			}
			h.mergeSnapshot(edge)

			want := bruteSnapshot(h)
			if len(h.snap) != len(want) {
				t.Fatalf("shards=%d round=%d: stitched %d entries, want %d",
					shards, round, len(h.snap), len(want))
			}
			for i := range want {
				if h.snap[i] != want[i] {
					t.Fatalf("shards=%d round=%d entry %d:\nstitched %+v\nbrute    %+v",
						shards, round, i, h.snap[i], want[i])
				}
			}
			owned := 0
			for s, list := range h.byShard {
				for i, c := range list {
					if c.shard != s {
						t.Fatalf("shards=%d round=%d: car %d in list %d but owned by %d",
							shards, round, c.ID, s, c.shard)
					}
					if want := h.part.ShardOf(c.Body.X); c.shard != want {
						t.Fatalf("shards=%d round=%d: car %d at %.3f owned by %d, want %d",
							shards, round, c.ID, c.Body.X, c.shard, want)
					}
					if i > 0 && list[i-1].ID >= c.ID {
						t.Fatalf("shards=%d round=%d: byShard[%d] not id-ordered", shards, round, s)
					}
				}
				owned += len(list)
			}
			if owned != len(h.cars) {
				t.Fatalf("shards=%d round=%d: %d cars owned, want %d", shards, round, owned, len(h.cars))
			}
		}
		if shards > 1 && h.Crossers == 0 {
			t.Fatalf("shards=%d: no boundary crossers exercised", shards)
		}
	}
}

// TestSweepLeadersMatchesBinarySearch locks the linear collision sweep to
// the per-car binary-search leaderAt on a random multi-lane world with
// duplicate positions and mid-maneuver entries.
func TestSweepLeadersMatchesBinarySearch(t *testing.T) {
	cfg := DefaultHighwayConfig()
	cfg.Cars = 80
	cfg.Lanes = 3
	h := buildHighway(t, 11, 1, cfg)
	rng := rand.New(rand.NewSource(77))
	for _, c := range h.cars {
		c.Body.X = float64(rng.Intn(200)) * 10 // plenty of exact x ties
		c.Body.Lane = rng.Intn(cfg.Lanes)
		c.Body.Speed = 10 + 20*rng.Float64()
		if rng.Float64() < 0.25 {
			if err := c.maneuver.Begin((c.Body.Lane+1)%cfg.Lanes, 3); err != nil {
				t.Fatal(err)
			}
		}
	}
	h.assignShards()
	h.publishSnapshot(0)
	h.sweepLeaders()
	for _, c := range h.cars {
		wantLead, wantGap := h.leaderAt(c)
		li := h.sweepLead[c.ID]
		if wantLead == nil {
			if li >= 0 {
				t.Fatalf("car %d: sweep found leader %d, search found none", c.ID, h.snap[li].id)
			}
			continue
		}
		if li < 0 {
			t.Fatalf("car %d: search found leader %d, sweep found none", c.ID, wantLead.id)
		}
		if h.snap[li].id != wantLead.id {
			t.Fatalf("car %d: sweep leader %d, search leader %d", c.ID, h.snap[li].id, wantLead.id)
		}
		if h.sweepGap[c.ID] != wantGap {
			t.Fatalf("car %d: sweep gap %v, search gap %v", c.ID, h.sweepGap[c.ID], wantGap)
		}
	}
}

// TestBarrierActionContract locks the onWindow contract the incremental
// snapshot relies on: scheduled barrier actions that only set flags (jams,
// forced braking, cruise-speed changes) keep the stitched snapshot in sync
// with the cars, while an action that mutates kinematics is caught loudly
// by the debugSnapshotSync assertion instead of silently desyncing the
// next window.
func TestBarrierActionContract(t *testing.T) {
	debugSnapshotSync = true
	defer func() { debugSnapshotSync = false }()

	cfg := DefaultHighwayConfig()
	cfg.Cars = 10
	cfg.Length = 1000
	h := buildHighway(t, 31, 2, cfg)
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	h.Schedule(2*sim.Second, func() { h.JamV2V(sim.Second) })
	h.Schedule(3*sim.Second, func() { h.Cars()[1].ForceBrake(h.Now(), sim.Second) })
	h.Schedule(4*sim.Second, func() { h.Cars()[2].SetCruiseSpeed(12) })
	if err := h.Run(6 * sim.Second); err != nil {
		t.Fatalf("flag-only barrier actions tripped the sync assertion: %v", err)
	}

	// A kinematic mutation must surface as a window-hook error, not pass.
	h.Schedule(7*sim.Second, func() { h.Cars()[3].Body.X += 500 })
	err := h.Run(2 * sim.Second)
	if err == nil || !strings.Contains(err.Error(), "desync") {
		t.Fatalf("kinematic mutation not caught: %v", err)
	}
}
