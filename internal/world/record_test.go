package world

import (
	"bytes"
	"errors"
	"testing"

	"karyon/internal/sim"
	"karyon/internal/trace"
)

func recordTrace(t *testing.T, seed int64, shards int, cfg HighwayConfig, dur sim.Time, every int, jams []JamSpec, perturb uint64) []byte {
	t.Helper()
	h, err := BuildHighway(seed, shards, cfg)
	if err != nil {
		t.Fatalf("BuildHighway: %v", err)
	}
	if err := h.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	for _, j := range jams {
		burst := j.Burst
		h.Schedule(j.At, func() { h.JamV2V(burst) })
	}
	var buf bytes.Buffer
	spec := TraceSpec{
		Scenario: "highway", Seed: seed, Shards: shards, Duration: dur,
		Config: cfg, Jams: jams, PerturbWindow: perturb,
	}
	if err := h.RecordTo(&buf, spec, every); err != nil {
		t.Fatalf("RecordTo: %v", err)
	}
	if err := h.Run(dur); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := h.FinishRecording(); err != nil {
		t.Fatalf("FinishRecording: %v", err)
	}
	return buf.Bytes()
}

func testJams() []JamSpec {
	return []JamSpec{{At: 2 * sim.Second, Burst: sim.Second}, {At: 5 * sim.Second, Burst: sim.Second / 2}}
}

// TestRecordShardWidthInvariance: the recorded windows — digests,
// counters, and every barrier decision — are identical at widths 1/2/4/8.
// Only the Crossers telemetry may differ.
func TestRecordShardWidthInvariance(t *testing.T) {
	cfg := DefaultHighwayConfig()
	cfg.Cars = 24
	dur := 8 * sim.Second
	var ref *trace.Contents
	for _, shards := range []int{1, 2, 4, 8} {
		data := recordTrace(t, 11, shards, cfg, dur, 0, testJams(), 0)
		c, err := trace.Parse(data)
		if err != nil {
			t.Fatalf("shards=%d: Parse: %v", shards, err)
		}
		if ref == nil {
			ref = c
			continue
		}
		if len(c.Windows) != len(ref.Windows) {
			t.Fatalf("shards=%d: %d windows, want %d", shards, len(c.Windows), len(ref.Windows))
		}
		for i := range c.Windows {
			if !c.Windows[i].Same(&ref.Windows[i]) {
				t.Fatalf("shards=%d: window %d differs from width-1 recording:\n got %+v\nwant %+v",
					shards, i+1, c.Windows[i], ref.Windows[i])
			}
		}
	}
}

// TestRecordSpeculationInvariance: recording pins lockstep, so a
// speculative world records byte-identical windows (including the
// width-dependent telemetry, same width) as a lockstep one.
func TestRecordSpeculationInvariance(t *testing.T) {
	cfg := DefaultHighwayConfig()
	cfg.Cars = 24
	dur := 6 * sim.Second
	base := recordTrace(t, 13, 4, cfg, dur, 0, nil, 0)
	specCfg := cfg
	specCfg.SpecDepth = 3
	spec := recordTrace(t, 13, 4, specCfg, dur, 0, nil, 0)
	cb, err := trace.Parse(base)
	if err != nil {
		t.Fatalf("Parse base: %v", err)
	}
	cs, err := trace.Parse(spec)
	if err != nil {
		t.Fatalf("Parse spec: %v", err)
	}
	if len(cb.Windows) != len(cs.Windows) {
		t.Fatalf("window counts differ: %d vs %d", len(cb.Windows), len(cs.Windows))
	}
	for i := range cb.Windows {
		if !cb.Windows[i].Same(&cs.Windows[i]) || cb.Windows[i].Crossers != cs.Windows[i].Crossers {
			t.Fatalf("window %d differs under -speculate:\n got %+v\nwant %+v", i+1, cs.Windows[i], cb.Windows[i])
		}
	}
}

// TestReplayRoundTrip: every window range replays byte-identically, from
// the nearest checkpoint when one precedes the range.
func TestReplayRoundTrip(t *testing.T) {
	cfg := DefaultHighwayConfig()
	cfg.Cars = 24
	dur := 8 * sim.Second // 80 windows
	data := recordTrace(t, 17, 4, cfg, dur, 20, testJams(), 0)

	cases := []struct {
		from, to, wantCk uint64
	}{
		{0, 0, 0},    // full range from genesis (no checkpoint before window 1)
		{1, 30, 0},   // prefix, genesis
		{21, 40, 20}, // starts right after the first checkpoint
		{45, 60, 40}, // mid-run range from the second checkpoint
		{61, 80, 60}, // tail from the third
		{80, 80, 60}, // single final window
	}
	for _, tc := range cases {
		res, err := ReplayTrace(data, ReplayOptions{From: tc.from, To: tc.to})
		if err != nil {
			t.Fatalf("Replay %d:%d: %v", tc.from, tc.to, err)
		}
		if res.Checkpoint != tc.wantCk {
			t.Errorf("Replay %d:%d used checkpoint %d, want %d", tc.from, tc.to, res.Checkpoint, tc.wantCk)
		}
	}
}

// TestReplayCrossWidth: a trace recorded at one width replays cleanly at
// another — the digests and decisions are width-invariant.
func TestReplayCrossWidth(t *testing.T) {
	cfg := DefaultHighwayConfig()
	cfg.Cars = 24
	data := recordTrace(t, 19, 1, cfg, 6*sim.Second, 15, nil, 0)
	for _, shards := range []int{2, 4} {
		if _, err := ReplayTrace(data, ReplayOptions{From: 16, To: 45, Shards: shards}); err != nil {
			t.Fatalf("replay at width %d: %v", shards, err)
		}
	}
}

// TestReplayMediumWorld: the slot-level radio medium checkpoints and
// replays exactly, including its per-receiver stream states.
func TestReplayMediumWorld(t *testing.T) {
	cfg := DefaultHighwayConfig()
	cfg.Cars = 20
	cfg.Medium = true
	data := recordTrace(t, 23, 2, cfg, 6*sim.Second, 20, testJams(), 0)
	res, err := ReplayTrace(data, ReplayOptions{From: 30, To: 60})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if res.Checkpoint != 20 {
		t.Fatalf("used checkpoint %d, want 20", res.Checkpoint)
	}
}

// TestReplayDetectsDivergence: replaying a perturbed recording under a
// de-perturbed spec diverges exactly at perturbWindow+1 — the barrier
// sets a brake flag the NEXT window's control steps read.
func TestReplayDetectsDivergence(t *testing.T) {
	cfg := DefaultHighwayConfig()
	cfg.Cars = 24
	const perturbAt = 30
	data := recordTrace(t, 29, 2, cfg, 6*sim.Second, 0, nil, perturbAt)

	// Sanity: the perturbed trace replays cleanly against itself.
	if _, err := ReplayTrace(data, ReplayOptions{}); err != nil {
		t.Fatalf("self-replay of perturbed trace: %v", err)
	}

	// Strip the perturbation from the spec: the replayed world now runs
	// unperturbed and must diverge at window perturbAt+1.
	c, err := trace.Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	clean := recordTrace(t, 29, 2, cfg, 6*sim.Second, 0, nil, 0)
	cc, err := trace.Parse(clean)
	if err != nil {
		t.Fatalf("Parse clean: %v", err)
	}
	first := uint64(0)
	for i := range c.Windows {
		if c.Windows[i].Digest != cc.Windows[i].Digest {
			first = c.Windows[i].Index
			break
		}
	}
	if first != perturbAt+1 {
		t.Fatalf("first divergent window %d, want %d", first, perturbAt+1)
	}

	// And the replay verifier reports the same window when an
	// unperturbed world runs against the perturbed recording.
	h, err := BuildHighway(29, 2, cfg)
	if err != nil {
		t.Fatalf("BuildHighway: %v", err)
	}
	if err := h.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	h.rec = &recorder{expect: c.Windows, strict: true}
	if err := h.Run(6 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var div *DivergenceError
	if !errors.As(h.rec.err, &div) {
		t.Fatalf("expected DivergenceError, got %v", h.rec.err)
	}
	if div.Window != perturbAt+1 {
		t.Fatalf("verifier reported window %d, want %d", div.Window, perturbAt+1)
	}
}

// TestReplay1200CarHighway is the acceptance-criteria run: a 1200-car
// highway, recorded with periodic checkpoints, where any window range
// replays from a checkpoint byte-identically to the original full run.
func TestReplay1200CarHighway(t *testing.T) {
	if testing.Short() {
		t.Skip("full-fidelity 1200-car recording; run without -short")
	}
	cfg := DefaultHighwayConfig()
	cfg.Cars = 1200
	cfg.Length = 10000
	cfg.V2VRange = 300
	dur := 12 * sim.Second // 120 windows
	data := recordTrace(t, 42, 8, cfg, dur, 40, testJams(), 0)
	for _, rng := range []struct{ from, to, wantCk uint64 }{
		{50, 90, 40},   // mid-run range from the first checkpoint
		{81, 120, 80},  // tail from the second
		{1, 120, 0},    // full run from genesis
		{115, 115, 80}, // single window
	} {
		res, err := ReplayTrace(data, ReplayOptions{From: rng.from, To: rng.to})
		if err != nil {
			t.Fatalf("Replay %d:%d: %v", rng.from, rng.to, err)
		}
		if res.Checkpoint != rng.wantCk {
			t.Errorf("Replay %d:%d used checkpoint %d, want %d", rng.from, rng.to, res.Checkpoint, rng.wantCk)
		}
	}
}

// TestRecordRequiresFreshWorld: attaching a recorder after windows have
// run is an error, not a silently partial trace.
func TestRecordRequiresFreshWorld(t *testing.T) {
	cfg := DefaultHighwayConfig()
	cfg.Cars = 8
	h, err := BuildHighway(3, 1, cfg)
	if err != nil {
		t.Fatalf("BuildHighway: %v", err)
	}
	if err := h.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := h.Run(sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	if err := h.RecordTo(&buf, TraceSpec{Config: cfg}, 0); err == nil {
		t.Fatal("RecordTo after windows ran must fail")
	}
}
