package world

import (
	"context"
	"encoding/json"
	"testing"

	"karyon/internal/sim"
)

func TestRingPartition(t *testing.T) {
	p, err := NewRingPartition(1000, 4, 200)
	if err != nil {
		t.Fatal(err)
	}
	if p.ArcLength() != 250 {
		t.Fatalf("arc = %v", p.ArcLength())
	}
	for _, tc := range []struct {
		x    float64
		want int
	}{{0, 0}, {249.9, 0}, {250, 1}, {999.9, 3}, {1000, 0}, {-1, 3}, {1250, 1}} {
		if got := p.ShardOf(tc.x); got != tc.want {
			t.Fatalf("ShardOf(%v) = %d, want %d", tc.x, got, tc.want)
		}
	}
	if !p.Adjacent(0, 3) || !p.Adjacent(1, 2) || p.Adjacent(0, 2) {
		t.Fatal("ring adjacency wrong")
	}
	if _, err := NewRingPartition(1000, 6, 200); err == nil {
		t.Fatal("arc shorter than reach accepted")
	}
	if _, err := NewRingPartition(0, 1, 0); err == nil {
		t.Fatal("zero length accepted")
	}
	if _, err := NewRingPartition(100, 0, 0); err == nil {
		t.Fatal("zero shards accepted")
	}
}

func TestQuadrantPartition(t *testing.T) {
	p := QuadrantPartition{}
	for _, tc := range []struct {
		x, y float64
		want int
	}{{1, 1, 0}, {-1, 1, 1}, {-1, -1, 2}, {1, -1, 3}, {0, 0, 0}} {
		if got := p.ShardOf(tc.x, tc.y); got != tc.want {
			t.Fatalf("ShardOf(%v,%v) = %d, want %d", tc.x, tc.y, got, tc.want)
		}
	}
	if !p.Adjacent(0, 1) || !p.Adjacent(0, 3) || p.Adjacent(0, 2) || p.Adjacent(1, 3) {
		t.Fatal("quadrant adjacency wrong")
	}
}

func TestShardedHighwayValidation(t *testing.T) {
	cfg := DefaultShardedHighwayConfig()
	sk, err := sim.NewShardedKernel(1, 2, cfg.BeaconPeriod)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewShardedHighway(sk, cfg); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Cars = 0
	if _, err := NewShardedHighway(sk, bad); err == nil {
		t.Fatal("zero cars accepted")
	}
	bad = cfg
	bad.BeaconPeriod = 95 * sim.Millisecond
	if _, err := NewShardedHighway(sk, bad); err == nil {
		t.Fatal("non-multiple beacon period accepted")
	}
	wrongWindow, err := sim.NewShardedKernel(1, 2, sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewShardedHighway(wrongWindow, cfg); err == nil {
		t.Fatal("window != beacon period accepted")
	}
	tooMany, err := sim.NewShardedKernel(1, 64, cfg.BeaconPeriod)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewShardedHighway(tooMany, cfg); err == nil {
		t.Fatal("arc shorter than radio reach accepted")
	}
}

// runSharded runs the world once and returns (result JSON, executed
// events) — the byte string the invariance test compares.
func runSharded(t *testing.T, seed int64, shards int, dur sim.Time) (string, uint64) {
	t.Helper()
	cfg := DefaultShardedHighwayConfig()
	cfg.Length = 3000
	cfg.Cars = 60
	cfg.Loss = 0.1
	sk, err := sim.NewShardedKernel(seed, shards, cfg.BeaconPeriod)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewShardedHighway(sk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sk.Run(context.Background(), dur); err != nil {
		t.Fatal(err)
	}
	if sk.Clamped() != 0 {
		t.Fatalf("shards=%d violated the conservative contract %d times", shards, sk.Clamped())
	}
	js, err := json.Marshal(h.Result())
	if err != nil {
		t.Fatal(err)
	}
	return string(js), sk.Executed()
}

// The tentpole invariant: the partitioned world produces byte-identical
// output for every shard count — sharding affects wall time only.
func TestShardedHighwayShardCountInvariance(t *testing.T) {
	dur := 3 * sim.Second
	if testing.Short() {
		dur = sim.Second
	}
	base, baseEvents := runSharded(t, 42, 1, dur)
	for _, shards := range []int{2, 4, 8} {
		got, events := runSharded(t, 42, shards, dur)
		if got != base {
			t.Fatalf("shards=%d changed output:\n1 shard: %s\n%d shards: %s", shards, base, shards, got)
		}
		if events != baseEvents {
			t.Fatalf("shards=%d executed %d events, 1 shard executed %d", shards, events, baseEvents)
		}
	}
	// Sanity: the output is seed-sensitive, so identical bytes above are
	// not a constant function.
	other, _ := runSharded(t, 43, 2, dur)
	if other == base {
		t.Fatal("different seeds produced identical output")
	}
}

// Cars crossing arc boundaries must be handed off to the owning shard.
func TestShardedHighwayHandoff(t *testing.T) {
	cfg := DefaultShardedHighwayConfig()
	cfg.Length = 3000
	cfg.Cars = 60
	sk, err := sim.NewShardedKernel(7, 4, cfg.BeaconPeriod)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewShardedHighway(sk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sk.Run(context.Background(), 5*sim.Second); err != nil {
		t.Fatal(err)
	}
	if h.Handoffs() == 0 {
		t.Fatal("no handoffs in 5 s at ~20 m/s across 750 m arcs")
	}
	for _, c := range h.cars {
		if want := h.part.ShardOf(c.body.X); c.shard != want {
			t.Fatalf("car %d at %.1f owned by shard %d, want %d", c.id, c.body.X, c.shard, want)
		}
	}
}

// The model must actually communicate: beacons are sent, and with loss
// configured some are lost.
func TestShardedHighwayBeaconAccounting(t *testing.T) {
	js, _ := runSharded(t, 9, 2, 2*sim.Second)
	var res struct {
		Records []struct {
			Values []struct {
				Name string  `json:"name"`
				V    float64 `json:"value"`
			} `json:"values"`
		} `json:"records"`
	}
	if err := json.Unmarshal([]byte(js), &res); err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, v := range res.Records[0].Values {
		vals[v.Name] = v.V
	}
	if vals["beacons sent"] == 0 || vals["beacons delivered"] == 0 || vals["beacons lost"] == 0 {
		t.Fatalf("beacon accounting hollow: %v", vals)
	}
	if vals["beacons delivered"]+vals["beacons lost"] != vals["beacons sent"] {
		t.Fatalf("beacons do not balance: %v", vals)
	}
}
