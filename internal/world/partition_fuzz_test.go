package world

import (
	"math"
	"testing"
)

// FuzzRingPartitionOwnership locks the partition invariants the sharded
// engine actually leans on: every finite position (wrapped, negative,
// beyond the ring) is owned by exactly one valid shard (membership is
// total and exclusive), ownership is monotone along the ring so arcs are
// contiguous and the barrier's stitch is a plain concatenation, an arc
// boundary splits ownership by at most one shard (boundary-exact up to
// the one-ulp float seam), and the constructor enforces the
// radio-reach/arc-length bound its error message promises.
func FuzzRingPartitionOwnership(f *testing.F) {
	f.Add(2000.0, 8, 250.0, 37.5, 1999.999)
	f.Add(300000.0, 64, 300.0, -42.0, 12345.678)
	f.Add(1.5, 2, 0.0, 0.75, 0.7499999)
	f.Fuzz(func(t *testing.T, length float64, shards int, minReach, x1, x2 float64) {
		if math.IsNaN(length) || math.IsInf(length, 0) || length <= 0 || length > 1e9 {
			return
		}
		if math.IsNaN(minReach) || math.IsInf(minReach, 0) || minReach < 0 {
			return
		}
		if math.IsNaN(x1) || math.IsInf(x1, 0) || math.IsNaN(x2) || math.IsInf(x2, 0) {
			return
		}
		if shards < 1 {
			shards = 1 - shards
		}
		shards = shards%64 + 1
		p, err := NewRingPartition(length, shards, minReach)
		if err != nil {
			if shards == 1 || length/float64(shards) >= minReach {
				t.Fatalf("constructor rejected a feasible partition (%v/%d reach %v): %v",
					length, shards, minReach, err)
			}
			return
		}
		if shards > 1 && p.ArcLength() < minReach {
			t.Fatalf("constructor accepted arc %v below reach %v", p.ArcLength(), minReach)
		}
		// Total and exclusive: any finite x has exactly one owner in range.
		for _, x := range []float64{x1, x2, -x1, x1 + length, x2 * 1e3} {
			if got := p.ShardOf(x); got < 0 || got >= shards {
				t.Fatalf("ShardOf(%v) = %d outside [0,%d)", x, got, shards)
			}
		}
		// Monotone along [0, length): arcs are contiguous in x.
		w1 := math.Mod(math.Abs(x1), length)
		w2 := math.Mod(math.Abs(x2), length)
		if w1 > w2 {
			w1, w2 = w2, w1
		}
		if p.ShardOf(w1) > p.ShardOf(w2) {
			t.Fatalf("ownership not monotone: ShardOf(%v)=%d > ShardOf(%v)=%d",
				w1, p.ShardOf(w1), w2, p.ShardOf(w2))
		}
		// Boundary-exact up to the float seam: the owner at an arc start is
		// that arc (or, within one ulp of rounding, the one below), and the
		// position just below belongs to the arc below.
		for i := 1; i < shards; i++ {
			b := p.ArcStart(i)
			if got := p.ShardOf(b); got != i && got != i-1 {
				t.Fatalf("boundary %v of arc %d owned by %d", b, i, got)
			}
			if got := p.ShardOf(math.Nextafter(b, 0)); got != i-1 && got != i {
				t.Fatalf("just-below boundary %v of arc %d owned by %d", b, i, got)
			}
			if !p.Adjacent(p.ShardOf(math.Nextafter(b, 0)), p.ShardOf(b)) {
				t.Fatalf("crossing boundary %d lands in a non-adjacent shard", i)
			}
		}
	})
}

// FuzzQuadrantPartitionOwnership checks the plane partition: ownership is
// total and exclusive over the four quadrants, boundary points go to the
// east/north side exactly as documented, mirroring a point across one
// axis lands in an adjacent quadrant, and the adjacency relation is
// symmetric with diagonals excluded.
func FuzzQuadrantPartitionOwnership(f *testing.F) {
	f.Add(0.0, 0.0, 1.0, -1.0)
	f.Add(-3.5, 12.25, -3.5, 12.25)
	f.Add(100.0, -100.0, 99.9999, -100.0001)
	f.Fuzz(func(t *testing.T, cx, cy, x, y float64) {
		for _, v := range []float64{cx, cy, x, y} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return
			}
		}
		p := QuadrantPartition{CenterX: cx, CenterY: cy}
		got := p.ShardOf(x, y)
		if got < 0 || got >= p.Shards() {
			t.Fatalf("ShardOf(%v,%v) = %d outside [0,4)", x, y, got)
		}
		// Exclusive and boundary-exact: the documented (east, north)
		// mapping, with >= assigning boundary points.
		east, north := x >= cx, y >= cy
		want := map[[2]bool]int{
			{true, true}: 0, {false, true}: 1, {false, false}: 2, {true, false}: 3,
		}[[2]bool{east, north}]
		if got != want {
			t.Fatalf("ShardOf(%v,%v) = %d, want %d (east=%v north=%v)", x, y, got, want, east, north)
		}
		if c := p.ShardOf(cx, cy); c != 0 {
			t.Fatalf("center owned by %d, want 0 (NE)", c)
		}
		// Mirroring across one axis is a one-boundary crossing: the
		// destination quadrant must be adjacent.
		mx := 2*cx - x
		if math.IsInf(mx, 0) {
			return
		}
		if m := p.ShardOf(mx, y); !p.Adjacent(got, m) && m != got {
			t.Fatalf("x-mirror of (%v,%v): %d -> %d not adjacent", x, y, got, m)
		}
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if p.Adjacent(i, j) != p.Adjacent(j, i) {
					t.Fatalf("adjacency not symmetric at (%d,%d)", i, j)
				}
			}
			if !p.Adjacent(i, i) {
				t.Fatalf("quadrant %d not self-adjacent", i)
			}
			if p.Adjacent(i, (i+2)%4) {
				t.Fatalf("diagonal quadrants %d,%d adjacent", i, (i+2)%4)
			}
		}
	})
}
