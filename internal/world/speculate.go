package world

import (
	"cmp"
	"math"
	"slices"

	"karyon/internal/coord"
	"karyon/internal/core"
	"karyon/internal/gear"
	"karyon/internal/metrics"
	"karyon/internal/sensor"
	"karyon/internal/sim"
	"karyon/internal/vehicle"
	"karyon/internal/wireless"
)

// This file implements sim.SpeculativeModel for the highway: optimistic
// shard windows with deterministic abort-and-replay.
//
// A speculative batch runs K windows without the full barrier. Each window
// still performs a thin single-threaded exchange (SpecExchange) that does
// exactly the snapshot reconciliation and metric accounting a lockstep
// barrier would — so in-window control steps read the previous edge's
// global snapshot through the very same helpers (leaderFor, eachInRange)
// as lockstep, unchanged. What the batch *skips* is the mailbox machinery
// (beacons buffer per shard instead of allocating one closure per frame
// and paying the merged stable sort), the scheduled-action drain (fenced:
// a pending action bounds the batch via SpecFence), observer hooks
// (speculation is ineligible while any are registered), and reservation
// arbitration (any reservation intent is a conflict, so arbitrate is a
// guaranteed no-op on every committed window).
//
// Both V2V paths also resolve per-arc inside SpecClose, in parallel —
// the big serial win, since beacon delivery at scale dwarfs the rest of
// the barrier: the arc ≥ V2VRange bound guarantees an interior receiver —
// one more than (range + slack) meters from every arc boundary in the
// previous snapshot — can only hear same-arc senders, provided no car
// moved more than slack meters this window (enforced; a violation is a
// conflict). Abstract beacons deliver to interior receivers on the shard
// goroutines (specDeliverLocal); medium frames resolve contention there
// (specResolveLocal). Only boundary-straddling traffic reconciles
// serially at the exchange, against band receivers. Every
// (frame, receiver) pair is visited exactly once, in the same canonical
// order as lockstep — sender id for beacons, (Start, From) for radio
// frames — with the same per-receiver loss streams, so the committed
// output is byte-identical.
//
// On conflict the controller rolls the shard kernels back and calls
// SpecAbort: the highway restores every car and world counter from the
// batch-start checkpoint, rebuilds ownership and the snapshot, re-seeds
// the first window, and the attempted windows replay through the ordinary
// lockstep barrier. Replay is a pure function of (seed, config), so the
// shard-invariance suites remain the oracle with speculation on.

// specMaxSpeed bounds per-window car movement (m/s) for the per-arc radio
// soundness argument. Far above any plant speed; a car exceeding it in a
// window (e.g. a collision teleport) forces an abort, never a wrong
// resolution.
const specMaxSpeed = 80.0

// specForceConflict, when set by a test, forces a speculative conflict at
// every exchange whose edge it returns true for — the forced-conflict
// injection hook the abort-and-replay property tests use.
var specForceConflict func(edge sim.Time) bool

// specBeacon is one abstract-path beacon buffered during a speculative
// window instead of travelling through the mailbox.
type specBeacon struct {
	from   int
	state  coord.CoopState
	accel  float64
	sentAt sim.Time
}

// hwSpec is the highway's speculative-window machinery.
type hwSpec struct {
	// active marks an in-flight batch: senders buffer beacons instead of
	// calling Shard.Send. Written only single-threaded (SpecSave, the last
	// SpecExchange, SpecAbort), read by shard goroutines in between.
	active bool
	// frames counts beacons delivered outside the mailbox this batch; on
	// commit it feeds CountBarrierExec so Executed() matches lockstep.
	frames uint64
	// slack is the per-window movement bound in meters.
	slack float64

	// beacons is the abstract path's per-shard buffer and bbuf its
	// per-shard boundary subset (beacons audible to a band receiver,
	// deferred to the exchange); txs and stats are the medium path's
	// per-shard buffers (nil / unused when the other path is active).
	// delivered and lost are per-shard accounting deltas for both paths,
	// folded into the global counters at the exchange.
	beacons   [][]specBeacon
	bbuf      [][]specBeacon
	txs       [][]wireless.ShardedTx
	stats     []wireless.ShardedStats
	delivered []int64
	lost      []int64

	// merged / mergedTxs are exchange scratch, reused across windows.
	merged    []specBeacon
	mergedTxs []wireless.ShardedTx

	ck hwCheckpoint
}

// carCheckpoint is one car's complete restorable state. Storage (the
// nested state objects) is reused across batches.
type carCheckpoint struct {
	body     vehicle.Body
	clockAt  sim.Time
	rx, tx   uint64
	sensorRx [3]uint64
	phys     [3]sensor.PhysicalState
	fm       [3]*sensor.FaultManagementState
	dist     *sensor.ReliableState
	table    *coord.StateTableState
	mgr      *core.ManagerState
	gate     core.GateState
	est      gear.LeadEstimator
	hChecks  int64
	hDisagr  int64
	truthGap float64
	params   vehicle.ACCParams

	accelFrom []accelEntry

	forcedBrakeUntil sim.Time
	maneuver         vehicle.Maneuver
	wantRegion       coord.Resource
	wantLane         int
	heldRegion       coord.Resource
	releaseHeld      bool
	nextAttempt      sim.Time

	laneChanges     int64
	emergencyBrakes int64
	degradedTicks   int64
	beaconsSent     int64
}

type accelEntry struct {
	from  int
	accel float64
}

// hwCheckpoint is the world-level half of the undo point.
type hwCheckpoint struct {
	cars []carCheckpoint

	collisions       int64
	crossers         int64
	speedSum         float64
	speedN           int64
	beaconsDelivered int64
	beaconsLost      int64
	timeGaps         metrics.HistogramState
	inaccess         metrics.HistogramState
	lastDelivered    int64
	inOutage         bool
	outageStart      sim.Time
	jamStart         sim.Time
	jamUntil         sim.Time
	medium           *wireless.ShardedMediumState
}

// initSpec builds the speculation buffers and registers the highway as
// the kernel's speculative model.
func (h *Highway) initSpec() {
	n := h.sk.Shards()
	s := &hwSpec{slack: h.cfg.ControlPeriod.Seconds() * specMaxSpeed}
	s.delivered = make([]int64, n)
	s.lost = make([]int64, n)
	if h.medium != nil {
		s.txs = make([][]wireless.ShardedTx, n)
		s.stats = make([]wireless.ShardedStats, n)
		// Per-arc ResolveSlice runs concurrently across shards; priming
		// the loss streams keeps that path read-only on the stream map.
		if len(h.cars) > 0 {
			h.medium.Prime(0, wireless.NodeID(len(h.cars)-1))
		}
	} else {
		s.beacons = make([][]specBeacon, n)
		s.bbuf = make([][]specBeacon, n)
	}
	h.spec = s
	// Prewarm the checkpoint's nested storage with one throwaway save at
	// construction time: SpecSave reuses it thereafter, so the first
	// measured speculative batch pays no cold-start checkpoint allocation.
	s.ck.cars = make([]carCheckpoint, len(h.cars))
	for i, c := range h.cars {
		saveCar(&s.ck.cars[i], c)
	}
	if h.medium != nil {
		s.ck.medium = h.medium.SaveState(s.ck.medium)
	}
	h.sk.EnableSpeculation(h, sim.SpecConfig{
		Depth:   h.cfg.SpecDepth,
		Backoff: h.cfg.SpecBackoff,
	})
}

// SpecEligible reports whether the highway can speculate right now.
// Observer hooks must run at every barrier, so any registered hook pins
// the world to lockstep; carrier sense needs the whole window's frame set
// in one ordered pass (deferrals shift slots across arcs), so CSMA worlds
// stay lockstep too.
func (h *Highway) SpecEligible() bool {
	if h.stopped || len(h.hooks) != 0 {
		return false
	}
	if h.rec != nil {
		// Recording/replay needs every window to pass through the
		// barrier path (digest, decisions, checkpoints). Lockstep is
		// byte-identical to speculation, so pinning it costs only wall
		// time — and makes "record under -speculate equals record
		// without" true by construction.
		return false
	}
	if h.medium != nil && h.cfg.CarrierSense {
		return false
	}
	return true
}

// SpecFence returns the earliest pending scheduled action — the next
// instant that needs a full barrier (campaign injections, jams). Batch
// edges stay strictly before it.
func (h *Highway) SpecFence() sim.Time {
	fence := sim.NoFence
	for i := range h.pending {
		if h.pending[i].at < fence {
			fence = h.pending[i].at
		}
	}
	return fence
}

// SpecSave records the batch-start undo point: every car's full stack
// state plus the world counters and the medium. Storage is reused, so in
// the steady state this allocates nothing.
func (h *Highway) SpecSave(edge sim.Time) {
	s := h.spec
	s.active = true
	s.frames = 0
	ck := &s.ck
	if len(ck.cars) != len(h.cars) {
		ck.cars = make([]carCheckpoint, len(h.cars))
	}
	for i, c := range h.cars {
		saveCar(&ck.cars[i], c)
	}
	ck.collisions = h.Collisions
	ck.crossers = h.Crossers
	ck.speedSum = h.speedSum
	ck.speedN = h.speedN
	ck.beaconsDelivered = h.beaconsDelivered
	ck.beaconsLost = h.beaconsLost
	ck.timeGaps = h.TimeGaps.SaveState()
	ck.inaccess = h.inaccess.SaveState()
	ck.lastDelivered = h.lastDelivered
	ck.inOutage = h.inOutage
	ck.outageStart = h.outageStart
	ck.jamStart = h.jamStart
	ck.jamUntil = h.jamUntil
	if h.medium != nil {
		ck.medium = h.medium.SaveState(ck.medium)
	}
}

// SpecOpen resets shard's per-window buffers and, for every window after
// the batch's first, seeds the shard's control steps (the first window
// was seeded by the preceding barrier). Runs in parallel across shards.
func (h *Highway) SpecOpen(shard int, prev sim.Time, first bool) {
	s := h.spec
	s.delivered[shard] = 0
	s.lost[shard] = 0
	if s.txs != nil {
		s.txs[shard] = s.txs[shard][:0]
		s.stats[shard] = wireless.ShardedStats{}
	} else {
		s.beacons[shard] = s.beacons[shard][:0]
		s.bbuf[shard] = s.bbuf[shard][:0]
	}
	if first {
		return
	}
	k := h.sk.Shard(shard).Kernel()
	for _, c := range h.byShard[shard] {
		k.At(prev+c.phase, c.stepFn)
	}
}

// SpecClose finishes shard's window: conflict scan, arc snapshot refresh
// (the same shardPhase as lockstep), and — in medium mode — the per-arc
// radio resolution for interior receivers. Runs in parallel across
// shards.
//
// Conflicts: a reservation intent or release (arbitrate would have to
// run), or a car moving further than the slack bound (the per-arc
// soundness argument breaks — for both radio frames and abstract
// beacons, whose audible sets are measured from the sender's live
// position). Both are detected against the pre-refresh arc, whose
// entries still hold the previous edge's positions, and before any local
// delivery, so a violating shard never touches a receiver it might not
// own.
func (h *Highway) SpecClose(shard int, edge sim.Time) bool {
	s := h.spec
	arc := h.arcs[shard]
	for i := range arc {
		c := h.cars[arc[i].id]
		if c.wantRegion != "" || c.releaseHeld {
			return false
		}
		d := math.Abs(c.Body.X - arc[i].x)
		if d > h.cfg.Length/2 {
			d = h.cfg.Length - d
		}
		if d > s.slack {
			return false
		}
	}
	h.shardPhase(shard, edge)
	if h.medium != nil {
		h.specResolveLocal(shard)
	} else {
		h.specDeliverLocal(shard)
	}
	return true
}

// specResolveLocal is the per-arc half of medium resolution: the shard's
// complete frame set (interference needs every same-arc frame), delivered
// only to interior receivers — receivers the movement bound proves can
// hear no other arc. Receiver state (tables, accelFrom, loss streams) is
// shard-owned here: an interior receiver of a shard's frames is owned by
// that same shard. Accounting goes to per-shard deltas, folded into the
// medium at the exchange in shard order.
func (h *Highway) specResolveLocal(shard int) {
	s := h.spec
	txs := s.txs[shard]
	if len(txs) == 0 {
		return
	}
	wireless.SortTxs(txs)
	h.medium.ResolveSlice(txs, true, false, &s.stats[shard],
		func(tx *wireless.ShardedTx, visit func(wireless.NodeID, wireless.Position)) {
			c := h.cars[int(tx.From)]
			c.beaconsSent++
			h.eachInRange(c, func(e *hwSnap) {
				if h.specInterior(e.x) {
					visit(wireless.NodeID(e.id), wireless.Position{X: e.x})
				}
			})
		},
		func(tx *wireless.ShardedTx, to wireless.NodeID) {
			b := tx.Payload.(*beacon)
			rc := h.cars[int(to)]
			rc.table.Update(b.state)
			rc.accelFrom[int(tx.From)] = b.accel
			s.delivered[shard]++
		},
		func(tx *wireless.ShardedTx, to wireless.NodeID, r wireless.DropReason) {
			s.lost[shard]++
		},
	)
}

// specInterior reports whether a receiver at previous-edge position x is
// an interior receiver: further than (range + slack) from every arc
// boundary, so every frame it can hear this window was sent from its own
// arc. The complement — band receivers — resolve at the exchange.
func (h *Highway) specInterior(x float64) bool {
	arc := h.part.ArcLength()
	d := math.Mod(x, arc)
	band := h.cfg.V2VRange + h.spec.slack
	return d > band && arc-d > band
}

// specBoundaryRelevant reports whether a frame sent from x can reach (or
// interfere at) any band receiver: within 2·range + slack of an arc
// boundary. Exactly these frames merge into the exchange's boundary pass.
func (h *Highway) specBoundaryRelevant(x float64) bool {
	arc := h.part.ArcLength()
	d := math.Mod(x, arc)
	reach := 2*h.cfg.V2VRange + h.spec.slack
	return d <= reach || arc-d <= reach
}

// SpecExchange is the thin single-threaded per-window reconciliation:
// beacon delivery (abstract path) or boundary radio resolution plus
// accounting fold (medium path), then exactly the lockstep barrier's
// snapshot merge and metric accounting. A collision resolution is a
// conflict — the abort-and-replay path re-runs the window with the full
// barrier, which rebuilds ownership after the teleport.
func (h *Highway) SpecExchange(edge sim.Time, last bool) bool {
	if specForceConflict != nil && specForceConflict(edge) {
		return false
	}
	s := h.spec
	if h.medium != nil {
		h.specExchangeMedium(edge)
	} else {
		h.specDeliverBeacons()
	}
	h.mergeSnapshot(edge)
	if debugSnapshotSync {
		h.assertSnapshotSync(edge)
	}
	if h.accountMetrics() {
		return false
	}
	// arbitrate is a guaranteed no-op: any intent or release conflicted in
	// SpecClose. Scheduled actions and observer hooks are fenced off by
	// SpecFence / SpecEligible.
	if last {
		h.sk.CountBarrierExec(s.frames)
		s.active = false
		if !h.stopped {
			h.seedWindow(edge)
		}
	}
	return true
}

// specDeliverLocal is the per-arc half of abstract beacon delivery,
// running in parallel across shards: the shard's own beacons, in
// sender-id order, delivered only to interior receivers. The audible set
// (eachInRange from the sender's live position over the previous edge's
// snapshot) is computed exactly as the lockstep closure computes it; the
// movement bound just verified by SpecClose proves every sender audible
// to an interior receiver lives in that receiver's own arc, so interior
// receiver state — tables, accelFrom, loss streams — is only ever touched
// by its owner shard, and each such receiver sees its full audible set
// here in global sender-id order (no other arc can contribute to it).
// Beacons that reached any band receiver defer, whole, to the exchange's
// boundary pass.
func (h *Highway) specDeliverLocal(shard int) {
	s := h.spec
	buf := s.beacons[shard]
	if len(buf) == 0 {
		return
	}
	// One beacon per sender per window: keys are unique, and sender-id
	// order is the mailbox drain order (every message matures at the edge).
	// Capture-free comparator: no per-window sort allocation.
	slices.SortFunc(buf, func(a, b specBeacon) int { return cmp.Compare(a.from, b.from) })
	for i := range buf {
		b := &buf[i]
		c := h.cars[b.from]
		sent, boundary := false, false
		h.eachInRange(c, func(e *hwSnap) {
			sent = true
			if !h.specInterior(e.x) {
				boundary = true
				return
			}
			to := h.cars[e.id]
			if h.jammed(b.sentAt) {
				s.lost[shard]++
				return
			}
			if h.cfg.Loss > 0 && to.rx.Float64() < h.cfg.Loss {
				s.lost[shard]++
				return
			}
			s.delivered[shard]++
			to.table.Update(b.state)
			to.accelFrom[b.from] = b.accel
		})
		if sent {
			c.beaconsSent++
		}
		if boundary {
			s.bbuf[shard] = append(s.bbuf[shard], *b)
		}
	}
}

// specDeliverBeacons is the exchange half of abstract delivery: fold the
// per-shard accounting deltas in shard order, then deliver the deferred
// boundary beacons — merged across shards into sender-id order — to band
// receivers only. Together with the local passes every (beacon, receiver)
// pair is visited exactly once, and each receiver's loss-stream draws
// happen in global sender-id order, byte-identical to the mailbox drain.
func (h *Highway) specDeliverBeacons() {
	s := h.spec
	for i := range s.beacons {
		s.frames += uint64(len(s.beacons[i]))
		h.beaconsDelivered += s.delivered[i]
		h.beaconsLost += s.lost[i]
	}
	merged := s.merged[:0]
	for _, buf := range s.bbuf {
		merged = append(merged, buf...)
	}
	slices.SortFunc(merged, func(a, b specBeacon) int { return cmp.Compare(a.from, b.from) })
	for i := range merged {
		b := &merged[i]
		c := h.cars[b.from]
		h.eachInRange(c, func(e *hwSnap) {
			if h.specInterior(e.x) {
				return
			}
			to := h.cars[e.id]
			if h.jammed(b.sentAt) {
				h.beaconsLost++
				return
			}
			if h.cfg.Loss > 0 && to.rx.Float64() < h.cfg.Loss {
				h.beaconsLost++
				return
			}
			h.beaconsDelivered++
			to.table.Update(b.state)
			to.accelFrom[b.from] = b.accel
		})
		// beaconsSent was counted in the local pass, which saw the full
		// audible set.
	}
	s.merged = merged[:0]
}

// specExchangeMedium folds the per-arc accounting deltas in shard order,
// then resolves the boundary-straddling frames against band receivers —
// the only (frame, receiver) pairs the parallel local passes left
// undecided — and finally runs the lockstep outage accounting.
func (h *Highway) specExchangeMedium(edge sim.Time) {
	s := h.spec
	var queued int64
	for i := range s.txs {
		queued += int64(len(s.txs[i]))
		h.medium.AddStats(s.stats[i])
		h.beaconsDelivered += s.delivered[i]
		h.beaconsLost += s.lost[i]
	}
	h.medium.CountQueued(queued)
	s.frames += uint64(queued)

	merged := s.mergedTxs[:0]
	for i := range s.txs {
		for j := range s.txs[i] {
			if h.specBoundaryRelevant(s.txs[i][j].Pos.X) {
				merged = append(merged, s.txs[i][j])
			}
		}
	}
	if len(merged) > 0 {
		wireless.SortTxs(merged)
		var bstats wireless.ShardedStats
		h.medium.ResolveSlice(merged, false, true, &bstats,
			func(tx *wireless.ShardedTx, visit func(wireless.NodeID, wireless.Position)) {
				c := h.cars[int(tx.From)]
				h.eachInRange(c, func(e *hwSnap) {
					if !h.specInterior(e.x) {
						visit(wireless.NodeID(e.id), wireless.Position{X: e.x})
					}
				})
			},
			func(tx *wireless.ShardedTx, to wireless.NodeID) {
				b := tx.Payload.(*beacon)
				rc := h.cars[int(to)]
				rc.table.Update(b.state)
				rc.accelFrom[int(tx.From)] = b.accel
				h.beaconsDelivered++
			},
			func(tx *wireless.ShardedTx, to wireless.NodeID, r wireless.DropReason) {
				h.beaconsLost++
			},
		)
		h.medium.AddStats(bstats)
	}
	s.mergedTxs = merged[:0]

	if queued == 0 {
		return // nothing attempted: no information about the channel
	}
	delivered := h.medium.Stats().Delivered
	open := edge - h.cfg.ControlPeriod
	switch {
	case delivered == h.lastDelivered && !h.inOutage:
		h.inOutage = true
		h.outageStart = open
	case delivered > h.lastDelivered && h.inOutage:
		h.inaccess.Observe(float64(open-h.outageStart) / float64(sim.Millisecond))
		h.inOutage = false
	}
	h.lastDelivered = delivered
}

// SpecAbort rewinds the world to the batch-start checkpoint: every car,
// every world counter, the medium, then a full ownership and snapshot
// rebuild (canonically equal to the incremental state at the batch start)
// and the re-seeding of the first replay window (the controller's
// rollback cleared the kernels).
func (h *Highway) SpecAbort(edge sim.Time) {
	s := h.spec
	ck := &s.ck
	for i, c := range h.cars {
		restoreCar(&ck.cars[i], c)
	}
	h.Collisions = ck.collisions
	h.Crossers = ck.crossers
	h.speedSum = ck.speedSum
	h.speedN = ck.speedN
	h.beaconsDelivered = ck.beaconsDelivered
	h.beaconsLost = ck.beaconsLost
	h.TimeGaps.RestoreState(ck.timeGaps)
	h.inaccess.RestoreState(ck.inaccess)
	h.lastDelivered = ck.lastDelivered
	h.inOutage = ck.inOutage
	h.outageStart = ck.outageStart
	h.jamStart = ck.jamStart
	h.jamUntil = ck.jamUntil
	if h.medium != nil {
		h.medium.RestoreState(ck.medium)
	}
	h.assignShards()
	h.publishSnapshot(edge)
	h.seedWindow(edge)
	s.active = false
	s.frames = 0
}

// saveCar checkpoints one car's complete stack state, reusing ck's
// nested storage.
func saveCar(ck *carCheckpoint, c *Car) {
	ck.body = c.Body
	ck.clockAt = c.clock.Now()
	ck.rx = c.rx.State()
	ck.tx = c.tx.State()
	for i, st := range c.sensorRx {
		ck.sensorRx[i] = st.State()
	}
	for i, in := range c.inputs {
		ck.phys[i] = in.Physical().SaveState()
		ck.fm[i] = in.FaultManagement().SaveState(ck.fm[i])
	}
	ck.dist = c.dist.SaveState(ck.dist)
	ck.table = c.table.SaveState(ck.table)
	ck.mgr = c.manager.SaveState(ck.mgr)
	ck.gate = c.gate.SaveState()
	ck.est = *c.est
	ck.hChecks = c.hidden.Checks
	ck.hDisagr = c.hidden.Disagreements
	ck.truthGap = c.truthGap
	ck.params = c.params
	ck.accelFrom = ck.accelFrom[:0]
	for from, a := range c.accelFrom {
		ck.accelFrom = append(ck.accelFrom, accelEntry{from: from, accel: a})
	}
	ck.forcedBrakeUntil = c.forcedBrakeUntil
	ck.maneuver = c.maneuver
	ck.wantRegion = c.wantRegion
	ck.wantLane = c.wantLane
	ck.heldRegion = c.heldRegion
	ck.releaseHeld = c.releaseHeld
	ck.nextAttempt = c.nextAttempt
	ck.laneChanges = c.LaneChanges
	ck.emergencyBrakes = c.EmergencyBrakes
	ck.degradedTicks = c.DegradedTicks
	ck.beaconsSent = c.beaconsSent
}

// restoreCar rewinds one car to its checkpoint.
func restoreCar(ck *carCheckpoint, c *Car) {
	c.Body = ck.body
	c.clock.Set(ck.clockAt)
	c.rx.Restore(ck.rx)
	c.tx.Restore(ck.tx)
	for i, st := range c.sensorRx {
		st.Restore(ck.sensorRx[i])
	}
	for i, in := range c.inputs {
		in.Physical().RestoreState(ck.phys[i])
		in.FaultManagement().RestoreState(ck.fm[i])
	}
	c.dist.RestoreState(ck.dist)
	c.table.RestoreState(ck.table)
	c.manager.RestoreState(ck.mgr)
	c.gate.RestoreState(ck.gate)
	*c.est = ck.est
	c.hidden.Checks = ck.hChecks
	c.hidden.Disagreements = ck.hDisagr
	c.truthGap = ck.truthGap
	c.params = ck.params
	clear(c.accelFrom)
	for _, e := range ck.accelFrom {
		c.accelFrom[e.from] = e.accel
	}
	c.forcedBrakeUntil = ck.forcedBrakeUntil
	c.maneuver = ck.maneuver
	c.wantRegion = ck.wantRegion
	c.wantLane = ck.wantLane
	c.heldRegion = ck.heldRegion
	c.releaseHeld = ck.releaseHeld
	c.nextAttempt = ck.nextAttempt
	c.LaneChanges = ck.laneChanges
	c.EmergencyBrakes = ck.emergencyBrakes
	c.DegradedTicks = ck.degradedTicks
	c.beaconsSent = ck.beaconsSent
}
