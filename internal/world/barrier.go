package world

import (
	"cmp"
	"context"
	"slices"

	"karyon/internal/sim"
)

// scheduled is one world-level action pinned to a barrier.
type scheduled struct {
	at  sim.Time
	seq int
	fn  func()
}

// barrierScheduler is the window-barrier plumbing shared by the
// partitioned worlds: deferred world actions (campaign injections, jams),
// observer hooks, and the stop latch. All of it executes single-threaded
// at window edges, in deterministic (at, insertion) order.
type barrierScheduler struct {
	pending []scheduled
	// due is the runPending scratch, reused across barriers so draining
	// scheduled actions stops allocating once it hits its high-water mark.
	due     []scheduled
	pendSeq int
	hooks   []func(now sim.Time)
	stopped bool
}

// Schedule runs fn at the first window barrier at or after at. The
// callback executes single-threaded and may touch any entity or the world
// — it is how campaigns inject faults, jams, and disturbances into a
// running sharded world.
func (b *barrierScheduler) Schedule(at sim.Time, fn func()) {
	b.pendSeq++
	b.pending = append(b.pending, scheduled{at: at, seq: b.pendSeq, fn: fn})
}

// OnWindow registers a hook that runs single-threaded at every window
// barrier after the world's own accounting (campaign probes, observers).
func (b *barrierScheduler) OnWindow(fn func(now sim.Time)) {
	b.hooks = append(b.hooks, fn)
}

// Stop halts the world: no further windows are seeded.
func (b *barrierScheduler) Stop() { b.stopped = true }

// runPending executes scheduled actions due at this edge in (at,
// insertion) order. The due list is partitioned into a reused scratch
// buffer, and the stable sort is skipped when the due actions already
// arrive in (at, seq) order — the common case, since schedulers mostly
// append monotonically increasing instants.
func (b *barrierScheduler) runPending(edge sim.Time) {
	if len(b.pending) == 0 {
		return
	}
	due := b.due[:0]
	rest := b.pending[:0]
	ordered := true
	for _, s := range b.pending {
		if s.at <= edge {
			if n := len(due); n > 0 && (due[n-1].at > s.at ||
				(due[n-1].at == s.at && due[n-1].seq > s.seq)) {
				ordered = false
			}
			due = append(due, s)
		} else {
			rest = append(rest, s)
		}
	}
	b.pending = rest
	if !ordered {
		slices.SortStableFunc(due, func(a, b scheduled) int {
			if c := cmp.Compare(a.at, b.at); c != 0 {
				return c
			}
			return cmp.Compare(a.seq, b.seq)
		})
	}
	for _, s := range due {
		s.fn()
	}
	// Drop the closure references before parking the scratch.
	for i := range due {
		due[i] = scheduled{}
	}
	b.due = due[:0]
}

// runHooks fires the observer hooks for this edge.
func (b *barrierScheduler) runHooks(edge sim.Time) {
	for _, fn := range b.hooks {
		fn(edge)
	}
}

// runWindows advances the sharded kernel by d, rounded up to a whole
// number of windows so barriers stay on the window grid.
func runWindows(ctx context.Context, sk *sim.ShardedKernel, window sim.Time, d sim.Time) error {
	until := sk.Now() + d
	if rem := until % window; rem != 0 {
		until += window - rem
	}
	return sk.Run(ctx, until)
}
