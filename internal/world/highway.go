// Package world assembles the automotive scenarios of paper Sec. VI-A:
// a ring highway where every car runs the full KARYON stack — abstract
// distance sensing with validity, V2V cooperative state, a per-vehicle
// Safety Kernel choosing the Level of Service, the LoS-dependent ACC time
// gap, and a Simplex actuation gate — and a signalized intersection whose
// physical traffic light can fail and be replaced by the virtual traffic
// light (use case VI-A2).
package world

import (
	"fmt"
	"math"

	"karyon/internal/coord"
	"karyon/internal/core"
	"karyon/internal/gear"
	"karyon/internal/metrics"
	"karyon/internal/sensor"
	"karyon/internal/sim"
	"karyon/internal/vehicle"
	"karyon/internal/wireless"
)

// LoSMode selects how a car's level of service is governed.
type LoSMode int

// LoS governance modes for experiments.
const (
	// ModeAdaptive runs the KARYON safety kernel (the paper's system).
	ModeAdaptive LoSMode = iota + 1
	// ModeFixed pins the LoS regardless of conditions but still honors
	// perception validity for the degraded-perception fallback.
	ModeFixed
	// ModeReckless pins LoS at the highest level AND ignores validity —
	// the "complex function without a safety kernel" baseline.
	ModeReckless
)

// HighwayConfig parameterizes the ring-highway scenario.
type HighwayConfig struct {
	// Length is the ring circumference in meters.
	Length float64
	// Cars is the number of vehicles.
	Cars int
	// Lanes is the number of lanes (default 1). With more than one lane,
	// vehicles overtake slow leaders through agreement-coordinated lane
	// changes (use case VI-A3): the maneuver region is reserved via the
	// coord protocol, so at most one vehicle changes lanes per road
	// segment at a time.
	Lanes int
	// ControlPeriod is the per-car control loop period.
	ControlPeriod sim.Time
	// V2VPeriod is the cooperative-state beacon period (0 disables V2V).
	V2VPeriod sim.Time
	// Mode and FixedLoS govern LoS selection.
	Mode     LoSMode
	FixedLoS core.LoS
	// SensorSigma is the distance sensor's nominal noise (m).
	SensorSigma float64
	// Loss is the wireless frame loss probability.
	Loss float64
}

// DefaultHighwayConfig returns a 30-car, 2 km ring.
func DefaultHighwayConfig() HighwayConfig {
	return HighwayConfig{
		Length:        2000,
		Cars:          30,
		ControlPeriod: 100 * sim.Millisecond,
		V2VPeriod:     100 * sim.Millisecond,
		Mode:          ModeAdaptive,
		FixedLoS:      core.LevelSafe,
		SensorSigma:   0.3,
	}
}

// Car is one vehicle with its full KARYON stack.
type Car struct {
	ID   wireless.NodeID
	Body vehicle.Body

	radio *wireless.Radio
	// dist is the abstract *reliable* distance sensor: three redundant
	// transducers fused (Marzullo, f=1). Component redundancy is what
	// masks a permanent offset on one transducer — a fault no single
	// abstract sensor can detect (Sec. IV-B).
	dist    *sensor.Reliable
	inputs  []*sensor.Abstract
	table   *coord.StateTable
	manager *core.Manager
	fn      *core.Functionality
	gate    *core.Gate
	params  vehicle.ACCParams

	// forcedBrakeUntil implements an external hazard (campaign
	// disturbance): the driver/plant brakes hard until this instant.
	forcedBrakeUntil sim.Time

	// Lane-change machinery (multi-lane highways only).
	agree       *coord.Agreement
	maneuver    vehicle.Maneuver
	heldRegion  coord.Resource
	nextAttempt sim.Time
	// LaneChanges counts completed maneuvers.
	LaneChanges int64

	// est tracks the lead vehicle through the physical channel (GEAR's
	// actuation-perception loop): lead speed below LoS3, and a hidden-
	// channel cross-check of V2V claims at LoS3.
	est    *gear.LeadEstimator
	hidden *gear.HiddenChannel

	// EmergencyBrakes counts emergency interventions.
	EmergencyBrakes int64
	// DegradedTicks counts control cycles spent in the blind fallback.
	DegradedTicks int64
}

// LoS returns the car's current level of service.
func (c *Car) LoS() core.LoS { return c.fn.Current() }

// DistanceSensor exposes the first redundant transducer — the campaign's
// default injection point.
func (c *Car) DistanceSensor() *sensor.Abstract { return c.inputs[0] }

// SensorInputs exposes all redundant transducers (multi-fault campaigns).
func (c *Car) SensorInputs() []*sensor.Abstract { return c.inputs }

// FusedSensor exposes the reliable (fused) distance sensor.
func (c *Car) FusedSensor() *sensor.Reliable { return c.dist }

// ForceBrake makes the car brake hard for d (an external hazard, e.g. an
// obstacle on the road — the campaign's disturbance event).
func (c *Car) ForceBrake(now sim.Time, d sim.Time) {
	c.forcedBrakeUntil = now + d
}

// SetCruiseSpeed changes the car's free-flow set speed (heterogeneous
// traffic in experiments: a slow truck among cars).
func (c *Car) SetCruiseSpeed(v float64) {
	if v > 0 {
		c.params.CruiseSpeed = v
	}
}

// Manager exposes the car's safety kernel.
func (c *Car) Manager() *core.Manager { return c.manager }

// Gate exposes the car's actuation gate.
func (c *Car) Gate() *core.Gate { return c.gate }

// debugCollisions, when set by a test, prints the full geometry of every
// collision — the fastest way to diagnose a lane-change safety hole.
var debugCollisions = false

// Highway is the ring-road world.
type Highway struct {
	cfg    HighwayConfig
	kernel *sim.Kernel
	medium *wireless.Medium
	cars   []*Car

	// Collisions counts bumper overlaps (the safety metric — the paper's
	// claim is that this stays zero with the kernel engaged).
	Collisions int64
	// TimeGaps collects observed time gaps (s) at every control step.
	TimeGaps metrics.Histogram
	// speedSum/speedN accumulate mean-speed statistics.
	speedSum float64
	speedN   int64

	tickers []*sim.Ticker
}

// v2vBeacon is the broadcast cooperative state (adds acceleration to the
// coord state for CACC feed-forward).
type v2vBeacon struct {
	State coord.CoopState
	Accel float64
}

// NewHighway builds the world on the kernel.
func NewHighway(kernel *sim.Kernel, cfg HighwayConfig) (*Highway, error) {
	if cfg.Cars < 1 || cfg.Length <= 0 {
		return nil, fmt.Errorf("world: invalid highway config %+v", cfg)
	}
	if cfg.ControlPeriod <= 0 {
		return nil, fmt.Errorf("world: control period must be positive")
	}
	if cfg.Lanes < 1 {
		cfg.Lanes = 1
	}
	mcfg := wireless.DefaultConfig()
	mcfg.LossProb = cfg.Loss
	h := &Highway{cfg: cfg, kernel: kernel, medium: wireless.NewMedium(kernel, mcfg)}
	spacing := cfg.Length / float64(cfg.Cars)
	for i := 0; i < cfg.Cars; i++ {
		car, err := h.newCar(wireless.NodeID(i), float64(i)*spacing)
		if err != nil {
			return nil, err
		}
		h.cars = append(h.cars, car)
	}
	return h, nil
}

// Cars returns the vehicles.
func (h *Highway) Cars() []*Car { return h.cars }

// Medium returns the wireless medium (for jam injection).
func (h *Highway) Medium() *wireless.Medium { return h.medium }

// MeanSpeed returns the time-averaged fleet speed (m/s).
func (h *Highway) MeanSpeed() float64 {
	if h.speedN == 0 {
		return 0
	}
	return h.speedSum / float64(h.speedN)
}

// Flow returns the traffic flow in vehicles/hour past a point: mean speed
// times density.
func (h *Highway) Flow() float64 {
	density := float64(h.cfg.Cars) / h.cfg.Length // veh/m
	return h.MeanSpeed() * density * 3600
}

func (h *Highway) newCar(id wireless.NodeID, x float64) (*Car, error) {
	radio, err := h.medium.Attach(id, wireless.Position{X: x})
	if err != nil {
		return nil, err
	}
	c := &Car{
		ID:     id,
		Body:   vehicle.Body{X: x, Speed: 20, Length: 4.5},
		radio:  radio,
		params: vehicle.DefaultACCParams(),
		est:    gear.NewLeadEstimator(),
	}
	c.hidden = gear.NewHiddenChannel(c.est, 1.5)
	// Three redundant abstract distance sensors over the world's ground
	// truth, fused into one reliable sensor (Sec. IV-B).
	truth := func(sim.Time) float64 { return h.trueGap(c) }
	for s := 0; s < 3; s++ {
		phys := sensor.NewPhysical(h.kernel,
			fmt.Sprintf("dist-%d-%d", id, s), truth, h.cfg.SensorSigma)
		fm := sensor.NewFaultManagement(16,
			sensor.RangeDetector{Min: -10, Max: h.cfg.Length},
			sensor.FreshnessDetector{MaxAge: 3 * h.cfg.ControlPeriod},
			sensor.StuckDetector{MinRepeats: 4},
			sensor.NoiseDetector{Sigma: h.cfg.SensorSigma, Tolerance: 5, MinWindow: 8},
		)
		c.inputs = append(c.inputs, sensor.NewAbstract(h.kernel, phys, fm))
	}
	c.dist = sensor.NewReliable(h.kernel, c.inputs, 4*h.cfg.SensorSigma+1, 1, 0.3)

	// Cooperative state table fed by V2V beacons; all other frames go to
	// the maneuver-agreement protocol.
	c.table = coord.NewStateTable(h.kernel, 500*sim.Millisecond)
	c.agree = coord.NewAgreement(h.kernel, radio, coord.DefaultAgreementConfig(),
		func() []wireless.NodeID {
			return c.table.Scope(wireless.Position{X: c.Body.X}, 250)
		})
	radio.OnReceive(func(f wireless.Frame) {
		if b, ok := f.Payload.(v2vBeacon); ok {
			c.table.Update(b.State)
			return
		}
		c.agree.OnFrame(f)
	})

	// Safety kernel: LoS ladder 1..3 with the paper's rule structure.
	ri := core.NewRuntimeInfo(h.kernel)
	mgr, err := core.NewManager(h.kernel, ri, core.ManagerConfig{
		Period:           h.cfg.ControlPeriod / 2,
		UpgradeStability: 5,
	})
	if err != nil {
		return nil, err
	}
	fn, err := mgr.AddFunctionality("cruise", 3)
	if err != nil {
		return nil, err
	}
	if err := fn.AddRule(2, core.MinValidity("dist.validity", 0.7)); err != nil {
		return nil, err
	}
	if err := fn.AddRule(3, core.FlagSet("v2v.lead")); err != nil {
		return nil, err
	}
	if err := fn.AddRule(3, core.MaxAge("v2v.lead", 400*sim.Millisecond)); err != nil {
		return nil, err
	}
	gate, err := core.NewGate(fn, map[core.LoS]core.Envelope{
		1: core.NewEnvelope().Bound("accel", -6, 1.0),
		2: core.NewEnvelope().Bound("accel", -6, 1.5),
		3: core.NewEnvelope().Bound("accel", -6, 2.5),
	})
	if err != nil {
		return nil, err
	}
	c.manager = mgr
	c.fn = fn
	c.gate = gate
	if h.cfg.Mode == ModeAdaptive {
		if err := mgr.Start(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Start launches beacons and control loops.
func (h *Highway) Start() error {
	dt := h.cfg.ControlPeriod
	for _, c := range h.cars {
		c := c
		// Control loop, staggered per car.
		phase := sim.Time(h.kernel.Rand().Int63n(int64(dt)))
		h.kernel.Schedule(phase, func() {
			t, err := h.kernel.Every(dt, func() { h.controlStep(c) })
			if err == nil {
				h.tickers = append(h.tickers, t)
			}
		})
		if h.cfg.V2VPeriod > 0 {
			vphase := sim.Time(h.kernel.Rand().Int63n(int64(h.cfg.V2VPeriod)))
			h.kernel.Schedule(vphase, func() {
				t, err := h.kernel.Every(h.cfg.V2VPeriod, func() { h.beacon(c) })
				if err == nil {
					h.tickers = append(h.tickers, t)
				}
			})
		}
	}
	return nil
}

// Stop halts all periodic activity.
func (h *Highway) Stop() {
	for _, t := range h.tickers {
		t.Stop()
	}
}

// occupies reports whether the car currently occupies the lane: its body
// lane, plus the maneuver's target lane while a change is in progress
// (conservatively, a lane-changing car blocks both lanes).
func (c *Car) occupies(lane int) bool {
	if c.Body.Lane == lane {
		return true
	}
	return c.maneuver.Active() && c.maneuver.TargetLane == lane
}

// leader returns the car ahead of c in ring order among cars occupying
// any lane c occupies.
func (h *Highway) leader(c *Car) *Car {
	var best *Car
	bestGap := math.MaxFloat64
	for _, o := range h.cars {
		if o == c {
			continue
		}
		shared := false
		for lane := 0; lane < h.cfg.Lanes; lane++ {
			if c.occupies(lane) && o.occupies(lane) {
				shared = true
				break
			}
		}
		if !shared {
			continue
		}
		gap := math.Mod(o.Body.X-c.Body.X+h.cfg.Length, h.cfg.Length)
		if gap < bestGap {
			bestGap = gap
			best = o
		}
	}
	return best
}

// trueGap is the ground-truth bumper-to-bumper gap to the leader.
func (h *Highway) trueGap(c *Car) float64 {
	lead := h.leader(c)
	if lead == nil {
		return h.cfg.Length
	}
	center := math.Mod(lead.Body.X-c.Body.X+h.cfg.Length, h.cfg.Length)
	return center - lead.Body.Length
}

// laneClearFor reports whether the target lane has room for c: a safe gap
// ahead and a safe gap to the first follower behind.
func (h *Highway) laneClearFor(c *Car, lane int) bool {
	aheadGap, behindGap := math.MaxFloat64, math.MaxFloat64
	var aheadSpeed, behindSpeed float64
	for _, o := range h.cars {
		if o == c || !o.occupies(lane) {
			continue
		}
		fwd := math.Mod(o.Body.X-c.Body.X+h.cfg.Length, h.cfg.Length)
		back := h.cfg.Length - fwd
		if fwd-o.Body.Length < aheadGap {
			aheadGap = fwd - o.Body.Length
			aheadSpeed = o.Body.Speed
		}
		if back-c.Body.Length < behindGap {
			behindGap = back - c.Body.Length
			behindSpeed = o.Body.Speed
		}
	}
	// Ahead: the desired following gap plus a closing-speed margin (the
	// maneuver takes ~3 s during which the gap shrinks by the speed
	// difference), with an absolute floor for congested low-speed traffic.
	closing := c.Body.Speed - aheadSpeed
	if closing < 0 {
		closing = 0
	}
	aheadNeed := c.params.DesiredGap(c.Body.Speed) + 4*closing
	if aheadNeed < 15 {
		aheadNeed = 15
	}
	if aheadGap < aheadNeed {
		return false
	}
	// Behind: the follower needs its own desired gap plus closing margin.
	need := 10 + 1.2*behindSpeed + 2*(behindSpeed-c.Body.Speed)
	return behindGap >= need
}

// maybeLaneChange runs the overtaking decision: a slow leader ahead, a
// clear target lane, the cooperation level to coordinate, and a granted
// region reservation.
func (h *Highway) maybeLaneChange(c *Car, view vehicle.LeadView, level core.LoS, now sim.Time) {
	if c.maneuver.Active() || now < c.nextAttempt || level < 2 {
		return
	}
	if !view.Present || view.Gap > c.params.DesiredGap(c.Body.Speed)*1.5 {
		return
	}
	if view.Speed > c.params.CruiseSpeed-3 {
		return // leader nearly at cruise: not worth overtaking
	}
	target := c.Body.Lane + 1
	if target >= h.cfg.Lanes {
		target = c.Body.Lane - 1
	}
	if target < 0 || target == c.Body.Lane || !h.laneClearFor(c, target) {
		c.nextAttempt = now + 2*sim.Second
		return
	}
	c.nextAttempt = now + 4*sim.Second
	segments := int(h.cfg.Length / 200)
	if segments < 1 {
		segments = 1
	}
	region := coord.Resource(fmt.Sprintf("lc@%d", int(c.Body.X/200)%segments))
	c.agree.Request(region, func(o coord.Outcome) {
		if o != coord.OutcomeGranted {
			return
		}
		// Conditions may have changed during the agreement round.
		if c.maneuver.Active() || !h.laneClearFor(c, target) {
			c.agree.Release(region)
			return
		}
		if err := c.maneuver.Begin(target, 3); err != nil {
			c.agree.Release(region)
			return
		}
		c.heldRegion = region
	})
}

func (h *Highway) beacon(c *Car) {
	// Per-beacon jitter: fixed ticker phases would make any two cars whose
	// phases fall within one airtime collide on *every* period, starving
	// their neighbors of V2V state forever.
	jitter := sim.Time(h.kernel.Rand().Int63n(int64(10 * sim.Millisecond)))
	h.kernel.Schedule(jitter, func() { h.sendBeacon(c) })
}

func (h *Highway) sendBeacon(c *Car) {
	c.radio.Broadcast(v2vBeacon{
		State: coord.CoopState{
			ID:       c.ID,
			Pos:      wireless.Position{X: c.Body.X},
			Speed:    c.Body.Speed,
			Lane:     c.Body.Lane,
			Intent:   "cruise",
			Time:     h.kernel.Now(),
			Validity: 1,
		},
		Accel: c.Body.Accel,
	})
}

// controlStep runs one full perceive-assess-decide-actuate cycle for c.
func (h *Highway) controlStep(c *Car) {
	dt := h.cfg.ControlPeriod.Seconds()
	now := h.kernel.Now()

	// 1. Perceive: validity-annotated distance reading.
	reading := c.dist.Read()

	// 2. Feed the Run-Time Safety Information.
	ri := c.manager.Runtime()
	ri.Set("dist.validity", reading.Validity)
	lead := h.leader(c)
	var leadState coord.CoopState
	haveV2V := false
	if lead != nil {
		if s, ok := c.table.Get(lead.ID); ok && s.Validity >= 0.5 {
			leadState = s
			haveV2V = true
		}
	}
	if haveV2V {
		ri.Set("v2v.lead", 1)
	}
	// In fixed/reckless modes the manager does not run; pin the level.
	switch h.cfg.Mode {
	case ModeFixed, ModeReckless:
		h.pinLoS(c, h.cfg.FixedLoS)
	case ModeAdaptive:
		// Manager ticks on its own schedule.
	}

	// 3. Decide: LoS-dependent time gap.
	level := c.fn.Current()
	c.params.TimeGap = vehicle.TimeGapForLoS(level)

	view := vehicle.NoLead()
	usable := reading.Validity >= 0.3 || h.cfg.Mode == ModeReckless
	if usable {
		gap := reading.Value
		// Track the lead through the physical channel (GEAR): the
		// estimator supplies lead speed below LoS3 and the hidden-channel
		// cross-check of V2V claims at LoS3.
		c.est.Update(gear.Observation{
			At:       now,
			Gap:      gap,
			OwnSpeed: c.Body.Speed,
			Validity: reading.Validity,
		})
		leadSpeed := c.Body.Speed
		if s, ok := c.est.LeadSpeed(); ok {
			leadSpeed = s
		}
		view = vehicle.LeadView{
			Present:  true,
			Gap:      gap,
			Speed:    leadSpeed,
			Accel:    math.NaN(),
			Validity: reading.Validity,
		}
		if level >= 3 && haveV2V {
			view.Speed = leadState.Speed
			if b, ok := h.lastBeaconAccel(c, lead.ID); ok {
				// The hidden channel assesses the claim: a remote claim
				// physically inconsistent with the observed motion is not
				// trusted for feed-forward.
				if consistency, checked := c.hidden.AssessClaim(b); !checked || consistency >= 0.5 {
					view.Accel = b
				}
			}
		}
	} else {
		// Perception outage: the estimator's state is stale.
		c.est.Reset()
	}

	// 4. Actuate through the gate.
	var cmd float64
	switch {
	case now < c.forcedBrakeUntil:
		// External hazard: the plant brakes regardless of the controller.
		cmd = -5
	case !usable:
		// Blind: no trustworthy perception at any level. Brake hard to a
		// stop — a vehicle that cannot see must reach the unconditional
		// safe state before whatever it cannot see reaches it.
		c.DegradedTicks++
		cmd = -c.params.MaxBrake
	case vehicle.EmergencyBrakeNeeded(c.params, c.Body.Speed, view, 1.5):
		c.EmergencyBrakes++
		cmd = -c.params.MaxBrake
	default:
		cmd = vehicle.ACCAccel(c.params, c.Body.Speed, view)
	}
	if h.cfg.Mode != ModeReckless {
		cmd, _ = c.gate.Filter("accel", cmd)
	}
	c.Body.Accel = cmd

	// 5. Lane changes (multi-lane highways): decide, and advance any
	// maneuver in progress.
	if h.cfg.Lanes > 1 && h.cfg.Mode != ModeReckless && usable {
		h.maybeLaneChange(c, view, level, now)
	}
	if c.maneuver.Active() {
		if c.maneuver.Step(&c.Body, dt) {
			c.LaneChanges++
			c.agree.Release(c.heldRegion)
			// The leader changed with the lane: stale estimator state
			// would poison the first post-change samples.
			c.est.Reset()
		}
	}

	// 6. Integrate plant, wrap ring, update radio, account metrics.
	c.Body.Step(dt)
	if c.Body.X >= h.cfg.Length {
		c.Body.X -= h.cfg.Length
	}
	c.radio.SetPosition(wireless.Position{X: c.Body.X})

	trueGap := h.trueGap(c)
	if trueGap <= 0 {
		if debugCollisions {
			lead := h.leader(c)
			fmt.Printf("COLLISION t=%v car=%d lane=%d x=%.1f v=%.1f man=%v->%d | lead=%d lane=%d x=%.1f v=%.1f man=%v->%d\n",
				h.kernel.Now(), c.ID, c.Body.Lane, c.Body.X, c.Body.Speed, c.maneuver.Active(), c.maneuver.TargetLane,
				lead.ID, lead.Body.Lane, lead.Body.X, lead.Body.Speed, lead.maneuver.Active(), lead.maneuver.TargetLane)
		}
		h.Collisions++
		// Resolve the overlap so one event is counted once, not forever.
		if lead != nil {
			c.Body.X = math.Mod(lead.Body.X-lead.Body.Length-0.5+h.cfg.Length, h.cfg.Length)
			c.Body.Speed = lead.Body.Speed
		}
	} else if c.Body.Speed > 1 {
		h.TimeGaps.Observe(trueGap / c.Body.Speed)
	}
	h.speedSum += c.Body.Speed
	h.speedN++
}

// lastBeaconAccel digs the latest acceleration heard from the lead out of
// the state table's beacon (stored alongside the state).
func (h *Highway) lastBeaconAccel(c *Car, lead wireless.NodeID) (float64, bool) {
	// The coord.StateTable stores CoopState only; acceleration rides in
	// the live beacon. For simplicity the cooperative accel is taken from
	// the leader's current plant — justified because the beacon period
	// equals the control period, so the staleness is at most one cycle.
	for _, o := range h.cars {
		if o.ID == lead {
			return o.Body.Accel, true
		}
	}
	return 0, false
}

// pinLoS forces the functionality to a fixed level (baseline modes).
func (h *Highway) pinLoS(c *Car, level core.LoS) {
	c.fn.Force(h.kernel.Now(), level)
}
