// Package world assembles the automotive scenarios of paper Sec. VI-A on
// one partitioned world engine: a ring highway where every car runs the
// full KARYON stack — abstract distance sensing with validity, V2V
// cooperative state, a per-vehicle Safety Kernel choosing the Level of
// Service, the LoS-dependent ACC time gap, and a Simplex actuation gate —
// and a signalized intersection whose physical traffic light can fail and
// be replaced by the virtual traffic light (use case VI-A2).
//
// Both worlds run on sim.ShardedKernel under the snapshot/mailbox
// discipline: in-window events read the immutable neighbor snapshot
// published at the last window edge and mutate only their own entity;
// cross-entity traffic flows through mailboxes drained at single-threaded
// barriers; shared metrics accumulate at barriers in entity-id order; and
// every entity draws randomness from its own sim.NewStream streams. Under
// that discipline a run is a pure function of (seed, config) —
// byte-identical for every shard count.
package world

import (
	"context"
	"fmt"
	"math"
	"sort"

	"karyon/internal/coord"
	"karyon/internal/core"
	"karyon/internal/metrics"
	"karyon/internal/sim"
	"karyon/internal/wireless"
)

// LoSMode selects how a car's level of service is governed.
type LoSMode int

// LoS governance modes for experiments.
const (
	// ModeAdaptive runs the KARYON safety kernel (the paper's system).
	ModeAdaptive LoSMode = iota + 1
	// ModeFixed pins the LoS regardless of conditions but still honors
	// perception validity for the degraded-perception fallback.
	ModeFixed
	// ModeReckless pins LoS at the highest level AND ignores validity —
	// the "complex function without a safety kernel" baseline.
	ModeReckless
)

// HighwayConfig parameterizes the ring-highway scenario.
type HighwayConfig struct {
	// Length is the ring circumference in meters.
	Length float64
	// Cars is the number of vehicles.
	Cars int
	// Lanes is the number of lanes (default 1). With more than one lane,
	// vehicles overtake slow leaders through coordinated lane changes (use
	// case VI-A3): the maneuver region is reserved through the barrier
	// arbiter, so at most one vehicle changes lanes per road segment at a
	// time.
	Lanes int
	// ControlPeriod is the per-car control loop period. It is also the
	// sharded kernel's synchronization window.
	ControlPeriod sim.Time
	// V2VPeriod is the cooperative-state beacon period (0 disables V2V).
	// Must be a multiple of ControlPeriod.
	V2VPeriod sim.Time
	// V2VRange is how far a beacon reaches, in meters. It bounds the shard
	// count: each ring arc must be at least this long so a frame never
	// skips over a whole shard.
	V2VRange float64
	// Mode and FixedLoS govern LoS selection.
	Mode     LoSMode
	FixedLoS core.LoS
	// SensorSigma is the distance sensor's nominal noise (m).
	SensorSigma float64
	// Loss is the independent per-receiver beacon loss probability.
	Loss float64
}

// DefaultHighwayConfig returns a 30-car, 2 km ring.
func DefaultHighwayConfig() HighwayConfig {
	return HighwayConfig{
		Length:        2000,
		Cars:          30,
		ControlPeriod: 100 * sim.Millisecond,
		V2VPeriod:     100 * sim.Millisecond,
		V2VRange:      250,
		Mode:          ModeAdaptive,
		FixedLoS:      core.LevelSafe,
		SensorSigma:   0.3,
	}
}

// MaxShards returns the widest partition the config supports: each arc
// must be at least the V2V range so beacons only cross into adjacent
// shards.
func (cfg HighwayConfig) MaxShards() int {
	if cfg.V2VPeriod <= 0 || cfg.V2VRange <= 0 {
		return int(^uint(0) >> 1)
	}
	n := int(cfg.Length / cfg.V2VRange)
	if n < 1 {
		n = 1
	}
	return n
}

// hwSnap is one car's published state at a window edge.
type hwSnap struct {
	id     int
	x      float64
	speed  float64
	length float64
	lane   int
	// lane2 is the second occupied lane while a maneuver is in progress
	// (-1 when none): a lane-changing car conservatively blocks both.
	lane2 int
	shard int
}

func (e *hwSnap) occupies(lane int) bool {
	return e.lane == lane || e.lane2 == lane
}

// debugCollisions, when set by a test, prints the full geometry of every
// collision — the fastest way to diagnose a lane-change safety hole.
var debugCollisions = false

// Highway is the ring-road world on the sharded kernel. One instance
// serves every scale: an unsharded run is simply the partition at width 1,
// so the execution path — and the output bytes — are identical for every
// shard count.
type Highway struct {
	cfg  HighwayConfig
	sk   *sim.ShardedKernel
	part RingPartition
	cars []*Car // by id

	byShard  [][]*Car
	snap     []hwSnap // sorted by (x, id); replaced at barriers, never mutated
	snapEdge sim.Time

	res *coord.Reservations

	barrierScheduler

	// jamStart/jamUntil model V2V inaccessibility (the paper's jammed
	// channel): beacons sent inside the burst are lost. Written only at
	// barriers or while the world is stopped.
	jamStart sim.Time
	jamUntil sim.Time

	// Collisions counts bumper overlaps (the safety metric — the paper's
	// claim is that this stays zero with the kernel engaged).
	Collisions int64
	// TimeGaps collects observed time gaps (s) for every car at every
	// window barrier.
	TimeGaps metrics.Histogram
	// speedSum/speedN accumulate mean-speed statistics.
	speedSum float64
	speedN   int64

	beaconsDelivered int64
	beaconsLost      int64
}

// NewHighway builds the world over the sharded kernel. The kernel's window
// must equal cfg.ControlPeriod — each car steps exactly once per window,
// and the window is the conservative lookahead that justifies delivering
// beacons at the closing edge.
func NewHighway(sk *sim.ShardedKernel, cfg HighwayConfig) (*Highway, error) {
	if cfg.Cars < 1 || cfg.Length <= 0 {
		return nil, fmt.Errorf("world: invalid highway config %+v", cfg)
	}
	if cfg.ControlPeriod <= 0 {
		return nil, fmt.Errorf("world: control period must be positive")
	}
	if cfg.Lanes < 1 {
		cfg.Lanes = 1
	}
	if cfg.V2VRange <= 0 {
		cfg.V2VRange = 250
	}
	if cfg.V2VPeriod > 0 && cfg.V2VPeriod%cfg.ControlPeriod != 0 {
		return nil, fmt.Errorf("world: V2V period %v must be a multiple of the control period %v",
			cfg.V2VPeriod, cfg.ControlPeriod)
	}
	if sk.Window() != cfg.ControlPeriod {
		return nil, fmt.Errorf("world: kernel window %v must equal the control period %v",
			sk.Window(), cfg.ControlPeriod)
	}
	reach := 0.0
	if cfg.V2VPeriod > 0 {
		reach = cfg.V2VRange
	}
	part, err := NewRingPartition(cfg.Length, sk.Shards(), reach)
	if err != nil {
		return nil, err
	}
	h := &Highway{cfg: cfg, sk: sk, part: part, res: coord.NewReservations()}
	h.byShard = make([][]*Car, sk.Shards())
	spacing := cfg.Length / float64(cfg.Cars)
	for i := 0; i < cfg.Cars; i++ {
		car, err := newCar(sk.Seed(), i, float64(i)*spacing, cfg)
		if err != nil {
			return nil, err
		}
		h.cars = append(h.cars, car)
	}
	return h, nil
}

// BuildHighway creates a sharded kernel with the config's window and the
// world on top of it. The shard count is clamped to cfg.MaxShards() so a
// small ring never fails on an over-wide partition — the output is
// byte-identical for every width anyway.
func BuildHighway(seed int64, shards int, cfg HighwayConfig) (*Highway, error) {
	if shards < 1 {
		shards = 1
	}
	if max := cfg.MaxShards(); shards > max {
		shards = max
	}
	if cfg.ControlPeriod <= 0 {
		return nil, fmt.Errorf("world: control period must be positive")
	}
	sk, err := sim.NewShardedKernel(seed, shards, cfg.ControlPeriod)
	if err != nil {
		return nil, err
	}
	return NewHighway(sk, cfg)
}

// Cars returns the vehicles.
func (h *Highway) Cars() []*Car { return h.cars }

// Kernel returns the sharded kernel the world runs on.
func (h *Highway) Kernel() *sim.ShardedKernel { return h.sk }

// Now returns the last window edge every shard has reached.
func (h *Highway) Now() sim.Time { return h.sk.Now() }

// MeanSpeed returns the time-averaged fleet speed (m/s).
func (h *Highway) MeanSpeed() float64 {
	if h.speedN == 0 {
		return 0
	}
	return h.speedSum / float64(h.speedN)
}

// Flow returns the traffic flow in vehicles/hour past a point: mean speed
// times density.
func (h *Highway) Flow() float64 {
	density := float64(h.cfg.Cars) / h.cfg.Length // veh/m
	return h.MeanSpeed() * density * 3600
}

// BeaconStats returns (sent, delivered, lost) V2V beacon counts.
func (h *Highway) BeaconStats() (sent, delivered, lost int64) {
	for _, c := range h.cars {
		sent += c.beaconsSent
	}
	return sent, h.beaconsDelivered, h.beaconsLost
}

// JamV2V renders the V2V channel inaccessible for the next d units of
// virtual time, extending any ongoing burst — the external interference
// that produces the paper's network-inaccessibility periods. Call it at a
// barrier (Schedule) or while the world is not running.
func (h *Highway) JamV2V(d sim.Time) {
	now := h.sk.Now()
	if now >= h.jamUntil {
		h.jamStart = now
	}
	if until := now + d; until > h.jamUntil {
		h.jamUntil = until
	}
}

func (h *Highway) jammed(t sim.Time) bool {
	return t >= h.jamStart && t < h.jamUntil
}

// Start assigns cars to shards, publishes the first snapshot, seeds the
// first window's control steps, and registers the window hook.
func (h *Highway) Start() error {
	h.assignShards()
	h.publishSnapshot(0)
	h.seedWindow(0)
	h.sk.OnWindow(h.onWindow)
	return nil
}

// Run advances the world by d units of virtual time (rounded up to a
// whole number of windows so barriers stay on the window grid).
func (h *Highway) Run(d sim.Time) error {
	return h.RunContext(context.Background(), d)
}

// RunContext is Run with cancellation, checked at every window barrier.
func (h *Highway) RunContext(ctx context.Context, d sim.Time) error {
	return runWindows(ctx, h.sk, h.cfg.ControlPeriod, d)
}

// onWindow is the single-threaded barrier work at every window edge, in a
// fixed order: scheduled world actions, snapshot + metrics accounting,
// reservation arbitration, shard reassignment, observer hooks, and the
// seeding of the next window.
func (h *Highway) onWindow(edge sim.Time) {
	h.runPending(edge)
	h.assignShards()
	h.publishSnapshot(edge)
	if h.accountMetrics() {
		// Collision resolution teleported a car: republish so ownership
		// and the next window's snapshot reflect the resolved positions.
		h.assignShards()
		h.publishSnapshot(edge)
	}
	if h.arbitrate(edge) {
		h.publishSnapshot(edge)
	}
	h.runHooks(edge)
	if !h.stopped {
		h.seedWindow(edge)
	}
}

// assignShards rebuilds shard ownership from current positions. Iteration
// is in car-id order so the rebuild is deterministic.
func (h *Highway) assignShards() {
	for i := range h.byShard {
		h.byShard[i] = h.byShard[i][:0]
	}
	for _, c := range h.cars {
		owner := h.part.ShardOf(c.Body.X)
		c.shard = owner
		h.byShard[owner] = append(h.byShard[owner], c)
	}
}

// publishSnapshot replaces the shared snapshot with the current car
// states, sorted by (x, id). In-window events only ever read it.
func (h *Highway) publishSnapshot(edge sim.Time) {
	if cap(h.snap) < len(h.cars) {
		h.snap = make([]hwSnap, len(h.cars))
	}
	snap := h.snap[:len(h.cars)]
	for i, c := range h.cars {
		lane2 := -1
		if c.maneuver.Active() {
			lane2 = c.maneuver.TargetLane
		}
		snap[i] = hwSnap{
			id: c.ID, x: c.Body.X, speed: c.Body.Speed, length: c.Body.Length,
			lane: c.Body.Lane, lane2: lane2, shard: c.shard,
		}
	}
	sort.Slice(snap, func(i, j int) bool {
		if snap[i].x != snap[j].x {
			return snap[i].x < snap[j].x
		}
		return snap[i].id < snap[j].id
	})
	h.snap = snap
	h.snapEdge = edge
}

// accountMetrics folds per-car observations into the shared totals in
// car-id order, and detects + resolves collisions against the fresh
// snapshot. It reports whether any collision was resolved.
func (h *Highway) accountMetrics() bool {
	resolved := false
	for _, c := range h.cars {
		lead, gap := h.leaderAt(c)
		if lead != nil && gap <= 0 {
			if debugCollisions {
				lc := h.cars[lead.id]
				fmt.Printf("COLLISION t=%v car=%d lane=%d x=%.1f v=%.1f man=%v->%d | lead=%d lane=%d x=%.1f v=%.1f man=%v->%d\n",
					h.sk.Now(), c.ID, c.Body.Lane, c.Body.X, c.Body.Speed, c.maneuver.Active(), c.maneuver.TargetLane,
					lc.ID, lc.Body.Lane, lc.Body.X, lc.Body.Speed, lc.maneuver.Active(), lc.maneuver.TargetLane)
			}
			h.Collisions++
			// Resolve the overlap so one event is counted once, not forever.
			c.Body.X = math.Mod(lead.x-lead.length-0.5+h.cfg.Length, h.cfg.Length)
			c.Body.Speed = lead.speed
			resolved = true
		} else if lead != nil && c.Body.Speed > 1 {
			h.TimeGaps.Observe(gap / c.Body.Speed)
		}
		h.speedSum += c.Body.Speed
		h.speedN++
	}
	return resolved
}

// arbitrate processes the cars' reservation intents in id order: releases
// first, then requests. The barrier is the agreement round — at most one
// holder per region, decided deterministically — and a granted maneuver
// begins here, against the fresh snapshot, so its dual-lane occupancy is
// visible to every car from the very first step of the next window.
// It reports whether any maneuver began (the snapshot must be republished).
func (h *Highway) arbitrate(edge sim.Time) bool {
	for _, c := range h.cars {
		if c.releaseHeld {
			if c.heldRegion != "" {
				h.res.Release(c.heldRegion, int64(c.ID))
				c.heldRegion = ""
			}
			c.releaseHeld = false
		}
	}
	began := false
	for _, c := range h.cars {
		if c.wantRegion == "" {
			continue
		}
		region := c.wantRegion
		c.wantRegion = ""
		if c.maneuver.Active() || c.heldRegion != "" {
			continue
		}
		// Conditions may have changed since the request: re-validate
		// against the barrier's fresh snapshot before committing.
		if !h.laneClearFor(c, c.wantLane) {
			continue
		}
		if !h.res.Acquire(region, int64(c.ID), edge, edge+5*sim.Second) {
			continue
		}
		if err := c.maneuver.Begin(c.wantLane, 3); err != nil {
			h.res.Release(region, int64(c.ID))
			continue
		}
		c.heldRegion = region
		// Mark the dual-lane occupancy in the snapshot immediately: a
		// later grantee in this same barrier (different region, same
		// target lane) must see this maneuver in its clearance check, not
		// the pre-grant snapshot.
		h.markManeuver(c)
		began = true
	}
	return began
}

// markManeuver updates c's snapshot entry in place with its fresh
// maneuver target lane. The entry keeps its (x, id) key, so the sort
// order is untouched.
func (h *Highway) markManeuver(c *Car) {
	n := len(h.snap)
	at := sort.Search(n, func(i int) bool {
		if h.snap[i].x != c.Body.X {
			return h.snap[i].x >= c.Body.X
		}
		return h.snap[i].id >= c.ID
	})
	if at < n && h.snap[at].id == c.ID && h.snap[at].x == c.Body.X {
		h.snap[at].lane2 = c.maneuver.TargetLane
	}
}

// seedWindow schedules every car's control step for the window opening at
// edge, on the kernel of the shard that owns the car.
func (h *Highway) seedWindow(edge sim.Time) {
	for idx, list := range h.byShard {
		shard := h.sk.Shard(idx)
		k := shard.Kernel()
		for _, c := range list {
			c := c
			k.At(edge+c.phase, func() { c.step(h, shard) })
		}
	}
}

// leaderFor returns the snapshot entry of the nearest car ahead of c that
// shares a lane with it, and the bumper-to-bumper gap with the leader's
// position extrapolated to now. The sorted snapshot turns the old O(n)
// fleet scan into an O(log n) search plus a short walk.
func (h *Highway) leaderFor(c *Car, now sim.Time) (*hwSnap, float64) {
	dt := (now - h.snapEdge).Seconds()
	return h.leaderScan(c, dt)
}

// leaderAt is leaderFor at the snapshot instant (no extrapolation) — the
// barrier's collision accounting view.
func (h *Highway) leaderAt(c *Car) (*hwSnap, float64) {
	return h.leaderScan(c, 0)
}

func (h *Highway) leaderScan(c *Car, dt float64) (*hwSnap, float64) {
	n := len(h.snap)
	if n < 2 {
		return nil, 0
	}
	x := c.Body.X
	at := sort.Search(n, func(i int) bool { return h.snap[i].x > x })
	for i := 0; i < n; i++ {
		e := &h.snap[(at+i)%n]
		if e.id == c.ID || !h.sharesLane(c, e) {
			continue
		}
		lx := e.x + e.speed*dt
		center := math.Mod(lx-x+2*h.cfg.Length, h.cfg.Length)
		return e, center - e.length
	}
	return nil, 0
}

func (h *Highway) sharesLane(c *Car, e *hwSnap) bool {
	for lane := 0; lane < h.cfg.Lanes; lane++ {
		if c.occupies(lane) && e.occupies(lane) {
			return true
		}
	}
	return false
}

// laneClearFor reports whether the target lane has room for c: a safe gap
// ahead and a safe gap to the first follower behind, judged against the
// snapshot.
func (h *Highway) laneClearFor(c *Car, lane int) bool {
	n := len(h.snap)
	if n < 2 {
		return true
	}
	x := c.Body.X
	aheadGap, behindGap := math.MaxFloat64, math.MaxFloat64
	var aheadSpeed, behindSpeed float64
	at := sort.Search(n, func(i int) bool { return h.snap[i].x > x })
	for i := 0; i < n; i++ {
		e := &h.snap[(at+i)%n]
		if e.id == c.ID || !e.occupies(lane) {
			continue
		}
		fwd := math.Mod(e.x-x+h.cfg.Length, h.cfg.Length)
		aheadGap = fwd - e.length
		aheadSpeed = e.speed
		break
	}
	for i := 1; i <= n; i++ {
		e := &h.snap[((at-i)%n+n)%n]
		if e.id == c.ID || !e.occupies(lane) {
			continue
		}
		back := math.Mod(x-e.x+h.cfg.Length, h.cfg.Length)
		behindGap = back - c.Body.Length
		behindSpeed = e.speed
		break
	}
	// Ahead: the desired following gap plus a closing-speed margin (the
	// maneuver takes ~3 s during which the gap shrinks by the speed
	// difference), with an absolute floor for congested low-speed traffic.
	closing := c.Body.Speed - aheadSpeed
	if closing < 0 {
		closing = 0
	}
	aheadNeed := c.params.DesiredGap(c.Body.Speed) + 4*closing
	if aheadNeed < 15 {
		aheadNeed = 15
	}
	if aheadGap < aheadNeed {
		return false
	}
	// Behind: the follower needs its own desired gap plus closing margin,
	// with an absolute floor — a fast car must never cut in overlapping a
	// slow follower just because the relative-speed term goes negative.
	need := 10 + 1.2*behindSpeed + 2*(behindSpeed-c.Body.Speed)
	if need < 12 {
		need = 12
	}
	return behindGap >= need
}

// beaconDue reports whether c broadcasts in the window containing now.
// Beacon windows are staggered by car id so the V2V load spreads evenly
// when the beacon period spans several windows.
func (h *Highway) beaconDue(c *Car, now sim.Time) bool {
	if h.cfg.V2VPeriod <= 0 {
		return false
	}
	k := int64(h.cfg.V2VPeriod / h.cfg.ControlPeriod)
	if k <= 1 {
		return true
	}
	window := int64(now / h.cfg.ControlPeriod)
	return (window+int64(c.ID))%k == 0
}

// sendBeacon fans the car's cooperative state out to every snapshot
// neighbor within V2V range through the mailboxes. Loss is decided at the
// barrier from the receiver's own stream; a jammed channel loses the
// frame outright.
func (h *Highway) sendBeacon(shard *sim.Shard, c *Car, now sim.Time) {
	state := coord.CoopState{
		ID:       wireless.NodeID(c.ID),
		Pos:      wireless.Position{X: c.Body.X},
		Speed:    c.Body.Speed,
		Lane:     c.Body.Lane,
		Intent:   "cruise",
		Time:     now,
		Validity: 1,
	}
	accel := c.Body.Accel
	edge := h.sk.NextEdge(now)
	sentAt := now
	from := c.ID
	sent := false
	h.eachInRange(c, func(e *hwSnap) {
		to := h.cars[e.id]
		sent = true
		shard.Send(e.shard, edge, int64(from), func() {
			// Barrier context: single-threaded, ordered by (edge, sender).
			if h.jammed(sentAt) {
				h.beaconsLost++
				return
			}
			if h.cfg.Loss > 0 && to.rx.Float64() < h.cfg.Loss {
				h.beaconsLost++
				return
			}
			h.beaconsDelivered++
			to.table.Update(state)
			to.accelFrom[from] = accel
		})
	})
	if sent {
		c.beaconsSent++
	}
}

// eachInRange visits the snapshot entries within ring distance V2VRange of
// c (in either direction), excluding c itself.
func (h *Highway) eachInRange(c *Car, fn func(*hwSnap)) {
	n := len(h.snap)
	if n < 2 {
		return
	}
	x := c.Body.X
	r := h.cfg.V2VRange
	if 2*r >= h.cfg.Length {
		for i := range h.snap {
			if h.snap[i].id != c.ID {
				fn(&h.snap[i])
			}
		}
		return
	}
	at := sort.Search(n, func(i int) bool { return h.snap[i].x > x })
	for i := 0; i < n-1; i++ {
		e := &h.snap[(at+i)%n]
		if e.id == c.ID {
			continue
		}
		if math.Mod(e.x-x+h.cfg.Length, h.cfg.Length) > r {
			break
		}
		fn(e)
	}
	for i := 1; i <= n-1; i++ {
		e := &h.snap[((at-i)%n+n)%n]
		if e.id == c.ID {
			continue
		}
		if math.Mod(x-e.x+h.cfg.Length, h.cfg.Length) > r {
			break
		}
		fn(e)
	}
}
