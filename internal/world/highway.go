// Package world assembles the automotive scenarios of paper Sec. VI-A on
// one partitioned world engine: a ring highway where every car runs the
// full KARYON stack — abstract distance sensing with validity, V2V
// cooperative state, a per-vehicle Safety Kernel choosing the Level of
// Service, the LoS-dependent ACC time gap, and a Simplex actuation gate —
// and a signalized intersection whose physical traffic light can fail and
// be replaced by the virtual traffic light (use case VI-A2).
//
// Both worlds run on sim.ShardedKernel under the snapshot/mailbox
// discipline: in-window events read the immutable neighbor snapshot
// published at the last window edge and mutate only their own entity;
// cross-entity traffic flows through mailboxes drained at single-threaded
// barriers; shared metrics accumulate at barriers in entity-id order; and
// every entity draws randomness from its own sim.NewStream streams. Under
// that discipline a run is a pure function of (seed, config) —
// byte-identical for every shard count.
package world

import (
	"cmp"
	"context"
	"fmt"
	"math"
	"slices"
	"sort"

	"karyon/internal/coord"
	"karyon/internal/core"
	"karyon/internal/metrics"
	"karyon/internal/sim"
	"karyon/internal/wireless"
)

// LoSMode selects how a car's level of service is governed.
type LoSMode int

// LoS governance modes for experiments.
const (
	// ModeAdaptive runs the KARYON safety kernel (the paper's system).
	ModeAdaptive LoSMode = iota + 1
	// ModeFixed pins the LoS regardless of conditions but still honors
	// perception validity for the degraded-perception fallback.
	ModeFixed
	// ModeReckless pins LoS at the highest level AND ignores validity —
	// the "complex function without a safety kernel" baseline.
	ModeReckless
)

// HighwayConfig parameterizes the ring-highway scenario.
type HighwayConfig struct {
	// Length is the ring circumference in meters.
	Length float64
	// Cars is the number of vehicles.
	Cars int
	// Lanes is the number of lanes (default 1). With more than one lane,
	// vehicles overtake slow leaders through coordinated lane changes (use
	// case VI-A3): the maneuver region is reserved through the barrier
	// arbiter, so at most one vehicle changes lanes per road segment at a
	// time.
	Lanes int
	// ControlPeriod is the per-car control loop period. It is also the
	// sharded kernel's synchronization window.
	ControlPeriod sim.Time
	// V2VPeriod is the cooperative-state beacon period (0 disables V2V).
	// Must be a multiple of ControlPeriod.
	V2VPeriod sim.Time
	// V2VRange is how far a beacon reaches, in meters. It bounds the shard
	// count: each ring arc must be at least this long so a frame never
	// skips over a whole shard.
	V2VRange float64
	// Mode and FixedLoS govern LoS selection.
	Mode     LoSMode
	FixedLoS core.LoS
	// SensorSigma is the distance sensor's nominal noise (m).
	SensorSigma float64
	// Loss is the independent per-receiver beacon loss probability.
	Loss float64
	// Medium routes V2V beacons through the slot-level sharded radio
	// medium (wireless.ShardedMedium: airtime occupancy, overlap
	// collisions, carrier sense, jam windows) instead of the abstract
	// per-receiver loss draws. V2VRange and Loss carry over as the
	// medium's radio range and loss probability; JamV2V jams its
	// channels. Off by default — the abstract path stays byte-identical.
	Medium bool
	// Channels is the number of orthogonal radio channels in Medium mode
	// (min 1). Beacons spread across channels by car id, which divides
	// the slot contention; jam bursts cover every channel.
	Channels int
	// CarrierSense makes Medium-mode senders defer (skip) a beacon whose
	// slot is already audibly occupied or jammed — CSMA's
	// listen-before-talk, converting most would-be collisions into
	// deferrals.
	CarrierSense bool
	// SpecDepth ≥ 2 enables optimistic shard windows: shards run up to
	// SpecDepth windows ahead speculatively, with deterministic
	// abort-and-replay on conflict (see internal/world/speculate.go). The
	// committed output is byte-identical to SpecDepth = 0. Zero (the
	// default) keeps pure lockstep.
	SpecDepth int
	// SpecBackoff overrides the post-abort lockstep penalty in windows
	// (0 = sim.DefaultSpecBackoff).
	SpecBackoff int
}

// DefaultHighwayConfig returns a 30-car, 2 km ring.
func DefaultHighwayConfig() HighwayConfig {
	return HighwayConfig{
		Length:        2000,
		Cars:          30,
		ControlPeriod: 100 * sim.Millisecond,
		V2VPeriod:     100 * sim.Millisecond,
		V2VRange:      250,
		Mode:          ModeAdaptive,
		FixedLoS:      core.LevelSafe,
		SensorSigma:   0.3,
	}
}

// MaxShards returns the widest partition the config supports: each arc
// must be at least the V2V range so beacons only cross into adjacent
// shards.
func (cfg HighwayConfig) MaxShards() int {
	if cfg.V2VPeriod <= 0 || cfg.V2VRange <= 0 {
		return int(^uint(0) >> 1)
	}
	n := int(cfg.Length / cfg.V2VRange)
	if n < 1 {
		n = 1
	}
	return n
}

// hwSnap is one car's published state at a window edge.
type hwSnap struct {
	id     int
	x      float64
	speed  float64
	length float64
	lane   int
	// lane2 is the second occupied lane while a maneuver is in progress
	// (-1 when none): a lane-changing car conservatively blocks both.
	lane2 int
	shard int
}

func (e *hwSnap) occupies(lane int) bool {
	return e.lane == lane || e.lane2 == lane
}

// carHot is the struct-of-arrays mirror of the kinematic fields the
// per-shard snapshot refresh reads. Kept in one packed table indexed by
// car id (32 B/car — a 10k-car fleet fits in L2), it turns shardPhase's
// per-entry pointer chase through the full ~500-byte Car structs into
// reads from a dense, cache-resident array. Each slot is written only by
// its car's own step (on the owning shard) or at single-threaded barrier
// points (publishSnapshot, markManeuver), mirroring the ownership rules
// of the Car itself.
type carHot struct {
	x      float64
	speed  float64
	length float64
	lane   int32
	// lane2 is the maneuver's second occupied lane, -1 when none.
	lane2 int32
}

// syncHot republishes c's kinematic state into the hot table. It must run
// wherever that state changes: the end of the car's own control step, a
// maneuver grant at the barrier (markManeuver), and the full-rebuild
// publishSnapshot path (startup, collision resolution, speculation abort).
func (h *Highway) syncHot(c *Car) {
	lane2 := int32(-1)
	if c.maneuver.Active() {
		lane2 = int32(c.maneuver.TargetLane)
	}
	h.hot[c.ID] = carHot{
		x: c.Body.X, speed: c.Body.Speed, length: c.Body.Length,
		lane: int32(c.Body.Lane), lane2: lane2,
	}
}

// debugCollisions, when set by a test, prints the full geometry of every
// collision — the fastest way to diagnose a lane-change safety hole.
var debugCollisions = false

// debugSnapshotSync, when set by a test, asserts at every barrier that the
// stitched snapshot still matches the cars' kinematic state — i.e. that no
// scheduled action violated the incremental snapshot's contract (snapshots
// are captured by the per-shard phase BEFORE runPending, so barrier
// actions must not mutate position/speed/lane/maneuver). Violations panic
// loudly instead of silently desyncing the next window.
var debugSnapshotSync = false

// Highway is the ring-road world on the sharded kernel. One instance
// serves every scale: an unsharded run is simply the partition at width 1,
// so the execution path — and the output bytes — are identical for every
// shard count.
type Highway struct {
	cfg  HighwayConfig
	sk   *sim.ShardedKernel
	part RingPartition
	cars []*Car // by id

	byShard  [][]*Car
	snap     []hwSnap // sorted by (x, id); replaced at barriers, never mutated
	snapEdge sim.Time

	// hot is the struct-of-arrays car hot state, indexed by car id (see
	// carHot). The shard phase refreshes arc snapshots from it instead of
	// dereferencing the cars.
	hot []carHot

	// Incremental snapshot machinery (the barrier-cost tentpole). Each
	// shard keeps its own sorted arc snapshot, refreshed on the shard
	// goroutines in the pre-barrier phase (shardPhase); the barrier only
	// hands boundary-crossing entries between arcs (mergeSnapshot) and
	// stitches the arcs into the global ring view by concatenation — arcs
	// are contiguous in x, so no comparison sort ever runs on the hook
	// goroutine in the steady state.
	arcs     [][]hwSnap // per shard, sorted by (x, id); shard-phase-owned
	outgoing [][]hwSnap // per shard: entries that left the arc this window

	// Linear collision-sweep scratch (accountMetrics): per-lane
	// next-occupant indices, equal-x group ends, and per-car results.
	nextOcc   [][]int32
	groupEnd  []int32
	sweepLead []int32
	sweepGap  []float64

	res *coord.Reservations

	// medium is the slot-level radio (nil unless cfg.Medium): beacons
	// queue into it through the barrier mailboxes and resolve at every
	// window edge against the still-published previous snapshot.
	medium *wireless.ShardedMedium
	// mEach/mDeliver/mDrop are the medium's Resolve callbacks, built once
	// by initMediumCallbacks so the per-window resolution allocates no
	// closures.
	mEach    func(*wireless.ShardedTx, func(wireless.NodeID, wireless.Position))
	mDeliver func(*wireless.ShardedTx, wireless.NodeID)
	mDrop    func(*wireless.ShardedTx, wireless.NodeID, wireless.DropReason)
	// lastDelivered snapshots the medium's delivered count at the
	// previous barrier; inOutage/outageStart track the current fleet-wide
	// beacon outage (windows with frames on air but nothing delivered).
	lastDelivered int64
	inOutage      bool
	outageStart   sim.Time
	// inaccess collects completed beacon-outage durations in
	// milliseconds — the paper's network-inaccessibility periods as seen
	// by the medium-backed fleet. Read through Inaccessibility(), which
	// also accounts for a still-open outage.
	inaccess metrics.Histogram

	barrierScheduler

	// jamStart/jamUntil model V2V inaccessibility (the paper's jammed
	// channel): beacons sent inside the burst are lost. Written only at
	// barriers or while the world is stopped.
	jamStart sim.Time
	jamUntil sim.Time

	// Collisions counts bumper overlaps (the safety metric — the paper's
	// claim is that this stays zero with the kernel engaged).
	Collisions int64
	// TimeGaps collects observed time gaps (s) for every car at every
	// window barrier.
	TimeGaps metrics.Histogram
	// speedSum/speedN accumulate mean-speed statistics.
	speedSum float64
	speedN   int64

	beaconsDelivered int64
	beaconsLost      int64

	// Crossers counts barrier handoffs of cars between arc snapshots —
	// the "edges" the incremental barrier pays for. Together with
	// cfg.Cars it shows the serial barrier work scaling with boundary
	// traffic, not with world size.
	Crossers int64

	// spec holds the optimistic-window machinery (nil unless
	// cfg.SpecDepth ≥ 2; see speculate.go).
	spec *hwSpec

	// rec is the attached trace recorder/verifier (nil unless RecordTo
	// or a replay attached one; see record.go). Its presence pins the
	// kernel to lockstep so every window passes through the barrier
	// path the recorder hooks.
	rec *recorder
}

// NewHighway builds the world over the sharded kernel. The kernel's window
// must equal cfg.ControlPeriod — each car steps exactly once per window,
// and the window is the conservative lookahead that justifies delivering
// beacons at the closing edge.
func NewHighway(sk *sim.ShardedKernel, cfg HighwayConfig) (*Highway, error) {
	if cfg.Cars < 1 || cfg.Length <= 0 {
		return nil, fmt.Errorf("world: invalid highway config %+v", cfg)
	}
	if cfg.ControlPeriod <= 0 {
		return nil, fmt.Errorf("world: control period must be positive")
	}
	if cfg.Lanes < 1 {
		cfg.Lanes = 1
	}
	if cfg.V2VRange <= 0 {
		cfg.V2VRange = 250
	}
	if cfg.V2VPeriod > 0 && cfg.V2VPeriod%cfg.ControlPeriod != 0 {
		return nil, fmt.Errorf("world: V2V period %v must be a multiple of the control period %v",
			cfg.V2VPeriod, cfg.ControlPeriod)
	}
	if sk.Window() != cfg.ControlPeriod {
		return nil, fmt.Errorf("world: kernel window %v must equal the control period %v",
			sk.Window(), cfg.ControlPeriod)
	}
	reach := 0.0
	if cfg.V2VPeriod > 0 {
		reach = cfg.V2VRange
	}
	part, err := NewRingPartition(cfg.Length, sk.Shards(), reach)
	if err != nil {
		return nil, err
	}
	if cfg.Medium && cfg.Channels < 1 {
		cfg.Channels = 1
	}
	h := &Highway{cfg: cfg, sk: sk, part: part, res: coord.NewReservations()}
	if cfg.Medium {
		mcfg := wireless.DefaultShardedConfig()
		mcfg.Range = cfg.V2VRange
		mcfg.LossProb = cfg.Loss
		mcfg.Channels = cfg.Channels
		mcfg.CarrierSense = cfg.CarrierSense
		ring := cfg.Length
		// Ring metric: the radio lives on the ring, so distance is arc
		// length and the wrap seam casts no shadow.
		mcfg.Distance = func(a, b wireless.Position) float64 {
			d := math.Abs(a.X - b.X)
			if d > ring/2 {
				d = ring - d
			}
			return d
		}
		h.medium = wireless.NewShardedMedium(sk.Seed(), mcfg)
	}
	h.byShard = make([][]*Car, sk.Shards())
	h.arcs = make([][]hwSnap, sk.Shards())
	h.outgoing = make([][]hwSnap, sk.Shards())
	h.hot = make([]carHot, cfg.Cars)
	spacing := cfg.Length / float64(cfg.Cars)
	for i := 0; i < cfg.Cars; i++ {
		car, err := newCar(sk.Seed(), i, float64(i)*spacing, cfg)
		if err != nil {
			return nil, err
		}
		// One step closure per car for its whole lifetime: seeding a
		// window is then allocation-free (the kernels recycle events).
		// The beacon paths get the same treatment — one cached delivery
		// closure and one persistent frame payload per car, fed through
		// the pend* fields, so the steady-state window sends beacons
		// without allocating.
		car.stepFn = func() { car.step(h, h.sk.Shard(car.shard)) }
		car.deliverFn = func() { h.deliverBeacon(car) }
		if cfg.Medium {
			car.payload = &beacon{}
			car.queueFn = func() { h.medium.Queue(car.pendTx) }
		}
		h.cars = append(h.cars, car)
	}
	if cfg.Medium {
		h.initMediumCallbacks()
	}
	return h, nil
}

// BuildHighway creates a sharded kernel with the config's window and the
// world on top of it. The shard count is clamped to cfg.MaxShards() so a
// small ring never fails on an over-wide partition — the output is
// byte-identical for every width anyway.
func BuildHighway(seed int64, shards int, cfg HighwayConfig) (*Highway, error) {
	if shards < 1 {
		shards = 1
	}
	if max := cfg.MaxShards(); shards > max {
		shards = max
	}
	if cfg.ControlPeriod <= 0 {
		return nil, fmt.Errorf("world: control period must be positive")
	}
	sk, err := sim.NewShardedKernel(seed, shards, cfg.ControlPeriod)
	if err != nil {
		return nil, err
	}
	return NewHighway(sk, cfg)
}

// Cars returns the vehicles.
func (h *Highway) Cars() []*Car { return h.cars }

// Kernel returns the sharded kernel the world runs on.
func (h *Highway) Kernel() *sim.ShardedKernel { return h.sk }

// Now returns the last window edge every shard has reached.
func (h *Highway) Now() sim.Time { return h.sk.Now() }

// MeanSpeed returns the time-averaged fleet speed (m/s).
func (h *Highway) MeanSpeed() float64 {
	if h.speedN == 0 {
		return 0
	}
	return h.speedSum / float64(h.speedN)
}

// Flow returns the traffic flow in vehicles/hour past a point: mean speed
// times density.
func (h *Highway) Flow() float64 {
	density := float64(h.cfg.Cars) / h.cfg.Length // veh/m
	return h.MeanSpeed() * density * 3600
}

// BeaconStats returns (sent, delivered, lost) V2V beacon counts.
func (h *Highway) BeaconStats() (sent, delivered, lost int64) {
	for _, c := range h.cars {
		sent += c.beaconsSent
	}
	return sent, h.beaconsDelivered, h.beaconsLost
}

// JamV2V renders the V2V channel inaccessible for the next d units of
// virtual time, extending any ongoing burst — the external interference
// that produces the paper's network-inaccessibility periods. Call it at a
// barrier (Schedule) or while the world is not running.
func (h *Highway) JamV2V(d sim.Time) {
	now := h.sk.Now()
	if h.medium != nil {
		h.medium.JamAll(now, d)
	}
	if now >= h.jamUntil {
		h.jamStart = now
	}
	if until := now + d; until > h.jamUntil {
		h.jamUntil = until
	}
}

// MediumStats returns the slot-level radio's delivery accounting (zero
// value when the world runs the abstract V2V path).
func (h *Highway) MediumStats() wireless.ShardedStats {
	if h.medium == nil {
		return wireless.ShardedStats{}
	}
	return h.medium.Stats()
}

// Inaccessibility returns the observed fleet-wide beacon-outage durations
// in milliseconds (Medium mode). An outage still open at the last window
// edge is included as if it closed there — a jam burst abutting the end
// of a run must not vanish from the histogram. The returned histogram is
// an independent clone: reading or observing it never perturbs the
// world's accounting.
func (h *Highway) Inaccessibility() metrics.Histogram {
	out := h.inaccess.Clone()
	if h.inOutage {
		out.Observe(float64(h.sk.Now()-h.outageStart) / float64(sim.Millisecond))
	}
	return out
}

func (h *Highway) jammed(t sim.Time) bool {
	return t >= h.jamStart && t < h.jamUntil
}

// Start assigns cars to shards, publishes the first snapshot, seeds the
// first window's control steps, and registers the per-shard phase and
// window hooks.
func (h *Highway) Start() error {
	h.assignShards()
	h.publishSnapshot(0)
	h.seedWindow(0)
	h.sk.OnShardWindow(h.shardPhase)
	h.sk.OnWindow(h.onWindow)
	if h.cfg.SpecDepth >= 2 {
		h.initSpec()
	}
	return nil
}

// SpecStats returns the kernel's speculation telemetry (zero when
// speculation is disabled). Execution-strategy counters: they vary with
// shard count and depth, unlike the simulation output.
func (h *Highway) SpecStats() sim.SpecStats { return h.sk.SpecStats() }

// Run advances the world by d units of virtual time (rounded up to a
// whole number of windows so barriers stay on the window grid).
func (h *Highway) Run(d sim.Time) error {
	return h.RunContext(context.Background(), d)
}

// RunContext is Run with cancellation, checked at every window barrier.
func (h *Highway) RunContext(ctx context.Context, d sim.Time) error {
	return runWindows(ctx, h.sk, h.cfg.ControlPeriod, d)
}

// onWindow is the single-threaded barrier work at every window edge, in a
// fixed order: scheduled world actions, snapshot reconciliation (the
// per-shard phase already refreshed and sorted the arc snapshots in
// parallel), metrics accounting, reservation arbitration, observer hooks,
// and the seeding of the next window.
//
// Scheduled actions (Schedule callbacks, campaign injections) must not
// mutate car kinematics (position, speed, lane, maneuver) — those were
// snapshotted by the per-shard phase just before this barrier. Actions
// that influence the plant (ForceBrake, sensor faults, jams) set flags the
// next window's control steps read, which is the same contract the
// campaign engine has always followed.
func (h *Highway) onWindow(edge sim.Time) {
	if h.medium != nil {
		// Resolve the closed window's frames first, against the snapshot
		// they were sent under and before this barrier's scheduled
		// actions — a jam injected at this edge must not reach back into
		// the window that just ended (the abstract path's drain-time loss
		// draws follow the same rule).
		h.resolveMedium(edge)
	}
	h.runPending(edge)
	h.mergeSnapshot(edge)
	if debugSnapshotSync {
		h.assertSnapshotSync(edge)
	}
	if h.accountMetrics() {
		// Collision resolution teleported a car: rebuild ownership, the
		// snapshot, and the arcs from scratch so the next window sees the
		// resolved positions (rare — zero in nominal runs).
		h.assignShards()
		h.publishSnapshot(edge)
	}
	h.arbitrate(edge)
	h.runHooks(edge)
	if !h.stopped {
		h.seedWindow(edge)
	}
	if h.rec != nil {
		// Last, so the digest sees the fully reconciled barrier state.
		h.recWindow(edge)
	}
}

// assignShards rebuilds shard ownership from current positions. Iteration
// is in car-id order so the rebuild is deterministic. This is the
// full-rebuild path (startup and collision resolution); steady-state
// barriers maintain ownership incrementally in mergeSnapshot.
func (h *Highway) assignShards() {
	for i := range h.byShard {
		h.byShard[i] = h.byShard[i][:0]
	}
	for _, c := range h.cars {
		owner := h.part.ShardOf(c.Body.X)
		c.shard = owner
		h.byShard[owner] = append(h.byShard[owner], c)
	}
}

// publishSnapshot replaces the shared snapshot with the current car
// states, sorted by (x, id), and re-partitions it into the per-shard arc
// snapshots. In-window events only ever read the published snapshot. This
// is the full-rebuild path; steady-state barriers use mergeSnapshot.
func (h *Highway) publishSnapshot(edge sim.Time) {
	if cap(h.snap) < len(h.cars) {
		h.snap = make([]hwSnap, len(h.cars))
	}
	snap := h.snap[:len(h.cars)]
	for i, c := range h.cars {
		// Resync the hot table on the full-rebuild path: it covers every
		// out-of-band kinematic change (startup, collision teleport,
		// speculation abort restore).
		h.syncHot(c)
		hot := &h.hot[c.ID]
		snap[i] = hwSnap{
			id: c.ID, x: hot.x, speed: hot.speed, length: hot.length,
			lane: int(hot.lane), lane2: int(hot.lane2), shard: c.shard,
		}
	}
	slices.SortFunc(snap, func(a, b hwSnap) int {
		if c := cmp.Compare(a.x, b.x); c != 0 {
			return c
		}
		return cmp.Compare(a.id, b.id)
	})
	h.snap = snap
	h.snapEdge = edge
	for i := range h.arcs {
		h.arcs[i] = h.arcs[i][:0]
		h.outgoing[i] = h.outgoing[i][:0]
	}
	for _, e := range h.snap {
		h.arcs[e.shard] = append(h.arcs[e.shard], e)
	}
}

// snapLess is the snapshot order: ascending (x, id). The key is unique
// (ids are distinct), so any sorting algorithm yields the same sequence.
func snapLess(a, b hwSnap) bool {
	if a.x != b.x {
		return a.x < b.x
	}
	return a.id < b.id
}

// insertionSortSnaps restores (x, id) order — O(n + inversions), linear on
// the near-sorted per-window refresh where cars move a few meters and
// almost never reorder.
func insertionSortSnaps(s []hwSnap) {
	for i := 1; i < len(s); i++ {
		e := s[i]
		j := i - 1
		for j >= 0 && snapLess(e, s[j]) {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = e
	}
}

// shardPhase is the pre-barrier per-shard snapshot refresh. It runs on the
// shard's own goroutine after the window's final control step: it rewrites
// the arc's entries from the shard's cars, restores (x, id) order with a
// near-sorted insertion pass, and sets aside the entries whose position
// now belongs to another arc (boundary crossers, including the ring wrap
// at x=0, which always sorts to the front of the last shard's arc). It
// touches only shard-owned state — the published global snapshot stays
// immutable until the barrier.
func (h *Highway) shardPhase(shard int, edge sim.Time) {
	arc := h.arcs[shard]
	sorted := true
	for i := range arc {
		// Read the SoA hot table, not the car: the refresh walks a dense
		// 32 B/entry array instead of pointer-chasing the full car structs.
		hot := &h.hot[arc[i].id]
		arc[i] = hwSnap{
			id: arc[i].id, x: hot.x, speed: hot.speed, length: hot.length,
			lane: int(hot.lane), lane2: int(hot.lane2), shard: shard,
		}
		if i > 0 && snapLess(arc[i], arc[i-1]) {
			sorted = false
		}
	}
	if !sorted {
		insertionSortSnaps(arc)
	}
	// After the sort, crossers sit at the arc's ends: a prefix that
	// dropped below the arc (the ring wrap) and a suffix that moved past
	// the upper boundary. Ownership is decided by the same ShardOf the
	// full rebuild uses, so boundary-sitting floats classify identically.
	out := h.outgoing[shard][:0]
	lo, hi := 0, len(arc)
	for lo < hi {
		dst := h.part.ShardOf(arc[lo].x)
		if dst == shard {
			break
		}
		e := arc[lo]
		e.shard = dst
		out = append(out, e)
		lo++
	}
	for hi > lo {
		dst := h.part.ShardOf(arc[hi-1].x)
		if dst == shard {
			break
		}
		e := arc[hi-1]
		e.shard = dst
		out = append(out, e)
		hi--
	}
	h.outgoing[shard] = out
	h.arcs[shard] = arc[lo:hi]
}

// mergeSnapshot is the barrier's snapshot reconciliation: hand each
// boundary crosser to its new arc (and move its car between the id-ordered
// ownership lists), then stitch the per-shard arcs into the global ring
// view. Arcs cover contiguous, ascending x ranges, so the stitch is a
// straight concatenation — the serial comparison work is O(crossers), not
// O(n log n), and no snapshot entry is constructed on the hook goroutine.
func (h *Highway) mergeSnapshot(edge sim.Time) {
	for src := range h.outgoing {
		for _, e := range h.outgoing[src] {
			h.insertArcEntry(e)
			h.moveOwner(h.cars[e.id], src, e.shard)
			h.Crossers++
		}
		h.outgoing[src] = h.outgoing[src][:0]
	}
	if cap(h.snap) < len(h.cars) {
		h.snap = make([]hwSnap, 0, len(h.cars))
	}
	out := h.snap[:0]
	for _, arc := range h.arcs {
		out = append(out, arc...)
	}
	h.snap = out
	h.snapEdge = edge
}

// assertSnapshotSync panics if any stitched entry diverged from its car —
// the loud failure mode for a Schedule action that mutated kinematics in
// violation of the onWindow contract (see debugSnapshotSync).
func (h *Highway) assertSnapshotSync(edge sim.Time) {
	if len(h.snap) != len(h.cars) {
		panic(fmt.Sprintf("world: snapshot holds %d entries for %d cars at %v",
			len(h.snap), len(h.cars), edge))
	}
	for i := range h.snap {
		e := &h.snap[i]
		c := h.cars[e.id]
		if e.x != c.Body.X || e.speed != c.Body.Speed || e.lane != c.Body.Lane {
			panic(fmt.Sprintf(
				"world: snapshot desync at %v: car %d snap(x=%v v=%v lane=%d) body(x=%v v=%v lane=%d) — a barrier action mutated kinematics",
				edge, c.ID, e.x, e.speed, e.lane, c.Body.X, c.Body.Speed, c.Body.Lane))
		}
	}
}

// insertArcEntry inserts e into its destination arc at its (x, id) slot.
// Crossers land within a window's travel of the boundary, so the shift is
// a handful of entries.
func (h *Highway) insertArcEntry(e hwSnap) {
	arc := h.arcs[e.shard]
	at := sort.Search(len(arc), func(i int) bool { return snapLess(e, arc[i]) })
	arc = append(arc, hwSnap{})
	copy(arc[at+1:], arc[at:])
	arc[at] = e
	h.arcs[e.shard] = arc
}

// moveOwner moves c between the id-ordered per-shard ownership lists and
// records its new shard — the incremental replacement for a full
// assignShards pass.
func (h *Highway) moveOwner(c *Car, src, dst int) {
	list := h.byShard[src]
	at := sort.Search(len(list), func(i int) bool { return list[i].ID >= c.ID })
	copy(list[at:], list[at+1:])
	list[len(list)-1] = nil
	h.byShard[src] = list[:len(list)-1]
	list = h.byShard[dst]
	at = sort.Search(len(list), func(i int) bool { return list[i].ID >= c.ID })
	list = append(list, nil)
	copy(list[at+1:], list[at:])
	list[at] = c
	h.byShard[dst] = list
	c.shard = dst
}

// accountMetrics folds per-car observations into the shared totals in
// car-id order, and detects + resolves collisions against the fresh
// snapshot. Every car's leader comes from one linear sweep per lane over
// the already-sorted snapshot (sweepLeaders) instead of a per-car binary
// search — O(lanes·n) with memcpy-class constants. It reports whether any
// collision was resolved.
func (h *Highway) accountMetrics() bool {
	h.sweepLeaders()
	resolved := false
	for _, c := range h.cars {
		var lead *hwSnap
		var gap float64
		if li := h.sweepLead[c.ID]; li >= 0 {
			lead = &h.snap[li]
			gap = h.sweepGap[c.ID]
		}
		if lead != nil && gap <= 0 {
			if debugCollisions {
				lc := h.cars[lead.id]
				fmt.Printf("COLLISION t=%v car=%d lane=%d x=%.1f v=%.1f man=%v->%d | lead=%d lane=%d x=%.1f v=%.1f man=%v->%d\n",
					h.sk.Now(), c.ID, c.Body.Lane, c.Body.X, c.Body.Speed, c.maneuver.Active(), c.maneuver.TargetLane,
					lc.ID, lc.Body.Lane, lc.Body.X, lc.Body.Speed, lc.maneuver.Active(), lc.maneuver.TargetLane)
			}
			h.Collisions++
			// Resolve the overlap so one event is counted once, not forever.
			c.Body.X = math.Mod(lead.x-lead.length-0.5+h.cfg.Length, h.cfg.Length)
			c.Body.Speed = lead.speed
			resolved = true
		} else if lead != nil && c.Body.Speed > 1 {
			h.TimeGaps.Observe(gap / c.Body.Speed)
		}
		h.speedSum += c.Body.Speed
		h.speedN++
	}
	return resolved
}

// sweepLeaders computes every car's snapshot leader — the first entry in
// ring order past its equal-x group that shares a lane with it, exactly
// the seed's leaderAt — plus the bumper-to-bumper gap, in linear passes:
// a per-lane backward sweep builds "next occupant of lane L at or after
// index i" tables, and one forward pass resolves each entry against them.
func (h *Highway) sweepLeaders() {
	n := len(h.snap)
	if len(h.sweepLead) < len(h.cars) {
		h.sweepLead = make([]int32, len(h.cars))
		h.sweepGap = make([]float64, len(h.cars))
	}
	if n < 2 {
		for i := range h.sweepLead {
			h.sweepLead[i] = -1
		}
		return
	}
	lanes := h.cfg.Lanes
	for len(h.nextOcc) < lanes {
		h.nextOcc = append(h.nextOcc, nil)
	}
	for l := 0; l < lanes; l++ {
		next := h.nextOcc[l]
		if cap(next) < n {
			next = make([]int32, n)
		}
		next = next[:n]
		last := int32(-1)
		for d := 2*n - 1; d >= 0; d-- {
			j := d % n
			if h.snap[j].occupies(l) {
				last = int32(j)
			}
			if d < n {
				next[d] = last
			}
		}
		h.nextOcc[l] = next
	}
	// groupEnd[i] is one past the last index of i's equal-x run — where
	// the seed's sort.Search(x > snap[i].x) scan started.
	ge := h.groupEnd
	if cap(ge) < n {
		ge = make([]int32, n)
	}
	ge = ge[:n]
	for i := n - 1; i >= 0; i-- {
		if i == n-1 || h.snap[i].x != h.snap[i+1].x {
			ge[i] = int32(i + 1)
		} else {
			ge[i] = ge[i+1]
		}
	}
	h.groupEnd = ge
	for i := 0; i < n; i++ {
		e := &h.snap[i]
		at := int(ge[i]) % n
		best := int32(-1)
		bestSteps := n
		for l := 0; l < lanes; l++ {
			if !e.occupies(l) {
				continue
			}
			cand := h.nextOcc[l][at]
			if cand < 0 {
				continue
			}
			if int(cand) == i {
				// The only occupant in [at, i) is the car itself: the next
				// one strictly after it is the candidate (it sits later in
				// the seed's circular scan order).
				cand = h.nextOcc[l][(i+1)%n]
				if int(cand) == i {
					continue // sole occupant of the lane
				}
			}
			steps := (int(cand) - at + n) % n
			if steps < bestSteps {
				bestSteps = steps
				best = cand
			}
		}
		h.sweepLead[e.id] = best
		if best >= 0 {
			le := &h.snap[best]
			center := math.Mod(le.x-e.x+2*h.cfg.Length, h.cfg.Length)
			h.sweepGap[e.id] = center - le.length
		}
	}
}

// arbitrate processes the cars' reservation intents in id order: releases
// first, then requests. The barrier is the agreement round — at most one
// holder per region, decided deterministically — and a granted maneuver
// begins here, against the fresh snapshot, so its dual-lane occupancy is
// visible to every car from the very first step of the next window
// (markManeuver patches the published snapshot in place, so no republish
// is needed).
func (h *Highway) arbitrate(edge sim.Time) {
	for _, c := range h.cars {
		if c.releaseHeld {
			if c.heldRegion != "" {
				h.res.Release(c.heldRegion, int64(c.ID))
				if h.rec != nil {
					h.captureRelease(c, c.heldRegion)
				}
				c.heldRegion = ""
			}
			c.releaseHeld = false
		}
	}
	for _, c := range h.cars {
		if c.wantRegion == "" {
			continue
		}
		region := c.wantRegion
		c.wantRegion = ""
		if c.maneuver.Active() || c.heldRegion != "" {
			continue
		}
		// Conditions may have changed since the request: re-validate
		// against the barrier's fresh snapshot before committing.
		if !h.laneClearFor(c, c.wantLane) {
			continue
		}
		if !h.res.Acquire(region, int64(c.ID), edge, edge+5*sim.Second) {
			continue
		}
		if err := c.maneuver.Begin(c.wantLane, 3); err != nil {
			h.res.Release(region, int64(c.ID))
			continue
		}
		c.heldRegion = region
		if h.rec != nil {
			h.captureGrant(c, region)
		}
		// Mark the dual-lane occupancy in the snapshot immediately: a
		// later grantee in this same barrier (different region, same
		// target lane) must see this maneuver in its clearance check, not
		// the pre-grant snapshot.
		h.markManeuver(c)
	}
}

// markManeuver updates c's snapshot entry in place with its fresh
// maneuver target lane. The entry keeps its (x, id) key, so the sort
// order is untouched.
func (h *Highway) markManeuver(c *Car) {
	n := len(h.snap)
	at := sort.Search(n, func(i int) bool {
		if h.snap[i].x != c.Body.X {
			return h.snap[i].x >= c.Body.X
		}
		return h.snap[i].id >= c.ID
	})
	if at < n && h.snap[at].id == c.ID && h.snap[at].x == c.Body.X {
		h.snap[at].lane2 = c.maneuver.TargetLane
	}
	// Keep the hot table in step: the next shard phase must see the
	// maneuver's dual-lane occupancy too.
	h.syncHot(c)
}

// seedWindow schedules every car's control step for the window opening at
// edge, on the kernel of the shard that owns the car. The cars' cached
// step closures resolve their owning shard at execution time, so seeding
// allocates nothing.
func (h *Highway) seedWindow(edge sim.Time) {
	for idx, list := range h.byShard {
		k := h.sk.Shard(idx).Kernel()
		for _, c := range list {
			k.At(edge+c.phase, c.stepFn)
		}
	}
}

// leaderFor returns the snapshot entry of the nearest car ahead of c that
// shares a lane with it, and the bumper-to-bumper gap with the leader's
// position extrapolated to now. The sorted snapshot turns the old O(n)
// fleet scan into an O(log n) search plus a short walk.
func (h *Highway) leaderFor(c *Car, now sim.Time) (*hwSnap, float64) {
	dt := (now - h.snapEdge).Seconds()
	return h.leaderScan(c, dt)
}

// leaderAt is leaderFor at the snapshot instant (no extrapolation) — the
// barrier's collision accounting view.
func (h *Highway) leaderAt(c *Car) (*hwSnap, float64) {
	return h.leaderScan(c, 0)
}

func (h *Highway) leaderScan(c *Car, dt float64) (*hwSnap, float64) {
	n := len(h.snap)
	if n < 2 {
		return nil, 0
	}
	x := c.Body.X
	at := sort.Search(n, func(i int) bool { return h.snap[i].x > x })
	for i := 0; i < n; i++ {
		e := &h.snap[(at+i)%n]
		if e.id == c.ID || !h.sharesLane(c, e) {
			continue
		}
		lx := e.x + e.speed*dt
		center := math.Mod(lx-x+2*h.cfg.Length, h.cfg.Length)
		return e, center - e.length
	}
	return nil, 0
}

func (h *Highway) sharesLane(c *Car, e *hwSnap) bool {
	for lane := 0; lane < h.cfg.Lanes; lane++ {
		if c.occupies(lane) && e.occupies(lane) {
			return true
		}
	}
	return false
}

// laneClearFor reports whether the target lane has room for c: a safe gap
// ahead and a safe gap to the first follower behind, judged against the
// snapshot.
func (h *Highway) laneClearFor(c *Car, lane int) bool {
	n := len(h.snap)
	if n < 2 {
		return true
	}
	x := c.Body.X
	aheadGap, behindGap := math.MaxFloat64, math.MaxFloat64
	var aheadSpeed, behindSpeed float64
	at := sort.Search(n, func(i int) bool { return h.snap[i].x > x })
	for i := 0; i < n; i++ {
		e := &h.snap[(at+i)%n]
		if e.id == c.ID || !e.occupies(lane) {
			continue
		}
		fwd := math.Mod(e.x-x+h.cfg.Length, h.cfg.Length)
		aheadGap = fwd - e.length
		aheadSpeed = e.speed
		break
	}
	for i := 1; i <= n; i++ {
		e := &h.snap[((at-i)%n+n)%n]
		if e.id == c.ID || !e.occupies(lane) {
			continue
		}
		back := math.Mod(x-e.x+h.cfg.Length, h.cfg.Length)
		behindGap = back - c.Body.Length
		behindSpeed = e.speed
		break
	}
	// Ahead: the desired following gap plus a closing-speed margin (the
	// maneuver takes ~3 s during which the gap shrinks by the speed
	// difference), with an absolute floor for congested low-speed traffic.
	closing := c.Body.Speed - aheadSpeed
	if closing < 0 {
		closing = 0
	}
	aheadNeed := c.params.DesiredGap(c.Body.Speed) + 4*closing
	if aheadNeed < 15 {
		aheadNeed = 15
	}
	if aheadGap < aheadNeed {
		return false
	}
	// Behind: the follower needs its own desired gap plus closing margin,
	// with an absolute floor — a fast car must never cut in overlapping a
	// slow follower just because the relative-speed term goes negative.
	need := 10 + 1.2*behindSpeed + 2*(behindSpeed-c.Body.Speed)
	if need < 12 {
		need = 12
	}
	return behindGap >= need
}

// beaconDue reports whether c broadcasts in the window containing now.
// Beacon windows are staggered by car id so the V2V load spreads evenly
// when the beacon period spans several windows.
func (h *Highway) beaconDue(c *Car, now sim.Time) bool {
	if h.cfg.V2VPeriod <= 0 {
		return false
	}
	k := int64(h.cfg.V2VPeriod / h.cfg.ControlPeriod)
	if k <= 1 {
		return true
	}
	window := int64(now / h.cfg.ControlPeriod)
	return (window+int64(c.ID))%k == 0
}

// sendBeacon broadcasts the car's cooperative state to every snapshot
// neighbor within V2V range through ONE mailbox message per beacon: the
// per-receiver fan-out happens inside the barrier drain, walking the same
// immutable snapshot the sender transmitted against (the snapshot is only
// replaced by the window hook, which runs after the drain). This keeps
// delivery order, loss draws, and counters exactly as if each receiver had
// its own message — the drain executes senders in (edge, sender) order,
// and the fan-out visits receivers in the same eachInRange order — while
// allocating one closure per beacon instead of one per receiver.
func (h *Highway) sendBeacon(shard *sim.Shard, c *Car, now sim.Time) {
	if h.medium != nil {
		h.sendBeaconRadio(shard, c, now)
		return
	}
	state := coord.CoopState{
		ID:       wireless.NodeID(c.ID),
		Pos:      wireless.Position{X: c.Body.X},
		Speed:    c.Body.Speed,
		Lane:     c.Body.Lane,
		Intent:   "cruise",
		Time:     now,
		Validity: 1,
	}
	if s := h.spec; s != nil && s.active {
		// Speculative window: buffer in the shard's own slice. The
		// exchange delivers in sender-id order — the drain order, since
		// every beacon message matures exactly at the edge.
		s.beacons[shard.Index()] = append(s.beacons[shard.Index()],
			specBeacon{from: c.ID, state: state, accel: c.Body.Accel, sentAt: now})
		return
	}
	c.pendState = state
	c.pendAccel = c.Body.Accel
	c.pendSentAt = now
	shard.Send(shard.Index(), h.sk.NextEdge(now), int64(c.ID), c.deliverFn)
}

// deliverBeacon is the barrier half of the abstract V2V path — the body of
// every car's cached deliverFn. Barrier context: single-threaded, ordered
// by (edge, sender), reading the pending-beacon fields the sender's step
// wrote in the window that just closed.
func (h *Highway) deliverBeacon(c *Car) {
	sent := false
	h.eachInRange(c, func(e *hwSnap) {
		sent = true
		to := h.cars[e.id]
		if h.jammed(c.pendSentAt) {
			h.beaconsLost++
			return
		}
		if h.cfg.Loss > 0 && to.rx.Float64() < h.cfg.Loss {
			h.beaconsLost++
			return
		}
		h.beaconsDelivered++
		to.table.Update(c.pendState)
		to.accelFrom[c.ID] = c.pendAccel
	})
	if sent {
		c.beaconsSent++
	}
}

// beacon is the payload a slot-level V2V frame carries.
type beacon struct {
	state coord.CoopState
	accel float64
}

// beaconSlotJitter spreads Medium-mode transmissions inside their window
// beyond what the control phases already do: the offset is drawn from the
// sender's own entity stream, so the slot a beacon lands in is a pure
// function of (seed, car), never of shard layout.
const beaconSlotJitter = 800 * sim.Microsecond

// sendBeaconRadio is the Medium-mode transmit path: the car describes the
// frame (slot start from its own jitter stream, clamped so the airtime
// fits the sending window) and routes it through its shard's mailbox to
// the closing barrier, where the medium resolves the whole window's
// contention at once. One Send per beacon — the same mailbox budget as
// the abstract path.
func (h *Highway) sendBeaconRadio(shard *sim.Shard, c *Car, now sim.Time) {
	state := coord.CoopState{
		ID:       wireless.NodeID(c.ID),
		Pos:      wireless.Position{X: c.Body.X},
		Speed:    c.Body.Speed,
		Lane:     c.Body.Lane,
		Intent:   "cruise",
		Time:     now,
		Validity: 1,
	}
	edge := h.sk.NextEdge(now)
	lim := edge - h.medium.Config().Airtime
	start := now + sim.Time(c.tx.Int63n(int64(beaconSlotJitter)))
	if start > lim {
		start = lim
	}
	if start < now {
		start = now // a step in the window's last airtime still sends now
	}
	// The car's persistent payload is rewritten in place: the frame is
	// consumed (resolved or discarded) at this window's edge, before the
	// next step could touch it again.
	c.payload.state = state
	c.payload.accel = c.Body.Accel
	tx := wireless.ShardedTx{
		From:    wireless.NodeID(c.ID),
		Channel: c.ID % h.cfg.Channels,
		Pos:     wireless.Position{X: c.Body.X},
		Start:   start,
		// Retry lets a carrier-sense deferral re-contend when the sensed
		// occupancy clears, up to the window's last in-window start — CSMA
		// backoff as latency, not loss.
		Retry:   lim,
		Payload: c.payload,
	}
	if s := h.spec; s != nil && s.active {
		// Speculative window: the frame joins the shard's per-arc set
		// instead of the mailbox (carrier sense is fenced to lockstep, so
		// Retry is inert here).
		s.txs[shard.Index()] = append(s.txs[shard.Index()], tx)
		return
	}
	c.pendTx = tx
	shard.Send(shard.Index(), edge, int64(c.ID), c.queueFn)
}

// initMediumCallbacks builds the Resolve callback closures once (Medium
// mode only): passing freshly created closures — or method values, which
// also allocate — per window would be the last allocation in the
// steady-state barrier.
func (h *Highway) initMediumCallbacks() {
	h.mEach = func(tx *wireless.ShardedTx, visit func(wireless.NodeID, wireless.Position)) {
		c := h.cars[int(tx.From)]
		c.beaconsSent++
		h.eachInRange(c, func(e *hwSnap) {
			visit(wireless.NodeID(e.id), wireless.Position{X: e.x})
		})
	}
	h.mDeliver = func(tx *wireless.ShardedTx, to wireless.NodeID) {
		b := tx.Payload.(*beacon)
		rc := h.cars[int(to)]
		rc.table.Update(b.state)
		rc.accelFrom[int(tx.From)] = b.accel
		h.beaconsDelivered++
	}
	h.mDrop = func(tx *wireless.ShardedTx, to wireless.NodeID, r wireless.DropReason) {
		if r != wireless.DropBusy { // deferrals never went on air
			h.beaconsLost++
		}
	}
}

// resolveMedium runs the slot-level contention resolution for the window
// closing at edge: per-receiver outcomes feed the same state tables and
// counters the abstract path feeds, and fleet-wide delivery outages feed
// the inaccessibility accounting.
func (h *Highway) resolveMedium(edge sim.Time) {
	queued := h.medium.Pending()
	h.medium.Resolve(h.mEach, h.mDeliver, h.mDrop)
	if queued == 0 {
		return // nothing attempted: no information about the channel
	}
	delivered := h.medium.Stats().Delivered
	open := edge - h.cfg.ControlPeriod
	switch {
	case delivered == h.lastDelivered && !h.inOutage:
		h.inOutage = true
		h.outageStart = open
	case delivered > h.lastDelivered && h.inOutage:
		h.inaccess.Observe(float64(open-h.outageStart) / float64(sim.Millisecond))
		h.inOutage = false
	}
	h.lastDelivered = delivered
}

// eachInRange visits the snapshot entries within ring distance V2VRange of
// c (in either direction), excluding c itself.
func (h *Highway) eachInRange(c *Car, fn func(*hwSnap)) {
	n := len(h.snap)
	if n < 2 {
		return
	}
	x := c.Body.X
	r := h.cfg.V2VRange
	if 2*r >= h.cfg.Length {
		for i := range h.snap {
			if h.snap[i].id != c.ID {
				fn(&h.snap[i])
			}
		}
		return
	}
	at := sort.Search(n, func(i int) bool { return h.snap[i].x > x })
	for i := 0; i < n-1; i++ {
		e := &h.snap[(at+i)%n]
		if e.id == c.ID {
			continue
		}
		if math.Mod(e.x-x+h.cfg.Length, h.cfg.Length) > r {
			break
		}
		fn(e)
	}
	for i := 1; i <= n-1; i++ {
		e := &h.snap[((at-i)%n+n)%n]
		if e.id == c.ID {
			continue
		}
		if math.Mod(x-e.x+h.cfg.Length, h.cfg.Length) > r {
			break
		}
		fn(e)
	}
}
