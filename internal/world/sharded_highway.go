package world

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"karyon/internal/metrics"
	"karyon/internal/sim"
	"karyon/internal/vehicle"
)

// ShardedHighwayConfig parameterizes the partitioned large-world highway.
type ShardedHighwayConfig struct {
	// Length is the ring circumference in meters.
	Length float64
	// Cars is the number of vehicles.
	Cars int
	// ControlPeriod is the per-car control step period.
	ControlPeriod sim.Time
	// BeaconPeriod is the V2V beacon quantum and the conservative
	// synchronization window: a beacon sent inside one window is delivered
	// at the window's closing edge, so it can only affect a neighboring
	// shard at least one window into the future. Must be a multiple of
	// ControlPeriod.
	BeaconPeriod sim.Time
	// V2VRange is how far a beacon reaches, in meters. It bounds the shard
	// count: each arc must be at least this long so frames never skip over
	// a whole shard.
	V2VRange float64
	// Loss is the independent per-beacon loss probability.
	Loss float64
	// SensorSigma is the per-transducer gap sensor noise (m).
	SensorSigma float64
}

// DefaultShardedHighwayConfig returns a 200-car, 10 km ring with a 100 Hz
// control loop and 10 Hz beacons.
func DefaultShardedHighwayConfig() ShardedHighwayConfig {
	return ShardedHighwayConfig{
		Length:        10000,
		Cars:          200,
		ControlPeriod: 10 * sim.Millisecond,
		BeaconPeriod:  100 * sim.Millisecond,
		V2VRange:      300,
		Loss:          0.05,
		SensorSigma:   0.3,
	}
}

// beaconInfo is the last cooperative-state beacon a car heard.
type beaconInfo struct {
	from  int
	speed float64
	at    sim.Time
	ok    bool
}

// shardedCar is one vehicle of the partitioned world. All of its mutable
// state is touched either by its own events (on the shard that owns it) or
// at the single-threaded window barrier — never by another car's in-window
// events, which is what makes the partition race-free and the output
// shard-count-invariant.
type shardedCar struct {
	id    int
	body  vehicle.Body
	shard int

	// ctrl drives perception noise; rx drives beacon loss. Two separate
	// per-car streams derived from sim.SplitSeed, so neither the shard
	// assignment nor the interleaving of other cars' events can perturb a
	// car's randomness.
	ctrl *rand.Rand
	rx   *rand.Rand

	// phase offsets the control chain inside a window; bphase the beacon.
	phase  sim.Time
	bphase sim.Time

	params vehicle.ACCParams
	lead   beaconInfo

	// Per-car counters, merged in id order at the barrier or in Result —
	// shared totals must never be touched from in-window events.
	beaconsSent     int64
	emergencyBrakes int64
}

// snapEntry is one car's published kinematic state at a window edge.
type snapEntry struct {
	id     int
	x      float64
	speed  float64
	length float64
	shard  int
}

// hwShard is one partition: the set of cars it currently owns.
type hwShard struct {
	idx  int
	cars []*shardedCar // sorted by id
}

// ShardedHighway is the intra-scenario-sharded ring highway: one large
// world partitioned into spatial arcs, each arc simulated by its own shard
// kernel, synchronized by conservative windows derived from the V2V beacon
// quantum.
//
// The model's cross-shard discipline:
//
//   - In-window events read the immutable snapshot published at the last
//     edge and mutate only their own car.
//   - Beacons flow through per-boundary mailboxes (Shard.Send) and are
//     delivered at the closing window edge, in (edge, sender) order.
//   - The window hook — single-threaded — hands cars that crossed an arc
//     boundary to their new shard, republishes the snapshot, accumulates
//     metrics in car-id order, and seeds the next window's event chains.
//
// Under that discipline the run is a pure function of (seed, config):
// byte-identical for every shard count, which TestShardedHighwayShardCount
// Invariance locks in.
type ShardedHighway struct {
	cfg    ShardedHighwayConfig
	sk     *sim.ShardedKernel
	part   RingPartition
	cars   []*shardedCar // by id
	shards []*hwShard
	snap   []snapEntry // sorted by (x, id); replaced, never mutated

	collisions       int64
	handoffs         int64
	beaconsDelivered int64
	beaconsLost      int64
	timeGaps         metrics.Histogram
	speedSum         float64
	speedN           int64
}

// NewShardedHighway builds the partitioned world over the sharded kernel.
// The kernel's window must equal cfg.BeaconPeriod — the model's lookahead
// is what justifies the window, so the two cannot drift apart.
func NewShardedHighway(sk *sim.ShardedKernel, cfg ShardedHighwayConfig) (*ShardedHighway, error) {
	if cfg.Cars < 1 {
		return nil, fmt.Errorf("world: sharded highway needs at least one car")
	}
	if cfg.ControlPeriod <= 0 || cfg.BeaconPeriod <= 0 || cfg.BeaconPeriod%cfg.ControlPeriod != 0 {
		return nil, fmt.Errorf("world: beacon period %v must be a positive multiple of control period %v",
			cfg.BeaconPeriod, cfg.ControlPeriod)
	}
	if sk.Window() != cfg.BeaconPeriod {
		return nil, fmt.Errorf("world: kernel window %v must equal the beacon period %v (the conservative lookahead)",
			sk.Window(), cfg.BeaconPeriod)
	}
	part, err := NewRingPartition(cfg.Length, sk.Shards(), cfg.V2VRange)
	if err != nil {
		return nil, err
	}
	h := &ShardedHighway{cfg: cfg, sk: sk, part: part}
	for i := 0; i < sk.Shards(); i++ {
		h.shards = append(h.shards, &hwShard{idx: i})
	}
	seed := sk.Seed()
	spacing := cfg.Length / float64(cfg.Cars)
	for i := 0; i < cfg.Cars; i++ {
		c := &shardedCar{
			id:     i,
			body:   vehicle.Body{X: float64(i) * spacing, Speed: 20, Length: 4.5},
			ctrl:   rand.New(rand.NewSource(sim.SplitSeed(seed, int64(i)*4))),
			rx:     rand.New(rand.NewSource(sim.SplitSeed(seed, int64(i)*4+1))),
			phase:  1 + sim.Time(uint64(sim.SplitSeed(seed, int64(i)*4+2))%uint64(cfg.ControlPeriod-1)),
			bphase: 1 + sim.Time(uint64(sim.SplitSeed(seed, int64(i)*4+3))%uint64(cfg.BeaconPeriod-1)),
			params: vehicle.DefaultACCParams(),
		}
		// Heterogeneous cruise speeds make platoons form behind slow cars,
		// so the sharded world exercises real car-following dynamics.
		c.params.CruiseSpeed = 24 + 8*c.ctrl.Float64()
		h.cars = append(h.cars, c)
	}
	return h, nil
}

// Start assigns cars to shards, publishes the first snapshot, seeds the
// first window's event chains, and registers the window hook.
func (h *ShardedHighway) Start() error {
	h.assignShards()
	h.publishSnapshot()
	h.seedWindow(0)
	h.sk.OnWindow(h.onWindow)
	return nil
}

// onWindow is the single-threaded barrier work at every window edge.
func (h *ShardedHighway) onWindow(edge sim.Time) {
	h.assignShards()
	h.publishSnapshot()
	h.accountMetrics()
	h.seedWindow(edge)
}

// assignShards rebuilds shard ownership from current positions, counting
// handoffs. Iteration is in car-id order so the rebuild is deterministic.
func (h *ShardedHighway) assignShards() {
	for _, s := range h.shards {
		s.cars = s.cars[:0]
	}
	for _, c := range h.cars {
		owner := h.part.ShardOf(c.body.X)
		if owner != c.shard {
			h.handoffs++
			c.shard = owner
		}
		s := h.shards[owner]
		s.cars = append(s.cars, c)
	}
}

// publishSnapshot replaces the shared snapshot with the current car
// states, sorted by (x, id). In-window events only ever read it.
func (h *ShardedHighway) publishSnapshot() {
	snap := make([]snapEntry, len(h.cars))
	for i, c := range h.cars {
		snap[i] = snapEntry{id: c.id, x: c.body.X, speed: c.body.Speed, length: c.body.Length, shard: c.shard}
	}
	sort.Slice(snap, func(i, j int) bool {
		if snap[i].x != snap[j].x {
			return snap[i].x < snap[j].x
		}
		return snap[i].id < snap[j].id
	})
	h.snap = snap
}

// accountMetrics folds per-car observations into the shared totals in
// car-id order, and detects + resolves collisions against the fresh
// snapshot.
func (h *ShardedHighway) accountMetrics() {
	for _, c := range h.cars {
		lead, gap := h.leaderOf(c.body.X, c.id)
		if lead != nil && gap <= 0 {
			h.collisions++
			// Resolve the overlap so one event is counted once, not forever.
			c.body.X = math.Mod(lead.x-lead.length-0.5+h.cfg.Length, h.cfg.Length)
			c.body.Speed = lead.speed
		} else if lead != nil && c.body.Speed > 1 {
			h.timeGaps.Observe(gap / c.body.Speed)
		}
		h.speedSum += c.body.Speed
		h.speedN++
	}
}

// seedWindow schedules every car's control chain head and beacon for the
// window opening at edge, on the kernel of the shard that owns the car.
func (h *ShardedHighway) seedWindow(edge sim.Time) {
	for _, s := range h.shards {
		k := h.sk.Shard(s.idx).Kernel()
		for _, c := range s.cars {
			c := c
			shard := h.sk.Shard(s.idx)
			k.At(edge+c.phase, func() { h.controlStep(shard, c) })
			k.At(edge+c.bphase, func() { h.beacon(shard, c) })
		}
	}
}

// leaderOf returns the snapshot entry of the nearest car ahead of position
// x (excluding self) and the bumper-to-bumper gap, or (nil, 0) when the
// snapshot holds no other car.
func (h *ShardedHighway) leaderOf(x float64, selfID int) (*snapEntry, float64) {
	n := len(h.snap)
	if n < 2 {
		return nil, 0
	}
	at := sort.Search(n, func(i int) bool { return h.snap[i].x > x })
	for i := 0; i < n; i++ {
		e := &h.snap[(at+i)%n]
		if e.id == selfID {
			continue
		}
		center := math.Mod(e.x-x+h.cfg.Length, h.cfg.Length)
		return e, center - e.length
	}
	return nil, 0
}

// controlStep runs one perceive-decide-actuate-integrate cycle for c. It
// executes on c's shard during a window: it reads the immutable snapshot
// and mutates only c.
func (h *ShardedHighway) controlStep(shard *sim.Shard, c *shardedCar) {
	now := shard.Kernel().Now()
	dt := h.cfg.ControlPeriod.Seconds()

	view := vehicle.NoLead()
	lead, gap := h.leaderOf(c.body.X, c.id)
	if lead != nil {
		// Perceive: three redundant noisy transducers over the snapshot
		// gap, fused by mid-value selection (the cheap cousin of the full
		// stack's Marzullo fusion).
		var r [3]float64
		for i := range r {
			r[i] = gap + h.cfg.SensorSigma*c.ctrl.NormFloat64()
		}
		fused := r[0] + r[1] + r[2] - math.Min(r[0], math.Min(r[1], r[2])) -
			math.Max(r[0], math.Max(r[1], r[2]))
		leadSpeed := lead.speed
		if c.lead.ok && c.lead.from == lead.id && now-c.lead.at <= 2*h.cfg.BeaconPeriod {
			// Fresh V2V beacon from the current leader beats the stale
			// snapshot speed.
			leadSpeed = c.lead.speed
		}
		view = vehicle.LeadView{Present: true, Gap: fused, Speed: leadSpeed, Accel: math.NaN(), Validity: 1}
	}

	var cmd float64
	if vehicle.EmergencyBrakeNeeded(c.params, c.body.Speed, view, 1.5) {
		c.emergencyBrakes++
		cmd = -c.params.MaxBrake
	} else {
		cmd = vehicle.ACCAccel(c.params, c.body.Speed, view)
	}
	c.body.Accel = cmd
	c.body.Step(dt)
	if c.body.X >= h.cfg.Length {
		c.body.X -= h.cfg.Length
	}

	// Self-schedule the rest of the chain while it stays inside this
	// window; the next window's head is re-seeded at the barrier on
	// whichever shard owns the car by then.
	if now%h.cfg.BeaconPeriod+h.cfg.ControlPeriod < h.cfg.BeaconPeriod {
		shard.Kernel().Schedule(h.cfg.ControlPeriod, func() { h.controlStep(shard, c) })
	}
}

// beacon broadcasts c's cooperative state to its follower through the
// mailbox: delivery lands exactly at the closing window edge, which is the
// conservative lookahead that lets shards run a whole window apart.
func (h *ShardedHighway) beacon(shard *sim.Shard, c *shardedCar) {
	now := shard.Kernel().Now()
	fol, dist := h.followerOf(c.body.X, c.id)
	if fol == nil || dist > h.cfg.V2VRange {
		return
	}
	c.beaconsSent++
	edge := h.sk.NextEdge(now)
	to := h.cars[fol.id]
	speed := c.body.Speed
	sender := int64(c.id)
	shard.Send(fol.shard, edge, sender, func() {
		// Barrier context: single-threaded, ordered by (edge, sender).
		if to.rx.Float64() < h.cfg.Loss {
			h.beaconsLost++
			return
		}
		h.beaconsDelivered++
		to.lead = beaconInfo{from: c.id, speed: speed, at: edge, ok: true}
	})
}

// followerOf returns the snapshot entry of the nearest car behind x and
// its center-to-center distance.
func (h *ShardedHighway) followerOf(x float64, selfID int) (*snapEntry, float64) {
	n := len(h.snap)
	if n < 2 {
		return nil, 0
	}
	at := sort.Search(n, func(i int) bool { return h.snap[i].x >= x })
	for i := 1; i <= n; i++ {
		e := &h.snap[((at-i)%n+n)%n]
		if e.id == selfID {
			continue
		}
		return e, math.Mod(x-e.x+h.cfg.Length, h.cfg.Length)
	}
	return nil, 0
}

// MeanSpeed returns the time-averaged fleet speed (m/s).
func (h *ShardedHighway) MeanSpeed() float64 {
	if h.speedN == 0 {
		return 0
	}
	return h.speedSum / float64(h.speedN)
}

// Flow returns the traffic flow in vehicles/hour past a point.
func (h *ShardedHighway) Flow() float64 {
	density := float64(h.cfg.Cars) / h.cfg.Length
	return h.MeanSpeed() * density * 3600
}

// Collisions returns the bumper-overlap count (the safety metric).
func (h *ShardedHighway) Collisions() int64 { return h.collisions }

// Handoffs returns how many times a car changed owning shard. It is a
// partition diagnostic, deliberately absent from Result: with one shard it
// is zero by construction, so including it would (correctly but uselessly)
// break the shard-count invariance of the output.
func (h *ShardedHighway) Handoffs() int64 { return h.handoffs }

// Result collects the structured outcome. Every value in it is a pure
// function of (seed, config) — independent of the shard count.
func (h *ShardedHighway) Result() *metrics.Result {
	var sent, ebrakes int64
	for _, c := range h.cars {
		sent += c.beaconsSent
		ebrakes += c.emergencyBrakes
	}
	res := metrics.NewResult(fmt.Sprintf("megahighway: %d cars on a %.0f m ring", h.cfg.Cars, h.cfg.Length))
	res.Record().
		Val("mean speed m/s", h.MeanSpeed(), metrics.F2).
		Val("flow veh/h", h.Flow(), metrics.F2).
		Val("min timegap s", h.timeGaps.Min(), metrics.F2).
		Val("p5 timegap s", h.timeGaps.Percentile(5), metrics.F2).
		Int("collisions", h.collisions).
		Int("emergency brakes", ebrakes).
		Int("beacons sent", sent).
		Int("beacons delivered", h.beaconsDelivered).
		Int("beacons lost", h.beaconsLost)
	return res
}
