package world

import "testing"

func TestRingPartition(t *testing.T) {
	p, err := NewRingPartition(1000, 4, 200)
	if err != nil {
		t.Fatal(err)
	}
	if p.ArcLength() != 250 {
		t.Fatalf("arc = %v", p.ArcLength())
	}
	for _, tc := range []struct {
		x    float64
		want int
	}{{0, 0}, {249.9, 0}, {250, 1}, {999.9, 3}, {1000, 0}, {-1, 3}, {1250, 1}} {
		if got := p.ShardOf(tc.x); got != tc.want {
			t.Fatalf("ShardOf(%v) = %d, want %d", tc.x, got, tc.want)
		}
	}
	if !p.Adjacent(0, 3) || !p.Adjacent(1, 2) || p.Adjacent(0, 2) {
		t.Fatal("ring adjacency wrong")
	}
	if _, err := NewRingPartition(1000, 6, 200); err == nil {
		t.Fatal("arc shorter than reach accepted")
	}
	if _, err := NewRingPartition(0, 1, 0); err == nil {
		t.Fatal("zero length accepted")
	}
	if _, err := NewRingPartition(100, 0, 0); err == nil {
		t.Fatal("zero shards accepted")
	}
}

func TestQuadrantPartition(t *testing.T) {
	p := QuadrantPartition{}
	for _, tc := range []struct {
		x, y float64
		want int
	}{{1, 1, 0}, {-1, 1, 1}, {-1, -1, 2}, {1, -1, 3}, {0, 0, 0}} {
		if got := p.ShardOf(tc.x, tc.y); got != tc.want {
			t.Fatalf("ShardOf(%v,%v) = %d, want %d", tc.x, tc.y, got, tc.want)
		}
	}
	if !p.Adjacent(0, 1) || !p.Adjacent(0, 3) || p.Adjacent(0, 2) || p.Adjacent(1, 3) {
		t.Fatal("quadrant adjacency wrong")
	}
}
