package world

import (
	"encoding/json"
	"fmt"
	"testing"

	"karyon/internal/core"
	"karyon/internal/sim"
)

// mediumHighwayConfig is the medium-backed counterpart of the invariance
// suite's config: slot-level radio on, carrier sense on, lossy channel,
// two lanes so maneuvers ride along.
func mediumHighwayConfig() HighwayConfig {
	cfg := DefaultHighwayConfig() // 2 km, 30 cars: feasible up to 8 shards
	cfg.Lanes = 2
	cfg.Medium = true
	cfg.CarrierSense = true
	cfg.Channels = 2
	cfg.Loss = 0.05
	return cfg
}

// mediumHighwayFingerprint runs a medium-backed highway with a jam burst
// whose window straddles several barriers, and serializes everything
// observable — physics, LoS, beacon accounting, slot-level medium stats,
// and the inaccessibility histogram.
func mediumHighwayFingerprint(t *testing.T, seed int64, shards int, cfg HighwayConfig, d sim.Time) string {
	t.Helper()
	h, err := BuildHighway(seed, shards, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Kernel().Shards(); got != shards {
		t.Fatalf("wanted %d shards, partition gave %d", shards, got)
	}
	// The burst lands at a barrier (Schedule always does) but its interval
	// [2.5 s, 2.85 s) straddles the next three window edges and dies
	// mid-window — the exact shape a width-dependent jam model would get
	// wrong.
	h.Schedule(2500*sim.Millisecond, func() { h.JamV2V(350 * sim.Millisecond) })
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.Run(d); err != nil {
		t.Fatal(err)
	}
	if h.Kernel().Clamped() != 0 {
		t.Fatalf("shards=%d violated the conservative contract %d times", shards, h.Kernel().Clamped())
	}
	sent, delivered, lost := h.BeaconStats()
	levels := map[core.LoS]int{}
	var xs []float64
	for _, c := range h.Cars() {
		levels[c.LoS()]++
		xs = append(xs, c.Body.X)
	}
	inacc := h.Inaccessibility()
	js, err := json.Marshal(map[string]any{
		"collisions": h.Collisions,
		"mean_speed": h.MeanSpeed(),
		"sent":       sent, "delivered": delivered, "lost": lost,
		"los1": levels[1], "los2": levels[2], "los3": levels[3],
		"positions": xs,
		"medium":    h.MediumStats(),
		"inacc_n":   inacc.Count(),
		"inacc_max": inacc.Max(),
		"events":    h.Kernel().Executed(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(js)
}

// The tentpole invariant, medium edition: the slot-level radio inside the
// sharded highway produces byte-identical output at widths 1/2/4/8.
func TestHighwayMediumShardCountInvariance(t *testing.T) {
	cfg := mediumHighwayConfig()
	dur := 10 * sim.Second
	if testing.Short() {
		dur = 4 * sim.Second
	}
	base := mediumHighwayFingerprint(t, 42, 1, cfg, dur)
	for _, shards := range []int{2, 4, 8} {
		if got := mediumHighwayFingerprint(t, 42, shards, cfg, dur); got != base {
			t.Fatalf("shards=%d changed output:\n1 shard: %s\n%d shards: %s", shards, base, shards, got)
		}
	}
	if other := mediumHighwayFingerprint(t, 43, 2, cfg, dur); other == base {
		t.Fatal("different seeds produced identical output")
	}
}

// The medium must actually carry the cooperation: beacons delivered
// through it feed the state tables, so a healthy fleet reaches LoS3 just
// as it does on the abstract path.
func TestHighwayMediumCarriesCooperation(t *testing.T) {
	cfg := DefaultHighwayConfig()
	cfg.Cars = 10
	cfg.Length = 1000
	cfg.Medium = true
	cfg.CarrierSense = true
	h, err := BuildHighway(2, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	atTop := 0
	for _, c := range h.Cars() {
		if c.LoS() == 3 {
			atTop++
		}
	}
	if atTop < len(h.Cars())/2 {
		t.Fatalf("only %d/%d cars reached LoS3 over the slot-level medium", atTop, len(h.Cars()))
	}
	st := h.MediumStats()
	if st.Sent == 0 || st.Delivered == 0 {
		t.Fatalf("medium carried nothing: %+v", st)
	}
	if h.Collisions != 0 {
		t.Fatalf("%d vehicle collisions in a nominal medium-backed run", h.Collisions)
	}
}

// Jamming the medium must force the fleet out of LoS3, record the outage
// in the inaccessibility histogram, and let the fleet recover afterwards.
func TestHighwayMediumJamForcesDowngradeAndRecovers(t *testing.T) {
	cfg := DefaultHighwayConfig()
	cfg.Cars = 8
	cfg.Length = 1000
	cfg.Medium = true
	h, err := BuildHighway(5, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	h.JamV2V(5 * sim.Second)
	if err := h.Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	for i, c := range h.Cars() {
		if c.LoS() >= 3 {
			t.Fatalf("car %d still cooperative during a medium jam", i)
		}
	}
	if err := h.Run(20 * sim.Second); err != nil {
		t.Fatal(err)
	}
	recovered := 0
	for _, c := range h.Cars() {
		if c.LoS() == 3 {
			recovered++
		}
	}
	if recovered < len(h.Cars())/2 {
		t.Fatalf("only %d cars recovered LoS3 after the jam", recovered)
	}
	if h.MediumStats().Jammed == 0 {
		t.Fatal("jam dropped no frames on the medium")
	}
	inacc := h.Inaccessibility()
	if inacc.Count() == 0 {
		t.Fatal("outage not recorded in the inaccessibility histogram")
	}
	// The recorded outage must cover (roughly) the 5 s burst.
	if max := inacc.Max(); max < 4500 || max > 6000 {
		t.Fatalf("outage duration %v ms, want ~5000", max)
	}
	if h.Collisions != 0 {
		t.Fatalf("%d collisions across the jam transition", h.Collisions)
	}
}

// A jam still raging when the run ends must appear in the
// inaccessibility histogram as an outage closed at the last window edge —
// not silently vanish — and reading it twice must not double-count.
func TestHighwayMediumOpenOutageCountedAtRunEnd(t *testing.T) {
	cfg := DefaultHighwayConfig()
	cfg.Cars = 8
	cfg.Length = 1000
	cfg.Medium = true
	h, err := BuildHighway(5, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.Run(8 * sim.Second); err != nil {
		t.Fatal(err)
	}
	h.JamV2V(5 * sim.Second) // outlives the run by 3 s
	if err := h.Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	inacc := h.Inaccessibility()
	if inacc.Count() != 1 {
		t.Fatalf("open outage not flushed: %d outages recorded", inacc.Count())
	}
	if max := inacc.Max(); max < 1500 || max > 2100 {
		t.Fatalf("flushed outage %v ms, want ~2000 (jam start to run end)", max)
	}
	if again := h.Inaccessibility(); again.Count() != 1 || again.Max() != inacc.Max() {
		t.Fatal("Inaccessibility() is not idempotent")
	}
}

// mediumIntersectionFingerprint serializes everything observable about a
// medium-backed intersection run: live-car states (including each car's
// radio belief), crossing/conflict totals, and the medium accounting.
func mediumIntersectionFingerprint(t *testing.T, seed int64, shards int, cfg IntersectionConfig, d sim.Time) string {
	t.Helper()
	w, err := BuildIntersection(seed, shards, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A jam burst injected at a barrier whose interval [40 s, 40.73 s)
	// straddles seven window edges and ends mid-window.
	w.Schedule(40*sim.Second, func() { w.JamV2V(730 * sim.Millisecond) })
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(d); err != nil {
		t.Fatal(err)
	}
	if w.Kernel().Clamped() != 0 {
		t.Fatalf("shards=%d violated the conservative contract %d times", shards, w.Kernel().Clamped())
	}
	var state []string
	for _, c := range w.cars {
		state = append(state, fmt.Sprintf("%d:%s:%.6f:%.6f:%v:%v:%v:%v",
			c.id, c.road, c.body.X, c.body.Speed, c.done, c.waited, c.lastRx, c.haveRx))
	}
	js, err := json.Marshal(map[string]any{
		"crossed_ns": w.Crossed[RoadNS],
		"crossed_ew": w.Crossed[RoadEW],
		"conflicts":  w.Conflicts,
		"wait_p95":   w.WaitTimes.Percentile(95),
		"active":     w.ActiveCars(),
		"cars":       state,
		"medium":     w.medium.Stats(),
		"events":     w.Kernel().Executed(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(js)
}

// The medium-backed intersection must be byte-identical across widths
// 1/2/4, with the light failure straddling a window barrier AND a jam
// burst straddling several more.
func TestIntersectionMediumShardCountInvariance(t *testing.T) {
	cfg := DefaultIntersectionConfig()
	cfg.Medium = true
	cfg.Loss = 0.02
	cfg.LightFailsAt = 30*sim.Second + 37*sim.Millisecond // straddles a window barrier
	dur := 80 * sim.Second
	if testing.Short() {
		dur = 50 * sim.Second
	}
	base := mediumIntersectionFingerprint(t, 42, 1, cfg, dur)
	for _, shards := range []int{2, 4} {
		if got := mediumIntersectionFingerprint(t, 42, shards, cfg, dur); got != base {
			t.Fatalf("shards=%d changed output:\n1 shard: %s\n%d shards: %s", shards, base, shards, got)
		}
	}
	if other := mediumIntersectionFingerprint(t, 43, 2, cfg, dur); other == base {
		t.Fatal("different seeds produced identical output")
	}
}

// Over the medium, a healthy light keeps traffic flowing conflict-free,
// the failure hands over to the virtual light, and a jam that silences
// the beacons makes approaching cars fail safe (treat the crossing as
// red) rather than guess.
func TestIntersectionMediumTakeoverAndJamFailSafe(t *testing.T) {
	cfg := DefaultIntersectionConfig()
	cfg.Medium = true
	cfg.LightFailsAt = 60 * sim.Second
	w, err := BuildIntersection(11, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(60 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if w.medium.Stats().Delivered == 0 {
		t.Fatal("no light beacons delivered over the medium")
	}
	before := w.Crossed[RoadNS] + w.Crossed[RoadEW]
	if before < 5 {
		t.Fatalf("only %d vehicles crossed under a healthy radio light", before)
	}
	if err := w.Run(4 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	after := w.Crossed[RoadNS] + w.Crossed[RoadEW]
	if w.Conflicts != 0 {
		t.Fatalf("%d conflicts across the virtual takeover", w.Conflicts)
	}
	if after-before < 15 {
		t.Fatalf("traffic stalled after light failure: %d crossed in 4 min", after-before)
	}
	// Jam the (virtual) channel: cars must keep failing safe.
	w.JamV2V(20 * sim.Second)
	if err := w.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if w.Conflicts != 0 {
		t.Fatalf("%d conflicts across a jam on the virtual light", w.Conflicts)
	}
}

// The retiree-compaction regression lock: a long-horizon intersection run
// must produce identical observable output with compaction on and off,
// and the live list must actually stay bounded by the traffic on the
// road rather than the spawn history.
func TestIntersectionRetireeCompactionKeepsFingerprint(t *testing.T) {
	cfg := DefaultIntersectionConfig()
	// Arrivals slow enough that the crossing capacity drains the queues:
	// the long horizon then retires most of its spawn history.
	cfg.MeanArrival = 7 * sim.Second
	dur := 10 * sim.Minute
	if testing.Short() {
		dur = 4 * sim.Minute
	}
	fingerprint := func(compact bool) (string, int, int) {
		old := compactRetirees
		compactRetirees = compact
		defer func() { compactRetirees = old }()
		w, err := BuildIntersection(9, 1, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		if err := w.Run(dur); err != nil {
			t.Fatal(err)
		}
		var state []string
		for _, c := range w.cars {
			if c.done {
				continue // live view only: retirees are summarized in Crossed/WaitTimes
			}
			state = append(state, fmt.Sprintf("%d:%s:%.6f:%.6f:%v",
				c.id, c.road, c.body.X, c.body.Speed, c.waited))
		}
		js, err := json.Marshal(map[string]any{
			"crossed_ns": w.Crossed[RoadNS],
			"crossed_ew": w.Crossed[RoadEW],
			"conflicts":  w.Conflicts,
			"wait_n":     w.WaitTimes.Count(),
			"wait_p95":   w.WaitTimes.Percentile(95),
			"wait_mean":  w.WaitTimes.Mean(),
			"active":     w.ActiveCars(),
			"cars":       state,
			"events":     w.Kernel().Executed(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return string(js), len(w.cars), w.nextID - firstCarID
	}
	compacted, live, spawned := fingerprint(true)
	uncompacted, retained, _ := fingerprint(false)
	if compacted != uncompacted {
		t.Fatalf("compaction changed observable output:\ncompacted:   %s\nuncompacted: %s", compacted, uncompacted)
	}
	if spawned < 60 {
		t.Fatalf("horizon too short to prove anything: only %d cars spawned", spawned)
	}
	if retained != spawned {
		t.Fatalf("uncompacted run should retain every spawn: %d vs %d", retained, spawned)
	}
	if live > spawned/3 {
		t.Fatalf("compaction retained %d of %d spawned cars — scans still grow with history", live, spawned)
	}
}

// Carrier sense must trade collisions for latency on a contended channel:
// with CSMA on, audible same-slot overlap is resolved by backing off to
// the instant the channel clears (retry-within-window), so collisions
// drop and retries appear. Deferred now counts only frames whose window
// could not fit a retry — backoff shows up as beacon age, not loss.
func TestHighwayMediumCarrierSenseTradesCollisionsForRetries(t *testing.T) {
	run := func(cs bool) (collisions, deferred, retries, sent int64) {
		cfg := DefaultHighwayConfig()
		cfg.Cars = 60 // dense: 33 m spacing, ~15 neighbors in range
		cfg.Length = 2000
		cfg.Medium = true
		cfg.CarrierSense = cs
		h, err := BuildHighway(11, 1, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Start(); err != nil {
			t.Fatal(err)
		}
		if err := h.Run(20 * sim.Second); err != nil {
			t.Fatal(err)
		}
		st := h.MediumStats()
		return st.Collisions, st.Deferred, st.Retries, st.Sent
	}
	bareCol, bareDef, bareRetry, _ := run(false)
	csCol, csDef, csRetry, csSent := run(true)
	if bareDef != 0 || bareRetry != 0 {
		t.Fatalf("bare medium deferred %d / retried %d frames", bareDef, bareRetry)
	}
	if bareCol == 0 {
		t.Fatal("dense bare channel produced no collisions — contention model inert")
	}
	if csRetry == 0 {
		t.Fatal("carrier sense never retried on a dense channel")
	}
	if csCol >= bareCol {
		t.Fatalf("carrier sense did not reduce collisions: %d (CSMA) vs %d (bare)", csCol, bareCol)
	}
	// Retry-within-window converts deferral loss into latency: nearly every
	// queued frame still goes on air (only retries that cannot fit before
	// the edge are dropped).
	if csSent == 0 || csDef > csSent/10 {
		t.Fatalf("retry-within-window still dropped too much: %d deferred vs %d sent", csDef, csSent)
	}
}
