package world

import (
	"fmt"
	"math"

	"karyon/internal/coord"
	"karyon/internal/core"
	"karyon/internal/gear"
	"karyon/internal/sensor"
	"karyon/internal/sim"
	"karyon/internal/vehicle"
	"karyon/internal/wireless"
)

// Car is one vehicle with its full KARYON stack, packaged as a shard-safe
// component: every piece of mutable state in it is touched either by the
// car's own events (on whichever shard currently owns the car) or at the
// single-threaded window barrier — never by another car's in-window
// events. The car reads the world only through the immutable neighbor
// snapshot published at the last window edge, and emits all cross-car
// traffic (V2V beacons) through the sharded kernel's mailboxes. That
// discipline is what lets the same car implementation run unchanged on 1
// or N shards with byte-identical output.
type Car struct {
	ID   int
	Body vehicle.Body

	// clock travels with the car across shard handoffs: the owning shard
	// sets it at the start of every event, so the stack's components
	// (sensors, state table, safety manager) always read a consistent now.
	clock *sim.ManualClock
	// rx drives beacon-loss draws; consumed in deterministic per-receiver
	// frame order (see sendBeacon for the exact discipline).
	rx *sim.Stream
	// tx drives Medium-mode slot jitter: one draw per beacon, consumed by
	// the car's own step, so the slot is independent of shard layout.
	tx *sim.Stream
	// sensorRx holds the three transducers' noise streams; the Physical
	// sensors consume them, the car keeps the handles so speculative
	// windows can checkpoint and restore the generator states.
	sensorRx [3]*sim.Stream

	// dist is the abstract *reliable* distance sensor: three redundant
	// transducers fused (Marzullo, f=1). Component redundancy is what
	// masks a permanent offset on one transducer — a fault no single
	// abstract sensor can detect (Sec. IV-B). Each transducer samples
	// truthGap, which the control step publishes from the snapshot before
	// reading.
	dist     *sensor.Reliable
	inputs   []*sensor.Abstract
	truthGap float64

	table   *coord.StateTable
	manager *core.Manager
	fn      *core.Functionality
	gate    *core.Gate
	params  vehicle.ACCParams

	// accelFrom holds the last beaconed acceleration per sender (written
	// at barriers by mailbox delivery, read by the car's own steps).
	accelFrom map[int]float64

	// est tracks the lead vehicle through the physical channel (GEAR's
	// actuation-perception loop): lead speed below LoS3, and a hidden-
	// channel cross-check of V2V claims at LoS3.
	est    *gear.LeadEstimator
	hidden *gear.HiddenChannel

	// forcedBrakeUntil implements an external hazard (campaign
	// disturbance): the driver/plant brakes hard until this instant.
	// Written only at barriers or between runs.
	forcedBrakeUntil sim.Time

	// Lane-change machinery (multi-lane highways only). The car records
	// reservation intents in its own fields; the world converts them into
	// coord.Reservations traffic at the barrier, in car-id order.
	maneuver    vehicle.Maneuver
	wantRegion  coord.Resource
	wantLane    int
	heldRegion  coord.Resource
	releaseHeld bool
	nextAttempt sim.Time

	// shard is the owning partition; phase offsets the control step inside
	// a window. stepFn is the car's cached control-step closure: it reads
	// shard at execution time, so re-seeding windows never allocates.
	shard  int
	phase  sim.Time
	stepFn func()

	// Cached mailbox closures plus the pending-beacon fields they read:
	// the car's step writes pendState/pendAccel/pendSentAt (abstract V2V)
	// or pendTx (Medium mode) and mails the cached closure, so the
	// steady-state beacon path allocates nothing. The fields are stable
	// between the send and the closing barrier — a car steps exactly once
	// per window and the drain runs before the next window is seeded.
	// payload is the car's persistent Medium-mode frame payload: boxing
	// the same pointer into pendTx.Payload avoids allocating a fresh
	// interface value per frame (the contents are consumed when the frame
	// resolves at that same window's edge, before the next step rewrites
	// them).
	deliverFn  func()
	queueFn    func()
	pendState  coord.CoopState
	pendAccel  float64
	pendSentAt sim.Time
	pendTx     wireless.ShardedTx
	payload    *beacon

	// LaneChanges counts completed maneuvers.
	LaneChanges int64
	// EmergencyBrakes counts emergency interventions.
	EmergencyBrakes int64
	// DegradedTicks counts control cycles spent in the blind fallback.
	DegradedTicks int64
	beaconsSent   int64
}

// LoS returns the car's current level of service.
func (c *Car) LoS() core.LoS { return c.fn.Current() }

// DistanceSensor exposes the first redundant transducer — the campaign's
// default injection point.
func (c *Car) DistanceSensor() *sensor.Abstract { return c.inputs[0] }

// SensorInputs exposes all redundant transducers (multi-fault campaigns).
func (c *Car) SensorInputs() []*sensor.Abstract { return c.inputs }

// FusedSensor exposes the reliable (fused) distance sensor.
func (c *Car) FusedSensor() *sensor.Reliable { return c.dist }

// Manager exposes the car's safety kernel.
func (c *Car) Manager() *core.Manager { return c.manager }

// Gate exposes the car's actuation gate.
func (c *Car) Gate() *core.Gate { return c.gate }

// ForceBrake makes the car brake hard for d (an external hazard, e.g. an
// obstacle on the road — the campaign's disturbance event). Call it at a
// window barrier (Highway.Schedule) or while the world is not running.
func (c *Car) ForceBrake(now sim.Time, d sim.Time) {
	c.forcedBrakeUntil = now + d
}

// SetCruiseSpeed changes the car's free-flow set speed (heterogeneous
// traffic in experiments: a slow truck among cars).
func (c *Car) SetCruiseSpeed(v float64) {
	if v > 0 {
		c.params.CruiseSpeed = v
	}
}

// newCar assembles the stack. Every random stream the car consumes is a
// sim.NewStream entity stream, so neither the shard assignment nor other
// cars' event interleaving can perturb it.
func newCar(seed int64, id int, x float64, cfg HighwayConfig) (*Car, error) {
	c := &Car{
		ID:        id,
		Body:      vehicle.Body{X: x, Speed: 20, Length: 4.5},
		clock:     &sim.ManualClock{},
		rx:        sim.NewStream(seed, int64(id), 3),
		tx:        sim.NewStream(seed, int64(id), 5),
		params:    vehicle.DefaultACCParams(),
		est:       gear.NewLeadEstimator(),
		accelFrom: make(map[int]float64),
		truthGap:  cfg.Length,
	}
	c.hidden = gear.NewHiddenChannel(c.est, 1.5)
	c.phase = 1 + sim.Time(uint64(sim.SplitSeed(seed, int64(id)*64+4))%uint64(cfg.ControlPeriod-1))
	truth := func(sim.Time) float64 { return c.truthGap }
	for s := 0; s < 3; s++ {
		c.sensorRx[s] = sim.NewStream(seed, int64(id), int64(s))
		phys := sensor.NewPhysicalDetached(c.clock,
			fmt.Sprintf("dist-%d-%d", id, s), truth, cfg.SensorSigma,
			c.sensorRx[s].Rand)
		fm := sensor.NewFaultManagement(16,
			sensor.RangeDetector{Min: -10, Max: cfg.Length},
			sensor.FreshnessDetector{MaxAge: 3 * cfg.ControlPeriod},
			sensor.StuckDetector{MinRepeats: 4},
			sensor.NoiseDetector{Sigma: cfg.SensorSigma, Tolerance: 5, MinWindow: 8},
		)
		c.inputs = append(c.inputs, sensor.NewAbstract(c.clock, phys, fm))
	}
	c.dist = sensor.NewReliable(c.clock, c.inputs, 4*cfg.SensorSigma+1, 1, 0.3)

	// Cooperative state table fed by V2V beacons delivered at barriers.
	c.table = coord.NewStateTable(c.clock, 500*sim.Millisecond)

	// Safety kernel: LoS ladder 1..3 with the paper's rule structure. The
	// manager is detached (clock, not kernel): the control step drives one
	// evaluation cycle per period, so the cycle travels with the car.
	ri := core.NewRuntimeInfo(c.clock)
	mgr, err := core.NewManager(c.clock, ri, core.ManagerConfig{
		Period:           cfg.ControlPeriod,
		UpgradeStability: 5,
	})
	if err != nil {
		return nil, err
	}
	fn, err := mgr.AddFunctionality("cruise", 3)
	if err != nil {
		return nil, err
	}
	if err := fn.AddRule(2, core.MinValidity("dist.validity", 0.7)); err != nil {
		return nil, err
	}
	if err := fn.AddRule(3, core.FlagSet("v2v.lead")); err != nil {
		return nil, err
	}
	if err := fn.AddRule(3, core.MaxAge("v2v.lead", 400*sim.Millisecond)); err != nil {
		return nil, err
	}
	gate, err := core.NewGate(fn, map[core.LoS]core.Envelope{
		1: core.NewEnvelope().Bound("accel", -6, 1.0),
		2: core.NewEnvelope().Bound("accel", -6, 1.5),
		3: core.NewEnvelope().Bound("accel", -6, 2.5),
	})
	if err != nil {
		return nil, err
	}
	c.manager = mgr
	c.fn = fn
	c.gate = gate
	return c, nil
}

// occupies reports whether the car currently occupies the lane: its body
// lane, plus the maneuver's target lane while a change is in progress
// (conservatively, a lane-changing car blocks both lanes).
func (c *Car) occupies(lane int) bool {
	if c.Body.Lane == lane {
		return true
	}
	return c.maneuver.Active() && c.maneuver.TargetLane == lane
}

// step runs one full perceive-assess-decide-actuate cycle. It executes on
// the owning shard during a window: it reads the immutable snapshot
// (through the highway's lookup helpers) and mutates only this car.
func (c *Car) step(h *Highway, shard *sim.Shard) {
	now := shard.Kernel().Now()
	c.clock.Set(now)
	dt := h.cfg.ControlPeriod.Seconds()

	// 1. Perceive: publish the snapshot gap as the transducers' ground
	// truth, then read the validity-annotated fused distance.
	lead, gap := h.leaderFor(c, now)
	if lead != nil {
		c.truthGap = gap
	} else {
		c.truthGap = h.cfg.Length
	}
	reading := c.dist.Read()

	// 2. Feed the Run-Time Safety Information.
	ri := c.manager.Runtime()
	ri.Set("dist.validity", reading.Validity)
	var leadState coord.CoopState
	haveV2V := false
	leadID := -1
	if lead != nil {
		leadID = lead.id
		if s, ok := c.table.Get(wireless.NodeID(lead.id)); ok && s.Validity >= 0.5 {
			leadState = s
			haveV2V = true
		}
	}
	if haveV2V {
		ri.Set("v2v.lead", 1)
	}
	switch h.cfg.Mode {
	case ModeFixed, ModeReckless:
		// The manager does not run; pin the level.
		c.fn.Force(now, h.cfg.FixedLoS)
	case ModeAdaptive:
		c.manager.Cycle()
	}

	// 3. Decide: LoS-dependent time gap.
	level := c.fn.Current()
	c.params.TimeGap = vehicle.TimeGapForLoS(level)

	view := vehicle.NoLead()
	usable := reading.Validity >= 0.3 || h.cfg.Mode == ModeReckless
	if usable {
		g := reading.Value
		// Track the lead through the physical channel (GEAR): the
		// estimator supplies lead speed below LoS3 and the hidden-channel
		// cross-check of V2V claims at LoS3.
		c.est.Update(gear.Observation{
			At:       now,
			Gap:      g,
			OwnSpeed: c.Body.Speed,
			Validity: reading.Validity,
		})
		leadSpeed := c.Body.Speed
		if s, ok := c.est.LeadSpeed(); ok {
			leadSpeed = s
		}
		view = vehicle.LeadView{
			Present:  true,
			Gap:      g,
			Speed:    leadSpeed,
			Accel:    math.NaN(),
			Validity: reading.Validity,
		}
		if level >= 3 && haveV2V {
			view.Speed = leadState.Speed
			if b, ok := c.accelFrom[leadID]; ok {
				// The hidden channel assesses the claim: a remote claim
				// physically inconsistent with the observed motion is not
				// trusted for feed-forward.
				if consistency, checked := c.hidden.AssessClaim(b); !checked || consistency >= 0.5 {
					view.Accel = b
				}
			}
		}
	} else {
		// Perception outage: the estimator's state is stale.
		c.est.Reset()
	}

	// 4. Actuate through the gate.
	var cmd float64
	switch {
	case now < c.forcedBrakeUntil:
		// External hazard: the plant brakes regardless of the controller.
		cmd = -5
	case !usable:
		// Blind: no trustworthy perception at any level. Brake hard to a
		// stop — a vehicle that cannot see must reach the unconditional
		// safe state before whatever it cannot see reaches it.
		c.DegradedTicks++
		cmd = -c.params.MaxBrake
	case vehicle.EmergencyBrakeNeeded(c.params, c.Body.Speed, view, 1.5):
		c.EmergencyBrakes++
		cmd = -c.params.MaxBrake
	default:
		cmd = vehicle.ACCAccel(c.params, c.Body.Speed, view)
	}
	if h.cfg.Mode != ModeReckless {
		cmd, _ = c.gate.Filter("accel", cmd)
	}
	c.Body.Accel = cmd

	// 5. Lane changes (multi-lane highways): decide, and advance any
	// maneuver in progress.
	if h.cfg.Lanes > 1 && h.cfg.Mode != ModeReckless && usable {
		c.maybeLaneChange(h, view, level, now)
	}
	if c.maneuver.Active() {
		if c.maneuver.Step(&c.Body, dt) {
			c.LaneChanges++
			c.releaseHeld = true
			// The leader changed with the lane: stale estimator state
			// would poison the first post-change samples.
			c.est.Reset()
		}
	}

	// 6. Integrate plant, wrap ring. The hot-state mirror republishes the
	// kinematics for the shard phase's cache-linear snapshot refresh.
	c.Body.Step(dt)
	if c.Body.X >= h.cfg.Length {
		c.Body.X -= h.cfg.Length
	}
	h.syncHot(c)

	// 7. Broadcast the cooperative state through the mailboxes: delivery
	// lands exactly at the closing window edge, the conservative lookahead
	// that lets shards run a whole window apart.
	if h.beaconDue(c, now) {
		h.sendBeacon(shard, c, now)
	}
}

// maybeLaneChange runs the overtaking decision: a slow leader ahead, a
// clear target lane, the cooperation level to coordinate, and a region
// reservation requested from the barrier arbiter.
func (c *Car) maybeLaneChange(h *Highway, view vehicle.LeadView, level core.LoS, now sim.Time) {
	if c.maneuver.Active() || c.wantRegion != "" || c.heldRegion != "" ||
		now < c.nextAttempt || level < 2 {
		return
	}
	if !view.Present || view.Gap > c.params.DesiredGap(c.Body.Speed)*1.5 {
		return
	}
	if view.Speed > c.params.CruiseSpeed-3 {
		return // leader nearly at cruise: not worth overtaking
	}
	target := c.Body.Lane + 1
	if target >= h.cfg.Lanes {
		target = c.Body.Lane - 1
	}
	if target < 0 || target == c.Body.Lane || !h.laneClearFor(c, target) {
		c.nextAttempt = now + 2*sim.Second
		return
	}
	c.nextAttempt = now + 4*sim.Second
	segments := int(h.cfg.Length / 200)
	if segments < 1 {
		segments = 1
	}
	c.wantRegion = coord.Resource(fmt.Sprintf("lc@%d", int(c.Body.X/200)%segments))
	c.wantLane = target
}
