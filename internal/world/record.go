package world

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"karyon/internal/coord"
	"karyon/internal/core"
	"karyon/internal/gear"
	"karyon/internal/sensor"
	"karyon/internal/sim"
	"karyon/internal/trace"
	"karyon/internal/vehicle"
	"karyon/internal/wireless"
)

// This file is the recording half of the record/replay layer: a trace
// writer fed from the window barrier, a width-invariant state digest,
// decision capture in the arbitration and handoff paths, and periodic
// full-state checkpoints built on the speculation machinery
// (carCheckpoint / saveCar) so any window range can later be replayed
// without re-simulating from t=0.
//
// Determinism invariants the trace leans on:
//   - every window record is a pure function of (seed, config, window):
//     identical at every shard width and speculation depth;
//   - the digest covers only width-invariant state — the stitched
//     snapshot and the behavioral counters. Cross-shard handoff counts
//     (Crossers) vary with the partition layout, so they ride the record
//     as telemetry but stay out of the digest and out of equality;
//   - output-only accumulators (time-gap and inaccessibility histograms)
//     never feed back into behavior, so checkpoints skip them: a replay
//     reproduces window records, not end-of-run aggregate reports.

// TraceSpec is the JSON header blob: everything needed to rebuild the
// recorded world from scratch and re-apply its scheduled interventions.
type TraceSpec struct {
	Scenario string        `json:"scenario"`
	Seed     int64         `json:"seed"`
	Shards   int           `json:"shards"`
	Duration sim.Time      `json:"duration"`
	Config   HighwayConfig `json:"config"`
	Jams     []JamSpec     `json:"jams,omitempty"`
	// PerturbWindow > 0 forces car 0 to brake at that window's barrier —
	// the deliberate divergence knob karyon-bisect is tested against.
	PerturbWindow uint64 `json:"perturb_window,omitempty"`
}

// JamSpec is one scheduled V2V jam burst.
type JamSpec struct {
	At    sim.Time `json:"at"`
	Burst sim.Time `json:"burst"`
}

// recorder is attached to a Highway either to write a trace (w != nil)
// or to verify a replay against one (expect != nil). Its presence pins
// the kernel to lockstep (see SpecEligible): speculative batches skip
// the per-window barrier path the recorder hooks, and lockstep is
// byte-identical to speculation by construction, so the trace loses
// nothing.
type recorder struct {
	w      *trace.Writer
	every  int // checkpoint interval in windows (0 = never)
	idx    uint64
	last   uint64 // last window digest, for the end marker
	err    error
	closed bool

	grants   []trace.Grant
	releases []trace.Release

	// expect holds the recorded windows during replay verification;
	// window i (1-based) lives at expect[i-1]. strict additionally
	// requires the width-dependent telemetry to match (same shard count
	// as the recording).
	expect []trace.WindowRecord
	strict bool

	// Checkpoint scratch, reused across checkpoints.
	enc     trace.Enc
	carEnc  trace.Enc
	ck      carCheckpoint
	mstate  *wireless.ShardedMediumState
	sortBuf []accelEntry
}

// RecordTo attaches a trace writer to the world. It must be called after
// Start and before any window has run; every subsequent window barrier
// appends one window record, plus a full state checkpoint every
// checkpointEvery windows. Call FinishRecording after the run.
func (h *Highway) RecordTo(w io.Writer, spec TraceSpec, checkpointEvery int) error {
	if h.rec != nil {
		return fmt.Errorf("world: recorder already attached")
	}
	if h.sk.Now() != 0 {
		return fmt.Errorf("world: RecordTo must be called before the first window (now=%v)", h.sk.Now())
	}
	if checkpointEvery < 0 {
		checkpointEvery = 0
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return fmt.Errorf("world: encoding trace spec: %w", err)
	}
	tw, err := trace.NewWriter(w, &trace.Header{
		Spec:            specJSON,
		Seed:            h.sk.Seed(),
		Shards:          h.sk.Shards(),
		Window:          int64(h.cfg.ControlPeriod),
		CheckpointEvery: checkpointEvery,
		Cars:            len(h.cars),
	})
	if err != nil {
		return err
	}
	h.rec = &recorder{w: tw, every: checkpointEvery}
	if spec.PerturbWindow > 0 {
		h.schedulePerturbation(spec.PerturbWindow)
	}
	return nil
}

// FinishRecording writes the end marker and flushes the trace. It
// returns the first error the recorder hit, including mid-run write
// failures that were deferred to keep the barrier path clean.
func (h *Highway) FinishRecording() error {
	r := h.rec
	if r == nil || r.w == nil {
		return fmt.Errorf("world: no recorder attached")
	}
	if r.closed {
		return r.err
	}
	r.closed = true
	if r.err == nil {
		r.err = r.w.Close(&trace.EndRecord{Windows: r.idx, Digest: r.last})
	}
	return r.err
}

// schedulePerturbation forces car 0 to brake hard for two seconds at the
// given window's barrier. Barrier actions must not touch kinematics, so
// the brake lands as a flag the next window's control steps read — the
// first divergent window of a perturbed run is therefore window+1, which
// is exactly what the bisect smoke test asserts.
func (h *Highway) schedulePerturbation(window uint64) {
	at := sim.Time(window) * h.cfg.ControlPeriod
	car := h.cars[0]
	h.Schedule(at, func() { car.ForceBrake(at, 2*sim.Second) })
}

// fnv1a64 folds one 64-bit word into an FNV-1a digest.
func fnv1a64(d, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		d ^= v & 0xFF
		d *= 1099511628211
		v >>= 8
	}
	return d
}

const fnvOffset64 = 14695981039346656037

// windowDigest hashes the width-invariant world state at a barrier: the
// stitched snapshot (position, speed, lanes per car in (x, id) order)
// and the cumulative behavioral counters. Anything that varies with the
// shard partition (ownership, handoff counts) stays out.
func (h *Highway) windowDigest() uint64 {
	d := uint64(fnvOffset64)
	for i := range h.snap {
		e := &h.snap[i]
		d = fnv1a64(d, uint64(e.id))
		d = fnv1a64(d, math.Float64bits(e.x))
		d = fnv1a64(d, math.Float64bits(e.speed))
		d = fnv1a64(d, uint64(int64(e.lane)))
		d = fnv1a64(d, uint64(int64(e.lane2)))
	}
	d = fnv1a64(d, uint64(h.Collisions))
	d = fnv1a64(d, uint64(h.beaconsDelivered))
	d = fnv1a64(d, uint64(h.beaconsLost))
	d = fnv1a64(d, math.Float64bits(h.speedSum))
	d = fnv1a64(d, uint64(h.speedN))
	return d
}

// captureGrant/captureRelease record arbitration decisions; called from
// arbitrate only when a recorder is attached.
func (h *Highway) captureGrant(c *Car, region coord.Resource) {
	h.rec.grants = append(h.rec.grants, trace.Grant{
		Car: int32(c.ID), Lane: int32(c.wantLane), Region: string(region),
	})
}

func (h *Highway) captureRelease(c *Car, region coord.Resource) {
	h.rec.releases = append(h.rec.releases, trace.Release{
		Car: int32(c.ID), Region: string(region),
	})
}

// recWindow runs at the very end of every window barrier. In record mode
// it appends the window record (and a periodic checkpoint); in verify
// mode it compares the recomputed record against the trace. Errors are
// sticky and surfaced by FinishRecording / the replay driver — the
// barrier itself never fails.
func (h *Highway) recWindow(edge sim.Time) {
	r := h.rec
	r.idx++
	wr := trace.WindowRecord{
		Index:      r.idx,
		Edge:       int64(edge),
		Digest:     h.windowDigest(),
		Collisions: h.Collisions,
		Delivered:  h.beaconsDelivered,
		Lost:       h.beaconsLost,
		Crossers:   h.Crossers,
		SpeedSum:   h.speedSum,
		SpeedN:     h.speedN,
		Grants:     r.grants,
		Releases:   r.releases,
	}
	r.last = wr.Digest
	switch {
	case r.w != nil:
		if r.err == nil {
			r.err = r.w.WriteWindow(&wr)
		}
		if r.err == nil && r.every > 0 && r.idx%uint64(r.every) == 0 {
			r.enc.Reset()
			h.encodeCheckpoint(&r.enc)
			r.err = r.w.WriteCheckpoint(&trace.CheckpointRecord{
				Index: r.idx, Edge: int64(edge), State: r.enc.Bytes(),
			})
		}
	case r.expect != nil:
		if r.err == nil {
			r.err = r.verifyWindow(&wr)
		}
	}
	r.grants = r.grants[:0]
	r.releases = r.releases[:0]
}

// verifyWindow checks one recomputed window against the recording.
func (r *recorder) verifyWindow(got *trace.WindowRecord) error {
	if got.Index > uint64(len(r.expect)) {
		return fmt.Errorf("world: replay ran past the recording (window %d of %d)", got.Index, len(r.expect))
	}
	want := &r.expect[got.Index-1]
	if !want.Same(got) {
		return &DivergenceError{Window: got.Index, Want: *want, Got: *got}
	}
	if r.strict && want.Crossers != got.Crossers {
		return &DivergenceError{Window: got.Index, Want: *want, Got: *got, TelemetryOnly: true}
	}
	return nil
}

// DivergenceError reports the first window where a replay's recomputed
// record differs from the recording. TelemetryOnly marks a mismatch
// confined to width-dependent telemetry under strict (same-width)
// verification.
type DivergenceError struct {
	Window        uint64
	Want, Got     trace.WindowRecord
	TelemetryOnly bool
}

func (e *DivergenceError) Error() string {
	kind := "state"
	if e.TelemetryOnly {
		kind = "telemetry"
	}
	return fmt.Sprintf("world: replay diverged from the recording at window %d (%s): digest %016x != %016x",
		e.Window, kind, e.Got.Digest, e.Want.Digest)
}

// encodeCheckpoint serializes the complete restorable world state: every
// car's stack (via the speculation checkpoint machinery), the behavioral
// counters, the reservation table, and the radio medium. The output-only
// histograms are deliberately absent — see the file comment.
func (h *Highway) encodeCheckpoint(e *trace.Enc) {
	r := h.rec
	e.U32(uint32(len(h.cars)))
	for _, c := range h.cars {
		saveCar(&r.ck, c)
		encodeCarCheckpoint(e, &r.ck, &r.sortBuf)
	}
	e.I64(h.Collisions)
	e.I64(h.Crossers)
	e.F64(h.speedSum)
	e.I64(h.speedN)
	e.I64(h.beaconsDelivered)
	e.I64(h.beaconsLost)
	e.I64(h.lastDelivered)
	e.Bool(h.inOutage)
	e.I64(int64(h.outageStart))
	e.I64(int64(h.jamStart))
	e.I64(int64(h.jamUntil))
	h.res.EncodeState(e)
	e.Bool(h.medium != nil)
	if h.medium != nil {
		r.mstate = h.medium.SaveState(r.mstate)
		r.mstate.EncodeState(e)
	}
}

// restoreCheckpoint rewinds a freshly built (and Started) world to a
// decoded checkpoint taken at edge: kernel warp, per-car restore, world
// counters, reservations, medium, then the same
// assignShards/publishSnapshot/seedWindow sequence SpecAbort uses so the
// next window opens exactly as it did in the recorded run. Scheduled
// actions at or before the checkpoint edge already happened inside it
// and are dropped.
func (h *Highway) restoreCheckpoint(state []byte, edge sim.Time) error {
	d := trace.NewDec(state)
	n := int(d.U32())
	if d.Err() == nil && n != len(h.cars) {
		return fmt.Errorf("world: checkpoint has %d cars, world has %d", n, len(h.cars))
	}
	if err := h.sk.Warp(edge); err != nil {
		return err
	}
	var ck carCheckpoint
	for _, c := range h.cars {
		if decodeCarCheckpoint(d, &ck); d.Err() != nil {
			return fmt.Errorf("world: decoding checkpoint: %w", d.Err())
		}
		restoreCar(&ck, c)
	}
	h.Collisions = d.I64()
	h.Crossers = d.I64()
	h.speedSum = d.F64()
	h.speedN = d.I64()
	h.beaconsDelivered = d.I64()
	h.beaconsLost = d.I64()
	h.lastDelivered = d.I64()
	h.inOutage = d.Bool()
	h.outageStart = sim.Time(d.I64())
	h.jamStart = sim.Time(d.I64())
	h.jamUntil = sim.Time(d.I64())
	h.res.DecodeState(d)
	hasMedium := d.Bool()
	if d.Err() != nil {
		return fmt.Errorf("world: decoding checkpoint: %w", d.Err())
	}
	if hasMedium != (h.medium != nil) {
		return fmt.Errorf("world: checkpoint medium presence (%v) does not match the world (%v)", hasMedium, h.medium != nil)
	}
	if h.medium != nil {
		// The checkpointed stream states cover only receivers that drew
		// randomness before the checkpoint; priming creates every
		// receiver's stream at its deterministic initial state first, so
		// the restore is exact for both populations.
		h.medium.Prime(0, wireless.NodeID(len(h.cars)-1))
		var ms wireless.ShardedMediumState
		ms.DecodeState(d)
		if d.Err() != nil {
			return fmt.Errorf("world: decoding checkpoint: %w", d.Err())
		}
		h.medium.RestoreState(&ms)
	}
	if d.Err() != nil {
		return fmt.Errorf("world: decoding checkpoint: %w", d.Err())
	}
	h.dropPendingThrough(edge)
	h.assignShards()
	h.publishSnapshot(edge)
	h.seedWindow(edge)
	return nil
}

// dropPendingThrough removes scheduled barrier actions that already ran
// inside the restored checkpoint (runPending executes at <= edge).
func (h *Highway) dropPendingThrough(edge sim.Time) {
	kept := h.pending[:0]
	for _, s := range h.pending {
		if s.at > edge {
			kept = append(kept, s)
		}
	}
	h.pending = kept
}

// encodeCarCheckpoint writes one car's checkpoint in a fixed field
// order. The accel inbox comes out of a map, so it is sorted by sender.
func encodeCarCheckpoint(e *trace.Enc, ck *carCheckpoint, sortBuf *[]accelEntry) {
	e.F64(ck.body.X)
	e.I64(int64(ck.body.Lane))
	e.F64(ck.body.Speed)
	e.F64(ck.body.Accel)
	e.F64(ck.body.Length)
	e.I64(int64(ck.clockAt))
	e.U64(ck.rx)
	e.U64(ck.tx)
	for _, s := range ck.sensorRx {
		e.U64(s)
	}
	for i := range ck.phys {
		ck.phys[i].EncodeState(e)
	}
	for _, fm := range ck.fm {
		fm.EncodeState(e)
	}
	ck.dist.EncodeState(e)
	ck.table.EncodeState(e)
	ck.mgr.EncodeState(e)
	ck.gate.EncodeState(e)
	ck.est.EncodeState(e)
	e.I64(ck.hChecks)
	e.I64(ck.hDisagr)
	e.F64(ck.truthGap)
	e.F64(ck.params.TimeGap)
	e.F64(ck.params.StandStill)
	e.F64(ck.params.GapGain)
	e.F64(ck.params.SpeedGain)
	e.F64(ck.params.CruiseSpeed)
	e.F64(ck.params.MaxAccel)
	e.F64(ck.params.MaxBrake)
	*sortBuf = append((*sortBuf)[:0], ck.accelFrom...)
	sort.Slice(*sortBuf, func(i, j int) bool { return (*sortBuf)[i].from < (*sortBuf)[j].from })
	e.U32(uint32(len(*sortBuf)))
	for _, a := range *sortBuf {
		e.I64(int64(a.from))
		e.F64(a.accel)
	}
	e.I64(int64(ck.forcedBrakeUntil))
	ck.maneuver.EncodeState(e)
	e.Str(string(ck.wantRegion))
	e.I64(int64(ck.wantLane))
	e.Str(string(ck.heldRegion))
	e.Bool(ck.releaseHeld)
	e.I64(int64(ck.nextAttempt))
	e.I64(ck.laneChanges)
	e.I64(ck.emergencyBrakes)
	e.I64(ck.degradedTicks)
	e.I64(ck.beaconsSent)
}

// decodeCarCheckpoint reads one car's checkpoint into ck, allocating the
// nested state objects on first use.
func decodeCarCheckpoint(d *trace.Dec, ck *carCheckpoint) {
	ck.body.X = d.F64()
	ck.body.Lane = int(d.I64())
	ck.body.Speed = d.F64()
	ck.body.Accel = d.F64()
	ck.body.Length = d.F64()
	ck.clockAt = sim.Time(d.I64())
	ck.rx = d.U64()
	ck.tx = d.U64()
	for i := range ck.sensorRx {
		ck.sensorRx[i] = d.U64()
	}
	for i := range ck.phys {
		ck.phys[i].DecodeState(d)
	}
	for i := range ck.fm {
		if ck.fm[i] == nil {
			ck.fm[i] = &sensor.FaultManagementState{}
		}
		ck.fm[i].DecodeState(d)
	}
	if ck.dist == nil {
		ck.dist = &sensor.ReliableState{}
	}
	ck.dist.DecodeState(d)
	if ck.table == nil {
		ck.table = &coord.StateTableState{}
	}
	ck.table.DecodeState(d)
	if ck.mgr == nil {
		ck.mgr = &core.ManagerState{}
	}
	ck.mgr.DecodeState(d)
	ck.gate = core.DecodeGateState(d)
	ck.est = gear.LeadEstimator{}
	ck.est.DecodeState(d)
	ck.hChecks = d.I64()
	ck.hDisagr = d.I64()
	ck.truthGap = d.F64()
	ck.params.TimeGap = d.F64()
	ck.params.StandStill = d.F64()
	ck.params.GapGain = d.F64()
	ck.params.SpeedGain = d.F64()
	ck.params.CruiseSpeed = d.F64()
	ck.params.MaxAccel = d.F64()
	ck.params.MaxBrake = d.F64()
	ck.accelFrom = ck.accelFrom[:0]
	for i, n := 0, d.Count(16); i < n && d.Err() == nil; i++ {
		ck.accelFrom = append(ck.accelFrom, accelEntry{from: int(d.I64()), accel: d.F64()})
	}
	ck.forcedBrakeUntil = sim.Time(d.I64())
	ck.maneuver = vehicle.Maneuver{}
	ck.maneuver.DecodeState(d)
	ck.wantRegion = coord.Resource(d.Str())
	ck.wantLane = int(d.I64())
	ck.heldRegion = coord.Resource(d.Str())
	ck.releaseHeld = d.Bool()
	ck.nextAttempt = sim.Time(d.I64())
	ck.laneChanges = d.I64()
	ck.emergencyBrakes = d.I64()
	ck.degradedTicks = d.I64()
	ck.beaconsSent = d.I64()
}
