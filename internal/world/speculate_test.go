package world

import (
	"encoding/json"
	"testing"

	"karyon/internal/core"
	"karyon/internal/sim"
)

// specHighwayConfig is the invariance-suite config with speculation on:
// two lanes (maneuver intents force real aborts), lossy channel (the
// per-receiver streams must survive replay).
func specHighwayConfig(depth int) HighwayConfig {
	cfg := DefaultHighwayConfig()
	cfg.Lanes = 2
	cfg.Loss = 0.1
	cfg.SpecDepth = depth
	return cfg
}

// specMediumConfig is the medium-backed counterpart. Carrier sense stays
// off: CSMA worlds are fenced to lockstep (SpecEligible).
func specMediumConfig(depth int) HighwayConfig {
	cfg := DefaultHighwayConfig()
	cfg.Lanes = 2
	cfg.Medium = true
	cfg.Channels = 2
	cfg.Loss = 0.05
	cfg.SpecDepth = depth
	return cfg
}

// specFingerprint runs a highway and serializes everything observable
// about the *simulation output* — pure of execution strategy, so a
// speculative run must produce the same bytes as a lockstep run. Medium
// strategy counters (ResolvedLocal/ResolvedBoundary) legitimately vary
// with shard count and depth and are zeroed before marshalling.
func specFingerprint(t *testing.T, seed int64, shards int, cfg HighwayConfig, d sim.Time) (string, sim.SpecStats) {
	t.Helper()
	h, err := BuildHighway(seed, shards, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Medium {
		// A jam burst straddling window edges, scheduled at a barrier —
		// also a speculation fence the planner must respect.
		h.Schedule(2500*sim.Millisecond, func() { h.JamV2V(350 * sim.Millisecond) })
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.Run(d); err != nil {
		t.Fatal(err)
	}
	if h.Kernel().Clamped() != 0 {
		t.Fatalf("shards=%d depth=%d violated the conservative contract %d times",
			shards, cfg.SpecDepth, h.Kernel().Clamped())
	}
	sent, delivered, lost := h.BeaconStats()
	levels := map[core.LoS]int{}
	var ebrakes, changes int64
	var xs []float64
	for _, c := range h.Cars() {
		levels[c.LoS()]++
		ebrakes += c.EmergencyBrakes
		changes += c.LaneChanges
		xs = append(xs, c.Body.X)
	}
	medium := h.MediumStats()
	medium.ResolvedLocal = 0
	medium.ResolvedBoundary = 0
	inacc := h.Inaccessibility()
	js, err := json.Marshal(map[string]any{
		"collisions": h.Collisions,
		"mean_speed": h.MeanSpeed(),
		"flow":       h.Flow(),
		"min_gap":    h.TimeGaps.Min(),
		"p5_gap":     h.TimeGaps.Percentile(5),
		"sent":       sent, "delivered": delivered, "lost": lost,
		"los1": levels[1], "los2": levels[2], "los3": levels[3],
		"ebrakes": ebrakes, "lane_changes": changes,
		"positions": xs,
		"crossers":  h.Crossers,
		"medium":    medium,
		"inacc_n":   inacc.Count(),
		"inacc_max": inacc.Max(),
		"events":    h.Kernel().Executed(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(js), h.SpecStats()
}

// The tentpole invariant: speculation changes wall time, never output.
// Byte-identity of speculative vs lockstep runs at widths 1/2/4/8, on
// the abstract beacon path.
func TestHighwaySpeculationMatchesLockstep(t *testing.T) {
	dur := 10 * sim.Second
	if testing.Short() {
		dur = 4 * sim.Second
	}
	var speculated bool
	for _, shards := range []int{1, 2, 4, 8} {
		base, _ := specFingerprint(t, 42, shards, specHighwayConfig(0), dur)
		got, st := specFingerprint(t, 42, shards, specHighwayConfig(8), dur)
		if got != base {
			t.Fatalf("shards=%d: speculation changed output:\nlockstep: %s\nspec:     %s", shards, base, got)
		}
		if st.Commits > 0 {
			speculated = true
		}
		if st.WindowsReplayed != st.WindowsAborted {
			t.Fatalf("shards=%d: replayed %d of %d aborted windows", shards, st.WindowsReplayed, st.WindowsAborted)
		}
	}
	if !speculated {
		t.Fatal("no speculative batch ever committed — the path under test never ran")
	}
}

// Medium edition: per-arc radio resolution inside speculative windows must
// reproduce the lockstep Resolve byte for byte — same deliveries, same
// loss draws, same jam and outage accounting — at every width.
func TestHighwayMediumSpeculationMatchesLockstep(t *testing.T) {
	dur := 10 * sim.Second
	if testing.Short() {
		dur = 4 * sim.Second
	}
	var speculated bool
	for _, shards := range []int{1, 2, 4, 8} {
		base, _ := specFingerprint(t, 42, shards, specMediumConfig(0), dur)
		got, st := specFingerprint(t, 42, shards, specMediumConfig(8), dur)
		if got != base {
			t.Fatalf("shards=%d: medium speculation changed output:\nlockstep: %s\nspec:     %s", shards, base, got)
		}
		if st.Commits > 0 {
			speculated = true
		}
	}
	if !speculated {
		t.Fatal("no speculative batch ever committed — the path under test never ran")
	}
}

// Carrier-sense worlds must fence to lockstep (and still match their own
// lockstep output trivially): the whole window's frame set contends in
// one ordered pass, which per-arc resolution cannot reproduce.
func TestHighwaySpeculationCarrierSenseFencesToLockstep(t *testing.T) {
	cfg := specMediumConfig(8)
	cfg.CarrierSense = true
	h, err := BuildHighway(42, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.Run(3 * sim.Second); err != nil {
		t.Fatal(err)
	}
	st := h.SpecStats()
	if st.Batches != 0 {
		t.Fatalf("carrier-sense world speculated %d batches", st.Batches)
	}
	if st.Fences == 0 {
		t.Fatal("expected the planner to record fences")
	}
}

// The abort-and-replay property: a conflict forced at ANY window must
// leave the committed output byte-identical to straight-line execution.
// Conflicts are injected through the test hook at varying cadences and
// offsets, across widths and both beacon paths.
func TestHighwaySpeculationForcedAbortByteIdentical(t *testing.T) {
	dur := 6 * sim.Second
	if testing.Short() {
		dur = 3 * sim.Second
	}
	cases := []struct {
		name   string
		cfg    func(depth int) HighwayConfig
		shards int
		every  sim.Time // force a conflict at edges that are multiples of this
		offset sim.Time
	}{
		{"abstract/w2/every5", specHighwayConfig, 2, 500 * sim.Millisecond, 0},
		{"abstract/w4/every7", specHighwayConfig, 4, 700 * sim.Millisecond, 300 * sim.Millisecond},
		{"abstract/w8/every3", specHighwayConfig, 8, 300 * sim.Millisecond, 100 * sim.Millisecond},
		{"medium/w2/every5", specMediumConfig, 2, 500 * sim.Millisecond, 0},
		{"medium/w4/every4", specMediumConfig, 4, 400 * sim.Millisecond, 200 * sim.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base, _ := specFingerprint(t, 42, tc.shards, tc.cfg(0), dur)
			specForceConflict = func(edge sim.Time) bool {
				return (edge-tc.offset)%tc.every == 0
			}
			defer func() { specForceConflict = nil }()
			got, st := specFingerprint(t, 42, tc.shards, tc.cfg(8), dur)
			if got != base {
				t.Fatalf("forced aborts changed output:\nlockstep: %s\nspec:     %s", base, got)
			}
			if st.Aborts == 0 {
				t.Fatal("conflict injection never fired — the abort path went untested")
			}
			if st.WindowsReplayed != st.WindowsAborted {
				t.Fatalf("replayed %d of %d aborted windows", st.WindowsReplayed, st.WindowsAborted)
			}
		})
	}
}

// Speculation composes with the snapshot-sync debug assertion: the
// exchange must leave the stitched snapshot consistent at every window.
func TestHighwaySpeculationSnapshotSync(t *testing.T) {
	debugSnapshotSync = true
	defer func() { debugSnapshotSync = false }()
	_, st := specFingerprint(t, 42, 4, specHighwayConfig(8), 3*sim.Second)
	if st.Commits == 0 {
		t.Fatal("no speculative batch committed under the sync assertion")
	}
}
