package world

import (
	"fmt"
	"math"

	"karyon/internal/coord"
	"karyon/internal/metrics"
	"karyon/internal/sim"
	"karyon/internal/vehicle"
	"karyon/internal/wireless"
)

// Road identifies an approach direction at the intersection.
type Road int

// The two crossing roads.
const (
	RoadNS Road = iota + 1
	RoadEW
)

// String renders the road.
func (r Road) String() string {
	if r == RoadNS {
		return "NS"
	}
	return "EW"
}

// lightBeacon is the physical traffic light's periodic broadcast: the
// paper's "I-am-alive messages" with the current phase and its remaining
// duration attached (the remaining time is what lets vehicles refuse to
// enter when they cannot clear before the phase flips).
type lightBeacon struct {
	State coord.LightState
}

// IntersectionConfig parameterizes the scenario.
type IntersectionConfig struct {
	// ApproachLength is how far from the stop line cars spawn.
	ApproachLength float64
	// BoxLength is the conflict zone's extent past the stop line.
	BoxLength float64
	// MeanArrival is the mean inter-arrival time per road.
	MeanArrival sim.Time
	// GreenFor is each phase's green duration.
	GreenFor sim.Time
	// LightFailsAt is when the physical light stops transmitting
	// (0 = never fails).
	LightFailsAt sim.Time
	// VirtualBackup engages the virtual-traffic-light fallback.
	VirtualBackup bool
	// ControlPeriod is the per-car control loop period.
	ControlPeriod sim.Time
	// AliveTimeout is the silence after which cars declare the physical
	// light dead.
	AliveTimeout sim.Time
	// HandoverGuard is an all-red guard period between declaring the
	// physical light dead and obeying the virtual one, so a stale green
	// belief and the (unsynchronized) virtual phase can never admit
	// crossing traffic simultaneously.
	HandoverGuard sim.Time
}

// DefaultIntersectionConfig returns the E13 scenario parameters.
func DefaultIntersectionConfig() IntersectionConfig {
	return IntersectionConfig{
		ApproachLength: 300,
		BoxLength:      12,
		MeanArrival:    3 * sim.Second,
		GreenFor:       8 * sim.Second,
		LightFailsAt:   0,
		VirtualBackup:  true,
		ControlPeriod:  100 * sim.Millisecond,
		AliveTimeout:   500 * sim.Millisecond,
		HandoverGuard:  sim.Second,
	}
}

// icar is one vehicle approaching the intersection. Position is measured
// along its road: x grows toward the stop line at x=0; the conflict box is
// (0, BoxLength]; past BoxLength the car has cleared.
type icar struct {
	id    wireless.NodeID
	road  Road
	body  vehicle.Body
	radio *wireless.Radio
	vnode *coord.VNodeHost
	// lightHeard is when an I-am-alive beacon was last received.
	lightHeard sim.Time
	lightState coord.LightState
	haveLight  bool
	spawned    sim.Time
	// waited accumulates time at (near) standstill.
	waited sim.Time
	done   bool
	ticker *sim.Ticker
}

// Intersection is the crossing-roads world.
type Intersection struct {
	cfg    IntersectionConfig
	kernel *sim.Kernel
	medium *wireless.Medium

	cars   []*icar
	nextID wireless.NodeID

	lightAlive bool
	lightState coord.LightState
	lightTick  *sim.Ticker

	// Crossed counts vehicles that cleared the box, per road.
	Crossed map[Road]int64
	// Conflicts counts instants with vehicles from both roads inside the
	// box — the safety metric that must stay zero.
	Conflicts int64
	// WaitTimes collects per-vehicle waiting durations (s).
	WaitTimes metrics.Histogram
	// DeadTime accumulates time with neither physical nor virtual control
	// observed by an approaching car.
	tickers []*sim.Ticker
}

// NewIntersection builds the world.
func NewIntersection(kernel *sim.Kernel, cfg IntersectionConfig) (*Intersection, error) {
	if cfg.ApproachLength <= 0 || cfg.BoxLength <= 0 {
		return nil, fmt.Errorf("world: invalid intersection geometry")
	}
	if cfg.MeanArrival <= 0 || cfg.ControlPeriod <= 0 || cfg.GreenFor <= 0 {
		return nil, fmt.Errorf("world: invalid intersection timing")
	}
	w := &Intersection{
		cfg:        cfg,
		kernel:     kernel,
		medium:     wireless.NewMedium(kernel, wireless.DefaultConfig()),
		lightAlive: true,
		lightState: coord.LightState{Phase: coord.PhaseNSGreen, Remaining: cfg.GreenFor},
		Crossed:    map[Road]int64{},
		nextID:     100,
	}
	return w, nil
}

// Medium exposes the wireless medium.
func (w *Intersection) Medium() *wireless.Medium { return w.medium }

// LightAlive reports whether the physical light is transmitting.
func (w *Intersection) LightAlive() bool { return w.lightAlive }

// Start launches the light, arrivals, and the conflict monitor.
func (w *Intersection) Start() error {
	// Physical light: advance phase and broadcast I-am-alive + phase.
	lightRadio, err := w.medium.Attach(1, wireless.Position{})
	if err != nil {
		return err
	}
	period := 100 * sim.Millisecond
	lt, err := w.kernel.Every(period, func() {
		machine := coord.TrafficLightMachine{GreenFor: w.cfg.GreenFor}
		if st, ok := machine.Advance(w.lightState, period).(coord.LightState); ok {
			w.lightState = st
		}
		if w.lightAlive {
			lightRadio.Broadcast(lightBeacon{State: w.lightState})
		}
	})
	if err != nil {
		return err
	}
	w.lightTick = lt
	w.tickers = append(w.tickers, lt)
	if w.cfg.LightFailsAt > 0 {
		w.kernel.At(w.cfg.LightFailsAt, func() { w.lightAlive = false })
	}

	// Arrivals on both roads.
	for _, road := range []Road{RoadNS, RoadEW} {
		road := road
		w.scheduleArrival(road)
	}

	// Conflict monitor: sample the box every control period.
	mt, err := w.kernel.Every(w.cfg.ControlPeriod, w.monitor)
	if err != nil {
		return err
	}
	w.tickers = append(w.tickers, mt)
	return nil
}

// Stop halts all activity.
func (w *Intersection) Stop() {
	for _, t := range w.tickers {
		t.Stop()
	}
	for _, c := range w.cars {
		if c.vnode != nil {
			c.vnode.Stop()
		}
	}
}

func (w *Intersection) scheduleArrival(road Road) {
	gap := sim.Time(w.kernel.Rand().ExpFloat64() * float64(w.cfg.MeanArrival))
	w.kernel.Schedule(gap, func() {
		w.spawn(road)
		w.scheduleArrival(road)
	})
}

// pos2D maps a car's road coordinate into the plane (stop line at origin).
func pos2D(road Road, x float64, approach float64) wireless.Position {
	d := approach - x // distance remaining to the stop line
	if road == RoadNS {
		return wireless.Position{Y: -d}
	}
	return wireless.Position{X: -d}
}

func (w *Intersection) spawn(road Road) {
	id := w.nextID
	w.nextID++
	radio, err := w.medium.Attach(id, pos2D(road, 0, w.cfg.ApproachLength))
	if err != nil {
		return
	}
	c := &icar{
		id:      id,
		road:    road,
		body:    vehicle.Body{Speed: 15, Length: 4.5},
		radio:   radio,
		spawned: w.kernel.Now(),
		// Assume alive until proven otherwise to avoid a spurious virtual
		// takeover before the first beacon arrives.
		lightHeard: w.kernel.Now(),
	}
	if w.cfg.VirtualBackup {
		vn, err := coord.NewVNodeHost(w.kernel, radio,
			coord.TrafficLightMachine{GreenFor: w.cfg.GreenFor},
			coord.VNodeConfig{
				Region:        wireless.Position{},
				Radius:        w.cfg.ApproachLength + 50,
				Period:        100 * sim.Millisecond,
				LeaderTimeout: 400 * sim.Millisecond,
			},
			radio.Position)
		if err == nil {
			c.vnode = vn
		}
	}
	radio.OnReceive(func(f wireless.Frame) {
		switch p := f.Payload.(type) {
		case lightBeacon:
			c.lightHeard = w.kernel.Now()
			c.lightState = p.State
			c.haveLight = true
		default:
			if c.vnode != nil {
				c.vnode.OnFrame(f)
			}
		}
	})
	if c.vnode != nil {
		if err := c.vnode.Start(); err != nil {
			c.vnode = nil
		}
	}
	w.cars = append(w.cars, c)
	t, err := w.kernel.Every(w.cfg.ControlPeriod, func() { w.drive(c) })
	if err == nil {
		c.ticker = t
		w.tickers = append(w.tickers, t)
	}
}

// authority returns c's current belief about the light state, advanced to
// now, and whether any control authority exists.
func (w *Intersection) authority(c *icar) (coord.LightState, bool) {
	now := w.kernel.Now()
	physicalFresh := now-c.lightHeard <= w.cfg.AliveTimeout && c.haveLight
	// Handover guard: a car that once obeyed the physical light holds an
	// all-red belief until the guard expires, so its possibly stale green
	// can never coexist with the virtual light's unsynchronized phase.
	inGuard := c.haveLight && !physicalFresh &&
		now-c.lightHeard <= w.cfg.AliveTimeout+w.cfg.HandoverGuard
	switch {
	case physicalFresh:
		// Advance the received state by its age.
		machine := coord.TrafficLightMachine{GreenFor: w.cfg.GreenFor}
		st, ok := machine.Advance(c.lightState, now-c.lightHeard).(coord.LightState)
		if !ok {
			return coord.LightState{}, false
		}
		return st, true
	case inGuard:
		return coord.LightState{}, false
	case c.vnode != nil:
		st, live := c.vnode.State()
		if !live {
			return coord.LightState{}, false
		}
		ls, ok := st.(coord.LightState)
		if !ok {
			return coord.LightState{}, false
		}
		return ls, true
	default:
		// Light dead, no backup: fail safe — nobody enters. (Human
		// drivers would negotiate; an autonomous system must not guess.)
		return coord.LightState{}, false
	}
}

// mayEnter reports whether c may cross the stop line now: its road must be
// green AND the remaining green must cover the time it needs to clear the
// conflict box (the clearance rule a yellow phase implements in reality).
func (w *Intersection) mayEnter(c *icar) bool {
	st, ok := w.authority(c)
	if !ok {
		return false
	}
	green := (c.road == RoadNS && st.Phase == coord.PhaseNSGreen) ||
		(c.road == RoadEW && st.Phase == coord.PhaseEWGreen)
	if !green {
		return false
	}
	distToClear := (w.cfg.ApproachLength + w.cfg.BoxLength + c.body.Length) - c.body.X
	needed := sim.FromSeconds(timeToCover(c.body.Speed, distToClear) + 1.0)
	return st.Remaining > needed
}

// Crossing dynamics shared by the entry estimate and the actual drive.
const (
	crossAccel = 2.5 // m/s^2
	crossSpeed = 15  // m/s
)

// timeToCover returns the time to cover dist starting at speed v, with
// acceleration crossAccel capped at crossSpeed — the exact kinematics the
// drive loop applies, so the clearance estimate cannot be optimistic.
func timeToCover(v, dist float64) float64 {
	if dist <= 0 {
		return 0
	}
	if v >= crossSpeed {
		return dist / crossSpeed
	}
	// Accelerate until crossSpeed or until the distance is covered.
	tAcc := (crossSpeed - v) / crossAccel
	dAcc := v*tAcc + 0.5*crossAccel*tAcc*tAcc
	if dAcc >= dist {
		// dist = v t + a/2 t^2 → t = (-v + sqrt(v^2 + 2 a d)) / a
		return (-v + math.Sqrt(v*v+2*crossAccel*dist)) / crossAccel
	}
	return tAcc + (dist-dAcc)/crossSpeed
}

// drive advances one car: approach, stop at the line on red, cross on
// green, clear.
func (w *Intersection) drive(c *icar) {
	if c.done {
		return
	}
	dt := w.cfg.ControlPeriod.Seconds()
	stopLine := w.cfg.ApproachLength
	pastLine := c.body.X - stopLine // >0 once inside the box

	switch {
	case pastLine >= 0:
		// Committed: clear the box briskly.
		c.body.Accel = crossAccel
		if c.body.Speed > crossSpeed {
			c.body.Accel = 0
		}
	case w.mayEnter(c) && w.gapAhead(c) > 8:
		c.body.Accel = crossAccel
		if c.body.Speed > crossSpeed {
			c.body.Accel = 0
		}
	default:
		// Decelerate to stop exactly at the line (or behind the car
		// ahead).
		target := stopLine - 1
		if g := w.gapAhead(c); g < target-c.body.X {
			target = c.body.X + g - 2
		}
		remaining := target - c.body.X
		if remaining <= 0.5 {
			c.body.Accel = -6
		} else {
			// v^2 = 2 a s: brake to stop within the remaining distance.
			need := c.body.Speed * c.body.Speed / (2 * remaining)
			if need > 0.5 {
				c.body.Accel = -need
			} else {
				c.body.Accel = 0.5 // creep forward
			}
		}
	}
	if c.body.Speed < 0.5 {
		c.waited += w.cfg.ControlPeriod
	}
	c.body.Step(dt)
	c.radio.SetPosition(pos2D(c.road, c.body.X, w.cfg.ApproachLength))

	if c.body.X >= stopLine+w.cfg.BoxLength+c.body.Length {
		c.done = true
		w.Crossed[c.road]++
		w.WaitTimes.Observe(c.waited.Seconds())
		if c.vnode != nil {
			c.vnode.Stop()
		}
		if c.ticker != nil {
			c.ticker.Stop()
		}
		w.medium.Detach(c.id)
	}
}

// gapAhead returns the distance to the rear bumper of the nearest car
// ahead on the same road (a large number when free).
func (w *Intersection) gapAhead(c *icar) float64 {
	best := math.MaxFloat64
	for _, o := range w.cars {
		if o == c || o.done || o.road != c.road {
			continue
		}
		d := o.body.X - o.body.Length - c.body.X
		if d > 0 && d < best {
			best = d
		}
	}
	return best
}

// monitor samples the conflict box.
func (w *Intersection) monitor() {
	inBox := map[Road]bool{}
	stopLine := w.cfg.ApproachLength
	for _, c := range w.cars {
		if c.done {
			continue
		}
		front := c.body.X
		rear := c.body.X - c.body.Length
		if front > stopLine && rear < stopLine+w.cfg.BoxLength {
			inBox[c.road] = true
		}
	}
	if inBox[RoadNS] && inBox[RoadEW] {
		w.Conflicts++
	}
}

// ActiveCars returns how many cars are still approaching or crossing.
func (w *Intersection) ActiveCars() int {
	n := 0
	for _, c := range w.cars {
		if !c.done {
			n++
		}
	}
	return n
}
