package world

import (
	"context"
	"fmt"
	"math"
	"sort"

	"karyon/internal/coord"
	"karyon/internal/metrics"
	"karyon/internal/sim"
	"karyon/internal/vehicle"
	"karyon/internal/wireless"
)

// Road identifies an approach direction at the intersection.
type Road int

// The two crossing roads.
const (
	RoadNS Road = iota + 1
	RoadEW
)

// String renders the road.
func (r Road) String() string {
	if r == RoadNS {
		return "NS"
	}
	return "EW"
}

// IntersectionConfig parameterizes the scenario.
type IntersectionConfig struct {
	// ApproachLength is how far from the stop line cars spawn.
	ApproachLength float64
	// BoxLength is the conflict zone's extent past the stop line.
	BoxLength float64
	// MeanArrival is the mean inter-arrival time per road.
	MeanArrival sim.Time
	// GreenFor is each phase's green duration.
	GreenFor sim.Time
	// LightFailsAt is when the physical light stops transmitting
	// (0 = never fails).
	LightFailsAt sim.Time
	// VirtualBackup engages the virtual-traffic-light fallback.
	VirtualBackup bool
	// ControlPeriod is the per-car control loop period; it is also the
	// sharded kernel's window and the light's I-am-alive beacon period.
	ControlPeriod sim.Time
	// AliveTimeout is the silence after which cars declare the physical
	// light dead.
	AliveTimeout sim.Time
	// HandoverGuard is an all-red guard period between declaring the
	// physical light dead and obeying the virtual one, so a stale green
	// belief and the (unsynchronized) virtual phase can never admit
	// crossing traffic simultaneously.
	HandoverGuard sim.Time
	// Medium routes the light's I-am-alive beacons through the slot-level
	// sharded radio (wireless.ShardedMedium) instead of the analytic
	// on-grid model: each beacon occupies airtime on the plane around the
	// stop line, can be lost or jammed per receiver, and every car's
	// liveness belief comes from its own last reception. The virtual
	// light's replica channel stays analytic (it models a replicated
	// automaton, not a single transmitter).
	Medium bool
	// Loss is the independent per-receiver beacon loss probability
	// (Medium mode).
	Loss float64
	// Channels is the orthogonal channel count in Medium mode (min 1);
	// the light transmits on channel 0, jams cover every channel.
	Channels int
}

// DefaultIntersectionConfig returns the E13 scenario parameters.
func DefaultIntersectionConfig() IntersectionConfig {
	return IntersectionConfig{
		ApproachLength: 300,
		BoxLength:      12,
		MeanArrival:    3 * sim.Second,
		GreenFor:       8 * sim.Second,
		LightFailsAt:   0,
		VirtualBackup:  true,
		ControlPeriod:  100 * sim.Millisecond,
		AliveTimeout:   500 * sim.Millisecond,
		HandoverGuard:  sim.Second,
	}
}

// Virtual-traffic-light timing: the leader-election stabilization the
// timed virtual stationary automaton needs before its state may be
// trusted, both at takeover and after an inaccessibility burst.
const (
	vLeaderTimeout = 400 * sim.Millisecond
	vReestablish   = 400 * sim.Millisecond
)

// icar is one vehicle approaching the intersection. Position is measured
// along its road: x grows toward the stop line at x=0 + ApproachLength;
// the conflict box is the BoxLength past the stop line; past that the car
// has cleared. All mutable state follows the same shard discipline as the
// highway's Car: own events or barrier only.
type icar struct {
	id   int
	road Road
	body vehicle.Body
	// spawnAt is when the car entered the approach (a window edge).
	spawnAt sim.Time
	phase   sim.Time
	shard   int
	// waited accumulates time at (near) standstill.
	waited    sim.Time
	done      bool
	accounted bool
	// lastRx/haveRx are the car's own belief about the physical light in
	// Medium mode: the start instant of the last I-am-alive beacon it
	// received, written at barriers by medium delivery.
	lastRx sim.Time
	haveRx bool
	// driveFn is the cached drive-step closure (resolves the owning shard
	// at execution time), so re-seeding windows never allocates.
	driveFn func()
}

// iSnap is one car's published state at a window edge.
type iSnap struct {
	id     int
	x      float64
	speed  float64
	length float64
}

// jamBurst is one V2V inaccessibility interval.
type jamBurst struct {
	start sim.Time
	until sim.Time
}

// Intersection is the crossing-roads world on the sharded kernel: each
// approach lives in a quadrant of world.QuadrantPartition, vehicles hand
// off between quadrant shards as they cross, and — exactly as in the
// highway — all cross-car state flows through barrier-published snapshots,
// so the outcome is a pure function of (seed, config) at every shard
// count.
//
// The physical traffic light and its virtual backup are modeled as timed
// automata (the paper's timed virtual stationary automata [10, 11]): the
// light's I-am-alive beacons exist on the window grid while the light is
// alive and the channel is not jammed, and the virtual light's replicated
// state is the deterministic machine state anchored at the takeover epoch
// — which is exactly the state a correct leader-elected replica group
// would serve, without simulating the election wire traffic.
type Intersection struct {
	cfg  IntersectionConfig
	sk   *sim.ShardedKernel
	part QuadrantPartition

	// cars holds the live vehicles in id order. Retired (crossed and
	// accounted) cars are compacted out at barriers; slot maps a stable
	// car id to its current position, so snapshot entries and medium
	// deliveries keep O(1) lookups across compactions.
	cars   []*icar
	slot   []int32
	nextID int
	// retiredPending counts cars accounted this barrier and awaiting
	// compaction.
	retiredPending int

	arrival     [2]randStream
	nextArrival [2]sim.Time

	// medium is the slot-level radio for the light's beacons (nil unless
	// cfg.Medium); lightTx draws the light's per-window slot jitter.
	// mEach/mDeliver/mDrop are the Resolve callbacks, built once so the
	// per-window resolution allocates no closures.
	medium   *wireless.ShardedMedium
	lightTx  randStream64
	mEach    func(*wireless.ShardedTx, func(wireless.NodeID, wireless.Position))
	mDeliver func(*wireless.ShardedTx, wireless.NodeID)
	mDrop    func(*wireless.ShardedTx, wireless.NodeID, wireless.DropReason)

	snap     [2][]iSnap // per road, sorted by x
	snapEdge sim.Time

	jams []jamBurst

	barrierScheduler

	// Crossed counts vehicles that cleared the box, per road.
	Crossed map[Road]int64
	// Conflicts counts window barriers with vehicles from both roads
	// inside the box — the safety metric that must stay zero.
	Conflicts int64
	// WaitTimes collects per-vehicle waiting durations (s).
	WaitTimes metrics.Histogram
}

// randStream is the minimal surface the arrival process needs.
type randStream interface {
	ExpFloat64() float64
}

// randStream64 is the minimal surface the light's slot jitter needs.
type randStream64 interface {
	Int63n(int64) int64
}

// lightNodeID is the physical traffic light's radio identity — below
// firstCarID, so its medium loss stream never collides with a car's.
const lightNodeID = 1

// compactRetirees gates the retired-car compaction. Always on; the
// long-horizon regression test flips it off to prove compaction changes
// no observable output.
var compactRetirees = true

// NewIntersection builds the world over the sharded kernel. The kernel's
// window must equal cfg.ControlPeriod.
func NewIntersection(sk *sim.ShardedKernel, cfg IntersectionConfig) (*Intersection, error) {
	if cfg.ApproachLength <= 0 || cfg.BoxLength <= 0 {
		return nil, fmt.Errorf("world: invalid intersection geometry")
	}
	if cfg.MeanArrival <= 0 || cfg.ControlPeriod <= 0 || cfg.GreenFor <= 0 {
		return nil, fmt.Errorf("world: invalid intersection timing")
	}
	if sk.Window() != cfg.ControlPeriod {
		return nil, fmt.Errorf("world: kernel window %v must equal the control period %v",
			sk.Window(), cfg.ControlPeriod)
	}
	w := &Intersection{
		cfg:     cfg,
		sk:      sk,
		Crossed: map[Road]int64{},
		// Ids are assigned sequentially from firstCarID, so cars[id-
		// firstCarID] is the O(1) id lookup the incremental snapshot
		// refresh relies on.
		nextID: firstCarID,
	}
	for i, road := range []Road{RoadNS, RoadEW} {
		stream := sim.NewStream(sk.Seed(), int64(road), 7)
		w.arrival[i] = stream
		w.nextArrival[i] = sim.Time(stream.ExpFloat64() * float64(cfg.MeanArrival))
	}
	if cfg.Medium {
		if cfg.Channels < 1 {
			cfg.Channels = 1
			w.cfg.Channels = 1
		}
		mcfg := wireless.DefaultShardedConfig()
		// The light must reach the whole approach plus the box exit.
		mcfg.Range = cfg.ApproachLength + cfg.BoxLength + 60
		mcfg.LossProb = cfg.Loss
		mcfg.Channels = w.cfg.Channels
		w.medium = wireless.NewShardedMedium(sk.Seed(), mcfg)
		w.lightTx = sim.NewStream(sk.Seed(), lightNodeID, 5)
		w.mEach = func(tx *wireless.ShardedTx, visit func(wireless.NodeID, wireless.Position)) {
			for _, c := range w.cars {
				if c.done {
					continue
				}
				visit(wireless.NodeID(c.id), pos2D(c.road, c.body.X, w.cfg.ApproachLength))
			}
		}
		w.mDeliver = func(tx *wireless.ShardedTx, to wireless.NodeID) {
			c := w.carByID(int(to))
			c.lastRx = tx.Start
			c.haveRx = true
		}
		w.mDrop = func(*wireless.ShardedTx, wireless.NodeID, wireless.DropReason) {}
	}
	return w, nil
}

// BuildIntersection creates a sharded kernel with the config's window and
// the world on top. The quadrant geometry yields four spatial shards;
// wider kernels leave shards idle, so the count is clamped to 4.
func BuildIntersection(seed int64, shards int, cfg IntersectionConfig) (*Intersection, error) {
	if shards < 1 {
		shards = 1
	}
	if shards > 4 {
		shards = 4
	}
	if cfg.ControlPeriod <= 0 {
		return nil, fmt.Errorf("world: control period must be positive")
	}
	sk, err := sim.NewShardedKernel(seed, shards, cfg.ControlPeriod)
	if err != nil {
		return nil, err
	}
	return NewIntersection(sk, cfg)
}

// Kernel returns the sharded kernel the world runs on.
func (w *Intersection) Kernel() *sim.ShardedKernel { return w.sk }

// LightAlive reports whether the physical light is transmitting.
func (w *Intersection) LightAlive() bool {
	return w.cfg.LightFailsAt == 0 || w.sk.Now() < w.cfg.LightFailsAt
}

// JamV2V renders the shared channel inaccessible for the next d units of
// virtual time: light beacons are lost and the virtual light's replica
// traffic goes silent. Call at a barrier (Schedule) or while stopped.
func (w *Intersection) JamV2V(d sim.Time) {
	now := w.sk.Now()
	if w.medium != nil {
		w.medium.JamAll(now, d)
	}
	if n := len(w.jams); n > 0 && now < w.jams[n-1].until {
		if now+d > w.jams[n-1].until {
			w.jams[n-1].until = now + d
		}
		return
	}
	w.jams = append(w.jams, jamBurst{start: now, until: now + d})
}

func (w *Intersection) jammedAt(t sim.Time) bool {
	for i := len(w.jams) - 1; i >= 0; i-- {
		if t >= w.jams[i].start && t < w.jams[i].until {
			return true
		}
		if t >= w.jams[i].until {
			return false
		}
	}
	return false
}

// Start registers the window hook and seeds the first window.
func (w *Intersection) Start() error {
	w.sk.OnWindow(w.onWindow)
	w.spawnDue(0)
	w.refreshSnapshot(0)
	w.seedWindow(0)
	return nil
}

// Run advances the world by d (rounded up to whole windows).
func (w *Intersection) Run(d sim.Time) error {
	return w.RunContext(context.Background(), d)
}

// RunContext is Run with cancellation, checked at every window barrier.
func (w *Intersection) RunContext(ctx context.Context, d sim.Time) error {
	return runWindows(ctx, w.sk, w.cfg.ControlPeriod, d)
}

func (w *Intersection) onWindow(edge sim.Time) {
	if w.medium != nil {
		// Deliver the closed window's light beacon before this barrier's
		// scheduled actions: a jam injected at this edge must not reach
		// back into the window that just ended.
		w.resolveMedium(edge)
	}
	w.runPending(edge)
	w.spawnDue(edge)
	w.refreshSnapshot(edge)
	w.account(edge)
	if compactRetirees && w.retiredPending > 0 {
		w.compactRetired()
	}
	w.runHooks(edge)
	if !w.stopped {
		w.seedWindow(edge)
	}
}

// firstCarID is the id of the first spawned vehicle; ids are sequential.
const firstCarID = 100

// carByID returns the live vehicle with the given id in O(1) through the
// stable id remap (slot grows by one entry per spawn and survives
// compaction; retired ids map to -1 and must not be looked up).
func (w *Intersection) carByID(id int) *icar { return w.cars[w.slot[id-firstCarID]] }

// compactRetired removes retired (done and accounted) cars from the live
// list, remapping the survivors' slots. account and seedWindow then scan
// only live cars — without this, a long-horizon run's barrier cost grows
// with every car ever spawned instead of the cars on the road.
func (w *Intersection) compactRetired() {
	kept := w.cars[:0]
	for _, c := range w.cars {
		if c.done && c.accounted {
			w.slot[c.id-firstCarID] = -1
			continue
		}
		w.slot[c.id-firstCarID] = int32(len(kept))
		kept = append(kept, c)
	}
	for i := len(kept); i < len(w.cars); i++ {
		w.cars[i] = nil
	}
	w.cars = kept
	w.retiredPending = 0
}

// spawnDue creates the arrivals due by edge, in road order — at most one
// per road per window, so two spawns never stack on the same spot.
// Arrival instants are drawn from per-road entity streams and quantized to
// the window grid, so spawning is a barrier-only, shard-invariant act.
func (w *Intersection) spawnDue(edge sim.Time) {
	for i, road := range []Road{RoadNS, RoadEW} {
		if w.nextArrival[i] <= edge {
			id := w.nextID
			w.nextID++
			c := &icar{
				id:      id,
				road:    road,
				body:    vehicle.Body{Speed: 15, Length: 4.5},
				spawnAt: edge,
				phase: 1 + sim.Time(uint64(sim.SplitSeed(w.sk.Seed(), int64(id)*64+4))%
					uint64(w.cfg.ControlPeriod-1)),
			}
			c.driveFn = func() { w.drive(c, w.sk.Shard(c.shard)) }
			w.slot = append(w.slot, int32(len(w.cars)))
			w.cars = append(w.cars, c)
			// Membership change: the placeholder entry is refreshed (and
			// sorted into place) by refreshSnapshot at this same barrier.
			w.snap[i] = append(w.snap[i], iSnap{id: id})
			w.nextArrival[i] += sim.Time(w.arrival[i].ExpFloat64() * float64(w.cfg.MeanArrival))
		}
	}
}

// pos2D maps a car's road coordinate into the plane (stop line at origin).
func pos2D(road Road, x float64, approach float64) wireless.Position {
	d := approach - x // distance remaining to the stop line
	if road == RoadNS {
		return wireless.Position{Y: -d}
	}
	return wireless.Position{X: -d}
}

// iSnapLess is the per-road snapshot order: ascending (x, id). The key is
// unique, so any sorting algorithm yields the same sequence.
func iSnapLess(a, b iSnap) bool {
	if a.x != b.x {
		return a.x < b.x
	}
	return a.id < b.id
}

// insertionSortISnaps restores (x, id) order — linear on the near-sorted
// per-window refresh (cars cannot overtake on a single-lane approach).
func insertionSortISnaps(s []iSnap) {
	for i := 1; i < len(s); i++ {
		e := s[i]
		j := i - 1
		for j >= 0 && iSnapLess(e, s[j]) {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = e
	}
}

// refreshSnapshot incrementally maintains the per-road snapshots in the
// reused buffers: every live entry is rewritten from its car (retired cars
// compact away, freshly spawned placeholders fill in), quadrant ownership
// is recomputed, and the insertion pass runs only when the refresh
// actually observed an inversion — membership changes (spawn/retire) and
// overtakes are the only ways a road loses its order, so in the steady
// state a road costs one linear pass and no sort at all, never the
// from-scratch rebuild + sort.Slice of the seed.
func (w *Intersection) refreshSnapshot(edge sim.Time) {
	for i := range w.snap {
		entries := w.snap[i]
		kept := entries[:0]
		sorted := true
		for _, e := range entries {
			c := w.carByID(e.id)
			if c.done {
				continue
			}
			p := pos2D(c.road, c.body.X, w.cfg.ApproachLength)
			c.shard = w.part.ShardOf(p.X, p.Y) % w.sk.Shards()
			e = iSnap{id: c.id, x: c.body.X, speed: c.body.Speed, length: c.body.Length}
			if n := len(kept); n > 0 && iSnapLess(e, kept[n-1]) {
				sorted = false
			}
			kept = append(kept, e)
		}
		if !sorted {
			insertionSortISnaps(kept)
		}
		w.snap[i] = kept
	}
	w.snapEdge = edge
}

// account retires crossed cars and samples the conflict box, in id order.
func (w *Intersection) account(edge sim.Time) {
	inBox := map[Road]bool{}
	stopLine := w.cfg.ApproachLength
	for _, c := range w.cars {
		if c.done && !c.accounted {
			c.accounted = true
			w.retiredPending++
			w.Crossed[c.road]++
			w.WaitTimes.Observe(c.waited.Seconds())
		}
		if c.done {
			continue
		}
		front := c.body.X
		rear := c.body.X - c.body.Length
		if front > stopLine && rear < stopLine+w.cfg.BoxLength {
			inBox[c.road] = true
		}
	}
	if inBox[RoadNS] && inBox[RoadEW] {
		w.Conflicts++
	}
}

// seedWindow schedules every active car's drive step on its owning shard,
// through the cars' cached closures (allocation-free re-seeding).
func (w *Intersection) seedWindow(edge sim.Time) {
	for _, c := range w.cars {
		if c.done {
			continue
		}
		w.sk.Shard(c.shard).Kernel().At(edge+c.phase, c.driveFn)
	}
}

// resolveMedium queues the light's I-am-alive beacon for the window that
// just closed and resolves the medium: every live car that existed during
// the window is a candidate receiver at its current plane position, and a
// delivery updates that car's own liveness belief. The light transmits
// once per window while alive, at a slot drawn from its own entity
// stream — all barrier work, so the outcome is width-invariant.
func (w *Intersection) resolveMedium(edge sim.Time) {
	open := edge - w.cfg.ControlPeriod
	start := open + sim.Time(w.lightTx.Int63n(int64(w.cfg.ControlPeriod/4)+1))
	if lim := edge - w.medium.Config().Airtime; start > lim {
		start = lim
	}
	if w.cfg.LightFailsAt == 0 || start < w.cfg.LightFailsAt {
		w.medium.Queue(wireless.ShardedTx{From: lightNodeID, Start: start})
	}
	w.medium.Resolve(w.mEach, w.mDeliver, w.mDrop)
}

// lastLightRx returns the instant of the last I-am-alive beacon the car
// received: beacons exist on the window grid while the light is alive and
// the channel is not jammed, and the car must already have spawned.
func (w *Intersection) lastLightRx(c *icar, now sim.Time) (sim.Time, bool) {
	p := w.cfg.ControlPeriod
	t := now / p * p
	if w.cfg.LightFailsAt > 0 && t >= w.cfg.LightFailsAt {
		t = (w.cfg.LightFailsAt - 1) / p * p
	}
	// Step out of any jam bursts (latest first; the list is short).
	for i := len(w.jams) - 1; i >= 0; i-- {
		if t >= w.jams[i].until {
			break
		}
		if t >= w.jams[i].start {
			t = (w.jams[i].start - 1) / p * p
		}
	}
	if t < p || t < c.spawnAt {
		return 0, false
	}
	return t, true
}

// lightStateAt returns the physical light's phase at t (the machine runs
// autonomously from the world's start).
func (w *Intersection) lightStateAt(t sim.Time) coord.LightState {
	machine := coord.TrafficLightMachine{GreenFor: w.cfg.GreenFor}
	st, _ := machine.Advance(coord.LightState{Phase: coord.PhaseNSGreen, Remaining: w.cfg.GreenFor}, t).(coord.LightState)
	return st
}

// vEpoch is the instant the virtual traffic light's state becomes
// trustworthy: the physical light died, every pre-failure car's guard has
// drained, and the replica group has had a leader-election round.
func (w *Intersection) vEpoch() (sim.Time, bool) {
	if !w.cfg.VirtualBackup || w.cfg.LightFailsAt == 0 {
		return 0, false
	}
	return w.cfg.LightFailsAt + w.cfg.AliveTimeout + w.cfg.HandoverGuard, true
}

// virtualLive reports whether the virtual light is serving state at now:
// past the takeover epoch and not silenced by an inaccessibility burst
// (during a jam the replicas stay consistent for one leader timeout, then
// the automaton is unavailable until the channel returns and the election
// re-stabilizes).
func (w *Intersection) virtualLive(now sim.Time) bool {
	epoch, ok := w.vEpoch()
	if !ok || now < epoch {
		return false
	}
	for i := len(w.jams) - 1; i >= 0; i-- {
		j := w.jams[i]
		if now >= j.start+vLeaderTimeout && now < j.until+vReestablish {
			return false
		}
		if now >= j.until+vReestablish {
			break
		}
	}
	return true
}

// virtualStateAt returns the virtual light's replicated state at t.
func (w *Intersection) virtualStateAt(t sim.Time) coord.LightState {
	epoch, _ := w.vEpoch()
	machine := coord.TrafficLightMachine{GreenFor: w.cfg.GreenFor}
	st, _ := machine.Advance(machine.Init(), t-epoch).(coord.LightState)
	return st
}

// authority returns c's current belief about the light state and whether
// any control authority exists.
func (w *Intersection) authority(c *icar, now sim.Time) (coord.LightState, bool) {
	var lastRx sim.Time
	var have bool
	if w.medium != nil {
		// Medium mode: the belief is the car's own radio history.
		lastRx, have = c.lastRx, c.haveRx
	} else {
		lastRx, have = w.lastLightRx(c, now)
	}
	physicalFresh := have && now-lastRx <= w.cfg.AliveTimeout
	// Handover guard: a car that once obeyed the physical light holds an
	// all-red belief until the guard expires, so its possibly stale green
	// can never coexist with the virtual light's unsynchronized phase.
	inGuard := have && !physicalFresh && now-lastRx <= w.cfg.AliveTimeout+w.cfg.HandoverGuard
	switch {
	case physicalFresh:
		return w.lightStateAt(now), true
	case inGuard:
		return coord.LightState{}, false
	case w.virtualLive(now):
		return w.virtualStateAt(now), true
	default:
		// Light dead, no (live) backup: fail safe — nobody enters. (Human
		// drivers would negotiate; an autonomous system must not guess.)
		return coord.LightState{}, false
	}
}

// mayEnter reports whether c may cross the stop line now: its road must be
// green AND the remaining green must cover the time it needs to clear the
// conflict box (the clearance rule a yellow phase implements in reality).
func (w *Intersection) mayEnter(c *icar, now sim.Time) bool {
	st, ok := w.authority(c, now)
	if !ok {
		return false
	}
	green := (c.road == RoadNS && st.Phase == coord.PhaseNSGreen) ||
		(c.road == RoadEW && st.Phase == coord.PhaseEWGreen)
	if !green {
		return false
	}
	distToClear := (w.cfg.ApproachLength + w.cfg.BoxLength + c.body.Length) - c.body.X
	needed := sim.FromSeconds(timeToCover(c.body.Speed, distToClear) + 1.0)
	return st.Remaining > needed
}

// Crossing dynamics shared by the entry estimate and the actual drive.
const (
	crossAccel = 2.5 // m/s^2
	crossSpeed = 15  // m/s
)

// timeToCover returns the time to cover dist starting at speed v, with
// acceleration crossAccel capped at crossSpeed — the exact kinematics the
// drive loop applies, so the clearance estimate cannot be optimistic.
func timeToCover(v, dist float64) float64 {
	if dist <= 0 {
		return 0
	}
	if v >= crossSpeed {
		return dist / crossSpeed
	}
	// Accelerate until crossSpeed or until the distance is covered.
	tAcc := (crossSpeed - v) / crossAccel
	dAcc := v*tAcc + 0.5*crossAccel*tAcc*tAcc
	if dAcc >= dist {
		// dist = v t + a/2 t^2 → t = (-v + sqrt(v^2 + 2 a d)) / a
		return (-v + math.Sqrt(v*v+2*crossAccel*dist)) / crossAccel
	}
	return tAcc + (dist-dAcc)/crossSpeed
}

// drive advances one car: approach, stop at the line on red, cross on
// green, clear. It runs on the owning shard and touches only c plus the
// immutable snapshot.
func (w *Intersection) drive(c *icar, shard *sim.Shard) {
	if c.done {
		return
	}
	now := shard.Kernel().Now()
	dt := w.cfg.ControlPeriod.Seconds()
	stopLine := w.cfg.ApproachLength
	pastLine := c.body.X - stopLine // >0 once inside the box

	switch {
	case pastLine >= 0:
		// Committed: clear the box briskly.
		c.body.Accel = crossAccel
		if c.body.Speed > crossSpeed {
			c.body.Accel = 0
		}
	case w.mayEnter(c, now) && w.gapAhead(c, now) > 8:
		c.body.Accel = crossAccel
		if c.body.Speed > crossSpeed {
			c.body.Accel = 0
		}
	default:
		// Decelerate to stop exactly at the line (or behind the car
		// ahead).
		target := stopLine - 1
		if g := w.gapAhead(c, now); g < target-c.body.X {
			target = c.body.X + g - 2
		}
		remaining := target - c.body.X
		if remaining <= 0.5 {
			c.body.Accel = -6
		} else {
			// v^2 = 2 a s: brake to stop within the remaining distance.
			need := c.body.Speed * c.body.Speed / (2 * remaining)
			if need > 0.5 {
				c.body.Accel = -need
			} else {
				c.body.Accel = 0.5 // creep forward
			}
		}
	}
	if c.body.Speed < 0.5 {
		c.waited += w.cfg.ControlPeriod
	}
	c.body.Step(dt)

	if c.body.X >= stopLine+w.cfg.BoxLength+c.body.Length {
		c.done = true // retired (and accounted) at the next barrier
	}
}

// gapAhead returns the distance to the rear bumper of the nearest car
// ahead on the same road (a large number when free), from the snapshot
// with positions extrapolated to now.
func (w *Intersection) gapAhead(c *icar, now sim.Time) float64 {
	snap := w.snap[int(c.road-RoadNS)]
	n := len(snap)
	if n == 0 {
		return math.MaxFloat64
	}
	dt := (now - w.snapEdge).Seconds()
	x := c.body.X
	at := sort.Search(n, func(i int) bool { return snap[i].x > x })
	for i := at; i < n; i++ {
		e := &snap[i]
		if e.id == c.id {
			continue
		}
		if d := (e.x + e.speed*dt) - e.length - x; d > 0 {
			return d
		}
	}
	return math.MaxFloat64
}

// ActiveCars returns how many cars are still approaching or crossing.
func (w *Intersection) ActiveCars() int {
	n := 0
	for _, c := range w.cars {
		if !c.done {
			n++
		}
	}
	return n
}
