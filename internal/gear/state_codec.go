package gear

import (
	"karyon/internal/sim"
	"karyon/internal/trace"
)

// EncodeState appends the estimator's full state (gains and filter
// memory) to e, for the record/replay trace checkpoints.
func (le *LeadEstimator) EncodeState(e *trace.Enc) {
	e.F64(le.Alpha)
	e.F64(le.Beta)
	e.F64(le.MinValidity)
	e.I64(int64(le.lastAt))
	e.F64(le.lastGap)
	e.F64(le.relSpeed)
	e.F64(le.leadSpeed)
	e.F64(le.leadAccel)
	e.I64(int64(le.samples))
}

// DecodeState reads estimator state written by EncodeState.
func (le *LeadEstimator) DecodeState(d *trace.Dec) {
	le.Alpha = d.F64()
	le.Beta = d.F64()
	le.MinValidity = d.F64()
	le.lastAt = sim.Time(d.I64())
	le.lastGap = d.F64()
	le.relSpeed = d.F64()
	le.leadSpeed = d.F64()
	le.leadAccel = d.F64()
	le.samples = int(d.I64())
}
