// Package gear implements the Generic Events Architecture ideas the paper
// builds on (Sec. II-B, [6]): keeping an environment model "in an
// appropriate form for run-time assessment", relating a remote vehicle's
// *actuation* to the locally *sensed* effect, and exploiting the physical
// world as a hidden channel — "they allow detecting unsafe states even
// when the network is down".
//
// Concretely: LeadEstimator tracks the lead vehicle's speed and
// acceleration purely from the ego vehicle's own validity-annotated gap
// measurements (an alpha-beta filter over the actuation-perception loop),
// and HiddenChannel cross-checks what the lead *claims* over V2V against
// what the physical channel shows, producing a consistency validity for
// the remote information.
package gear

import (
	"karyon/internal/sim"
)

// Observation is one validity-annotated gap measurement.
type Observation struct {
	At sim.Time
	// Gap is the measured distance to the lead vehicle (m).
	Gap float64
	// OwnSpeed is the ego vehicle's speed at the same instant (m/s).
	OwnSpeed float64
	// Validity is the perception pipeline's confidence.
	Validity float64
}

// LeadEstimator estimates the lead vehicle's speed and acceleration from
// gap observations: relative speed is the filtered gap derivative, lead
// speed = own speed + relative speed, lead acceleration the filtered
// derivative of lead speed. Low-validity observations are skipped so a
// faulted sensor cannot poison the estimate.
type LeadEstimator struct {
	// Alpha and Beta are the filter gains in (0,1]; Alpha smooths the
	// rate estimates, Beta the acceleration estimate.
	Alpha float64
	Beta  float64
	// MinValidity gates which observations are consumed.
	MinValidity float64

	lastAt    sim.Time
	lastGap   float64
	relSpeed  float64
	leadSpeed float64
	leadAccel float64
	samples   int
}

// NewLeadEstimator returns an estimator with sensible gains.
func NewLeadEstimator() *LeadEstimator {
	return &LeadEstimator{Alpha: 0.3, Beta: 0.08, MinValidity: 0.3}
}

// Ready reports whether enough observations have been consumed for the
// estimates to be meaningful.
func (e *LeadEstimator) Ready() bool { return e.samples >= 3 }

// Reset discards all state (e.g. after a perception outage).
func (e *LeadEstimator) Reset() {
	*e = LeadEstimator{Alpha: e.Alpha, Beta: e.Beta, MinValidity: e.MinValidity}
}

// Update consumes one observation. Observations below MinValidity, or not
// strictly newer than the previous one, are ignored.
func (e *LeadEstimator) Update(o Observation) {
	if o.Validity < e.MinValidity {
		return
	}
	if e.samples > 0 && o.At <= e.lastAt {
		return
	}
	if e.samples == 0 {
		e.lastAt = o.At
		e.lastGap = o.Gap
		e.leadSpeed = o.OwnSpeed
		e.samples = 1
		return
	}
	dt := (o.At - e.lastAt).Seconds()
	rawRel := (o.Gap - e.lastGap) / dt
	alpha := e.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	beta := e.Beta
	if beta <= 0 || beta > 1 {
		beta = 0.08
	}
	prevLead := e.leadSpeed
	e.relSpeed += alpha * (rawRel - e.relSpeed)
	e.leadSpeed = o.OwnSpeed + e.relSpeed
	rawAccel := (e.leadSpeed - prevLead) / dt
	e.leadAccel += beta * (rawAccel - e.leadAccel)
	e.lastAt = o.At
	e.lastGap = o.Gap
	e.samples++
}

// LeadSpeed returns the estimated lead speed and whether the estimator is
// ready.
func (e *LeadEstimator) LeadSpeed() (float64, bool) {
	return e.leadSpeed, e.Ready()
}

// LeadAccel returns the estimated lead acceleration and whether the
// estimator is ready.
func (e *LeadEstimator) LeadAccel() (float64, bool) {
	return e.leadAccel, e.Ready()
}

// HiddenChannel cross-checks remote claims against the physical channel.
// The paper's insight: an actuation by the lead vehicle (braking) is
// observable through the environment regardless of the radio, so the
// radio's claims can be *assessed* — and safety-relevant disagreement
// (claiming to cruise while physically braking) detected.
type HiddenChannel struct {
	// Tolerance is the acceleration disagreement (m/s^2) at which the
	// consistency validity reaches 0.5.
	Tolerance float64
	est       *LeadEstimator

	// Disagreements counts consistency checks below 0.5.
	Disagreements int64
	// Checks counts all consistency assessments.
	Checks int64
}

// NewHiddenChannel wraps an estimator.
func NewHiddenChannel(est *LeadEstimator, tolerance float64) *HiddenChannel {
	if tolerance <= 0 {
		tolerance = 1.5
	}
	return &HiddenChannel{Tolerance: tolerance, est: est}
}

// Estimator returns the wrapped estimator.
func (h *HiddenChannel) Estimator() *LeadEstimator { return h.est }

// AssessClaim returns a consistency validity in [0,1] for the lead's
// claimed acceleration, given the physically observed estimate. The check
// is deliberately asymmetric in the safe direction: a claim *more severe*
// than the physical evidence (announcing braking before the gap shows it
// — the normal V2V feed-forward situation) is fully trusted, because
// acting on it is at worst over-cautious. Only claims *calmer* than the
// observed motion — cruising while physically braking, the dangerous lie
// — are penalized. Returns (1, false) when the estimator is not ready.
func (h *HiddenChannel) AssessClaim(claimedAccel float64) (float64, bool) {
	accel, ok := h.est.LeadAccel()
	if !ok {
		return 1, false
	}
	h.Checks++
	diff := claimedAccel - accel // >0: claim calmer than reality
	if diff <= 0 {
		return 1, true
	}
	x := diff / h.Tolerance
	v := 1 / (1 + x*x)
	if v < 0.5 {
		h.Disagreements++
	}
	return v, true
}

// UnsafeStateDetected reports whether the physical channel alone shows a
// safety-critical condition: the lead braking harder than brakeThreshold
// (a negative number, e.g. -3). This is the "detect unsafe states even
// when the network is down" capability.
func (h *HiddenChannel) UnsafeStateDetected(brakeThreshold float64) bool {
	accel, ok := h.est.LeadAccel()
	if !ok {
		return false
	}
	return accel <= brakeThreshold
}
