package gear

import (
	"math"
	"testing"

	"karyon/internal/sim"
)

// driveScenario feeds the estimator a synthetic two-vehicle episode and
// returns it. The lead drives at leadSpeed then applies leadAccel from
// brakeAt onward; the ego holds egoSpeed. Gap observations carry Gaussian
// noise sigma.
func driveScenario(t *testing.T, e *LeadEstimator, seconds float64, egoSpeed, leadSpeed, leadAccel float64, brakeAt float64, sigma float64) {
	t.Helper()
	k := sim.NewKernel(42)
	gap := 50.0
	lv := leadSpeed
	dt := 0.1
	for tm := 0.0; tm < seconds; tm += dt {
		if tm >= brakeAt {
			lv += leadAccel * dt
			if lv < 0 {
				lv = 0
			}
		}
		gap += (lv - egoSpeed) * dt
		noisy := gap + k.Rand().NormFloat64()*sigma
		e.Update(Observation{
			At:       sim.FromSeconds(tm + dt),
			Gap:      noisy,
			OwnSpeed: egoSpeed,
			Validity: 1,
		})
	}
}

func TestEstimatorNotReadyInitially(t *testing.T) {
	e := NewLeadEstimator()
	if e.Ready() {
		t.Fatal("fresh estimator claims ready")
	}
	if _, ok := e.LeadSpeed(); ok {
		t.Fatal("speed available before ready")
	}
	if _, ok := e.LeadAccel(); ok {
		t.Fatal("accel available before ready")
	}
}

func TestEstimatorConstantSpeedLead(t *testing.T) {
	e := NewLeadEstimator()
	driveScenario(t, e, 10, 25, 20, 0, 1e9, 0.1)
	speed, ok := e.LeadSpeed()
	if !ok {
		t.Fatal("not ready after 100 samples")
	}
	if math.Abs(speed-20) > 1 {
		t.Fatalf("lead speed = %.2f, want ~20", speed)
	}
	accel, _ := e.LeadAccel()
	if math.Abs(accel) > 0.5 {
		t.Fatalf("lead accel = %.2f, want ~0", accel)
	}
}

func TestEstimatorDetectsBraking(t *testing.T) {
	e := NewLeadEstimator()
	// Lead cruises 5 s then brakes at -4 m/s^2.
	driveScenario(t, e, 8, 20, 20, -4, 5, 0.1)
	accel, ok := e.LeadAccel()
	if !ok {
		t.Fatal("not ready")
	}
	if accel > -2.5 {
		t.Fatalf("estimated accel %.2f missed a -4 brake", accel)
	}
}

func TestEstimatorIgnoresLowValidity(t *testing.T) {
	e := NewLeadEstimator()
	e.Update(Observation{At: sim.Second, Gap: 50, OwnSpeed: 20, Validity: 1})
	e.Update(Observation{At: 2 * sim.Second, Gap: 51, OwnSpeed: 20, Validity: 1})
	e.Update(Observation{At: 3 * sim.Second, Gap: 52, OwnSpeed: 20, Validity: 1})
	before, _ := e.LeadSpeed()
	// A garbage observation with zero validity must not move anything.
	e.Update(Observation{At: 4 * sim.Second, Gap: 500, OwnSpeed: 20, Validity: 0})
	after, _ := e.LeadSpeed()
	if before != after {
		t.Fatal("low-validity observation consumed")
	}
}

func TestEstimatorIgnoresNonMonotonicTime(t *testing.T) {
	e := NewLeadEstimator()
	e.Update(Observation{At: sim.Second, Gap: 50, OwnSpeed: 20, Validity: 1})
	e.Update(Observation{At: sim.Second, Gap: 90, OwnSpeed: 20, Validity: 1}) // same instant
	if e.samples != 1 {
		t.Fatalf("duplicate-time observation consumed: %d", e.samples)
	}
}

func TestEstimatorReset(t *testing.T) {
	e := NewLeadEstimator()
	driveScenario(t, e, 5, 20, 20, 0, 1e9, 0.1)
	if !e.Ready() {
		t.Fatal("setup")
	}
	e.Reset()
	if e.Ready() {
		t.Fatal("reset estimator still ready")
	}
	if e.MinValidity != 0.3 {
		t.Fatal("reset lost configuration")
	}
}

func TestHiddenChannelConsistentClaim(t *testing.T) {
	e := NewLeadEstimator()
	driveScenario(t, e, 8, 20, 20, -4, 5, 0.1)
	h := NewHiddenChannel(e, 1.5)
	v, ok := h.AssessClaim(-4)
	if !ok {
		t.Fatal("assessment unavailable")
	}
	if v < 0.5 {
		t.Fatalf("truthful claim scored %.2f", v)
	}
}

func TestHiddenChannelCatchesLyingClaim(t *testing.T) {
	e := NewLeadEstimator()
	// Physically braking at -4...
	driveScenario(t, e, 8, 20, 20, -4, 5, 0.1)
	h := NewHiddenChannel(e, 1.5)
	// ...while claiming to cruise.
	v, ok := h.AssessClaim(0)
	if !ok {
		t.Fatal("assessment unavailable")
	}
	if v >= 0.5 {
		t.Fatalf("lying claim scored %.2f — hidden channel blind", v)
	}
	if h.Disagreements != 1 || h.Checks != 1 {
		t.Fatalf("stats %d/%d", h.Disagreements, h.Checks)
	}
}

func TestHiddenChannelAcceptsSevereClaimEarly(t *testing.T) {
	// The lead cruises; it announces hard braking over V2V before the gap
	// shows any effect. The claim is more severe than the evidence —
	// acting on it is safe — so it must be fully trusted.
	e := NewLeadEstimator()
	driveScenario(t, e, 8, 20, 20, 0, 1e9, 0.1)
	h := NewHiddenChannel(e, 1.5)
	v, ok := h.AssessClaim(-6)
	if !ok || v != 1 {
		t.Fatalf("early braking announcement scored %.2f (ok=%v), want full trust", v, ok)
	}
	if h.Disagreements != 0 {
		t.Fatal("safe-direction claim counted as disagreement")
	}
}

func TestHiddenChannelBenefitOfDoubtWhenBlind(t *testing.T) {
	h := NewHiddenChannel(NewLeadEstimator(), 1.5)
	v, ok := h.AssessClaim(-4)
	if ok || v != 1 {
		t.Fatalf("blind assessment = %.2f, %v; want (1, false)", v, ok)
	}
}

func TestUnsafeStateWithoutNetwork(t *testing.T) {
	// The headline GEAR capability: the lead brakes hard; no V2V message
	// exists at all; the ego still detects the unsafe state through the
	// physical channel.
	e := NewLeadEstimator()
	driveScenario(t, e, 8, 20, 20, -5, 5, 0.1)
	h := NewHiddenChannel(e, 1.5)
	if !h.UnsafeStateDetected(-3) {
		t.Fatal("hard braking undetected through the hidden channel")
	}
	// A cruising lead must not trigger it.
	e2 := NewLeadEstimator()
	driveScenario(t, e2, 8, 20, 20, 0, 1e9, 0.1)
	h2 := NewHiddenChannel(e2, 1.5)
	if h2.UnsafeStateDetected(-3) {
		t.Fatal("cruising lead flagged unsafe")
	}
	if NewHiddenChannel(NewLeadEstimator(), 1.5).UnsafeStateDetected(-3) {
		t.Fatal("blind channel flagged unsafe")
	}
}

func TestHiddenChannelDefaultTolerance(t *testing.T) {
	h := NewHiddenChannel(NewLeadEstimator(), 0)
	if h.Tolerance != 1.5 {
		t.Fatalf("default tolerance = %v", h.Tolerance)
	}
	if h.Estimator() == nil {
		t.Fatal("estimator accessor")
	}
}
