package faultinject

import (
	"context"
	"math/rand"
	"testing"

	"karyon/internal/sensor"
	"karyon/internal/sim"
	"karyon/internal/world"
)

func startTestHighway(t *testing.T, cars int) *world.Highway {
	t.Helper()
	hcfg := world.DefaultHighwayConfig()
	hcfg.Cars = cars
	hcfg.Length = 1200
	h, err := world.BuildHighway(42, 1, hcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	return h
}

// TestUndetectedFaultKeepsDenominator: a fault too small and too brief for
// any detector still counts as a detectable injection — coverage must
// report the miss, not hide it.
func TestUndetectedFaultKeepsDenominator(t *testing.T) {
	h := startTestHighway(t, 8)
	c := Campaign{Events: []Event{{
		At:        5 * sim.Second,
		Kind:      KindSensor,
		Target:    0,
		Mode:      sensor.FaultStochasticOffset,
		Duration:  sim.Millisecond,
		Magnitude: 0.001,
		Inputs:    1,
	}}}
	rep, err := RunOnHighway(context.Background(), h, c, 10*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SensorFaultCount != 1 {
		t.Fatalf("SensorFaultCount = %d, want 1 (misses stay in the denominator)", rep.SensorFaultCount)
	}
	if rep.DetectedSensorFaults != 0 {
		t.Fatalf("a 1mm/1ms fault was detected (%d)", rep.DetectedSensorFaults)
	}
	if rep.Coverage() != 0 {
		t.Fatalf("Coverage = %v, want 0", rep.Coverage())
	}
	if n := rep.DetectionLatencies.Count(); n != 0 {
		t.Fatalf("%d detection latencies recorded for an undetected fault", n)
	}
}

// TestFaultBeyondRunEndCountsAsUndetected: an injection scheduled past the
// run's end never lands, but the accounting already promised it — the
// assessor sees coverage < 1, never a silently shrunken denominator.
func TestFaultBeyondRunEndCountsAsUndetected(t *testing.T) {
	h := startTestHighway(t, 8)
	c := Campaign{Events: []Event{{
		At:        20 * sim.Second, // run ends at 10s
		Kind:      KindSensor,
		Target:    0,
		Mode:      sensor.FaultPermanentOffset,
		Duration:  5 * sim.Second,
		Magnitude: 60,
		Inputs:    1,
	}}}
	rep, err := RunOnHighway(context.Background(), h, c, 10*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Injected[KindSensor] != 1 || rep.SensorFaultCount != 1 {
		t.Fatalf("injected=%d counted=%d, want 1/1", rep.Injected[KindSensor], rep.SensorFaultCount)
	}
	if rep.DetectedSensorFaults != 0 || rep.Coverage() != 0 {
		t.Fatalf("a never-landed fault was detected: %d (coverage %v)", rep.DetectedSensorFaults, rep.Coverage())
	}
}

// TestFaultAtWindowBoundary: an injection At exactly on a window barrier
// (At is a multiple of the control period) lands cleanly, is detected, and
// its latency accounting is consistent — one observation per detection,
// non-negative and within the detector's bound.
func TestFaultAtWindowBoundary(t *testing.T) {
	h := startTestHighway(t, 8)
	c := Campaign{Events: []Event{{
		At:        5 * sim.Second, // exactly a barrier edge at 100ms periods
		Kind:      KindSensor,
		Target:    2,
		Mode:      sensor.FaultPermanentOffset,
		Duration:  8 * sim.Second,
		Magnitude: 60,
		Inputs:    1,
	}}}
	rep, err := RunOnHighway(context.Background(), h, c, 20*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SensorFaultCount != 1 || rep.DetectedSensorFaults != 1 {
		t.Fatalf("counted=%d detected=%d, want 1/1", rep.SensorFaultCount, rep.DetectedSensorFaults)
	}
	if rep.Coverage() != 1 {
		t.Fatalf("Coverage = %v, want 1", rep.Coverage())
	}
	if n := rep.DetectionLatencies.Count(); n != 1 {
		t.Fatalf("%d latency observations for 1 detection", n)
	}
	lat := rep.DetectionLatencies.Percentile(50)
	if lat < 0 || lat > 2000 {
		t.Fatalf("boundary-injection detection latency %.0f ms out of range", lat)
	}
}

// TestOverlappingJamsExtendCleanly: a second jam landing inside an active
// burst extends it — both are accounted, the world keeps running, and the
// kernel still prevents hazards through the merged outage.
func TestOverlappingJamsExtendCleanly(t *testing.T) {
	h := startTestHighway(t, 8)
	c := Campaign{Events: []Event{
		{At: 2 * sim.Second, Kind: KindJam, Duration: 2 * sim.Second},
		{At: 3 * sim.Second, Kind: KindJam, Duration: 3 * sim.Second}, // overlaps the first
	}}
	rep, err := RunOnHighway(context.Background(), h, c, 10*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Injected[KindJam] != 2 {
		t.Fatalf("Injected[jam] = %d, want 2", rep.Injected[KindJam])
	}
	if rep.Collisions != 0 {
		t.Fatalf("%d collisions through overlapping jams", rep.Collisions)
	}
}

// TestOutOfRangeTargetSkippedEntirely: a target index beyond the car list
// is dropped before any accounting — injected counts and the coverage
// denominator both exclude it.
func TestOutOfRangeTargetSkippedEntirely(t *testing.T) {
	h := startTestHighway(t, 4)
	c := Campaign{Events: []Event{
		{At: 2 * sim.Second, Kind: KindSensor, Target: 99, Mode: sensor.FaultStuckAt, Duration: sim.Second, Magnitude: 50, Inputs: 1},
		{At: 2 * sim.Second, Kind: KindDisturbance, Target: 99, Duration: sim.Second},
	}}
	rep, err := RunOnHighway(context.Background(), h, c, 5*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	for kind, n := range rep.Injected {
		if n != 0 {
			t.Fatalf("Injected[%s] = %d for out-of-range targets, want 0", kind, n)
		}
	}
	if rep.SensorFaultCount != 0 || rep.Coverage() != 0 {
		t.Fatalf("out-of-range sensor fault entered the denominator: %d", rep.SensorFaultCount)
	}
}

// TestEmptyCampaignRuns: zero events is a valid campaign — Generate
// produces it and the run reports clean zeros.
func TestEmptyCampaignRuns(t *testing.T) {
	c, err := Generate(rand.New(rand.NewSource(3)), GenerateConfig{
		Duration: sim.Minute, Warmup: sim.Second, Events: 0, Targets: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Events) != 0 {
		t.Fatalf("Events=0 generated %d events", len(c.Events))
	}
	h := startTestHighway(t, 4)
	rep, err := RunOnHighway(context.Background(), h, c, 5*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SensorFaultCount != 0 || rep.DetectedSensorFaults != 0 || rep.DetectionLatencies.Count() != 0 {
		t.Fatalf("empty campaign produced accounting: %+v", rep)
	}
	if rep.Collisions != 0 {
		t.Fatalf("fault-free run had %d collisions", rep.Collisions)
	}
}
