package faultinject

import (
	"context"
	"math/rand"
	"testing"

	"karyon/internal/sim"
	"karyon/internal/world"
)

func TestGenerateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Generate(rng, GenerateConfig{Duration: sim.Second, Warmup: sim.Second, Events: 1, Targets: 1}); err == nil {
		t.Fatal("warmup >= duration accepted")
	}
	if _, err := Generate(rng, GenerateConfig{Duration: sim.Second, Events: 1, Targets: 0}); err == nil {
		t.Fatal("zero targets accepted")
	}
}

func TestGenerateDeterministicAndInWindow(t *testing.T) {
	cfg := GenerateConfig{Duration: sim.Minute, Warmup: 10 * sim.Second, Events: 50, Targets: 10}
	a, err := Generate(rand.New(rand.NewSource(7)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(rand.New(rand.NewSource(7)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != 50 || len(b.Events) != 50 {
		t.Fatalf("event counts %d/%d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("nondeterministic generation at %d", i)
		}
		ev := a.Events[i]
		if ev.At < cfg.Warmup || ev.At >= cfg.Duration {
			t.Fatalf("event %d at %v outside window", i, ev.At)
		}
		if ev.Target < 0 || ev.Target >= cfg.Targets {
			t.Fatalf("event %d target %d out of range", i, ev.Target)
		}
	}
	// Different seeds differ.
	c, err := Generate(rand.New(rand.NewSource(8)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Events {
		if a.Events[i] != c.Events[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical campaigns")
	}
}

func TestKindString(t *testing.T) {
	if KindSensor.String() != "sensor" || KindJam.String() != "jam" ||
		KindDisturbance.String() != "disturbance" {
		t.Fatal("kind names")
	}
	if Kind(9).String() != "kind(9)" {
		t.Fatal(Kind(9).String())
	}
}

func TestCampaignOnHighwayKernelPreventsHazards(t *testing.T) {
	hcfg := world.DefaultHighwayConfig()
	hcfg.Cars = 12
	hcfg.Length = 1200
	h, err := world.BuildHighway(42, 1, hcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	campaign, err := Generate(rand.New(rand.NewSource(42)), GenerateConfig{
		Duration: 2 * sim.Minute,
		Warmup:   20 * sim.Second,
		Events:   25,
		Targets:  hcfg.Cars,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunOnHighway(context.Background(), h, campaign, 2*sim.Minute+30*sim.Second)
	if err != nil {
		t.Fatal(err)
	}

	if rep.Collisions != 0 {
		t.Fatalf("campaign produced %d collisions with the kernel engaged", rep.Collisions)
	}
	if rep.SensorFaultCount == 0 {
		t.Fatal("campaign had no sensor faults (statistically implausible)")
	}
	// The big offset/stuck/delay faults must largely be caught. (Small
	// stochastic episodes can stay under detector thresholds.)
	if rep.Coverage() < 0.5 {
		t.Fatalf("detection coverage %.2f too low (%d/%d)",
			rep.Coverage(), rep.DetectedSensorFaults, rep.SensorFaultCount)
	}
	if rep.DetectionLatencies.Count() > 0 && rep.DetectionLatencies.Percentile(95) > 2000 {
		t.Fatalf("p95 detection latency %.0f ms too slow", rep.DetectionLatencies.Percentile(95))
	}
}

func TestReportCoverageEmpty(t *testing.T) {
	var r Report
	if r.Coverage() != 0 {
		t.Fatal("empty coverage should be 0")
	}
}
