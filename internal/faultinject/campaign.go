// Package faultinject provides the seeded fault-injection campaign engine
// the paper plans for safety assessment "according to the ISO 26262
// safety standard" (Sec. I): randomized schedules of sensor faults,
// network interference and traffic disturbances applied to a running
// scenario, plus the coverage/latency accounting an assessor needs —
// whether each injected fault was detected (validity collapse), how fast,
// whether the Safety Kernel downgraded, and whether any hazard (collision)
// resulted.
package faultinject

import (
	"context"
	"fmt"
	"math/rand"

	"karyon/internal/metrics"
	"karyon/internal/sensor"
	"karyon/internal/sim"
	"karyon/internal/world"
)

// Kind classifies an injected fault.
type Kind int

// Fault kinds.
const (
	// KindSensor injects one of the five sensor fault modes into a car's
	// distance sensor.
	KindSensor Kind = iota + 1
	// KindJam jams the V2V channel.
	KindJam
	// KindDisturbance forces a vehicle to brake sharply (a traffic
	// hazard, not a component fault — it tests the control loop).
	KindDisturbance
)

// String renders the kind.
func (k Kind) String() string {
	switch k {
	case KindSensor:
		return "sensor"
	case KindJam:
		return "jam"
	case KindDisturbance:
		return "disturbance"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one scheduled injection.
type Event struct {
	At       sim.Time
	Kind     Kind
	Target   int // car index (sensor/disturbance)
	Mode     sensor.FaultMode
	Duration sim.Time
	// Magnitude parameterizes offset faults (meters).
	Magnitude float64
	// Inputs is how many of the car's redundant transducers the fault
	// hits (1 = maskable by fusion, 2+ = perception degradation/loss).
	Inputs int
}

// Campaign is a schedule of injections.
type Campaign struct {
	Events []Event
}

// GenerateConfig parameterizes campaign generation.
type GenerateConfig struct {
	// Duration is the campaign window; injections are placed uniformly
	// within [Warmup, Duration).
	Duration sim.Time
	// Warmup is the fault-free prefix.
	Warmup sim.Time
	// Events is the number of injections.
	Events int
	// Targets is the number of injectable cars.
	Targets int
}

// Generate draws a random campaign from the rng.
func Generate(rng *rand.Rand, cfg GenerateConfig) (Campaign, error) {
	if cfg.Events < 0 || cfg.Targets < 1 {
		return Campaign{}, fmt.Errorf("faultinject: invalid generate config %+v", cfg)
	}
	if cfg.Warmup >= cfg.Duration {
		return Campaign{}, fmt.Errorf("faultinject: warmup %v must precede duration %v",
			cfg.Warmup, cfg.Duration)
	}
	window := int64(cfg.Duration - cfg.Warmup)
	modes := sensor.AllFaultModes()
	var c Campaign
	for i := 0; i < cfg.Events; i++ {
		at := cfg.Warmup + sim.Time(rng.Int63n(window))
		roll := rng.Float64()
		switch {
		case roll < 0.6:
			// Mostly single-transducer faults (maskable), occasionally
			// double or total perception failures.
			inputs := 1
			switch r2 := rng.Float64(); {
			case r2 < 0.15:
				inputs = 3
			case r2 < 0.35:
				inputs = 2
			}
			c.Events = append(c.Events, Event{
				At:        at,
				Kind:      KindSensor,
				Target:    rng.Intn(cfg.Targets),
				Mode:      modes[rng.Intn(len(modes))],
				Duration:  sim.Time(1+rng.Int63n(8)) * sim.Second,
				Magnitude: 20 + rng.Float64()*80,
				Inputs:    inputs,
			})
		case roll < 0.8:
			c.Events = append(c.Events, Event{
				At:       at,
				Kind:     KindJam,
				Duration: sim.Time(100+rng.Int63n(2000)) * sim.Millisecond,
			})
		default:
			c.Events = append(c.Events, Event{
				At:       at,
				Kind:     KindDisturbance,
				Target:   rng.Intn(cfg.Targets),
				Duration: sim.Time(1+rng.Int63n(3)) * sim.Second,
			})
		}
	}
	return c, nil
}

// Report aggregates a campaign run.
type Report struct {
	// Injected counts per kind.
	Injected map[Kind]int
	// Collisions is the hazard count (ground truth from the world).
	Collisions int64
	// DetectedSensorFaults counts sensor injections whose victim's
	// validity collapsed below 0.3 during the episode.
	DetectedSensorFaults int
	// SensorFaultCount is the number of detectable sensor injections.
	SensorFaultCount int
	// DetectionLatencies collects injection-to-collapse times (ms).
	DetectionLatencies metrics.Histogram
	// DowngradeLatencies collects injection-to-LoS-drop times (ms) for
	// victims that were above LoS1 at injection.
	DowngradeLatencies metrics.Histogram
}

// Coverage returns the detected fraction of sensor faults.
func (r *Report) Coverage() float64 {
	if r.SensorFaultCount == 0 {
		return 0
	}
	return float64(r.DetectedSensorFaults) / float64(r.SensorFaultCount)
}

// RunOnHighway schedules the campaign onto a highway and runs the world
// for the campaign duration, returning the report. The highway must
// already be started. Injections land at the sharded world's window
// barriers (the only instants at which external actions may touch cars),
// and the detection/downgrade probes sample once per window — both
// quantizations are bounded by one control period. Cancellation of ctx
// surfaces as an error at the next barrier.
func RunOnHighway(ctx context.Context, h *world.Highway, c Campaign, duration sim.Time) (*Report, error) {
	rep := &Report{Injected: make(map[Kind]int)}
	cars := h.Cars()
	// One shared probe pump: injections add probes; each probe runs at
	// every barrier until it reports done.
	var probes []func(now sim.Time) bool
	h.OnWindow(func(now sim.Time) {
		kept := probes[:0]
		for _, p := range probes {
			if !p(now) {
				kept = append(kept, p)
			}
		}
		probes = kept
	})
	for _, ev := range c.Events {
		ev := ev
		if ev.Target >= len(cars) {
			continue
		}
		rep.Injected[ev.Kind]++
		switch ev.Kind {
		case KindSensor:
			rep.SensorFaultCount++
			h.Schedule(ev.At, func() {
				probes = append(probes, injectSensor(h, cars[ev.Target], ev, rep))
			})
		case KindJam:
			h.Schedule(ev.At, func() { h.JamV2V(ev.Duration) })
		case KindDisturbance:
			h.Schedule(ev.At, func() {
				cars[ev.Target].ForceBrake(h.Now(), ev.Duration)
			})
		}
	}
	if err := h.RunContext(ctx, duration); err != nil {
		return nil, err
	}
	rep.Collisions = h.Collisions
	return rep, nil
}

// injectSensor applies the fault (barrier context) and returns the
// detection/downgrade probe to pump at every window.
func injectSensor(h *world.Highway, car *world.Car, ev Event, rep *Report) func(sim.Time) bool {
	injectedAt := h.Now()
	f := sensor.Fault{
		Mode:      ev.Mode,
		From:      injectedAt,
		To:        injectedAt + ev.Duration,
		Magnitude: ev.Magnitude,
		Delay:     sim.Second,
		Prob:      0.5,
	}
	n := ev.Inputs
	if n < 1 {
		n = 1
	}
	inputs := car.SensorInputs()
	if n > len(inputs) {
		n = len(inputs)
	}
	for i := 0; i < n; i++ {
		inputs[i].Physical().Inject(f)
	}
	losAt := car.LoS()

	detected := false
	downgraded := false
	return func(now sim.Time) bool {
		if now >= injectedAt+ev.Duration+sim.Second {
			return true
		}
		if !detected {
			// Two detection channels, per the architecture: the fused
			// validity collapsing (multiple inputs bad), or redundancy
			// flagging the victim transducer as a disagreeing/excluded
			// input (single masked fault, e.g. a permanent offset).
			collapsed := false
			if ind, ok := car.Manager().Runtime().Get("dist.validity"); ok &&
				ind.Value < 0.3 && ind.UpdatedAt >= injectedAt {
				collapsed = true
			}
			if collapsed || car.FusedSensor().Suspected(car.DistanceSensor().Name()) {
				detected = true
				rep.DetectedSensorFaults++
				lat := now - injectedAt
				rep.DetectionLatencies.Observe(float64(lat) / float64(sim.Millisecond))
			}
		}
		if !downgraded && losAt > 1 && car.LoS() < losAt {
			downgraded = true
			lat := now - injectedAt
			rep.DowngradeLatencies.Observe(float64(lat) / float64(sim.Millisecond))
		}
		return false
	}
}
