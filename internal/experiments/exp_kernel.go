package experiments

import (
	"context"
	"fmt"

	"karyon/internal/core"
	"karyon/internal/faultinject"
	"karyon/internal/metrics"
	"karyon/internal/sim"
	"karyon/internal/world"
)

// e1 — Safety Manager cycle: LoS switch latency under fault bursts
// (Fig. 1, Sec. III). The design-time argument requires switch latency
// bounded by the manager period; the records report the measured
// distribution.
func e1() Experiment {
	return Experiment{
		ID:     "E1",
		Title:  "Safety kernel: LoS switch latency bound",
		Anchor: "Fig. 1, Sec. III",
		Run:    runE1,
	}
}

func runE1(cfg Config) *metrics.Result {
	res := metrics.NewResult("E1 - LoS switch latency vs manager period")
	periods := []sim.Time{5 * sim.Millisecond, 10 * sim.Millisecond,
		20 * sim.Millisecond, 50 * sim.Millisecond}
	if cfg.Short {
		periods = periods[:2]
	}
	bursts := cfg.n(200, 25)
	for _, period := range periods {
		k := sim.NewKernel(cfg.Seed)
		ri := core.NewRuntimeInfo(k)
		mgr, err := core.NewManager(k, ri, core.ManagerConfig{Period: period, UpgradeStability: 2})
		if err != nil {
			res.AddNote("period %v: %v", period, err)
			continue
		}
		fn, err := mgr.AddFunctionality("f", 3)
		if err != nil {
			continue
		}
		_ = fn.AddRule(2, core.MinValidity("x", 0.5))
		_ = fn.AddRule(3, core.MinValidity("x", 0.9))
		if err := mgr.Start(); err != nil {
			continue
		}
		ri.Set("x", 1)

		var lats metrics.Histogram
		downs := 0
		// Fault bursts: x collapses at random instants; measure time from
		// collapse to the manager's downswitch.
		for i := 0; i < bursts; i++ {
			gap := sim.Time(k.Rand().Int63n(int64(200*sim.Millisecond))) + 100*sim.Millisecond
			k.RunFor(gap) // recover window
			ri.Set("x", 1)
			k.RunFor(20 * period) // let it climb back
			violateAt := k.Now()
			ri.Set("x", 0.1)
			pre := len(fn.Switches)
			k.RunFor(2 * period)
			if len(fn.Switches) > pre {
				sw := fn.Switches[len(fn.Switches)-1]
				if sw.To < sw.From {
					downs++
					lats.Observe(float64(sw.At-violateAt) / float64(sim.Millisecond))
				}
			}
		}
		bound := float64(period) / float64(sim.Millisecond)
		res.Record("period", period.String()).
			Int("downswitches", int64(downs)).
			Val("lat.mean", lats.Mean(), metrics.Ms).
			Val("lat.p99", lats.Percentile(99), metrics.Ms).
			Val("lat.max", lats.Max(), metrics.Ms).
			Bool("bound.ok", lats.Max() <= bound)
	}
	res.AddNote("bound.ok: max observed latency <= manager period (the design-time guarantee)")
	return res
}

// e2 — the performance-safety trade-off: highway flow per LoS policy
// (Sec. III). Expected shape: flow(LoS3) > flow(LoS2) > flow(LoS1);
// adaptive tracks the best feasible level; collisions zero everywhere
// except the reckless baseline under faults.
func e2() Experiment {
	return Experiment{
		ID:     "E2",
		Title:  "Performance-safety trade-off: flow per LoS policy",
		Anchor: "Sec. III (LoS concept)",
		Run:    runE2,
	}
}

func runE2(cfg Config) *metrics.Result {
	cars := cfg.n(50, 16)
	warm := cfg.dur(30*sim.Second, 8*sim.Second)
	measure := cfg.dur(90*sim.Second, 20*sim.Second)
	ringM := 30 * float64(cars)
	res := metrics.NewResult(fmt.Sprintf(
		"E2 - highway flow and safety per LoS policy (%d cars, %.1f km ring, %s)",
		cars, ringM/1000, (warm + measure).String()))
	variant := int64(0)
	run := func(name string, mode world.LoSMode, fixed core.LoS, faults, v2v bool) {
		variant++
		hcfg := world.DefaultHighwayConfig()
		// Dense enough that the LoS time gap binds: mean spacing 30 m is
		// below the LoS1 desired gap at cruise speed, so the headway
		// policy — not the speed limit — sets the equilibrium flow.
		hcfg.Cars = cars
		hcfg.Length = ringM
		hcfg.Mode = mode
		hcfg.FixedLoS = fixed
		hcfg.Medium = cfg.Medium
		hcfg.CarrierSense = cfg.Medium
		hcfg.SpecDepth = cfg.SpecDepth
		if !v2v {
			hcfg.V2VPeriod = 0
		}
		h, err := world.BuildHighway(cfg.Seed, cfg.shards(), hcfg)
		if err != nil {
			res.AddNote("%s: %v", name, err)
			return
		}
		if err := h.Start(); err != nil {
			return
		}
		if err := h.Run(warm); err != nil {
			res.AddNote("%s: %v", name, err)
			return
		}
		if faults {
			campaign, err := faultinject.Generate(sim.NewStream(cfg.Seed, variant, 11).Rand,
				faultinject.GenerateConfig{
					Duration: measure, Warmup: sim.Second,
					Events: cfg.n(60, 15), Targets: hcfg.Cars,
				})
			if err == nil {
				if _, err := faultinject.RunOnHighway(context.Background(), h, campaign, measure); err != nil {
					res.AddNote("%s: %v", name, err)
					return
				}
			}
		} else if err := h.Run(measure); err != nil {
			res.AddNote("%s: %v", name, err)
			return
		}
		res.Record("policy", name).
			Val("flow veh/h", h.Flow(), metrics.F2).
			Val("mean speed", h.MeanSpeed(), metrics.F2).
			Val("p5 timegap", h.TimeGaps.Percentile(5), metrics.F2).
			Int("collisions", h.Collisions)
	}
	run("fixed LoS1 (non-coop)", world.ModeFixed, 1, false, true)
	run("fixed LoS2 (validated)", world.ModeFixed, 2, false, true)
	run("fixed LoS3 (cooperative)", world.ModeFixed, 3, false, true)
	run("adaptive (KARYON)", world.ModeAdaptive, 0, false, true)
	run("adaptive + faults", world.ModeAdaptive, 0, true, true)
	run("reckless + faults", world.ModeReckless, 3, true, true)
	run("adaptive + faults, no V2V", world.ModeAdaptive, 0, true, false)
	run("reckless + faults, no V2V", world.ModeReckless, 3, true, false)
	res.AddNote("expected shape: flow rises with LoS; adaptive tracks the best feasible level")
	res.AddNote("with V2V, even the reckless baseline is often rescued by cooperative lead-speed data; removing V2V isolates the perception path, where only the kernel's validity-gated fallback prevents collisions")
	return res
}

// e12 — ACC/platooning use case under an ISO 26262-style campaign
// (Sec. VI-A1).
func e12() Experiment {
	return Experiment{
		ID:       "E12",
		Title:    "Platooning under fault-injection campaigns",
		Anchor:   "Sec. VI-A1 (ACC use case), Sec. I (ISO 26262 assessment)",
		Replicas: 3,
		Run:      runE12,
	}
}

func runE12(cfg Config) *metrics.Result {
	campaigns := cfg.n(4, 2)
	dur := cfg.dur(3*sim.Minute, 30*sim.Second)
	res := metrics.NewResult(fmt.Sprintf(
		"E12 - 30-car platoon, randomized campaigns (%s each)", dur.String()))
	for c := 0; c < campaigns; c++ {
		hcfg := world.DefaultHighwayConfig()
		hcfg.Medium = cfg.Medium
		hcfg.CarrierSense = cfg.Medium
		hcfg.SpecDepth = cfg.SpecDepth
		h, err := world.BuildHighway(cfg.Seed+int64(c), cfg.shards(), hcfg)
		if err != nil {
			res.AddNote("campaign %d: %v", c, err)
			continue
		}
		if err := h.Start(); err != nil {
			continue
		}
		if err := h.Run(cfg.dur(20*sim.Second, 5*sim.Second)); err != nil {
			continue
		}
		campaign, err := faultinject.Generate(sim.NewStream(cfg.Seed+int64(c), 0, 11).Rand,
			faultinject.GenerateConfig{
				Duration: dur, Warmup: sim.Second,
				Events: cfg.n(30, 8), Targets: hcfg.Cars,
			})
		if err != nil {
			continue
		}
		rep, err := faultinject.RunOnHighway(context.Background(), h, campaign, dur+10*sim.Second)
		if err != nil {
			res.AddNote("campaign %d: %v", c, err)
			continue
		}
		res.Record("campaign", fmt.Sprintf("campaign %d", c)).
			Int("faults", int64(len(campaign.Events))).
			Int("collisions", rep.Collisions).
			Val("coverage", rep.Coverage(), metrics.Pct).
			Val("det.p95 ms", rep.DetectionLatencies.Percentile(95), metrics.F2).
			Val("downgrade.p95 ms", rep.DowngradeLatencies.Percentile(95), metrics.F2)
	}
	res.AddNote("safety goal: zero collisions in every campaign (paper's functional-safety claim)")
	return res
}
