package experiments

import (
	"fmt"

	"karyon/internal/core"
	"karyon/internal/faultinject"
	"karyon/internal/metrics"
	"karyon/internal/sim"
	"karyon/internal/world"
)

// e1 — Safety Manager cycle: LoS switch latency under fault bursts
// (Fig. 1, Sec. III). The design-time argument requires switch latency
// bounded by the manager period; the table reports the measured
// distribution.
func e1() Experiment {
	return Experiment{
		ID:     "E1",
		Title:  "Safety kernel: LoS switch latency bound",
		Anchor: "Fig. 1, Sec. III",
		Run:    runE1,
	}
}

func runE1(seed int64) *metrics.Table {
	tab := metrics.NewTable("E1 - LoS switch latency vs manager period",
		"period", "downswitches", "lat.mean", "lat.p99", "lat.max", "bound.ok")
	for _, period := range []sim.Time{5 * sim.Millisecond, 10 * sim.Millisecond,
		20 * sim.Millisecond, 50 * sim.Millisecond} {
		k := sim.NewKernel(seed)
		ri := core.NewRuntimeInfo(k)
		mgr, err := core.NewManager(k, ri, core.ManagerConfig{Period: period, UpgradeStability: 2})
		if err != nil {
			tab.AddNote("period %v: %v", period, err)
			continue
		}
		fn, err := mgr.AddFunctionality("f", 3)
		if err != nil {
			continue
		}
		_ = fn.AddRule(2, core.MinValidity("x", 0.5))
		_ = fn.AddRule(3, core.MinValidity("x", 0.9))
		if err := mgr.Start(); err != nil {
			continue
		}
		ri.Set("x", 1)

		var lats metrics.Histogram
		downs := 0
		// Fault bursts: x collapses at random instants; measure time from
		// collapse to the manager's downswitch.
		for i := 0; i < 200; i++ {
			gap := sim.Time(k.Rand().Int63n(int64(200*sim.Millisecond))) + 100*sim.Millisecond
			k.RunFor(gap) // recover window
			ri.Set("x", 1)
			k.RunFor(20 * period) // let it climb back
			violateAt := k.Now()
			ri.Set("x", 0.1)
			pre := len(fn.Switches)
			k.RunFor(2 * period)
			if len(fn.Switches) > pre {
				sw := fn.Switches[len(fn.Switches)-1]
				if sw.To < sw.From {
					downs++
					lats.Observe(float64(sw.At-violateAt) / float64(sim.Millisecond))
				}
			}
		}
		bound := float64(period) / float64(sim.Millisecond)
		ok := lats.Max() <= bound
		tab.AddRow(period.String(), metrics.FmtInt(int64(downs)),
			metrics.FmtMs(lats.Mean()), metrics.FmtMs(lats.Percentile(99)),
			metrics.FmtMs(lats.Max()), fmt.Sprintf("%v", ok))
	}
	tab.AddNote("bound.ok: max observed latency <= manager period (the design-time guarantee)")
	return tab
}

// e2 — the performance-safety trade-off: highway flow per LoS policy
// (Sec. III). Expected shape: flow(LoS3) > flow(LoS2) > flow(LoS1);
// adaptive tracks the best feasible level; collisions zero everywhere
// except the reckless baseline under faults.
func e2() Experiment {
	return Experiment{
		ID:     "E2",
		Title:  "Performance-safety trade-off: flow per LoS policy",
		Anchor: "Sec. III (LoS concept)",
		Run:    runE2,
	}
}

func runE2(seed int64) *metrics.Table {
	tab := metrics.NewTable("E2 - highway flow and safety per LoS policy (50 cars, 1.5 km ring, 120 s)",
		"policy", "flow veh/h", "mean speed", "p5 timegap", "collisions")
	run := func(name string, mode world.LoSMode, fixed core.LoS, faults, v2v bool) {
		k := sim.NewKernel(seed)
		cfg := world.DefaultHighwayConfig()
		// Dense enough that the LoS time gap binds: mean spacing 30 m is
		// below the LoS1 desired gap at cruise speed, so the headway
		// policy — not the speed limit — sets the equilibrium flow.
		cfg.Cars = 50
		cfg.Length = 1500
		cfg.Mode = mode
		cfg.FixedLoS = fixed
		if !v2v {
			cfg.V2VPeriod = 0
		}
		h, err := world.NewHighway(k, cfg)
		if err != nil {
			tab.AddNote("%s: %v", name, err)
			return
		}
		if err := h.Start(); err != nil {
			return
		}
		k.RunFor(30 * sim.Second)
		if faults {
			campaign, err := faultinject.Generate(k.Rand(), faultinject.GenerateConfig{
				Duration: 90 * sim.Second, Warmup: sim.Second,
				Events: 60, Targets: cfg.Cars,
			})
			if err == nil {
				faultinject.RunOnHighway(k, h, campaign, 90*sim.Second)
			}
		} else {
			k.RunFor(90 * sim.Second)
		}
		tab.AddRow(name,
			metrics.FmtF(h.Flow()), metrics.FmtF(h.MeanSpeed()),
			metrics.FmtF(h.TimeGaps.Percentile(5)), metrics.FmtInt(h.Collisions))
	}
	run("fixed LoS1 (non-coop)", world.ModeFixed, 1, false, true)
	run("fixed LoS2 (validated)", world.ModeFixed, 2, false, true)
	run("fixed LoS3 (cooperative)", world.ModeFixed, 3, false, true)
	run("adaptive (KARYON)", world.ModeAdaptive, 0, false, true)
	run("adaptive + faults", world.ModeAdaptive, 0, true, true)
	run("reckless + faults", world.ModeReckless, 3, true, true)
	run("adaptive + faults, no V2V", world.ModeAdaptive, 0, true, false)
	run("reckless + faults, no V2V", world.ModeReckless, 3, true, false)
	tab.AddNote("expected shape: flow rises with LoS; adaptive tracks the best feasible level")
	tab.AddNote("with V2V, even the reckless baseline is often rescued by cooperative lead-speed data; removing V2V isolates the perception path, where only the kernel's validity-gated fallback prevents collisions")
	return tab
}

// e12 — ACC/platooning use case under an ISO 26262-style campaign
// (Sec. VI-A1).
func e12() Experiment {
	return Experiment{
		ID:     "E12",
		Title:  "Platooning under fault-injection campaigns",
		Anchor: "Sec. VI-A1 (ACC use case), Sec. I (ISO 26262 assessment)",
		Run:    runE12,
	}
}

func runE12(seed int64) *metrics.Table {
	tab := metrics.NewTable("E12 - 30-car platoon, randomized campaigns (3 min each)",
		"campaign", "faults", "collisions", "coverage", "det.p95 ms", "downgrade.p95 ms")
	for c := 0; c < 4; c++ {
		k := sim.NewKernel(seed + int64(c))
		cfg := world.DefaultHighwayConfig()
		h, err := world.NewHighway(k, cfg)
		if err != nil {
			tab.AddNote("campaign %d: %v", c, err)
			continue
		}
		if err := h.Start(); err != nil {
			continue
		}
		k.RunFor(20 * sim.Second)
		campaign, err := faultinject.Generate(k.Rand(), faultinject.GenerateConfig{
			Duration: 3 * sim.Minute, Warmup: sim.Second,
			Events: 30, Targets: cfg.Cars,
		})
		if err != nil {
			continue
		}
		rep := faultinject.RunOnHighway(k, h, campaign, 3*sim.Minute+10*sim.Second)
		tab.AddRow(fmt.Sprintf("seed %d", seed+int64(c)),
			metrics.FmtInt(int64(len(campaign.Events))),
			metrics.FmtInt(rep.Collisions),
			metrics.FmtPct(rep.Coverage()),
			metrics.FmtF(rep.DetectionLatencies.Percentile(95)),
			metrics.FmtF(rep.DowngradeLatencies.Percentile(95)))
	}
	tab.AddNote("safety goal: zero collisions in every campaign (paper's functional-safety claim)")
	return tab
}
