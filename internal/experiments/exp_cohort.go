package experiments

import (
	"karyon/internal/coord"
	"karyon/internal/metrics"
	"karyon/internal/sim"
	"karyon/internal/wireless"
)

// e16 — cohort (platoon) formation, profile dissemination and head
// failover under loss (Sec. V-C [24]; Sec. VI-A3's "platoons of cars").
func e16() Experiment {
	return Experiment{
		ID:     "E16",
		Title:  "Cohorts: platoon formation and head failover vs loss",
		Anchor: "Sec. V-C ([24] Le Lann), Sec. VI-A3",
		Run:    runE16,
	}
}

func runE16(cfg Config) *metrics.Result {
	res := metrics.NewResult("E16 - 8-vehicle cohort: formation, profile adoption, head-crash failover")
	losses := []float64{0, 0.2, 0.4}
	if cfg.Short {
		losses = []float64{0, 0.4}
	}
	formWindow := cfg.dur(30*sim.Second, 15*sim.Second)
	failWindow := cfg.dur(20*sim.Second, 12*sim.Second)
	for _, loss := range losses {
		k := sim.NewKernel(cfg.Seed)
		mcfg := wireless.DefaultConfig()
		mcfg.LossProb = loss
		medium := wireless.NewMedium(k, mcfg)
		n := 8
		var members []*coord.CohortMember
		ok := true
		for i := 0; i < n; i++ {
			radio, err := medium.Attach(wireless.NodeID(i), wireless.Position{X: float64(i) * 10})
			if err != nil {
				ok = false
				break
			}
			m, err := coord.NewCohortMember(k, radio, coord.DefaultCohortConfig("p"))
			if err != nil {
				ok = false
				break
			}
			radio.OnReceive(m.OnFrame)
			members = append(members, m)
		}
		if !ok {
			res.AddNote("rig construction failed at loss %v", loss)
			continue
		}
		if err := members[0].Found(25); err != nil {
			continue
		}
		for _, m := range members[1:] {
			if err := m.Join(); err != nil {
				ok = false
			}
		}
		if !ok {
			continue
		}
		// Formation time: first instant every member is joined.
		formAt := sim.Time(-1)
		for k.Now() < formWindow {
			k.RunFor(100 * sim.Millisecond)
			all := true
			for _, m := range members {
				if !m.Joined() {
					all = false
					break
				}
			}
			if all {
				formAt = k.Now()
				break
			}
		}
		joined := 0
		for _, m := range members {
			if m.Joined() {
				joined++
			}
		}
		// Profile change adoption.
		_ = members[0].SetTargetSpeed(30)
		k.RunFor(2 * sim.Second)
		adopted := 0
		for _, m := range members {
			if v, vok := m.TargetSpeed(); vok && v == 30 {
				adopted++
			}
		}
		// Head crash and failover.
		members[0].Stop()
		medium.Detach(0)
		crashAt := k.Now()
		failoverAt := sim.Time(-1)
		for k.Now() < crashAt+failWindow {
			k.RunFor(100 * sim.Millisecond)
			for _, m := range members[1:] {
				if m.Head() {
					failoverAt = k.Now()
				}
			}
			if failoverAt >= 0 {
				break
			}
		}
		k.RunFor(2 * sim.Second)
		heads := 0
		for _, m := range members[1:] {
			if m.Head() {
				heads++
			}
		}
		rec := res.Record("loss", metrics.FmtPct(loss)).
			Int("joined", int64(joined))
		if formAt >= 0 {
			rec.Val("form time s", formAt.Seconds(), metrics.F2)
		} else {
			rec.MissingVal("form time s", metrics.F2)
		}
		rec.Int("profile adopted", int64(adopted)).
			Int("heads after crash", int64(heads))
		if failoverAt >= 0 {
			rec.Val("failover time s", (failoverAt - crashAt).Seconds(), metrics.F2)
		} else {
			rec.MissingVal("failover time s", metrics.F2)
		}
	}
	res.AddNote("expected: full formation and adoption, exactly one head after the crash, failover within ~headTimeout + a few roster periods even under loss")
	return res
}
