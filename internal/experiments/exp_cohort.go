package experiments

import (
	"karyon/internal/coord"
	"karyon/internal/metrics"
	"karyon/internal/sim"
	"karyon/internal/wireless"
)

// e16 — cohort (platoon) formation, profile dissemination and head
// failover under loss (Sec. V-C [24]; Sec. VI-A3's "platoons of cars").
func e16() Experiment {
	return Experiment{
		ID:     "E16",
		Title:  "Cohorts: platoon formation and head failover vs loss",
		Anchor: "Sec. V-C ([24] Le Lann), Sec. VI-A3",
		Run:    runE16,
	}
}

func runE16(seed int64) *metrics.Table {
	tab := metrics.NewTable("E16 - 8-vehicle cohort: formation, profile adoption, head-crash failover",
		"loss", "joined", "form time s", "profile adopted", "heads after crash", "failover time s")
	for _, loss := range []float64{0, 0.2, 0.4} {
		k := sim.NewKernel(seed)
		mcfg := wireless.DefaultConfig()
		mcfg.LossProb = loss
		medium := wireless.NewMedium(k, mcfg)
		n := 8
		var members []*coord.CohortMember
		ok := true
		for i := 0; i < n; i++ {
			radio, err := medium.Attach(wireless.NodeID(i), wireless.Position{X: float64(i) * 10})
			if err != nil {
				ok = false
				break
			}
			m, err := coord.NewCohortMember(k, radio, coord.DefaultCohortConfig("p"))
			if err != nil {
				ok = false
				break
			}
			radio.OnReceive(m.OnFrame)
			members = append(members, m)
		}
		if !ok {
			tab.AddNote("rig construction failed at loss %v", loss)
			continue
		}
		if err := members[0].Found(25); err != nil {
			continue
		}
		for _, m := range members[1:] {
			if err := m.Join(); err != nil {
				ok = false
			}
		}
		if !ok {
			continue
		}
		// Formation time: first instant every member is joined.
		formAt := sim.Time(-1)
		for k.Now() < 30*sim.Second {
			k.RunFor(100 * sim.Millisecond)
			all := true
			for _, m := range members {
				if !m.Joined() {
					all = false
					break
				}
			}
			if all {
				formAt = k.Now()
				break
			}
		}
		joined := 0
		for _, m := range members {
			if m.Joined() {
				joined++
			}
		}
		// Profile change adoption.
		_ = members[0].SetTargetSpeed(30)
		k.RunFor(2 * sim.Second)
		adopted := 0
		for _, m := range members {
			if v, vok := m.TargetSpeed(); vok && v == 30 {
				adopted++
			}
		}
		// Head crash and failover.
		members[0].Stop()
		medium.Detach(0)
		crashAt := k.Now()
		failoverAt := sim.Time(-1)
		for k.Now() < crashAt+20*sim.Second {
			k.RunFor(100 * sim.Millisecond)
			for _, m := range members[1:] {
				if m.Head() {
					failoverAt = k.Now()
				}
			}
			if failoverAt >= 0 {
				break
			}
		}
		k.RunFor(2 * sim.Second)
		heads := 0
		for _, m := range members[1:] {
			if m.Head() {
				heads++
			}
		}
		formCell := "never"
		if formAt >= 0 {
			formCell = metrics.FmtF(formAt.Seconds())
		}
		failCell := "never"
		if failoverAt >= 0 {
			failCell = metrics.FmtF((failoverAt - crashAt).Seconds())
		}
		tab.AddRow(metrics.FmtPct(loss),
			metrics.FmtInt(int64(joined)), formCell,
			metrics.FmtInt(int64(adopted)),
			metrics.FmtInt(int64(heads)), failCell)
	}
	tab.AddNote("expected: full formation and adoption, exactly one head after the crash, failover within ~headTimeout + a few roster periods even under loss")
	return tab
}
