package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 16 {
		t.Fatalf("registry has %d experiments, want 16", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Anchor == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	for i := 1; i <= 16; i++ {
		id := "E" + itoa(i)
		if !seen[id] {
			t.Fatalf("missing %s", id)
		}
	}
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return "1" + string(rune('0'+i-10))
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E5"); !ok {
		t.Fatal("E5 not found")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("phantom experiment found")
	}
}

// Each experiment must produce a non-trivial table deterministically. The
// heavyweight ones are exercised end-to-end here (this is also the repo's
// integration test across all subsystems).
func TestExperimentsRunAndAreDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are long")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			out1 := e.Run(1).String()
			if len(out1) == 0 || !strings.Contains(out1, e.ID) {
				t.Fatalf("%s produced unusable output:\n%s", e.ID, out1)
			}
			lines := strings.Split(strings.TrimSpace(out1), "\n")
			if len(lines) < 4 {
				t.Fatalf("%s table too small:\n%s", e.ID, out1)
			}
			out2 := e.Run(1).String()
			if out1 != out2 {
				t.Fatalf("%s is nondeterministic for the same seed:\nfirst:\n%s\nsecond:\n%s",
					e.ID, out1, out2)
			}
		})
	}
}
