package experiments

import (
	"strings"
	"testing"

	"karyon/internal/sim"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 17 {
		t.Fatalf("registry has %d experiments, want 17", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Anchor == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	for i := 1; i <= 16; i++ {
		id := "E" + itoa(i)
		if !seen[id] {
			t.Fatalf("missing %s", id)
		}
	}
	if !seen["E-MAC-S"] {
		t.Fatal("missing E-MAC-S")
	}
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return "1" + string(rune('0'+i-10))
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E5"); !ok {
		t.Fatal("E5 not found")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("phantom experiment found")
	}
}

// Each experiment must produce a non-trivial structured result
// deterministically. Under -short the reduced-fidelity configuration runs
// (seconds, not minutes) so every harness still executes end-to-end; the
// default mode keeps full fidelity and doubles as the repo's integration
// test across all subsystems.
func TestExperimentsRunAndAreDeterministic(t *testing.T) {
	short := testing.Short()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			cfg := Config{Seed: 1, Short: short}
			res1 := e.Run(cfg)
			out1 := res1.Table().String()
			if len(out1) == 0 || !strings.Contains(out1, e.ID) {
				t.Fatalf("%s produced unusable output:\n%s", e.ID, out1)
			}
			if len(res1.Records) == 0 {
				t.Fatalf("%s produced no records", e.ID)
			}
			lines := strings.Split(strings.TrimSpace(out1), "\n")
			if len(lines) < 4 {
				t.Fatalf("%s table too small:\n%s", e.ID, out1)
			}
			out2 := e.Run(cfg).Table().String()
			if out1 != out2 {
				t.Fatalf("%s is nondeterministic for the same seed:\nfirst:\n%s\nsecond:\n%s",
					e.ID, out1, out2)
			}
		})
	}
}

// The Harnessed adapter must hand the kernel's seed through to the
// experiment so a harness replica equals a direct run.
func TestHarnessedAdapterMatchesDirectRun(t *testing.T) {
	e, ok := ByID("E3")
	if !ok {
		t.Fatal("E3 missing")
	}
	h := Harnessed{Exp: e, Short: true}
	if h.Name() != "E3" {
		t.Fatalf("Name() = %q", h.Name())
	}
	direct := e.Run(Config{Seed: 7, Short: true}).Table().String()
	viaKernel, err := h.Run(sim.NewKernel(7))
	if err != nil {
		t.Fatal(err)
	}
	if got := viaKernel.Table().String(); got != direct {
		t.Fatalf("adapter diverges from direct run:\nadapter:\n%s\ndirect:\n%s", got, direct)
	}
}
