package experiments

import (
	"fmt"

	"karyon/internal/metrics"
	"karyon/internal/sim"
	"karyon/internal/world"
)

// eMacS — slot-level beacon contention inside the sharded worlds: the
// mac/inaccess phenomena (airtime collisions, carrier-sense deferrals,
// jam-induced inaccessibility) measured where the paper's safety argument
// lives — the full-stack highway — instead of on an isolated protocol
// clique. The sweep crosses vehicle density with jam-burst length and
// reports beacon delivery ratio, contention outcomes, the observed
// inaccessibility durations, and the safety bottom line (collisions,
// LoS3 occupancy). Replicated by default and honoring Config.Shards: the
// numbers are identical at every shard width.
func eMacS() Experiment {
	return Experiment{
		ID:       "E-MAC-S",
		Title:    "Beacon delivery and inaccessibility vs density and jamming, in-world",
		Anchor:   "Sec. V-A1 (inaccessibility) at Sec. VI-A scale",
		Replicas: 3,
		Run:      runEMacS,
	}
}

func runEMacS(cfg Config) *metrics.Result {
	dur := cfg.dur(30*sim.Second, 8*sim.Second)
	densities := []int{60, 120, 240}
	bursts := []sim.Time{0, 500 * sim.Millisecond}
	if cfg.Short {
		densities = []int{40, 120}
	}
	const ring = 6000.0
	res := metrics.NewResult(fmt.Sprintf(
		"E-MAC-S - slot-level beacon contention on a %.0f m ring (%s per cell)", ring, dur.String()))
	for _, cars := range densities {
		for _, burst := range bursts {
			hcfg := world.DefaultHighwayConfig()
			hcfg.Length = ring
			hcfg.Cars = cars
			hcfg.Medium = true
			hcfg.CarrierSense = true
			hcfg.Loss = 0.02
			// Honored for uniformity, but carrier-sense worlds fence
			// speculation to lockstep (whole-window contention cannot be
			// resolved per-arc), so this never changes the numbers.
			hcfg.SpecDepth = cfg.SpecDepth
			h, err := world.BuildHighway(cfg.Seed, cfg.shards(), hcfg)
			if err != nil {
				res.AddNote("%d cars: %v", cars, err)
				continue
			}
			if burst > 0 {
				// Periodic wideband interference, every 3 s from warm-up on.
				for t := 3 * sim.Second; t < dur; t += 3 * sim.Second {
					burst := burst
					h.Schedule(t, func() { h.JamV2V(burst) })
				}
			}
			if err := h.Start(); err != nil {
				res.AddNote("%d cars: %v", cars, err)
				continue
			}
			if err := h.Run(dur); err != nil {
				res.AddNote("%d cars: %v", cars, err)
				continue
			}
			st := h.MediumStats()
			inacc := h.Inaccessibility()
			los3 := 0
			for _, c := range h.Cars() {
				if c.LoS() == 3 {
					los3++
				}
			}
			res.Record("density veh/km", fmt.Sprintf("%.0f", float64(cars)/(ring/1000)),
				"jam burst", burst.String()).
				Val("delivery ratio", st.DeliveryRatio(), metrics.Pct).
				Int("radio collisions", st.Collisions).
				Int("deferred", st.Deferred).
				Int("retried", st.Retries).
				Int("jammed", st.Jammed).
				Val("inacc p95 ms", inacc.Percentile(95), metrics.F2).
				Val("inacc max ms", inacc.Max(), metrics.F2).
				Val("LoS3 share", float64(los3)/float64(cars), metrics.Pct).
				Int("collisions", h.Collisions).
				Val("mean speed m/s", h.MeanSpeed(), metrics.F2)
		}
	}
	res.AddNote("expected: delivery ratio falls and radio collisions rise with density; under CSMA a jam surfaces as deferrals (carrier sense reports the burst busy), and each burst appears whole in the inaccessibility durations — all without vehicle collisions")
	res.AddNote("beacon age: a retried frame re-contends when the channel clears instead of dropping, so it is delivered within its own barrier window — at worst one beacon period (100 ms) staler than its slot, never staler than the next beacon would have been; the retried column counts beacons whose loss carrier sense converted into that bounded staleness")
	return res
}
