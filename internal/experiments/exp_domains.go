package experiments

import (
	"karyon/internal/avionics"
	"karyon/internal/metrics"
	"karyon/internal/sim"
	"karyon/internal/world"
)

// e13 — intersection crossing with a failing traffic light and the
// virtual-traffic-light backup (Sec. VI-A2).
func e13() Experiment {
	return Experiment{
		ID:     "E13",
		Title:  "Virtual traffic light takes over a failed intersection",
		Anchor: "Sec. VI-A2",
		Run:    runE13,
	}
}

func runE13(cfg Config) *metrics.Result {
	pre := cfg.dur(60*sim.Second, 20*sim.Second)
	post := cfg.dur(5*sim.Minute, 70*sim.Second)
	res := metrics.NewResult("E13 - intersection throughput across light failure")
	run := func(name string, fail bool, backup bool) {
		icfg := world.DefaultIntersectionConfig()
		if fail {
			icfg.LightFailsAt = pre
		}
		icfg.VirtualBackup = backup
		w, err := world.BuildIntersection(cfg.Seed, cfg.shards(), icfg)
		if err != nil {
			res.AddNote("%s: %v", name, err)
			return
		}
		if err := w.Start(); err != nil {
			return
		}
		if err := w.Run(pre); err != nil {
			res.AddNote("%s: %v", name, err)
			return
		}
		before := w.Crossed[world.RoadNS] + w.Crossed[world.RoadEW]
		if err := w.Run(post); err != nil {
			res.AddNote("%s: %v", name, err)
			return
		}
		after := w.Crossed[world.RoadNS] + w.Crossed[world.RoadEW]
		res.Record("variant", name).
			Int("crossed pre-failure", before).
			Int("crossed post-failure", after-before).
			Val("wait p95 s", w.WaitTimes.Percentile(95), metrics.F2).
			Int("conflicts", w.Conflicts)
		w.Stop()
	}
	run("light healthy", false, true)
	run("light fails, virtual backup", true, true)
	run("light fails, no backup", true, false)
	res.AddNote("expected: virtual backup sustains throughput after failure; no backup stalls (fail-safe); conflicts 0 everywhere")
	return res
}

// e15 — avionic encounters: separation violations for collaborative vs
// non-collaborative traffic across the three scenarios (Sec. VI-B,
// Figs. 6-7).
func e15() Experiment {
	return Experiment{
		ID:     "E15",
		Title:  "Avionics: separation keeping, ADS-B vs voice traffic",
		Anchor: "Sec. VI-B, Figs. 6-7",
		Run:    runE15,
	}
}

func runE15(cfg Config) *metrics.Result {
	res := metrics.NewResult("E15 - two-aircraft encounters (separation minima 1000 m / 150 m)")
	for _, s := range avionics.Scenarios() {
		for _, collaborative := range []bool{true, false} {
			k := sim.NewKernel(cfg.Seed)
			ecfg := avionics.DefaultEncounterConfig(s, collaborative)
			e, err := avionics.NewEncounter(k, ecfg)
			if err != nil {
				res.AddNote("%v: %v", s, err)
				continue
			}
			enc, err := e.Run()
			if err != nil {
				continue
			}
			traffic := "ADS-B"
			if !collaborative {
				traffic = "voice"
			}
			res.Record("scenario", s.String(), "traffic", traffic).
				Int("violation ticks", enc.ViolationTicks).
				Val("min lateral m", enc.MinLateral, metrics.F2).
				Bool("maneuvered", enc.Maneuvered).
				Val("LoS3 time", enc.TimeAtLoS3Frac, metrics.Pct)
		}
	}
	res.AddNote("expected: zero violations both ways; ADS-B runs cooperative (LoS3, tighter margins), voice runs stay LoS2 with wider berths")
	// Mission profile summary (Fig. 6) as footnote data.
	a := &avionics.Aircraft{Speed: 60, ClimbRate: 8}
	track, elapsed := avionics.FlyMission(a, avionics.RPVMission(), 0.5, 3600)
	alts := avionics.SummarizeTrack(track)
	res.AddNote("RPV mission (Fig. 6): %d legs, %.0f s, sweep altitude %.0f m, final altitude %.0f m",
		len(avionics.RPVMission()), elapsed, alts.Max(), track[len(track)-1].Z)
	return res
}
