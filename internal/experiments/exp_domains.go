package experiments

import (
	"karyon/internal/avionics"
	"karyon/internal/metrics"
	"karyon/internal/sim"
	"karyon/internal/world"
)

// e13 — intersection crossing with a failing traffic light and the
// virtual-traffic-light backup (Sec. VI-A2).
func e13() Experiment {
	return Experiment{
		ID:     "E13",
		Title:  "Virtual traffic light takes over a failed intersection",
		Anchor: "Sec. VI-A2",
		Run:    runE13,
	}
}

func runE13(seed int64) *metrics.Table {
	tab := metrics.NewTable("E13 - intersection throughput across light failure at t=60 s (6 min runs)",
		"variant", "crossed 0-60s", "crossed 60s-end", "wait p95 s", "conflicts")
	run := func(name string, failAt sim.Time, backup bool) {
		k := sim.NewKernel(seed)
		cfg := world.DefaultIntersectionConfig()
		cfg.LightFailsAt = failAt
		cfg.VirtualBackup = backup
		w, err := world.NewIntersection(k, cfg)
		if err != nil {
			tab.AddNote("%s: %v", name, err)
			return
		}
		if err := w.Start(); err != nil {
			return
		}
		k.RunFor(60 * sim.Second)
		before := w.Crossed[world.RoadNS] + w.Crossed[world.RoadEW]
		k.RunFor(5 * sim.Minute)
		after := w.Crossed[world.RoadNS] + w.Crossed[world.RoadEW]
		tab.AddRow(name, metrics.FmtInt(before), metrics.FmtInt(after-before),
			metrics.FmtF(w.WaitTimes.Percentile(95)), metrics.FmtInt(w.Conflicts))
		w.Stop()
	}
	run("light healthy", 0, true)
	run("light fails, virtual backup", 60*sim.Second, true)
	run("light fails, no backup", 60*sim.Second, false)
	tab.AddNote("expected: virtual backup sustains throughput after failure; no backup stalls (fail-safe); conflicts 0 everywhere")
	return tab
}

// e15 — avionic encounters: separation violations for collaborative vs
// non-collaborative traffic across the three scenarios (Sec. VI-B,
// Figs. 6-7).
func e15() Experiment {
	return Experiment{
		ID:     "E15",
		Title:  "Avionics: separation keeping, ADS-B vs voice traffic",
		Anchor: "Sec. VI-B, Figs. 6-7",
		Run:    runE15,
	}
}

func runE15(seed int64) *metrics.Table {
	tab := metrics.NewTable("E15 - two-aircraft encounters (separation minima 1000 m / 150 m)",
		"scenario", "traffic", "violation ticks", "min lateral m", "maneuvered", "LoS3 time")
	for _, s := range avionics.Scenarios() {
		for _, collaborative := range []bool{true, false} {
			k := sim.NewKernel(seed)
			e, err := avionics.NewEncounter(k, avionics.DefaultEncounterConfig(s, collaborative))
			if err != nil {
				tab.AddNote("%v: %v", s, err)
				continue
			}
			res, err := e.Run()
			if err != nil {
				continue
			}
			traffic := "ADS-B"
			if !collaborative {
				traffic = "voice"
			}
			tab.AddRow(s.String(), traffic,
				metrics.FmtInt(res.ViolationTicks),
				metrics.FmtF(res.MinLateral),
				boolCell(res.Maneuvered),
				metrics.FmtPct(res.TimeAtLoS3Frac))
		}
	}
	tab.AddNote("expected: zero violations both ways; ADS-B runs cooperative (LoS3, tighter margins), voice runs stay LoS2 with wider berths")
	// Mission profile summary (Fig. 6) as footnote data.
	a := &avionics.Aircraft{Speed: 60, ClimbRate: 8}
	track, elapsed := avionics.FlyMission(a, avionics.RPVMission(), 0.5, 3600)
	alts := avionics.SummarizeTrack(track)
	tab.AddNote("RPV mission (Fig. 6): %d legs, %.0f s, sweep altitude %.0f m, final altitude %.0f m",
		len(avionics.RPVMission()), elapsed, alts.Max(), track[len(track)-1].Z)
	return tab
}
