// Package experiments contains one reproducible harness per experiment in
// EXPERIMENTS.md (E1..E15), each mapping a figure, section or use case of
// the KARYON paper to a measurable table. Every harness is a pure function
// of its seed: identical seeds print identical tables.
package experiments

import (
	"sort"

	"karyon/internal/metrics"
)

// Experiment is one runnable harness.
type Experiment struct {
	// ID is the experiment identifier (e.g. "E5").
	ID string
	// Title names what is reproduced.
	Title string
	// Anchor cites the paper location.
	Anchor string
	// Run executes the harness and renders its table.
	Run func(seed int64) *metrics.Table
}

// All returns every experiment in id order.
func All() []Experiment {
	list := []Experiment{
		e1(), e2(), e3(), e4(), e5(), e6(), e7(), e8(),
		e9(), e10(), e11(), e12(), e13(), e14(), e15(), e16(),
	}
	sort.Slice(list, func(i, j int) bool {
		a, b := list[i].ID, list[j].ID
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return list
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
