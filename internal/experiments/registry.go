// Package experiments contains one reproducible harness per experiment in
// EXPERIMENTS.md (E1..E16), each mapping a figure, section or use case of
// the KARYON paper to structured result records. Every harness is a pure
// function of its Config: identical configs produce identical results.
// Rendering (text tables, CSV) and across-replica aggregation live in
// internal/metrics; replicated parallel execution lives in
// internal/harness.
package experiments

import (
	"context"
	"sort"

	"karyon/internal/metrics"
	"karyon/internal/sim"
)

// Config parameterizes one experiment replica.
type Config struct {
	// Seed fully determines the replica.
	Seed int64
	// Short trades fidelity for wall time: fewer sweep points, shorter
	// simulated durations. Used by -short tests and smoke runs; statistical
	// claims should use the full-fidelity default.
	Short bool
	// Shards splits the replica's scenario worlds across this many shard
	// kernels (0/1 = unsharded). Experiments built on the partitioned
	// worlds (E2, E12, E13, E-MAC-S and the E14 integrated variant) honor
	// it; the sharded-world determinism contract guarantees the result
	// does not depend on it — like harness parallelism, it trades wall
	// time only.
	Shards int
	// Medium switches the world-building experiments' V2V path onto the
	// slot-level sharded radio medium (wireless.ShardedMedium). E2 and
	// E12 honor it; E-MAC-S always runs the medium (it is the subject).
	// Unlike Shards, this changes the modeled physics, so it is part of
	// the experiment's identity: results are comparable only at equal
	// Medium settings.
	Medium bool
	// SpecDepth >= 2 lets the sharded worlds run up to that many windows
	// ahead speculatively (world.HighwayConfig.SpecDepth). Like Shards it
	// is an execution knob, not a physics knob: the deterministic
	// abort-and-replay contract keeps the result byte-identical to a
	// lockstep run, so tables are comparable across any SpecDepth.
	SpecDepth int
}

// shards returns the effective shard width.
func (c Config) shards() int {
	if c.Shards < 1 {
		return 1
	}
	return c.Shards
}

// dur picks the full or the reduced simulated duration.
func (c Config) dur(full, short sim.Time) sim.Time {
	if c.Short {
		return short
	}
	return full
}

// n picks the full or the reduced count.
func (c Config) n(full, short int) int {
	if c.Short {
		return short
	}
	return full
}

// Experiment is one runnable harness.
type Experiment struct {
	// ID is the experiment identifier (e.g. "E5").
	ID string
	// Title names what is reproduced.
	Title string
	// Anchor cites the paper location.
	Anchor string
	// Replicas is the experiment's default replica count (0 means 1).
	// Statistical experiments — whose headline numbers are rates and
	// latency quantiles of randomized protocols — declare more than one,
	// so their rendered tables ship with confidence intervals by default,
	// mirroring the paper's probabilistic-bounds argument.
	Replicas int
	// Run executes the harness and collects its structured result.
	Run func(cfg Config) *metrics.Result
}

// DefaultReplicas returns the replica count a runner should use when the
// user did not ask for a specific one.
func (e Experiment) DefaultReplicas() int {
	if e.Replicas < 1 {
		return 1
	}
	return e.Replicas
}

// Harnessed adapts an experiment to the harness.Scenario interface
// (satisfied structurally — this package does not import internal/harness):
// each replica derives its Config from the fresh kernel's seed.
type Harnessed struct {
	Exp   Experiment
	Short bool
	// Medium flows into Config.Medium for every replica.
	Medium bool
	// SpecDepth flows into Config.SpecDepth for every replica.
	SpecDepth int
}

// Name implements harness.Scenario.
func (h Harnessed) Name() string { return h.Exp.ID }

// Run implements harness.Scenario.
func (h Harnessed) Run(k *sim.Kernel) (*metrics.Result, error) {
	return h.Exp.Run(Config{Seed: k.Seed(), Short: h.Short, Medium: h.Medium, SpecDepth: h.SpecDepth}), nil
}

// RunSharded implements harness.Shardable (structurally): the shard width
// flows into the experiment Config, where the world-building experiments
// split their scenarios across shard kernels. Experiments that ignore
// Shards — and the determinism contract of those that honor it — keep the
// output byte-identical for every width.
func (h Harnessed) RunSharded(_ context.Context, seed int64, shards int) (*metrics.Result, error) {
	return h.Exp.Run(Config{Seed: seed, Short: h.Short, Shards: shards, Medium: h.Medium, SpecDepth: h.SpecDepth}), nil
}

// All returns every experiment in id order.
func All() []Experiment {
	list := []Experiment{
		e1(), e2(), e3(), e4(), e5(), e6(), e7(), e8(),
		e9(), e10(), e11(), e12(), e13(), e14(), e15(), e16(),
		eMacS(),
	}
	sort.Slice(list, func(i, j int) bool {
		a, b := list[i].ID, list[j].ID
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return list
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
