package experiments

import (
	"fmt"

	"karyon/internal/coord"
	"karyon/internal/metrics"
	"karyon/internal/pubsub"
	"karyon/internal/sim"
	"karyon/internal/vehicle"
	"karyon/internal/wireless"
	"karyon/internal/world"
)

// e10 — event channels with QoS admission (Sec. V-B, Fig. 5): latency
// violation rates with and without announcement-time admission control on
// a degrading network, plus context-filter selectivity.
func e10() Experiment {
	return Experiment{
		ID:     "E10",
		Title:  "FAMOUSO event channels: admission removes QoS violations",
		Anchor: "Sec. V-B, Fig. 5",
		Run:    runE10,
	}
}

func runE10(cfg Config) *metrics.Result {
	dur := cfg.dur(20*sim.Second, 6*sim.Second)
	res := metrics.NewResult("E10 - QoS promises vs delivery, with/without channel admission (reliability promise 0.9)")
	const subj pubsub.Subject = 0x10
	run := func(name string, loss float64, jammed, admission bool) {
		k := sim.NewKernel(cfg.Seed)
		mcfg := wireless.DefaultConfig()
		mcfg.LossProb = loss
		medium := wireless.NewMedium(k, mcfg)
		r1, err := medium.Attach(1, wireless.Position{})
		if err != nil {
			return
		}
		r2, err := medium.Attach(2, wireless.Position{X: 50})
		if err != nil {
			return
		}
		t1 := pubsub.NewRadioTransport(k, medium, r1)
		t2 := pubsub.NewRadioTransport(k, medium, r2)
		pubBroker := pubsub.NewBroker(k, 1, t1, admission)
		subBroker := pubsub.NewBroker(k, 2, t2, admission)
		if jammed {
			medium.Jam(0, sim.Hour) // persistent interference
		}
		// Dynamic assessment needs observed traffic: probe the network
		// before announcing, as the announcement process prescribes.
		for i := 0; i < 200; i++ {
			k.Schedule(sim.Time(i)*sim.Millisecond, func() {
				t1.Broadcast(pubsub.Event{Subject: 0xFF})
			})
		}
		k.RunFor(300 * sim.Millisecond)

		sub := subBroker.Subscribe(subj, nil, nil)
		accepted := false
		ch, err := pubBroker.Announce(subj, pubsub.Quality{
			MaxLatency:  5 * sim.Millisecond,
			Reliability: 0.9,
		})
		if err == nil {
			accepted = true
		}
		if ch != nil {
			t, terr := k.Every(50*sim.Millisecond, func() {
				ch.Publish(1.0, pubsub.Context{})
			})
			if terr == nil {
				defer t.Stop()
			}
		}
		k.RunFor(dur)
		adm := "off"
		if admission {
			adm = "on"
		}
		published := int64(0)
		if ch != nil {
			published = ch.Published
		}
		achieved := 0.0
		if published > 0 {
			achieved = float64(sub.Received) / float64(published)
		}
		rec := res.Record("network", name, "admission", adm).
			Bool("accepted", accepted).
			Int("delivered", sub.Received).
			Int("published", published).
			Val("achieved", achieved, metrics.Pct)
		if accepted {
			rec.Bool("promise kept", achieved >= 0.9 && sub.LateEvents == 0)
		} else {
			rec.MissingVal("promise kept", metrics.Bool)
		}
	}
	run("healthy", 0, false, true)
	run("healthy", 0, false, false)
	run("lossy 40%", 0.4, false, true)
	run("lossy 40%", 0.4, false, false)
	run("jammed", 0, true, true)
	run("jammed", 0, true, false)
	res.AddNote("expected: admission accepts only channels whose promise the assessed network can keep; without admission the lossy/jammed runs accept and then break the 0.9 reliability promise")
	return res
}

// e11 — maneuver agreement vs packet loss (Sec. V-C): success rate,
// latency, and the zero-conflicting-grants invariant.
func e11() Experiment {
	return Experiment{
		ID:       "E11",
		Title:    "Cooperation-state agreement vs packet loss",
		Anchor:   "Sec. V-C ([24] Le Lann cohorts)",
		Replicas: 5,
		Run:      runE11,
	}
}

func runE11(cfg Config) *metrics.Result {
	attempts := cfg.n(200, 40)
	res := metrics.NewResult(fmt.Sprintf(
		"E11 - reservation outcomes vs loss (10 vehicles, %d attempts)", attempts))
	losses := []float64{0, 0.1, 0.2, 0.4, 0.6}
	if cfg.Short {
		losses = []float64{0, 0.4}
	}
	for _, loss := range losses {
		k := sim.NewKernel(cfg.Seed)
		mcfg := wireless.DefaultConfig()
		mcfg.LossProb = loss
		medium := wireless.NewMedium(k, mcfg)
		n := 10
		all := func() []wireless.NodeID {
			ids := make([]wireless.NodeID, n)
			for i := range ids {
				ids[i] = wireless.NodeID(i)
			}
			return ids
		}
		var nodes []*coord.Agreement
		for i := 0; i < n; i++ {
			radio, err := medium.Attach(wireless.NodeID(i), wireless.Position{X: float64(i) * 10})
			if err != nil {
				continue
			}
			a := coord.NewAgreement(k, radio, coord.DefaultAgreementConfig(), all)
			radio.OnReceive(a.OnFrame)
			nodes = append(nodes, a)
		}
		var granted, denied, timeout, doubles int64
		var lat metrics.Histogram
		resName := coord.Resource("lane-change")
		for attempt := 0; attempt < attempts; attempt++ {
			requester := nodes[k.Rand().Intn(n)]
			start := k.Now()
			var outcome coord.Outcome
			requester.Request(resName, func(o coord.Outcome) {
				outcome = o
				if o == coord.OutcomeGranted {
					lat.Observe(float64(k.Now()-start) / float64(sim.Millisecond))
				}
			})
			k.RunFor(400 * sim.Millisecond)
			switch outcome {
			case coord.OutcomeGranted:
				granted++
				// Invariant probe: nobody else may hold it now.
				holders := 0
				for _, nd := range nodes {
					if nd.Holds(resName) {
						holders++
					}
				}
				if holders > 1 {
					doubles++
				}
				requester.Release(resName)
				k.RunFor(100 * sim.Millisecond)
			case coord.OutcomeDenied:
				denied++
			case coord.OutcomeTimeout:
				timeout++
			}
			k.RunFor(100 * sim.Millisecond)
		}
		res.Record("loss", metrics.FmtPct(loss)).
			Int("granted", granted).
			Int("denied", denied).
			Int("timeout", timeout).
			Val("grant latency p95 ms", lat.Percentile(95), metrics.F2).
			Int("double grants", doubles)
	}
	res.AddNote("invariant: double grants 0 at every loss level; loss converts grants into timeouts (safe aborts)")
	return res
}

// e14 — coordinated lane change (Sec. VI-A3): at-most-one-in-region
// invariant and abort rates, with maneuvers actually executed.
func e14() Experiment {
	return Experiment{
		ID:       "E14",
		Title:    "Coordinated lane change: at most one maneuver per region",
		Anchor:   "Sec. VI-A3",
		Replicas: 5,
		Run:      runE14,
	}
}

func runE14(cfg Config) *metrics.Result {
	dur := cfg.dur(60*sim.Second, 15*sim.Second)
	res := metrics.NewResult(fmt.Sprintf(
		"E14 - lane-change maneuvers (12 vehicles, 3 lanes, %s per loss level)", dur.String()))
	losses := []float64{0, 0.2, 0.4}
	if cfg.Short {
		losses = []float64{0, 0.4}
	}
	for _, loss := range losses {
		k := sim.NewKernel(cfg.Seed)
		mcfg := wireless.DefaultConfig()
		mcfg.LossProb = loss
		medium := wireless.NewMedium(k, mcfg)
		n := 12
		type lcVehicle struct {
			agree    *coord.Agreement
			maneuver vehicle.Maneuver
			body     vehicle.Body
		}
		all := func() []wireless.NodeID {
			ids := make([]wireless.NodeID, n)
			for i := range ids {
				ids[i] = wireless.NodeID(i)
			}
			return ids
		}
		vehicles := make([]*lcVehicle, 0, n)
		for i := 0; i < n; i++ {
			radio, err := medium.Attach(wireless.NodeID(i), wireless.Position{X: float64(i) * 20})
			if err != nil {
				continue
			}
			v := &lcVehicle{
				agree: coord.NewAgreement(k, radio, coord.DefaultAgreementConfig(), all),
				body:  vehicle.Body{X: float64(i) * 20, Lane: i % 3, Speed: 25},
			}
			radio.OnReceive(v.agree.OnFrame)
			vehicles = append(vehicles, v)
		}
		region := coord.Resource("region-0")
		var attempts, completed, rejected int64
		maxConcurrent := 0
		// Drive loop: every 100 ms advance maneuvers and count concurrency.
		drive, err := k.Every(100*sim.Millisecond, func() {
			active := 0
			for _, v := range vehicles {
				if v.maneuver.Active() {
					active++
					if v.maneuver.Step(&v.body, 0.1) {
						v.agree.Release(region)
					}
				}
			}
			if active > maxConcurrent {
				maxConcurrent = active
			}
		})
		if err != nil {
			continue
		}
		// Attempt generator: random vehicle requests the region, begins
		// the maneuver only when granted.
		gen, err := k.Every(500*sim.Millisecond, func() {
			v := vehicles[k.Rand().Intn(n)]
			if v.maneuver.Active() {
				return
			}
			attempts++
			target := (v.body.Lane + 1) % 3
			v.agree.Request(region, func(o coord.Outcome) {
				if o != coord.OutcomeGranted {
					rejected++
					return
				}
				if err := v.maneuver.Begin(target, 3); err != nil {
					v.agree.Release(region)
					return
				}
				completed++ // counted at grant; Step finishes the motion
			})
		})
		if err != nil {
			continue
		}
		k.RunFor(dur)
		drive.Stop()
		gen.Stop()
		res.Record("loss", metrics.FmtPct(loss)).
			Int("attempts", attempts).
			Int("completed", completed).
			Int("aborted/denied", rejected).
			Int("max concurrent", int64(maxConcurrent)).
			Bool("invariant held", maxConcurrent <= 1)
	}
	res.AddNote("invariant: at most one vehicle changing lanes in the region at any instant, at every loss level")
	// Integrated variant: the full multi-lane highway world, where lane
	// changes are embedded in the perceive-assess-decide-actuate loop and
	// a slow truck forces overtaking.
	hcfg := world.DefaultHighwayConfig()
	hcfg.Cars = 10
	hcfg.Length = 1500
	hcfg.Lanes = 2
	hcfg.SpecDepth = cfg.SpecDepth
	if h, err := world.BuildHighway(cfg.Seed, cfg.shards(), hcfg); err == nil {
		h.Cars()[0].SetCruiseSpeed(10)
		if err := h.Start(); err == nil {
			_ = h.Run(cfg.dur(3*sim.Minute, 40*sim.Second))
			var changes int64
			for _, c := range h.Cars() {
				changes += c.LaneChanges
			}
			res.Record("loss", "integrated 2-lane").
				Int("lane changes", changes).
				Int("highway collisions", h.Collisions).
				Val("mean speed m/s", h.MeanSpeed(), metrics.F2)
		}
	}
	res.AddNote("integrated 2-lane: full highway world with a slow truck forcing overtakes")
	return res
}
