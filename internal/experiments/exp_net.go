package experiments

import (
	"fmt"

	"karyon/internal/inaccess"
	"karyon/internal/mac"
	"karyon/internal/metrics"
	"karyon/internal/sim"
	"karyon/internal/stabilize"
	"karyon/internal/wireless"
)

// e5 — network inaccessibility control (Sec. V-A1, Fig. 4): observed
// inaccessibility durations and reliable-send deadline misses, bare MAC vs
// R2T-MAC with channel hopping, across jam-burst lengths.
func e5() Experiment {
	return Experiment{
		ID:     "E5",
		Title:  "R2T-MAC bounds inaccessibility via channel diversity",
		Anchor: "Sec. V-A1, Fig. 4",
		Run:    runE5,
	}
}

func runE5(cfg Config) *metrics.Result {
	dur := cfg.dur(10*sim.Second, 3*sim.Second)
	maxJams := cfg.n(20, 6)
	res := metrics.NewResult(fmt.Sprintf(
		"E5 - inaccessibility and deadline misses vs jam burst length (4 nodes, %d jams)", maxJams))
	bursts := []sim.Time{20 * sim.Millisecond, 50 * sim.Millisecond,
		100 * sim.Millisecond, 200 * sim.Millisecond}
	if cfg.Short {
		bursts = []sim.Time{50 * sim.Millisecond, 200 * sim.Millisecond}
	}
	for _, burst := range bursts {
		for _, hop := range []bool{false, true} {
			k := sim.NewKernel(cfg.Seed)
			mcfg := wireless.DefaultConfig()
			mcfg.Channels = 4
			medium := wireless.NewMedium(k, mcfg)
			icfg := inaccess.DefaultConfig()
			icfg.HopEnabled = hop
			var meds []*inaccess.Mediator
			for i := 0; i < 4; i++ {
				radio, err := medium.Attach(wireless.NodeID(i), wireless.Position{X: float64(i) * 10})
				if err != nil {
					continue
				}
				med, err := inaccess.New(k, medium, radio, icfg)
				if err != nil {
					continue
				}
				if err := med.Start(); err != nil {
					continue
				}
				med.OnData(func(inaccess.DataFrame) {})
				meds = append(meds, med)
			}
			// Periodic reliable traffic 0 -> 1 plus periodic jams on the
			// node's *current* channel (a pursuing interferer).
			st, err := k.Every(40*sim.Millisecond, func() {
				meds[0].SendReliable(1, "x", nil)
			})
			if err != nil {
				continue
			}
			jams := 0
			jt, err := k.Every(cfg.dur(400*sim.Millisecond, 450*sim.Millisecond), func() {
				if jams < maxJams {
					// Jam whatever channel the fleet currently uses.
					ch := 0
					if len(meds) > 0 {
						ch = medsChannel(meds[0])
					}
					medium.Jam(ch, burst)
					jams++
				}
			})
			if err != nil {
				continue
			}
			k.RunFor(dur)
			st.Stop()
			jt.Stop()

			var inacc metrics.Histogram
			misses := int64(0)
			hops := int64(0)
			for _, m := range meds {
				s := m.Stats()
				for _, p := range s.Periods {
					inacc.Observe(float64(p.Duration()) / float64(sim.Millisecond))
				}
				misses += int64(s.MissedDeadline)
				hops += int64(s.Hops)
			}
			name := "bare MAC"
			if hop {
				name = "R2T-MAC"
			}
			res.Record("jam burst", burst.String(), "variant", name).
				Val("inacc p95 ms", inacc.Percentile(95), metrics.F2).
				Val("inacc max ms", inacc.Max(), metrics.F2).
				Int("deadline misses", misses).
				Int("hops", hops)
		}
	}
	res.AddNote("expected: bare-MAC inaccessibility grows with the burst; R2T-MAC stays bounded by detect+hop time")
	return res
}

// medsChannel peeks a mediator's current channel through its stats-free
// surface: we jam channel 0 when hopping is off; with hopping the fleet
// moves, so the interferer pursues by jamming the busiest channel — here
// approximated by cycling. Kept deliberately simple and fair to both
// variants: the same jam schedule is applied.
func medsChannel(*inaccess.Mediator) int { return 0 }

// e6 — self-stabilizing TDMA: convergence and utilization vs CSMA
// (Sec. V-A2, [25]).
func e6() Experiment {
	return Experiment{
		ID:     "E6",
		Title:  "Self-stabilizing TDMA: convergence and utilization vs CSMA",
		Anchor: "Sec. V-A2 ([25] Leone & Schiller)",
		Run:    runE6,
	}
}

func runE6(cfg Config) *metrics.Result {
	res := metrics.NewResult("E6 - TDMA vs CSMA: convergence, delivery and access-delay predictability (32 slots)")
	sizes := []int{8, 16, 24, 32}
	if cfg.Short {
		sizes = []int{8, 16}
	}
	maxFrames := cfg.n(600, 200)
	steadyFrames := cfg.n(100, 30)
	csmaDur := cfg.dur(10*sim.Second, 3*sim.Second)
	for _, n := range sizes {
		// TDMA.
		k := sim.NewKernel(cfg.Seed)
		mcfg := wireless.DefaultConfig()
		mcfg.Airtime = 200 * sim.Microsecond
		medium := wireless.NewMedium(k, mcfg)
		tcfg := mac.DefaultTDMAConfig()
		nw := mac.NewTDMANetwork(k, medium, tcfg)
		for i := 0; i < n; i++ {
			node, err := nw.AddNode(wireless.NodeID(i), wireless.Position{X: float64(i) * 5})
			if err != nil {
				continue
			}
			node.Start()
		}
		frame := sim.Time(tcfg.Slots) * tcfg.SlotDuration
		conv := -1
		for f := 0; f < maxFrames; f++ {
			k.RunFor(frame)
			if nw.Converged() {
				conv = f
				break
			}
		}
		// Measure steady-state delivery after convergence.
		pre := medium.Stats()
		k.RunFor(sim.Time(steadyFrames) * frame)
		post := medium.Stats()
		tdmaDelivery := ratio(post.Delivered-pre.Delivered,
			post.Delivered-pre.Delivered+post.Collisions-pre.Collisions+post.Losses-pre.Losses)

		// CSMA at the same offered load (one beacon per frame duration).
		k2 := sim.NewKernel(cfg.Seed)
		medium2 := wireless.NewMedium(k2, mcfg)
		ccfg := mac.CSMAConfig{Period: frame, MaxBackoff: 8 * sim.Millisecond, MaxAttempts: 6}
		var csmaNodes []*mac.CSMANode
		for i := 0; i < n; i++ {
			radio, err := medium2.Attach(wireless.NodeID(i), wireless.Position{X: float64(i) * 5})
			if err != nil {
				continue
			}
			node, err := mac.NewCSMANode(k2, radio, ccfg)
			if err != nil {
				continue
			}
			node.Start()
			csmaNodes = append(csmaNodes, node)
		}
		k2.RunFor(csmaDur)
		s2 := medium2.Stats()
		csmaDelivery := ratio(s2.Delivered, s2.Delivered+s2.Collisions+s2.Losses)
		var access metrics.Histogram
		for _, node := range csmaNodes {
			for _, d := range node.AccessDelays {
				access.Observe(d)
			}
		}
		// A converged TDMA node transmits in its own slot: access delay is
		// deterministically bounded by one frame.
		tdmaBound := float64(frame) / float64(sim.Millisecond)
		rec := res.Record("nodes", fmt.Sprintf("%d", n))
		if conv >= 0 {
			rec.Val("tdma conv. frames", float64(conv), metrics.Int)
		} else {
			rec.MissingVal("tdma conv. frames", metrics.Int)
		}
		rec.Val("tdma delivery", tdmaDelivery, metrics.Pct).
			Val("tdma max access", tdmaBound, metrics.Ms).
			Val("csma delivery", csmaDelivery, metrics.Pct).
			Val("csma access p99", access.Percentile(99), metrics.Ms).
			Val("csma access max", access.Max(), metrics.Ms)
	}
	res.AddNote("expected: converged TDMA delivers ~100%% with a hard per-frame access bound; CSMA's access-delay tail grows with density (unpredictability)")
	return res
}

func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// e7 — autonomous TDMA pulse alignment under clock drift (Sec. V-A2,
// [27]).
func e7() Experiment {
	return Experiment{
		ID:     "E7",
		Title:  "Pulse synchronization without external time",
		Anchor: "Sec. V-A2 ([27] Mustafa et al.)",
		Run:    runE7,
	}
}

func runE7(cfg Config) *metrics.Result {
	res := metrics.NewResult("E7 - max pairwise phase error over time (16 nodes, ±50 ppm, 100 ms period)")
	k := sim.NewKernel(cfg.Seed)
	medium := wireless.NewMedium(k, wireless.DefaultConfig())
	pcfg := mac.DefaultPulseConfig()
	var nodes []*mac.PulseNode
	for i := 0; i < 16; i++ {
		radio, err := medium.Attach(wireless.NodeID(i), wireless.Position{X: float64(i) * 10})
		if err != nil {
			continue
		}
		drift := (k.Rand().Float64()*2 - 1) * 50e-6
		offset := sim.Time(k.Rand().Int63n(int64(pcfg.Period)))
		clock := sim.NewDriftClock(k, drift, offset)
		node, err := mac.NewPulseNode(k, radio, clock, pcfg)
		if err != nil {
			continue
		}
		node.Start()
		nodes = append(nodes, node)
	}
	horizon := []sim.Time{0, sim.Second, 5 * sim.Second, 15 * sim.Second,
		30 * sim.Second, 60 * sim.Second, 120 * sim.Second}
	if cfg.Short {
		horizon = horizon[:4]
	}
	for _, at := range horizon {
		k.Run(at)
		errMs := float64(mac.MaxPairwiseError(nodes, pcfg.Period)) / float64(sim.Millisecond)
		res.Record("time", at.String()).
			Val("max phase error ms", errMs, metrics.Ms)
	}
	res.AddNote("expected: error decays from ~P/2 to a small bound and stays there (convergence + closure)")
	return res
}

// e8 — self-stabilizing end-to-end FIFO exactly-once over an adversarial
// channel (Sec. V-A2, [12]).
func e8() Experiment {
	return Experiment{
		ID:     "E8",
		Title:  "Self-stabilizing end-to-end: exactly-once FIFO goodput",
		Anchor: "Sec. V-A2 ([12] Dolev et al.)",
		Run:    runE8,
	}
}

func runE8(cfg Config) *metrics.Result {
	dur := cfg.dur(60*sim.Second, 10*sim.Second)
	secs := dur.Seconds()
	res := metrics.NewResult(fmt.Sprintf(
		"E8 - delivery over omit/dup/reorder channel (%.0f s, resend 2 ms)", secs))
	losses := []float64{0, 0.2, 0.5}
	capacities := []int{2, 4, 8}
	if cfg.Short {
		losses = []float64{0, 0.5}
		capacities = []int{2, 8}
	}
	for _, loss := range losses {
		for _, capacity := range capacities {
			k := sim.NewKernel(cfg.Seed)
			ecfg := stabilize.E2EConfig{Capacity: capacity, Labels: 4*capacity + 4, Resend: 2 * sim.Millisecond}
			lcfg := wireless.LinkConfig{
				Delay: sim.Millisecond, Jitter: sim.Millisecond,
				LossProb: loss, DupProb: 0.1, ReorderProb: 0.1,
				ReorderDelay: 5 * sim.Millisecond, Capacity: capacity,
			}
			var delivered []int
			var recv *stabilize.Receiver
			fwd := wireless.NewLink(k, lcfg, func(p any) {
				if pkt, ok := p.(stabilize.Packet); ok {
					recv.OnPacket(pkt)
				}
			})
			var snd *stabilize.Sender
			back := wireless.NewLink(k, lcfg, func(p any) {
				if pkt, ok := p.(stabilize.Packet); ok {
					snd.OnAck(pkt)
				}
			})
			recv, err := stabilize.NewReceiver(k, back, ecfg, func(b any) {
				if v, ok := b.(int); ok {
					delivered = append(delivered, v)
				}
			})
			if err != nil {
				res.AddNote("cap %d: %v", capacity, err)
				continue
			}
			snd, err = stabilize.NewSender(k, fwd, ecfg)
			if err != nil {
				continue
			}
			for i := 0; i < 100000; i++ {
				snd.Enqueue(i)
			}
			if err := snd.Start(); err != nil {
				continue
			}
			k.RunFor(dur)
			inOrder := true
			dups := 0
			seen := map[int]bool{}
			for i, v := range delivered {
				if i > 0 && v <= delivered[i-1] {
					inOrder = false
				}
				if seen[v] {
					dups++
				}
				seen[v] = true
			}
			res.Record("loss", metrics.FmtPct(loss), "capacity", fmt.Sprintf("%d", capacity)).
				Int("delivered", int64(len(delivered))).
				Bool("in order", inOrder).
				Int("dups", int64(dups)).
				Val("msgs/s", float64(len(delivered))/secs, metrics.F2)
		}
	}
	res.AddNote("invariant: in-order yes, dups 0 at every loss/capacity point; goodput falls with loss")
	return res
}

// e9 — self-stabilizing topology discovery and 2f+1 disjoint paths
// (Sec. V-C, [13]).
func e9() Experiment {
	return Experiment{
		ID:     "E9",
		Title:  "Topology discovery: vertex-disjoint paths vs density",
		Anchor: "Sec. V-C ([13] Byzantine topology discovery)",
		Run:    runE9,
	}
}

func runE9(cfg Config) *metrics.Result {
	res := metrics.NewResult("E9 - discovered vertices and corner-to-corner disjoint paths (grids)")
	type gridCase struct {
		cols, rows int
		rangeM     float64
	}
	grids := []gridCase{{3, 3, 120}, {4, 4, 120}, {4, 4, 160}, {5, 5, 160}}
	if cfg.Short {
		grids = grids[:2]
	}
	for _, g := range grids {
		k := sim.NewKernel(cfg.Seed)
		mcfg := wireless.DefaultConfig()
		mcfg.Range = g.rangeM
		medium := wireless.NewMedium(k, mcfg)
		tcfg := stabilize.DefaultTopoConfig()
		var nodes []*stabilize.TopoNode
		id := 0
		for r := 0; r < g.rows; r++ {
			for c := 0; c < g.cols; c++ {
				radio, err := medium.Attach(wireless.NodeID(id), wireless.Position{
					X: float64(c) * 100, Y: float64(r) * 100,
				})
				if err != nil {
					continue
				}
				n := stabilize.NewTopoNode(k, radio, tcfg)
				n.Start()
				nodes = append(nodes, n)
				id++
			}
		}
		k.RunFor(cfg.dur(4*sim.Second, 2*sim.Second))
		graph := nodes[0].Graph()
		src := wireless.NodeID(0)
		dst := wireless.NodeID(g.cols*g.rows - 1)
		paths := stabilize.VertexDisjointPaths(graph, src, dst)
		fTol := (paths - 1) / 2
		res.Record("grid", fmt.Sprintf("%dx%d", g.cols, g.rows),
			"radio range", metrics.FmtF(g.rangeM)).
			Int("vertices seen", int64(len(graph))).
			Int("vertices total", int64(g.cols*g.rows)).
			Int("disjoint paths", int64(paths)).
			Int("byzantine f tolerated", int64(fTol))
	}
	res.AddNote("2f+1 disjoint paths tolerate f Byzantine relays; denser radios raise f")
	return res
}
