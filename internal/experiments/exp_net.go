package experiments

import (
	"fmt"

	"karyon/internal/inaccess"
	"karyon/internal/mac"
	"karyon/internal/metrics"
	"karyon/internal/sim"
	"karyon/internal/stabilize"
	"karyon/internal/wireless"
)

// e5 — network inaccessibility control (Sec. V-A1, Fig. 4): observed
// inaccessibility durations and reliable-send deadline misses, bare MAC vs
// R2T-MAC with channel hopping, across jam-burst lengths.
func e5() Experiment {
	return Experiment{
		ID:     "E5",
		Title:  "R2T-MAC bounds inaccessibility via channel diversity",
		Anchor: "Sec. V-A1, Fig. 4",
		Run:    runE5,
	}
}

func runE5(seed int64) *metrics.Table {
	tab := metrics.NewTable("E5 - inaccessibility and deadline misses vs jam burst length (4 nodes, 20 jams)",
		"jam burst", "variant", "inacc p95 ms", "inacc max ms", "deadline misses", "hops")
	for _, burst := range []sim.Time{20 * sim.Millisecond, 50 * sim.Millisecond,
		100 * sim.Millisecond, 200 * sim.Millisecond} {
		for _, hop := range []bool{false, true} {
			k := sim.NewKernel(seed)
			mcfg := wireless.DefaultConfig()
			mcfg.Channels = 4
			medium := wireless.NewMedium(k, mcfg)
			cfg := inaccess.DefaultConfig()
			cfg.HopEnabled = hop
			var meds []*inaccess.Mediator
			for i := 0; i < 4; i++ {
				radio, err := medium.Attach(wireless.NodeID(i), wireless.Position{X: float64(i) * 10})
				if err != nil {
					continue
				}
				med, err := inaccess.New(k, medium, radio, cfg)
				if err != nil {
					continue
				}
				if err := med.Start(); err != nil {
					continue
				}
				med.OnData(func(inaccess.DataFrame) {})
				meds = append(meds, med)
			}
			// Periodic reliable traffic 0 -> 1 plus periodic jams on the
			// node's *current* channel (a pursuing interferer).
			st, err := k.Every(40*sim.Millisecond, func() {
				meds[0].SendReliable(1, "x", nil)
			})
			if err != nil {
				continue
			}
			jams := 0
			jt, err := k.Every(400*sim.Millisecond, func() {
				if jams < 20 {
					// Jam whatever channel the fleet currently uses.
					ch := 0
					if len(meds) > 0 {
						ch = medsChannel(meds[0])
					}
					medium.Jam(ch, burst)
					jams++
				}
			})
			if err != nil {
				continue
			}
			k.RunFor(10 * sim.Second)
			st.Stop()
			jt.Stop()

			var inacc metrics.Histogram
			misses := int64(0)
			hops := int64(0)
			for _, m := range meds {
				s := m.Stats()
				for _, p := range s.Periods {
					inacc.Observe(float64(p.Duration()) / float64(sim.Millisecond))
				}
				misses += int64(s.MissedDeadline)
				hops += int64(s.Hops)
			}
			name := "bare MAC"
			if hop {
				name = "R2T-MAC"
			}
			tab.AddRow(burst.String(), name,
				metrics.FmtF(inacc.Percentile(95)), metrics.FmtF(inacc.Max()),
				metrics.FmtInt(misses), metrics.FmtInt(hops))
		}
	}
	tab.AddNote("expected: bare-MAC inaccessibility grows with the burst; R2T-MAC stays bounded by detect+hop time")
	return tab
}

// medsChannel peeks a mediator's current channel through its stats-free
// surface: we jam channel 0 when hopping is off; with hopping the fleet
// moves, so the interferer pursues by jamming the busiest channel — here
// approximated by cycling. Kept deliberately simple and fair to both
// variants: the same jam schedule is applied.
func medsChannel(*inaccess.Mediator) int { return 0 }

// e6 — self-stabilizing TDMA: convergence and utilization vs CSMA
// (Sec. V-A2, [25]).
func e6() Experiment {
	return Experiment{
		ID:     "E6",
		Title:  "Self-stabilizing TDMA: convergence and utilization vs CSMA",
		Anchor: "Sec. V-A2 ([25] Leone & Schiller)",
		Run:    runE6,
	}
}

func runE6(seed int64) *metrics.Table {
	tab := metrics.NewTable("E6 - TDMA vs CSMA: convergence, delivery and access-delay predictability (32 slots)",
		"nodes", "tdma conv. frames", "tdma delivery", "tdma max access",
		"csma delivery", "csma access p99", "csma access max")
	for _, n := range []int{8, 16, 24, 32} {
		// TDMA.
		k := sim.NewKernel(seed)
		mcfg := wireless.DefaultConfig()
		mcfg.Airtime = 200 * sim.Microsecond
		medium := wireless.NewMedium(k, mcfg)
		tcfg := mac.DefaultTDMAConfig()
		nw := mac.NewTDMANetwork(k, medium, tcfg)
		for i := 0; i < n; i++ {
			node, err := nw.AddNode(wireless.NodeID(i), wireless.Position{X: float64(i) * 5})
			if err != nil {
				continue
			}
			node.Start()
		}
		frame := sim.Time(tcfg.Slots) * tcfg.SlotDuration
		conv := -1
		for f := 0; f < 600; f++ {
			k.RunFor(frame)
			if nw.Converged() {
				conv = f
				break
			}
		}
		// Measure steady-state delivery after convergence.
		pre := medium.Stats()
		k.RunFor(100 * frame)
		post := medium.Stats()
		tdmaDelivery := ratio(post.Delivered-pre.Delivered,
			post.Delivered-pre.Delivered+post.Collisions-pre.Collisions+post.Losses-pre.Losses)

		// CSMA at the same offered load (one beacon per frame duration).
		k2 := sim.NewKernel(seed)
		medium2 := wireless.NewMedium(k2, mcfg)
		ccfg := mac.CSMAConfig{Period: frame, MaxBackoff: 8 * sim.Millisecond, MaxAttempts: 6}
		var csmaNodes []*mac.CSMANode
		for i := 0; i < n; i++ {
			radio, err := medium2.Attach(wireless.NodeID(i), wireless.Position{X: float64(i) * 5})
			if err != nil {
				continue
			}
			node, err := mac.NewCSMANode(k2, radio, ccfg)
			if err != nil {
				continue
			}
			node.Start()
			csmaNodes = append(csmaNodes, node)
		}
		k2.RunFor(10 * sim.Second)
		s2 := medium2.Stats()
		csmaDelivery := ratio(s2.Delivered, s2.Delivered+s2.Collisions+s2.Losses)
		var access metrics.Histogram
		for _, node := range csmaNodes {
			for _, d := range node.AccessDelays {
				access.Observe(d)
			}
		}
		convCell := "never"
		if conv >= 0 {
			convCell = fmt.Sprintf("%d", conv)
		}
		// A converged TDMA node transmits in its own slot: access delay is
		// deterministically bounded by one frame.
		tdmaBound := float64(frame) / float64(sim.Millisecond)
		tab.AddRow(fmt.Sprintf("%d", n), convCell,
			metrics.FmtPct(tdmaDelivery), metrics.FmtMs(tdmaBound),
			metrics.FmtPct(csmaDelivery),
			metrics.FmtMs(access.Percentile(99)), metrics.FmtMs(access.Max()))
	}
	tab.AddNote("expected: converged TDMA delivers ~100%% with a hard per-frame access bound; CSMA's access-delay tail grows with density (unpredictability)")
	return tab
}

func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// e7 — autonomous TDMA pulse alignment under clock drift (Sec. V-A2,
// [27]).
func e7() Experiment {
	return Experiment{
		ID:     "E7",
		Title:  "Pulse synchronization without external time",
		Anchor: "Sec. V-A2 ([27] Mustafa et al.)",
		Run:    runE7,
	}
}

func runE7(seed int64) *metrics.Table {
	tab := metrics.NewTable("E7 - max pairwise phase error over time (16 nodes, ±50 ppm, 100 ms period)",
		"time", "max phase error")
	k := sim.NewKernel(seed)
	medium := wireless.NewMedium(k, wireless.DefaultConfig())
	cfg := mac.DefaultPulseConfig()
	var nodes []*mac.PulseNode
	for i := 0; i < 16; i++ {
		radio, err := medium.Attach(wireless.NodeID(i), wireless.Position{X: float64(i) * 10})
		if err != nil {
			continue
		}
		drift := (k.Rand().Float64()*2 - 1) * 50e-6
		offset := sim.Time(k.Rand().Int63n(int64(cfg.Period)))
		clock := sim.NewDriftClock(k, drift, offset)
		node, err := mac.NewPulseNode(k, radio, clock, cfg)
		if err != nil {
			continue
		}
		node.Start()
		nodes = append(nodes, node)
	}
	for _, at := range []sim.Time{0, sim.Second, 5 * sim.Second, 15 * sim.Second,
		30 * sim.Second, 60 * sim.Second, 120 * sim.Second} {
		k.Run(at)
		tab.AddRow(at.String(), mac.MaxPairwiseError(nodes, cfg.Period).String())
	}
	tab.AddNote("expected: error decays from ~P/2 to a small bound and stays there (convergence + closure)")
	return tab
}

// e8 — self-stabilizing end-to-end FIFO exactly-once over an adversarial
// channel (Sec. V-A2, [12]).
func e8() Experiment {
	return Experiment{
		ID:     "E8",
		Title:  "Self-stabilizing end-to-end: exactly-once FIFO goodput",
		Anchor: "Sec. V-A2 ([12] Dolev et al.)",
		Run:    runE8,
	}
}

func runE8(seed int64) *metrics.Table {
	tab := metrics.NewTable("E8 - delivery over omit/dup/reorder channel (60 s, resend 2 ms)",
		"loss", "capacity", "delivered", "in order", "dups", "msgs/s")
	for _, loss := range []float64{0, 0.2, 0.5} {
		for _, capacity := range []int{2, 4, 8} {
			k := sim.NewKernel(seed)
			cfg := stabilize.E2EConfig{Capacity: capacity, Labels: 4*capacity + 4, Resend: 2 * sim.Millisecond}
			lcfg := wireless.LinkConfig{
				Delay: sim.Millisecond, Jitter: sim.Millisecond,
				LossProb: loss, DupProb: 0.1, ReorderProb: 0.1,
				ReorderDelay: 5 * sim.Millisecond, Capacity: capacity,
			}
			var delivered []int
			var recv *stabilize.Receiver
			fwd := wireless.NewLink(k, lcfg, func(p any) {
				if pkt, ok := p.(stabilize.Packet); ok {
					recv.OnPacket(pkt)
				}
			})
			var snd *stabilize.Sender
			back := wireless.NewLink(k, lcfg, func(p any) {
				if pkt, ok := p.(stabilize.Packet); ok {
					snd.OnAck(pkt)
				}
			})
			recv, err := stabilize.NewReceiver(k, back, cfg, func(b any) {
				if v, ok := b.(int); ok {
					delivered = append(delivered, v)
				}
			})
			if err != nil {
				tab.AddNote("cap %d: %v", capacity, err)
				continue
			}
			snd, err = stabilize.NewSender(k, fwd, cfg)
			if err != nil {
				continue
			}
			for i := 0; i < 100000; i++ {
				snd.Enqueue(i)
			}
			if err := snd.Start(); err != nil {
				continue
			}
			k.RunFor(60 * sim.Second)
			inOrder := true
			dups := 0
			seen := map[int]bool{}
			for i, v := range delivered {
				if i > 0 && v <= delivered[i-1] {
					inOrder = false
				}
				if seen[v] {
					dups++
				}
				seen[v] = true
			}
			tab.AddRow(metrics.FmtPct(loss), fmt.Sprintf("%d", capacity),
				metrics.FmtInt(int64(len(delivered))), boolCell(inOrder),
				metrics.FmtInt(int64(dups)),
				metrics.FmtF(float64(len(delivered))/60))
		}
	}
	tab.AddNote("invariant: in-order yes, dups 0 at every loss/capacity point; goodput falls with loss")
	return tab
}

// e9 — self-stabilizing topology discovery and 2f+1 disjoint paths
// (Sec. V-C, [13]).
func e9() Experiment {
	return Experiment{
		ID:     "E9",
		Title:  "Topology discovery: vertex-disjoint paths vs density",
		Anchor: "Sec. V-C ([13] Byzantine topology discovery)",
		Run:    runE9,
	}
}

func runE9(seed int64) *metrics.Table {
	tab := metrics.NewTable("E9 - discovered vertices and corner-to-corner disjoint paths (grids)",
		"grid", "radio range", "vertices seen", "disjoint paths", "byzantine f tolerated")
	type gridCase struct {
		cols, rows int
		rangeM     float64
	}
	for _, g := range []gridCase{{3, 3, 120}, {4, 4, 120}, {4, 4, 160}, {5, 5, 160}} {
		k := sim.NewKernel(seed)
		mcfg := wireless.DefaultConfig()
		mcfg.Range = g.rangeM
		medium := wireless.NewMedium(k, mcfg)
		cfg := stabilize.DefaultTopoConfig()
		var nodes []*stabilize.TopoNode
		id := 0
		for r := 0; r < g.rows; r++ {
			for c := 0; c < g.cols; c++ {
				radio, err := medium.Attach(wireless.NodeID(id), wireless.Position{
					X: float64(c) * 100, Y: float64(r) * 100,
				})
				if err != nil {
					continue
				}
				n := stabilize.NewTopoNode(k, radio, cfg)
				n.Start()
				nodes = append(nodes, n)
				id++
			}
		}
		k.RunFor(4 * sim.Second)
		graph := nodes[0].Graph()
		src := wireless.NodeID(0)
		dst := wireless.NodeID(g.cols*g.rows - 1)
		paths := stabilize.VertexDisjointPaths(graph, src, dst)
		fTol := (paths - 1) / 2
		tab.AddRow(fmt.Sprintf("%dx%d", g.cols, g.rows), metrics.FmtF(g.rangeM),
			fmt.Sprintf("%d/%d", len(graph), g.cols*g.rows),
			fmt.Sprintf("%d", paths), fmt.Sprintf("%d", fTol))
	}
	tab.AddNote("2f+1 disjoint paths tolerate f Byzantine relays; denser radios raise f")
	return tab
}
