package experiments

import (
	"math"

	"karyon/internal/metrics"
	"karyon/internal/sensor"
	"karyon/internal/sim"
)

// e3 — validity estimation per fault mode (Sec. IV, Figs. 2-3): for each
// of the paper's five fault-mode dimensions, inject the fault into an
// abstract sensor and report the validity before/during the episode plus
// detection coverage and false-positive rate on a healthy sensor.
func e3() Experiment {
	return Experiment{
		ID:     "E3",
		Title:  "Abstract sensor: validity per fault mode",
		Anchor: "Sec. IV-A, Fig. 2/3 (MOSAIC)",
		Run:    runE3,
	}
}

func newE3Sensor(k *sim.Kernel, truth sensor.Truth, sigma float64, period sim.Time) *sensor.Abstract {
	phys := sensor.NewPhysical(k, "dist", truth, sigma)
	fm := sensor.NewFaultManagement(16,
		sensor.RangeDetector{Min: 0, Max: 500},
		sensor.FreshnessDetector{MaxAge: 3 * period},
		sensor.StuckDetector{MinRepeats: 4},
		sensor.NoiseDetector{Sigma: sigma, Tolerance: 4, MinWindow: 8},
		sensor.RateDetector{MaxRate: 50},
	)
	return sensor.NewAbstract(k, phys, fm)
}

func runE3(cfg Config) *metrics.Result {
	episode := cfg.dur(10*sim.Second, 3*sim.Second)
	res := metrics.NewResult("E3 - validity during injected fault episodes (100 Hz sampling)")
	const (
		sigma  = 0.3
		period = 10 * sim.Millisecond
	)
	truth := func(t sim.Time) float64 { return 50 + 20*math.Sin(t.Seconds()/5) }
	for _, mode := range sensor.AllFaultModes() {
		k := sim.NewKernel(cfg.Seed)
		a := newE3Sensor(k, truth, sigma, period)
		var healthy, faulty metrics.Histogram
		var falsePos metrics.Ratio
		sampleFor := func(h *metrics.Histogram, d sim.Time, fp *metrics.Ratio) {
			t, err := k.Every(period, func() {
				r := a.Read()
				h.Observe(r.Validity)
				if fp != nil {
					fp.Observe(r.Validity < 0.5)
				}
			})
			if err != nil {
				return
			}
			k.RunFor(d)
			t.Stop()
		}
		sampleFor(&healthy, episode, &falsePos)
		a.Physical().Inject(sensor.Fault{
			Mode:      mode,
			From:      k.Now(),
			To:        k.Now() + episode,
			Magnitude: 30,
			Delay:     500 * sim.Millisecond,
			Prob:      0.3,
		})
		sampleFor(&faulty, episode, nil)
		detected := faulty.Percentile(10) < 0.5 || faulty.Mean() < healthy.Mean()*0.7
		res.Record("fault mode", mode.String()).
			Val("validity healthy", healthy.Mean(), metrics.F2).
			Val("validity faulty", faulty.Mean(), metrics.F2).
			Bool("detected", detected).
			Val("false pos healthy", falsePos.Value(), metrics.Pct)
	}
	res.AddNote("expected: healthy validity ~1, false positives ~0; delay/sporadic/stochastic/stuck detected locally")
	res.AddNote("permanent-offset is NOT locally detectable by construction — a constant bias looks plausible to every single-sensor detector; exposing it requires redundancy, which is exactly experiment E4's reliable sensor (paper Sec. IV-B)")
	return res
}

// e4 — abstract reliable sensor: fusion error with one faulty input
// (Sec. IV-B). Compares a single sensor against Marzullo-fused triple
// redundancy and validity-weighted fusion while one of the three inputs
// carries each fault mode.
func e4() Experiment {
	return Experiment{
		ID:     "E4",
		Title:  "Reliable sensor: fusion masks a faulty input",
		Anchor: "Sec. IV-B (abstract reliable sensor)",
		Run:    runE4,
	}
}

func runE4(cfg Config) *metrics.Result {
	res := metrics.NewResult("E4 - RMS error vs truth, one of three sensors faulted (offset 40 m)")
	const sigma = 0.3
	truthVal := 100.0
	truth := func(sim.Time) float64 { return truthVal }
	reads := cfg.n(500, 120)
	for _, mode := range sensor.AllFaultModes() {
		k := sim.NewKernel(cfg.Seed)
		mk := func() *sensor.Abstract {
			return newE3Sensor(k, truth, sigma, 10*sim.Millisecond)
		}
		s1, s2, s3 := mk(), mk(), mk()
		rel := sensor.NewReliable(k, []*sensor.Abstract{s1, s2, s3}, 1.5, 1, 0.2)
		// Warm up.
		for i := 0; i < 20; i++ {
			rel.Read()
			s1.Read()
		}
		s2.Physical().Inject(sensor.Fault{
			Mode: mode, Magnitude: 40, Delay: 2 * sim.Second, Prob: 0.3,
		})
		var errSingle, errMarz, errWeighted, relVal metrics.Histogram
		for i := 0; i < reads; i++ {
			k.RunFor(10 * sim.Millisecond)
			single := s2.Read()
			errSingle.Observe(sq(single.Value - truthVal))
			fused := rel.Read()
			errMarz.Observe(sq(fused.Value - truthVal))
			relVal.Observe(fused.Validity)
			readings := []sensor.Reading{s1.Read(), s2.Read(), s3.Read()}
			if w, err := sensor.WeightedFusion(k.Now(), readings, 0.3); err == nil {
				errWeighted.Observe(sq(w.Value - truthVal))
			}
		}
		res.Record("fault mode", mode.String()).
			Val("single faulty", math.Sqrt(errSingle.Mean()), metrics.F2).
			Val("marzullo f=1", math.Sqrt(errMarz.Mean()), metrics.F2).
			Val("weighted", math.Sqrt(errWeighted.Mean()), metrics.F2).
			Val("reliable validity", relVal.Mean(), metrics.F2)
	}
	res.AddNote("expected: fusion RMS error ~ sensor noise regardless of the injected mode; single faulty sensor error >> noise")
	return res
}

func sq(v float64) float64 { return v * v }
