package sensor

import (
	"errors"

	"karyon/internal/sim"
	"karyon/internal/trace"
)

// Trace-codec methods: deterministic binary encode/decode for the
// checkpoint state types, used by the record/replay layer to persist a
// world checkpoint across processes. Encoding must be a pure function of
// the state (no map iteration, no addresses) so identical states always
// produce identical bytes.

// EncodeState appends the transducer checkpoint to e.
func (st *PhysicalState) EncodeState(e *trace.Enc) {
	e.F64(st.stuck)
	e.Bool(st.stuckSet)
}

// DecodeState reads a transducer checkpoint written by EncodeState.
func (st *PhysicalState) DecodeState(d *trace.Dec) {
	st.stuck = d.F64()
	st.stuckSet = d.Bool()
}

func encodeReading(e *trace.Enc, r Reading) {
	e.F64(r.Value)
	e.I64(int64(r.Time))
	e.F64(r.Validity)
	e.Str(r.Source)
}

func decodeReading(d *trace.Dec) Reading {
	var r Reading
	r.Value = d.F64()
	r.Time = sim.Time(d.I64())
	r.Validity = d.F64()
	r.Source = d.Str()
	return r
}

// EncodeState appends the fault-management checkpoint to e.
func (st *FaultManagementState) EncodeState(e *trace.Enc) {
	e.U32(uint32(len(st.hist)))
	for _, r := range st.hist {
		encodeReading(e, r)
	}
	e.U32(uint32(len(st.verdicts)))
	for _, v := range st.verdicts {
		e.F64(v.Validity)
		e.Bool(v.Dominant)
	}
	e.Bool(st.assessed)
}

// DecodeState reads a fault-management checkpoint written by EncodeState.
func (st *FaultManagementState) DecodeState(d *trace.Dec) {
	st.hist = st.hist[:0]
	for i, n := 0, d.Count(25); i < n && d.Err() == nil; i++ {
		st.hist = append(st.hist, decodeReading(d))
	}
	st.verdicts = st.verdicts[:0]
	for i, n := 0, d.Count(9); i < n && d.Err() == nil; i++ {
		st.verdicts = append(st.verdicts, Verdict{Validity: d.F64(), Dominant: d.Bool()})
	}
	st.assessed = d.Bool()
}

// lastErr tags: fusion errors are either nil, the sentinel ErrNoData, or
// an ad-hoc message — encode accordingly so a decoded checkpoint keeps
// errors.Is(err, ErrNoData) working.
const (
	errTagNil uint8 = iota
	errTagNoData
	errTagOther
)

// EncodeState appends the reliable-sensor checkpoint to e.
func (st *ReliableState) EncodeState(e *trace.Enc) {
	e.F64(st.filter.Alpha)
	e.F64(st.filter.Gate)
	e.F64(st.filter.est)
	e.Bool(st.filter.started)
	e.I64(st.filter.accepted)
	e.I64(st.filter.rejected)
	switch {
	case st.lastErr == nil:
		e.U8(errTagNil)
	case errors.Is(st.lastErr, ErrNoData):
		e.U8(errTagNoData)
	default:
		e.U8(errTagOther)
		e.Str(st.lastErr.Error())
	}
	e.U32(uint32(len(st.suspects)))
	for _, s := range st.suspects {
		e.Str(s)
	}
}

// DecodeState reads a reliable-sensor checkpoint written by EncodeState.
func (st *ReliableState) DecodeState(d *trace.Dec) {
	st.filter.Alpha = d.F64()
	st.filter.Gate = d.F64()
	st.filter.est = d.F64()
	st.filter.started = d.Bool()
	st.filter.accepted = d.I64()
	st.filter.rejected = d.I64()
	switch d.U8() {
	case errTagNil:
		st.lastErr = nil
	case errTagNoData:
		st.lastErr = ErrNoData
	default:
		st.lastErr = errors.New(d.Str())
	}
	st.suspects = st.suspects[:0]
	for i, n := 0, d.Count(4); i < n && d.Err() == nil; i++ {
		st.suspects = append(st.suspects, d.Str())
	}
}
