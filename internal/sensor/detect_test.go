package sensor

import (
	"testing"

	"karyon/internal/sim"
)

func TestHistoryWindow(t *testing.T) {
	h := NewHistory(3)
	for i := 1; i <= 5; i++ {
		h.Push(Reading{Value: float64(i)})
	}
	if h.Len() != 3 {
		t.Fatalf("Len = %d", h.Len())
	}
	newest, _ := h.At(0)
	oldest, _ := h.At(2)
	if newest.Value != 5 || oldest.Value != 3 {
		t.Fatalf("window = %v..%v", oldest.Value, newest.Value)
	}
	if _, ok := h.At(3); ok {
		t.Fatal("At beyond window should report false")
	}
	if _, ok := h.At(-1); ok {
		t.Fatal("At(-1) should report false")
	}
	vals := h.Values()
	if len(vals) != 3 || vals[0] != 3 || vals[2] != 5 {
		t.Fatalf("Values = %v", vals)
	}
}

func TestHistoryMinimumSize(t *testing.T) {
	h := NewHistory(0)
	h.Push(Reading{Value: 1})
	h.Push(Reading{Value: 2})
	if h.Len() != 1 {
		t.Fatalf("size-0 history should clamp to 1, len=%d", h.Len())
	}
}

func TestRangeDetector(t *testing.T) {
	d := RangeDetector{Min: 0, Max: 100}
	h := NewHistory(4)
	if v := d.Check(0, Reading{Value: 50}, h); v.Validity != 1 || !v.Dominant {
		t.Fatalf("in-range verdict %+v", v)
	}
	if v := d.Check(0, Reading{Value: -1}, h); v.Validity != 0 {
		t.Fatalf("below-range verdict %+v", v)
	}
	if v := d.Check(0, Reading{Value: 101}, h); v.Validity != 0 {
		t.Fatalf("above-range verdict %+v", v)
	}
}

func TestFreshnessDetector(t *testing.T) {
	d := FreshnessDetector{MaxAge: 100 * sim.Millisecond}
	h := NewHistory(4)
	now := sim.Second
	fresh := Reading{Time: now - 50*sim.Millisecond}
	stale := Reading{Time: now - 200*sim.Millisecond}
	if v := d.Check(now, fresh, h); v.Validity != 1 {
		t.Fatalf("fresh verdict %+v", v)
	}
	if v := d.Check(now, stale, h); v.Validity != 0 || !v.Dominant {
		t.Fatalf("stale verdict %+v", v)
	}
}

func TestRateDetector(t *testing.T) {
	d := RateDetector{MaxRate: 10} // units/s
	h := NewHistory(4)
	h.Push(Reading{Value: 0, Time: 0})
	slow := Reading{Value: 0.5, Time: 100 * sim.Millisecond} // 5/s
	if v := d.Check(0, slow, h); v.Validity != 1 {
		t.Fatalf("slow verdict %+v", v)
	}
	fast := Reading{Value: 5, Time: 100 * sim.Millisecond} // 50/s
	v := d.Check(0, fast, h)
	if v.Validity >= 1 || v.Dominant {
		t.Fatalf("fast verdict %+v", v)
	}
	if v.Validity != 0.2 { // 10/50
		t.Fatalf("fast validity = %v, want 0.2", v.Validity)
	}
	// No history: benefit of the doubt.
	empty := NewHistory(4)
	if v := d.Check(0, fast, empty); v.Validity != 1 {
		t.Fatalf("no-history verdict %+v", v)
	}
}

func TestStuckDetector(t *testing.T) {
	d := StuckDetector{MinRepeats: 3}
	h := NewHistory(8)
	r := Reading{Value: 7}
	if v := d.Check(0, r, h); v.Validity != 1 {
		t.Fatal("first sample flagged")
	}
	h.Push(r)
	if v := d.Check(0, r, h); v.Validity != 1 {
		t.Fatal("two repeats flagged with MinRepeats=3")
	}
	h.Push(r)
	if v := d.Check(0, r, h); v.Validity != 0 || !v.Dominant {
		t.Fatalf("three repeats not flagged: %+v", v)
	}
	// A changed value resets the streak.
	h.Push(Reading{Value: 8})
	if v := d.Check(0, r, h); v.Validity != 1 {
		t.Fatal("changed value still flagged")
	}
}

func TestNoiseDetectorFlagsInflatedNoise(t *testing.T) {
	k := sim.NewKernel(5)
	d := NoiseDetector{Sigma: 0.1, Tolerance: 3, MinWindow: 8}
	h := NewHistory(16)
	// Nominal noise: should stay valid.
	for i := 0; i < 16; i++ {
		r := Reading{Value: k.Rand().NormFloat64() * 0.1}
		if v := d.Check(0, r, h); v.Validity < 0.99 {
			t.Fatalf("nominal noise flagged at %d: %+v", i, v)
		}
		h.Push(r)
	}
	// Inflated noise: validity must degrade.
	h2 := NewHistory(16)
	degraded := false
	for i := 0; i < 32; i++ {
		r := Reading{Value: k.Rand().NormFloat64() * 2}
		v := d.Check(0, r, h2)
		if v.Validity < 0.5 {
			degraded = true
		}
		h2.Push(r)
	}
	if !degraded {
		t.Fatal("20x noise never degraded validity")
	}
}

func TestNoiseDetectorIgnoresTrend(t *testing.T) {
	d := NoiseDetector{Sigma: 0.1, Tolerance: 3, MinWindow: 8}
	h := NewHistory(16)
	// A clean fast ramp has large raw stddev but zero residual after
	// detrending; must not be flagged.
	for i := 0; i < 20; i++ {
		r := Reading{Value: float64(i) * 10}
		if v := d.Check(0, r, h); v.Validity < 0.99 {
			t.Fatalf("ramp flagged as noise at %d: %+v", i, v)
		}
		h.Push(r)
	}
}

func TestModelDetector(t *testing.T) {
	d := ModelDetector{
		Predict:   func(t sim.Time) float64 { return t.Seconds() * 2 },
		Tolerance: 1,
	}
	h := NewHistory(4)
	good := Reading{Value: 20, Time: 10 * sim.Second}
	if v := d.Check(0, good, h); v.Validity != 1 {
		t.Fatalf("on-model verdict %+v", v)
	}
	off := Reading{Value: 23, Time: 10 * sim.Second} // residual 3, tol 1
	v := d.Check(0, off, h)
	if v.Validity != 0.1 { // 1/(1+9)
		t.Fatalf("off-model validity = %v, want 0.1", v.Validity)
	}
	// Nil predictor is permissive.
	if v := (ModelDetector{}).Check(0, off, h); v.Validity != 1 {
		t.Fatalf("nil-model verdict %+v", v)
	}
}

func TestFaultManagementDominantOverrides(t *testing.T) {
	fm := NewFaultManagement(8,
		RangeDetector{Min: 0, Max: 100},
		RateDetector{MaxRate: 1000},
	)
	r := fm.Assess(0, Reading{Value: 500, Time: 0})
	if r.Validity != 0 {
		t.Fatalf("dominant failure must zero validity, got %v", r.Validity)
	}
	if v, ok := fm.Verdict("range"); !ok || v.Validity != 0 {
		t.Fatalf("range verdict %+v %v", v, ok)
	}
}

func TestFaultManagementContinuousMultiply(t *testing.T) {
	// Two continuous detectors each at 0.5 → combined 0.25.
	half := fixedDetector{name: "a", v: Verdict{Validity: 0.5}}
	half2 := fixedDetector{name: "b", v: Verdict{Validity: 0.5}}
	fm := NewFaultManagement(4, half, half2)
	r := fm.Assess(0, Reading{Value: 1})
	if r.Validity != 0.25 {
		t.Fatalf("combined validity = %v, want 0.25", r.Validity)
	}
}

type fixedDetector struct {
	name string
	v    Verdict
}

func (d fixedDetector) Name() string { return d.name }
func (d fixedDetector) Check(sim.Time, Reading, *History) Verdict {
	return d.v
}

func TestAbstractSensorEndToEnd(t *testing.T) {
	k := sim.NewKernel(9)
	p := NewPhysical(k, "dist", constTruth(50), 0.1)
	fm := NewFaultManagement(16,
		RangeDetector{Min: 0, Max: 200},
		FreshnessDetector{MaxAge: 100 * sim.Millisecond},
		StuckDetector{MinRepeats: 5},
		NoiseDetector{Sigma: 0.1, Tolerance: 4, MinWindow: 8},
	)
	a := NewAbstract(k, p, fm)
	if a.Name() != "dist" {
		t.Fatal("name passthrough")
	}
	if a.Physical() != p {
		t.Fatal("physical passthrough")
	}
	// Healthy sensor: high validity.
	for i := 0; i < 20; i++ {
		r := a.Read()
		if r.Validity < 0.9 {
			t.Fatalf("healthy validity %v at sample %d", r.Validity, i)
		}
	}
	// Inject a stuck-at fault: validity must collapse within the window.
	p.Inject(Fault{Mode: FaultStuckAt})
	collapsed := false
	for i := 0; i < 10; i++ {
		if a.Read().Validity == 0 {
			collapsed = true
			break
		}
	}
	if !collapsed {
		t.Fatal("stuck-at fault never collapsed validity")
	}
}

func TestAbstractSensorDelayFaultDetected(t *testing.T) {
	k := sim.NewKernel(9)
	p := NewPhysical(k, "gps", rampTruth(10), 0.05)
	fm := NewFaultManagement(8, FreshnessDetector{MaxAge: 50 * sim.Millisecond})
	a := NewAbstract(k, p, fm)
	p.Inject(Fault{Mode: FaultDelay, Delay: sim.Second, From: sim.Second})
	var before, after float64
	k.Schedule(500*sim.Millisecond, func() { before = a.Read().Validity })
	k.Schedule(2*sim.Second, func() { after = a.Read().Validity })
	k.RunUntilIdle()
	if before != 1 {
		t.Fatalf("pre-fault validity %v", before)
	}
	if after != 0 {
		t.Fatalf("delay fault undetected: validity %v", after)
	}
}
