package sensor

import (
	"math"
	"testing"

	"karyon/internal/sim"
)

func constTruth(v float64) Truth {
	return func(sim.Time) float64 { return v }
}

func rampTruth(perSecond float64) Truth {
	return func(t sim.Time) float64 { return perSecond * t.Seconds() }
}

func TestPhysicalNominalNoise(t *testing.T) {
	k := sim.NewKernel(1)
	p := NewPhysical(k, "d1", constTruth(100), 0.5)
	var h []float64
	for i := 0; i < 2000; i++ {
		h = append(h, p.Sample().Value)
	}
	var sum float64
	for _, v := range h {
		sum += v
	}
	mean := sum / float64(len(h))
	if math.Abs(mean-100) > 0.1 {
		t.Fatalf("mean = %v, want ~100", mean)
	}
	var ss float64
	for _, v := range h {
		ss += (v - mean) * (v - mean)
	}
	sd := math.Sqrt(ss / float64(len(h)))
	if sd < 0.4 || sd > 0.6 {
		t.Fatalf("noise sigma = %v, want ~0.5", sd)
	}
}

func TestPhysicalZeroSigmaExact(t *testing.T) {
	k := sim.NewKernel(1)
	p := NewPhysical(k, "d", constTruth(42), 0)
	if got := p.Sample().Value; got != 42 {
		t.Fatalf("value = %v", got)
	}
	r := p.Sample()
	if r.Validity != 1 || r.Source != "d" {
		t.Fatalf("reading = %+v", r)
	}
}

func TestFaultPermanentOffset(t *testing.T) {
	k := sim.NewKernel(1)
	p := NewPhysical(k, "d", constTruth(10), 0)
	p.Inject(Fault{Mode: FaultPermanentOffset, From: sim.Second, Magnitude: 5})
	if got := p.Sample().Value; got != 10 {
		t.Fatalf("pre-fault value = %v", got)
	}
	k.Schedule(2*sim.Second, func() {
		if got := p.Sample().Value; got != 15 {
			t.Errorf("in-fault value = %v, want 15", got)
		}
	})
	k.RunUntilIdle()
}

func TestFaultWindowEnds(t *testing.T) {
	k := sim.NewKernel(1)
	p := NewPhysical(k, "d", constTruth(10), 0)
	p.Inject(Fault{Mode: FaultPermanentOffset, From: 0, To: sim.Second, Magnitude: 5})
	if got := p.Sample().Value; got != 15 {
		t.Fatalf("in-window value = %v", got)
	}
	k.Schedule(2*sim.Second, func() {
		if got := p.Sample().Value; got != 10 {
			t.Errorf("post-window value = %v, want 10", got)
		}
	})
	k.RunUntilIdle()
}

func TestFaultStuckAtFreezesAndReleases(t *testing.T) {
	k := sim.NewKernel(1)
	p := NewPhysical(k, "d", rampTruth(1), 0)
	p.Inject(Fault{Mode: FaultStuckAt, From: 0, To: 5 * sim.Second})
	first := p.Sample().Value
	k.Schedule(2*sim.Second, func() {
		if got := p.Sample().Value; got != first {
			t.Errorf("stuck sensor moved: %v vs %v", got, first)
		}
	})
	k.Schedule(6*sim.Second, func() {
		if got := p.Sample().Value; got != 6 {
			t.Errorf("released sensor = %v, want 6", got)
		}
	})
	k.RunUntilIdle()
}

func TestFaultDelayShiftsTimestamp(t *testing.T) {
	k := sim.NewKernel(1)
	p := NewPhysical(k, "d", rampTruth(1), 0)
	p.Inject(Fault{Mode: FaultDelay, Delay: 2 * sim.Second})
	k.Schedule(10*sim.Second, func() {
		r := p.Sample()
		if r.Time != 8*sim.Second {
			t.Errorf("claimed time = %v, want 8s", r.Time)
		}
		if r.Value != 8 {
			t.Errorf("stale value = %v, want 8", r.Value)
		}
		if r.Age(k.Now()) != 2*sim.Second {
			t.Errorf("age = %v", r.Age(k.Now()))
		}
	})
	k.RunUntilIdle()
}

func TestFaultSporadicOffsetProbability(t *testing.T) {
	k := sim.NewKernel(2)
	p := NewPhysical(k, "d", constTruth(0), 0)
	p.Inject(Fault{Mode: FaultSporadicOffset, Magnitude: 100, Prob: 0.3})
	hits := 0
	n := 3000
	for i := 0; i < n; i++ {
		if p.Sample().Value > 50 {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("sporadic activation rate %v, want ~0.3", frac)
	}
}

func TestFaultStochasticOffsetInflatesNoise(t *testing.T) {
	k := sim.NewKernel(3)
	p := NewPhysical(k, "d", constTruth(0), 0.1)
	p.Inject(Fault{Mode: FaultStochasticOffset, Magnitude: 2})
	var ss float64
	n := 3000
	for i := 0; i < n; i++ {
		v := p.Sample().Value
		ss += v * v
	}
	sd := math.Sqrt(ss / float64(n))
	if sd < 1.6 || sd > 2.4 {
		t.Fatalf("inflated sigma = %v, want ~2", sd)
	}
}

func TestClearFaults(t *testing.T) {
	k := sim.NewKernel(1)
	p := NewPhysical(k, "d", constTruth(1), 0)
	p.Inject(Fault{Mode: FaultPermanentOffset, Magnitude: 10})
	if p.Sample().Value != 11 {
		t.Fatal("fault not applied")
	}
	p.ClearFaults()
	if p.Sample().Value != 1 {
		t.Fatal("fault survived ClearFaults")
	}
}

func TestFaultModeString(t *testing.T) {
	for _, m := range AllFaultModes() {
		if m.String() == "" || m.String()[0] == 'f' && m.String() != "fault(0)" && len(m.String()) < 5 {
			t.Fatalf("bad name for %d: %q", int(m), m.String())
		}
	}
	if FaultMode(0).String() != "fault(0)" {
		t.Fatalf("unknown mode name: %q", FaultMode(0).String())
	}
	if len(AllFaultModes()) != 5 {
		t.Fatal("paper defines exactly five fault-mode dimensions")
	}
}

func TestReadingAgeClamp(t *testing.T) {
	r := Reading{Time: 10 * sim.Second}
	if r.Age(5*sim.Second) != 0 {
		t.Fatal("future reading should have zero age")
	}
	if r.Age(12*sim.Second) != 2*sim.Second {
		t.Fatal("age arithmetic wrong")
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 0.5}, {1, 1}, {2, 1}, {math.NaN(), 0},
	}
	for _, c := range cases {
		if got := Clamp(c.in); got != c.want {
			t.Fatalf("Clamp(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}
