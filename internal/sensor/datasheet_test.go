package sensor

import (
	"strings"
	"testing"

	"karyon/internal/sim"
)

func TestDataSheetRoundTrip(t *testing.T) {
	d := DataSheet{
		Name:         "dist-0",
		Quantity:     "distance",
		Unit:         "m",
		Range:        Interval{Lo: 0, Hi: 200},
		Sigma:        0.3,
		PeriodMicros: int64(10 * sim.Millisecond),
		Detectors:    []string{"range", "stuck"},
	}
	raw, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"periodMicros"`) {
		t.Fatalf("unit-free period field: %s", raw)
	}
	back, err := ParseDataSheet(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != d.Name || back.Sigma != d.Sigma || back.Range != d.Range ||
		back.Quantity != d.Quantity || back.Unit != d.Unit ||
		len(back.Detectors) != 2 || back.Detectors[0] != "range" {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, d)
	}
	if back.Period() != 10*sim.Millisecond {
		t.Fatalf("Period() = %v", back.Period())
	}
}

func TestDataSheetValidation(t *testing.T) {
	good := DataSheet{
		Name: "x", Quantity: "q", Range: Interval{Lo: 0, Hi: 1},
		Sigma: 0.1, PeriodMicros: 1000,
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Name = ""
	if bad.Validate() == nil {
		t.Fatal("empty name accepted")
	}
	bad = good
	bad.Range = Interval{Lo: 5, Hi: 5}
	if bad.Validate() == nil {
		t.Fatal("empty range accepted")
	}
	bad = good
	bad.PeriodMicros = 0
	if bad.Validate() == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := ParseDataSheet([]byte(`{"name":""}`)); err == nil {
		t.Fatal("invalid sheet parsed")
	}
	if _, err := ParseDataSheet([]byte(`{garbage`)); err == nil {
		t.Fatal("garbage parsed")
	}
}

func TestDescribeFromAbstract(t *testing.T) {
	k := sim.NewKernel(1)
	phys := NewPhysical(k, "lidar-1", func(sim.Time) float64 { return 10 }, 0.25)
	fm := NewFaultManagement(8,
		RangeDetector{Min: 0, Max: 100},
		StuckDetector{MinRepeats: 4},
	)
	a := NewAbstract(k, phys, fm)
	d := Describe(a, "distance", "m", Interval{Lo: 0, Hi: 100}, 20*sim.Millisecond)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Name != "lidar-1" || d.Sigma != 0.25 {
		t.Fatalf("sheet %+v", d)
	}
	if len(d.Detectors) != 2 || d.Detectors[0] != "range" || d.Detectors[1] != "stuck" {
		t.Fatalf("detectors %v", d.Detectors)
	}
}
