package sensor

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"karyon/internal/sim"
)

func TestMarzulloAllAgree(t *testing.T) {
	ivs := []Interval{{Lo: 1, Hi: 3}, {Lo: 2, Hi: 4}, {Lo: 1.5, Hi: 3.5}}
	got, err := Marzullo(ivs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Lo != 2 || got.Hi != 3 {
		t.Fatalf("intersection = %+v, want [2,3]", got)
	}
}

func TestMarzulloToleratesOneOutlier(t *testing.T) {
	ivs := []Interval{
		{Lo: 10, Hi: 12},
		{Lo: 10.5, Hi: 12.5},
		{Lo: 100, Hi: 102}, // faulty sensor
	}
	if _, err := Marzullo(ivs, 0); err == nil {
		t.Fatal("f=0 should fail with a disjoint outlier")
	}
	got, err := Marzullo(ivs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Contains(11) || got.Contains(101) {
		t.Fatalf("f=1 fusion = %+v, want around 10.5..12", got)
	}
}

func TestMarzulloEmpty(t *testing.T) {
	if _, err := Marzullo(nil, 1); !errors.Is(err, ErrNoData) {
		t.Fatalf("err = %v, want ErrNoData", err)
	}
}

func TestMarzulloSwappedBounds(t *testing.T) {
	got, err := Marzullo([]Interval{{Lo: 3, Hi: 1}, {Lo: 0, Hi: 2}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Lo != 1 || got.Hi != 2 {
		t.Fatalf("normalized fusion = %+v", got)
	}
}

func TestMarzulloTouchingIntervals(t *testing.T) {
	got, err := Marzullo([]Interval{{Lo: 0, Hi: 1}, {Lo: 1, Hi: 2}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Lo != 1 || got.Hi != 1 {
		t.Fatalf("touching fusion = %+v, want point [1,1]", got)
	}
}

func TestMarzulloNegativeFClamped(t *testing.T) {
	got, err := Marzullo([]Interval{{Lo: 0, Hi: 2}}, -5)
	if err != nil || !got.Contains(1) {
		t.Fatalf("got %+v err %v", got, err)
	}
}

// Property (Marzullo's theorem): with n intervals of which at most f are
// faulty and the non-faulty ones all contain the true value, the fused
// interval contains the true value.
func TestPropertyMarzulloContainsTruth(t *testing.T) {
	f := func(seed int64) bool {
		rng := sim.NewKernel(seed).Rand()
		truth := rng.Float64()*200 - 100
		n := 3 + rng.Intn(5)
		faulty := rng.Intn(2) // 0 or 1 faulty among >=3
		ivs := make([]Interval, 0, n)
		for i := 0; i < n-faulty; i++ {
			w := 0.5 + rng.Float64()*3
			c := truth + (rng.Float64()*2-1)*w*0.9 // interval contains truth
			lo, hi := c-w, c+w
			if lo > truth {
				lo = truth
			}
			if hi < truth {
				hi = truth
			}
			ivs = append(ivs, Interval{Lo: lo, Hi: hi})
		}
		for i := 0; i < faulty; i++ {
			off := truth + 1000
			ivs = append(ivs, Interval{Lo: off, Hi: off + 1})
		}
		got, err := Marzullo(ivs, faulty)
		if err != nil {
			return false
		}
		return got.Contains(truth)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestToInterval(t *testing.T) {
	iv := ToInterval(Reading{Value: 5}, 2)
	if iv.Lo != 3 || iv.Hi != 7 {
		t.Fatalf("iv = %+v", iv)
	}
	iv = ToInterval(Reading{Value: 5}, -2)
	if iv.Lo != 3 || iv.Hi != 7 {
		t.Fatalf("negative half-width not normalized: %+v", iv)
	}
	if iv.Mid() != 5 || iv.Width() != 4 {
		t.Fatalf("Mid/Width = %v/%v", iv.Mid(), iv.Width())
	}
}

func TestWeightedFusion(t *testing.T) {
	rs := []Reading{
		{Value: 10, Validity: 1},
		{Value: 20, Validity: 1},
		{Value: 1000, Validity: 0.05}, // filtered out
	}
	got, err := WeightedFusion(0, rs, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != 15 {
		t.Fatalf("fused value = %v, want 15", got.Value)
	}
	if got.Validity != 1 {
		t.Fatalf("fused validity = %v", got.Validity)
	}
}

func TestWeightedFusionWeights(t *testing.T) {
	rs := []Reading{
		{Value: 0, Validity: 0.75},
		{Value: 10, Validity: 0.25},
	}
	got, err := WeightedFusion(0, rs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != 2.5 {
		t.Fatalf("weighted value = %v, want 2.5", got.Value)
	}
	if got.Validity != 0.5 {
		t.Fatalf("mean validity = %v, want 0.5", got.Validity)
	}
}

func TestWeightedFusionNoData(t *testing.T) {
	if _, err := WeightedFusion(0, nil, 0.5); !errors.Is(err, ErrNoData) {
		t.Fatal("expected ErrNoData for empty input")
	}
	rs := []Reading{{Value: 1, Validity: 0}}
	if _, err := WeightedFusion(0, rs, 0); !errors.Is(err, ErrNoData) {
		t.Fatal("zero-validity readings must not fuse")
	}
}

func TestMedianFusion(t *testing.T) {
	rs := []Reading{
		{Value: 10, Validity: 1},
		{Value: 11, Validity: 1},
		{Value: 999, Validity: 1}, // lying sensor with high validity
	}
	got, err := MedianFusion(0, rs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != 11 {
		t.Fatalf("median = %v, want 11", got.Value)
	}
	evenGot, err := MedianFusion(0, rs[:2], 0)
	if err != nil {
		t.Fatal(err)
	}
	if evenGot.Value != 10.5 {
		t.Fatalf("even median = %v, want 10.5", evenGot.Value)
	}
	if _, err := MedianFusion(0, nil, 0); !errors.Is(err, ErrNoData) {
		t.Fatal("empty median should error")
	}
}

func TestTemporalFilterRejectsOutliers(t *testing.T) {
	tf := &TemporalFilter{Alpha: 0.5, Gate: 5}
	tf.Update(Reading{Value: 10, Validity: 1})
	out := tf.Update(Reading{Value: 100, Validity: 1}) // outlier
	if out.Value != 10 {
		t.Fatalf("outlier leaked through: %v", out.Value)
	}
	if tf.Rejected() != 1 {
		t.Fatalf("Rejected = %d", tf.Rejected())
	}
	if out.Validity >= 1 {
		t.Fatalf("rejection should discount validity: %v", out.Validity)
	}
	// In-gate values move the estimate.
	out = tf.Update(Reading{Value: 12, Validity: 1})
	if out.Value != 11 {
		t.Fatalf("EWMA estimate = %v, want 11", out.Value)
	}
}

func TestTemporalFilterDefaultAlpha(t *testing.T) {
	tf := &TemporalFilter{} // invalid alpha defaults to 0.3
	tf.Update(Reading{Value: 0, Validity: 1})
	out := tf.Update(Reading{Value: 10, Validity: 1})
	if math.Abs(out.Value-3) > 1e-9 {
		t.Fatalf("default-alpha estimate = %v, want 3", out.Value)
	}
}

func TestReliableSensorMasksOneFaulty(t *testing.T) {
	k := sim.NewKernel(21)
	truth := constTruth(100)
	mk := func(name string) *Abstract {
		p := NewPhysical(k, name, truth, 0.2)
		fm := NewFaultManagement(16,
			RangeDetector{Min: 0, Max: 500},
			StuckDetector{MinRepeats: 5},
		)
		return NewAbstract(k, p, fm)
	}
	s1, s2, s3 := mk("a"), mk("b"), mk("c")
	rs := NewReliable(k, []*Abstract{s1, s2, s3}, 1.0, 1, 0.2)
	// Warm up.
	for i := 0; i < 5; i++ {
		rs.Read()
	}
	// Break one sensor with a huge permanent offset.
	s2.Physical().Inject(Fault{Mode: FaultPermanentOffset, Magnitude: 300})
	for i := 0; i < 10; i++ {
		r := rs.Read()
		if math.Abs(r.Value-100) > 3 {
			t.Fatalf("fused value %v drifted from truth with one faulty input", r.Value)
		}
		if r.Validity <= 0 {
			t.Fatalf("validity collapsed despite f=1 redundancy: %v", r.Validity)
		}
	}
}

func TestReliableSensorAllFaultyCollapses(t *testing.T) {
	k := sim.NewKernel(22)
	mk := func(name string, off float64) *Abstract {
		p := NewPhysical(k, name, constTruth(100), 0.1)
		p.Inject(Fault{Mode: FaultPermanentOffset, Magnitude: off})
		fm := NewFaultManagement(8, RangeDetector{Min: 0, Max: 1000})
		return NewAbstract(k, p, fm)
	}
	// Three sensors in three disjoint places: no agreement possible.
	rs := NewReliable(k, []*Abstract{mk("a", 0), mk("b", 200), mk("c", 400)}, 1.0, 1, 0.2)
	r := rs.Read()
	if rs.LastErr() == nil {
		t.Fatal("expected fusion disagreement error")
	}
	if r.Validity > 0.3 {
		t.Fatalf("disagreement should slash validity, got %v", r.Validity)
	}
}

func TestReliableSensorNoInputs(t *testing.T) {
	k := sim.NewKernel(23)
	rs := NewReliable(k, nil, 1, 0, 0.5)
	r := rs.Read()
	if r.Validity != 0 {
		t.Fatalf("no-input validity = %v", r.Validity)
	}
	if !errors.Is(rs.LastErr(), ErrNoData) {
		t.Fatalf("LastErr = %v", rs.LastErr())
	}
}

// Property: the Marzullo result width never exceeds the widest input, and
// the result is within the hull of the inputs.
func TestPropertyMarzulloBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := sim.NewKernel(seed).Rand()
		n := 2 + rng.Intn(6)
		ivs := make([]Interval, n)
		hullLo, hullHi := math.Inf(1), math.Inf(-1)
		for i := range ivs {
			lo := rng.Float64()*100 - 50
			hi := lo + rng.Float64()*20
			ivs[i] = Interval{Lo: lo, Hi: hi}
			hullLo = math.Min(hullLo, lo)
			hullHi = math.Max(hullHi, hi)
		}
		got, err := Marzullo(ivs, rng.Intn(n))
		if err != nil {
			return true // no agreement is acceptable
		}
		widths := make([]float64, n)
		for i, iv := range ivs {
			widths[i] = iv.Width()
		}
		sort.Float64s(widths)
		return got.Lo >= hullLo && got.Hi <= hullHi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
