package sensor

import (
	"math"

	"karyon/internal/sim"
)

// Verdict is one detector's judgment of a reading. MOSAIC (Fig. 3)
// distinguishes dominant detectors — which render a result invalid outright
// — from detectors producing a continuous validity estimate.
type Verdict struct {
	// Validity is the detector's confidence in the reading, in [0,1].
	Validity float64
	// Dominant marks a hard failure: the fault-management unit forces the
	// overall validity to zero when a dominant detector fails (validity 0).
	Dominant bool
}

// Detector inspects a reading in the context of recent history.
type Detector interface {
	// Name identifies the detector in diagnostics.
	Name() string
	// Check judges the reading observed at virtual instant now.
	Check(now sim.Time, r Reading, hist *History) Verdict
}

// History is a bounded window of recent readings available to detectors.
type History struct {
	buf  []Reading
	size int
}

// NewHistory creates a window keeping the last size readings (minimum 1).
func NewHistory(size int) *History {
	if size < 1 {
		size = 1
	}
	return &History{size: size}
}

// Push appends a reading, evicting the oldest beyond the window size.
func (h *History) Push(r Reading) {
	h.buf = append(h.buf, r)
	if len(h.buf) > h.size {
		copy(h.buf, h.buf[1:])
		h.buf = h.buf[:h.size]
	}
}

// Len returns the number of retained readings.
func (h *History) Len() int { return len(h.buf) }

// At returns the i-th most recent reading (0 = newest).
func (h *History) At(i int) (Reading, bool) {
	if i < 0 || i >= len(h.buf) {
		return Reading{}, false
	}
	return h.buf[len(h.buf)-1-i], true
}

// Values returns the retained values, oldest first.
func (h *History) Values() []float64 {
	out := make([]float64, len(h.buf))
	for i, r := range h.buf {
		out[i] = r.Value
	}
	return out
}

// RangeDetector is a dominant detector rejecting readings outside the
// physically plausible interval [Min, Max].
type RangeDetector struct {
	Min float64
	Max float64
}

// Name implements Detector.
func (d RangeDetector) Name() string { return "range" }

// Check implements Detector.
func (d RangeDetector) Check(_ sim.Time, r Reading, _ *History) Verdict {
	if r.Value < d.Min || r.Value > d.Max {
		return Verdict{Validity: 0, Dominant: true}
	}
	return Verdict{Validity: 1, Dominant: true}
}

// FreshnessDetector is a dominant detector rejecting readings whose claimed
// acquisition timestamp lags the current instant by more than MaxAge —
// catching delay faults and omissions (the MOSAIC input layer "monitors the
// delays or omissions of the transducer output").
type FreshnessDetector struct {
	MaxAge sim.Time
}

// Name implements Detector.
func (d FreshnessDetector) Name() string { return "freshness" }

// Check implements Detector.
func (d FreshnessDetector) Check(now sim.Time, r Reading, _ *History) Verdict {
	if r.Age(now) > d.MaxAge {
		return Verdict{Validity: 0, Dominant: true}
	}
	return Verdict{Validity: 1, Dominant: true}
}

// RateDetector is a continuous detector: it degrades validity when the
// value changes faster than MaxRate (units per second). Sporadic offsets
// appear as rate spikes.
type RateDetector struct {
	MaxRate float64
}

// Name implements Detector.
func (d RateDetector) Name() string { return "rate" }

// Check implements Detector.
func (d RateDetector) Check(_ sim.Time, r Reading, hist *History) Verdict {
	prev, ok := hist.At(0)
	if !ok || r.Time <= prev.Time {
		return Verdict{Validity: 1}
	}
	dt := (r.Time - prev.Time).Seconds()
	rate := math.Abs(r.Value-prev.Value) / dt
	if rate <= d.MaxRate {
		return Verdict{Validity: 1}
	}
	// Validity decays inversely with the rate excess.
	return Verdict{Validity: Clamp(d.MaxRate / rate)}
}

// StuckDetector is a dominant detector flagging a transducer whose output
// has been bit-identical for MinRepeats consecutive samples — a real
// continuous-valued sensor with nominal noise essentially never repeats
// exactly.
type StuckDetector struct {
	MinRepeats int
}

// Name implements Detector.
func (d StuckDetector) Name() string { return "stuck" }

// Check implements Detector.
func (d StuckDetector) Check(_ sim.Time, r Reading, hist *History) Verdict {
	need := d.MinRepeats
	if need < 2 {
		need = 2
	}
	repeats := 1
	for i := 0; i < hist.Len(); i++ {
		prev, _ := hist.At(i)
		if prev.Value != r.Value {
			break
		}
		repeats++
	}
	if repeats >= need {
		return Verdict{Validity: 0, Dominant: true}
	}
	return Verdict{Validity: 1, Dominant: true}
}

// NoiseDetector is a continuous detector comparing the short-term standard
// deviation of the signal against the sensor's nominal sigma; stochastic
// offset faults inflate it. Window readings are detrended against a linear
// fit so genuine signal motion is not misread as noise.
type NoiseDetector struct {
	// Sigma is the nominal measurement noise.
	Sigma float64
	// Tolerance scales how much excess noise is accepted before validity
	// starts to degrade (e.g. 3 means up to 3x nominal is fine).
	Tolerance float64
	// MinWindow is the minimum number of samples before judging.
	MinWindow int
}

// Name implements Detector.
func (d NoiseDetector) Name() string { return "noise" }

// Check implements Detector.
func (d NoiseDetector) Check(_ sim.Time, r Reading, hist *History) Verdict {
	minW := d.MinWindow
	if minW < 4 {
		minW = 4
	}
	if hist.Len()+1 < minW {
		return Verdict{Validity: 1}
	}
	sd := detrendedStdDevHist(hist, r.Value)
	limit := d.Sigma * d.Tolerance
	if limit <= 0 || sd <= limit {
		return Verdict{Validity: 1}
	}
	return Verdict{Validity: Clamp(limit / sd)}
}

// detrendedStdDev removes a least-squares line from vals (indexed by
// position) and returns the residual standard deviation.
func detrendedStdDev(vals []float64) float64 {
	fit := detrendFit{}
	for _, v := range vals {
		fit.add(v)
	}
	fit.solve()
	for _, v := range vals {
		fit.residual(v)
	}
	return fit.stddev()
}

// detrendedStdDevHist is detrendedStdDev over the history window followed
// by one extra value, without materializing the slice — this runs once per
// transducer sample on the car control hot path, and the slice append it
// replaces was the single largest allocation site in the whole simulation.
func detrendedStdDevHist(hist *History, last float64) float64 {
	fit := detrendFit{}
	for i := range hist.buf {
		fit.add(hist.buf[i].Value)
	}
	fit.add(last)
	fit.solve()
	for i := range hist.buf {
		fit.residual(hist.buf[i].Value)
	}
	fit.residual(last)
	return fit.stddev()
}

// detrendFit accumulates a least-squares line fit in one pass and residual
// energy in a second, with the same operation order for every caller so
// results stay bit-identical however the values are stored.
type detrendFit struct {
	i                int
	sx, sy, sxx, sxy float64
	slope, intercept float64
	j                int
	ss               float64
}

func (f *detrendFit) add(v float64) {
	x := float64(f.i)
	f.i++
	f.sx += x
	f.sy += v
	f.sxx += x * x
	f.sxy += x * v
}

func (f *detrendFit) solve() {
	n := float64(f.i)
	denom := n*f.sxx - f.sx*f.sx
	if denom != 0 {
		f.slope = (n*f.sxy - f.sx*f.sy) / denom
		f.intercept = (f.sy - f.slope*f.sx) / n
	} else {
		f.intercept = f.sy / n
	}
}

func (f *detrendFit) residual(v float64) {
	resid := v - (f.slope*float64(f.j) + f.intercept)
	f.j++
	f.ss += resid * resid
}

func (f *detrendFit) stddev() float64 {
	return math.Sqrt(f.ss / float64(f.i))
}

// ModelDetector is a continuous detector implementing analytical redundancy
// (paper Sec. IV-B): it compares the reading against a prediction from a
// process model and degrades validity with the normalized residual.
type ModelDetector struct {
	// Predict returns the model's expected value at t.
	Predict func(t sim.Time) float64
	// Tolerance is the residual magnitude at which validity reaches ~0.5.
	Tolerance float64
}

// Name implements Detector.
func (d ModelDetector) Name() string { return "model" }

// Check implements Detector.
func (d ModelDetector) Check(_ sim.Time, r Reading, _ *History) Verdict {
	if d.Predict == nil || d.Tolerance <= 0 {
		return Verdict{Validity: 1}
	}
	resid := math.Abs(r.Value - d.Predict(r.Time))
	// Smooth falloff: validity = 1 / (1 + (resid/tol)^2).
	x := resid / d.Tolerance
	return Verdict{Validity: Clamp(1 / (1 + x*x))}
}

// FaultManagement is the MOSAIC crosscutting unit (Fig. 3): it runs every
// registered detector and combines their verdicts into the reading's data
// validity. Any failing dominant detector forces validity to zero; the
// continuous estimates multiply (independent evidence).
type FaultManagement struct {
	detectors []Detector
	hist      *History
	// lastVerdicts keeps the most recent per-detector outcomes for
	// diagnostics and tests, indexed like detectors — a slice rather than a
	// name-keyed map because Assess runs once per transducer sample on the
	// control hot path, where per-call map writes dominate.
	lastVerdicts []Verdict
	assessed     bool
}

// NewFaultManagement creates a unit with the given history window and
// detectors.
func NewFaultManagement(window int, detectors ...Detector) *FaultManagement {
	return &FaultManagement{
		detectors:    detectors,
		hist:         NewHistory(window),
		lastVerdicts: make([]Verdict, len(detectors)),
	}
}

// Assess judges the reading, pushes it into the history and returns the
// reading annotated with the combined validity.
func (fm *FaultManagement) Assess(now sim.Time, r Reading) Reading {
	validity := 1.0
	for i, d := range fm.detectors {
		v := d.Check(now, r, fm.hist)
		fm.lastVerdicts[i] = v
		if v.Dominant && v.Validity == 0 {
			validity = 0
		} else {
			validity *= Clamp(v.Validity)
		}
	}
	fm.assessed = true
	fm.hist.Push(r)
	r.Validity = Clamp(validity)
	return r
}

// Verdict returns the most recent verdict from the named detector.
func (fm *FaultManagement) Verdict(name string) (Verdict, bool) {
	if !fm.assessed {
		return Verdict{}, false
	}
	for i, d := range fm.detectors {
		if d.Name() == name {
			return fm.lastVerdicts[i], true
		}
	}
	return Verdict{}, false
}

// FaultManagementState is a checkpoint of the unit's mutable state (for
// speculative shard windows); storage is reused across Save calls.
type FaultManagementState struct {
	hist     []Reading
	verdicts []Verdict
	assessed bool
}

// SaveState checkpoints the unit into st (pass nil to allocate) and
// returns it.
func (fm *FaultManagement) SaveState(st *FaultManagementState) *FaultManagementState {
	if st == nil {
		st = &FaultManagementState{}
	}
	st.hist = append(st.hist[:0], fm.hist.buf...)
	st.verdicts = append(st.verdicts[:0], fm.lastVerdicts...)
	st.assessed = fm.assessed
	return st
}

// RestoreState rewinds the unit to a SaveState checkpoint.
func (fm *FaultManagement) RestoreState(st *FaultManagementState) {
	fm.hist.buf = append(fm.hist.buf[:0], st.hist...)
	copy(fm.lastVerdicts, st.verdicts)
	fm.assessed = st.assessed
}

// Abstract is the paper's abstract sensor (Fig. 2): a physical sensor plus
// its fault-management wrapper, exposing only validity-annotated readings.
type Abstract struct {
	phys  *Physical
	fm    *FaultManagement
	clock sim.Clock
}

// NewAbstract wraps a physical sensor with fault management. The clock is
// usually the kernel; sharded worlds pass the owning entity's clock.
func NewAbstract(clock sim.Clock, phys *Physical, fm *FaultManagement) *Abstract {
	return &Abstract{phys: phys, fm: fm, clock: clock}
}

// Name returns the underlying sensor name.
func (a *Abstract) Name() string { return a.phys.Name() }

// Physical exposes the wrapped transducer (for fault injection in tests
// and campaigns).
func (a *Abstract) Physical() *Physical { return a.phys }

// FaultManagement exposes the wrapped detection unit (for speculative
// checkpointing: the abstract sensor itself is stateless, its state lives
// in the transducer and the detection unit).
func (a *Abstract) FaultManagement() *FaultManagement { return a.fm }

// Read samples the transducer and returns the validity-annotated reading.
func (a *Abstract) Read() Reading {
	return a.fm.Assess(a.clock.Now(), a.phys.Sample())
}
