package sensor

import (
	"encoding/json"
	"fmt"

	"karyon/internal/sim"
)

// DataSheet is the MOSAIC electronic data sheet (paper Sec. IV-B): the
// machine-readable description of a smart component's static properties,
// "stored on the node", that lets applications be composed as networks of
// independent components without hard-coded knowledge of each device.
type DataSheet struct {
	// Name identifies the component.
	Name string `json:"name"`
	// Quantity is what is measured (e.g. "distance", "speed").
	Quantity string `json:"quantity"`
	// Unit is the measurement unit (e.g. "m", "m/s").
	Unit string `json:"unit"`
	// Range is the physically meaningful measurement interval.
	Range Interval `json:"range"`
	// Sigma is the nominal 1-sigma measurement noise.
	Sigma float64 `json:"sigma"`
	// PeriodMicros is the nominal sampling period in microseconds (JSON
	// cannot carry time.Duration losslessly; the unit is in the name).
	PeriodMicros int64 `json:"periodMicros"`
	// Detectors lists the failure detectors wrapped around the
	// transducer, so consumers know which fault modes are covered.
	Detectors []string `json:"detectors"`
}

// Period returns the sampling period as virtual time.
func (d DataSheet) Period() sim.Time { return sim.Time(d.PeriodMicros) }

// Validate checks the sheet's internal consistency.
func (d DataSheet) Validate() error {
	if d.Name == "" || d.Quantity == "" {
		return fmt.Errorf("sensor: datasheet needs name and quantity")
	}
	if d.Range.Lo >= d.Range.Hi {
		return fmt.Errorf("sensor: datasheet range [%v,%v] is empty", d.Range.Lo, d.Range.Hi)
	}
	if d.Sigma < 0 || d.PeriodMicros <= 0 {
		return fmt.Errorf("sensor: datasheet sigma/period invalid")
	}
	return nil
}

// Marshal renders the sheet as JSON (what the node would store/serve).
func (d DataSheet) Marshal() ([]byte, error) {
	return json.Marshal(d)
}

// ParseDataSheet decodes a JSON data sheet and validates it.
func ParseDataSheet(data []byte) (DataSheet, error) {
	var d DataSheet
	if err := json.Unmarshal(data, &d); err != nil {
		return DataSheet{}, fmt.Errorf("sensor: parse datasheet: %w", err)
	}
	if err := d.Validate(); err != nil {
		return DataSheet{}, err
	}
	return d, nil
}

// Describe builds the data sheet for an abstract sensor assembled from a
// physical transducer and its fault-management detectors.
func Describe(a *Abstract, quantity, unit string, rng Interval, period sim.Time) DataSheet {
	names := make([]string, 0, len(a.fm.detectors))
	for _, det := range a.fm.detectors {
		names = append(names, det.Name())
	}
	return DataSheet{
		Name:         a.Name(),
		Quantity:     quantity,
		Unit:         unit,
		Range:        rng,
		Sigma:        a.phys.Sigma(),
		PeriodMicros: int64(period),
		Detectors:    names,
	}
}
