package sensor

import (
	"errors"
	"sort"

	"karyon/internal/sim"
)

// ErrNoData indicates a fusion operator received no usable inputs.
var ErrNoData = errors.New("sensor: no usable readings to fuse")

// Interval is a closed value interval [Lo, Hi] asserted to contain the
// true value. It is marshaled in data sheets, hence the field tags.
type Interval struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// Mid returns the interval midpoint.
func (iv Interval) Mid() float64 { return (iv.Lo + iv.Hi) / 2 }

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// Marzullo computes the fault-tolerant intersection of sensor intervals
// (Marzullo [26]): the smallest interval covered by at least n-f of the n
// inputs, where f is the number of tolerated faulty sensors. It returns
// ErrNoData when n == 0 or no point is covered by n-f intervals.
func Marzullo(intervals []Interval, f int) (Interval, error) {
	iv, _, err := marzulloScratch(intervals, f, nil)
	return iv, err
}

// marzulloEdge is one interval endpoint in the Marzullo sweep.
type marzulloEdge struct {
	x     float64
	delta int // +1 interval opens, -1 closes
}

// marzulloScratch is Marzullo with caller-provided edge scratch, so the
// per-control-cycle fusion on the car hot path does not allocate. It
// returns the (possibly grown) scratch for reuse.
func marzulloScratch(intervals []Interval, f int, edges []marzulloEdge) (Interval, []marzulloEdge, error) {
	n := len(intervals)
	if n == 0 {
		return Interval{}, edges, ErrNoData
	}
	if f < 0 {
		f = 0
	}
	need := n - f
	if need < 1 {
		need = 1
	}
	edges = edges[:0]
	for _, iv := range intervals {
		lo, hi := iv.Lo, iv.Hi
		if lo > hi {
			lo, hi = hi, lo
		}
		edges = append(edges, marzulloEdge{x: lo, delta: +1}, marzulloEdge{x: hi, delta: -1})
	}
	// Insertion sort by (x, opens-before-closes): edge sets are tiny (two
	// per input), and sort.Slice's closure allocates on a path that runs
	// every control cycle. Ties on (x, delta) commute, so the order is
	// deterministic where it matters.
	for i := 1; i < len(edges); i++ {
		e := edges[i]
		j := i - 1
		for j >= 0 && (edges[j].x > e.x || (edges[j].x == e.x && edges[j].delta < e.delta)) {
			edges[j+1] = edges[j]
			j--
		}
		edges[j+1] = e
	}
	depth := 0
	best := Interval{}
	found := false
	var openAt float64
	for _, e := range edges {
		depth += e.delta
		if e.delta > 0 && depth >= need {
			openAt = e.x
		}
		if e.delta < 0 && depth == need-1 {
			// The region [openAt, e.x] had coverage >= need.
			if !found || e.x-openAt < best.Width() {
				best = Interval{Lo: openAt, Hi: e.x}
				found = true
			}
		}
	}
	if !found {
		return Interval{}, edges, ErrNoData
	}
	return best, edges, nil
}

// ToInterval converts a reading to an interval assuming a symmetric error
// bound of halfWidth around the value.
func ToInterval(r Reading, halfWidth float64) Interval {
	if halfWidth < 0 {
		halfWidth = -halfWidth
	}
	return Interval{Lo: r.Value - halfWidth, Hi: r.Value + halfWidth}
}

// WeightedFusion combines readings using their validities as weights,
// discarding readings below minValidity. The fused validity is the
// coverage-weighted mean validity of the inputs used. Returns ErrNoData if
// nothing passes the filter.
func WeightedFusion(now sim.Time, readings []Reading, minValidity float64) (Reading, error) {
	var sumW, sumWV, sumVal float64
	used := 0
	for _, r := range readings {
		if r.Validity < minValidity || r.Validity <= 0 {
			continue
		}
		sumW += r.Validity
		sumWV += r.Validity * r.Value
		sumVal += r.Validity
		used++
	}
	if used == 0 || sumW == 0 {
		return Reading{}, ErrNoData
	}
	return Reading{
		Value:    sumWV / sumW,
		Time:     now,
		Validity: Clamp(sumVal / float64(used)),
		Source:   "fusion",
	}, nil
}

// MedianFusion returns the validity-filtered median reading value — robust
// against a minority of arbitrarily wrong sensors even when their claimed
// validity is high.
func MedianFusion(now sim.Time, readings []Reading, minValidity float64) (Reading, error) {
	vals := make([]float64, 0, len(readings))
	valSum := 0.0
	for _, r := range readings {
		if r.Validity < minValidity || r.Validity <= 0 {
			continue
		}
		vals = append(vals, r.Value)
		valSum += r.Validity
	}
	if len(vals) == 0 {
		return Reading{}, ErrNoData
	}
	sort.Float64s(vals)
	mid := len(vals) / 2
	v := vals[mid]
	if len(vals)%2 == 0 {
		v = (vals[mid-1] + vals[mid]) / 2
	}
	return Reading{
		Value:    v,
		Time:     now,
		Validity: Clamp(valSum / float64(len(vals))),
		Source:   "median-fusion",
	}, nil
}

// TemporalFilter implements temporal redundancy (Sec. IV-B's third
// redundancy option): an exponentially weighted moving average that rejects
// samples deviating from the running estimate by more than Gate, feeding
// rejected energy back into a validity discount.
type TemporalFilter struct {
	// Alpha is the EWMA smoothing factor in (0,1]; higher tracks faster.
	Alpha float64
	// Gate is the absolute innovation bound beyond which a sample is
	// treated as an outlier.
	Gate float64

	est      float64
	started  bool
	accepted int64
	rejected int64
}

// Update feeds one reading and returns the filtered estimate with a
// validity reflecting both the input validity and the recent rejection
// rate.
func (tf *TemporalFilter) Update(r Reading) Reading {
	alpha := tf.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	if !tf.started {
		tf.est = r.Value
		tf.started = true
		tf.accepted++
		return r
	}
	innovation := r.Value - tf.est
	if tf.Gate > 0 && (innovation > tf.Gate || innovation < -tf.Gate) {
		tf.rejected++
		// Hold the estimate; pass through with degraded validity.
		out := r
		out.Value = tf.est
		out.Validity = Clamp(r.Validity * tf.acceptance())
		return out
	}
	tf.accepted++
	tf.est += alpha * innovation
	out := r
	out.Value = tf.est
	out.Validity = Clamp(r.Validity * tf.acceptance())
	return out
}

func (tf *TemporalFilter) acceptance() float64 {
	total := tf.accepted + tf.rejected
	if total == 0 {
		return 1
	}
	return float64(tf.accepted) / float64(total)
}

// Rejected returns how many samples the gate has rejected.
func (tf *TemporalFilter) Rejected() int64 { return tf.rejected }

// Reliable is the paper's abstract *reliable* sensor (Sec. IV-B): it fuses
// several redundant abstract sensors (component redundancy), optionally a
// model-based virtual sensor (analytical redundancy), and smooths the
// result over time (temporal redundancy), exposing one validity-annotated
// reading.
type Reliable struct {
	clock   sim.Clock
	inputs  []*Abstract
	half    float64 // interval half-width per input (for Marzullo)
	filter  *TemporalFilter
	minVal  float64
	faulty  int // tolerated faulty inputs f
	lastErr error
	// suspects names the inputs the last Read either excluded for low
	// validity or found disagreeing with the fused interval — the
	// system-level fault detection a single sensor cannot provide (e.g.
	// a permanent calibration offset).
	suspects []string

	// readings/intervals/edges are per-Read scratch, reused so the fusion
	// pipeline stops allocating on the control hot path.
	readings  []Reading
	intervals []Interval
	edges     []marzulloEdge
}

// NewReliable builds a reliable sensor over the given inputs. halfWidth is
// each input's assumed error bound; f is the number of tolerated faulty
// inputs; minValidity filters inputs before fusion.
func NewReliable(clock sim.Clock, inputs []*Abstract, halfWidth float64, f int, minValidity float64) *Reliable {
	return &Reliable{
		clock:  clock,
		inputs: inputs,
		half:   halfWidth,
		filter: &TemporalFilter{Alpha: 0.5},
		minVal: minValidity,
		faulty: f,
	}
}

// LastErr returns the most recent fusion error (nil when the last Read
// fused successfully).
func (rs *Reliable) LastErr() error { return rs.lastErr }

// ReliableState is a checkpoint of the fused sensor's mutable state (for
// speculative shard windows); storage is reused across Save calls.
type ReliableState struct {
	filter   TemporalFilter
	lastErr  error
	suspects []string
}

// SaveState checkpoints the sensor into st (pass nil to allocate) and
// returns it. The inputs' own state is checkpointed separately via their
// FaultManagement units.
func (rs *Reliable) SaveState(st *ReliableState) *ReliableState {
	if st == nil {
		st = &ReliableState{}
	}
	st.filter = *rs.filter
	st.lastErr = rs.lastErr
	st.suspects = append(st.suspects[:0], rs.suspects...)
	return st
}

// RestoreState rewinds the sensor to a SaveState checkpoint.
func (rs *Reliable) RestoreState(st *ReliableState) {
	*rs.filter = st.filter
	rs.lastErr = st.lastErr
	rs.suspects = append(rs.suspects[:0], st.suspects...)
}

// LastSuspects returns the input names the most recent Read excluded or
// found disagreeing with the fused value.
func (rs *Reliable) LastSuspects() []string {
	return append([]string(nil), rs.suspects...)
}

// Suspected reports whether the named input was suspect on the last Read.
func (rs *Reliable) Suspected(name string) bool {
	for _, s := range rs.suspects {
		if s == name {
			return true
		}
	}
	return false
}

// Read samples every input, fuses them and returns the reliable reading.
// When Marzullo fusion finds no agreement interval the validity collapses
// to the best single input discounted by disagreement.
func (rs *Reliable) Read() Reading {
	now := rs.clock.Now()
	rs.suspects = rs.suspects[:0]
	readings := rs.readings[:0]
	intervals := rs.intervals[:0]
	for _, in := range rs.inputs {
		r := in.Read()
		if r.Validity >= rs.minVal && r.Validity > 0 {
			readings = append(readings, r)
			intervals = append(intervals, ToInterval(r, rs.half))
		} else {
			rs.suspects = append(rs.suspects, in.Name())
		}
	}
	rs.readings = readings
	rs.intervals = intervals
	if len(readings) == 0 {
		rs.lastErr = ErrNoData
		return Reading{Time: now, Validity: 0, Source: "reliable"}
	}
	iv, edges, err := marzulloScratch(intervals, rs.faulty, rs.edges)
	rs.edges = edges
	if err != nil {
		// No agreement: fall back to median, heavily discounted.
		med, merr := MedianFusion(now, readings, rs.minVal)
		rs.lastErr = err
		if merr != nil {
			return Reading{Time: now, Validity: 0, Source: "reliable"}
		}
		med.Validity = Clamp(med.Validity * 0.25)
		med.Source = "reliable"
		return rs.filter.Update(med)
	}
	rs.lastErr = nil
	// Flag inputs whose asserted interval does not intersect the fused
	// agreement: they are lying plausibly (e.g. permanent offset) and
	// only redundancy can expose them.
	for i, r := range readings {
		in := intervals[i]
		if in.Hi < iv.Lo || in.Lo > iv.Hi {
			rs.suspects = append(rs.suspects, r.Source)
		}
	}
	// Validity: mean input validity scaled by agreement tightness.
	var sumVal float64
	for _, r := range readings {
		sumVal += r.Validity
	}
	meanVal := sumVal / float64(len(readings))
	// Agreement quality: fully overlapping intervals intersect in nearly
	// their full width (2*half); a sliver of an intersection means the
	// inputs barely agree.
	tightness := 1.0
	if rs.half > 0 {
		tightness = Clamp(iv.Width() / (2 * rs.half))
		if tightness < 0.1 {
			tightness = 0.1
		}
	}
	out := Reading{
		Value:    iv.Mid(),
		Time:     now,
		Validity: Clamp(meanVal * tightness),
		Source:   "reliable",
	}
	return rs.filter.Update(out)
}
