// Package sensor implements KARYON's abstract sensor model (paper Sec. IV):
// physical sensors with the paper's five fault-mode dimensions (delay,
// sporadic offset, permanent offset, stochastic offset, stuck-at), a
// MOSAIC-style detection pipeline (Fig. 3) with dominant and continuous
// failure detectors feeding a fault-management unit that derives a single
// data validity in [0,1], and fusion operators (Marzullo interval fusion,
// validity-weighted averaging, temporal redundancy) that build an abstract
// *reliable* sensor out of unreliable ones (Sec. IV-B).
package sensor

import (
	"fmt"
	"math"
	"math/rand"

	"karyon/internal/sim"
)

// Reading is the data-centric unit exchanged by the system: a value, its
// acquisition timestamp, and the validity estimate that abstracts whatever
// fault detection produced it. Validity is the paper's central idea — the
// consumer never needs the underlying fault model.
type Reading struct {
	Value    float64
	Time     sim.Time
	Validity float64 // 0 = known bad, 1 = fully trusted
	Source   string
}

// Age returns how old the reading is at the given instant.
func (r Reading) Age(now sim.Time) sim.Time {
	if now < r.Time {
		return 0
	}
	return now - r.Time
}

// FaultMode enumerates the paper's five sensor fault-mode dimensions
// (Sec. IV-A, categorization from [42]).
type FaultMode int

// Fault modes.
const (
	FaultDelay FaultMode = iota + 1
	FaultSporadicOffset
	FaultPermanentOffset
	FaultStochasticOffset
	FaultStuckAt
)

var faultModeNames = map[FaultMode]string{
	FaultDelay:            "delay",
	FaultSporadicOffset:   "sporadic-offset",
	FaultPermanentOffset:  "permanent-offset",
	FaultStochasticOffset: "stochastic-offset",
	FaultStuckAt:          "stuck-at",
}

// String returns the fault mode's name.
func (m FaultMode) String() string {
	if s, ok := faultModeNames[m]; ok {
		return s
	}
	return fmt.Sprintf("fault(%d)", int(m))
}

// AllFaultModes lists every mode, for sweeps.
func AllFaultModes() []FaultMode {
	return []FaultMode{
		FaultDelay, FaultSporadicOffset, FaultPermanentOffset,
		FaultStochasticOffset, FaultStuckAt,
	}
}

// Fault describes one injected fault episode on a physical sensor.
type Fault struct {
	Mode FaultMode
	// From/To bound the episode in virtual time (To == 0 means forever).
	From sim.Time
	To   sim.Time
	// Magnitude is the offset size (offset modes) or noise sigma
	// (stochastic mode), in value units.
	Magnitude float64
	// Delay is the staleness introduced by a delay fault.
	Delay sim.Time
	// Prob is the per-sample activation probability for sporadic offsets.
	Prob float64
}

// ActiveAt reports whether the episode covers instant t.
func (f Fault) ActiveAt(t sim.Time) bool {
	if t < f.From {
		return false
	}
	return f.To == 0 || t < f.To
}

// Truth supplies ground truth for a measured quantity.
type Truth func(t sim.Time) float64

// Physical models a concrete transducer: it samples ground truth with
// nominal Gaussian noise and applies any active fault episodes. It is the
// component "C" of the paper's Fig. 2; the detectors wrapped around it by
// Abstract are the redundancy "F".
type Physical struct {
	name  string
	clock sim.Clock
	truth Truth
	// sigma is the nominal measurement noise (1-sigma).
	sigma  float64
	faults []Fault
	// stuck holds the frozen value while a stuck-at fault is active.
	stuck    float64
	stuckSet bool
	rng      *rand.Rand
}

// NewPhysical creates a physical sensor over ground truth with nominal
// noise sigma, drawing measurement noise from the kernel's rng.
func NewPhysical(kernel *sim.Kernel, name string, truth Truth, sigma float64) *Physical {
	return &Physical{
		name:  name,
		clock: kernel,
		truth: truth,
		sigma: sigma,
		rng:   kernel.Rand(),
	}
}

// NewPhysicalDetached creates a physical sensor bound to an explicit clock
// and random stream instead of a kernel. Sharded worlds use it: the clock
// travels with the owning entity across shard handoffs, and the per-entity
// stream (sim.NewStream) keeps the noise sequence independent of the
// partition.
func NewPhysicalDetached(clock sim.Clock, name string, truth Truth, sigma float64, rng *rand.Rand) *Physical {
	return &Physical{name: name, clock: clock, truth: truth, sigma: sigma, rng: rng}
}

// Name returns the sensor's name.
func (p *Physical) Name() string { return p.name }

// Sigma returns the nominal noise level.
func (p *Physical) Sigma() float64 { return p.sigma }

// Inject adds a fault episode.
func (p *Physical) Inject(f Fault) { p.faults = append(p.faults, f) }

// ClearFaults removes all fault episodes.
func (p *Physical) ClearFaults() {
	p.faults = nil
	p.stuckSet = false
}

// Sample acquires one raw reading at the current virtual instant. The raw
// reading claims full validity — judging it is the detectors' job.
func (p *Physical) Sample() Reading {
	now := p.clock.Now()
	t := now
	value := p.truth(t) + p.rng.NormFloat64()*p.sigma

	for _, f := range p.faults {
		if !f.ActiveAt(now) {
			continue
		}
		switch f.Mode {
		case FaultDelay:
			// The sensor reports a stale measurement but stamps it with
			// the acquisition time it *claims* — detection must rely on
			// the claimed timestamp lagging behind.
			t = now - f.Delay
			if t < 0 {
				t = 0
			}
			value = p.truth(t) + p.rng.NormFloat64()*p.sigma
		case FaultSporadicOffset:
			if p.rng.Float64() < f.Prob {
				value += f.Magnitude
			}
		case FaultPermanentOffset:
			value += f.Magnitude
		case FaultStochasticOffset:
			value += p.rng.NormFloat64() * f.Magnitude
		case FaultStuckAt:
			if !p.stuckSet {
				p.stuck = value
				p.stuckSet = true
			}
			value = p.stuck
		}
	}
	// Reset stuck latch once no stuck fault is active.
	if p.stuckSet && !p.stuckActive(now) {
		p.stuckSet = false
	}
	return Reading{Value: value, Time: t, Validity: 1, Source: p.name}
}

// PhysicalState is a checkpoint of the transducer's mutable state (for
// speculative shard windows). The noise stream is owned and checkpointed
// by the entity that constructed the sensor; fault episodes only change at
// barriers outside speculation, so they are not part of it.
type PhysicalState struct {
	stuck    float64
	stuckSet bool
}

// SaveState checkpoints the transducer.
func (p *Physical) SaveState() PhysicalState {
	return PhysicalState{stuck: p.stuck, stuckSet: p.stuckSet}
}

// RestoreState rewinds the transducer to a SaveState checkpoint.
func (p *Physical) RestoreState(st PhysicalState) {
	p.stuck = st.stuck
	p.stuckSet = st.stuckSet
}

func (p *Physical) stuckActive(now sim.Time) bool {
	for _, f := range p.faults {
		if f.Mode == FaultStuckAt && f.ActiveAt(now) {
			return true
		}
	}
	return false
}

// Clamp bounds v into [0,1].
func Clamp(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	case math.IsNaN(v):
		return 0
	default:
		return v
	}
}
