package coord

import (
	"fmt"
	"sort"

	"karyon/internal/sim"
	"karyon/internal/wireless"
)

// Cohort messages. The cohort primitive follows Le Lann [24]: an ordered
// group of vehicles (a platoon) with a head that owns the roster and the
// common speed profile; membership changes are head-mediated, so the
// roster version totally orders them.
type cohortJoinReq struct {
	From   wireless.NodeID
	Cohort string
}

type cohortLeaveReq struct {
	From   wireless.NodeID
	Cohort string
}

type cohortRoster struct {
	Cohort  string
	Head    wireless.NodeID
	Version uint64
	// Members in platoon order (head first).
	Members []wireless.NodeID
	// TargetSpeed is the head's commanded profile (m/s).
	TargetSpeed float64
	// TargetLane and LaneChangeID implement the paper's VI-A3 extension:
	// "platoons of cars that can change lanes in a coordinated manner".
	// The head bumps LaneChangeID when commanding a platoon-wide change;
	// members execute it once and acknowledge locally.
	TargetLane   int
	LaneChangeID uint64
}

// CohortConfig parameterizes a cohort member.
type CohortConfig struct {
	// Name identifies the cohort (vehicles may only follow one).
	Name string
	// RosterPeriod is the head's roster broadcast period.
	RosterPeriod sim.Time
	// HeadTimeout is the silence after which members consider the head
	// gone and the next member takes over.
	HeadTimeout sim.Time
}

// DefaultCohortConfig returns platooning-scale timing.
func DefaultCohortConfig(name string) CohortConfig {
	return CohortConfig{
		Name:         name,
		RosterPeriod: 100 * sim.Millisecond,
		HeadTimeout:  500 * sim.Millisecond,
	}
}

// CohortMember is one vehicle's participation in a cohort.
type CohortMember struct {
	cfg    CohortConfig
	kernel *sim.Kernel
	radio  *wireless.Radio

	roster    cohortRoster
	haveRost  bool
	lastHeard sim.Time
	isHead    bool
	joined    bool
	left      bool

	ticker  *sim.Ticker
	stopped bool

	// ackedLaneChange is the last LaneChangeID this member executed.
	ackedLaneChange uint64

	// Takeovers counts head-failover promotions by this member.
	Takeovers int64
}

// NewCohortMember creates a participant. Wire OnFrame into the radio's
// receive path, then call Found or Join.
func NewCohortMember(kernel *sim.Kernel, radio *wireless.Radio, cfg CohortConfig) (*CohortMember, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("coord: cohort needs a name")
	}
	if cfg.RosterPeriod <= 0 || cfg.HeadTimeout <= cfg.RosterPeriod {
		return nil, fmt.Errorf("coord: cohort needs 0 < rosterPeriod < headTimeout")
	}
	return &CohortMember{cfg: cfg, kernel: kernel, radio: radio}, nil
}

// ID returns the member's node id.
func (m *CohortMember) ID() wireless.NodeID { return m.radio.ID() }

// Head reports whether this member currently heads the cohort.
func (m *CohortMember) Head() bool { return m.isHead }

// Joined reports whether this member appears in the current roster.
func (m *CohortMember) Joined() bool { return m.joined }

// Position returns the member's platoon position (0 = head) and whether
// it is in the roster.
func (m *CohortMember) Position() (int, bool) {
	if !m.haveRost {
		return 0, false
	}
	for i, id := range m.roster.Members {
		if id == m.radio.ID() {
			return i, true
		}
	}
	return 0, false
}

// Roster returns the member list (head first) as currently known.
func (m *CohortMember) Roster() []wireless.NodeID {
	return append([]wireless.NodeID(nil), m.roster.Members...)
}

// TargetSpeed returns the cohort's commanded speed and whether a roster
// is known and fresh.
func (m *CohortMember) TargetSpeed() (float64, bool) {
	if !m.haveRost || m.kernel.Now()-m.lastHeard > m.cfg.HeadTimeout {
		if !m.isHead {
			return 0, false
		}
	}
	return m.roster.TargetSpeed, m.haveRost
}

// Found establishes a new cohort with this member as head.
func (m *CohortMember) Found(targetSpeed float64) error {
	if m.haveRost {
		return fmt.Errorf("coord: already in cohort %q", m.cfg.Name)
	}
	m.roster = cohortRoster{
		Cohort:      m.cfg.Name,
		Head:        m.radio.ID(),
		Version:     1,
		Members:     []wireless.NodeID{m.radio.ID()},
		TargetSpeed: targetSpeed,
	}
	m.haveRost = true
	m.isHead = true
	m.joined = true
	return m.startTicker()
}

// Join requests admission; the head answers with an updated roster.
func (m *CohortMember) Join() error {
	m.left = false
	m.radio.Broadcast(cohortJoinReq{From: m.radio.ID(), Cohort: m.cfg.Name})
	return m.startTicker()
}

// Leave requests removal (a head cannot leave; it must hand over by
// stopping, letting failover promote the next member).
func (m *CohortMember) Leave() {
	if m.isHead {
		return
	}
	m.radio.Broadcast(cohortLeaveReq{From: m.radio.ID(), Cohort: m.cfg.Name})
	m.joined = false
	m.left = true
}

// SetTargetSpeed updates the commanded profile (head only). The roster
// version is bumped so followers adopt the change.
func (m *CohortMember) SetTargetSpeed(v float64) error {
	if !m.isHead {
		return fmt.Errorf("coord: only the head commands the profile")
	}
	m.roster.TargetSpeed = v
	m.roster.Version++
	m.publish()
	return nil
}

// CommandLaneChange orders the whole platoon into the target lane (head
// only) — the paper's coordinated platoon lane change. Members learn of
// the command through the roster and execute it exactly once each (see
// PendingLaneChange/AckLaneChange); the vehicle layer supplies the actual
// motion and should stagger execution rear-to-front or reserve the region
// through the Agreement protocol first.
func (m *CohortMember) CommandLaneChange(lane int) error {
	if !m.isHead {
		return fmt.Errorf("coord: only the head commands lane changes")
	}
	m.roster.TargetLane = lane
	m.roster.LaneChangeID++
	m.roster.Version++
	// The head executes its own command too.
	m.publish()
	return nil
}

// PendingLaneChange returns the commanded lane and command id when this
// member has a not-yet-executed platoon lane change.
func (m *CohortMember) PendingLaneChange() (lane int, id uint64, ok bool) {
	if !m.haveRost || !m.joined {
		return 0, 0, false
	}
	if m.roster.LaneChangeID <= m.ackedLaneChange {
		return 0, 0, false
	}
	return m.roster.TargetLane, m.roster.LaneChangeID, true
}

// AckLaneChange records that the member executed the command with the
// given id. Later ids supersede earlier ones.
func (m *CohortMember) AckLaneChange(id uint64) {
	if id > m.ackedLaneChange {
		m.ackedLaneChange = id
	}
}

// Stop halts participation (crash or shutdown).
func (m *CohortMember) Stop() {
	m.stopped = true
	if m.ticker != nil {
		m.ticker.Stop()
	}
}

func (m *CohortMember) startTicker() error {
	if m.ticker != nil {
		return nil
	}
	phase := sim.Time(m.kernel.Rand().Int63n(int64(m.cfg.RosterPeriod)))
	m.kernel.Schedule(phase, func() {
		if m.stopped {
			return
		}
		t, err := m.kernel.Every(m.cfg.RosterPeriod, m.tick)
		if err == nil {
			m.ticker = t
		}
	})
	return nil
}

func (m *CohortMember) tick() {
	if m.stopped || m.left {
		return
	}
	now := m.kernel.Now()
	if m.isHead {
		m.publish()
		return
	}
	if !m.haveRost || !m.joined {
		// Keep soliciting admission.
		m.radio.Broadcast(cohortJoinReq{From: m.radio.ID(), Cohort: m.cfg.Name})
		return
	}
	if now-m.lastHeard > m.cfg.HeadTimeout {
		// Head gone: the next member in roster order takes over.
		pos, in := m.Position()
		if !in {
			return
		}
		// Drop the dead head (and anything before us that stayed silent —
		// conservatively only the head, which failover order handles).
		next := m.successor()
		if next != m.radio.ID() {
			return // not our turn; wait for the successor's roster
		}
		m.isHead = true
		m.Takeovers++
		m.roster.Head = m.radio.ID()
		m.roster.Version++
		m.roster.Members = m.roster.Members[pos:]
		m.publish()
	}
}

// successor returns the first roster member after the dead head.
func (m *CohortMember) successor() wireless.NodeID {
	if len(m.roster.Members) < 2 {
		return m.radio.ID()
	}
	return m.roster.Members[1]
}

func (m *CohortMember) publish() {
	m.lastHeard = m.kernel.Now()
	m.radio.Broadcast(m.roster)
}

// OnFrame feeds received frames (demultiplex with other traffic).
func (m *CohortMember) OnFrame(f wireless.Frame) {
	if m.stopped {
		return
	}
	switch msg := f.Payload.(type) {
	case cohortJoinReq:
		if !m.isHead || msg.Cohort != m.cfg.Name {
			return
		}
		for _, id := range m.roster.Members {
			if id == msg.From {
				m.publish() // already in: re-announce for the lost reply
				return
			}
		}
		m.roster.Members = append(m.roster.Members, msg.From)
		m.roster.Version++
		m.publish()
	case cohortLeaveReq:
		if !m.isHead || msg.Cohort != m.cfg.Name {
			return
		}
		kept := m.roster.Members[:0]
		for _, id := range m.roster.Members {
			if id != msg.From {
				kept = append(kept, id)
			}
		}
		m.roster.Members = kept
		m.roster.Version++
		m.publish()
	case cohortRoster:
		if msg.Cohort != m.cfg.Name || m.left {
			return
		}
		if m.haveRost && msg.Version <= m.roster.Version && msg.Head == m.roster.Head {
			if msg.Version == m.roster.Version {
				m.lastHeard = m.kernel.Now()
			}
			return
		}
		// Concurrent heads after a partition heal: the lower id wins.
		if m.isHead && msg.Head > m.radio.ID() {
			return
		}
		if m.isHead && msg.Head < m.radio.ID() {
			m.isHead = false
		}
		m.roster = msg
		m.roster.Members = append([]wireless.NodeID(nil), msg.Members...)
		m.haveRost = true
		m.lastHeard = m.kernel.Now()
		m.joined = false
		for _, id := range m.roster.Members {
			if id == m.radio.ID() {
				m.joined = true
			}
		}
	}
}

// CohortOrderValid reports whether the members' physical order on the
// road matches the roster order (head first, positions decreasing): the
// platoon-form invariant used by tests and experiments. positions maps
// node id to longitudinal coordinate.
func CohortOrderValid(roster []wireless.NodeID, positions map[wireless.NodeID]float64) bool {
	xs := make([]float64, 0, len(roster))
	for _, id := range roster {
		x, ok := positions[id]
		if !ok {
			return false
		}
		xs = append(xs, x)
	}
	return sort.SliceIsSorted(xs, func(i, j int) bool { return xs[i] > xs[j] })
}
