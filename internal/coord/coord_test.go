package coord

import (
	"testing"

	"karyon/internal/sim"
	"karyon/internal/wireless"
)

func TestStateTableFreshness(t *testing.T) {
	k := sim.NewKernel(1)
	tab := NewStateTable(k, 100*sim.Millisecond)
	tab.Update(CoopState{ID: 1, Speed: 10, Time: 0, Validity: 0.9})
	if _, ok := tab.Get(1); !ok {
		t.Fatal("fresh entry missing")
	}
	k.Schedule(200*sim.Millisecond, func() {
		if _, ok := tab.Get(1); ok {
			t.Error("stale entry still returned")
		}
		if len(tab.Fresh()) != 0 {
			t.Error("stale entry in Fresh()")
		}
	})
	k.RunUntilIdle()
}

func TestStateTableKeepsNewest(t *testing.T) {
	k := sim.NewKernel(1)
	tab := NewStateTable(k, sim.Second)
	tab.Update(CoopState{ID: 1, Speed: 10, Time: 50 * sim.Millisecond})
	tab.Update(CoopState{ID: 1, Speed: 5, Time: 10 * sim.Millisecond}) // older
	s, ok := tab.Get(1)
	if !ok || s.Speed != 10 {
		t.Fatalf("got %+v, want newest (speed 10)", s)
	}
}

func TestStateTableScopeAndValidity(t *testing.T) {
	k := sim.NewKernel(1)
	tab := NewStateTable(k, sim.Second)
	tab.Update(CoopState{ID: 1, Pos: wireless.Position{X: 10}, Validity: 0.9})
	tab.Update(CoopState{ID: 2, Pos: wireless.Position{X: 50}, Validity: 0.6})
	tab.Update(CoopState{ID: 3, Pos: wireless.Position{X: 900}, Validity: 0.1})
	scope := tab.Scope(wireless.Position{}, 100)
	if len(scope) != 2 || scope[0] != 1 || scope[1] != 2 {
		t.Fatalf("scope = %v", scope)
	}
	if mv := tab.MinValidity(wireless.Position{}, 100); mv != 0.6 {
		t.Fatalf("MinValidity = %v, want 0.6", mv)
	}
	if mv := tab.MinValidity(wireless.Position{X: 5000}, 10); mv != 0 {
		t.Fatalf("empty-scope MinValidity = %v, want 0", mv)
	}
}

// agreementRig wires n Agreement nodes on a clean medium with full scope.
type agreementRig struct {
	k      *sim.Kernel
	medium *wireless.Medium
	nodes  []*Agreement
}

func newAgreementRig(t *testing.T, seed int64, n int, loss float64) *agreementRig {
	t.Helper()
	k := sim.NewKernel(seed)
	mcfg := wireless.DefaultConfig()
	mcfg.LossProb = loss
	medium := wireless.NewMedium(k, mcfg)
	rig := &agreementRig{k: k, medium: medium}
	all := func() []wireless.NodeID {
		ids := make([]wireless.NodeID, n)
		for i := range ids {
			ids[i] = wireless.NodeID(i)
		}
		return ids
	}
	for i := 0; i < n; i++ {
		radio, err := medium.Attach(wireless.NodeID(i), wireless.Position{X: float64(i) * 5})
		if err != nil {
			t.Fatal(err)
		}
		a := NewAgreement(k, radio, DefaultAgreementConfig(), all)
		radio.OnReceive(a.OnFrame)
		rig.nodes = append(rig.nodes, a)
	}
	return rig
}

func TestAgreementSoloGrant(t *testing.T) {
	rig := newAgreementRig(t, 1, 1, 0)
	var got Outcome
	rig.nodes[0].Request("lane", func(o Outcome) { got = o })
	rig.k.RunFor(sim.Second)
	if got != OutcomeGranted {
		t.Fatalf("solo outcome = %v", got)
	}
	if !rig.nodes[0].Holds("lane") {
		t.Fatal("holder flag not set")
	}
}

func TestAgreementUnanimousGrant(t *testing.T) {
	rig := newAgreementRig(t, 2, 4, 0)
	var got Outcome
	rig.nodes[1].Request("lane", func(o Outcome) { got = o })
	rig.k.RunFor(sim.Second)
	if got != OutcomeGranted {
		t.Fatalf("outcome = %v", got)
	}
	// All peers learn the committed holder.
	for i, n := range rig.nodes {
		if i == 1 {
			continue
		}
		holder, ok := n.HeldBy("lane")
		if !ok || holder != 1 {
			t.Fatalf("node %d view: holder=%v ok=%v", i, holder, ok)
		}
	}
}

func TestAgreementDeniedWhileHeld(t *testing.T) {
	rig := newAgreementRig(t, 3, 3, 0)
	var first, second Outcome
	rig.nodes[0].Request("lane", func(o Outcome) { first = o })
	rig.k.RunFor(sim.Second)
	rig.nodes[2].Request("lane", func(o Outcome) { second = o })
	rig.k.RunFor(sim.Second)
	if first != OutcomeGranted {
		t.Fatalf("first = %v", first)
	}
	if second != OutcomeDenied {
		t.Fatalf("second = %v, want denied while held", second)
	}
}

func TestAgreementReleaseAllowsNext(t *testing.T) {
	rig := newAgreementRig(t, 4, 3, 0)
	var first, second Outcome
	rig.nodes[0].Request("lane", func(o Outcome) { first = o })
	rig.k.RunFor(sim.Second)
	rig.nodes[0].Release("lane")
	rig.k.RunFor(sim.Second)
	rig.nodes[2].Request("lane", func(o Outcome) { second = o })
	rig.k.RunFor(sim.Second)
	if first != OutcomeGranted || second != OutcomeGranted {
		t.Fatalf("outcomes = %v, %v", first, second)
	}
}

func TestAgreementConcurrentRequestsAtMostOne(t *testing.T) {
	// The core safety property of use case VI-A3: at most one vehicle may
	// hold the lane-change resource, under concurrent requests.
	for seed := int64(10); seed < 30; seed++ {
		rig := newAgreementRig(t, seed, 5, 0)
		outcomes := make([]Outcome, 5)
		for i := range rig.nodes {
			i := i
			rig.nodes[i].Request("lane", func(o Outcome) { outcomes[i] = o })
		}
		rig.k.RunFor(2 * sim.Second)
		holders := 0
		for _, n := range rig.nodes {
			if n.Holds("lane") {
				holders++
			}
		}
		if holders > 1 {
			t.Fatalf("seed %d: %d concurrent holders (outcomes %v)", seed, holders, outcomes)
		}
	}
}

func TestAgreementLossCausesAbortNotDoubleGrant(t *testing.T) {
	// Under heavy loss, requests may time out — but two nodes must never
	// both hold the resource.
	for seed := int64(40); seed < 55; seed++ {
		rig := newAgreementRig(t, seed, 4, 0.5)
		for i := range rig.nodes {
			rig.nodes[i].Request("lane", func(Outcome) {})
		}
		rig.k.RunFor(2 * sim.Second)
		holders := 0
		for _, n := range rig.nodes {
			if n.Holds("lane") {
				holders++
			}
		}
		if holders > 1 {
			t.Fatalf("seed %d: loss produced %d holders", seed, holders)
		}
	}
}

func TestAgreementTimeoutUnderTotalLoss(t *testing.T) {
	rig := newAgreementRig(t, 60, 3, 1.0)
	var got Outcome
	rig.nodes[0].Request("lane", func(o Outcome) { got = o })
	rig.k.RunFor(2 * sim.Second)
	if got != OutcomeTimeout {
		t.Fatalf("outcome = %v, want timeout under total loss", got)
	}
	if rig.nodes[0].Holds("lane") {
		t.Fatal("timed-out requester holds resource")
	}
}

func TestOutcomeString(t *testing.T) {
	if OutcomeGranted.String() != "granted" || OutcomeDenied.String() != "denied" ||
		OutcomeTimeout.String() != "timeout" {
		t.Fatal("outcome names")
	}
	if Outcome(9).String() != "outcome(9)" {
		t.Fatal(Outcome(9).String())
	}
}

func TestTrafficLightMachineAdvance(t *testing.T) {
	m := TrafficLightMachine{GreenFor: 10 * sim.Second}
	s0, ok := m.Init().(LightState)
	if !ok || s0.Phase != PhaseNSGreen || s0.Remaining != 10*sim.Second {
		t.Fatalf("init %+v", s0)
	}
	s1, ok := m.Advance(s0, 4*sim.Second).(LightState)
	if !ok || s1.Phase != PhaseNSGreen || s1.Remaining != 6*sim.Second {
		t.Fatalf("after 4s: %+v", s1)
	}
	s2, ok := m.Advance(s1, 6*sim.Second).(LightState)
	if !ok || s2.Phase != PhaseEWGreen || s2.Remaining != 10*sim.Second {
		t.Fatalf("after 10s: %+v", s2)
	}
	// Multi-cycle advance: 25 s = EW(10) + NS(10) + 5 into EW.
	s3, ok := m.Advance(s2, 25*sim.Second).(LightState)
	if !ok || s3.Phase != PhaseEWGreen || s3.Remaining != 5*sim.Second {
		t.Fatalf("after 35s: %+v", s3)
	}
	if PhaseNSGreen.String() != "NS-green" || PhaseEWGreen.String() != "EW-green" {
		t.Fatal("phase names")
	}
}

// vnodeRig wires n virtual-node hosts inside one region.
func vnodeRig(t *testing.T, seed int64, n int) (*sim.Kernel, []*VNodeHost, *wireless.Medium) {
	t.Helper()
	k := sim.NewKernel(seed)
	medium := wireless.NewMedium(k, wireless.DefaultConfig())
	cfg := DefaultVNodeConfig(wireless.Position{})
	machine := TrafficLightMachine{GreenFor: 5 * sim.Second}
	var hosts []*VNodeHost
	for i := 0; i < n; i++ {
		radio, err := medium.Attach(wireless.NodeID(i), wireless.Position{X: float64(i) * 5})
		if err != nil {
			t.Fatal(err)
		}
		pos := radio.Position
		h, err := NewVNodeHost(k, radio, machine, cfg, pos)
		if err != nil {
			t.Fatal(err)
		}
		radio.OnReceive(h.OnFrame)
		if err := h.Start(); err != nil {
			t.Fatal(err)
		}
		hosts = append(hosts, h)
	}
	return k, hosts, medium
}

func TestVNodeValidation(t *testing.T) {
	k := sim.NewKernel(1)
	medium := wireless.NewMedium(k, wireless.DefaultConfig())
	radio, _ := medium.Attach(1, wireless.Position{})
	cfg := DefaultVNodeConfig(wireless.Position{})
	cfg.LeaderTimeout = cfg.Period
	if _, err := NewVNodeHost(k, radio, TrafficLightMachine{GreenFor: sim.Second}, cfg, radio.Position); err == nil {
		t.Fatal("leaderTimeout <= period accepted")
	}
}

func TestVNodeSingleLeaderEmerges(t *testing.T) {
	k, hosts, _ := vnodeRig(t, 2, 4)
	k.RunFor(3 * sim.Second)
	leaders := 0
	for _, h := range hosts {
		if h.Leading() {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("leaders = %d, want 1", leaders)
	}
	// Lowest id leads.
	if !hosts[0].Leading() {
		t.Fatal("lowest id is not the leader")
	}
	// Every host considers the node live and sees consistent state.
	for i, h := range hosts {
		if _, live := h.State(); !live {
			t.Fatalf("host %d sees dead virtual node", i)
		}
	}
}

func TestVNodeFailover(t *testing.T) {
	k, hosts, medium := vnodeRig(t, 3, 3)
	k.RunFor(2 * sim.Second)
	if !hosts[0].Leading() {
		t.Fatal("setup: host 0 not leading")
	}
	// Capture the light state just before the crash.
	st0, _ := hosts[1].State()
	s0, ok := st0.(LightState)
	if !ok {
		t.Fatalf("state type %T", st0)
	}
	hosts[0].Stop()
	medium.Detach(0)
	k.RunFor(2 * sim.Second)
	if !hosts[1].Leading() {
		t.Fatal("host 1 did not take over")
	}
	if hosts[2].Leading() {
		t.Fatal("two leaders after failover")
	}
	if hosts[1].Takeovers < 1 {
		t.Fatalf("takeovers = %d", hosts[1].Takeovers)
	}
	// State continuity: the machine continued from the replicated state
	// (phase sequence not restarted). After 2 s more, the light has
	// advanced from s0 by ~2 s, not reset to a fresh 5 s NS phase.
	st1, live := hosts[2].State()
	if !live {
		t.Fatal("virtual node dead after failover")
	}
	s1, ok := st1.(LightState)
	if !ok {
		t.Fatalf("state type %T", st1)
	}
	drift := (s0.Remaining - 2*sim.Second) - s1.Remaining
	if s0.Phase == s1.Phase && (drift > sim.Second || drift < -sim.Second) {
		t.Fatalf("state discontinuity across failover: before %+v, after %+v", s0, s1)
	}
}

func TestVNodeLeaderPreemptedByLowerID(t *testing.T) {
	k, hosts, medium := vnodeRig(t, 4, 2)
	k.RunFor(2 * sim.Second)
	// Crash host 0; host 1 takes over.
	hosts[0].Stop()
	medium.Detach(0)
	k.RunFor(2 * sim.Second)
	if !hosts[1].Leading() {
		t.Fatal("host 1 did not take over")
	}
	// Host 0 returns (new radio, same id): lower id must preempt.
	radio, err := medium.Attach(0, wireless.Position{})
	if err != nil {
		t.Fatal(err)
	}
	h0, err := NewVNodeHost(k, radio, TrafficLightMachine{GreenFor: 5 * sim.Second},
		DefaultVNodeConfig(wireless.Position{}), radio.Position)
	if err != nil {
		t.Fatal(err)
	}
	radio.OnReceive(h0.OnFrame)
	if err := h0.Start(); err != nil {
		t.Fatal(err)
	}
	k.RunFor(3 * sim.Second)
	if h0.Leading() && hosts[1].Leading() {
		t.Fatal("two concurrent leaders")
	}
	if !h0.Leading() {
		t.Fatal("returning lower id did not preempt")
	}
}

func TestVNodeOutsideRegionDoesNotLead(t *testing.T) {
	k := sim.NewKernel(5)
	medium := wireless.NewMedium(k, wireless.DefaultConfig())
	cfg := DefaultVNodeConfig(wireless.Position{})
	radio, err := medium.Attach(1, wireless.Position{X: 5000})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewVNodeHost(k, radio, TrafficLightMachine{GreenFor: sim.Second}, cfg, radio.Position)
	if err != nil {
		t.Fatal(err)
	}
	radio.OnReceive(h.OnFrame)
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	k.RunFor(3 * sim.Second)
	if h.Leading() {
		t.Fatal("out-of-region host became leader")
	}
	if _, live := h.State(); live {
		t.Fatal("out-of-region host sees live virtual node with no leader")
	}
}
