// Package coord implements KARYON's reliable assessment of cooperation
// state (paper Sec. V-C): dissemination of validity/age-annotated
// cooperative vehicle state, a maneuver-reservation agreement protocol in
// the spirit of Le Lann's cohort/group primitives [24] (used for
// coordinated lane changes), and virtual nodes — timed virtual stationary
// automata [10, 11] — that replicate a region-bound state machine over the
// vehicles present in the region (used for the virtual traffic light).
package coord

import (
	"sort"

	"karyon/internal/sim"
	"karyon/internal/wireless"
)

// CoopState is one vehicle's broadcast cooperative state: where it is,
// how fast, and what it intends — plus the data-centric quality metadata
// (timestamp and validity) KARYON attaches to all remote information.
type CoopState struct {
	ID    wireless.NodeID
	Pos   wireless.Position
	Speed float64
	Lane  int
	// Intent is a free-form label ("cruise", "lane-change-left", ...).
	Intent string
	// Time is the state's acquisition instant at the sender.
	Time sim.Time
	// Validity is the sender's own confidence in this state (from its
	// sensor pipeline).
	Validity float64
}

// StateTable tracks the latest cooperative state heard from each peer.
type StateTable struct {
	clock sim.Clock
	// MaxAge bounds how old an entry may be before it is reported stale.
	maxAge sim.Time
	m      map[wireless.NodeID]CoopState
}

// NewStateTable creates a table treating entries older than maxAge as gone.
// The clock is usually the kernel; a sharded world passes the owning
// entity's clock so freshness stays correct across shard handoffs.
func NewStateTable(clock sim.Clock, maxAge sim.Time) *StateTable {
	return &StateTable{clock: clock, maxAge: maxAge, m: make(map[wireless.NodeID]CoopState)}
}

// Update records a heard state (keeping only the newest per peer).
func (t *StateTable) Update(s CoopState) {
	if prev, ok := t.m[s.ID]; ok && prev.Time > s.Time {
		return
	}
	t.m[s.ID] = s
}

// StateTableState is a checkpoint of the table's entries (for speculative
// shard windows); storage is reused across Save calls.
type StateTableState struct {
	entries []CoopState
}

// SaveState checkpoints the table into st (pass nil to allocate) and
// returns it.
func (t *StateTable) SaveState(st *StateTableState) *StateTableState {
	if st == nil {
		st = &StateTableState{}
	}
	st.entries = st.entries[:0]
	for _, s := range t.m {
		st.entries = append(st.entries, s)
	}
	return st
}

// RestoreState rewinds the table to a SaveState checkpoint.
func (t *StateTable) RestoreState(st *StateTableState) {
	clear(t.m)
	for _, s := range st.entries {
		t.m[s.ID] = s
	}
}

// Get returns the peer's state if present and fresh.
func (t *StateTable) Get(id wireless.NodeID) (CoopState, bool) {
	s, ok := t.m[id]
	if !ok || t.clock.Now()-s.Time > t.maxAge {
		return CoopState{}, false
	}
	return s, true
}

// Fresh returns all fresh states sorted by id.
func (t *StateTable) Fresh() []CoopState {
	now := t.clock.Now()
	out := make([]CoopState, 0, len(t.m))
	for _, s := range t.m {
		if now-s.Time <= t.maxAge {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Scope returns the ids of fresh peers within radius of pos — the paper's
// "scope for the realization of cooperative functionality".
func (t *StateTable) Scope(pos wireless.Position, radius float64) []wireless.NodeID {
	out := make([]wireless.NodeID, 0, len(t.m))
	for _, s := range t.Fresh() {
		if s.Pos.Distance(pos) <= radius {
			out = append(out, s.ID)
		}
	}
	return out
}

// MinValidity returns the lowest validity among fresh states in scope, and
// 0 when the scope is empty — feeding the safety kernel's "health of ...
// the vehicles in front" indicator.
func (t *StateTable) MinValidity(pos wireless.Position, radius float64) float64 {
	min := 1.0
	n := 0
	for _, s := range t.Fresh() {
		if s.Pos.Distance(pos) <= radius {
			n++
			if s.Validity < min {
				min = s.Validity
			}
		}
	}
	if n == 0 {
		return 0
	}
	return min
}
