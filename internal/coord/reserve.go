package coord

import "karyon/internal/sim"

// Reservations is the snapshot/mailbox-era counterpart of the radio
// Agreement protocol: a region-reservation table whose requests and
// releases are processed at a sharded world's single-threaded window
// barrier, in a fixed deterministic order (the world iterates requesters in
// entity-id order). It upholds the same safety invariant — at most one
// holder per resource at any time — without any wire protocol: the barrier
// *is* the agreement round, with a bounded decision latency of one
// synchronization window.
//
// The radio Agreement remains the right tool when there is no barrier to
// lean on (single-kernel protocol studies, cohort formation); Reservations
// is what the partitioned worlds use so the outcome is a pure function of
// (seed, config), independent of the shard count.
type Reservations struct {
	held map[Resource]reservation
}

type reservation struct {
	owner   int64
	expires sim.Time
}

// NewReservations creates an empty table.
func NewReservations() *Reservations {
	return &Reservations{held: make(map[Resource]reservation)}
}

// Acquire grants r to owner until expires, unless another owner holds a
// live reservation. Re-acquiring by the current holder extends the expiry.
// It reports whether the grant was given.
func (t *Reservations) Acquire(r Resource, owner int64, now, expires sim.Time) bool {
	if g, ok := t.held[r]; ok && g.owner != owner && now < g.expires {
		return false
	}
	t.held[r] = reservation{owner: owner, expires: expires}
	return true
}

// Release drops owner's reservation of r; a release by a non-holder is
// ignored (it raced with an expiry takeover).
func (t *Reservations) Release(r Resource, owner int64) {
	if g, ok := t.held[r]; ok && g.owner == owner {
		delete(t.held, r)
	}
}

// Holder returns the live holder of r at now.
func (t *Reservations) Holder(r Resource, now sim.Time) (int64, bool) {
	g, ok := t.held[r]
	if !ok || now >= g.expires {
		return 0, false
	}
	return g.owner, true
}
