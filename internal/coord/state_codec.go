package coord

import (
	"sort"

	"karyon/internal/sim"
	"karyon/internal/trace"
	"karyon/internal/wireless"
)

// Trace-codec methods for the cooperation-layer checkpoint state. The
// in-memory checkpoints mirror map iteration order and are only replayed
// into the same process; the trace forms below sort everything so the
// same logical state always encodes to the same bytes.

// EncodeState appends the state-table checkpoint to e, sorted by node ID.
func (st *StateTableState) EncodeState(e *trace.Enc) {
	sort.Slice(st.entries, func(i, j int) bool { return st.entries[i].ID < st.entries[j].ID })
	e.U32(uint32(len(st.entries)))
	for _, c := range st.entries {
		e.I64(int64(c.ID))
		e.F64(c.Pos.X)
		e.F64(c.Pos.Y)
		e.F64(c.Pos.Z)
		e.F64(c.Speed)
		e.I64(int64(c.Lane))
		e.Str(c.Intent)
		e.I64(int64(c.Time))
		e.F64(c.Validity)
	}
}

// DecodeState reads a state-table checkpoint written by EncodeState.
func (st *StateTableState) DecodeState(d *trace.Dec) {
	st.entries = st.entries[:0]
	for i, n := 0, d.Count(64); i < n && d.Err() == nil; i++ {
		var c CoopState
		c.ID = wireless.NodeID(d.I64())
		c.Pos.X = d.F64()
		c.Pos.Y = d.F64()
		c.Pos.Z = d.F64()
		c.Speed = d.F64()
		c.Lane = int(d.I64())
		c.Intent = d.Str()
		c.Time = sim.Time(d.I64())
		c.Validity = d.F64()
		st.entries = append(st.entries, c)
	}
}

// EncodeState appends the full reservation table to e, sorted by
// resource name. Barrier-only, like every Reservations method.
func (r *Reservations) EncodeState(e *trace.Enc) {
	keys := make([]string, 0, len(r.held))
	for res := range r.held {
		keys = append(keys, string(res))
	}
	sort.Strings(keys)
	e.U32(uint32(len(keys)))
	for _, k := range keys {
		v := r.held[Resource(k)]
		e.Str(k)
		e.I64(v.owner)
		e.I64(int64(v.expires))
	}
}

// DecodeState replaces the reservation table with one written by
// EncodeState.
func (r *Reservations) DecodeState(d *trace.Dec) {
	if r.held == nil {
		r.held = map[Resource]reservation{}
	}
	clear(r.held)
	for i, n := 0, d.Count(20); i < n && d.Err() == nil; i++ {
		k := d.Str()
		r.held[Resource(k)] = reservation{owner: d.I64(), expires: sim.Time(d.I64())}
	}
}
