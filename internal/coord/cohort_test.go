package coord

import (
	"testing"

	"karyon/internal/sim"
	"karyon/internal/vehicle"
	"karyon/internal/wireless"
)

func cohortRig(t *testing.T, seed int64, n int) (*sim.Kernel, []*CohortMember, *wireless.Medium) {
	t.Helper()
	k := sim.NewKernel(seed)
	medium := wireless.NewMedium(k, wireless.DefaultConfig())
	var members []*CohortMember
	for i := 0; i < n; i++ {
		radio, err := medium.Attach(wireless.NodeID(i), wireless.Position{X: float64(i) * 10})
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewCohortMember(k, radio, DefaultCohortConfig("p1"))
		if err != nil {
			t.Fatal(err)
		}
		radio.OnReceive(m.OnFrame)
		members = append(members, m)
	}
	return k, members, medium
}

func TestCohortValidation(t *testing.T) {
	k := sim.NewKernel(1)
	medium := wireless.NewMedium(k, wireless.DefaultConfig())
	radio, _ := medium.Attach(1, wireless.Position{})
	if _, err := NewCohortMember(k, radio, CohortConfig{Name: "", RosterPeriod: sim.Second, HeadTimeout: 2 * sim.Second}); err == nil {
		t.Fatal("empty name accepted")
	}
	cfg := DefaultCohortConfig("x")
	cfg.HeadTimeout = cfg.RosterPeriod
	if _, err := NewCohortMember(k, radio, cfg); err == nil {
		t.Fatal("headTimeout <= rosterPeriod accepted")
	}
}

func TestCohortFormation(t *testing.T) {
	k, ms, _ := cohortRig(t, 2, 4)
	if err := ms[0].Found(25); err != nil {
		t.Fatal(err)
	}
	for _, m := range ms[1:] {
		if err := m.Join(); err != nil {
			t.Fatal(err)
		}
	}
	k.RunFor(2 * sim.Second)
	for i, m := range ms {
		if !m.Joined() {
			t.Fatalf("member %d never joined", i)
		}
		if v, ok := m.TargetSpeed(); !ok || v != 25 {
			t.Fatalf("member %d profile = %v,%v", i, v, ok)
		}
	}
	if !ms[0].Head() {
		t.Fatal("founder not head")
	}
	if pos, ok := ms[0].Position(); !ok || pos != 0 {
		t.Fatalf("head position %d", pos)
	}
	// All members converge on one roster of size 4, head first.
	r := ms[2].Roster()
	if len(r) != 4 || r[0] != 0 {
		t.Fatalf("roster %v", r)
	}
	// Double-found is rejected.
	if err := ms[0].Found(30); err == nil {
		t.Fatal("second Found accepted")
	}
}

func TestCohortSpeedPropagation(t *testing.T) {
	k, ms, _ := cohortRig(t, 3, 3)
	if err := ms[0].Found(20); err != nil {
		t.Fatal(err)
	}
	_ = ms[1].Join()
	_ = ms[2].Join()
	k.RunFor(sim.Second)
	if err := ms[0].SetTargetSpeed(28); err != nil {
		t.Fatal(err)
	}
	k.RunFor(sim.Second)
	for i, m := range ms {
		if v, _ := m.TargetSpeed(); v != 28 {
			t.Fatalf("member %d speed %v after profile change", i, v)
		}
	}
	// Non-head cannot command.
	if err := ms[1].SetTargetSpeed(99); err == nil {
		t.Fatal("follower commanded the profile")
	}
}

func TestCohortLeave(t *testing.T) {
	k, ms, _ := cohortRig(t, 4, 3)
	if err := ms[0].Found(20); err != nil {
		t.Fatal(err)
	}
	_ = ms[1].Join()
	_ = ms[2].Join()
	k.RunFor(sim.Second)
	ms[1].Leave()
	k.RunFor(sim.Second)
	r := ms[0].Roster()
	if len(r) != 2 {
		t.Fatalf("roster after leave: %v", r)
	}
	for _, id := range r {
		if id == 1 {
			t.Fatal("left member still in roster")
		}
	}
	// The head ignores Leave on itself.
	ms[0].Leave()
	k.RunFor(500 * sim.Millisecond)
	if !ms[0].Head() || !ms[0].Joined() {
		t.Fatal("head left its own cohort")
	}
}

func TestCohortHeadFailover(t *testing.T) {
	k, ms, medium := cohortRig(t, 5, 4)
	if err := ms[0].Found(22); err != nil {
		t.Fatal(err)
	}
	for _, m := range ms[1:] {
		_ = m.Join()
	}
	k.RunFor(2 * sim.Second)
	// Record the roster order to know the expected successor.
	successor := ms[0].Roster()[1]
	ms[0].Stop()
	medium.Detach(0)
	k.RunFor(2 * sim.Second)
	heads := 0
	var head *CohortMember
	for _, m := range ms[1:] {
		if m.Head() {
			heads++
			head = m
		}
	}
	if heads != 1 {
		t.Fatalf("heads after failover = %d", heads)
	}
	if head.ID() != successor {
		t.Fatalf("head = %v, want successor %v", head.ID(), successor)
	}
	if head.Takeovers != 1 {
		t.Fatalf("takeovers = %d", head.Takeovers)
	}
	// The profile survives the failover.
	if v, ok := head.TargetSpeed(); !ok || v != 22 {
		t.Fatalf("profile after failover = %v,%v", v, ok)
	}
	// Remaining members follow the new head.
	for _, m := range ms[1:] {
		if m == head {
			continue
		}
		if m.Roster()[0] != head.ID() {
			t.Fatalf("member %v roster head = %v", m.ID(), m.Roster()[0])
		}
	}
}

func TestCohortOrderValid(t *testing.T) {
	roster := []wireless.NodeID{3, 2, 1}
	pos := map[wireless.NodeID]float64{3: 100, 2: 80, 1: 60}
	if !CohortOrderValid(roster, pos) {
		t.Fatal("ordered platoon rejected")
	}
	pos[2] = 120 // member 2 physically ahead of the head
	if CohortOrderValid(roster, pos) {
		t.Fatal("disordered platoon accepted")
	}
	if CohortOrderValid([]wireless.NodeID{9}, pos) {
		t.Fatal("unknown position accepted")
	}
}

func TestCohortCoordinatedLaneChange(t *testing.T) {
	// The paper's VI-A3 extension: the whole platoon changes lanes as a
	// unit. The head commands; every member reports the pending command
	// exactly once; acknowledged commands do not reappear; a later command
	// supersedes.
	k, ms, _ := cohortRig(t, 6, 4)
	if err := ms[0].Found(22); err != nil {
		t.Fatal(err)
	}
	for _, m := range ms[1:] {
		_ = m.Join()
	}
	k.RunFor(2 * sim.Second)
	// Follower cannot command.
	if err := ms[1].CommandLaneChange(1); err == nil {
		t.Fatal("follower commanded a platoon lane change")
	}
	// No pending command initially.
	for i, m := range ms {
		if _, _, ok := m.PendingLaneChange(); ok {
			t.Fatalf("member %d has phantom pending command", i)
		}
	}
	if err := ms[0].CommandLaneChange(1); err != nil {
		t.Fatal(err)
	}
	k.RunFor(sim.Second)
	for i, m := range ms {
		lane, id, ok := m.PendingLaneChange()
		if !ok || lane != 1 || id != 1 {
			t.Fatalf("member %d pending = (%d,%d,%v), want (1,1,true)", i, lane, id, ok)
		}
		m.AckLaneChange(id)
		if _, _, ok := m.PendingLaneChange(); ok {
			t.Fatalf("member %d command reappeared after ack", i)
		}
	}
	// A second command supersedes.
	if err := ms[0].CommandLaneChange(0); err != nil {
		t.Fatal(err)
	}
	k.RunFor(sim.Second)
	for i, m := range ms {
		lane, id, ok := m.PendingLaneChange()
		if !ok || lane != 0 || id != 2 {
			t.Fatalf("member %d second command = (%d,%d,%v)", i, lane, id, ok)
		}
	}
}

func TestCohortLaneChangeExecutedByVehicles(t *testing.T) {
	// End-to-end: cohort command drives actual vehicle maneuvers, and the
	// whole platoon ends up in the target lane with no member skipped.
	k, ms, _ := cohortRig(t, 7, 5)
	if err := ms[0].Found(20); err != nil {
		t.Fatal(err)
	}
	for _, m := range ms[1:] {
		_ = m.Join()
	}
	type pv struct {
		member   *CohortMember
		body     vehicle.Body
		maneuver vehicle.Maneuver
	}
	cars := make([]*pv, len(ms))
	for i, m := range ms {
		cars[i] = &pv{member: m, body: vehicle.Body{X: float64(-30 * i), Lane: 0, Speed: 20}}
	}
	if _, err := k.Every(100*sim.Millisecond, func() {
		for _, c := range cars {
			if lane, id, ok := c.member.PendingLaneChange(); ok && !c.maneuver.Active() {
				if err := c.maneuver.Begin(lane, 3); err == nil {
					c.member.AckLaneChange(id)
				}
			}
			c.maneuver.Step(&c.body, 0.1)
			c.body.Step(0.1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	k.RunFor(2 * sim.Second)
	if err := ms[0].CommandLaneChange(1); err != nil {
		t.Fatal(err)
	}
	k.RunFor(6 * sim.Second)
	for i, c := range cars {
		if c.body.Lane != 1 {
			t.Fatalf("car %d still in lane %d after platoon command", i, c.body.Lane)
		}
		if c.maneuver.Completions != 1 {
			t.Fatalf("car %d completions = %d", i, c.maneuver.Completions)
		}
	}
}
