package coord

import (
	"fmt"

	"karyon/internal/sim"
	"karyon/internal/wireless"
)

// Machine is the replicated state machine a virtual node runs. State must
// be a value type (copied on replication).
type Machine interface {
	// Init returns the initial state.
	Init() any
	// Advance computes the state after dt has elapsed.
	Advance(state any, dt sim.Time) any
}

// VNodeConfig parameterizes a virtual node region.
type VNodeConfig struct {
	// Region is the center of the virtual node's tile.
	Region wireless.Position
	// Radius bounds membership: only vehicles within it emulate the node.
	Radius float64
	// Period is the leader's state broadcast period.
	Period sim.Time
	// LeaderTimeout is the silence after which a replica assumes the
	// leader left/crashed and takes over (lowest live id wins).
	LeaderTimeout sim.Time
}

// DefaultVNodeConfig returns a 100 m tile with a 100 ms state period.
func DefaultVNodeConfig(region wireless.Position) VNodeConfig {
	return VNodeConfig{
		Region:        region,
		Radius:        100,
		Period:        100 * sim.Millisecond,
		LeaderTimeout: 400 * sim.Millisecond,
	}
}

// vnodeMsg is the replicated-state broadcast.
type vnodeMsg struct {
	From    wireless.NodeID
	Version uint64
	// StateTime is the virtual instant the state refers to.
	StateTime sim.Time
	State     any
}

// VNodeHost is one vehicle's participation in a virtual node: it receives
// replicated state, and — when it is the lowest-id live member in the
// region — acts as leader, advancing the machine and broadcasting state.
// The virtual node thereby survives any individual vehicle leaving, which
// is how a virtual traffic light keeps operating at an intersection.
type VNodeHost struct {
	cfg     VNodeConfig
	kernel  *sim.Kernel
	radio   *wireless.Radio
	machine Machine
	pos     func() wireless.Position

	state     any
	stateTime sim.Time
	version   uint64
	lastHeard sim.Time
	leaderID  wireless.NodeID
	leading   bool

	ticker  *sim.Ticker
	stopped bool

	// Takeovers counts leadership acquisitions by this host.
	Takeovers int64
}

// NewVNodeHost creates a participant. pos supplies the vehicle's current
// position (membership is positional).
func NewVNodeHost(kernel *sim.Kernel, radio *wireless.Radio, machine Machine, cfg VNodeConfig, pos func() wireless.Position) (*VNodeHost, error) {
	if cfg.Period <= 0 || cfg.LeaderTimeout <= cfg.Period {
		return nil, fmt.Errorf("coord: vnode needs 0 < period < leaderTimeout (got %v, %v)",
			cfg.Period, cfg.LeaderTimeout)
	}
	h := &VNodeHost{
		cfg:     cfg,
		kernel:  kernel,
		radio:   radio,
		machine: machine,
		pos:     pos,
		state:   machine.Init(),
		// Grace period: a joining host must listen for a full leader
		// timeout before it may conclude there is no leader. Taking over
		// immediately would broadcast its *initial* machine state and
		// overwrite the replicated state at every other member.
		lastHeard: kernel.Now(),
		leaderID:  -1,
	}
	return h, nil
}

// Start begins participation at a random phase within one period, so
// hosts starting together do not tick — and broadcast — in lockstep.
func (h *VNodeHost) Start() error {
	if h.cfg.Period <= 0 {
		return fmt.Errorf("coord: vnode period must be positive")
	}
	phase := sim.Time(h.kernel.Rand().Int63n(int64(h.cfg.Period)))
	h.kernel.Schedule(phase, func() {
		if h.stopped {
			return
		}
		t, err := h.kernel.Every(h.cfg.Period, h.tick)
		if err != nil {
			return
		}
		h.ticker = t
	})
	return nil
}

// Stop halts participation (vehicle leaves or crashes).
func (h *VNodeHost) Stop() {
	h.stopped = true
	if h.ticker != nil {
		h.ticker.Stop()
	}
}

// Leading reports whether this host currently emulates the virtual node.
func (h *VNodeHost) Leading() bool { return h.leading }

// State returns the current replicated state advanced to now, and whether
// the virtual node is live from this host's perspective (a fresh state is
// held or this host leads).
func (h *VNodeHost) State() (any, bool) {
	if h.state == nil {
		return nil, false
	}
	now := h.kernel.Now()
	if !h.leading && now-h.lastHeard > h.cfg.LeaderTimeout {
		return nil, false
	}
	return h.machine.Advance(h.state, now-h.stateTime), true
}

// inRegion reports whether the vehicle is inside the tile.
func (h *VNodeHost) inRegion() bool {
	return h.pos().Distance(h.cfg.Region) <= h.cfg.Radius
}

func (h *VNodeHost) tick() {
	if h.stopped {
		return
	}
	now := h.kernel.Now()
	if !h.inRegion() {
		if h.leading {
			h.leading = false
		}
		return
	}
	heardRecently := now-h.lastHeard <= h.cfg.LeaderTimeout
	if h.leading {
		// A lower-id leader heard recently preempts us.
		if heardRecently && h.leaderID >= 0 && h.leaderID < h.radio.ID() {
			h.leading = false
			return
		}
		h.publish(now)
		return
	}
	switch {
	case !heardRecently:
		// Leader silent: take over, continuing from the replicated state.
		h.leading = true
		h.Takeovers++
		h.publish(now)
	case h.leaderID > h.radio.ID():
		// A higher-id host is leading: challenge it. The deterministic
		// outcome — lowest live id in the region leads — keeps leadership
		// stable under churn.
		h.leading = true
		h.Takeovers++
		h.publish(now)
	}
}

func (h *VNodeHost) publish(now sim.Time) {
	h.state = h.machine.Advance(h.state, now-h.stateTime)
	h.stateTime = now
	h.version++
	h.radio.Broadcast(vnodeMsg{
		From:      h.radio.ID(),
		Version:   h.version,
		StateTime: now,
		State:     h.state,
	})
}

// OnFrame feeds received frames (demultiplex with other traffic).
func (h *VNodeHost) OnFrame(f wireless.Frame) {
	if h.stopped {
		return
	}
	m, ok := f.Payload.(vnodeMsg)
	if !ok {
		return
	}
	h.lastHeard = h.kernel.Now()
	h.leaderID = m.From
	if h.leading && m.From < h.radio.ID() {
		// Defer to the lower id.
		h.leading = false
	}
	if !h.leading || m.From < h.radio.ID() {
		h.state = m.State
		h.stateTime = m.StateTime
		h.version = m.Version
	}
}

// LightPhase is the traffic-light machine's phase.
type LightPhase int

// Traffic light phases for a two-road intersection.
const (
	PhaseNSGreen LightPhase = iota + 1
	PhaseEWGreen
)

// String renders the phase.
func (p LightPhase) String() string {
	if p == PhaseNSGreen {
		return "NS-green"
	}
	return "EW-green"
}

// LightState is the virtual traffic light's replicated state.
type LightState struct {
	Phase LightPhase
	// Remaining is the time left in the current phase.
	Remaining sim.Time
}

// TrafficLightMachine alternates green between the two roads — the backup
// "virtual traffic light" of use case VI-A2.
type TrafficLightMachine struct {
	// GreenFor is each phase's duration.
	GreenFor sim.Time
}

var _ Machine = TrafficLightMachine{}

// Init implements Machine.
func (m TrafficLightMachine) Init() any {
	return LightState{Phase: PhaseNSGreen, Remaining: m.GreenFor}
}

// Advance implements Machine.
func (m TrafficLightMachine) Advance(state any, dt sim.Time) any {
	s, ok := state.(LightState)
	if !ok {
		ls, lok := m.Init().(LightState)
		if !lok {
			return state
		}
		s = ls
	}
	for dt > 0 {
		if dt < s.Remaining {
			s.Remaining -= dt
			break
		}
		dt -= s.Remaining
		if s.Phase == PhaseNSGreen {
			s.Phase = PhaseEWGreen
		} else {
			s.Phase = PhaseNSGreen
		}
		s.Remaining = m.GreenFor
	}
	return s
}
