package coord

import (
	"fmt"

	"karyon/internal/sim"
	"karyon/internal/wireless"
)

// Resource identifies a contended maneuver resource, e.g. "lane-2@km3.1"
// or an intersection box.
type Resource string

// Outcome is the result of a reservation attempt.
type Outcome int

// Reservation outcomes.
const (
	OutcomeGranted Outcome = iota + 1
	OutcomeDenied
	OutcomeTimeout
)

// String renders the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeGranted:
		return "granted"
	case OutcomeDenied:
		return "denied"
	case OutcomeTimeout:
		return "timeout"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Wire messages.
type reqMsg struct {
	From     wireless.NodeID
	Resource Resource
	ReqID    uint64
}

type replyMsg struct {
	From  wireless.NodeID
	To    wireless.NodeID
	ReqID uint64
	Grant bool
}

type commitMsg struct {
	From     wireless.NodeID
	Resource Resource
	ReqID    uint64
}

type releaseMsg struct {
	From     wireless.NodeID
	Resource Resource
	ReqID    uint64
}

// AgreementConfig parameterizes the reservation protocol.
type AgreementConfig struct {
	// Timeout bounds how long the requester waits for unanimous grants.
	// Expiry aborts the maneuver (the safe direction: silence denies).
	Timeout sim.Time
	// Retry is the request re-broadcast period within the timeout window;
	// replies are idempotent, so retries only fight message loss.
	Retry sim.Time
	// ReplyJitter spreads peers' replies over a random delay so they do
	// not collide on the shared medium.
	ReplyJitter sim.Time
	// HoldFor bounds how long a committed reservation may be held before
	// peers consider it expired (crash safety).
	HoldFor sim.Time
}

// DefaultAgreementConfig returns VANET-scale timeouts.
func DefaultAgreementConfig() AgreementConfig {
	return AgreementConfig{
		Timeout: 200 * sim.Millisecond,
		Retry:   50 * sim.Millisecond,
		// Wide enough that ~10 peers' replies rarely collide: replies are
		// not retried individually, only re-solicited by request retries.
		ReplyJitter: 25 * sim.Millisecond,
		HoldFor:     5 * sim.Second,
	}
}

// Agreement runs the maneuver-reservation protocol on one node. The safety
// property: two nodes never hold a committed reservation on the same
// resource at overlapping times (within connected communication); loss of
// messages can only cause aborts, never double grants.
type Agreement struct {
	cfg    AgreementConfig
	kernel *sim.Kernel
	radio  *wireless.Radio
	peers  func() []wireless.NodeID

	nextReq uint64
	// grantedTo tracks which peer currently holds each resource (from our
	// point of view), with the grant's expiry.
	grantedTo map[Resource]grantRecord
	// pending is our own outstanding request, if any.
	pending *pendingReq
	// held are the resources we currently hold.
	held map[Resource]uint64

	// Requests / Granted / Denied / Timeouts count attempt outcomes.
	Requests int64
	Granted  int64
	Denied   int64
	Timeouts int64
}

type grantRecord struct {
	holder  wireless.NodeID
	reqID   uint64
	expires sim.Time
	// committed marks that a commit was observed (vs merely replied).
	committed bool
}

type pendingReq struct {
	reqID    uint64
	resource Resource
	needed   map[wireless.NodeID]bool
	done     func(Outcome)
	timer    sim.Timer
	finished bool
}

// NewAgreement creates the protocol instance. peers supplies the current
// cooperation scope (e.g. from a StateTable); every peer in scope at
// request time must grant.
func NewAgreement(kernel *sim.Kernel, radio *wireless.Radio, cfg AgreementConfig, peers func() []wireless.NodeID) *Agreement {
	return &Agreement{
		cfg:       cfg,
		kernel:    kernel,
		radio:     radio,
		peers:     peers,
		grantedTo: make(map[Resource]grantRecord),
		held:      make(map[Resource]uint64),
	}
}

// ID returns the node id.
func (a *Agreement) ID() wireless.NodeID { return a.radio.ID() }

// Holds reports whether this node currently holds the resource.
func (a *Agreement) Holds(r Resource) bool {
	_, ok := a.held[r]
	return ok
}

// HeldBy returns which node this instance believes holds the resource (0,
// false when none or expired).
func (a *Agreement) HeldBy(r Resource) (wireless.NodeID, bool) {
	g, ok := a.grantedTo[r]
	if !ok || !g.committed || a.kernel.Now() >= g.expires {
		return 0, false
	}
	return g.holder, true
}

// Request attempts to reserve the resource. done is invoked exactly once.
// Only one outstanding request per node is allowed; a second concurrent
// request is denied locally.
func (a *Agreement) Request(r Resource, done func(Outcome)) {
	a.Requests++
	if a.pending != nil && !a.pending.finished {
		a.Denied++
		if done != nil {
			done(OutcomeDenied)
		}
		return
	}
	// Local check: someone else holds it.
	if holder, ok := a.HeldBy(r); ok && holder != a.radio.ID() {
		a.Denied++
		if done != nil {
			done(OutcomeDenied)
		}
		return
	}
	a.nextReq++
	scope := a.peers()
	needed := make(map[wireless.NodeID]bool, len(scope))
	for _, id := range scope {
		if id != a.radio.ID() {
			needed[id] = true
		}
	}
	p := &pendingReq{reqID: a.nextReq, resource: r, needed: needed, done: done}
	a.pending = p
	if len(needed) == 0 {
		a.commit(p)
		return
	}
	deadline := a.kernel.Now() + a.cfg.Timeout
	var attempt func()
	attempt = func() {
		if p.finished {
			return
		}
		if a.kernel.Now() >= deadline {
			p.finished = true
			a.Timeouts++
			if p.done != nil {
				p.done(OutcomeTimeout)
			}
			return
		}
		a.radio.Broadcast(reqMsg{From: a.radio.ID(), Resource: r, ReqID: p.reqID})
		retry := a.cfg.Retry
		if retry <= 0 {
			retry = a.cfg.Timeout
		}
		p.timer = a.kernel.Schedule(retry, attempt)
	}
	attempt()
	a.kernel.Schedule(a.cfg.Timeout, func() {
		if p.finished {
			return
		}
		p.finished = true
		p.timer.Cancel()
		a.Timeouts++
		if p.done != nil {
			p.done(OutcomeTimeout)
		}
	})
}

// Release gives up a held resource and notifies peers.
func (a *Agreement) Release(r Resource) {
	reqID, ok := a.held[r]
	if !ok {
		return
	}
	delete(a.held, r)
	// Drop our own grant record as well — broadcasts do not loop back.
	if g, ok := a.grantedTo[r]; ok && g.holder == a.radio.ID() {
		delete(a.grantedTo, r)
	}
	// Broadcast the release three times: a peer that misses it would keep
	// denying the resource until the hold expires, stalling everyone.
	msg := releaseMsg{From: a.radio.ID(), Resource: r, ReqID: reqID}
	a.radio.Broadcast(msg)
	for i := 1; i <= 2; i++ {
		jitter := sim.Time(a.kernel.Rand().Int63n(int64(20 * sim.Millisecond)))
		a.kernel.Schedule(sim.Time(i)*25*sim.Millisecond+jitter, func() {
			a.radio.Broadcast(msg)
		})
	}
}

func (a *Agreement) commit(p *pendingReq) {
	p.finished = true
	p.timer.Cancel()
	a.held[p.resource] = p.reqID
	a.grantedTo[p.resource] = grantRecord{
		holder:    a.radio.ID(),
		reqID:     p.reqID,
		expires:   a.kernel.Now() + a.cfg.HoldFor,
		committed: true,
	}
	a.radio.Broadcast(commitMsg{From: a.radio.ID(), Resource: p.resource, ReqID: p.reqID})
	a.Granted++
	if p.done != nil {
		p.done(OutcomeGranted)
	}
}

// OnFrame feeds a received frame into the protocol. Wire it to the radio's
// receive path (possibly demultiplexed with other traffic).
func (a *Agreement) OnFrame(f wireless.Frame) {
	now := a.kernel.Now()
	switch m := f.Payload.(type) {
	case reqMsg:
		grant := true
		// Deny if we hold it, we are requesting it, or we know of a live
		// committed grant to someone else.
		if _, held := a.held[m.Resource]; held {
			grant = false
		}
		if a.pending != nil && !a.pending.finished && a.pending.resource == m.Resource {
			// Tie break by id: the lower id proceeds, the higher defers.
			if a.radio.ID() < m.From {
				grant = false
			}
		}
		// A live grant — provisional or committed — to a different node
		// denies this request.
		if g, ok := a.grantedTo[m.Resource]; ok && now < g.expires && g.holder != m.From {
			grant = false
		}
		if grant {
			// Remember a provisional (uncommitted) grant so concurrent
			// requesters are denied until this one resolves or expires.
			a.grantedTo[m.Resource] = grantRecord{
				holder:  m.From,
				reqID:   m.ReqID,
				expires: now + a.cfg.Timeout,
			}
		}
		// Reply after a random jitter: every peer receives the request at
		// the same instant and synchronized replies would all collide.
		reply := replyMsg{From: a.radio.ID(), To: m.From, ReqID: m.ReqID, Grant: grant}
		jitter := sim.Time(0)
		if a.cfg.ReplyJitter > 0 {
			jitter = sim.Time(a.kernel.Rand().Int63n(int64(a.cfg.ReplyJitter)))
		}
		a.kernel.Schedule(jitter, func() { a.radio.Broadcast(reply) })
	case replyMsg:
		if m.To != a.radio.ID() {
			return
		}
		p := a.pending
		if p == nil || p.finished || m.ReqID != p.reqID {
			return
		}
		if !m.Grant {
			p.finished = true
			p.timer.Cancel()
			a.Denied++
			if p.done != nil {
				p.done(OutcomeDenied)
			}
			return
		}
		delete(p.needed, m.From)
		if len(p.needed) == 0 {
			a.commit(p)
		}
	case commitMsg:
		a.grantedTo[m.Resource] = grantRecord{
			holder:    m.From,
			reqID:     m.ReqID,
			expires:   now + a.cfg.HoldFor,
			committed: true,
		}
	case releaseMsg:
		if g, ok := a.grantedTo[m.Resource]; ok && g.holder == m.From {
			delete(a.grantedTo, m.Resource)
		}
	}
}
