package core

import (
	"fmt"
	"sort"
)

// Envelope is the actuation envelope certified for a LoS: per-channel
// bounds on command values (e.g. acceleration, steering rate).
type Envelope struct {
	// Min and Max bound each named actuation channel.
	Min map[string]float64
	Max map[string]float64
}

// NewEnvelope creates an empty envelope.
func NewEnvelope() Envelope {
	return Envelope{Min: make(map[string]float64), Max: make(map[string]float64)}
}

// Bound sets the channel's permitted interval.
func (e Envelope) Bound(channel string, min, max float64) Envelope {
	e.Min[channel] = min
	e.Max[channel] = max
	return e
}

// Gate is the Simplex-style actuation gate: every command from the
// (uncertain) nominal controllers passes through it, and is clamped to the
// envelope certified for the functionality's *current* LoS. The nominal
// controller may be arbitrarily wrong; the actuator never sees a command
// outside the safety case.
type Gate struct {
	fn        *Functionality
	envelopes map[LoS]Envelope

	// Clamped counts commands that had to be limited.
	Clamped int64
	// Passed counts commands forwarded unmodified.
	Passed int64
}

// NewGate creates a gate for the functionality with per-level envelopes.
// Every level in 1..fn.Levels() must have an envelope: a missing envelope
// would leave a level without a certified safety case.
func NewGate(fn *Functionality, envelopes map[LoS]Envelope) (*Gate, error) {
	for l := 1; l <= fn.Levels(); l++ {
		if _, ok := envelopes[LoS(l)]; !ok {
			return nil, fmt.Errorf("core: gate for %q missing envelope for %v", fn.Name(), LoS(l))
		}
	}
	cp := make(map[LoS]Envelope, len(envelopes))
	for l, e := range envelopes {
		cp[l] = e
	}
	return &Gate{fn: fn, envelopes: cp}, nil
}

// Filter clamps value to the current level's bounds for the channel. A
// channel without bounds at the current level passes unmodified. The
// second result reports whether clamping occurred.
func (g *Gate) Filter(channel string, value float64) (float64, bool) {
	env := g.envelopes[g.fn.Current()]
	out := value
	if min, ok := env.Min[channel]; ok && out < min {
		out = min
	}
	if max, ok := env.Max[channel]; ok && out > max {
		out = max
	}
	if out != value {
		g.Clamped++
		return out, true
	}
	g.Passed++
	return out, false
}

// Channels returns the channels bounded at the given level, sorted.
func (g *Gate) Channels(level LoS) []string {
	env := g.envelopes[level]
	seen := make(map[string]bool, len(env.Min)+len(env.Max))
	for c := range env.Min {
		seen[c] = true
	}
	for c := range env.Max {
		seen[c] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
