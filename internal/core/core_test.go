package core

import (
	"testing"
	"testing/quick"

	"karyon/internal/sim"
)

func newManager(t *testing.T, seed int64, cfg ManagerConfig) (*sim.Kernel, *Manager) {
	t.Helper()
	k := sim.NewKernel(seed)
	ri := NewRuntimeInfo(k)
	m, err := NewManager(k, ri, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k, m
}

func TestManagerValidation(t *testing.T) {
	k := sim.NewKernel(1)
	if _, err := NewManager(k, NewRuntimeInfo(k), ManagerConfig{Period: 0}); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestFunctionalityRegistration(t *testing.T) {
	_, m := newManager(t, 1, DefaultManagerConfig())
	f, err := m.AddFunctionality("acc", 3)
	if err != nil {
		t.Fatal(err)
	}
	if f.Current() != LevelSafe || f.Levels() != 3 || f.Name() != "acc" {
		t.Fatalf("functionality = %+v", f)
	}
	if _, err := m.AddFunctionality("acc", 3); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if _, err := m.AddFunctionality("bad", 0); err == nil {
		t.Fatal("zero levels accepted")
	}
	if got, ok := m.Functionality("acc"); !ok || got != f {
		t.Fatal("lookup failed")
	}
}

func TestRuleTargetsValidation(t *testing.T) {
	_, m := newManager(t, 1, DefaultManagerConfig())
	f, err := m.AddFunctionality("acc", 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AddRule(LevelSafe, MinValidity("x", 0.5)); err == nil {
		t.Fatal("rule on LoS1 accepted — level 1 must be unconditional")
	}
	if err := f.AddRule(4, MinValidity("x", 0.5)); err == nil {
		t.Fatal("rule beyond levels accepted")
	}
	if err := f.AddRule(2, MinValidity("x", 0.5)); err != nil {
		t.Fatal(err)
	}
}

func TestUpgradeRequiresStability(t *testing.T) {
	cfg := ManagerConfig{Period: 10 * sim.Millisecond, UpgradeStability: 3}
	k, m := newManager(t, 1, cfg)
	f, err := m.AddFunctionality("acc", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AddRule(2, MinValidity("sensor", 0.8)); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	m.Runtime().Set("sensor", 0.9)
	// Two cycles: still at safe level (stability = 3).
	k.RunFor(25 * sim.Millisecond)
	if f.Current() != LevelSafe {
		t.Fatalf("upgraded after %d cycles, want hysteresis", m.Cycles)
	}
	k.RunFor(20 * sim.Millisecond)
	if f.Current() != 2 {
		t.Fatalf("not upgraded after stability window: %v", f.Current())
	}
	if len(f.Switches) != 1 || f.Switches[0].From != 1 || f.Switches[0].To != 2 {
		t.Fatalf("switch history %+v", f.Switches)
	}
}

func TestDowngradeIsImmediateAndBounded(t *testing.T) {
	cfg := ManagerConfig{Period: 10 * sim.Millisecond, UpgradeStability: 1}
	k, m := newManager(t, 2, cfg)
	f, err := m.AddFunctionality("acc", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AddRule(2, MinValidity("sensor", 0.8)); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	m.Runtime().Set("sensor", 1.0)
	k.RunFor(50 * sim.Millisecond)
	if f.Current() != 2 {
		t.Fatal("setup: never upgraded")
	}
	// Violate the rule and measure detection latency.
	var violatedAt sim.Time
	k.Schedule(3*sim.Millisecond, func() {
		violatedAt = k.Now()
		m.Runtime().Set("sensor", 0.1)
	})
	k.RunFor(30 * sim.Millisecond)
	if f.Current() != LevelSafe {
		t.Fatal("never downgraded")
	}
	last := f.Switches[len(f.Switches)-1]
	if last.To != LevelSafe {
		t.Fatalf("last switch %+v", last)
	}
	latency := last.At - violatedAt
	if latency > cfg.Period {
		t.Fatalf("downgrade latency %v exceeds the period bound %v", latency, cfg.Period)
	}
	if last.Reason == "" {
		t.Fatal("downgrade must record the violated rule")
	}
}

func TestCumulativeRules(t *testing.T) {
	cfg := ManagerConfig{Period: 10 * sim.Millisecond, UpgradeStability: 1}
	k, m := newManager(t, 3, cfg)
	f, err := m.AddFunctionality("acc", 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AddRule(2, MinValidity("local", 0.5)); err != nil {
		t.Fatal(err)
	}
	if err := f.AddRule(3, MinValidity("remote", 0.5)); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	// Only the level-3 condition holds: level 2's failure caps us at 1.
	m.Runtime().Set("remote", 1.0)
	m.Runtime().Set("local", 0.0)
	k.RunFor(50 * sim.Millisecond)
	if f.Current() != LevelSafe {
		t.Fatalf("level = %v; level-3 rule must not bypass level-2 failure", f.Current())
	}
	m.Runtime().Set("local", 1.0)
	k.RunFor(50 * sim.Millisecond)
	if f.Current() != 3 {
		t.Fatalf("level = %v, want 3 with all rules holding", f.Current())
	}
}

func TestOnChangeFires(t *testing.T) {
	cfg := ManagerConfig{Period: 10 * sim.Millisecond, UpgradeStability: 1}
	k, m := newManager(t, 4, cfg)
	f, err := m.AddFunctionality("acc", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AddRule(2, FlagSet("net")); err != nil {
		t.Fatal(err)
	}
	var calls []LoS
	f.OnChange(func(_, new LoS) { calls = append(calls, new) })
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	m.Runtime().Set("net", 1)
	k.RunFor(30 * sim.Millisecond)
	m.Runtime().Set("net", 0)
	k.RunFor(30 * sim.Millisecond)
	if len(calls) != 2 || calls[0] != 2 || calls[1] != 1 {
		t.Fatalf("onChange calls = %v, want [2 1]", calls)
	}
}

func TestMaxAgeRule(t *testing.T) {
	k := sim.NewKernel(5)
	ri := NewRuntimeInfo(k)
	r := MaxAge("heartbeat", 50*sim.Millisecond)
	ri.Set("heartbeat", 1)
	if !r.Check(ri, k.Now()) {
		t.Fatal("fresh indicator rejected")
	}
	k.Schedule(100*sim.Millisecond, func() {
		if r.Check(ri, k.Now()) {
			t.Error("stale indicator accepted")
		}
	})
	k.RunUntilIdle()
	if MaxAge("missing", sim.Second).Check(ri, k.Now()) {
		t.Fatal("missing indicator accepted")
	}
}

func TestAndRule(t *testing.T) {
	k := sim.NewKernel(6)
	ri := NewRuntimeInfo(k)
	r := And("both", MinValidity("a", 0.5), MinValidity("b", 0.5))
	ri.Set("a", 1)
	if r.Check(ri, 0) {
		t.Fatal("And held with a part missing")
	}
	ri.Set("b", 1)
	if !r.Check(ri, 0) {
		t.Fatal("And failed with all parts holding")
	}
}

func TestTimeAtAccounting(t *testing.T) {
	cfg := ManagerConfig{Period: 10 * sim.Millisecond, UpgradeStability: 1}
	k, m := newManager(t, 7, cfg)
	f, err := m.AddFunctionality("acc", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AddRule(2, FlagSet("ok")); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	m.Runtime().Set("ok", 1)
	k.RunFor(sim.Second)
	now := k.Now()
	total := f.TimeAt(1, now) + f.TimeAt(2, now)
	if total != sim.Second {
		t.Fatalf("time accounting total %v, want 1s", total)
	}
	if f.TimeAt(2, now) < 900*sim.Millisecond {
		t.Fatalf("time at LoS2 = %v, want most of the run", f.TimeAt(2, now))
	}
}

func TestRuntimeInfoKeys(t *testing.T) {
	k := sim.NewKernel(8)
	ri := NewRuntimeInfo(k)
	ri.Set("b", 1)
	ri.Set("a", 2)
	keys := ri.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("keys = %v", keys)
	}
	if _, ok := ri.Get("zzz"); ok {
		t.Fatal("missing key reported present")
	}
}

func TestGateMissingEnvelopeRejected(t *testing.T) {
	_, m := newManager(t, 9, DefaultManagerConfig())
	f, err := m.AddFunctionality("acc", 2)
	if err != nil {
		t.Fatal(err)
	}
	envs := map[LoS]Envelope{1: NewEnvelope().Bound("accel", -3, 1)}
	if _, err := NewGate(f, envs); err == nil {
		t.Fatal("gate accepted with missing level-2 envelope")
	}
}

func TestGateClampsPerLevel(t *testing.T) {
	cfg := ManagerConfig{Period: 10 * sim.Millisecond, UpgradeStability: 1}
	k, m := newManager(t, 10, cfg)
	f, err := m.AddFunctionality("acc", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AddRule(2, FlagSet("net")); err != nil {
		t.Fatal(err)
	}
	envs := map[LoS]Envelope{
		1: NewEnvelope().Bound("accel", -3, 0.5), // conservative
		2: NewEnvelope().Bound("accel", -6, 2.5), // cooperative
	}
	g, err := NewGate(f, envs)
	if err != nil {
		t.Fatal(err)
	}
	// At LoS1 an aggressive command is clamped.
	if out, clamped := g.Filter("accel", 2.0); !clamped || out != 0.5 {
		t.Fatalf("LoS1 filter -> %v clamped=%v", out, clamped)
	}
	// Raise to LoS2: the same command passes.
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	m.Runtime().Set("net", 1)
	k.RunFor(50 * sim.Millisecond)
	if f.Current() != 2 {
		t.Fatal("setup: not at LoS2")
	}
	if out, clamped := g.Filter("accel", 2.0); clamped || out != 2.0 {
		t.Fatalf("LoS2 filter -> %v clamped=%v", out, clamped)
	}
	if g.Clamped != 1 || g.Passed != 1 {
		t.Fatalf("gate stats %d/%d", g.Clamped, g.Passed)
	}
	// Unbounded channels pass through at any level.
	if out, clamped := g.Filter("horn", 99); clamped || out != 99 {
		t.Fatalf("unbounded channel clamped: %v %v", out, clamped)
	}
	chs := g.Channels(1)
	if len(chs) != 1 || chs[0] != "accel" {
		t.Fatalf("channels = %v", chs)
	}
}

// Property: whatever sequence of indicator values is applied, the manager
// never selects a level whose cumulative rules do not hold at evaluation
// time, and never leaves the valid range [1, levels].
func TestPropertyManagerSoundness(t *testing.T) {
	f := func(vals []float64) bool {
		k := sim.NewKernel(99)
		ri := NewRuntimeInfo(k)
		m, err := NewManager(k, ri, ManagerConfig{Period: sim.Millisecond, UpgradeStability: 1})
		if err != nil {
			return false
		}
		fn, err := m.AddFunctionality("f", 3)
		if err != nil {
			return false
		}
		if fn.AddRule(2, MinValidity("x", 0.3)) != nil {
			return false
		}
		if fn.AddRule(3, MinValidity("x", 0.7)) != nil {
			return false
		}
		ok := true
		for _, v := range vals {
			ri.Set("x", v)
			k.Schedule(0, func() {})
			k.Step()
			m.Cycle()
			cur := fn.Current()
			if cur < 1 || cur > 3 {
				ok = false
			}
			// Soundness: the selected level's cumulative rules hold, OR
			// the level is 1 (unconditional).
			if cur >= 2 && v < 0.3 {
				ok = false
			}
			if cur == 3 && v < 0.7 {
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLoSString(t *testing.T) {
	if LoS(2).String() != "LoS2" {
		t.Fatal(LoS(2).String())
	}
}

// Property: whatever command the nominal controller produces, the gate's
// output lies within the current level's envelope — the Simplex guarantee.
func TestPropertyGateOutputWithinEnvelope(t *testing.T) {
	f := func(cmds []float64, flips []bool) bool {
		k := sim.NewKernel(3)
		ri := NewRuntimeInfo(k)
		m, err := NewManager(k, ri, ManagerConfig{Period: sim.Millisecond, UpgradeStability: 1})
		if err != nil {
			return false
		}
		fn, err := m.AddFunctionality("f", 2)
		if err != nil {
			return false
		}
		if fn.AddRule(2, FlagSet("ok")) != nil {
			return false
		}
		envs := map[LoS]Envelope{
			1: NewEnvelope().Bound("accel", -6, 0.5),
			2: NewEnvelope().Bound("accel", -6, 2.5),
		}
		g, err := NewGate(fn, envs)
		if err != nil {
			return false
		}
		for i, cmd := range cmds {
			if i < len(flips) {
				if flips[i] {
					ri.Set("ok", 1)
				} else {
					ri.Set("ok", 0)
				}
			}
			m.Cycle()
			out, _ := g.Filter("accel", cmd)
			env := envs[fn.Current()]
			if out < env.Min["accel"] || out > env.Max["accel"] {
				return false
			}
			// The gate never amplifies a command, only clamps it.
			if cmd >= env.Min["accel"] && cmd <= env.Max["accel"] && out != cmd {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
