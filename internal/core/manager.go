package core

import (
	"fmt"
	"sort"

	"karyon/internal/sim"
)

// Switch records one LoS transition of a functionality.
type Switch struct {
	At   sim.Time
	From LoS
	To   LoS
	// Reason names the rule whose violation forced a downgrade (empty for
	// upgrades).
	Reason string
}

// Functionality is one vehicle function managed by the safety kernel
// (e.g. "cruise-control"). It owns a ladder of LoS levels, the design-time
// rules gating each level, and its current level.
type Functionality struct {
	name   string
	levels int
	rules  map[LoS][]Rule

	current LoS
	// upStreak counts consecutive cycles in which a higher level was
	// feasible; upgrades require stability (hysteresis), downgrades are
	// immediate.
	upStreak int

	onChange []func(old, new LoS)

	// Switches is the transition history.
	Switches []Switch
	// timeAt accumulates virtual time spent per level.
	timeAt    map[LoS]sim.Time
	enteredAt sim.Time
}

// Name returns the functionality name.
func (f *Functionality) Name() string { return f.name }

// Current returns the current LoS.
func (f *Functionality) Current() LoS { return f.current }

// Levels returns the number of levels.
func (f *Functionality) Levels() int { return f.levels }

// OnChange registers a reconfiguration callback invoked on every switch.
// This is the hook through which nominal components adjust their operating
// point (e.g. the ACC time gap).
func (f *Functionality) OnChange(fn func(old, new LoS)) {
	f.onChange = append(f.onChange, fn)
}

// TimeAt returns the accumulated virtual time spent at the level,
// including the current residence (up to now).
func (f *Functionality) TimeAt(level LoS, now sim.Time) sim.Time {
	d := f.timeAt[level]
	if level == f.current {
		d += now - f.enteredAt
	}
	return d
}

// AddRule attaches a design-time rule to a level. Level 1 accepts no
// rules: its safety must be unconditional.
func (f *Functionality) AddRule(level LoS, r Rule) error {
	if level <= LevelSafe || int(level) > f.levels {
		return fmt.Errorf("core: rule %q targets invalid level %v (levels 2..%d)",
			r.Name, level, f.levels)
	}
	f.rules[level] = append(f.rules[level], r)
	return nil
}

// feasible returns the highest level whose cumulative rules hold, plus the
// name of the first violated rule at the level above it.
func (f *Functionality) feasible(ri *RuntimeInfo, now sim.Time) (LoS, string) {
	level := LevelSafe
	for l := LoS(2); int(l) <= f.levels; l++ {
		violated := ""
		for _, r := range f.rules[l] {
			if !r.Check(ri, now) {
				violated = r.Name
				break
			}
		}
		if violated != "" {
			return level, violated
		}
		level = l
	}
	return level, ""
}

// Force pins the functionality at a level, bypassing rules and hysteresis.
// It exists for baseline experiments (fixed-LoS comparisons); a deployed
// system never calls it. now is the current virtual time for time-at-level
// accounting. Out-of-range levels are clamped.
func (f *Functionality) Force(now sim.Time, level LoS) {
	if level < LevelSafe {
		level = LevelSafe
	}
	if int(level) > f.levels {
		level = LoS(f.levels)
	}
	if level == f.current {
		return
	}
	f.switchTo(now, level, "forced")
}

// switchTo performs the transition bookkeeping and reconfiguration.
func (f *Functionality) switchTo(now sim.Time, target LoS, reason string) {
	old := f.current
	f.timeAt[old] += now - f.enteredAt
	f.current = target
	f.enteredAt = now
	f.Switches = append(f.Switches, Switch{At: now, From: old, To: target, Reason: reason})
	for _, fn := range f.onChange {
		fn(old, target)
	}
}

// ManagerConfig parameterizes the Safety Manager.
type ManagerConfig struct {
	// Period is the manager's evaluation cycle. The design-time safety
	// argument depends on it: a rule violation is acted upon within one
	// period, so the LoS switch time is bounded by Period plus the
	// reconfiguration time of the nominal components.
	Period sim.Time
	// UpgradeStability is the number of consecutive cycles a higher level
	// must remain feasible before the manager raises the LoS. It prevents
	// flapping around a marginal condition. Downgrades are never delayed.
	UpgradeStability int
}

// DefaultManagerConfig returns a 10 ms cycle with 5-cycle upgrade
// hysteresis.
func DefaultManagerConfig() ManagerConfig {
	return ManagerConfig{Period: 10 * sim.Millisecond, UpgradeStability: 5}
}

// Manager is the Safety Manager: it periodically checks run-time safety
// data against the design-time rules and adjusts each functionality's LoS.
// There is logically one Manager per vehicle.
type Manager struct {
	cfg   ManagerConfig
	clock sim.Clock
	ri    *RuntimeInfo

	fns map[string]*Functionality
	// ordered caches FunctionalityList's name-sorted view; Cycle runs once
	// per control period on every car, and rebuilding the sorted slice
	// there allocated more than the evaluation itself.
	ordered []*Functionality
	ticker  *sim.Ticker

	// Cycles counts completed evaluation cycles.
	Cycles int64
}

// scheduler is what Start needs beyond a Clock. *sim.Kernel provides it; a
// detached manager (sharded worlds drive Cycle from the entity's own
// control events) does not.
type scheduler interface {
	Every(period sim.Time, fn func()) (*sim.Ticker, error)
}

// NewManager creates a Safety Manager over the runtime-information store.
// The clock is usually the kernel (which also lets Start schedule the
// periodic cycle); a sharded world passes the owning entity's clock and
// drives Cycle explicitly instead of calling Start.
func NewManager(clock sim.Clock, ri *RuntimeInfo, cfg ManagerConfig) (*Manager, error) {
	if cfg.Period <= 0 {
		return nil, fmt.Errorf("core: manager period must be positive")
	}
	if cfg.UpgradeStability < 1 {
		cfg.UpgradeStability = 1
	}
	return &Manager{
		cfg:   cfg,
		clock: clock,
		ri:    ri,
		fns:   make(map[string]*Functionality),
	}, nil
}

// Runtime returns the runtime-information store.
func (m *Manager) Runtime() *RuntimeInfo { return m.ri }

// Period returns the evaluation cycle period.
func (m *Manager) Period() sim.Time { return m.cfg.Period }

// AddFunctionality registers a functionality with the given number of
// levels (≥ 1). It starts at LevelSafe.
func (m *Manager) AddFunctionality(name string, levels int) (*Functionality, error) {
	if levels < 1 {
		return nil, fmt.Errorf("core: functionality %q needs at least 1 level", name)
	}
	if _, dup := m.fns[name]; dup {
		return nil, fmt.Errorf("core: functionality %q already registered", name)
	}
	f := &Functionality{
		name:      name,
		levels:    levels,
		rules:     make(map[LoS][]Rule),
		current:   LevelSafe,
		timeAt:    make(map[LoS]sim.Time),
		enteredAt: m.clock.Now(),
	}
	m.fns[name] = f
	m.ordered = append(m.ordered, f)
	sort.Slice(m.ordered, func(i, j int) bool { return m.ordered[i].name < m.ordered[j].name })
	return f, nil
}

// Functionality returns a registered functionality.
func (m *Manager) Functionality(name string) (*Functionality, bool) {
	f, ok := m.fns[name]
	return f, ok
}

// FunctionalityList returns all functionalities sorted by name. The
// returned slice is the manager's cached view; callers must not mutate it.
func (m *Manager) FunctionalityList() []*Functionality {
	return m.ordered
}

// Start launches the periodic evaluation cycle. It requires a clock that
// can schedule (a *sim.Kernel); a detached manager must be driven through
// Cycle instead.
func (m *Manager) Start() error {
	sched, ok := m.clock.(scheduler)
	if !ok {
		return fmt.Errorf("core: manager clock cannot schedule; drive Cycle explicitly")
	}
	t, err := sched.Every(m.cfg.Period, m.Cycle)
	if err != nil {
		return err
	}
	m.ticker = t
	return nil
}

// Stop halts the manager.
func (m *Manager) Stop() {
	if m.ticker != nil {
		m.ticker.Stop()
	}
}

// Cycle runs one evaluation pass. It is exported so tests and benchmarks
// can drive the manager synchronously.
func (m *Manager) Cycle() {
	now := m.clock.Now()
	m.Cycles++
	for _, f := range m.FunctionalityList() {
		target, violated := f.feasible(m.ri, now)
		switch {
		case target < f.current:
			// Safety-relevant: downgrade immediately.
			f.upStreak = 0
			f.switchTo(now, target, violated)
		case target > f.current:
			f.upStreak++
			if f.upStreak >= m.cfg.UpgradeStability {
				f.upStreak = 0
				f.switchTo(now, target, "")
			}
		default:
			f.upStreak = 0
		}
	}
}
