// Package core implements KARYON's primary contribution (paper Sec. III,
// Fig. 1): the Safety Kernel. A small, predictable component below the
// architecture's hybridization line that guarantees functional safety for
// an otherwise uncertain system by managing Levels of Service (LoS).
//
// The kernel is composed, as in Fig. 1, of:
//
//   - Design-Time Safety Information: per-LoS safety rules fixed before
//     deployment (AddRule);
//   - Run-Time Safety Information: periodically collected validity /
//     health / timeliness indicators (RuntimeInfo);
//   - the Safety Manager: a bounded periodic cycle that evaluates rules
//     against runtime data, selects the highest LoS whose conditions hold
//     and reconfigures the nominal components (Manager);
//   - an actuation gate in the Simplex style: nominal control commands are
//     clamped to the envelope certified for the current LoS (Gate).
//
// LoS 1 has, by construction, no rules: it is the non-cooperative mode
// whose safety case stands on its own, so a safe level always exists.
package core

import (
	"fmt"
	"sort"

	"karyon/internal/sim"
)

// LoS is a Level of Service. Level 1 is the lowest (always safe,
// non-cooperative); higher levels unlock more performance under stricter
// run-time conditions.
type LoS int

// LevelSafe is the always-available fallback level.
const LevelSafe LoS = 1

// String renders the level.
func (l LoS) String() string { return fmt.Sprintf("LoS%d", int(l)) }

// Indicator is one piece of Run-Time Safety Information: a scalar (e.g. a
// sensor validity, a delivery ratio, a health flag) plus its collection
// time, so rules can require freshness.
type Indicator struct {
	Value     float64
	UpdatedAt sim.Time
}

// RuntimeInfo is the Run-Time Safety Information store. It abstracts the
// concrete collection mechanisms (failure detectors, validity pipelines,
// network monitors) behind a key → Indicator table.
type RuntimeInfo struct {
	clock sim.Clock
	m     map[string]Indicator
}

// NewRuntimeInfo creates an empty store. The clock is usually the kernel;
// sharded worlds pass the owning entity's clock so the store stays correct
// across shard handoffs.
func NewRuntimeInfo(clock sim.Clock) *RuntimeInfo {
	return &RuntimeInfo{clock: clock, m: make(map[string]Indicator)}
}

// Set records the indicator value at the current instant.
func (ri *RuntimeInfo) Set(key string, value float64) {
	ri.m[key] = Indicator{Value: value, UpdatedAt: ri.clock.Now()}
}

// Get returns the indicator and whether it has ever been set.
func (ri *RuntimeInfo) Get(key string) (Indicator, bool) {
	ind, ok := ri.m[key]
	return ind, ok
}

// Keys returns all indicator keys, sorted.
func (ri *RuntimeInfo) Keys() []string {
	out := make([]string, 0, len(ri.m))
	for k := range ri.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Rule is one design-time safety condition. Rules are attached to a LoS;
// operating at level L requires every rule of every level in 2..L to hold
// (conditions accumulate with performance).
type Rule struct {
	// Name identifies the rule in diagnostics and violation records.
	Name string
	// Check evaluates the rule against runtime information.
	Check func(ri *RuntimeInfo, now sim.Time) bool
}

// MinValidity builds a rule requiring indicator key to exist with value at
// least min — the paper's "needed validity of (sensor) data".
func MinValidity(key string, min float64) Rule {
	return Rule{
		Name: fmt.Sprintf("%s>=%.2f", key, min),
		Check: func(ri *RuntimeInfo, _ sim.Time) bool {
			ind, ok := ri.Get(key)
			return ok && ind.Value >= min
		},
	}
}

// MaxAge builds a rule requiring indicator key to have been refreshed
// within maxAge — the paper's "integrity of components (e.g. timeliness
// requirements)".
func MaxAge(key string, maxAge sim.Time) Rule {
	return Rule{
		Name: fmt.Sprintf("%s fresh<%v", key, maxAge),
		Check: func(ri *RuntimeInfo, now sim.Time) bool {
			ind, ok := ri.Get(key)
			return ok && now-ind.UpdatedAt <= maxAge
		},
	}
}

// FlagSet builds a rule requiring a boolean indicator (≥ 0.5) — e.g. a
// component-health flag maintained by a failure detector.
func FlagSet(key string) Rule {
	return Rule{
		Name: fmt.Sprintf("%s set", key),
		Check: func(ri *RuntimeInfo, _ sim.Time) bool {
			ind, ok := ri.Get(key)
			return ok && ind.Value >= 0.5
		},
	}
}

// And combines rules into one that holds only when all parts hold.
func And(name string, rules ...Rule) Rule {
	return Rule{
		Name: name,
		Check: func(ri *RuntimeInfo, now sim.Time) bool {
			for _, r := range rules {
				if !r.Check(ri, now) {
					return false
				}
			}
			return true
		},
	}
}
