package core

import (
	"sort"

	"karyon/internal/sim"
	"karyon/internal/trace"
)

// Trace-codec methods for the safety-kernel checkpoint state. The
// runtime-indicator entries come out of a map, so the trace form sorts
// them by key: the same logical state always encodes to the same bytes.

// EncodeState appends the manager checkpoint to e.
func (st *ManagerState) EncodeState(e *trace.Enc) {
	e.I64(st.cycles)
	e.U32(uint32(len(st.fns)))
	for i := range st.fns {
		fs := &st.fns[i]
		e.I64(int64(fs.current))
		e.I64(int64(fs.upStreak))
		e.I64(int64(fs.switches))
		e.I64(int64(fs.enteredAt))
		e.U32(uint32(len(fs.timeAt)))
		for _, t := range fs.timeAt {
			e.I64(int64(t))
		}
	}
	sort.Slice(st.ri, func(i, j int) bool { return st.ri[i].key < st.ri[j].key })
	e.U32(uint32(len(st.ri)))
	for _, r := range st.ri {
		e.Str(r.key)
		e.F64(r.ind.Value)
		e.I64(int64(r.ind.UpdatedAt))
	}
}

// DecodeState reads a manager checkpoint written by EncodeState.
func (st *ManagerState) DecodeState(d *trace.Dec) {
	st.cycles = d.I64()
	st.fns = st.fns[:0]
	for i, n := 0, d.Count(36); i < n && d.Err() == nil; i++ {
		var fs functionalityState
		fs.current = LoS(d.I64())
		fs.upStreak = int(d.I64())
		fs.switches = int(d.I64())
		fs.enteredAt = sim.Time(d.I64())
		for j, m := 0, d.Count(8); j < m && d.Err() == nil; j++ {
			fs.timeAt = append(fs.timeAt, sim.Time(d.I64()))
		}
		st.fns = append(st.fns, fs)
	}
	st.ri = st.ri[:0]
	for i, n := 0, d.Count(20); i < n && d.Err() == nil; i++ {
		var r riEntry
		r.key = d.Str()
		r.ind.Value = d.F64()
		r.ind.UpdatedAt = sim.Time(d.I64())
		st.ri = append(st.ri, r)
	}
}

// EncodeState appends the gate checkpoint to e.
func (st GateState) EncodeState(e *trace.Enc) {
	e.I64(st.clamped)
	e.I64(st.passed)
}

// DecodeGateState reads a gate checkpoint written by EncodeState.
func DecodeGateState(d *trace.Dec) GateState {
	return GateState{clamped: d.I64(), passed: d.I64()}
}
