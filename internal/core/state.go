package core

import "karyon/internal/sim"

// This file implements checkpoint/restore for the safety kernel — the
// "lightweight undo point" a speculative shard window records before
// running ahead of the barrier. Everything the manager, its
// functionalities, the runtime-information store and the actuation gate
// mutate during control cycles is captured; design-time structure (rules,
// envelopes, levels) is immutable after construction and is not.

// functionalityState is one functionality's mutable state.
type functionalityState struct {
	current   LoS
	upStreak  int
	switches  int // length of the append-only Switches log
	timeAt    []sim.Time
	enteredAt sim.Time
}

// riEntry is one saved runtime indicator.
type riEntry struct {
	key string
	ind Indicator
}

// ManagerState is a checkpoint of a manager, its functionalities and its
// runtime-information store; storage is reused across Save calls.
type ManagerState struct {
	cycles int64
	fns    []functionalityState
	ri     []riEntry
}

// SaveState checkpoints the manager into st (pass nil to allocate) and
// returns it.
func (m *Manager) SaveState(st *ManagerState) *ManagerState {
	if st == nil {
		st = &ManagerState{}
	}
	st.cycles = m.Cycles
	if cap(st.fns) < len(m.ordered) {
		st.fns = make([]functionalityState, len(m.ordered))
	}
	st.fns = st.fns[:len(m.ordered)]
	for i, f := range m.ordered {
		fs := &st.fns[i]
		fs.current = f.current
		fs.upStreak = f.upStreak
		fs.switches = len(f.Switches)
		fs.enteredAt = f.enteredAt
		fs.timeAt = fs.timeAt[:0]
		for l := LoS(1); int(l) <= f.levels; l++ {
			fs.timeAt = append(fs.timeAt, f.timeAt[l])
		}
	}
	st.ri = st.ri[:0]
	for k, ind := range m.ri.m {
		st.ri = append(st.ri, riEntry{key: k, ind: ind})
	}
	return st
}

// RestoreState rewinds the manager to a SaveState checkpoint. The
// Switches log is append-only between checkpoints, so restoring truncates
// it; runtime indicators recorded since the checkpoint are dropped.
func (m *Manager) RestoreState(st *ManagerState) {
	m.Cycles = st.cycles
	for i, f := range m.ordered {
		fs := &st.fns[i]
		f.current = fs.current
		f.upStreak = fs.upStreak
		// In-process restore truncates the append-only Switches log back
		// to the checkpoint. A checkpoint decoded from a trace restores
		// into a freshly built manager whose log is shorter than the
		// recorded length; the entries are gone (only their count
		// mattered to the checkpoint), so restore what is representable
		// instead of slicing out of range.
		if fs.switches <= len(f.Switches) {
			f.Switches = f.Switches[:fs.switches]
		}
		f.enteredAt = fs.enteredAt
		for l := LoS(1); int(l) <= f.levels; l++ {
			f.timeAt[l] = fs.timeAt[int(l)-1]
		}
	}
	clear(m.ri.m)
	for _, e := range st.ri {
		m.ri.m[e.key] = e.ind
	}
}

// GateState is a checkpoint of the actuation gate's counters.
type GateState struct {
	clamped int64
	passed  int64
}

// SaveState checkpoints the gate.
func (g *Gate) SaveState() GateState {
	return GateState{clamped: g.Clamped, passed: g.Passed}
}

// RestoreState rewinds the gate to a SaveState checkpoint.
func (g *Gate) RestoreState(st GateState) {
	g.Clamped = st.clamped
	g.Passed = st.passed
}
