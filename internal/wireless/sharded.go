package wireless

import (
	"cmp"
	"fmt"
	"slices"
	"sort"

	"karyon/internal/sim"
)

// ShardedMedium is the slot-level broadcast radio for the partitioned
// worlds (internal/world). The classic Medium cannot run there: it draws
// loss from the kernel's rng and decides collisions from a live global
// transmission set, both of which depend on event interleaving — exactly
// what a shard-count-invariant model must not depend on. The sharded
// medium keeps the same physics (airtime occupancy, overlap collisions,
// carrier sense, jam windows) but restructures *when* and *from what* the
// decisions are made:
//
//   - A transmission is described, not performed, when the sender's event
//     runs: the owning shard routes the ShardedTx through its mailbox to
//     the closing window barrier (one Send per frame, addressed to the
//     sending shard itself — the same conservative-lookahead discipline as
//     the worlds' beacon fan-out). Cross-arc frames therefore travel as
//     barrier mailbox messages, drained in deterministic (edge, sender)
//     order.
//   - Resolve runs single-threaded at the barrier over the whole window's
//     frame set, sorted by (start, sender): airtime overlap, carrier
//     sense, jam overlap and range are pure interval/geometry functions of
//     that set, so the outcome is a pure function of (seed, config) —
//     byte-identical at every shard width.
//   - Every stochastic decision comes from sim.SplitSeed per-entity
//     streams: the sender's slot jitter is drawn by the sending entity
//     (from its own stream, on its own shard), and per-receiver loss is
//     drawn from a per-receiver stream owned by the medium and consumed
//     only at barriers, in frame order. Per-receiver streams make the
//     receiver *visit* order irrelevant: each receiver consumes exactly
//     one draw per lossy frame regardless of who else is visited.
//
// The medium is geometry-agnostic: positions are opaque to it except
// through the configured distance function, so a ring highway supplies
// arc distance and the intersection plane supplies the Euclidean default.
// All methods are barrier-only (single-threaded); the in-window half of a
// transmission is just building the ShardedTx value.
type ShardedMedium struct {
	seed int64
	cfg  ShardedConfig

	pending []ShardedTx
	// onAir is the Resolve scratch reused across barriers.
	onAir []int

	// rctx and visitFn implement Resolve's per-frame receiver visit
	// without allocating: the closure a caller's each callback receives is
	// built once (lazily) and reads the current frame's state from rctx,
	// instead of a fresh closure per frame escaping through each.
	// Barrier-only, like every other Resolve structure.
	rctx    resolveCtx
	visitFn func(to NodeID, pos Position)

	// jamStart/jamUntil track the current (or last) jam burst per channel,
	// with Jam extending an ongoing burst — the same single-burst model as
	// Medium.Jam. Frames are resolved at the barrier closing their window
	// and jams are injected at barriers, so no frame ever needs a burst
	// older than the current one.
	jamStart []sim.Time
	jamUntil []sim.Time

	rx    map[NodeID]*sim.Stream
	stats ShardedStats
}

// ShardedConfig parameterizes a ShardedMedium.
type ShardedConfig struct {
	// Range is the radio range in meters (under Distance's metric).
	Range float64
	// Airtime is how long one frame occupies its channel.
	Airtime sim.Time
	// LossProb is the independent per-receiver frame loss probability,
	// drawn from the receiver's own SplitSeed stream.
	LossProb float64
	// Channels is the number of orthogonal channels (≥1). A channel
	// partitions airtime — collisions and jams are per-channel — not the
	// audience: receivers are wideband and hear every channel.
	Channels int
	// CarrierSense makes a sender defer (skip) a frame whose start instant
	// falls inside another audible transmission's airtime or a jam burst —
	// listen-before-talk with the frame dropped at the sender, which is how
	// CSMA converts most would-be collisions into deferrals. Simultaneous
	// starts remain undetectable (the CSMA vulnerability window) and
	// collide.
	CarrierSense bool
	// Distance overrides the Euclidean metric (nil = Euclidean). Ring
	// worlds pass arc distance so the wrap seam has no radio shadow.
	Distance func(a, b Position) float64
}

// DefaultShardedConfig mirrors DefaultConfig: a short 802.11p-class frame.
func DefaultShardedConfig() ShardedConfig {
	return ShardedConfig{
		Range:    300,
		Airtime:  400 * sim.Microsecond,
		Channels: 1,
	}
}

// ShardedTx is one frame queued for barrier resolution. The sender builds
// it during its own event (drawing any slot jitter from its own entity
// stream) and routes it through its shard's mailbox to the closing edge.
type ShardedTx struct {
	From    NodeID
	Channel int
	// Pos is the sender's position at send time, in whatever coordinates
	// the configured distance function understands.
	Pos Position
	// Start is when the frame's airtime begins. The sending world keeps it
	// inside the frame's window (clamping against the closing edge), so a
	// window's frame set is complete when its barrier resolves.
	Start sim.Time
	// Retry, when non-zero, is the latest start instant the sender will
	// accept for this frame. A carrier-sense deferral then re-contends at
	// the instant the sensed occupancy clears instead of dropping — CSMA
	// backoff showing up as latency rather than loss. Zero keeps the
	// legacy defer-means-drop behavior. The sending world sets it to the
	// last in-window start (edge − airtime) so retries never leak across
	// the barrier.
	Retry   sim.Time
	Payload any
}

// end returns one past the frame's airtime window.
func (tx *ShardedTx) end(airtime sim.Time) sim.Time { return tx.Start + airtime }

// ShardedStats aggregates delivery accounting. Queued counts frames
// handed to the medium; Sent counts frames that actually went on air
// (Queued minus carrier-sense deferrals); the per-receiver outcomes sum
// across receivers, so Delivered+Collisions+Losses+Jammed+OutOfRange is
// the number of (frame, receiver) pairs visited.
type ShardedStats struct {
	Queued     int64
	Sent       int64
	Deferred   int64
	Delivered  int64
	Collisions int64
	Losses     int64
	Jammed     int64
	OutOfRange int64
	// Retries counts carrier-sense re-contentions (frames that sensed a
	// busy channel and moved their start later within the same window).
	Retries int64
	// ResolvedLocal and ResolvedBoundary count (frame, receiver) outcomes
	// decided per-arc inside a shard window versus at the barrier's
	// boundary reconciliation. Lockstep Resolve counts everything as
	// boundary work.
	ResolvedLocal    int64
	ResolvedBoundary int64
}

// add folds a delta into s, field by field.
func (s *ShardedStats) add(d ShardedStats) {
	s.Queued += d.Queued
	s.Sent += d.Sent
	s.Deferred += d.Deferred
	s.Delivered += d.Delivered
	s.Collisions += d.Collisions
	s.Losses += d.Losses
	s.Jammed += d.Jammed
	s.OutOfRange += d.OutOfRange
	s.Retries += d.Retries
	s.ResolvedLocal += d.ResolvedLocal
	s.ResolvedBoundary += d.ResolvedBoundary
}

// DeliveryRatio returns delivered over in-range delivery attempts —
// the one definition every report shares. Out-of-range visits are not
// attempts (the frame never reached that receiver's neighborhood), and
// carrier-sense deferrals never put a frame on air.
func (s ShardedStats) DeliveryRatio() float64 {
	attempts := s.Delivered + s.Collisions + s.Losses + s.Jammed
	if attempts == 0 {
		return 0
	}
	return float64(s.Delivered) / float64(attempts)
}

// shardedLossDim is the SplitSeed stream dimension for per-receiver loss
// draws — distinct from the entity dimensions the worlds consume (sensor
// transducers 0-2, legacy beacon rx 3, slot jitter 5).
const shardedLossDim = 6

// NewShardedMedium creates a medium. Channels below 1 are clamped to 1.
func NewShardedMedium(seed int64, cfg ShardedConfig) *ShardedMedium {
	if cfg.Channels < 1 {
		cfg.Channels = 1
	}
	if cfg.Airtime <= 0 {
		cfg.Airtime = DefaultShardedConfig().Airtime
	}
	return &ShardedMedium{
		seed:     seed,
		cfg:      cfg,
		jamStart: make([]sim.Time, cfg.Channels),
		jamUntil: make([]sim.Time, cfg.Channels),
		rx:       make(map[NodeID]*sim.Stream),
	}
}

// Config returns the medium configuration (with clamps applied).
func (m *ShardedMedium) Config() ShardedConfig { return m.cfg }

// Stats returns a copy of the delivery accounting so far.
func (m *ShardedMedium) Stats() ShardedStats { return m.stats }

// Pending returns how many frames await the next Resolve.
func (m *ShardedMedium) Pending() int { return len(m.pending) }

// Queue hands one frame to the medium for resolution at the next barrier.
// Barrier-only: call it from the mailbox message the sender routed to the
// closing edge.
func (m *ShardedMedium) Queue(tx ShardedTx) {
	if tx.Channel < 0 || tx.Channel >= m.cfg.Channels {
		panic(fmt.Sprintf("wireless: queued frame on unknown channel %d of %d", tx.Channel, m.cfg.Channels))
	}
	m.pending = append(m.pending, tx)
	m.stats.Queued++
}

// Jam marks channel as jammed for the next d units of virtual time from
// now, extending any ongoing burst. Barrier-only.
func (m *ShardedMedium) Jam(channel int, now, d sim.Time) {
	if channel < 0 || channel >= m.cfg.Channels {
		return
	}
	if now >= m.jamUntil[channel] {
		m.jamStart[channel] = now
	}
	if until := now + d; until > m.jamUntil[channel] {
		m.jamUntil[channel] = until
	}
}

// JamAll jams every channel — the external wideband interference that
// produces the paper's network-inaccessibility periods.
func (m *ShardedMedium) JamAll(now, d sim.Time) {
	for c := 0; c < m.cfg.Channels; c++ {
		m.Jam(c, now, d)
	}
}

// Jammed reports whether channel is jammed at instant t.
func (m *ShardedMedium) Jammed(channel int, t sim.Time) bool {
	if channel < 0 || channel >= m.cfg.Channels {
		return false
	}
	return t >= m.jamStart[channel] && t < m.jamUntil[channel]
}

// dist applies the configured metric.
func (m *ShardedMedium) dist(a, b Position) float64 {
	if m.cfg.Distance != nil {
		return m.cfg.Distance(a, b)
	}
	return a.Distance(b)
}

// jamOverlaps reports whether the frame's airtime window overlapped the
// channel's current jam burst — the same interval test as Medium.
func (m *ShardedMedium) jamOverlaps(tx *ShardedTx) bool {
	c := tx.Channel
	if m.jamStart[c] >= m.jamUntil[c] {
		return false // empty burst (e.g. a zero-duration Jam) covers nothing
	}
	return m.jamStart[c] < tx.end(m.cfg.Airtime) && m.jamUntil[c] > tx.Start
}

// airtimesOverlap reports whether two frames' airtime windows intersect.
func airtimesOverlap(a, b *ShardedTx, airtime sim.Time) bool {
	return a.Start < b.end(airtime) && b.Start < a.end(airtime)
}

// rxStream returns the receiver's loss stream, creating it on first use.
// Streams are keyed by entity id and derived from SplitSeed, so creation
// order — and therefore shard layout — cannot perturb the draws.
func (m *ShardedMedium) rxStream(id NodeID) *sim.Stream {
	s, ok := m.rx[id]
	if !ok {
		s = sim.NewStream(m.seed, int64(id), shardedLossDim)
		m.rx[id] = s
	}
	return s
}

// Prime pre-creates the loss streams for a contiguous id range. Per-arc
// resolution (ResolveSlice) may run concurrently across shards; priming
// removes the lazy map insert from that path so concurrent resolvers only
// ever read the map.
func (m *ShardedMedium) Prime(first, last NodeID) {
	for id := first; id <= last; id++ {
		m.rxStream(id)
	}
}

// Resolve decides every queued frame's fate in deterministic (start,
// sender) order and clears the queue. Single-threaded barrier work.
//
// each is invoked once per frame that goes on air (carrier-sense deferrals
// are reported through drop with to == tx.From and DropBusy, and skip
// each entirely); it must visit the frame's candidate receivers with their
// positions — typically by walking the world's immutable snapshot. Range
// is re-checked here, so visiting a superset is fine. For every visited
// receiver other than the sender exactly one of deliver or drop fires,
// with the same outcome ladder as Medium.complete: range, jam, collision,
// loss, delivery. All three callbacks are required.
func (m *ShardedMedium) Resolve(
	each func(tx *ShardedTx, visit func(to NodeID, pos Position)),
	deliver func(tx *ShardedTx, to NodeID),
	drop func(tx *ShardedTx, to NodeID, reason DropReason),
) {
	if len(m.pending) == 0 {
		return
	}
	if m.visitFn == nil {
		m.visitFn = func(to NodeID, pos Position) {
			tx := m.rctx.tx
			if to == tx.From {
				return
			}
			switch {
			case m.dist(tx.Pos, pos) > m.cfg.Range:
				m.stats.OutOfRange++
				m.rctx.drop(tx, to, DropOutOfRange)
			case m.rctx.jammed:
				m.stats.Jammed++
				m.rctx.drop(tx, to, DropJam)
			case m.collides(tx, m.rctx.at, pos, m.onAir):
				m.stats.Collisions++
				m.rctx.drop(tx, to, DropCollision)
			case m.cfg.LossProb > 0 && m.rxStream(to).Float64() < m.cfg.LossProb:
				m.stats.Losses++
				m.rctx.drop(tx, to, DropLoss)
			default:
				m.stats.Delivered++
				m.rctx.deliver(tx, to)
			}
			m.stats.ResolvedBoundary++
		}
	}
	sortTxs(m.pending)

	// Carrier-sense pass, in start order: a frame defers when its start
	// instant lies inside an already-on-air audible frame on its channel
	// (strictly earlier start: a simultaneous start is not yet detectable)
	// or inside a jam burst. A deferred frame with a Retry deadline moves
	// its start to the instant the sensed occupancy clears and re-enters
	// contention in sorted order (so later frames sense it correctly);
	// otherwise — deadline exhausted or none set — it is dropped at the
	// sender. Deferred frames never occupy airtime, so they cannot collide
	// with later frames: the pass is order-dependent front-to-back, which
	// is exactly the deterministic order above.
	onAir := m.onAir[:0]
	for i := 0; i < len(m.pending); i++ {
		tx := &m.pending[i]
		if m.cfg.CarrierSense {
			if clearAt, busy := m.senseClears(tx, onAir); busy {
				if tx.Retry > 0 && clearAt <= tx.Retry {
					m.stats.Retries++
					moved := *tx
					moved.Start = clearAt
					m.reinsert(i, moved)
					continue
				}
				m.stats.Deferred++
				drop(tx, tx.From, DropBusy)
				continue
			}
		}
		onAir = append(onAir, i)
	}
	m.onAir = onAir

	m.rctx.deliver, m.rctx.drop = deliver, drop
	for at, i := range onAir {
		m.rctx.tx = &m.pending[i]
		m.rctx.at = at
		m.rctx.jammed = m.jamOverlaps(m.rctx.tx)
		m.stats.Sent++
		each(m.rctx.tx, m.visitFn)
	}
	// Unpin the caller's callbacks (and the last frame) between barriers.
	m.rctx = resolveCtx{}
	m.pending = m.pending[:0]
}

// resolveCtx carries the frame Resolve's reusable visit closure is
// currently deciding, plus the caller's outcome callbacks for this pass.
type resolveCtx struct {
	tx      *ShardedTx
	at      int
	jammed  bool
	deliver func(tx *ShardedTx, to NodeID)
	drop    func(tx *ShardedTx, to NodeID, reason DropReason)
}

// sortTxs orders a frame set by (Start, From) — the canonical resolution
// order every path (lockstep barrier, per-arc, boundary reconciliation)
// shares.
func sortTxs(txs []ShardedTx) {
	// Capture-free comparator: the stable generic sort allocates nothing,
	// unlike sort.SliceStable's closure + interface boxing.
	slices.SortStableFunc(txs, func(a, b ShardedTx) int {
		if c := cmp.Compare(a.Start, b.Start); c != 0 {
			return c
		}
		return cmp.Compare(a.From, b.From)
	})
}

// SortTxs exposes the canonical (Start, From) frame ordering for callers
// assembling per-arc frame sets.
func SortTxs(txs []ShardedTx) { sortTxs(txs) }

// reinsert places a retried frame (whose Start moved later) back into the
// unprocessed tail of pending at its sorted position. i is the slot the
// frame was popped from; positions ≤ i (including accepted on-air indices)
// are untouched, so the contention loop's bookkeeping stays valid. The
// retried start strictly exceeds the old one, so the loop terminates.
func (m *ShardedMedium) reinsert(i int, moved ShardedTx) {
	rest := m.pending[i+1:]
	at := sort.Search(len(rest), func(k int) bool {
		if rest[k].Start != moved.Start {
			return rest[k].Start > moved.Start
		}
		return rest[k].From > moved.From
	})
	copy(m.pending[i:], rest[:at])
	m.pending[i+at] = moved
}

// senseClears reports whether tx's sender hears energy at tx.Start and, if
// so, the earliest instant the currently sensed occupancy clears (for
// retry-within-window). Only occupancy audible at tx.Start counts; a retry
// re-contends against whatever is on air then.
func (m *ShardedMedium) senseClears(tx *ShardedTx, onAir []int) (sim.Time, bool) {
	var clearAt sim.Time
	busy := false
	if m.Jammed(tx.Channel, tx.Start) {
		busy = true
		clearAt = m.jamUntil[tx.Channel]
	}
	// onAir is in start order and airtime is uniform, so ends are ordered
	// too: scan back from the tail and stop at the first frame that ended
	// before tx started.
	for k := len(onAir) - 1; k >= 0; k-- {
		o := &m.pending[onAir[k]]
		end := o.end(m.cfg.Airtime)
		if end <= tx.Start {
			break
		}
		if o.Start >= tx.Start || o.Channel != tx.Channel || o.From == tx.From {
			continue
		}
		if m.dist(o.Pos, tx.Pos) <= m.cfg.Range {
			busy = true
			if end > clearAt {
				clearAt = end
			}
		}
	}
	return clearAt, busy
}

// ResolveSlice decides outcomes for an explicit, complete, (Start, From)-
// sorted frame set — the per-arc half of speculative resolution. No
// carrier sense runs here (speculative windows fence CSMA worlds to
// lockstep), every frame goes on air, and all accounting accumulates into
// the caller-owned stats so concurrent per-arc resolvers never touch the
// medium's own counters (fold deltas back with AddStats at the barrier).
// countSent marks the pass that owns each frame's Sent/airtime accounting:
// true for the owning arc's local pass, false for the boundary pass, which
// revisits the same frames for band receivers only. txs must contain every
// frame audible at any receiver the visit callback supplies; boundary
// reports outcomes as ResolvedBoundary instead of ResolvedLocal.
//
// Concurrent ResolveSlice calls are safe once Prime has created the loss
// streams, provided the receiver sets are disjoint.
func (m *ShardedMedium) ResolveSlice(
	txs []ShardedTx, countSent, boundary bool, stats *ShardedStats,
	each func(tx *ShardedTx, visit func(to NodeID, pos Position)),
	deliver func(tx *ShardedTx, to NodeID),
	drop func(tx *ShardedTx, to NodeID, reason DropReason),
) {
	// One visit closure per call, not per frame: the per-frame state lives
	// in cur, which the closure reads by reference. ResolveSlice runs
	// concurrently across shards, so the context is call-local rather than
	// medium-owned like Resolve's.
	var cur struct {
		tx     *ShardedTx
		at     int
		jammed bool
	}
	visit := func(to NodeID, pos Position) {
		tx := cur.tx
		if to == tx.From {
			return
		}
		switch {
		case m.dist(tx.Pos, pos) > m.cfg.Range:
			stats.OutOfRange++
			drop(tx, to, DropOutOfRange)
		case cur.jammed:
			stats.Jammed++
			drop(tx, to, DropJam)
		case collidesAll(m, txs, cur.at, pos):
			stats.Collisions++
			drop(tx, to, DropCollision)
		case m.cfg.LossProb > 0 && m.rxStream(to).Float64() < m.cfg.LossProb:
			stats.Losses++
			drop(tx, to, DropLoss)
		default:
			stats.Delivered++
			deliver(tx, to)
		}
		if boundary {
			stats.ResolvedBoundary++
		} else {
			stats.ResolvedLocal++
		}
	}
	for at := range txs {
		cur.tx = &txs[at]
		cur.at = at
		cur.jammed = m.jamOverlaps(cur.tx)
		if countSent {
			stats.Sent++
		}
		each(cur.tx, visit)
	}
}

// collidesAll is the collision predicate over a sorted slice where every
// frame is on air — the ResolveSlice counterpart of collides.
func collidesAll(m *ShardedMedium, txs []ShardedTx, at int, rxPos Position) bool {
	tx := &txs[at]
	for k := at - 1; k >= 0; k-- {
		o := &txs[k]
		if o.end(m.cfg.Airtime) <= tx.Start {
			break
		}
		if o.Channel == tx.Channel && m.dist(o.Pos, rxPos) <= m.cfg.Range {
			return true
		}
	}
	end := tx.end(m.cfg.Airtime)
	for k := at + 1; k < len(txs); k++ {
		o := &txs[k]
		if o.Start >= end {
			break
		}
		if o.Channel == tx.Channel && m.dist(o.Pos, rxPos) <= m.cfg.Range {
			return true
		}
	}
	return false
}

// AddStats folds a per-shard accounting delta (accumulated by ResolveSlice
// calls) into the medium's stats. Barrier-only.
func (m *ShardedMedium) AddStats(d ShardedStats) { m.stats.add(d) }

// CountQueued records frames that bypassed Queue (speculative per-shard
// frame buffers) so Queued stays comparable with the lockstep path.
// Barrier-only.
func (m *ShardedMedium) CountQueued(n int64) { m.stats.Queued += n }

// ShardedMediumState is a checkpoint of the medium's mutable state for
// speculative abort: the accounting counters, the jam bursts, and every
// created receiver stream's generator state. Pending lockstep frames are
// not part of it — a speculative batch never starts with a non-empty
// queue.
type ShardedMediumState struct {
	stats    ShardedStats
	jamStart []sim.Time
	jamUntil []sim.Time
	rx       map[NodeID]uint64
}

// SaveState checkpoints the medium into st (reusing its storage) and
// returns it; pass nil to allocate. Barrier-only.
func (m *ShardedMedium) SaveState(st *ShardedMediumState) *ShardedMediumState {
	if st == nil {
		st = &ShardedMediumState{rx: make(map[NodeID]uint64, len(m.rx))}
	}
	st.stats = m.stats
	st.jamStart = append(st.jamStart[:0], m.jamStart...)
	st.jamUntil = append(st.jamUntil[:0], m.jamUntil...)
	clear(st.rx)
	for id, s := range m.rx {
		st.rx[id] = s.State()
	}
	return st
}

// RestoreState rewinds the medium to a SaveState checkpoint. Barrier-only.
func (m *ShardedMedium) RestoreState(st *ShardedMediumState) {
	m.stats = st.stats
	copy(m.jamStart, st.jamStart)
	copy(m.jamUntil, st.jamUntil)
	for id, state := range st.rx {
		m.rx[id].Restore(state)
	}
	m.pending = m.pending[:0]
}

// collides reports whether another on-air frame on the same channel
// overlapped tx's airtime audibly at the receiver position — the same
// predicate as Medium.collides, evaluated over the window's frame set.
// at is tx's position in onAir (the Resolve loop index). onAir is sorted
// by start, and with a uniform airtime only frames whose start lies
// within one airtime of tx's can overlap, so the scan walks a local
// neighborhood of at rather than the whole window.
func (m *ShardedMedium) collides(tx *ShardedTx, at int, rxPos Position, onAir []int) bool {
	for k := at - 1; k >= 0; k-- {
		o := &m.pending[onAir[k]]
		if o.end(m.cfg.Airtime) <= tx.Start {
			break // starts are ordered: everything earlier ended earlier too
		}
		if o.Channel == tx.Channel && m.dist(o.Pos, rxPos) <= m.cfg.Range {
			return true
		}
	}
	end := tx.end(m.cfg.Airtime)
	for k := at + 1; k < len(onAir); k++ {
		o := &m.pending[onAir[k]]
		if o.Start >= end {
			break
		}
		if o.Channel == tx.Channel && m.dist(o.Pos, rxPos) <= m.cfg.Range {
			return true
		}
	}
	return false
}
