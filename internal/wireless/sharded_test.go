package wireless

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"karyon/internal/sim"
)

// outcomeLog collects per-receiver outcomes as comparable strings.
type outcomeLog struct{ entries []string }

func (l *outcomeLog) deliver(tx *ShardedTx, to NodeID) {
	l.entries = append(l.entries, fmt.Sprintf("%d@%d->%d ok", tx.From, tx.Start, to))
}

func (l *outcomeLog) drop(tx *ShardedTx, to NodeID, r DropReason) {
	l.entries = append(l.entries, fmt.Sprintf("%d@%d->%d %s", tx.From, tx.Start, to, r))
}

func (l *outcomeLog) String() string { return strings.Join(l.entries, "\n") }

// resolveAll runs Resolve visiting every node in nodes (id order) at its
// position.
func resolveAll(m *ShardedMedium, nodes map[NodeID]Position, log *outcomeLog) {
	ids := make([]NodeID, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ { // tiny insertion sort keeps the test dependency-free
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	m.Resolve(func(tx *ShardedTx, visit func(NodeID, Position)) {
		for _, id := range ids {
			visit(id, nodes[id])
		}
	}, log.deliver, log.drop)
}

func TestShardedDeliveryAndRange(t *testing.T) {
	m := NewShardedMedium(1, DefaultShardedConfig())
	nodes := map[NodeID]Position{0: {}, 1: {X: 200}, 2: {X: 500}}
	m.Queue(ShardedTx{From: 0, Start: 100})
	var log outcomeLog
	resolveAll(m, nodes, &log)
	want := "0@100->1 ok\n0@100->2 range"
	if log.String() != want {
		t.Fatalf("outcomes:\n%s\nwant:\n%s", log.String(), want)
	}
	st := m.Stats()
	if st.Queued != 1 || st.Sent != 1 || st.Delivered != 1 || st.OutOfRange != 1 {
		t.Fatalf("stats %+v", st)
	}
	if m.Pending() != 0 {
		t.Fatalf("pending %d after resolve", m.Pending())
	}
}

func TestShardedOverlapCollisionAndHiddenTerminal(t *testing.T) {
	// Senders 0 and 3 overlap in time. Receiver 1 hears both -> collision
	// on each frame. Receiver 2 is only in range of sender 3 -> the
	// overlap is hidden from it and 3's frame gets through.
	m := NewShardedMedium(1, DefaultShardedConfig())
	nodes := map[NodeID]Position{0: {}, 1: {X: 250}, 2: {X: 550}, 3: {X: 300}}
	m.Queue(ShardedTx{From: 0, Pos: nodes[0], Start: 100})
	m.Queue(ShardedTx{From: 3, Pos: nodes[3], Start: 300})
	var log outcomeLog
	resolveAll(m, nodes, &log)
	want := strings.Join([]string{
		"0@100->1 collision",
		"0@100->2 range",
		"0@100->3 collision",
		"3@300->0 collision",
		"3@300->1 collision",
		"3@300->2 ok",
	}, "\n")
	if log.String() != want {
		t.Fatalf("outcomes:\n%s\nwant:\n%s", log.String(), want)
	}
}

func TestShardedSequentialFramesDoNotCollide(t *testing.T) {
	m := NewShardedMedium(1, DefaultShardedConfig())
	air := m.Config().Airtime
	nodes := map[NodeID]Position{0: {}, 1: {X: 100}, 2: {X: 200}}
	m.Queue(ShardedTx{From: 0, Pos: nodes[0], Start: 100})
	m.Queue(ShardedTx{From: 2, Pos: nodes[2], Start: 100 + air}) // back-to-back, no overlap
	var log outcomeLog
	resolveAll(m, nodes, &log)
	if strings.Contains(log.String(), "collision") {
		t.Fatalf("sequential frames collided:\n%s", log)
	}
	if st := m.Stats(); st.Delivered != 4 {
		t.Fatalf("stats %+v", st)
	}
}

func TestShardedCarrierSenseDefersButSimultaneousCollides(t *testing.T) {
	cfg := DefaultShardedConfig()
	cfg.CarrierSense = true
	m := NewShardedMedium(1, cfg)
	nodes := map[NodeID]Position{0: {}, 1: {X: 100}, 2: {X: 200}}
	// 2 starts mid-way through 0's frame: it hears the channel busy and
	// defers; 0's frame is delivered untouched.
	m.Queue(ShardedTx{From: 0, Pos: nodes[0], Start: 100})
	m.Queue(ShardedTx{From: 2, Pos: nodes[2], Start: 200})
	var log outcomeLog
	resolveAll(m, nodes, &log)
	want := strings.Join([]string{
		"2@200->2 busy",
		"0@100->1 ok",
		"0@100->2 ok",
	}, "\n")
	if log.String() != want {
		t.Fatalf("outcomes:\n%s\nwant:\n%s", log.String(), want)
	}
	if st := m.Stats(); st.Deferred != 1 || st.Sent != 1 {
		t.Fatalf("stats %+v", st)
	}
	// Simultaneous starts sit inside the CSMA vulnerability window: both
	// transmit and collide at every common receiver.
	m2 := NewShardedMedium(1, cfg)
	m2.Queue(ShardedTx{From: 0, Pos: nodes[0], Start: 100})
	m2.Queue(ShardedTx{From: 2, Pos: nodes[2], Start: 100})
	var log2 outcomeLog
	resolveAll(m2, nodes, &log2)
	if st := m2.Stats(); st.Deferred != 0 || st.Collisions == 0 {
		t.Fatalf("simultaneous-start stats %+v\n%s", st, log2.String())
	}
}

func TestShardedJamWindows(t *testing.T) {
	m := NewShardedMedium(1, DefaultShardedConfig())
	air := m.Config().Airtime
	nodes := map[NodeID]Position{0: {}, 1: {X: 100}}
	m.Jam(0, 1000, 10*air)
	if !m.Jammed(0, 1000) || m.Jammed(0, 1000+10*air) {
		t.Fatal("jam interval wrong")
	}
	// Extending never shortens.
	m.Jam(0, 2000, air)
	if !m.Jammed(0, 1000+9*air) {
		t.Fatal("jam shortened by a smaller extension")
	}
	// A frame overlapping the burst is dropped; one after it is fine.
	m.Queue(ShardedTx{From: 0, Pos: nodes[0], Start: 1000})
	m.Queue(ShardedTx{From: 0, Pos: nodes[0], Start: 1000 + 20*air})
	var log outcomeLog
	resolveAll(m, nodes, &log)
	want := "0@1000->1 jam\n0@9000->1 ok"
	if log.String() != want {
		t.Fatalf("outcomes:\n%s\nwant:\n%s", log.String(), want)
	}
	// JamAll covers every channel.
	cfg := DefaultShardedConfig()
	cfg.Channels = 3
	m2 := NewShardedMedium(1, cfg)
	m2.JamAll(0, 100)
	for c := 0; c < 3; c++ {
		if !m2.Jammed(c, 50) {
			t.Fatalf("channel %d not jammed by JamAll", c)
		}
	}
}

func TestShardedChannelsPartitionAirtimeNotAudience(t *testing.T) {
	cfg := DefaultShardedConfig()
	cfg.Channels = 2
	m := NewShardedMedium(1, cfg)
	nodes := map[NodeID]Position{0: {}, 1: {X: 100}, 2: {X: 200}}
	// Same slot, different channels: no collision, and the wideband
	// receiver hears both frames.
	m.Queue(ShardedTx{From: 0, Pos: nodes[0], Start: 100, Channel: 0})
	m.Queue(ShardedTx{From: 2, Pos: nodes[2], Start: 100, Channel: 1})
	var log outcomeLog
	resolveAll(m, nodes, &log)
	if strings.Contains(log.String(), "collision") {
		t.Fatalf("orthogonal channels collided:\n%s", log)
	}
	if st := m.Stats(); st.Delivered != 4 {
		t.Fatalf("stats %+v", st)
	}
	// Jam on channel 0 leaves channel 1 alive.
	m.Jam(0, 1000, 1000)
	m.Queue(ShardedTx{From: 0, Pos: nodes[0], Start: 1200, Channel: 0})
	m.Queue(ShardedTx{From: 2, Pos: nodes[2], Start: 1200, Channel: 1})
	var log2 outcomeLog
	resolveAll(m, nodes, &log2)
	if !strings.Contains(log2.String(), "0@1200->1 jam") || !strings.Contains(log2.String(), "2@1200->1 ok") {
		t.Fatalf("per-channel jam wrong:\n%s", log2)
	}
}

func TestShardedLossFromPerReceiverStreams(t *testing.T) {
	cfg := DefaultShardedConfig()
	cfg.LossProb = 0.5
	run := func(seed int64) string {
		m := NewShardedMedium(seed, cfg)
		nodes := map[NodeID]Position{0: {}, 1: {X: 100}, 2: {X: 200}}
		var log outcomeLog
		for i := 0; i < 20; i++ {
			m.Queue(ShardedTx{From: 0, Pos: nodes[0], Start: sim.Time(1 + i*1000)})
			resolveAll(m, nodes, &log)
		}
		return log.String()
	}
	a, b := run(7), run(7)
	if a != b {
		t.Fatal("same seed produced different loss draws")
	}
	if run(8) == a {
		t.Fatal("different seeds produced identical loss draws")
	}
	if !strings.Contains(a, "loss") || !strings.Contains(a, "ok") {
		t.Fatalf("p=0.5 produced a degenerate outcome mix:\n%s", a)
	}
}

func TestShardedCustomDistance(t *testing.T) {
	// Ring metric: 10 and 1990 on a 2000 m ring are 20 m apart.
	cfg := DefaultShardedConfig()
	cfg.Distance = func(a, b Position) float64 {
		d := math.Abs(a.X - b.X)
		if d > 1000 {
			d = 2000 - d
		}
		return d
	}
	m := NewShardedMedium(1, cfg)
	nodes := map[NodeID]Position{0: {X: 10}, 1: {X: 1990}}
	m.Queue(ShardedTx{From: 0, Pos: nodes[0], Start: 100})
	var log outcomeLog
	resolveAll(m, nodes, &log)
	if log.String() != "0@100->1 ok" {
		t.Fatalf("ring metric ignored:\n%s", log)
	}
}

func TestShardedQueueUnknownChannelPanics(t *testing.T) {
	m := NewShardedMedium(1, DefaultShardedConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("queueing on a nonexistent channel did not panic")
		}
	}()
	m.Queue(ShardedTx{From: 0, Channel: 3})
}

// TestShardedMediumMatchesLegacyMedium is the satellite property test: at
// width 1 the sharded medium must reproduce the legacy kernel-driven
// Medium's delivery/collision decisions event-for-event on the same frame
// schedule — same outcomes, same (frame, receiver) order. Loss stays off:
// the legacy medium draws loss from the kernel rng, which is exactly the
// interleaving dependence the sharded medium exists to remove.
func TestShardedMediumMatchesLegacyMedium(t *testing.T) {
	positions := []Position{{X: 0}, {X: 150}, {X: 290}, {X: 310}, {X: 600}, {X: 620}}
	type txSpec struct {
		at     sim.Time
		sender NodeID
	}
	air := 400 * sim.Microsecond
	// Frames grouped into the 5 ms windows the sharded side resolves at —
	// the worlds' discipline: a frame's airtime fits its window, jams are
	// injected at barriers, each window resolves at its closing edge.
	windows := [][]txSpec{{
		{at: 1 * sim.Millisecond, sender: 0},       // clean broadcast
		{at: 2 * sim.Millisecond, sender: 1},       // clean
		{at: 3 * sim.Millisecond, sender: 0},       // overlap pair...
		{at: 3*sim.Millisecond + air/2, sender: 3}, // ...collides where both audible
		{at: 4 * sim.Millisecond, sender: 4},       // far cluster, clean
	}, {
		{at: 5*sim.Millisecond + air/4, sender: 2}, // inside the first jam burst
		{at: 8 * sim.Millisecond, sender: 1},       // simultaneous pair...
		{at: 8 * sim.Millisecond, sender: 5},       // ...resolved in sender order
		{at: 9 * sim.Millisecond, sender: 3},       // back-to-back with next
		{at: 9*sim.Millisecond + air, sender: 2},   // touches, must not collide
	}, {
		{at: 10*sim.Millisecond + air, sender: 0}, // inside the second burst
	}}
	jamAt, jamFor := 10*sim.Millisecond, 2*sim.Millisecond
	firstJamAt := 5 * sim.Millisecond

	// Legacy: kernel-driven medium with radios attached. Outcomes are
	// logged as "(receiver, outcome)" pairs; each frame's completion emits
	// one pair per other radio in receiver-id order, and completions run
	// in (start, sender) order — the broadcasts are scheduled in that
	// order, so equal completion instants keep it — which is exactly the
	// sharded medium's resolution order. A flat sequence match is
	// therefore an event-for-event match.
	k := sim.NewKernel(1)
	lcfg := DefaultConfig()
	lcfg.Airtime = air
	legacy := NewMedium(k, lcfg)
	var legacyLog []string
	for i, p := range positions {
		r, err := legacy.Attach(NodeID(i), p)
		if err != nil {
			t.Fatal(err)
		}
		to := NodeID(i)
		r.OnReceive(func(Frame) {
			legacyLog = append(legacyLog, fmt.Sprintf("->%d ok", to))
		})
	}
	legacy.SetDropObserver(func(to NodeID, reason DropReason) {
		legacyLog = append(legacyLog, fmt.Sprintf("->%d %s", to, reason))
	})
	for _, window := range windows {
		// Windows arrive in time order; simultaneous frames are listed in
		// sender order, so completions match the sharded (start, sender)
		// resolution order.
		for _, spec := range window {
			spec := spec
			k.At(spec.at, func() { legacy.radios.get(spec.sender).Broadcast("b") })
		}
	}
	k.At(firstJamAt, func() { legacy.Jam(0, jamFor) })
	k.At(jamAt, func() { legacy.Jam(0, jamFor) })
	k.RunFor(20 * sim.Millisecond)

	// Sharded: the same frames queued window by window, with the jam
	// injections at the barriers between, exactly as the worlds drive it.
	scfg := DefaultShardedConfig()
	scfg.Airtime = air
	sm := NewShardedMedium(1, scfg)
	var shardedLog []string
	resolveWindow := func(specs []txSpec) {
		for _, spec := range specs {
			sm.Queue(ShardedTx{From: spec.sender, Pos: positions[spec.sender], Start: spec.at})
		}
		sm.Resolve(func(tx *ShardedTx, visit func(NodeID, Position)) {
			for i, p := range positions {
				visit(NodeID(i), p)
			}
		}, func(tx *ShardedTx, to NodeID) {
			shardedLog = append(shardedLog, fmt.Sprintf("->%d ok", to))
		}, func(tx *ShardedTx, to NodeID, r DropReason) {
			shardedLog = append(shardedLog, fmt.Sprintf("->%d %s", to, r))
		})
	}
	resolveWindow(windows[0])
	sm.Jam(0, firstJamAt, jamFor)
	resolveWindow(windows[1])
	sm.Jam(0, jamAt, jamFor)
	resolveWindow(windows[2])

	want := strings.Join(legacyLog, "\n")
	if got := strings.Join(shardedLog, "\n"); got != want {
		t.Fatalf("sharded medium diverged from the legacy medium:\nlegacy:\n%s\nsharded:\n%s", want, got)
	}
	// The schedule must actually exercise every decision class.
	for _, outcome := range []string{"ok", "collision", "jam", "range"} {
		if !strings.Contains(want, outcome) {
			t.Fatalf("schedule never produced a %q outcome:\n%s", outcome, want)
		}
	}
}
