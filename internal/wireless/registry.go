package wireless

import "sort"

// registry is the set of radios attached to one Medium. Each Medium owns
// exactly one registry — there is no process-global radio table — so the
// per-frame delivery loop touches only the radios of that medium's
// kernel. (The partitioned worlds keep their own sorted position
// snapshots per shard and do not attach radios at all; the same
// sorted-slice idiom serves both.)
//
// Radios are kept in a slice sorted by id. The delivery hot path
// (Medium.complete) iterates the slice directly: the previous map-backed
// design rebuilt and sorted an id slice for every frame, which the ROADMAP
// flagged as the medium's dominant per-frame cost.
type registry struct {
	list  []*Radio
	index map[NodeID]int
}

func newRegistry() *registry {
	return &registry{index: make(map[NodeID]int)}
}

// len returns the number of attached radios.
func (g *registry) len() int { return len(g.list) }

// get returns the radio with the given id, or nil.
func (g *registry) get(id NodeID) *Radio {
	at, ok := g.index[id]
	if !ok {
		return nil
	}
	return g.list[at]
}

// add inserts r keeping the slice sorted by id. It reports false when the
// id is already attached.
func (g *registry) add(r *Radio) bool {
	if _, dup := g.index[r.id]; dup {
		return false
	}
	at := sort.Search(len(g.list), func(i int) bool { return g.list[i].id >= r.id })
	g.list = append(g.list, nil)
	copy(g.list[at+1:], g.list[at:])
	g.list[at] = r
	for i := at; i < len(g.list); i++ {
		g.index[g.list[i].id] = i
	}
	return true
}

// remove detaches the radio with the given id; unknown ids are ignored.
func (g *registry) remove(id NodeID) {
	at, ok := g.index[id]
	if !ok {
		return
	}
	copy(g.list[at:], g.list[at+1:])
	g.list[len(g.list)-1] = nil
	g.list = g.list[:len(g.list)-1]
	delete(g.index, id)
	for i := at; i < len(g.list); i++ {
		g.index[g.list[i].id] = i
	}
}
