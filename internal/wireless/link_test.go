package wireless

import (
	"testing"
	"testing/quick"

	"karyon/internal/sim"
)

func TestLinkDelivers(t *testing.T) {
	k := sim.NewKernel(1)
	var got []any
	l := NewLink(k, LinkConfig{Delay: 5 * sim.Millisecond}, func(p any) {
		got = append(got, p)
	})
	l.Send("a")
	l.Send("b")
	k.RunUntilIdle()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("got %v", got)
	}
	if k.Now() != 5*sim.Millisecond {
		t.Fatalf("delivery time %v", k.Now())
	}
	if s := l.Stats(); s.Sent != 2 || s.Delivered != 2 {
		t.Fatalf("stats %+v", s)
	}
}

func TestLinkLoss(t *testing.T) {
	k := sim.NewKernel(2)
	got := 0
	l := NewLink(k, LinkConfig{LossProb: 1}, func(any) { got++ })
	for i := 0; i < 10; i++ {
		l.Send(i)
	}
	k.RunUntilIdle()
	if got != 0 {
		t.Fatalf("lossy link delivered %d", got)
	}
	if l.Stats().Dropped != 10 {
		t.Fatalf("stats %+v", l.Stats())
	}
}

func TestLinkDuplication(t *testing.T) {
	k := sim.NewKernel(3)
	got := 0
	l := NewLink(k, LinkConfig{DupProb: 1}, func(any) { got++ })
	l.Send("x")
	k.RunUntilIdle()
	if got != 2 {
		t.Fatalf("dup link delivered %d, want 2", got)
	}
	if l.Stats().Duplicated != 1 {
		t.Fatalf("stats %+v", l.Stats())
	}
}

func TestLinkReordering(t *testing.T) {
	k := sim.NewKernel(4)
	var got []any
	cfg := LinkConfig{Delay: sim.Millisecond, ReorderProb: 0, ReorderDelay: 10 * sim.Millisecond}
	l := NewLink(k, cfg, func(p any) { got = append(got, p) })
	// Manually force reorder on the first packet only by toggling config.
	l.cfg.ReorderProb = 1
	l.Send("late")
	l.cfg.ReorderProb = 0
	l.Send("early")
	k.RunUntilIdle()
	if len(got) != 2 || got[0] != "early" || got[1] != "late" {
		t.Fatalf("got %v, want [early late]", got)
	}
	if l.Stats().Reordered != 1 {
		t.Fatalf("stats %+v", l.Stats())
	}
}

func TestLinkCapacity(t *testing.T) {
	k := sim.NewKernel(5)
	got := 0
	l := NewLink(k, LinkConfig{Delay: sim.Millisecond, Capacity: 2}, func(any) { got++ })
	l.Send(1)
	l.Send(2)
	l.Send(3) // overflows
	if l.InFlight() != 2 {
		t.Fatalf("InFlight = %d", l.InFlight())
	}
	k.RunUntilIdle()
	if got != 2 {
		t.Fatalf("delivered %d, want 2", got)
	}
	if l.Stats().Overflowed != 1 {
		t.Fatalf("stats %+v", l.Stats())
	}
	// Capacity frees after delivery.
	l.Send(4)
	k.RunUntilIdle()
	if got != 3 {
		t.Fatalf("post-drain send not delivered: %d", got)
	}
}

func TestLinkJitterBounded(t *testing.T) {
	k := sim.NewKernel(6)
	var times []sim.Time
	cfg := LinkConfig{Delay: sim.Millisecond, Jitter: 2 * sim.Millisecond}
	l := NewLink(k, cfg, func(any) { times = append(times, k.Now()) })
	for i := 0; i < 100; i++ {
		l.Send(i)
	}
	k.RunUntilIdle()
	for _, at := range times {
		if at < sim.Millisecond || at > 3*sim.Millisecond {
			t.Fatalf("delivery at %v outside [1ms,3ms]", at)
		}
	}
}

func TestBusBroadcast(t *testing.T) {
	k := sim.NewKernel(7)
	b := NewBus(k, 100*sim.Microsecond)
	var got []NodeID
	for _, id := range []NodeID{3, 1, 2} {
		id := id
		b.Attach(id, func(from NodeID, payload any) {
			if from != 9 || payload != "m" {
				t.Errorf("bad delivery from=%d payload=%v", from, payload)
			}
			got = append(got, id)
		})
	}
	b.Attach(9, func(NodeID, any) { t.Error("sender received own message") })
	b.Broadcast(9, "m")
	k.RunUntilIdle()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("delivery order = %v, want [1 2 3]", got)
	}
	if b.Delivered() != 3 {
		t.Fatalf("Delivered = %d", b.Delivered())
	}
}

func TestBusDetach(t *testing.T) {
	k := sim.NewKernel(8)
	b := NewBus(k, sim.Microsecond)
	got := 0
	b.Attach(1, func(NodeID, any) { got++ })
	b.Attach(2, func(NodeID, any) {})
	b.Detach(1)
	b.Broadcast(2, "x")
	k.RunUntilIdle()
	if got != 0 {
		t.Fatal("detached endpoint received")
	}
}

// Property: link accounting conserves packets — every send is eventually
// delivered, dropped, or rejected for capacity, and duplicates add at
// most one delivery each.
func TestPropertyLinkConservation(t *testing.T) {
	f := func(seed int64, lossPct, dupPct uint8) bool {
		k := sim.NewKernel(seed)
		cfg := LinkConfig{
			Delay:    sim.Millisecond,
			LossProb: float64(lossPct%100) / 100,
			DupProb:  float64(dupPct%100) / 100,
			Capacity: 4,
		}
		delivered := 0
		l := NewLink(k, cfg, func(any) { delivered++ })
		n := 200
		for i := 0; i < n; i++ {
			k.Schedule(sim.Time(i)*2*sim.Millisecond, func() { l.Send(i) })
		}
		k.RunUntilIdle()
		s := l.Stats()
		if s.Sent != int64(n) {
			return false
		}
		if int64(delivered) != s.Delivered {
			return false
		}
		// delivered = sent - dropped - overflowed + duplicated
		want := s.Sent - s.Dropped - s.Overflowed + s.Duplicated
		return s.Delivered == want && l.InFlight() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
