package wireless

import (
	"testing"

	"karyon/internal/sim"
)

// TestResolveAllocs locks the lockstep barrier resolution to zero
// steady-state allocations: once the pending slice and the reusable
// visit closure have hit their high-water marks, queueing and resolving
// a full window's frame set must not allocate. The delivery loop hands
// every frame to a medium-owned closure (not a fresh one per frame), and
// the pending buffer is recycled across barriers, so any regression here
// is a new escape on the per-(frame, receiver) path.
func TestResolveAllocs(t *testing.T) {
	cfg := DefaultShardedConfig()
	cfg.Range = 300
	m := NewShardedMedium(7, cfg)

	const nodes = 16
	pos := make([]Position, nodes)
	for i := range pos {
		pos[i] = Position{X: float64(i) * 40}
	}
	// Frames spaced one airtime apart so every frame goes on air (no
	// collisions to shortcut the receiver walk).
	queue := func(now sim.Time) {
		for i := 0; i < nodes; i++ {
			m.Queue(ShardedTx{
				From:  NodeID(i),
				Pos:   pos[i],
				Start: now + sim.Time(i)*cfg.Airtime,
			})
		}
	}
	each := func(tx *ShardedTx, visit func(to NodeID, pos Position)) {
		for i := 0; i < nodes; i++ {
			visit(NodeID(i), pos[i])
		}
	}
	deliver := func(tx *ShardedTx, to NodeID) {}
	drop := func(tx *ShardedTx, to NodeID, reason DropReason) {}

	now := sim.Time(0)
	window := sim.Time(nodes) * cfg.Airtime
	// Warmup: grow pending/onAir to their high-water marks and build the
	// medium's reusable visit closure.
	for r := 0; r < 3; r++ {
		queue(now)
		m.Resolve(each, deliver, drop)
		now += window
	}
	per := testing.AllocsPerRun(10, func() {
		queue(now)
		m.Resolve(each, deliver, drop)
		now += window
	})
	if per > 0 {
		t.Errorf("queue+resolve of %d frames: %.1f allocs, want 0", nodes, per)
	}
	if got := m.Stats().Delivered; got == 0 {
		t.Fatal("no frames delivered — the probe is not exercising the delivery path")
	}
}
