package wireless

import (
	"sort"

	"karyon/internal/sim"
	"karyon/internal/trace"
)

// EncodeState appends the sharded-medium checkpoint to e for the
// record/replay trace. The per-receiver stream states come out of a map,
// so the trace form sorts them by node ID for deterministic bytes.
func (st *ShardedMediumState) EncodeState(e *trace.Enc) {
	e.I64(st.stats.Queued)
	e.I64(st.stats.Sent)
	e.I64(st.stats.Deferred)
	e.I64(st.stats.Delivered)
	e.I64(st.stats.Collisions)
	e.I64(st.stats.Losses)
	e.I64(st.stats.Jammed)
	e.I64(st.stats.OutOfRange)
	e.I64(st.stats.Retries)
	e.I64(st.stats.ResolvedLocal)
	e.I64(st.stats.ResolvedBoundary)
	e.U32(uint32(len(st.jamStart)))
	for _, t := range st.jamStart {
		e.I64(int64(t))
	}
	e.U32(uint32(len(st.jamUntil)))
	for _, t := range st.jamUntil {
		e.I64(int64(t))
	}
	ids := make([]NodeID, 0, len(st.rx))
	for id := range st.rx {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	e.U32(uint32(len(ids)))
	for _, id := range ids {
		e.I64(int64(id))
		e.U64(st.rx[id])
	}
}

// DecodeState reads a medium checkpoint written by EncodeState. The
// restore target must have its receiver streams primed (see Prime) for
// every node the checkpoint names.
func (st *ShardedMediumState) DecodeState(d *trace.Dec) {
	st.stats.Queued = d.I64()
	st.stats.Sent = d.I64()
	st.stats.Deferred = d.I64()
	st.stats.Delivered = d.I64()
	st.stats.Collisions = d.I64()
	st.stats.Losses = d.I64()
	st.stats.Jammed = d.I64()
	st.stats.OutOfRange = d.I64()
	st.stats.Retries = d.I64()
	st.stats.ResolvedLocal = d.I64()
	st.stats.ResolvedBoundary = d.I64()
	st.jamStart = st.jamStart[:0]
	for i, n := 0, d.Count(8); i < n && d.Err() == nil; i++ {
		st.jamStart = append(st.jamStart, sim.Time(d.I64()))
	}
	st.jamUntil = st.jamUntil[:0]
	for i, n := 0, d.Count(8); i < n && d.Err() == nil; i++ {
		st.jamUntil = append(st.jamUntil, sim.Time(d.I64()))
	}
	if st.rx == nil {
		st.rx = map[NodeID]uint64{}
	}
	clear(st.rx)
	for i, n := 0, d.Count(16); i < n && d.Err() == nil; i++ {
		id := NodeID(d.I64())
		st.rx[id] = d.U64()
	}
}
