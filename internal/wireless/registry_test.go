package wireless

import (
	"testing"

	"karyon/internal/sim"
)

// The registry must keep radios sorted by id through arbitrary
// attach/detach orders, so frame delivery stays deterministic.
func TestRegistrySortedThroughChurn(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewMedium(k, DefaultConfig())
	for _, id := range []NodeID{5, 1, 9, 3, 7} {
		if _, err := m.Attach(id, Position{X: float64(id)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Attach(3, Position{}); err == nil {
		t.Fatal("duplicate attach accepted")
	}
	m.Detach(5)
	m.Detach(42) // unknown: ignored
	want := []NodeID{1, 3, 7, 9}
	if got := m.radios.len(); got != len(want) {
		t.Fatalf("len = %d, want %d", got, len(want))
	}
	for i, r := range m.radios.list {
		if r.id != want[i] {
			t.Fatalf("list[%d] = %d, want %d", i, r.id, want[i])
		}
		if m.radios.get(want[i]) != r {
			t.Fatalf("get(%d) mismatch", want[i])
		}
	}
	if m.radios.get(5) != nil {
		t.Fatal("detached radio still resolvable")
	}
}

// Delivery order after churn follows ascending id, exercising the
// registry-backed hot path end to end.
func TestRegistryDeliveryOrder(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewMedium(k, DefaultConfig())
	var order []NodeID
	for _, id := range []NodeID{4, 2, 8, 6} {
		r, err := m.Attach(id, Position{X: float64(id)})
		if err != nil {
			t.Fatal(err)
		}
		id := id
		r.OnReceive(func(Frame) { order = append(order, id) })
	}
	m.Detach(6)
	sender := m.radios.get(2)
	sender.Broadcast("hello")
	k.RunUntilIdle()
	want := []NodeID{4, 8}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
