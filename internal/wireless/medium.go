// Package wireless simulates the communication substrates KARYON runs on:
// a shared broadcast radio medium with range, propagation delay, airtime,
// probabilistic loss, slot-level collisions and injectable interference
// (the source of the paper's "network inaccessibility" periods), plus a
// reliable prioritized local bus standing in for the CAN field bus and
// simple lossy point-to-point links for protocol studies.
package wireless

import (
	"fmt"
	"math"

	"karyon/internal/sim"
)

// NodeID identifies a radio or bus endpoint.
type NodeID int

// Position is a location in meters.
type Position struct {
	X float64
	Y float64
	Z float64
}

// Distance returns the Euclidean distance between two positions.
func (p Position) Distance(q Position) float64 {
	dx, dy, dz := p.X-q.X, p.Y-q.Y, p.Z-q.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// Frame is what radios exchange. Payload is opaque to the medium.
type Frame struct {
	From    NodeID
	Channel int
	Payload any
	// SentAt is stamped by the medium when transmission starts.
	SentAt sim.Time
}

// DropReason classifies why a frame was not delivered to a receiver.
type DropReason int

// Drop reasons.
const (
	DropLoss DropReason = iota + 1
	DropCollision
	DropJam
	DropOutOfRange
	// DropBusy is a carrier-sense deferral on the sharded medium: the
	// sender heard the slot occupied and skipped the frame entirely.
	DropBusy
)

// String returns a short label for the drop reason.
func (r DropReason) String() string {
	switch r {
	case DropLoss:
		return "loss"
	case DropCollision:
		return "collision"
	case DropJam:
		return "jam"
	case DropOutOfRange:
		return "range"
	case DropBusy:
		return "busy"
	default:
		return "unknown"
	}
}

// Stats aggregates medium-level delivery accounting.
type Stats struct {
	Sent       int64
	Delivered  int64
	Collisions int64
	Losses     int64
	Jammed     int64
}

// Config parameterizes a Medium.
type Config struct {
	// Range is the radio range in meters.
	Range float64
	// Airtime is how long one frame occupies the channel.
	Airtime sim.Time
	// PropDelay is the fixed propagation delay added after airtime.
	PropDelay sim.Time
	// LossProb is the independent per-receiver frame loss probability.
	LossProb float64
	// Channels is the number of orthogonal radio channels (≥1).
	Channels int
}

// DefaultConfig returns parameters resembling a short 802.11p-class frame.
func DefaultConfig() Config {
	return Config{
		Range:     300,
		Airtime:   400 * sim.Microsecond, // ~300 B at 6 Mb/s
		PropDelay: 1 * sim.Microsecond,
		LossProb:  0,
		Channels:  1,
	}
}

// transmission is one in-flight frame occupying the medium.
type transmission struct {
	frame Frame
	from  *Radio
	start sim.Time
	end   sim.Time
}

// Medium is a shared broadcast radio channel set. Not safe for concurrent
// use; the simulation is single-threaded per kernel. It is the wire-level
// substrate of the protocol studies (mac, inaccess, coord, pubsub): it
// draws loss from the kernel's rng and decides collisions from the global
// set of in-flight transmissions, both of which depend on event
// interleaving — exactly what the partitioned worlds must not depend on.
// The sharded worlds therefore model V2V as snapshot-ranged mailbox
// delivery with per-entity loss streams instead of attaching radios here
// (see internal/world).
type Medium struct {
	kernel *sim.Kernel
	cfg    Config
	radios *registry
	active []*transmission
	// jamUntil[c] is the virtual time until which channel c is jammed;
	// jamStart[c] is when the current (or last) jam burst began.
	jamUntil []sim.Time
	jamStart []sim.Time
	stats    Stats
	// onDrop, if set, observes every per-receiver drop (for experiments).
	onDrop func(to NodeID, reason DropReason)
}

// NewMedium creates a medium over the kernel. Channels below 1 are clamped
// to 1.
func NewMedium(kernel *sim.Kernel, cfg Config) *Medium {
	if cfg.Channels < 1 {
		cfg.Channels = 1
	}
	return &Medium{
		kernel:   kernel,
		cfg:      cfg,
		radios:   newRegistry(),
		jamUntil: make([]sim.Time, cfg.Channels),
		jamStart: make([]sim.Time, cfg.Channels),
	}
}

// Config returns the medium configuration.
func (m *Medium) Config() Config { return m.cfg }

// Stats returns a copy of the delivery accounting so far.
func (m *Medium) Stats() Stats { return m.stats }

// SetDropObserver registers a callback invoked on every per-receiver drop.
func (m *Medium) SetDropObserver(fn func(to NodeID, reason DropReason)) {
	m.onDrop = fn
}

// Attach creates a radio for the node at pos, listening on channel 0.
// Attaching an already-attached id returns an error.
func (m *Medium) Attach(id NodeID, pos Position) (*Radio, error) {
	r := &Radio{id: id, medium: m, pos: pos}
	if !m.radios.add(r) {
		return nil, fmt.Errorf("wireless: node %d already attached", id)
	}
	return r, nil
}

// Detach removes the node's radio (e.g. a crashed node). Unknown ids are
// ignored.
func (m *Medium) Detach(id NodeID) {
	m.radios.remove(id)
}

// Jam marks channel as jammed for the next d units of virtual time,
// extending any ongoing jam. Frames whose reception window overlaps a jam
// are dropped and carrier sense reports busy — this is the external
// interference that produces inaccessibility periods (paper Sec. V-A1).
func (m *Medium) Jam(channel int, d sim.Time) {
	if channel < 0 || channel >= m.cfg.Channels {
		return
	}
	now := m.kernel.Now()
	if now >= m.jamUntil[channel] {
		// Previous burst (if any) has expired: this starts a new one.
		m.jamStart[channel] = now
	}
	if until := now + d; until > m.jamUntil[channel] {
		m.jamUntil[channel] = until
	}
}

// Jammed reports whether channel is currently jammed.
func (m *Medium) Jammed(channel int) bool {
	if channel < 0 || channel >= m.cfg.Channels {
		return false
	}
	return m.kernel.Now() < m.jamUntil[channel]
}

// CarrierBusy reports whether node id senses energy on channel: an ongoing
// in-range transmission (other than its own) or a jam.
func (m *Medium) CarrierBusy(id NodeID, channel int) bool {
	if m.Jammed(channel) {
		return true
	}
	r := m.radios.get(id)
	if r == nil {
		return false
	}
	now := m.kernel.Now()
	for _, tx := range m.active {
		// A transmission starting at this exact instant is not yet
		// detectable (the CSMA vulnerability window): energy needs the
		// propagation delay to reach the sensing radio.
		if tx.start+m.cfg.PropDelay > now {
			continue
		}
		if tx.end <= now || tx.frame.Channel != channel || tx.from.id == id {
			continue
		}
		if tx.from.pos.Distance(r.pos) <= m.cfg.Range {
			return true
		}
	}
	return false
}

// broadcast starts a transmission from r. Delivery to each in-range radio
// on the same channel happens at end-of-airtime + propagation delay, unless
// loss, collision or jam intervenes.
func (m *Medium) broadcast(r *Radio, channel int, payload any) {
	now := m.kernel.Now()
	tx := &transmission{
		frame: Frame{From: r.id, Channel: channel, Payload: payload, SentAt: now},
		from:  r,
		start: now,
		end:   now + m.cfg.Airtime,
	}
	m.active = append(m.active, tx)
	m.stats.Sent++
	m.kernel.At(tx.end+m.cfg.PropDelay, func() { m.complete(tx) })
}

// complete finishes a transmission: decides per-receiver outcomes and
// prunes the active list.
func (m *Medium) complete(tx *transmission) {
	// The registry slice is already sorted by id, so per-receiver outcomes
	// are decided in deterministic order with no per-frame allocation.
	for _, rx := range m.radios.list {
		id := rx.id
		if id == tx.from.id {
			continue
		}
		if rx.channel != tx.frame.Channel {
			continue
		}
		if tx.from.pos.Distance(rx.pos) > m.cfg.Range {
			m.drop(id, DropOutOfRange)
			continue
		}
		switch {
		case m.jamOverlaps(tx):
			m.stats.Jammed++
			m.drop(id, DropJam)
		case m.collides(tx, rx):
			m.stats.Collisions++
			m.drop(id, DropCollision)
		case m.cfg.LossProb > 0 && m.kernel.Rand().Float64() < m.cfg.LossProb:
			m.stats.Losses++
			m.drop(id, DropLoss)
		default:
			m.stats.Delivered++
			if rx.receive != nil {
				rx.receive(tx.frame)
			}
		}
	}
	// Prune transmissions whose completion instant has passed. Entries
	// completing exactly now are kept so that simultaneous transmissions
	// still see each other when their own complete() runs.
	now := m.kernel.Now()
	kept := m.active[:0]
	for _, a := range m.active {
		if a.end+m.cfg.PropDelay >= now {
			kept = append(kept, a)
		}
	}
	// Zero the tail so finished transmissions can be collected.
	for i := len(kept); i < len(m.active); i++ {
		m.active[i] = nil
	}
	m.active = kept
}

func (m *Medium) drop(to NodeID, reason DropReason) {
	if m.onDrop != nil {
		m.onDrop(to, reason)
	}
}

// jamOverlaps reports whether the transmission's on-air window [start,end)
// overlapped the channel's current jam burst [jamStart, jamUntil).
func (m *Medium) jamOverlaps(tx *transmission) bool {
	c := tx.frame.Channel
	if c < 0 || c >= len(m.jamUntil) {
		return false
	}
	if m.jamStart[c] >= m.jamUntil[c] {
		return false // empty burst (a zero-duration Jam) covers nothing
	}
	return m.jamStart[c] < tx.end && m.jamUntil[c] > tx.start
}

// collides reports whether another transmission audible at rx overlapped
// tx's airtime on the same channel.
func (m *Medium) collides(tx *transmission, rx *Radio) bool {
	for _, other := range m.active {
		if other == tx || other.frame.Channel != tx.frame.Channel {
			continue
		}
		if other.start < tx.end && tx.start < other.end {
			if other.from.pos.Distance(rx.pos) <= m.cfg.Range {
				return true
			}
		}
	}
	return false
}

// Radio is one node's interface to the medium.
type Radio struct {
	id      NodeID
	medium  *Medium
	pos     Position
	channel int
	receive func(Frame)
}

// ID returns the radio's node id.
func (r *Radio) ID() NodeID { return r.id }

// Position returns the radio's current position.
func (r *Radio) Position() Position { return r.pos }

// SetPosition moves the radio (vehicle mobility).
func (r *Radio) SetPosition(p Position) { r.pos = p }

// Channel returns the channel the radio listens on.
func (r *Radio) Channel() int { return r.channel }

// SetChannel retunes the radio. Out-of-range channels are clamped.
func (r *Radio) SetChannel(c int) {
	if c < 0 {
		c = 0
	}
	if c >= r.medium.cfg.Channels {
		c = r.medium.cfg.Channels - 1
	}
	r.channel = c
}

// OnReceive registers the frame delivery handler.
func (r *Radio) OnReceive(fn func(Frame)) { r.receive = fn }

// Broadcast transmits payload on the radio's current channel.
func (r *Radio) Broadcast(payload any) {
	r.medium.broadcast(r, r.channel, payload)
}

// BroadcastOn transmits payload on a specific channel without retuning the
// receiver.
func (r *Radio) BroadcastOn(channel int, payload any) {
	if channel < 0 || channel >= r.medium.cfg.Channels {
		channel = r.channel
	}
	r.medium.broadcast(r, channel, payload)
}

// CarrierBusy reports whether the radio senses energy on its channel.
func (r *Radio) CarrierBusy() bool {
	return r.medium.CarrierBusy(r.id, r.channel)
}

// Neighbors returns the ids of radios currently within range, in
// ascending id order.
func (r *Radio) Neighbors() []NodeID {
	var out []NodeID
	for _, other := range r.medium.radios.list {
		if other.id == r.id {
			continue
		}
		if r.pos.Distance(other.pos) <= r.medium.cfg.Range {
			out = append(out, other.id)
		}
	}
	return out
}
