package wireless

import (
	"karyon/internal/sim"
)

// Link is a unidirectional point-to-point channel with configurable loss,
// duplication, reordering and bounded capacity. It is the adversarial
// channel model of Dolev et al. [12] used by the self-stabilizing
// end-to-end experiments, and a convenient building block for protocol
// unit tests.
type Link struct {
	kernel *sim.Kernel
	cfg    LinkConfig
	// inFlight counts packets currently queued for delivery (capacity).
	inFlight int
	deliver  func(payload any)
	stats    LinkStats
}

// LinkConfig parameterizes a Link.
type LinkConfig struct {
	// Delay is the base one-way delay.
	Delay sim.Time
	// Jitter adds a uniform random extra delay in [0, Jitter].
	Jitter sim.Time
	// LossProb drops a packet entirely.
	LossProb float64
	// DupProb delivers a packet twice.
	DupProb float64
	// ReorderProb delivers a packet with an extra random delay, letting
	// later packets overtake it.
	ReorderProb float64
	// ReorderDelay is the extra delay applied to reordered packets.
	ReorderDelay sim.Time
	// Capacity bounds the number of in-flight packets; sends beyond it are
	// dropped (bounded-capacity channel). Zero means unbounded.
	Capacity int
}

// LinkStats counts link-level outcomes.
type LinkStats struct {
	Sent       int64
	Delivered  int64
	Dropped    int64
	Duplicated int64
	Reordered  int64
	Overflowed int64
}

// NewLink creates a link over the kernel delivering to fn.
func NewLink(kernel *sim.Kernel, cfg LinkConfig, fn func(payload any)) *Link {
	return &Link{kernel: kernel, cfg: cfg, deliver: fn}
}

// Stats returns a copy of the link statistics.
func (l *Link) Stats() LinkStats { return l.stats }

// InFlight returns the current number of queued packets.
func (l *Link) InFlight() int { return l.inFlight }

// Send offers payload to the link. Depending on configuration it may be
// lost, duplicated, reordered or rejected for capacity.
func (l *Link) Send(payload any) {
	l.stats.Sent++
	if l.cfg.Capacity > 0 && l.inFlight >= l.cfg.Capacity {
		l.stats.Overflowed++
		return
	}
	rng := l.kernel.Rand()
	if l.cfg.LossProb > 0 && rng.Float64() < l.cfg.LossProb {
		l.stats.Dropped++
		return
	}
	n := 1
	if l.cfg.DupProb > 0 && rng.Float64() < l.cfg.DupProb {
		n = 2
		l.stats.Duplicated++
	}
	for i := 0; i < n; i++ {
		d := l.cfg.Delay
		if l.cfg.Jitter > 0 {
			d += sim.Time(rng.Int63n(int64(l.cfg.Jitter) + 1))
		}
		if l.cfg.ReorderProb > 0 && rng.Float64() < l.cfg.ReorderProb {
			d += l.cfg.ReorderDelay
			l.stats.Reordered++
		}
		l.inFlight++
		l.kernel.Schedule(d, func() {
			l.inFlight--
			l.stats.Delivered++
			l.deliver(payload)
		})
	}
}

// Bus is a reliable broadcast bus with a fixed delivery delay — the
// stand-in for the CAN field bus below KARYON's hybridization line. All
// attached endpoints except the sender receive every message, in order,
// after Delay. The zero value is not usable; construct with NewBus.
type Bus struct {
	kernel    *sim.Kernel
	delay     sim.Time
	handlers  map[NodeID]func(from NodeID, payload any)
	delivered int64
}

// NewBus creates a bus with the given fixed delivery delay.
func NewBus(kernel *sim.Kernel, delay sim.Time) *Bus {
	return &Bus{
		kernel:   kernel,
		delay:    delay,
		handlers: make(map[NodeID]func(from NodeID, payload any)),
	}
}

// Attach registers an endpoint handler. Re-attaching replaces the handler.
func (b *Bus) Attach(id NodeID, fn func(from NodeID, payload any)) {
	b.handlers[id] = fn
}

// Detach removes an endpoint.
func (b *Bus) Detach(id NodeID) {
	delete(b.handlers, id)
}

// Delivered returns the total number of per-endpoint deliveries.
func (b *Bus) Delivered() int64 { return b.delivered }

// Broadcast sends payload from the given endpoint to all other endpoints.
func (b *Bus) Broadcast(from NodeID, payload any) {
	// Snapshot receiver ids for deterministic iteration independent of map
	// mutation during delivery.
	ids := make([]NodeID, 0, len(b.handlers))
	for id := range b.handlers {
		if id != from {
			ids = append(ids, id)
		}
	}
	sortNodeIDs(ids)
	b.kernel.Schedule(b.delay, func() {
		for _, id := range ids {
			if fn, ok := b.handlers[id]; ok {
				b.delivered++
				fn(from, payload)
			}
		}
	})
}

func sortNodeIDs(ids []NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
