package wireless

import (
	"fmt"
	"strings"
	"testing"

	"karyon/internal/sim"
)

// FuzzShardedMediumOverlap drives the interval math the collision and jam
// decisions rest on: airtime overlap must be symmetric and agree with the
// brute half-open-interval intersection, and jamOverlaps must agree with
// the same predicate against the injected burst.
func FuzzShardedMediumOverlap(f *testing.F) {
	f.Add(int64(0), int64(200), uint16(400), int64(100), int64(300))
	f.Add(int64(1000), int64(1000), uint16(1), int64(0), int64(0))
	f.Add(int64(5), int64(405), uint16(400), int64(400), int64(10))
	f.Fuzz(func(t *testing.T, s1, s2 int64, airRaw uint16, jamAt, jamFor int64) {
		air := sim.Time(airRaw%5000) + 1
		norm := func(v int64) sim.Time {
			if v < 0 {
				v = -v
			}
			return sim.Time(v % 1_000_000)
		}
		a := ShardedTx{From: 0, Start: norm(s1)}
		b := ShardedTx{From: 1, Start: norm(s2)}
		brute := func(s1, e1, s2, e2 sim.Time) bool {
			lo, hi := s1, e1
			if s2 > lo {
				lo = s2
			}
			if e2 < hi {
				hi = e2
			}
			return lo < hi
		}
		if airtimesOverlap(&a, &b, air) != airtimesOverlap(&b, &a, air) {
			t.Fatalf("overlap not symmetric: a=%d b=%d air=%d", a.Start, b.Start, air)
		}
		if got, want := airtimesOverlap(&a, &b, air), brute(a.Start, a.end(air), b.Start, b.end(air)); got != want {
			t.Fatalf("overlap(%d,%d air=%d) = %v, brute = %v", a.Start, b.Start, air, got, want)
		}
		cfg := DefaultShardedConfig()
		cfg.Airtime = air
		m := NewShardedMedium(1, cfg)
		start, dur := norm(jamAt), norm(jamFor)
		m.Jam(0, start, dur)
		if got, want := m.jamOverlaps(&a), brute(a.Start, a.end(air), start, start+dur); got != want {
			t.Fatalf("jamOverlaps(start=%d air=%d) vs burst [%d,%d) = %v, brute = %v",
				a.Start, air, start, start+dur, got, want)
		}
		// Jammed must be the point version of the same interval.
		for _, at := range []sim.Time{start, start + dur/2, start + dur} {
			if got, want := m.Jammed(0, at), at >= start && at < start+dur; got != want {
				t.Fatalf("Jammed(%d) vs burst [%d,%d) = %v, want %v", at, start, start+dur, got, want)
			}
		}
	})
}

// FuzzShardedMediumQueueOrderInvariance locks the determinism contract:
// the resolved outcome log is a pure function of the frame set, never of
// the order frames were queued in — which is what makes the medium safe to
// feed from per-shard mailboxes at any width.
func FuzzShardedMediumQueueOrderInvariance(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, int64(1))
	f.Add([]byte{200, 0, 200, 0, 9, 9, 9, 9, 40, 41, 42}, int64(7))
	f.Fuzz(func(t *testing.T, raw []byte, seed int64) {
		if len(raw) < 4 {
			return
		}
		cfg := DefaultShardedConfig()
		cfg.LossProb = 0.3
		cfg.Channels = 1 + int(raw[0]%3)
		cfg.CarrierSense = raw[1]%2 == 0
		n := 2 + int(raw[2]%14)
		frames := make([]ShardedTx, 0, n)
		pos := make(map[NodeID]Position, n)
		for i := 0; i < n; i++ {
			b := func(k int) int64 { return int64(raw[(3+i*3+k)%len(raw)]) }
			p := Position{X: float64(b(0)) * 7}
			frames = append(frames, ShardedTx{
				From:    NodeID(i), // unique sender per frame: the sort key is total
				Channel: int(b(1)) % cfg.Channels,
				Pos:     p,
				Start:   sim.Time(b(2) * 37 % 4000),
			})
			pos[NodeID(i)] = p
		}
		run := func(order []ShardedTx) string {
			m := NewShardedMedium(seed, cfg)
			m.Jam(0, sim.Time(int64(raw[3])*11), sim.Time(int64(raw[0])*13))
			for _, tx := range order {
				m.Queue(tx)
			}
			var log []string
			m.Resolve(func(tx *ShardedTx, visit func(NodeID, Position)) {
				for i := 0; i < n; i++ {
					visit(NodeID(i), pos[NodeID(i)])
				}
			}, func(tx *ShardedTx, to NodeID) {
				log = append(log, fmt.Sprintf("%d@%d->%d ok", tx.From, tx.Start, to))
			}, func(tx *ShardedTx, to NodeID, r DropReason) {
				log = append(log, fmt.Sprintf("%d@%d->%d %s", tx.From, tx.Start, to, r))
			})
			return strings.Join(log, "\n")
		}
		forward := run(frames)
		reversed := make([]ShardedTx, n)
		for i, tx := range frames {
			reversed[n-1-i] = tx
		}
		if got := run(reversed); got != forward {
			t.Fatalf("queue order changed the outcome:\nforward:\n%s\nreversed:\n%s", forward, got)
		}
		rotated := append(append([]ShardedTx{}, frames[n/2:]...), frames[:n/2]...)
		if got := run(rotated); got != forward {
			t.Fatalf("queue rotation changed the outcome:\nforward:\n%s\nrotated:\n%s", forward, got)
		}
	})
}
