package wireless

import (
	"testing"

	"karyon/internal/sim"
)

func newTestMedium(t *testing.T, cfg Config) (*sim.Kernel, *Medium) {
	t.Helper()
	k := sim.NewKernel(1)
	return k, NewMedium(k, cfg)
}

func attach(t *testing.T, m *Medium, id NodeID, pos Position) *Radio {
	t.Helper()
	r, err := m.Attach(id, pos)
	if err != nil {
		t.Fatalf("attach %d: %v", id, err)
	}
	return r
}

func TestBroadcastInRangeDelivered(t *testing.T) {
	k, m := newTestMedium(t, DefaultConfig())
	a := attach(t, m, 1, Position{})
	b := attach(t, m, 2, Position{X: 100})
	var got []Frame
	b.OnReceive(func(f Frame) { got = append(got, f) })
	a.Broadcast("hello")
	k.RunUntilIdle()
	if len(got) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(got))
	}
	if got[0].From != 1 || got[0].Payload != "hello" {
		t.Fatalf("frame = %+v", got[0])
	}
	if got[0].SentAt != 0 {
		t.Fatalf("SentAt = %v", got[0].SentAt)
	}
	if s := m.Stats(); s.Sent != 1 || s.Delivered != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestBroadcastOutOfRangeDropped(t *testing.T) {
	k, m := newTestMedium(t, DefaultConfig())
	a := attach(t, m, 1, Position{})
	b := attach(t, m, 2, Position{X: 1000})
	received := false
	b.OnReceive(func(Frame) { received = true })
	var drops []DropReason
	m.SetDropObserver(func(_ NodeID, r DropReason) { drops = append(drops, r) })
	a.Broadcast("x")
	k.RunUntilIdle()
	if received {
		t.Fatal("out-of-range frame delivered")
	}
	if len(drops) != 1 || drops[0] != DropOutOfRange {
		t.Fatalf("drops = %v", drops)
	}
}

func TestSenderDoesNotHearItself(t *testing.T) {
	k, m := newTestMedium(t, DefaultConfig())
	a := attach(t, m, 1, Position{})
	heard := false
	a.OnReceive(func(Frame) { heard = true })
	a.Broadcast("x")
	k.RunUntilIdle()
	if heard {
		t.Fatal("sender received its own frame")
	}
}

func TestCollisionWhenOverlapping(t *testing.T) {
	k, m := newTestMedium(t, DefaultConfig())
	a := attach(t, m, 1, Position{})
	b := attach(t, m, 2, Position{X: 10})
	c := attach(t, m, 3, Position{X: 20})
	var got int
	c.OnReceive(func(Frame) { got++ })
	// Both transmit at t=0: overlapping airtimes, both in range of c.
	a.Broadcast("a")
	b.Broadcast("b")
	k.RunUntilIdle()
	if got != 0 {
		t.Fatalf("collided frames delivered: %d", got)
	}
	if m.Stats().Collisions == 0 {
		t.Fatal("no collisions recorded")
	}
}

func TestNoCollisionWhenSequential(t *testing.T) {
	k, m := newTestMedium(t, DefaultConfig())
	a := attach(t, m, 1, Position{})
	b := attach(t, m, 2, Position{X: 10})
	c := attach(t, m, 3, Position{X: 20})
	var got int
	c.OnReceive(func(Frame) { got++ })
	a.Broadcast("a")
	k.Schedule(m.Config().Airtime+m.Config().PropDelay+sim.Microsecond, func() {
		b.Broadcast("b")
	})
	k.RunUntilIdle()
	if got != 2 {
		t.Fatalf("sequential frames delivered = %d, want 2", got)
	}
	if m.Stats().Collisions != 0 {
		t.Fatalf("unexpected collisions: %+v", m.Stats())
	}
}

func TestHiddenTerminalNoCollision(t *testing.T) {
	// a and c are out of range of each other; b hears both. Simultaneous
	// transmissions collide at b (classic hidden terminal), but a frame
	// from a to a node near a is unaffected by c.
	cfg := DefaultConfig()
	cfg.Range = 150
	k, m := newTestMedium(t, cfg)
	a := attach(t, m, 1, Position{X: 0})
	attachB := attach(t, m, 2, Position{X: 140})
	c := attach(t, m, 3, Position{X: 280})
	near := attach(t, m, 4, Position{X: 10})
	bGot, nearGot := 0, 0
	attachB.OnReceive(func(Frame) { bGot++ })
	near.OnReceive(func(Frame) { nearGot++ })
	a.Broadcast("a")
	c.Broadcast("c")
	k.RunUntilIdle()
	if bGot != 0 {
		t.Fatalf("hidden-terminal collision not detected at b: got %d", bGot)
	}
	if nearGot != 1 {
		t.Fatalf("near receiver should get a's frame only: got %d", nearGot)
	}
}

func TestJamBlocksDelivery(t *testing.T) {
	k, m := newTestMedium(t, DefaultConfig())
	a := attach(t, m, 1, Position{})
	b := attach(t, m, 2, Position{X: 10})
	got := 0
	b.OnReceive(func(Frame) { got++ })
	m.Jam(0, 10*sim.Millisecond)
	a.Broadcast("x")
	k.RunUntilIdle()
	if got != 0 {
		t.Fatal("jammed frame delivered")
	}
	if m.Stats().Jammed == 0 {
		t.Fatal("jam not recorded")
	}
	// After the jam expires, frames flow again.
	k.At(20*sim.Millisecond, func() { a.Broadcast("y") })
	k.RunUntilIdle()
	if got != 1 {
		t.Fatalf("post-jam frame not delivered: got=%d", got)
	}
}

func TestJamExtendsNotShortens(t *testing.T) {
	k, m := newTestMedium(t, DefaultConfig())
	m.Jam(0, 10*sim.Millisecond)
	m.Jam(0, 2*sim.Millisecond) // must not shorten
	if !m.Jammed(0) {
		t.Fatal("channel should be jammed")
	}
	k.Schedule(5*sim.Millisecond, func() {
		if !m.Jammed(0) {
			t.Error("jam ended early")
		}
	})
	k.Schedule(11*sim.Millisecond, func() {
		if m.Jammed(0) {
			t.Error("jam did not expire")
		}
	})
	k.RunUntilIdle()
}

func TestChannelsAreOrthogonal(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channels = 2
	k, m := newTestMedium(t, cfg)
	a := attach(t, m, 1, Position{})
	b := attach(t, m, 2, Position{X: 10})
	c := attach(t, m, 3, Position{X: 20})
	b.SetChannel(1)
	cGot, bGot := 0, 0
	c.OnReceive(func(Frame) { cGot++ })
	b.OnReceive(func(Frame) { bGot++ })
	a.Broadcast("ch0") // b is tuned to 1, misses it; c on 0 receives
	k.RunUntilIdle()
	if bGot != 0 || cGot != 1 {
		t.Fatalf("bGot=%d cGot=%d, want 0/1", bGot, cGot)
	}
	// Jam on channel 0 does not affect channel 1.
	m.Jam(0, sim.Second)
	a.SetChannel(1)
	a.Broadcast("ch1")
	k.RunUntilIdle()
	if bGot != 1 {
		t.Fatalf("channel-1 frame lost under channel-0 jam: bGot=%d", bGot)
	}
}

func TestCarrierSense(t *testing.T) {
	k, m := newTestMedium(t, DefaultConfig())
	a := attach(t, m, 1, Position{})
	b := attach(t, m, 2, Position{X: 10})
	far := attach(t, m, 3, Position{X: 5000})
	if b.CarrierBusy() {
		t.Fatal("idle medium reported busy")
	}
	a.Broadcast("x")
	if b.CarrierBusy() {
		t.Fatal("carrier must not be sensed before propagation (vulnerability window)")
	}
	k.Schedule(m.Config().Airtime/2, func() {
		if !b.CarrierBusy() {
			t.Error("in-range receiver should sense carrier mid-airtime")
		}
		if far.CarrierBusy() {
			t.Error("far node should not sense carrier")
		}
		if a.CarrierBusy() {
			t.Error("transmitter's own frame should not count as busy carrier")
		}
	})
	k.RunUntilIdle()
	if b.CarrierBusy() {
		t.Fatal("carrier busy after completion")
	}
	m.Jam(0, sim.Millisecond)
	if !b.CarrierBusy() {
		t.Fatal("jam should read as busy carrier")
	}
}

func TestLossProbability(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LossProb = 0.5
	k, m := newTestMedium(t, cfg)
	a := attach(t, m, 1, Position{})
	b := attach(t, m, 2, Position{X: 10})
	got := 0
	b.OnReceive(func(Frame) { got++ })
	n := 2000
	for i := 0; i < n; i++ {
		k.Schedule(sim.Time(i)*sim.Millisecond, func() { a.Broadcast(i) })
	}
	k.RunUntilIdle()
	frac := float64(got) / float64(n)
	if frac < 0.42 || frac > 0.58 {
		t.Fatalf("delivery fraction %v far from 0.5", frac)
	}
}

func TestAttachDuplicate(t *testing.T) {
	_, m := newTestMedium(t, DefaultConfig())
	if _, err := m.Attach(1, Position{}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Attach(1, Position{}); err == nil {
		t.Fatal("duplicate attach should error")
	}
}

func TestDetachStopsDelivery(t *testing.T) {
	k, m := newTestMedium(t, DefaultConfig())
	a := attach(t, m, 1, Position{})
	b := attach(t, m, 2, Position{X: 10})
	got := 0
	b.OnReceive(func(Frame) { got++ })
	m.Detach(2)
	a.Broadcast("x")
	k.RunUntilIdle()
	if got != 0 {
		t.Fatal("detached radio received a frame")
	}
}

func TestNeighborsSortedAndRanged(t *testing.T) {
	_, m := newTestMedium(t, DefaultConfig())
	a := attach(t, m, 5, Position{})
	attach(t, m, 3, Position{X: 100})
	attach(t, m, 9, Position{X: 200})
	attach(t, m, 7, Position{X: 9999})
	n := a.Neighbors()
	if len(n) != 2 || n[0] != 3 || n[1] != 9 {
		t.Fatalf("neighbors = %v, want [3 9]", n)
	}
}

func TestSetChannelClamped(t *testing.T) {
	_, m := newTestMedium(t, DefaultConfig())
	a := attach(t, m, 1, Position{})
	a.SetChannel(-3)
	if a.Channel() != 0 {
		t.Fatalf("negative channel not clamped: %d", a.Channel())
	}
	a.SetChannel(99)
	if a.Channel() != 0 {
		t.Fatalf("over-range channel not clamped: %d", a.Channel())
	}
}

func TestDistance(t *testing.T) {
	p := Position{X: 3, Y: 4}
	if d := p.Distance(Position{}); d != 5 {
		t.Fatalf("distance = %v, want 5", d)
	}
	q := Position{X: 1, Y: 2, Z: 2}
	if d := q.Distance(Position{X: 1, Y: 2, Z: 0}); d != 2 {
		t.Fatalf("3D distance = %v, want 2", d)
	}
}

func TestDropReasonString(t *testing.T) {
	cases := map[DropReason]string{
		DropLoss:       "loss",
		DropCollision:  "collision",
		DropJam:        "jam",
		DropOutOfRange: "range",
		DropReason(99): "unknown",
	}
	for r, want := range cases {
		if r.String() != want {
			t.Fatalf("%d.String() = %q, want %q", r, r.String(), want)
		}
	}
}
