package metrics

import (
	"encoding/json"
	"fmt"
	"math"
)

// Format selects how a numeric value renders in text cells. Values stay
// numeric in the structured result so they can be aggregated across
// replicas; formatting is applied only at the rendering boundary.
type Format int

const (
	// F2 renders with two decimal places.
	F2 Format = iota
	// F3 renders with three decimal places.
	F3
	// Pct renders a fraction as a percentage with one decimal place.
	Pct
	// Ms renders a value already in milliseconds.
	Ms
	// Int renders a whole count.
	Int
	// Bool renders 0 as "no" and anything else as "yes".
	Bool
)

// String names the format for JSON output.
func (f Format) String() string {
	switch f {
	case F3:
		return "f3"
	case Pct:
		return "pct"
	case Ms:
		return "ms"
	case Int:
		return "int"
	case Bool:
		return "bool"
	default:
		return "f2"
	}
}

// MarshalJSON emits the format's name.
func (f Format) MarshalJSON() ([]byte, error) {
	return []byte(`"` + f.String() + `"`), nil
}

// UnmarshalJSON parses the name emitted by MarshalJSON, so structured
// results round-trip through JSON — the service client decodes archived
// NDJSON result streams back into Results and re-renders them exactly.
func (f *Format) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	switch s {
	case "f2":
		*f = F2
	case "f3":
		*f = F3
	case "pct":
		*f = Pct
	case "ms":
		*f = Ms
	case "int":
		*f = Int
	case "bool":
		*f = Bool
	default:
		return fmt.Errorf("metrics: unknown format %q", s)
	}
	return nil
}

// Cell renders one value under the format.
func (f Format) Cell(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	switch f {
	case F3:
		return FmtF3(v)
	case Pct:
		return FmtPct(v)
	case Ms:
		return FmtMs(v)
	case Int:
		return FmtInt(int64(math.Round(v)))
	case Bool:
		if v != 0 {
			return "yes"
		}
		return "no"
	default:
		return FmtF(v)
	}
}

// meanCell renders an across-replica mean, where counts and booleans are no
// longer whole: counts get one decimal place and booleans become the
// fraction of replicas answering yes.
func (f Format) meanCell(v float64) string {
	switch f {
	case Int:
		return fmt.Sprintf("%.1f", v)
	case Bool:
		return FmtPct(v)
	default:
		return f.Cell(v)
	}
}

// Label is one named string cell identifying a record. The ordered label
// tuple is the record's identity when merging replicas.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Value is one named numeric cell. Missing marks a measurement that did not
// occur in this replica (e.g. a protocol that never converged); missing
// values render as "-" and contribute no sample to aggregation.
type Value struct {
	Name    string  `json:"name"`
	V       float64 `json:"value"`
	Missing bool    `json:"missing,omitempty"`
	Fmt     Format  `json:"format"`
}

// Record is one structured result row: identity labels plus measurements.
type Record struct {
	Labels []Label `json:"labels"`
	Values []Value `json:"values"`
}

// Result is the structured output of one scenario or experiment replica.
// It replaces hand-rendered tables: experiments emit Records and the
// rendering layer (Table) or the harness aggregation (Aggregate) consumes
// them.
type Result struct {
	Title   string    `json:"title"`
	Records []*Record `json:"records"`
	Notes   []string  `json:"notes,omitempty"`
}

// NewResult creates an empty result with the given title.
func NewResult(title string) *Result {
	return &Result{Title: title}
}

// AddNote appends a free-text footnote.
func (r *Result) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Record appends a row identified by the given (name, value) label pairs
// and returns it for chaining Val/Int/Bool calls. The pointer stays valid
// across further Record calls (rows are individually allocated).
func (r *Result) Record(labelPairs ...string) *Record {
	rec := &Record{}
	for i := 0; i+1 < len(labelPairs); i += 2 {
		rec.Labels = append(rec.Labels, Label{Name: labelPairs[i], Value: labelPairs[i+1]})
	}
	r.Records = append(r.Records, rec)
	return rec
}

// Val appends a numeric measurement.
func (rec *Record) Val(name string, v float64, f Format) *Record {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return rec.MissingVal(name, f)
	}
	rec.Values = append(rec.Values, Value{Name: name, V: v, Fmt: f})
	return rec
}

// Int appends a whole-count measurement.
func (rec *Record) Int(name string, v int64) *Record {
	return rec.Val(name, float64(v), Int)
}

// Bool appends a yes/no measurement stored as 0/1 so replicas average into
// a yes-fraction.
func (rec *Record) Bool(name string, v bool) *Record {
	x := 0.0
	if v {
		x = 1
	}
	return rec.Val(name, x, Bool)
}

// MissingVal appends a measurement that did not occur in this replica.
func (rec *Record) MissingVal(name string, f Format) *Record {
	rec.Values = append(rec.Values, Value{Name: name, Missing: true, Fmt: f})
	return rec
}

// tableRow is one pre-rendered row: identity labels plus (name, cell)
// measurement pairs. Result and Summary both render through it so the
// single-replica and aggregated tables cannot drift apart.
type tableRow struct {
	labels []Label
	cells  []namedCell
}

type namedCell struct {
	name string
	cell string
}

// renderTable lays rows out under the union of label and value names in
// first-seen order. Rows may carry heterogeneous columns; absent cells
// render empty.
func renderTable(title string, rows []tableRow, notes []string) *Table {
	seen := map[string]bool{}
	var labelCols, valueCols []string
	for _, row := range rows {
		for _, l := range row.labels {
			if !seen["l\x00"+l.Name] {
				seen["l\x00"+l.Name] = true
				labelCols = append(labelCols, l.Name)
			}
		}
		for _, c := range row.cells {
			if !seen["v\x00"+c.name] {
				seen["v\x00"+c.name] = true
				valueCols = append(valueCols, c.name)
			}
		}
	}
	tab := NewTable(title, append(append([]string{}, labelCols...), valueCols...)...)
	for _, row := range rows {
		cells := make([]string, 0, len(labelCols)+len(valueCols))
		for _, name := range labelCols {
			cell := ""
			for _, l := range row.labels {
				if l.Name == name {
					cell = l.Value
					break
				}
			}
			cells = append(cells, cell)
		}
		for _, name := range valueCols {
			cell := ""
			for _, c := range row.cells {
				if c.name == name {
					cell = c.cell
					break
				}
			}
			cells = append(cells, cell)
		}
		tab.AddRow(cells...)
	}
	tab.Notes = append(tab.Notes, notes...)
	return tab
}

// Table renders the single-replica result as a text table. Aggregated
// multi-replica rendering lives on Summary.
func (r *Result) Table() *Table {
	rows := make([]tableRow, 0, len(r.Records))
	for _, rec := range r.Records {
		row := tableRow{labels: rec.Labels}
		for _, v := range rec.Values {
			cell := "-"
			if !v.Missing {
				cell = v.Fmt.Cell(v.V)
			}
			row.cells = append(row.cells, namedCell{name: v.Name, cell: cell})
		}
		rows = append(rows, row)
	}
	return renderTable(r.Title, rows, r.Notes)
}
