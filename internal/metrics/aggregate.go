package metrics

import (
	"math"
	"strings"
)

// Dist summarizes one named measurement across replicas. Count is the
// number of replicas in which the measurement occurred (missing values
// contribute no sample); with Count zero the statistics are all zero.
type Dist struct {
	Name   string  `json:"name"`
	Count  int     `json:"count"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	P95    float64 `json:"p95"`
	// P95Estimated marks a P95 that is a streaming P² estimate rather
	// than the exact order statistic. The streaming path keeps p95 exact
	// through a bounded largest-values reservoir; only past its reach
	// (thousands of replicas per measurement) does the estimate — and
	// this marker — appear. Sub-threshold aggregation never sets it.
	P95Estimated bool `json:"p95_estimated,omitempty"`
	// CI95 is the half-width of the 95% confidence interval of the mean,
	// t·s/√n with Student's t at n-1 degrees of freedom and the sample
	// standard deviation: the paper's probabilistic-bounds argument needs
	// "how sure are we of this mean", not just how spread the replicas
	// are, and at the small replica counts experiments default to, the
	// normal approximation would understate the interval several-fold.
	// Zero when fewer than two samples exist (no interval is defined).
	CI95 float64 `json:"ci95"`
	Fmt  Format  `json:"format"`
}

// tCrit95 returns the two-sided 95% Student-t critical value for df
// degrees of freedom (exact table through df=30, a +2.42/df correction to
// the normal quantile beyond — within 0.3% of the true value).
func tCrit95(df int) float64 {
	table := [...]float64{
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	if df < 1 {
		return 0
	}
	if df <= len(table) {
		return table[df-1]
	}
	return 1.96 + 2.42/float64(df)
}

// Cell renders the distribution for a text table. A single-replica summary
// renders exactly like the underlying value so that `-replicas 1` output
// matches an unreplicated run; multiple replicas render mean ±stddev (the
// full distribution, including p95, is in the JSON form).
func (d Dist) Cell(replicas int) string {
	if d.Count == 0 {
		return "-"
	}
	if replicas <= 1 {
		return d.Fmt.Cell(d.Mean)
	}
	return d.Fmt.meanCell(d.Mean) + " ±" + d.Fmt.meanCell(d.StdDev)
}

// AggRecord is one aggregated row: the identity labels shared by the
// matched replica records plus a distribution per measurement.
type AggRecord struct {
	Labels []Label `json:"labels"`
	Values []Dist  `json:"values"`

	samples map[string]accumulator
}

// StreamingThreshold is the replica count above which Aggregate switches
// from per-value histograms (exact percentiles, O(replicas) memory per
// measurement) to streaming moments — Welford mean/variance plus a
// bounded largest-values reservoir — with O(1) memory per measurement.
// Giant seed matrices would otherwise retain every replica's every
// value. The streaming p95 stays exact while its rank fits the reservoir
// (see streamTopK); beyond that it falls back to a P² estimate and the
// Dist carries the p95_estimated marker.
const StreamingThreshold = 64

// Summary is the across-replica aggregation of a scenario's results.
// Records are matched by their ordered label tuple and kept in first-seen
// order, so the summary is a pure function of the replica results in seed
// order — independent of the parallelism that produced them.
type Summary struct {
	Title    string      `json:"title"`
	Replicas int         `json:"replicas"`
	Records  []AggRecord `json:"records"`
	Notes    []string    `json:"notes,omitempty"`
}

func labelKey(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte('\x00')
		b.WriteString(l.Value)
		b.WriteByte('\x00')
	}
	return b.String()
}

// Aggregate merges replica results into per-record distributions. The
// title and notes are taken from the first replica (notes may interpolate
// replica-specific numbers; the first replica keeps them deterministic).
// Above StreamingThreshold replicas the per-measurement store switches to
// streaming moments, bounding memory at O(1) per measurement instead of
// O(replicas); mean/stddev/min/max always stay exact, and p95 stays
// exact until its rank outgrows the retained tail — only then does it
// become a (marked) P² estimate.
func Aggregate(results []*Result) *Summary {
	s := &Summary{Replicas: len(results)}
	streaming := len(results) > StreamingThreshold
	newAcc := func() accumulator {
		if streaming {
			return newStreamAcc()
		}
		return &histAcc{}
	}
	// index holds positions, not pointers: appends may reallocate s.Records.
	index := map[string]int{}
	for _, r := range results {
		if r == nil {
			continue
		}
		if s.Title == "" {
			s.Title = r.Title
			s.Notes = append(s.Notes, r.Notes...)
		}
		for _, rec := range r.Records {
			key := labelKey(rec.Labels)
			at, ok := index[key]
			if !ok {
				at = len(s.Records)
				s.Records = append(s.Records, AggRecord{
					Labels:  append([]Label{}, rec.Labels...),
					samples: map[string]accumulator{},
				})
				index[key] = at
			}
			agg := &s.Records[at]
			for _, v := range rec.Values {
				h, ok := agg.samples[v.Name]
				if !ok {
					h = newAcc()
					agg.samples[v.Name] = h
					agg.Values = append(agg.Values, Dist{Name: v.Name, Fmt: v.Fmt})
				}
				if !v.Missing {
					h.Observe(v.V)
				}
			}
		}
	}
	for ri := range s.Records {
		agg := &s.Records[ri]
		for vi := range agg.Values {
			d := &agg.Values[vi]
			h := agg.samples[d.Name]
			if d.Count = h.Count(); d.Count == 0 {
				continue
			}
			d.Mean = h.Mean()
			d.StdDev = h.StdDev()
			d.Min = h.Min()
			d.Max = h.Max()
			d.P95 = h.P95()
			if est, ok := h.(interface{ P95Estimated() bool }); ok {
				d.P95Estimated = est.P95Estimated()
			}
			if n := d.Count; n >= 2 {
				// The accumulators report the population form; the CI needs
				// the sample form (divisor n-1).
				sample := d.StdDev * math.Sqrt(float64(n)/float64(n-1))
				d.CI95 = tCrit95(n-1) * sample / math.Sqrt(float64(n))
			}
		}
		agg.samples = nil
	}
	return s
}

// Table renders the summary as a text table: identity labels followed by
// one distribution cell per measurement, plus — for replicated runs — a
// 95% confidence-interval column per measurement.
func (s *Summary) Table() *Table {
	rows := make([]tableRow, 0, len(s.Records))
	for _, rec := range s.Records {
		row := tableRow{labels: rec.Labels}
		for _, d := range rec.Values {
			row.cells = append(row.cells, namedCell{name: d.Name, cell: d.Cell(s.Replicas)})
			if s.Replicas > 1 {
				// With fewer than two samples no interval is defined — a
				// "±0.00" there would claim false exact certainty.
				ci := "-"
				if d.Count > 1 {
					ci = "±" + d.Fmt.meanCell(d.CI95)
				}
				row.cells = append(row.cells, namedCell{name: d.Name + " ci95", cell: ci})
			}
		}
		rows = append(rows, row)
	}
	notes := s.Notes
	if s.Replicas > 1 {
		notes = append([]string{"cells: mean ±stddev over replicas; ci95: 95% confidence half-width of the mean; min/max/p95 in the JSON form"}, s.Notes...)
	}
	return renderTable(s.Title, rows, notes)
}
