package metrics

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// Table is a simple column-aligned text table used to render every
// experiment's output, mirroring how the paper's evaluation rows would be
// reported. It also serializes to CSV.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; short rows are padded with empty cells and long
// rows are truncated to the column count.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a free-text footnote rendered below the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	// Widths are display widths: cells may contain multi-byte runes (±).
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = utf8.RuneCountInString(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if w := utf8.RuneCountInString(cell); w > widths[i] {
				widths[i] = w
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", utf8.RuneCountInString(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-utf8.RuneCountInString(cell)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
// Cells containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeCSVRow(t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(row)
	}
	return b.String()
}
