package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestResultTableRendering(t *testing.T) {
	res := NewResult("demo")
	res.Record("case", "a").
		Val("lat", 1.234, Ms).
		Int("count", 7).
		Bool("ok", true)
	res.Record("case", "b").
		Val("lat", 2.5, Ms).
		Int("count", 0).
		Bool("ok", false).
		MissingVal("extra", F2)
	res.AddNote("a note")
	out := res.Table().String()
	for _, want := range []string{"demo", "case", "lat", "count", "ok",
		"1.23ms", "2.50ms", "yes", "no", "-", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFormatCells(t *testing.T) {
	cases := []struct {
		f    Format
		v    float64
		want string
	}{
		{F2, 1.005, "1.00"},
		{F3, 0.1234, "0.123"},
		{Pct, 0.5, "50.0%"},
		{Ms, 3.25, "3.25ms"},
		{Int, 41.6, "42"},
		{Bool, 1, "yes"},
		{Bool, 0, "no"},
	}
	for _, tc := range cases {
		if got := tc.f.Cell(tc.v); got != tc.want {
			t.Fatalf("%v.Cell(%v) = %q, want %q", tc.f, tc.v, got, tc.want)
		}
	}
}

// NaN and Inf must never reach the structured result (they would break
// JSON encoding); Val converts them to missing cells.
func TestNonFiniteValuesBecomeMissing(t *testing.T) {
	res := NewResult("naninf")
	res.Record("case", "x").
		Val("nan", nan(), F2).
		Val("inf", inf(), F2)
	for _, v := range res.Records[0].Values {
		if !v.Missing {
			t.Fatalf("%s not marked missing", v.Name)
		}
	}
	if _, err := json.Marshal(res); err != nil {
		t.Fatalf("result not JSON-encodable: %v", err)
	}
}

func nan() float64 { return inf() - inf() }
func inf() float64 {
	x := 0.0
	return 1 / x
}

func TestAggregateAcrossReplicas(t *testing.T) {
	mk := func(lat float64, ok bool) *Result {
		res := NewResult("demo")
		res.Record("case", "a").Val("lat", lat, Ms).Bool("ok", ok)
		return res
	}
	s := Aggregate([]*Result{mk(1, true), mk(2, true), mk(3, false), mk(6, true)})
	if s.Replicas != 4 || len(s.Records) != 1 {
		t.Fatalf("summary = %+v", s)
	}
	lat := s.Records[0].Values[0]
	if lat.Name != "lat" || lat.Count != 4 {
		t.Fatalf("lat dist = %+v", lat)
	}
	if lat.Mean != 3 || lat.Min != 1 || lat.Max != 6 {
		t.Fatalf("lat stats = %+v", lat)
	}
	if lat.StdDev <= 1.8 || lat.StdDev >= 2 { // population stddev of {1,2,3,6} ≈ 1.87
		t.Fatalf("stddev = %v", lat.StdDev)
	}
	if lat.P95 <= 5 || lat.P95 > 6 {
		t.Fatalf("p95 = %v", lat.P95)
	}
	ok := s.Records[0].Values[1]
	if ok.Mean != 0.75 {
		t.Fatalf("bool mean = %v, want 0.75 yes-fraction", ok.Mean)
	}
	out := s.Table().String()
	if !strings.Contains(out, "±") || !strings.Contains(out, "75.0%") {
		t.Fatalf("aggregated rendering:\n%s", out)
	}
}

// Replicated summaries carry a 95% confidence half-width per measurement
// and render it as a dedicated column.
func TestAggregateConfidenceInterval(t *testing.T) {
	mk := func(lat float64) *Result {
		res := NewResult("demo")
		res.Record("case", "a").Val("lat", lat, F2)
		return res
	}
	s := Aggregate([]*Result{mk(1), mk(2), mk(3), mk(6)})
	lat := s.Records[0].Values[0]
	// n = 4: Student-t at 3 degrees of freedom over the sample stddev.
	sample := lat.StdDev * math.Sqrt(4.0/3.0)
	want := 3.182 * sample / 2
	if diff := lat.CI95 - want; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("ci95 = %v, want %v", lat.CI95, want)
	}
	out := s.Table().String()
	if !strings.Contains(out, "lat ci95") {
		t.Fatalf("rendered table missing ci95 column:\n%s", out)
	}
	// A single replica renders without dispersion or CI columns.
	single := Aggregate([]*Result{mk(5)})
	if sout := single.Table().String(); strings.Contains(sout, "ci95") {
		t.Fatalf("single replica grew a ci95 column:\n%s", sout)
	}
	if single.Records[0].Values[0].CI95 != 0 {
		t.Fatalf("single-replica ci95 = %v", single.Records[0].Values[0].CI95)
	}
	// A value observed in only one replica of a replicated run has no
	// defined interval: the cell must be a gap, not "±0.00".
	lone := NewResult("demo")
	lone.Record("case", "a").Val("lat", 1, F2).Val("rare", 7, F2)
	other := NewResult("demo")
	other.Record("case", "a").Val("lat", 2, F2).MissingVal("rare", F2)
	sparse := Aggregate([]*Result{lone, other})
	if sparse.Records[0].Values[1].CI95 != 0 {
		t.Fatalf("one-sample ci95 = %v", sparse.Records[0].Values[1].CI95)
	}
	sout := sparse.Table().CSV()
	row := strings.Split(strings.TrimSpace(sout), "\n")[1]
	if !strings.HasSuffix(row, ",-") {
		t.Fatalf("one-sample ci95 cell not a gap:\n%s", sout)
	}
}

// Missing values contribute no sample; a value missing everywhere renders
// as a gap but keeps its column.
func TestAggregateMissingValues(t *testing.T) {
	with := NewResult("demo")
	with.Record("case", "a").Val("conv", 10, Int).MissingVal("gone", F2)
	without := NewResult("demo")
	without.Record("case", "a").MissingVal("conv", Int).MissingVal("gone", F2)
	s := Aggregate([]*Result{with, without})
	conv := s.Records[0].Values[0]
	if conv.Count != 1 || conv.Mean != 10 {
		t.Fatalf("conv dist = %+v", conv)
	}
	gone := s.Records[0].Values[1]
	if gone.Count != 0 {
		t.Fatalf("gone dist = %+v", gone)
	}
	if cell := gone.Cell(s.Replicas); cell != "-" {
		t.Fatalf("empty dist cell = %q", cell)
	}
}

// Records are matched by label tuple: replicas may emit rows in any
// subset, and first-seen order wins.
func TestAggregateMatchesByLabels(t *testing.T) {
	r1 := NewResult("demo")
	r1.Record("case", "a").Val("v", 1, F2)
	r1.Record("case", "b").Val("v", 10, F2)
	r2 := NewResult("demo")
	r2.Record("case", "b").Val("v", 20, F2)
	s := Aggregate([]*Result{r1, r2})
	if len(s.Records) != 2 {
		t.Fatalf("records = %d", len(s.Records))
	}
	if s.Records[0].Labels[0].Value != "a" || s.Records[0].Values[0].Count != 1 {
		t.Fatalf("record a = %+v", s.Records[0])
	}
	if s.Records[1].Labels[0].Value != "b" || s.Records[1].Values[0].Count != 2 ||
		s.Records[1].Values[0].Mean != 15 {
		t.Fatalf("record b = %+v", s.Records[1])
	}
}

// Single-replica summaries must render exactly like the unaggregated
// result, so `-replicas 1` output matches a plain run.
func TestSingleReplicaRendersLikeResult(t *testing.T) {
	res := NewResult("demo")
	res.Record("case", "a").Val("lat", 1.5, Ms).Int("n", 3).Bool("ok", true)
	res.AddNote("hello")
	plain := res.Table().String()
	agg := Aggregate([]*Result{res}).Table().String()
	if plain != agg {
		t.Fatalf("single-replica summary diverges:\nplain:\n%s\nagg:\n%s", plain, agg)
	}
}

// Regression: Aggregate must keep merging into a record even after later
// appends grow s.Records (a stale-pointer bug would silently drop values
// that first appear in a late replica).
func TestAggregateSurvivesRecordGrowth(t *testing.T) {
	r1 := NewResult("demo")
	r1.Record("case", "a").Val("v1", 1, F2)
	r2 := NewResult("demo")
	for i := 0; i < 64; i++ { // force s.Records reallocation
		r2.Record("case", string(rune('b'+i))).Val("v1", 0, F2)
	}
	r2.Record("case", "a").Val("v1", 3, F2).Val("late", 9, F2)
	s := Aggregate([]*Result{r1, r2})
	a := s.Records[0]
	if a.Labels[0].Value != "a" {
		t.Fatalf("first record = %+v", a)
	}
	if len(a.Values) != 2 {
		t.Fatalf("record a has %d values, want v1 and late: %+v", len(a.Values), a.Values)
	}
	if a.Values[0].Count != 2 || a.Values[0].Mean != 2 {
		t.Fatalf("v1 dist = %+v", a.Values[0])
	}
	if a.Values[1].Name != "late" || a.Values[1].Count != 1 || a.Values[1].Mean != 9 {
		t.Fatalf("late dist = %+v", a.Values[1])
	}
}

// Dispersion cells contain the multi-byte ± rune; alignment must use
// display width, not byte length.
func TestTableAlignmentWithMultibyteCells(t *testing.T) {
	tab := NewTable("t", "col", "widecolumn")
	tab.AddRow("1.0 ±0.5", "x")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	header, sep, data := lines[2], lines[3], lines[4]
	// The first column is 8 display runes wide ("1.0 ±0.5"), so every row
	// must start its second column at display offset 10.
	if !strings.HasPrefix(sep, "--------  -") {
		t.Fatalf("separator sized by bytes, not runes:\n%s", out)
	}
	if !strings.HasPrefix(data, "1.0 ±0.5  x") {
		t.Fatalf("data row misaligned:\n%s", out)
	}
	if got := []rune(header); string(got[8:10]) != "  " || got[10] != 'w' {
		t.Fatalf("header misaligned:\n%s", out)
	}
}
