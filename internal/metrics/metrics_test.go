package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Percentile(50) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should answer zeros")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Sum() != 15 {
		t.Fatalf("Sum = %v", h.Sum())
	}
	if h.Mean() != 3 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if h.Median() != 3 {
		t.Fatalf("Median = %v", h.Median())
	}
}

func TestHistogramPercentileInterpolation(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(10)
	if got := h.Percentile(50); got != 5 {
		t.Fatalf("p50 of {0,10} = %v, want 5", got)
	}
	if got := h.Percentile(0); got != 0 {
		t.Fatalf("p0 = %v", got)
	}
	if got := h.Percentile(100); got != 10 {
		t.Fatalf("p100 = %v", got)
	}
	if got := h.Percentile(-5); got != 0 {
		t.Fatalf("p<0 should clamp: %v", got)
	}
	if got := h.Percentile(150); got != 10 {
		t.Fatalf("p>100 should clamp: %v", got)
	}
}

func TestHistogramObserveAfterQuery(t *testing.T) {
	var h Histogram
	h.Observe(10)
	_ = h.Median()
	h.Observe(0) // must re-sort
	if got := h.Min(); got != 0 {
		t.Fatalf("Min after late observe = %v, want 0", got)
	}
}

func TestHistogramStdDev(t *testing.T) {
	var h Histogram
	h.Observe(2)
	if h.StdDev() != 0 {
		t.Fatal("single sample stddev should be 0")
	}
	h.Observe(4)
	h.Observe(4)
	h.Observe(4)
	h.Observe(5)
	h.Observe(5)
	h.Observe(7)
	h.Observe(9)
	// classic example: population stddev of {2,4,4,4,5,5,7,9} is 2
	if got := h.StdDev(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

// Property: percentile is monotone in p and bounded by [Min, Max].
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(vals []float64) bool {
		var h Histogram
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.Observe(v)
		}
		if h.Count() == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			q := h.Percentile(p)
			if q < prev || q < h.Min() || q > h.Max() {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(5)
	c.Add(-3) // ignored
	if c.Value() != 6 {
		t.Fatalf("Counter = %d, want 6", c.Value())
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 {
		t.Fatal("empty ratio should be 0")
	}
	r.Observe(true)
	r.Observe(true)
	r.Observe(false)
	r.Observe(true)
	if got := r.Value(); got != 0.75 {
		t.Fatalf("Value = %v, want 0.75", got)
	}
	if got := r.Percent(); got != 75 {
		t.Fatalf("Percent = %v, want 75", got)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "loss sweep"
	s.Add(0, 100)
	s.Add(0.1, 90)
	if y, ok := s.YAt(0.1); !ok || y != 90 {
		t.Fatalf("YAt(0.1) = %v, %v", y, ok)
	}
	if _, ok := s.YAt(0.5); ok {
		t.Fatal("YAt missing X should report false")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Demo", "name", "value")
	tab.AddRow("alpha", "1")
	tab.AddRow("a-very-long-name", "22")
	tab.AddRow("short") // padded
	tab.AddNote("seed=%d", 42)
	out := tab.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "====") {
		t.Fatalf("missing title/underline:\n%s", out)
	}
	if !strings.Contains(out, "a-very-long-name  22") {
		t.Fatalf("misaligned row:\n%s", out)
	}
	if !strings.Contains(out, "note: seed=42") {
		t.Fatalf("missing note:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + underline + header + sep + 3 rows + note
	if len(lines) != 8 {
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow("x,y", `q"z`)
	csv := tab.CSV()
	want := "a,b\n\"x,y\",\"q\"\"z\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestTableRowTruncation(t *testing.T) {
	tab := NewTable("", "only")
	tab.AddRow("a", "b", "c")
	if len(tab.Rows[0]) != 1 || tab.Rows[0][0] != "a" {
		t.Fatalf("long row not truncated: %v", tab.Rows[0])
	}
}

func TestFormatHelpers(t *testing.T) {
	if FmtF(1.234) != "1.23" {
		t.Fatal(FmtF(1.234))
	}
	if FmtF3(1.2345) != "1.234" && FmtF3(1.2345) != "1.235" {
		t.Fatal(FmtF3(1.2345))
	}
	if FmtPct(0.5) != "50.0%" {
		t.Fatal(FmtPct(0.5))
	}
	if FmtMs(1.5) != "1.50ms" {
		t.Fatal(FmtMs(1.5))
	}
	if FmtInt(7) != "7" {
		t.Fatal(FmtInt(7))
	}
}
