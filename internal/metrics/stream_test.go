package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestWelfordMatchesHistogram(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var w Welford
	var h Histogram
	for i := 0; i < 10000; i++ {
		v := rng.NormFloat64()*3 + 7
		w.Observe(v)
		h.Observe(v)
	}
	if w.Count() != h.Count() {
		t.Fatalf("count %d vs %d", w.Count(), h.Count())
	}
	if math.Abs(w.Mean()-h.Mean()) > 1e-9 {
		t.Fatalf("mean %v vs %v", w.Mean(), h.Mean())
	}
	if math.Abs(w.StdDev()-h.StdDev()) > 1e-9 {
		t.Fatalf("stddev %v vs %v", w.StdDev(), h.StdDev())
	}
	if w.Min() != h.Min() || w.Max() != h.Max() {
		t.Fatalf("min/max %v/%v vs %v/%v", w.Min(), w.Max(), h.Min(), h.Max())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.StdDev() != 0 || w.Min() != 0 || w.Max() != 0 {
		t.Fatal("empty accumulator must read zero")
	}
	w.Observe(-3)
	if w.Mean() != -3 || w.StdDev() != 0 || w.Min() != -3 || w.Max() != -3 {
		t.Fatalf("single sample wrong: %+v", w)
	}
}

func TestP2QuantileSmallSampleExact(t *testing.T) {
	q := NewP2Quantile(0.95)
	var h Histogram
	for _, v := range []float64{5, 1, 4} {
		q.Observe(v)
		h.Observe(v)
	}
	if got, want := q.Value(), h.Percentile(95); math.Abs(got-want) > 1e-12 {
		t.Fatalf("small-sample p95 %v, want exact %v", got, want)
	}
}

func TestP2QuantileTracksExactP95(t *testing.T) {
	for _, tc := range []struct {
		name string
		gen  func(*rand.Rand) float64
	}{
		{"uniform", func(r *rand.Rand) float64 { return r.Float64() * 100 }},
		{"normal", func(r *rand.Rand) float64 { return r.NormFloat64()*5 + 50 }},
		{"exponential", func(r *rand.Rand) float64 { return r.ExpFloat64() * 10 }},
	} {
		rng := rand.New(rand.NewSource(7))
		q := NewP2Quantile(0.95)
		var h Histogram
		for i := 0; i < 20000; i++ {
			v := tc.gen(rng)
			q.Observe(v)
			h.Observe(v)
		}
		exact := h.Percentile(95)
		spread := h.Max() - h.Min()
		if err := math.Abs(q.Value() - exact); err > 0.02*spread {
			t.Fatalf("%s: P2 p95 %v vs exact %v (err %v beyond 2%% of spread %v)",
				tc.name, q.Value(), exact, err, spread)
		}
	}
}

// Above the threshold, Aggregate must keep exact moments while estimating
// p95 — and must not silently change the small-matrix behavior.
func TestAggregateStreamingPath(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := StreamingThreshold * 4
	results := make([]*Result, 0, n)
	var exact Histogram
	for i := 0; i < n; i++ {
		v := rng.NormFloat64()*2 + 10
		exact.Observe(v)
		r := NewResult("streamed")
		r.Record("variant", "a").Val("latency", v, F2)
		results = append(results, r)
	}
	s := Aggregate(results)
	if len(s.Records) != 1 || len(s.Records[0].Values) != 1 {
		t.Fatalf("unexpected shape: %+v", s)
	}
	d := s.Records[0].Values[0]
	if d.Count != n {
		t.Fatalf("count %d, want %d", d.Count, n)
	}
	if math.Abs(d.Mean-exact.Mean()) > 1e-9 || math.Abs(d.StdDev-exact.StdDev()) > 1e-9 {
		t.Fatalf("streaming moments diverge: mean %v/%v stddev %v/%v",
			d.Mean, exact.Mean(), d.StdDev, exact.StdDev())
	}
	if d.Min != exact.Min() || d.Max != exact.Max() {
		t.Fatalf("min/max diverge")
	}
	// At this matrix size the p95 rank still fits the streaming
	// reservoir: the value must be the exact order statistic, not an
	// estimate, and must not carry the estimate marker.
	if d.P95 != exact.Percentile(95) {
		t.Fatalf("streaming p95 %v, want exact %v", d.P95, exact.Percentile(95))
	}
	if d.P95Estimated {
		t.Fatal("exact streaming p95 marked as estimated")
	}
	if d.CI95 <= 0 {
		t.Fatal("ci95 missing on streamed aggregate")
	}
}

// The p95 bugfix contract: the streaming accumulator reports the exact
// order statistic — bit-identical to Histogram.Percentile — until the
// rank outgrows the reservoir, and beyond that the estimate is marked.
func TestStreamAccExactP95WithinReservoir(t *testing.T) {
	exactThrough := 20*(streamTopK-1) + 1
	rng := rand.New(rand.NewSource(17))
	stream := newStreamAcc()
	exact := &histAcc{}
	for i := 0; i < exactThrough; i++ {
		v := rng.ExpFloat64() * 100
		stream.Observe(v)
		exact.Observe(v)
		// Spot-check along the way (every check is O(k log k)).
		if i%997 == 0 || i == exactThrough-1 {
			if stream.P95() != exact.P95() {
				t.Fatalf("n=%d: streaming p95 %v != exact %v", i+1, stream.P95(), exact.P95())
			}
			if stream.P95Estimated() {
				t.Fatalf("n=%d: exact p95 marked as estimated", i+1)
			}
		}
	}
	// One sample past the reservoir's reach: falls back to the P²
	// estimate and says so.
	stream.Observe(rng.ExpFloat64() * 100)
	if !stream.P95Estimated() {
		t.Fatalf("n=%d: estimate not marked", exactThrough+1)
	}
	// An empty accumulator is neither exact nor estimated.
	if newStreamAcc().P95Estimated() {
		t.Fatal("empty accumulator marked as estimated")
	}
}

// The accumulator contract: on any distribution the streaming store must
// report byte-equal moments and extrema to the exact histogram store, and
// a p95 within tight tolerance — that is what lets Aggregate switch
// representations above StreamingThreshold without changing a summary's
// meaning. Bimodal and heavy-tailed shapes are included deliberately:
// they are the classic stress cases for P² marker interpolation.
func TestStreamAccMatchesHistAccOnKnownDistributions(t *testing.T) {
	for _, tc := range []struct {
		name string
		tol  float64 // p95 tolerance as a fraction of spread
		gen  func(*rand.Rand) float64
	}{
		{"uniform", 0.02, func(r *rand.Rand) float64 { return r.Float64() * 1000 }},
		{"exponential", 0.02, func(r *rand.Rand) float64 { return r.ExpFloat64() * 42 }},
		{"bimodal", 0.03, func(r *rand.Rand) float64 {
			if r.Float64() < 0.5 {
				return r.NormFloat64() + 10
			}
			return r.NormFloat64() + 90
		}},
		{"heavy-tail", 0.03, func(r *rand.Rand) float64 {
			v := r.ExpFloat64()
			return v * v * 5
		}},
		{"constant", 0, func(*rand.Rand) float64 { return 7.25 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			stream := newStreamAcc()
			exact := &histAcc{}
			for i := 0; i < 30000; i++ {
				v := tc.gen(rng)
				stream.Observe(v)
				exact.Observe(v)
			}
			if stream.Count() != exact.Count() {
				t.Fatalf("count %d vs %d", stream.Count(), exact.Count())
			}
			if math.Abs(stream.Mean()-exact.Mean()) > 1e-9*(1+math.Abs(exact.Mean())) {
				t.Fatalf("mean %v vs %v", stream.Mean(), exact.Mean())
			}
			if math.Abs(stream.StdDev()-exact.StdDev()) > 1e-9*(1+exact.StdDev()) {
				t.Fatalf("stddev %v vs %v", stream.StdDev(), exact.StdDev())
			}
			if stream.Min() != exact.Min() || stream.Max() != exact.Max() {
				t.Fatalf("min/max %v/%v vs %v/%v", stream.Min(), stream.Max(), exact.Min(), exact.Max())
			}
			spread := exact.Max() - exact.Min()
			if err := math.Abs(stream.P95() - exact.P95()); err > tc.tol*spread {
				t.Fatalf("p95 %v vs exact %v (err %v beyond %.0f%% of spread %v)",
					stream.P95(), exact.P95(), err, tc.tol*100, spread)
			}
		})
	}
}

// P² must survive adversarially ordered input: a fully sorted ascending
// feed (the worst case for marker drift) still lands near the exact p95.
func TestP2QuantileSortedInput(t *testing.T) {
	q := NewP2Quantile(0.95)
	var h Histogram
	n := 10000
	for i := 0; i < n; i++ {
		v := float64(i)
		q.Observe(v)
		h.Observe(v)
	}
	exact := h.Percentile(95)
	if err := math.Abs(q.Value() - exact); err > 0.02*float64(n) {
		t.Fatalf("sorted input: p95 %v vs exact %v", q.Value(), exact)
	}
}

// Missing values on the streaming path: a measurement absent from some
// replicas must keep Count at the observed number and aggregate only the
// observed samples — same semantics as the exact path.
func TestAggregateStreamingMissingValues(t *testing.T) {
	n := StreamingThreshold * 2
	results := make([]*Result, 0, n)
	var exact Histogram
	for i := 0; i < n; i++ {
		r := NewResult("streamed")
		rec := r.Record("variant", "a").Val("always", float64(i), F2)
		if i%3 == 0 {
			rec.Val("sometimes", float64(i)*2, F2)
			exact.Observe(float64(i) * 2)
		}
		results = append(results, r)
	}
	s := Aggregate(results)
	if len(s.Records) != 1 {
		t.Fatalf("unexpected shape: %+v", s)
	}
	var some *Dist
	for i := range s.Records[0].Values {
		if s.Records[0].Values[i].Name == "sometimes" {
			some = &s.Records[0].Values[i]
		}
	}
	if some == nil {
		t.Fatal("sparse measurement missing from summary")
	}
	if some.Count != exact.Count() {
		t.Fatalf("sparse count %d, want %d", some.Count, exact.Count())
	}
	if math.Abs(some.Mean-exact.Mean()) > 1e-9 || some.Min != exact.Min() || some.Max != exact.Max() {
		t.Fatalf("sparse streaming stats diverge: %+v vs mean %v min %v max %v",
			some, exact.Mean(), exact.Min(), exact.Max())
	}
}
