package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestWelfordMatchesHistogram(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var w Welford
	var h Histogram
	for i := 0; i < 10000; i++ {
		v := rng.NormFloat64()*3 + 7
		w.Observe(v)
		h.Observe(v)
	}
	if w.Count() != h.Count() {
		t.Fatalf("count %d vs %d", w.Count(), h.Count())
	}
	if math.Abs(w.Mean()-h.Mean()) > 1e-9 {
		t.Fatalf("mean %v vs %v", w.Mean(), h.Mean())
	}
	if math.Abs(w.StdDev()-h.StdDev()) > 1e-9 {
		t.Fatalf("stddev %v vs %v", w.StdDev(), h.StdDev())
	}
	if w.Min() != h.Min() || w.Max() != h.Max() {
		t.Fatalf("min/max %v/%v vs %v/%v", w.Min(), w.Max(), h.Min(), h.Max())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.StdDev() != 0 || w.Min() != 0 || w.Max() != 0 {
		t.Fatal("empty accumulator must read zero")
	}
	w.Observe(-3)
	if w.Mean() != -3 || w.StdDev() != 0 || w.Min() != -3 || w.Max() != -3 {
		t.Fatalf("single sample wrong: %+v", w)
	}
}

func TestP2QuantileSmallSampleExact(t *testing.T) {
	q := NewP2Quantile(0.95)
	var h Histogram
	for _, v := range []float64{5, 1, 4} {
		q.Observe(v)
		h.Observe(v)
	}
	if got, want := q.Value(), h.Percentile(95); math.Abs(got-want) > 1e-12 {
		t.Fatalf("small-sample p95 %v, want exact %v", got, want)
	}
}

func TestP2QuantileTracksExactP95(t *testing.T) {
	for _, tc := range []struct {
		name string
		gen  func(*rand.Rand) float64
	}{
		{"uniform", func(r *rand.Rand) float64 { return r.Float64() * 100 }},
		{"normal", func(r *rand.Rand) float64 { return r.NormFloat64()*5 + 50 }},
		{"exponential", func(r *rand.Rand) float64 { return r.ExpFloat64() * 10 }},
	} {
		rng := rand.New(rand.NewSource(7))
		q := NewP2Quantile(0.95)
		var h Histogram
		for i := 0; i < 20000; i++ {
			v := tc.gen(rng)
			q.Observe(v)
			h.Observe(v)
		}
		exact := h.Percentile(95)
		spread := h.Max() - h.Min()
		if err := math.Abs(q.Value() - exact); err > 0.02*spread {
			t.Fatalf("%s: P2 p95 %v vs exact %v (err %v beyond 2%% of spread %v)",
				tc.name, q.Value(), exact, err, spread)
		}
	}
}

// Above the threshold, Aggregate must keep exact moments while estimating
// p95 — and must not silently change the small-matrix behavior.
func TestAggregateStreamingPath(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := StreamingThreshold * 4
	results := make([]*Result, 0, n)
	var exact Histogram
	for i := 0; i < n; i++ {
		v := rng.NormFloat64()*2 + 10
		exact.Observe(v)
		r := NewResult("streamed")
		r.Record("variant", "a").Val("latency", v, F2)
		results = append(results, r)
	}
	s := Aggregate(results)
	if len(s.Records) != 1 || len(s.Records[0].Values) != 1 {
		t.Fatalf("unexpected shape: %+v", s)
	}
	d := s.Records[0].Values[0]
	if d.Count != n {
		t.Fatalf("count %d, want %d", d.Count, n)
	}
	if math.Abs(d.Mean-exact.Mean()) > 1e-9 || math.Abs(d.StdDev-exact.StdDev()) > 1e-9 {
		t.Fatalf("streaming moments diverge: mean %v/%v stddev %v/%v",
			d.Mean, exact.Mean(), d.StdDev, exact.StdDev())
	}
	if d.Min != exact.Min() || d.Max != exact.Max() {
		t.Fatalf("min/max diverge")
	}
	spread := exact.Max() - exact.Min()
	if math.Abs(d.P95-exact.Percentile(95)) > 0.05*spread {
		t.Fatalf("p95 estimate %v too far from exact %v", d.P95, exact.Percentile(95))
	}
	if d.CI95 <= 0 {
		t.Fatal("ci95 missing on streamed aggregate")
	}
}
