// Package metrics provides the measurement primitives used by every KARYON
// experiment: histograms with percentiles, counters, gauges sampled over
// virtual time, and series suitable for rendering the tables and figure
// data in EXPERIMENTS.md.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Histogram accumulates float64 observations and answers distribution
// queries. The zero value is ready to use.
type Histogram struct {
	samples []float64
	sorted  bool
	sum     float64
}

// Clone returns an independent copy: observing into or querying the
// clone never touches the original's samples (Percentile sorts in
// place, so a shallow struct copy would not be enough).
func (h *Histogram) Clone() Histogram {
	return Histogram{
		samples: append([]float64(nil), h.samples...),
		sorted:  h.sorted,
		sum:     h.sum,
	}
}

// HistogramState is a truncate-style checkpoint of a histogram (for
// speculative shard windows): it records the sample count rather than the
// samples, so saving is O(1). Restoring is only valid while no query has
// sorted the samples in place since the save — Percentile reorders the
// prefix, after which truncation would keep the wrong samples. Speculative
// batches satisfy this by construction: observer hooks are disabled while
// a batch is in flight, so nothing queries the histogram between save and
// restore.
type HistogramState struct {
	n      int
	sum    float64
	sorted bool
}

// SaveState checkpoints the histogram.
func (h *Histogram) SaveState() HistogramState {
	return HistogramState{n: len(h.samples), sum: h.sum, sorted: h.sorted}
}

// RestoreState rewinds the histogram to a SaveState checkpoint (see
// HistogramState for the no-queries-since-save requirement).
func (h *Histogram) RestoreState(st HistogramState) {
	h.samples = h.samples[:st.n]
	h.sum = st.sum
	h.sorted = st.sorted
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.samples = append(h.samples, v)
	h.sum += v
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / float64(len(h.samples))
}

func (h *Histogram) sort() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation, or 0 with no samples.
func (h *Histogram) Percentile(p float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[len(h.samples)-1]
	}
	rank := p / 100 * float64(len(h.samples)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return h.samples[lo]
	}
	frac := rank - float64(lo)
	return h.samples[lo]*(1-frac) + h.samples[hi]*frac
}

// Median returns the 50th percentile.
func (h *Histogram) Median() float64 { return h.Percentile(50) }

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	return h.samples[0]
}

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	return h.samples[len(h.samples)-1]
}

// StdDev returns the population standard deviation, or 0 with fewer than
// two samples.
func (h *Histogram) StdDev() float64 {
	n := len(h.samples)
	if n < 2 {
		return 0
	}
	mean := h.Mean()
	var ss float64
	for _, v := range h.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Counter is a monotonically increasing event count. The zero value is
// ready to use.
type Counter struct {
	n int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds delta (negative deltas are ignored to preserve monotonicity).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.n += delta
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// Ratio is a success/total pair, e.g. delivered/sent.
type Ratio struct {
	Hits  int64
	Total int64
}

// Observe records one trial with the given outcome.
func (r *Ratio) Observe(hit bool) {
	r.Total++
	if hit {
		r.Hits++
	}
}

// Value returns Hits/Total, or 0 when no trials were recorded.
func (r *Ratio) Value() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Total)
}

// Percent returns the ratio as a percentage.
func (r *Ratio) Percent() float64 { return r.Value() * 100 }

// Point is one (x, y) sample of a series.
type Point struct {
	X float64
	Y float64
}

// Series is an ordered sequence of points, e.g. a sweep of one parameter.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// YAt returns the Y of the first point with the given X and whether it
// exists.
func (s *Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Format helpers used by experiment tables.

// FmtF formats a float with 2 decimal places.
func FmtF(v float64) string { return fmt.Sprintf("%.2f", v) }

// FmtF3 formats a float with 3 decimal places.
func FmtF3(v float64) string { return fmt.Sprintf("%.3f", v) }

// FmtPct formats a fraction as a percentage with 1 decimal place.
func FmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// FmtMs formats a value already in milliseconds.
func FmtMs(v float64) string { return fmt.Sprintf("%.2fms", v) }

// FmtInt formats an integer count.
func FmtInt(v int64) string { return fmt.Sprintf("%d", v) }
