package metrics

import (
	"math"
	"sort"
)

// Welford is a streaming mean/variance accumulator (Welford's online
// algorithm): numerically stable, O(1) memory, one pass. It also tracks
// exact min and max. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Observe folds one sample in.
func (w *Welford) Observe(v float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = v, v
	} else {
		if v < w.min {
			w.min = v
		}
		if v > w.max {
			w.max = v
		}
	}
	d := v - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (v - w.mean)
}

// Count returns the number of samples.
func (w *Welford) Count() int { return w.n }

// Mean returns the running mean, or 0 with no samples.
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return 0
	}
	return w.mean
}

// StdDev returns the population standard deviation, or 0 with fewer than
// two samples (matching Histogram.StdDev).
func (w *Welford) StdDev() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n))
}

// Min returns the smallest sample, or 0 with no samples.
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return 0
	}
	return w.min
}

// Max returns the largest sample, or 0 with no samples.
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return 0
	}
	return w.max
}

// P2Quantile estimates one quantile online with the P² algorithm (Jain &
// Chlamtac, 1985): five markers updated per observation, O(1) memory,
// no sample retention. Below six samples the estimate is exact (the
// markers still hold the raw values).
type P2Quantile struct {
	p     float64
	count int
	q     [5]float64 // marker heights
	n     [5]float64 // marker positions
	np    [5]float64 // desired positions
	dn    [5]float64 // desired-position increments
}

// NewP2Quantile creates an estimator for the p-quantile, p in (0,1).
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		p = 0.5
	}
	pq := &P2Quantile{p: p}
	pq.dn = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return pq
}

// Observe folds one sample in.
func (pq *P2Quantile) Observe(x float64) {
	if pq.count < 5 {
		pq.q[pq.count] = x
		pq.count++
		if pq.count == 5 {
			sort.Float64s(pq.q[:])
			for i := 0; i < 5; i++ {
				pq.n[i] = float64(i)
			}
			pq.np = [5]float64{0, 2 * pq.p, 4 * pq.p, 2 + 2*pq.p, 4}
		}
		return
	}
	var k int
	switch {
	case x < pq.q[0]:
		pq.q[0] = x
		k = 0
	case x >= pq.q[4]:
		pq.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < pq.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		pq.n[i]++
	}
	for i := 0; i < 5; i++ {
		pq.np[i] += pq.dn[i]
	}
	for i := 1; i <= 3; i++ {
		d := pq.np[i] - pq.n[i]
		if (d >= 1 && pq.n[i+1]-pq.n[i] > 1) || (d <= -1 && pq.n[i-1]-pq.n[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			qp := pq.parabolic(i, s)
			if pq.q[i-1] < qp && qp < pq.q[i+1] {
				pq.q[i] = qp
			} else {
				pq.q[i] = pq.linear(i, s)
			}
			pq.n[i] += s
		}
	}
	pq.count++
}

// parabolic is the P² piecewise-parabolic marker update.
func (pq *P2Quantile) parabolic(i int, s float64) float64 {
	return pq.q[i] + s/(pq.n[i+1]-pq.n[i-1])*
		((pq.n[i]-pq.n[i-1]+s)*(pq.q[i+1]-pq.q[i])/(pq.n[i+1]-pq.n[i])+
			(pq.n[i+1]-pq.n[i]-s)*(pq.q[i]-pq.q[i-1])/(pq.n[i]-pq.n[i-1]))
}

// linear is the fallback marker update.
func (pq *P2Quantile) linear(i int, s float64) float64 {
	j := i + int(s)
	return pq.q[i] + s*(pq.q[j]-pq.q[i])/(pq.n[j]-pq.n[i])
}

// Count returns the number of samples.
func (pq *P2Quantile) Count() int { return pq.count }

// Value returns the current quantile estimate, or 0 with no samples.
func (pq *P2Quantile) Value() float64 {
	if pq.count == 0 {
		return 0
	}
	if pq.count <= 5 {
		// Exact small-sample path, interpolated like Histogram.Percentile.
		vals := append([]float64(nil), pq.q[:pq.count]...)
		sort.Float64s(vals)
		rank := pq.p * float64(len(vals)-1)
		lo := int(math.Floor(rank))
		hi := int(math.Ceil(rank))
		if lo == hi {
			return vals[lo]
		}
		frac := rank - float64(lo)
		return vals[lo]*(1-frac) + vals[hi]*frac
	}
	return pq.q[2]
}

// accumulator is what Aggregate needs from a per-measurement store. Two
// implementations: the exact per-value Histogram (small replica counts)
// and the streaming Welford+P² pair (giant seed matrices, bounded memory).
type accumulator interface {
	Observe(v float64)
	Count() int
	Mean() float64
	StdDev() float64
	Min() float64
	Max() float64
	P95() float64
}

// histAcc adapts Histogram to accumulator.
type histAcc struct{ h Histogram }

func (a *histAcc) Observe(v float64) { a.h.Observe(v) }
func (a *histAcc) Count() int        { return a.h.Count() }
func (a *histAcc) Mean() float64     { return a.h.Mean() }
func (a *histAcc) StdDev() float64   { return a.h.StdDev() }
func (a *histAcc) Min() float64      { return a.h.Min() }
func (a *histAcc) Max() float64      { return a.h.Max() }
func (a *histAcc) P95() float64      { return a.h.Percentile(95) }

// streamAcc is the O(1)-memory accumulator: Welford moments plus a P²
// p95 estimate.
type streamAcc struct {
	w  Welford
	p2 *P2Quantile
}

func newStreamAcc() *streamAcc { return &streamAcc{p2: NewP2Quantile(0.95)} }

func (a *streamAcc) Observe(v float64) {
	a.w.Observe(v)
	a.p2.Observe(v)
}
func (a *streamAcc) Count() int      { return a.w.Count() }
func (a *streamAcc) Mean() float64   { return a.w.Mean() }
func (a *streamAcc) StdDev() float64 { return a.w.StdDev() }
func (a *streamAcc) Min() float64    { return a.w.Min() }
func (a *streamAcc) Max() float64    { return a.w.Max() }
func (a *streamAcc) P95() float64    { return a.p2.Value() }
