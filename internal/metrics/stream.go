package metrics

import (
	"math"
	"sort"
)

// Welford is a streaming mean/variance accumulator (Welford's online
// algorithm): numerically stable, O(1) memory, one pass. It also tracks
// exact min and max. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Observe folds one sample in.
func (w *Welford) Observe(v float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = v, v
	} else {
		if v < w.min {
			w.min = v
		}
		if v > w.max {
			w.max = v
		}
	}
	d := v - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (v - w.mean)
}

// Count returns the number of samples.
func (w *Welford) Count() int { return w.n }

// Mean returns the running mean, or 0 with no samples.
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return 0
	}
	return w.mean
}

// StdDev returns the population standard deviation, or 0 with fewer than
// two samples (matching Histogram.StdDev).
func (w *Welford) StdDev() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n))
}

// Min returns the smallest sample, or 0 with no samples.
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return 0
	}
	return w.min
}

// Max returns the largest sample, or 0 with no samples.
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return 0
	}
	return w.max
}

// P2Quantile estimates one quantile online with the P² algorithm (Jain &
// Chlamtac, 1985): five markers updated per observation, O(1) memory,
// no sample retention. Below six samples the estimate is exact (the
// markers still hold the raw values).
type P2Quantile struct {
	p     float64
	count int
	q     [5]float64 // marker heights
	n     [5]float64 // marker positions
	np    [5]float64 // desired positions
	dn    [5]float64 // desired-position increments
}

// NewP2Quantile creates an estimator for the p-quantile, p in (0,1).
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		p = 0.5
	}
	pq := &P2Quantile{p: p}
	pq.dn = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return pq
}

// Observe folds one sample in.
func (pq *P2Quantile) Observe(x float64) {
	if pq.count < 5 {
		pq.q[pq.count] = x
		pq.count++
		if pq.count == 5 {
			sort.Float64s(pq.q[:])
			for i := 0; i < 5; i++ {
				pq.n[i] = float64(i)
			}
			pq.np = [5]float64{0, 2 * pq.p, 4 * pq.p, 2 + 2*pq.p, 4}
		}
		return
	}
	var k int
	switch {
	case x < pq.q[0]:
		pq.q[0] = x
		k = 0
	case x >= pq.q[4]:
		pq.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < pq.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		pq.n[i]++
	}
	for i := 0; i < 5; i++ {
		pq.np[i] += pq.dn[i]
	}
	for i := 1; i <= 3; i++ {
		d := pq.np[i] - pq.n[i]
		if (d >= 1 && pq.n[i+1]-pq.n[i] > 1) || (d <= -1 && pq.n[i-1]-pq.n[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			qp := pq.parabolic(i, s)
			if pq.q[i-1] < qp && qp < pq.q[i+1] {
				pq.q[i] = qp
			} else {
				pq.q[i] = pq.linear(i, s)
			}
			pq.n[i] += s
		}
	}
	pq.count++
}

// parabolic is the P² piecewise-parabolic marker update.
func (pq *P2Quantile) parabolic(i int, s float64) float64 {
	return pq.q[i] + s/(pq.n[i+1]-pq.n[i-1])*
		((pq.n[i]-pq.n[i-1]+s)*(pq.q[i+1]-pq.q[i])/(pq.n[i+1]-pq.n[i])+
			(pq.n[i+1]-pq.n[i]-s)*(pq.q[i]-pq.q[i-1])/(pq.n[i]-pq.n[i-1]))
}

// linear is the fallback marker update.
func (pq *P2Quantile) linear(i int, s float64) float64 {
	j := i + int(s)
	return pq.q[i] + s*(pq.q[j]-pq.q[i])/(pq.n[j]-pq.n[i])
}

// Count returns the number of samples.
func (pq *P2Quantile) Count() int { return pq.count }

// Value returns the current quantile estimate, or 0 with no samples.
func (pq *P2Quantile) Value() float64 {
	if pq.count == 0 {
		return 0
	}
	if pq.count <= 5 {
		// Exact small-sample path, interpolated like Histogram.Percentile.
		vals := append([]float64(nil), pq.q[:pq.count]...)
		sort.Float64s(vals)
		rank := pq.p * float64(len(vals)-1)
		lo := int(math.Floor(rank))
		hi := int(math.Ceil(rank))
		if lo == hi {
			return vals[lo]
		}
		frac := rank - float64(lo)
		return vals[lo]*(1-frac) + vals[hi]*frac
	}
	return pq.q[2]
}

// accumulator is what Aggregate needs from a per-measurement store. Two
// implementations: the exact per-value Histogram (small replica counts)
// and the streaming Welford+P² pair (giant seed matrices, bounded memory).
type accumulator interface {
	Observe(v float64)
	Count() int
	Mean() float64
	StdDev() float64
	Min() float64
	Max() float64
	P95() float64
}

// histAcc adapts Histogram to accumulator.
type histAcc struct{ h Histogram }

func (a *histAcc) Observe(v float64) { a.h.Observe(v) }
func (a *histAcc) Count() int        { return a.h.Count() }
func (a *histAcc) Mean() float64     { return a.h.Mean() }
func (a *histAcc) StdDev() float64   { return a.h.StdDev() }
func (a *histAcc) Min() float64      { return a.h.Min() }
func (a *histAcc) Max() float64      { return a.h.Max() }
func (a *histAcc) P95() float64      { return a.h.Percentile(95) }

// streamTopK bounds the streaming accumulator's largest-values
// reservoir. It keeps the p95 EXACT — matching Histogram.Percentile bit
// for bit — through 20·(streamTopK−1)+1 = 5101 samples, because the
// 95th-percentile rank stays within the retained tail that long. Memory
// stays O(1) per measurement either way.
const streamTopK = 256

// topK is a min-heap of the k largest observations: enough order
// statistics to read extreme upper quantiles back out exactly while
// their rank from the top fits in the reservoir.
type topK struct {
	k    int
	heap []float64
}

func (t *topK) observe(v float64) {
	if len(t.heap) < t.k {
		t.heap = append(t.heap, v)
		i := len(t.heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if t.heap[p] <= t.heap[i] {
				break
			}
			t.heap[p], t.heap[i] = t.heap[i], t.heap[p]
			i = p
		}
		return
	}
	if v <= t.heap[0] {
		return
	}
	t.heap[0] = v
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(t.heap) && t.heap[l] < t.heap[small] {
			small = l
		}
		if r < len(t.heap) && t.heap[r] < t.heap[small] {
			small = r
		}
		if small == i {
			return
		}
		t.heap[i], t.heap[small] = t.heap[small], t.heap[i]
		i = small
	}
}

// percentile computes the p-th percentile of all n observed values using
// only the retained tail — the same rank/interpolation convention as
// Histogram.Percentile — or ok=false when the rank has outgrown the
// reservoir.
func (t *topK) percentile(n int, p float64) (v float64, ok bool) {
	if n == 0 {
		return 0, false
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	// Positions counted from the maximum down; the reservoir holds
	// min(n, k) values, so dLo is in range iff the lo-th order statistic
	// was retained (and dHi ≤ dLo comes with it).
	dLo, dHi := n-1-lo, n-1-hi
	if dLo >= len(t.heap) {
		return 0, false
	}
	sorted := append([]float64(nil), t.heap...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	if lo == hi {
		return sorted[dLo], true
	}
	frac := rank - float64(lo)
	return sorted[dLo]*(1-frac) + sorted[dHi]*frac, true
}

// streamAcc is the O(1)-memory accumulator: Welford moments, a bounded
// reservoir of the largest values (exact p95 while the rank fits — see
// streamTopK), and a P² estimate as the fallback beyond it.
type streamAcc struct {
	w   Welford
	top topK
	p2  *P2Quantile
}

func newStreamAcc() *streamAcc {
	return &streamAcc{top: topK{k: streamTopK}, p2: NewP2Quantile(0.95)}
}

func (a *streamAcc) Observe(v float64) {
	a.w.Observe(v)
	a.top.observe(v)
	a.p2.Observe(v)
}
func (a *streamAcc) Count() int      { return a.w.Count() }
func (a *streamAcc) Mean() float64   { return a.w.Mean() }
func (a *streamAcc) StdDev() float64 { return a.w.StdDev() }
func (a *streamAcc) Min() float64    { return a.w.Min() }
func (a *streamAcc) Max() float64    { return a.w.Max() }

func (a *streamAcc) P95() float64 {
	if v, ok := a.top.percentile(a.w.Count(), 95); ok {
		return v
	}
	return a.p2.Value()
}

// P95Estimated reports whether P95 had to fall back to the P² estimate.
// Aggregate surfaces it as the Dist's p95_estimated marker so a reader
// never mistakes an estimate for the exact order statistic.
func (a *streamAcc) P95Estimated() bool {
	_, ok := a.top.percentile(a.w.Count(), 95)
	return !ok && a.w.Count() > 0
}
