package service

import (
	"encoding/json"
	"fmt"

	"karyon/internal/harness"
	"karyon/internal/metrics"
)

// Line types of the NDJSON result stream.
const (
	// LineReplica carries one replica's structured result; lines appear in
	// seed order, replica i as soon as replicas 0..i have completed.
	LineReplica = "replica"
	// LineSummary is the final line of a successful job: the seed-order
	// aggregate over all replicas.
	LineSummary = "summary"
	// LineError terminates the stream of a failed or cancelled job. Error
	// streams are never archived.
	LineError = "error"
)

// Line is one NDJSON record of a job's result stream. The stream of a
// successful job is replica lines (one per seed, in seed order) followed
// by exactly one summary line; it is a pure function of (job spec, build),
// which is what lets the daemon archive it by content address and replay
// it byte-identically on a hit.
type Line struct {
	Type string `json:"type"`
	// Index and Seed identify a replica line's position in the seed matrix.
	Index *int   `json:"index,omitempty"`
	Seed  *int64 `json:"seed,omitempty"`
	// Result is the replica's structured record set (replica lines).
	Result *metrics.Result `json:"result,omitempty"`
	// Report is the aggregated outcome (summary lines).
	Report *harness.Report `json:"report,omitempty"`
	// Error is the failure message (error lines). Stack carries the
	// captured goroutine stack when the failure was a contained scenario
	// panic — the envelope a client needs to debug a crash it did not host.
	Error string `json:"error,omitempty"`
	Stack string `json:"stack,omitempty"`
}

// marshalLine renders one stream line with its trailing newline. Results
// and reports contain no map-typed fields, so encoding is deterministic —
// a requirement, not a nicety: the archived bytes are the contract.
func marshalLine(l Line) ([]byte, error) {
	b, err := json.Marshal(l)
	if err != nil {
		return nil, fmt.Errorf("service: encoding stream line: %w", err)
	}
	return append(b, '\n'), nil
}

func replicaLine(index int, seed int64, res *metrics.Result) ([]byte, error) {
	return marshalLine(Line{Type: LineReplica, Index: &index, Seed: &seed, Result: res})
}

func summaryLine(rep *harness.Report) ([]byte, error) {
	return marshalLine(Line{Type: LineSummary, Report: rep})
}

func errorLine(msg string) []byte {
	return errorLineStack(msg, "")
}

func errorLineStack(msg, stack string) []byte {
	b, err := marshalLine(Line{Type: LineError, Error: msg, Stack: stack})
	if err != nil {
		// A plain string cannot fail to encode; keep the stream terminated
		// regardless.
		return []byte(`{"type":"error","error":"internal encoding failure"}` + "\n")
	}
	return b
}
