package service

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.CacheDir == "" {
		cfg.CacheDir = t.TempDir()
	}
	if cfg.Build == "" {
		cfg.Build = testBuild
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func tinyHighway() JobSpec {
	return JobSpec{Scenario: "highway", Seed: 7, Replicas: 2, Duration: "10s", Cars: 6}
}

// waitTerminal streams the job to completion and returns the bytes.
func waitTerminal(t *testing.T, s *Server, id string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.StreamTo(id, &buf, nil); err != nil {
		t.Fatalf("StreamTo(%s): %v", id, err)
	}
	return buf.Bytes()
}

// parseStream decodes every NDJSON line.
func parseStream(t *testing.T, b []byte) []Line {
	t.Helper()
	var lines []Line
	sc := bufio.NewScanner(bytes.NewReader(b))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		var l Line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestSubmitTwiceExecutesOnce is the tentpole acceptance in miniature: a
// job submitted twice executes once, and the cached response is
// byte-identical to the first.
func TestSubmitTwiceExecutesOnce(t *testing.T) {
	s := newTestServer(t, Config{})
	st1, err := s.Submit(tinyHighway())
	if err != nil {
		t.Fatal(err)
	}
	if st1.Cached {
		t.Fatal("first submission reported cached")
	}
	first := waitTerminal(t, s, st1.ID)

	st2, err := s.Submit(tinyHighway())
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached {
		t.Fatal("second submission did not hit")
	}
	if st2.ID != st1.ID {
		t.Fatalf("deterministic IDs diverged: %s vs %s", st1.ID, st2.ID)
	}
	second := waitTerminal(t, s, st2.ID)
	if !bytes.Equal(first, second) {
		t.Fatalf("cached stream differs from executed stream:\n%s\nvs\n%s", first, second)
	}

	lines := parseStream(t, first)
	if len(lines) != 3 {
		t.Fatalf("want 2 replica lines + 1 summary, got %d lines", len(lines))
	}
	for i := 0; i < 2; i++ {
		if lines[i].Type != LineReplica || lines[i].Index == nil || *lines[i].Index != i || lines[i].Result == nil {
			t.Fatalf("line %d is not replica %d: %+v", i, i, lines[i])
		}
	}
	last := lines[len(lines)-1]
	if last.Type != LineSummary || last.Report == nil || last.Report.Summary.Replicas != 2 {
		t.Fatalf("bad summary line: %+v", last)
	}

	st := s.Stats()
	if st.CacheMisses != 1 || st.CacheHits != 1 || st.Completed != 1 {
		t.Fatalf("stats misses=%d hits=%d completed=%d, want 1/1/1", st.CacheMisses, st.CacheHits, st.Completed)
	}
}

// TestCacheSurvivesRestart: a new server over the same cache dir answers
// from the archive without executing, byte-identically.
func TestCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Config{CacheDir: dir})
	st, err := s1.Submit(tinyHighway())
	if err != nil {
		t.Fatal(err)
	}
	first := waitTerminal(t, s1, st.ID)
	s1.Close()

	s2 := newTestServer(t, Config{CacheDir: dir})
	st2, err := s2.Submit(tinyHighway())
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached {
		t.Fatal("restarted server missed the disk archive")
	}
	if st2.ResultBytes != len(first) {
		t.Fatalf("archived length %d, want %d", st2.ResultBytes, len(first))
	}
	if got := waitTerminal(t, s2, st2.ID); !bytes.Equal(got, first) {
		t.Fatal("disk-served stream differs from the original")
	}
	if misses := s2.Stats().CacheMisses; misses != 0 {
		t.Fatalf("restarted server executed %d jobs, want 0", misses)
	}
}

// TestTraceHash: a completed job's status carries the SHA-256 of its
// result stream, the hash lands in the archive's meta sidecar, and a
// restarted daemon revives it on a disk hit — so two daemons claiming the
// same spec can be compared by fingerprint alone.
func TestTraceHash(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Config{CacheDir: dir})
	st, err := s1.Submit(tinyHighway())
	if err != nil {
		t.Fatal(err)
	}
	if st.TraceHash != "" {
		t.Fatalf("queued job already has a trace hash %q", st.TraceHash)
	}
	stream := waitTerminal(t, s1, st.ID)
	sum := sha256.Sum256(stream)
	want := hex.EncodeToString(sum[:])
	done, err := s1.Job(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.TraceHash != want {
		t.Fatalf("status trace hash %q, want %q", done.TraceHash, want)
	}
	if meta, ok, err := s1.cache.Meta(st.ID); err != nil || !ok || meta.TraceHash != want {
		t.Fatalf("archive meta trace hash = %q ok=%v err=%v, want %q", meta.TraceHash, ok, err, want)
	}
	s1.Close()

	s2 := newTestServer(t, Config{CacheDir: dir})
	st2, err := s2.Submit(tinyHighway())
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached || st2.TraceHash != want {
		t.Fatalf("disk hit cached=%v trace hash %q, want %q", st2.Cached, st2.TraceHash, want)
	}
}

// TestStatsSweptSurfacesBootSweep: debris a crash mid-archive left behind
// is counted in the stats a restarted daemon reports.
func TestStatsSweptSurfacesBootSweep(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ".tmp-999"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{CacheDir: dir})
	if got := s.Stats().Swept; got != 1 {
		t.Fatalf("Stats.Swept = %d, want 1", got)
	}
}

// TestIndependentServersProduceIdenticalStreams: the stream is a pure
// function of (spec, build) — two daemons with cold caches agree byte for
// byte, which is what makes the content address sound in the first place.
func TestIndependentServersProduceIdenticalStreams(t *testing.T) {
	a := newTestServer(t, Config{})
	b := newTestServer(t, Config{Parallel: 2})
	sta, err := a.Submit(tinyHighway())
	if err != nil {
		t.Fatal(err)
	}
	stb, err := b.Submit(tinyHighway())
	if err != nil {
		t.Fatal(err)
	}
	if sta.ID != stb.ID {
		t.Fatalf("IDs differ across servers: %s vs %s", sta.ID, stb.ID)
	}
	if !bytes.Equal(waitTerminal(t, a, sta.ID), waitTerminal(t, b, stb.ID)) {
		t.Fatal("independent executions of the same spec produced different streams")
	}
}

// TestConcurrentSubmissionsDedupe: many clients racing the same spec cost
// one execution; every one of them reads the same bytes.
func TestConcurrentSubmissionsDedupe(t *testing.T) {
	s := newTestServer(t, Config{})
	const clients = 8
	var wg sync.WaitGroup
	streams := make([][]byte, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := s.Submit(tinyHighway())
			if err != nil {
				errs[i] = err
				return
			}
			var buf bytes.Buffer
			if errs[i] = s.StreamTo(st.ID, &buf, nil); errs[i] == nil {
				streams[i] = buf.Bytes()
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(streams[0], streams[i]) {
			t.Fatalf("client %d read different bytes", i)
		}
	}
	st := s.Stats()
	if st.CacheMisses != 1 {
		t.Fatalf("%d executions for %d racing clients, want 1", st.CacheMisses, clients)
	}
	if st.CacheHits+st.Deduped != clients-1 {
		t.Fatalf("hits=%d deduped=%d, want %d combined", st.CacheHits, st.Deduped, clients-1)
	}
}

// TestFailedJobRetriesAndIsNotCached: failures are never archived, and a
// retry submission schedules a fresh execution under the same ID.
func TestFailedJobRetriesAndIsNotCached(t *testing.T) {
	s := newTestServer(t, Config{JobTimeout: 50 * time.Millisecond})
	// A large replicated world cannot finish in 50ms of wall time.
	big := JobSpec{Scenario: "megahighway", Seed: 3, Replicas: 4, Duration: "10m", Cars: 2000}
	st, err := s.Submit(big)
	if err != nil {
		t.Fatal(err)
	}
	stream := waitTerminal(t, s, st.ID)
	lines := parseStream(t, stream)
	lastLine := lines[len(lines)-1]
	if lastLine.Type != LineError || !strings.Contains(lastLine.Error, "timeout") {
		t.Fatalf("failed stream does not end in a timeout error line: %+v", lastLine)
	}
	got, err := s.Job(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateFailed {
		t.Fatalf("state = %s, want failed", got.State)
	}
	if _, ok, _ := s.cache.Get(st.ID); ok {
		t.Fatal("failed job was archived")
	}
	st2, err := s.Submit(big)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Cached || st2.State == StateFailed {
		t.Fatalf("retry did not schedule a fresh execution: %+v", st2)
	}
	if st2.ID != st.ID {
		t.Fatal("retry changed the deterministic ID")
	}
	if _, err := s.Cancel(st2.ID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, st2.ID)
}

// TestCancelRunningJob: cancellation reaches a running world at its next
// barrier and the job lands in cancelled, not failed.
func TestCancelRunningJob(t *testing.T) {
	s := newTestServer(t, Config{})
	st, err := s.Submit(JobSpec{Scenario: "megahighway", Seed: 5, Duration: "10m", Cars: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for it to leave the queue so the cancel exercises the running
	// path at least sometimes; cancelling while queued is fine too.
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := s.Job(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State == StateRunning || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := s.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, st.ID)
	got, err := s.Job(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", got.State)
	}
	if _, ok, _ := s.cache.Get(st.ID); ok {
		t.Fatal("cancelled job was archived")
	}
}

// TestStreamWhileRunning: a reader attached before the job finishes sees
// exactly the bytes a post-completion reader sees.
func TestStreamWhileRunning(t *testing.T) {
	s := newTestServer(t, Config{})
	st, err := s.Submit(JobSpec{Scenario: "highway", Seed: 11, Replicas: 3, Duration: "20s", Cars: 8})
	if err != nil {
		t.Fatal(err)
	}
	live := waitTerminal(t, s, st.ID) // attaches immediately, tails to completion
	after := waitTerminal(t, s, st.ID)
	if !bytes.Equal(live, after) {
		t.Fatal("live tail and replay differ")
	}
}

// TestDrain: draining refuses new work, finishes what is running, and a
// forced drain cancels survivors.
func TestDrain(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	quick, err := s.Submit(tinyHighway())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("clean drain errored: %v", err)
	}
	if _, err := s.Submit(tinyHighway()); err != ErrDraining {
		t.Fatalf("submit during drain = %v, want ErrDraining", err)
	}
	got, err := s.Job(quick.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone {
		t.Fatalf("in-flight job at drain = %s, want done", got.State)
	}
}

func TestForcedDrainCancelsRunning(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	long, err := s.Submit(JobSpec{Scenario: "megahighway", Seed: 9, Duration: "10m", Cars: 1500})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("forced drain reported clean")
	}
	got, err := s.Job(long.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !terminal(got.State) || got.State == StateDone {
		t.Fatalf("long job after forced drain = %s, want cancelled/failed", got.State)
	}
}

func TestUnknownJob(t *testing.T) {
	s := newTestServer(t, Config{})
	if _, err := s.Job(testKey('e')); err != ErrNotFound {
		t.Fatalf("Job(unknown) = %v, want ErrNotFound", err)
	}
	if _, err := s.Cancel(testKey('e')); err != ErrNotFound {
		t.Fatalf("Cancel(unknown) = %v, want ErrNotFound", err)
	}
	if err := s.StreamTo(testKey('e'), io.Discard, nil); err != ErrNotFound {
		t.Fatalf("StreamTo(unknown) = %v, want ErrNotFound", err)
	}
}

func TestSubmitRejectsBadSpec(t *testing.T) {
	s := newTestServer(t, Config{})
	if _, err := s.Submit(JobSpec{Scenario: "warp-drive"}); err == nil {
		t.Fatal("bad spec accepted")
	}
}

// TestExperimentJob: experiment registry ids run through the same path
// and cache the same way.
func TestExperimentJob(t *testing.T) {
	s := newTestServer(t, Config{})
	spec := JobSpec{Scenario: "E1", Seed: 2, Short: true}
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	first := waitTerminal(t, s, st.ID)
	lines := parseStream(t, first)
	if lines[len(lines)-1].Type != LineSummary {
		t.Fatalf("experiment stream does not end in a summary: %+v", lines[len(lines)-1])
	}
	st2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached {
		t.Fatal("experiment resubmission missed")
	}
}
