package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"time"
)

// validKey matches the hex SHA-256 job IDs CacheKey produces. Everything
// that touches the filesystem or routes a URL id goes through it, so a
// crafted id can never traverse outside the cache directory.
var validKey = regexp.MustCompile(`^[0-9a-f]{64}$`)

// CacheMeta is the sidecar record written next to each archived result
// stream: enough to audit what produced the bytes without parsing them.
type CacheMeta struct {
	Key string `json:"key"`
	// Spec is the normalized job spec the archive answers.
	Spec JobSpec `json:"spec"`
	// Build is the fingerprint of the binary that simulated it.
	Build string `json:"build"`
	// CreatedAt is when the run completed (wall clock, RFC3339).
	CreatedAt time.Time `json:"created_at"`
	// Bytes is the archived stream length; ElapsedMS how long the miss
	// took to simulate — the cost a hit saves.
	Bytes     int   `json:"bytes"`
	ElapsedMS int64 `json:"elapsed_ms"`
	// TraceHash is the SHA-256 of the archived result stream — the
	// byte-identity fingerprint of the run. Two daemons (or two builds)
	// that executed the same spec must produce the same hash; a mismatch
	// is the cue to record both runs and karyon-bisect the traces.
	TraceHash string `json:"trace_hash,omitempty"`
}

// Cache is the content-addressed on-disk run archive: one NDJSON result
// stream plus one meta sidecar per key, sharded into 256 two-hex-char
// subdirectories. Writes are atomic (temp file + rename into place), so a
// concurrent reader sees either the complete archive or none, and a
// crashed daemon never leaves a half-written archive that later reads as
// a truncated "hit". Safe for concurrent use by multiple goroutines — and
// by multiple daemon processes sharing a directory, since rename is the
// only publication step.
type Cache struct {
	dir   string
	swept int64
}

// NewCache opens (creating if needed) a cache rooted at dir and sweeps
// temp files stranded by a crash mid-Put.
func NewCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: cache dir: %w", err)
	}
	return &Cache{dir: dir, swept: sweepTemp(dir)}, nil
}

// Swept reports how many stranded temp files boot-time recovery removed.
func (c *Cache) Swept() int64 { return c.swept }

// sweepTemp removes ".tmp-*" files from the cache root and its shard
// subdirectories. A crash between os.CreateTemp and the rename in
// writeAtomic strands a temp file no rename will ever claim; since the
// rename is the only publication step, every surviving ".tmp-*" is
// garbage by construction and safe to delete at boot.
func sweepTemp(root string) int64 {
	dirs := []string{root}
	ents, err := os.ReadDir(root)
	if err != nil {
		return 0
	}
	for _, e := range ents {
		if e.IsDir() {
			dirs = append(dirs, filepath.Join(root, e.Name()))
		}
	}
	var n int64
	for _, d := range dirs {
		ents, err := os.ReadDir(d)
		if err != nil {
			continue
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasPrefix(e.Name(), ".tmp-") {
				if os.Remove(filepath.Join(d, e.Name())) == nil {
					n++
				}
			}
		}
	}
	return n
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) streamPath(key string) string {
	return filepath.Join(c.dir, key[:2], key+".ndjson")
}

func (c *Cache) metaPath(key string) string {
	return filepath.Join(c.dir, key[:2], key+".meta.json")
}

// Get returns the archived stream for key, or ok=false on a miss. An
// invalid key is a miss, never an error: the caller treats the cache as
// an optimization, and a malformed id already failed validation upstream.
func (c *Cache) Get(key string) (stream []byte, ok bool, err error) {
	if !validKey.MatchString(key) {
		return nil, false, nil
	}
	b, err := os.ReadFile(c.streamPath(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return b, true, nil
}

// Meta returns the sidecar for key, or ok=false when absent.
func (c *Cache) Meta(key string) (meta CacheMeta, ok bool, err error) {
	if !validKey.MatchString(key) {
		return CacheMeta{}, false, nil
	}
	b, err := os.ReadFile(c.metaPath(key))
	if os.IsNotExist(err) {
		return CacheMeta{}, false, nil
	}
	if err != nil {
		return CacheMeta{}, false, err
	}
	if err := json.Unmarshal(b, &meta); err != nil {
		return CacheMeta{}, false, fmt.Errorf("service: corrupt cache meta %s: %w", key, err)
	}
	return meta, true, nil
}

// Put archives a completed run's stream under its key. The stream lands
// first, the meta sidecar second; both via temp-file + rename.
func (c *Cache) Put(key string, stream []byte, meta CacheMeta) error {
	if !validKey.MatchString(key) {
		return fmt.Errorf("service: refusing to archive invalid key %q", key)
	}
	dir := filepath.Join(c.dir, key[:2])
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	meta.Key = key
	meta.Bytes = len(stream)
	if err := writeAtomic(dir, c.streamPath(key), stream); err != nil {
		return err
	}
	mb, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	return writeAtomic(dir, c.metaPath(key), append(mb, '\n'))
}

// writeAtomic writes data to path via a temp file in dir and rename, so
// path is only ever absent or complete.
func writeAtomic(dir, path string, data []byte) error {
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}
