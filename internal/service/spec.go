package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"karyon/internal/experiments"
	"karyon/internal/harness"
)

// JobSpec is the wire form of one simulation job: which scenario or
// experiment to run, the seed matrix, and every knob that shapes the
// simulated output. A spec is submitted as JSON to POST /v1/jobs; the
// daemon normalizes it (defaults applied, fields that do not apply to the
// chosen scenario cleared) and derives the job ID from the canonical form,
// so two submissions that mean the same run — whatever their field order
// or explicit-default spelling — land on the same job.
//
// Duration-typed knobs are Go duration strings ("30s", "2m"). Timeout is
// the only field excluded from the job identity: it caps execution wall
// time without changing what is simulated.
type JobSpec struct {
	// Scenario selects what to run: a world scenario (highway, megahighway,
	// intersection, encounter) or an experiment id from the registry
	// (E1..E16, E-MAC-S).
	Scenario string `json:"scenario"`
	// Seed and Replicas define the seed matrix harness.Seeds(Seed,
	// Replicas); seed 0 means the default base seed 1.
	Seed     int64 `json:"seed,omitempty"`
	Replicas int   `json:"replicas,omitempty"`
	// Shards and Speculate are execution knobs that are nevertheless part
	// of the job identity: the simulated records are byte-identical across
	// them, but speculation telemetry records legitimately vary, and a
	// cached stream must be byte-identical to the run it stands in for.
	Shards    int `json:"shards,omitempty"`
	Speculate int `json:"speculate,omitempty"`
	// Duration is the simulated duration (world scenarios; default 2m).
	Duration string `json:"duration,omitempty"`
	// Cars is the car count for highway/megahighway (0 = scenario default).
	Cars int `json:"cars,omitempty"`
	// Length is the megahighway ring circumference in meters (0 = default).
	Length float64 `json:"length,omitempty"`
	// Loss is the megahighway per-beacon loss probability. It is a pointer
	// so that an explicitly lossless channel ("loss": 0) stays
	// distinguishable from the omitted default (0.05).
	Loss *float64 `json:"loss,omitempty"`
	// V2VRange is the megahighway beacon reach in meters (0 = default).
	V2VRange float64 `json:"v2v_range,omitempty"`
	// Mode is the highway LoS policy: adaptive (default), fixed1..fixed3,
	// or reckless.
	Mode string `json:"mode,omitempty"`
	// FaultRate injects this many randomized fault-campaign events per
	// simulated minute on the highway (0 = none).
	FaultRate float64 `json:"fault_rate,omitempty"`
	// JamEvery/JamBurst add periodic V2V jam bursts (both must be set).
	JamEvery string `json:"jam_every,omitempty"`
	JamBurst string `json:"jam_burst,omitempty"`
	// Medium routes V2V through the slot-level sharded radio; Channels
	// sets its orthogonal channel count.
	Medium   bool `json:"medium,omitempty"`
	Channels int  `json:"channels,omitempty"`
	// FailAt is when the intersection's physical light fails (empty/0 =
	// never); NoBackup disables its virtual backup.
	FailAt   string `json:"fail_at,omitempty"`
	NoBackup bool   `json:"no_backup,omitempty"`
	// Geometry and Voice configure the avionic encounter.
	Geometry string `json:"geometry,omitempty"`
	Voice    bool   `json:"voice,omitempty"`
	// Short runs experiments at reduced fidelity (their -short shape).
	Short bool `json:"short,omitempty"`
	// Timeout caps the job's execution wall time as a Go duration string.
	// The daemon clamps it to its own -job-timeout. NOT part of the job
	// identity or cache key.
	Timeout string `json:"timeout,omitempty"`
}

// specVersion versions the canonical form. Bump it whenever the canonical
// layout or the meaning of any field changes, so stale archives can never
// be served for a semantically different run.
const specVersion = "karyon-job-v1"

// scenarioKind classifies what a normalized spec runs.
type scenarioKind int

const (
	kindHighway scenarioKind = iota
	kindMegaHighway
	kindIntersection
	kindEncounter
	kindExperiment
)

func (s JobSpec) kind() (scenarioKind, error) {
	switch s.Scenario {
	case "highway":
		return kindHighway, nil
	case "megahighway":
		return kindMegaHighway, nil
	case "intersection":
		return kindIntersection, nil
	case "encounter":
		return kindEncounter, nil
	}
	for _, e := range experiments.All() {
		if e.ID == s.Scenario {
			return kindExperiment, nil
		}
	}
	return 0, fmt.Errorf("unknown scenario %q", s.Scenario)
}

func parseDur(name, v string) (time.Duration, error) {
	if v == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q: %w", name, v, err)
	}
	if d < 0 {
		return 0, fmt.Errorf("bad %s %q: negative", name, v)
	}
	return d, nil
}

// Normalize validates the spec and rewrites it into its canonical
// spelling: defaults applied explicitly, duration strings re-rendered in
// Go's canonical form, and every field that does not apply to the chosen
// scenario cleared — so an irrelevant knob can neither split the cache nor
// smuggle two names for the same run. The returned spec is what the daemon
// stores, hashes, and executes.
func (s JobSpec) Normalize() (JobSpec, error) {
	kind, err := s.kind()
	if err != nil {
		return JobSpec{}, err
	}
	n := JobSpec{Scenario: s.Scenario}

	// Seed matrix + execution-shape knobs, shared by every kind.
	n.Seed = s.Seed
	if n.Seed == 0 {
		n.Seed = 1
	}
	n.Replicas = max(1, s.Replicas)
	n.Shards = max(1, s.Shards)
	if s.Speculate >= 2 {
		n.Speculate = s.Speculate
	}
	if s.Timeout != "" {
		d, err := parseDur("timeout", s.Timeout)
		if err != nil {
			return JobSpec{}, err
		}
		if d > 0 {
			n.Timeout = d.String()
		}
	}

	dur := 2 * time.Minute
	if s.Duration != "" {
		if dur, err = parseDur("duration", s.Duration); err != nil {
			return JobSpec{}, err
		}
		if dur == 0 {
			return JobSpec{}, fmt.Errorf("bad duration %q: zero", s.Duration)
		}
	}
	jamEvery, err := parseDur("jam_every", s.JamEvery)
	if err != nil {
		return JobSpec{}, err
	}
	jamBurst, err := parseDur("jam_burst", s.JamBurst)
	if err != nil {
		return JobSpec{}, err
	}
	setJam := func() {
		if jamEvery > 0 && jamBurst > 0 {
			n.JamEvery, n.JamBurst = jamEvery.String(), jamBurst.String()
		}
	}
	setMedium := func() {
		n.Medium = s.Medium
		n.Channels = 1
		if s.Medium && s.Channels > 1 {
			n.Channels = s.Channels
		}
	}

	switch kind {
	case kindHighway:
		n.Duration = dur.String()
		n.Cars = s.Cars
		if n.Cars <= 0 {
			n.Cars = 30
		}
		n.Mode = s.Mode
		if n.Mode == "" {
			n.Mode = "adaptive"
		}
		switch n.Mode {
		case "adaptive", "fixed1", "fixed2", "fixed3", "reckless":
		default:
			return JobSpec{}, fmt.Errorf("unknown mode %q", s.Mode)
		}
		n.FaultRate = s.FaultRate
		setJam()
		setMedium()
	case kindMegaHighway:
		n.Duration = dur.String()
		n.Cars = s.Cars
		if n.Cars <= 0 {
			n.Cars = 200
		}
		n.Length = s.Length
		if n.Length <= 0 {
			n.Length = 10000
		}
		n.V2VRange = s.V2VRange
		if n.V2VRange <= 0 {
			n.V2VRange = 300
		}
		loss := 0.05
		if s.Loss != nil {
			loss = *s.Loss
		}
		if loss < 0 || loss > 1 {
			return JobSpec{}, fmt.Errorf("bad loss %v: want [0,1]", loss)
		}
		n.Loss = &loss
		setJam()
		setMedium()
	case kindIntersection:
		n.Duration = dur.String()
		failAt, err := parseDur("fail_at", s.FailAt)
		if err != nil {
			return JobSpec{}, err
		}
		if failAt > 0 {
			n.FailAt = failAt.String()
		}
		n.NoBackup = s.NoBackup
		n.Speculate = 0 // the intersection has no speculative engine
		setJam()
		setMedium()
	case kindEncounter:
		n.Geometry = s.Geometry
		if n.Geometry == "" {
			n.Geometry = "leveled-crossing"
		}
		switch n.Geometry {
		case "same-direction", "leveled-crossing", "level-change":
		default:
			return JobSpec{}, fmt.Errorf("unknown geometry %q", s.Geometry)
		}
		n.Voice = s.Voice
		n.Shards = 1 // single-kernel scenario: shards never apply
		n.Speculate = 0
	case kindExperiment:
		n.Medium = s.Medium
		n.Short = s.Short
	}
	return n, nil
}

// canonicalSpec is the exact byte layout hashed into the cache key: every
// field explicit (no omitempty — absent and zero must hash identically to
// the normalized default), the seed matrix fully expanded, and the build
// fingerprint folded in. Field order is fixed by the struct, so the hash
// is independent of the JSON field order a client submitted.
type canonicalSpec struct {
	Version   string  `json:"v"`
	Build     string  `json:"build"`
	Scenario  string  `json:"scenario"`
	Seeds     []int64 `json:"seeds"`
	Shards    int     `json:"shards"`
	Speculate int     `json:"speculate"`
	Duration  string  `json:"duration"`
	Cars      int     `json:"cars"`
	Length    float64 `json:"length"`
	Loss      float64 `json:"loss"`
	LossSet   bool    `json:"loss_set"`
	V2VRange  float64 `json:"v2v_range"`
	Mode      string  `json:"mode"`
	FaultRate float64 `json:"fault_rate"`
	JamEvery  string  `json:"jam_every"`
	JamBurst  string  `json:"jam_burst"`
	Medium    bool    `json:"medium"`
	Channels  int     `json:"channels"`
	FailAt    string  `json:"fail_at"`
	NoBackup  bool    `json:"no_backup"`
	Geometry  string  `json:"geometry"`
	Voice     bool    `json:"voice"`
	Short     bool    `json:"short"`
}

// CacheKey returns the content address of the run this spec describes
// under the given build fingerprint: the hex SHA-256 of the canonical
// form. Every run is a pure function of (scenario config, seed matrix,
// build), so the key fully identifies the result bytes; it doubles as the
// deterministic job ID, which is what makes retried submissions dedupe
// instead of double-executing. Timeout is deliberately absent.
func (s JobSpec) CacheKey(build string) (string, error) {
	n, err := s.Normalize()
	if err != nil {
		return "", err
	}
	c := canonicalSpec{
		Version:   specVersion,
		Build:     build,
		Scenario:  n.Scenario,
		Seeds:     harness.Seeds(n.Seed, n.Replicas),
		Shards:    n.Shards,
		Speculate: n.Speculate,
		Duration:  n.Duration,
		Cars:      n.Cars,
		Length:    n.Length,
		V2VRange:  n.V2VRange,
		Mode:      n.Mode,
		FaultRate: n.FaultRate,
		JamEvery:  n.JamEvery,
		JamBurst:  n.JamBurst,
		Medium:    n.Medium,
		Channels:  n.Channels,
		FailAt:    n.FailAt,
		NoBackup:  n.NoBackup,
		Geometry:  n.Geometry,
		Voice:     n.Voice,
		Short:     n.Short,
	}
	if n.Loss != nil {
		c.Loss, c.LossSet = *n.Loss, true
	}
	b, err := json.Marshal(c)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// scenario builds the runnable harness.Scenario for a normalized spec.
func (s JobSpec) scenario() (harness.Scenario, error) {
	dur, _ := parseDur("duration", s.Duration)
	jamEvery, _ := parseDur("jam_every", s.JamEvery)
	jamBurst, _ := parseDur("jam_burst", s.JamBurst)
	kind, err := s.kind()
	if err != nil {
		return nil, err
	}
	switch kind {
	case kindHighway:
		return harness.HighwayScenario{
			Duration: dur, Cars: s.Cars, Mode: s.Mode,
			SensorFaultRate: s.FaultRate, JamEvery: jamEvery, JamBurst: jamBurst,
			Medium: s.Medium, Channels: s.Channels, SpecDepth: s.Speculate,
		}, nil
	case kindMegaHighway:
		loss := 0.0
		if s.Loss != nil {
			loss = *s.Loss
		}
		return harness.MegaHighwayScenario{
			Duration: dur, Cars: s.Cars, Length: s.Length, Loss: loss, V2VRange: s.V2VRange,
			Medium: s.Medium, Channels: s.Channels, JamEvery: jamEvery, JamBurst: jamBurst,
			SpecDepth: s.Speculate,
		}, nil
	case kindIntersection:
		failAt, _ := parseDur("fail_at", s.FailAt)
		return harness.IntersectionScenario{
			Duration: dur, FailAt: failAt, VirtualBackup: !s.NoBackup,
			Medium: s.Medium, Channels: s.Channels, JamEvery: jamEvery, JamBurst: jamBurst,
		}, nil
	case kindEncounter:
		return harness.EncounterScenario{Geometry: s.Geometry, Collaborative: !s.Voice}, nil
	default:
		for _, e := range experiments.All() {
			if e.ID == s.Scenario {
				return experiments.Harnessed{Exp: e, Short: s.Short, Medium: s.Medium, SpecDepth: s.Speculate}, nil
			}
		}
		return nil, fmt.Errorf("unknown scenario %q", s.Scenario)
	}
}

// options builds the harness options for a normalized spec; parallel is
// the per-job replica pool width chosen by the daemon (wall time only,
// never identity).
func (s JobSpec) options(parallel int) harness.Options {
	return harness.Options{Seed: s.Seed, Replicas: s.Replicas, Parallel: parallel, Shards: s.Shards}
}

// timeout returns the job's effective execution deadline: its own Timeout
// clamped to the server maximum. serverMax 0 means the server is
// uncapped; the result 0 means no deadline at all.
func (s JobSpec) timeout(serverMax time.Duration) time.Duration {
	d, _ := parseDur("timeout", s.Timeout)
	if serverMax <= 0 {
		return d
	}
	if d <= 0 || d > serverMax {
		return serverMax
	}
	return d
}
