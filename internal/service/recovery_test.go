package service

import (
	"bytes"
	"context"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"
	"time"

	"karyon/internal/harness"
)

// blockingBackend parks until the job's context dies — the shape of a job
// a crash or drain interrupts mid-execution.
type blockingBackend struct{}

func (blockingBackend) Name() string { return "blocking" }

func (blockingBackend) Run(ctx context.Context, s harness.Scenario, opts harness.Options, emit harness.ReplicaEmit) (*harness.Report, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// panicBackend fails the way no backend should.
type panicBackend struct{}

func (panicBackend) Name() string { return "panic" }

func (panicBackend) Run(ctx context.Context, s harness.Scenario, opts harness.Options, emit harness.ReplicaEmit) (*harness.Report, error) {
	panic("injected scenario panic")
}

func jobID(t *testing.T, spec JobSpec) string {
	t.Helper()
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	id, err := norm.CacheKey(testBuild)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// lineSuffix returns b without its first n complete lines — the bytes a
// resumed stream must deliver. Computed independently of the server's own
// skipLines so the two cannot agree by sharing a bug.
func lineSuffix(b []byte, n int) []byte {
	out := b
	for ; n > 0; n-- {
		i := bytes.IndexByte(out, '\n')
		if i < 0 {
			return nil
		}
		out = out[i+1:]
	}
	return out
}

// noTempDebris fails the test if any atomic-write temp file survived under
// dir: a crash (or any code path) must leave only absent-or-complete files.
func noTempDebris(t *testing.T, dir string) {
	t.Helper()
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasPrefix(d.Name(), ".tmp-") {
			t.Errorf("temp debris left behind: %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// waitJournalEmpty polls until no .journal files remain under dir.
func waitJournalEmpty(t *testing.T, dir string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		des, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		live := 0
		for _, de := range des {
			if strings.HasSuffix(de.Name(), ".journal") {
				live++
			}
		}
		if live == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal still holds %d entries", live)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func waitState(t *testing.T, s *Server, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %.12s stuck in %s, want %s", id, st.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	jn, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey('a')
	spec := JobSpec{Scenario: "highway", Seed: 1}
	if err := jn.Record(JournalRecord{Key: key, State: StateQueued, Spec: spec, At: time.Now()}); err != nil {
		t.Fatal(err)
	}
	if err := jn.Record(JournalRecord{Key: key, State: StateRunning, Spec: spec, At: time.Now()}); err != nil {
		t.Fatal(err)
	}
	if err := jn.Record(JournalRecord{Key: "not a key", State: StateQueued}); err == nil {
		t.Fatal("journal accepted an invalid key")
	}

	// A fresh Journal over the same dir (a restarted daemon) replays the
	// full transition history, last record authoritative.
	jn2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries, skipped, err := jn2.Replay()
	if err != nil || skipped != 0 {
		t.Fatalf("Replay: entries err=%v skipped=%d", err, skipped)
	}
	if len(entries) != 1 || entries[0].Key != key {
		t.Fatalf("replayed %d entries, want 1 for %s", len(entries), key)
	}
	e := entries[0]
	if len(e.History) != 2 || e.Last.State != StateRunning || e.Last.Spec.Scenario != "highway" {
		t.Fatalf("bad replayed entry: %+v", e)
	}

	if err := jn2.Remove(key); err != nil {
		t.Fatal(err)
	}
	if err := jn2.Remove(key); err != nil {
		t.Fatalf("Remove is not idempotent: %v", err)
	}
	entries, _, err = jn2.Replay()
	if err != nil || len(entries) != 0 {
		t.Fatalf("after Remove: %d entries, err=%v", len(entries), err)
	}
	noTempDebris(t, dir)
}

func TestJournalReplaySkipsGarbage(t *testing.T) {
	dir := t.TempDir()
	key := testKey('b')
	// A torn/corrupt file under a valid key, a file under an invalid key,
	// and one good file: replay must keep only the good one.
	if err := os.WriteFile(filepath.Join(dir, key+".journal"), []byte("{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "zz..journal"), []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	jn, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := testKey('c')
	if err := jn.Record(JournalRecord{Key: good, State: StateQueued, At: time.Now()}); err != nil {
		t.Fatal(err)
	}
	jn2, _ := OpenJournal(dir)
	entries, skipped, err := jn2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Key != good {
		t.Fatalf("replayed %d entries, want only %s", len(entries), good)
	}
	if skipped != 2 {
		t.Fatalf("skipped = %d, want 2", skipped)
	}
}

// TestRecoveryReEnqueuesInterruptedJob is the crash-recovery contract in
// miniature: a journal left by a daemon that died mid-job makes the next
// daemon re-run that job to the same byte-identical archive an
// uninterrupted run produces.
func TestRecoveryReEnqueuesInterruptedJob(t *testing.T) {
	spec := tinyHighway()
	id := jobID(t, spec)
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}

	// Reference bytes from an uninterrupted daemon over fresh dirs.
	ref := newTestServer(t, Config{})
	rst, err := ref.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := waitTerminal(t, ref, rst.ID)

	// Forge the journal a crashed daemon leaves behind: the job was
	// accepted, started running, and the process died.
	dir, jdir := t.TempDir(), t.TempDir()
	jn, err := OpenJournal(jdir)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range []State{StateQueued, StateRunning} {
		if err := jn.Record(JournalRecord{Key: id, State: st, Spec: norm, At: time.Now()}); err != nil {
			t.Fatal(err)
		}
	}

	s := newTestServer(t, Config{CacheDir: dir, JournalDir: jdir})
	if got := s.Stats().Recovered; got != 1 {
		t.Fatalf("Recovered = %d, want 1", got)
	}
	st, err := s.Job(id)
	if err != nil {
		t.Fatalf("recovered job unknown: %v", err)
	}
	if !st.Recovered {
		t.Fatal("recovered job not marked Recovered")
	}
	got := waitTerminal(t, s, id)
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered run diverged from uninterrupted run:\n%s\nvs\n%s", got, want)
	}
	stream, ok, err := s.cache.Get(id)
	if err != nil || !ok {
		t.Fatalf("recovered job not archived: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(stream, want) {
		t.Fatal("recovered archive differs from uninterrupted archive")
	}
	waitJournalEmpty(t, jdir)
	noTempDebris(t, dir)
	noTempDebris(t, jdir)
}

// TestRecoveryResolvesArchivedJob: a crash between cache.Put and the
// journal cleanup must not re-run the job — the archive is authoritative.
func TestRecoveryResolvesArchivedJob(t *testing.T) {
	spec := tinyHighway()
	id := jobID(t, spec)
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	dir, jdir := t.TempDir(), t.TempDir()
	stream := []byte(`{"type":"summary"}` + "\n")
	c, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(id, stream, CacheMeta{Spec: norm, Build: testBuild, CreatedAt: time.Now()}); err != nil {
		t.Fatal(err)
	}
	jn, err := OpenJournal(jdir)
	if err != nil {
		t.Fatal(err)
	}
	if err := jn.Record(JournalRecord{Key: id, State: StateDone, Spec: norm, At: time.Now()}); err != nil {
		t.Fatal(err)
	}

	s := newTestServer(t, Config{CacheDir: dir, JournalDir: jdir})
	if got := s.Stats().Recovered; got != 0 {
		t.Fatalf("Recovered = %d, want 0 (archive already durable)", got)
	}
	waitJournalEmpty(t, jdir)
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Cached {
		t.Fatal("submit after recovery missed the archive")
	}
	if misses := s.Stats().CacheMisses; misses != 0 {
		t.Fatalf("recovery re-ran an archived job: misses=%d", misses)
	}
}

// TestDrainInterruptedJobsRecover: shutdown-forced cancellations are
// interruptions, not resolutions — a restart over the same dirs re-runs
// both the drain-killed running job and the queued one, converging to the
// bytes an uninterrupted daemon produces.
func TestDrainInterruptedJobsRecover(t *testing.T) {
	specA := tinyHighway()
	specB := tinyHighway()
	specB.Seed = 8
	idA, idB := jobID(t, specA), jobID(t, specB)

	ref := newTestServer(t, Config{})
	wants := map[string][]byte{}
	for _, spec := range []JobSpec{specA, specB} {
		st, err := ref.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		wants[st.ID] = waitTerminal(t, ref, st.ID)
	}

	dir, jdir := t.TempDir(), t.TempDir()
	s1 := newTestServer(t, Config{
		CacheDir: dir, JournalDir: jdir, Workers: 1,
		Runner: harness.Runner{Backend: blockingBackend{}},
	})
	if _, err := s1.Submit(specA); err != nil {
		t.Fatal(err)
	}
	waitState(t, s1, idA, StateRunning)
	if _, err := s1.Submit(specB); err != nil {
		t.Fatal(err)
	}
	s1.Close() // forced drain: A is killed mid-run, B dies queued

	s2 := newTestServer(t, Config{CacheDir: dir, JournalDir: jdir})
	if got := s2.Stats().Recovered; got != 2 {
		t.Fatalf("Recovered = %d, want 2", got)
	}
	for _, id := range []string{idA, idB} {
		if got := waitTerminal(t, s2, id); !bytes.Equal(got, wants[id]) {
			t.Fatalf("job %.12s recovered to different bytes", id)
		}
	}
	waitJournalEmpty(t, jdir)
	noTempDebris(t, dir)
	noTempDebris(t, jdir)
}

// TestPanicContainedToJob: a panicking backend fails exactly its own job —
// stack captured in the status and the stream's error envelope — and the
// server keeps serving.
func TestPanicContainedToJob(t *testing.T) {
	s := newTestServer(t, Config{Runner: harness.Runner{Backend: panicBackend{}}})
	st, err := s.Submit(tinyHighway())
	if err != nil {
		t.Fatal(err)
	}
	stream := waitTerminal(t, s, st.ID)
	lines := parseStream(t, stream)
	last := lines[len(lines)-1]
	if last.Type != LineError || !strings.Contains(last.Error, "panicked") {
		t.Fatalf("panicked job's stream does not end in a panic error line: %+v", last)
	}
	if !strings.Contains(last.Stack, "panicBackend") {
		t.Fatalf("error envelope carries no useful stack:\n%s", last.Stack)
	}
	got, err := s.Job(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateFailed || !strings.Contains(got.Stack, "panicBackend") {
		t.Fatalf("status = %s stack %q, want failed with captured stack", got.State, got.Stack)
	}
	if stats := s.Stats(); stats.Panics != 1 || stats.Failed != 1 {
		t.Fatalf("stats panics=%d failed=%d, want 1/1", stats.Panics, stats.Failed)
	}
	if _, ok, _ := s.cache.Get(st.ID); ok {
		t.Fatal("panicked job was archived")
	}

	// The daemon survived: it still accepts and executes work.
	spec2 := tinyHighway()
	spec2.Seed = 9
	st2, err := s.Submit(spec2)
	if err != nil {
		t.Fatalf("server dead after contained panic: %v", err)
	}
	waitTerminal(t, s, st2.ID)
	if stats := s.Stats(); stats.Panics != 2 {
		t.Fatalf("second panic not contained: panics=%d", stats.Panics)
	}
}

// TestQueueFullDegradedMode: a saturated queue is explicit degradation —
// ErrBusy on submit and "queue-full" in the stats — not silent buffering.
func TestQueueFullDegradedMode(t *testing.T) {
	s := newTestServer(t, Config{
		Workers: 1, QueueDepth: 1,
		Runner: harness.Runner{Backend: blockingBackend{}},
	})
	specA := tinyHighway()
	if _, err := s.Submit(specA); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, jobID(t, specA), StateRunning)

	specB := tinyHighway()
	specB.Seed = 8
	if _, err := s.Submit(specB); err != nil {
		t.Fatal(err)
	}
	if d := s.Stats().Degraded; !slices.Contains(d, "queue-full") {
		t.Fatalf("Degraded = %v, want queue-full listed", d)
	}
	specC := tinyHighway()
	specC.Seed = 9
	if _, err := s.Submit(specC); err != ErrBusy {
		t.Fatalf("submit over a full queue = %v, want ErrBusy", err)
	}
}

// TestCacheUnavailableDegrades: an unreadable archive degrades to
// execution — announced in the stats, never failing the submission.
func TestCacheUnavailableDegrades(t *testing.T) {
	dir := t.TempDir()
	spec := tinyHighway()
	id := jobID(t, spec)
	// Wedge the archive path: a directory where the stream file would
	// live makes both Get and Put fail.
	if err := os.MkdirAll(filepath.Join(dir, id[:2], id+".ndjson"), 0o755); err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{CacheDir: dir})
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("unreadable cache failed the submission: %v", err)
	}
	if st.Cached {
		t.Fatal("unreadable cache reported a hit")
	}
	if d := s.Stats().Degraded; !slices.Contains(d, "cache-unavailable") {
		t.Fatalf("Degraded = %v, want cache-unavailable listed", d)
	}
	stream := waitTerminal(t, s, id)
	lines := parseStream(t, stream)
	if lines[len(lines)-1].Type != LineSummary {
		t.Fatalf("degraded-mode job did not complete: %+v", lines[len(lines)-1])
	}
	got, err := s.Job(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone {
		t.Fatalf("state = %s, want done despite the dead cache", got.State)
	}
	if d := s.Stats().Degraded; !slices.Contains(d, "cache-unavailable") {
		t.Fatalf("Degraded = %v after failed archive, want cache-unavailable still listed", d)
	}
}

// TestJournalUnavailableDegrades: losing journal durability is announced,
// not fatal — submissions keep working.
func TestJournalUnavailableDegrades(t *testing.T) {
	jdir := filepath.Join(t.TempDir(), "journal")
	s := newTestServer(t, Config{JournalDir: jdir})
	// Replace the journal dir with a regular file so every write fails.
	if err := os.RemoveAll(jdir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jdir, []byte("not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := s.Submit(tinyHighway())
	if err != nil {
		t.Fatalf("dead journal failed the submission: %v", err)
	}
	if d := s.Stats().Degraded; !slices.Contains(d, "journal-unavailable") {
		t.Fatalf("Degraded = %v, want journal-unavailable listed", d)
	}
	stream := waitTerminal(t, s, st.ID)
	if lines := parseStream(t, stream); lines[len(lines)-1].Type != LineSummary {
		t.Fatal("job did not complete under a dead journal")
	}
}

// TestStreamFromResume: for every offset, the resumed stream is exactly
// the full stream minus its first N lines — in-memory and disk-archived
// paths alike.
func TestStreamFromResume(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{CacheDir: dir})
	spec := JobSpec{Scenario: "highway", Seed: 11, Replicas: 3, Duration: "10s", Cars: 6}
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	full := waitTerminal(t, s, st.ID) // 3 replica lines + 1 summary

	check := func(srv *Server, label string) {
		t.Helper()
		for from := 0; from <= 5; from++ {
			var buf bytes.Buffer
			if err := srv.StreamFrom(st.ID, from, &buf, nil); err != nil {
				t.Fatalf("%s StreamFrom(%d): %v", label, from, err)
			}
			if want := lineSuffix(full, from); !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("%s StreamFrom(%d) = %q, want %q", label, from, buf.Bytes(), want)
			}
		}
		if err := srv.StreamFrom(st.ID, -1, io.Discard, nil); err == nil {
			t.Fatalf("%s: negative offset accepted", label)
		}
	}
	check(s, "in-memory")

	// A restarted server serves the same job from the disk archive
	// (buf == nil) through a different resume path; same bytes required.
	s2 := newTestServer(t, Config{CacheDir: dir})
	if _, err := s2.Submit(spec); err != nil {
		t.Fatal(err)
	}
	check(s2, "disk")
}

// TestStreamFromLiveTail: a resume offset works against a job that has not
// produced those lines yet — the reader waits, skips them as they land,
// and receives exactly the suffix.
func TestStreamFromLiveTail(t *testing.T) {
	s := newTestServer(t, Config{})
	spec := JobSpec{Scenario: "highway", Seed: 13, Replicas: 3, Duration: "10s", Cars: 6}
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Attach with an offset immediately — almost certainly before replica
	// 1 exists — and tail to completion.
	var buf bytes.Buffer
	if err := s.StreamFrom(st.ID, 2, &buf, nil); err != nil {
		t.Fatal(err)
	}
	full := waitTerminal(t, s, st.ID)
	if want := lineSuffix(full, 2); !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("live resume = %q, want %q", buf.Bytes(), want)
	}
}
