package service

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"os"
	"runtime/debug"
	"sync"
)

var (
	fpOnce sync.Once
	fp     string
)

// BuildFingerprint identifies the code a result was computed by. A run is
// a pure function of (config, seed matrix, build); the first two live in
// the job spec, and this is the third leg of the cache key — a new build
// must never serve archives simulated by an old one.
//
// The primary fingerprint is a content hash of the running executable:
// identical source bytes reproduce identical binaries under Go's
// reproducible builds, so re-deploying an unchanged daemon keeps its cache
// warm, while any code change — even one the version string doesn't see —
// rolls every key. When the executable is unreadable (unusual sandboxes)
// it falls back to hashing the embedded module build info.
func BuildFingerprint() string {
	fpOnce.Do(func() { fp = computeFingerprint() })
	return fp
}

func computeFingerprint() string {
	if path, err := os.Executable(); err == nil {
		if f, err := os.Open(path); err == nil {
			defer f.Close()
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				return "exe-" + hex.EncodeToString(h.Sum(nil))[:32]
			}
		}
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		sum := sha256.Sum256([]byte(bi.String()))
		return "mod-" + hex.EncodeToString(sum[:])[:32]
	}
	return "unknown"
}
