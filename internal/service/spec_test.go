package service

import (
	"encoding/json"
	"strings"
	"testing"
)

const testBuild = "test-build-0001"

func mustKey(t *testing.T, spec JobSpec) string {
	t.Helper()
	key, err := spec.CacheKey(testBuild)
	if err != nil {
		t.Fatalf("CacheKey(%+v): %v", spec, err)
	}
	if !validKey.MatchString(key) {
		t.Fatalf("key %q is not 64 hex chars", key)
	}
	return key
}

// TestCacheKeyFieldOrderInvariance: the same job spelled with JSON fields
// in any order — and with defaults explicit or omitted — hashes to the
// same key. The key must be a function of what the spec means, not of how
// the client serialized it.
func TestCacheKeyFieldOrderInvariance(t *testing.T) {
	spellings := []string{
		`{"scenario":"megahighway","seed":7,"replicas":3,"cars":120,"duration":"30s","medium":true,"channels":2}`,
		`{"channels":2,"medium":true,"duration":"30s","cars":120,"replicas":3,"seed":7,"scenario":"megahighway"}`,
		`{"duration":"30s","scenario":"megahighway","medium":true,"seed":7,"cars":120,"channels":2,"replicas":3}`,
		// Defaults spelled out explicitly must not split the key either.
		`{"scenario":"megahighway","seed":7,"replicas":3,"cars":120,"duration":"30s","medium":true,"channels":2,` +
			`"shards":1,"length":10000,"v2v_range":300,"loss":0.05}`,
	}
	keys := map[string]bool{}
	for _, raw := range spellings {
		var spec JobSpec
		if err := json.Unmarshal([]byte(raw), &spec); err != nil {
			t.Fatalf("unmarshal %s: %v", raw, err)
		}
		keys[mustKey(t, spec)] = true
	}
	if len(keys) != 1 {
		t.Fatalf("equivalent spellings produced %d distinct keys: %v", len(keys), keys)
	}
}

// TestCacheKeyDurationSpelling: "90s" and "1m30s" are the same duration
// and must be the same job.
func TestCacheKeyDurationSpelling(t *testing.T) {
	a := mustKey(t, JobSpec{Scenario: "highway", Duration: "90s"})
	b := mustKey(t, JobSpec{Scenario: "highway", Duration: "1m30s"})
	if a != b {
		t.Fatalf("equivalent duration spellings split the key")
	}
}

// TestCacheKeyKnobSensitivity: every knob that can change the result
// stream — including the execution-shape knobs speculate and shards,
// whose telemetry records legitimately vary — must change the key, and
// every mutation must yield a distinct key.
func TestCacheKeyKnobSensitivity(t *testing.T) {
	loss01 := 0.1
	base := JobSpec{Scenario: "megahighway", Seed: 7, Replicas: 2, Duration: "30s"}
	mutations := map[string]JobSpec{
		"seed":      {Scenario: "megahighway", Seed: 8, Replicas: 2, Duration: "30s"},
		"replicas":  {Scenario: "megahighway", Seed: 7, Replicas: 3, Duration: "30s"},
		"shards":    {Scenario: "megahighway", Seed: 7, Replicas: 2, Duration: "30s", Shards: 2},
		"speculate": {Scenario: "megahighway", Seed: 7, Replicas: 2, Duration: "30s", Speculate: 4},
		"duration":  {Scenario: "megahighway", Seed: 7, Replicas: 2, Duration: "45s"},
		"cars":      {Scenario: "megahighway", Seed: 7, Replicas: 2, Duration: "30s", Cars: 150},
		"length":    {Scenario: "megahighway", Seed: 7, Replicas: 2, Duration: "30s", Length: 20000},
		"loss":      {Scenario: "megahighway", Seed: 7, Replicas: 2, Duration: "30s", Loss: &loss01},
		"v2v_range": {Scenario: "megahighway", Seed: 7, Replicas: 2, Duration: "30s", V2VRange: 400},
		"medium":    {Scenario: "megahighway", Seed: 7, Replicas: 2, Duration: "30s", Medium: true},
		"jam":       {Scenario: "megahighway", Seed: 7, Replicas: 2, Duration: "30s", JamEvery: "10s", JamBurst: "1s"},
		"scenario":  {Scenario: "highway", Seed: 7, Replicas: 2, Duration: "30s"},
	}
	baseKey := mustKey(t, base)
	seen := map[string]string{"base": baseKey}
	for name, m := range mutations {
		key := mustKey(t, m)
		if key == baseKey {
			t.Errorf("mutating %s did not change the cache key", name)
		}
		if prev, dup := seen[key]; dup {
			t.Errorf("mutations %s and %s collided on one key", name, prev)
		}
		seen[key] = name
	}

	// Scenario-specific knobs on their own scenarios.
	if mustKey(t, JobSpec{Scenario: "highway", Mode: "fixed2"}) == mustKey(t, JobSpec{Scenario: "highway"}) {
		t.Error("highway mode did not change the key")
	}
	if mustKey(t, JobSpec{Scenario: "highway", FaultRate: 2}) == mustKey(t, JobSpec{Scenario: "highway"}) {
		t.Error("highway fault_rate did not change the key")
	}
	if mustKey(t, JobSpec{Scenario: "highway", Channels: 2, Medium: true}) == mustKey(t, JobSpec{Scenario: "highway", Medium: true}) {
		t.Error("channels did not change the key on a medium world")
	}
	if mustKey(t, JobSpec{Scenario: "intersection", FailAt: "60s"}) == mustKey(t, JobSpec{Scenario: "intersection"}) {
		t.Error("intersection fail_at did not change the key")
	}
	if mustKey(t, JobSpec{Scenario: "intersection", NoBackup: true}) == mustKey(t, JobSpec{Scenario: "intersection"}) {
		t.Error("intersection no_backup did not change the key")
	}
	if mustKey(t, JobSpec{Scenario: "encounter", Geometry: "level-change"}) == mustKey(t, JobSpec{Scenario: "encounter"}) {
		t.Error("encounter geometry did not change the key")
	}
	if mustKey(t, JobSpec{Scenario: "encounter", Voice: true}) == mustKey(t, JobSpec{Scenario: "encounter"}) {
		t.Error("encounter voice did not change the key")
	}
	if mustKey(t, JobSpec{Scenario: "E12", Short: true}) == mustKey(t, JobSpec{Scenario: "E12"}) {
		t.Error("experiment short did not change the key")
	}
	if mustKey(t, JobSpec{Scenario: "E12", Medium: true}) == mustKey(t, JobSpec{Scenario: "E12"}) {
		t.Error("experiment medium did not change the key")
	}
}

// TestCacheKeyIrrelevantKnobsDoNotSplit: a knob that cannot influence the
// chosen scenario's output must be normalized away, or equivalent runs
// would needlessly miss.
func TestCacheKeyIrrelevantKnobsDoNotSplit(t *testing.T) {
	if mustKey(t, JobSpec{Scenario: "encounter", Shards: 8}) != mustKey(t, JobSpec{Scenario: "encounter"}) {
		t.Error("shards split the key of the single-kernel encounter scenario")
	}
	if mustKey(t, JobSpec{Scenario: "intersection", Speculate: 4}) != mustKey(t, JobSpec{Scenario: "intersection"}) {
		t.Error("speculate split the key of the intersection (no speculative engine)")
	}
	if mustKey(t, JobSpec{Scenario: "highway", Geometry: "level-change"}) != mustKey(t, JobSpec{Scenario: "highway"}) {
		t.Error("encounter-only geometry split a highway key")
	}
	// Speculate < 2 is lockstep, exactly like omitting it.
	if mustKey(t, JobSpec{Scenario: "highway", Speculate: 1}) != mustKey(t, JobSpec{Scenario: "highway"}) {
		t.Error("speculate=1 (lockstep) split the key")
	}
	// Jam knobs only act as a pair.
	if mustKey(t, JobSpec{Scenario: "highway", JamEvery: "10s"}) != mustKey(t, JobSpec{Scenario: "highway"}) {
		t.Error("jam_every without jam_burst split the key")
	}
}

// TestCacheKeyTimeoutExcluded: the execution deadline does not change
// what is simulated and must not split the cache.
func TestCacheKeyTimeoutExcluded(t *testing.T) {
	if mustKey(t, JobSpec{Scenario: "highway", Timeout: "5s"}) != mustKey(t, JobSpec{Scenario: "highway"}) {
		t.Fatal("timeout is part of the cache key")
	}
}

// TestCacheKeyBuildSensitivity: a different build fingerprint must roll
// every key — an old binary's archives can never answer for a new one.
func TestCacheKeyBuildSensitivity(t *testing.T) {
	spec := JobSpec{Scenario: "highway"}
	a, err := spec.CacheKey("build-a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.CacheKey("build-b")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("build fingerprint does not affect the cache key")
	}
}

func TestNormalizeRejectsBadSpecs(t *testing.T) {
	bad := []JobSpec{
		{Scenario: ""},
		{Scenario: "warp-drive"},
		{Scenario: "highway", Mode: "bogus"},
		{Scenario: "highway", Duration: "soon"},
		{Scenario: "highway", Duration: "-5s"},
		{Scenario: "encounter", Geometry: "spiral"},
		{Scenario: "megahighway", Loss: ptr(1.5)},
		{Scenario: "highway", Timeout: "whenever"},
	}
	for _, spec := range bad {
		if _, err := spec.Normalize(); err == nil {
			t.Errorf("Normalize(%+v) accepted a bad spec", spec)
		}
	}
}

func TestNormalizeAppliesScenarioDefaults(t *testing.T) {
	n, err := JobSpec{Scenario: "megahighway"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Seed != 1 || n.Replicas != 1 || n.Shards != 1 || n.Cars != 200 ||
		n.Length != 10000 || n.V2VRange != 300 || n.Loss == nil || *n.Loss != 0.05 ||
		n.Duration != "2m0s" || n.Channels != 1 {
		t.Fatalf("unexpected normalized megahighway: %+v", n)
	}
	// The normalized spec must be a fixed point: normalizing it again
	// changes nothing (it is what the daemon stores and hashes).
	again, err := n.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	ka, kb := mustKey(t, n), mustKey(t, again)
	if ka != kb {
		t.Fatal("Normalize is not idempotent")
	}
}

func TestBuildFingerprintStableAndShaped(t *testing.T) {
	a, b := BuildFingerprint(), BuildFingerprint()
	if a != b {
		t.Fatalf("fingerprint not stable: %q vs %q", a, b)
	}
	if !strings.HasPrefix(a, "exe-") && !strings.HasPrefix(a, "mod-") {
		t.Fatalf("unexpected fingerprint shape %q", a)
	}
}

func ptr[T any](v T) *T { return &v }
