package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// Handler returns the daemon's control API. Endpoints (all under /v1, all
// JSON; the full reference with curl examples is docs/API.md):
//
//	POST /v1/jobs              submit a JobSpec; returns the job Status
//	GET  /v1/jobs              list known jobs in submission order
//	GET  /v1/jobs/{id}         one job's Status
//	GET  /v1/jobs/{id}/results NDJSON result stream (tails live jobs)
//	POST /v1/jobs/{id}/cancel  cancel a queued or running job
//	GET  /v1/stats             operational counters
//	GET  /v1/healthz           liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleResults)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	return mux
}

// apiError is the JSON error envelope every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(apiError{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	st, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrDraining):
		// Explicit degraded mode, not an opaque failure: the daemon is
		// shutting down; another instance (or a retry after restart) will
		// take the job. Retry-After makes the backoff hint explicit.
		w.Header().Set("Retry-After", "5")
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, ErrBusy):
		// Queue-full is a load-shedding degraded mode: the submission is
		// safe to retry (deterministic IDs dedupe), so say when.
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
	case err != nil:
		writeErr(w, http.StatusBadRequest, "bad job spec: %v", err)
	default:
		code := http.StatusAccepted
		if st.Cached {
			code = http.StatusOK
		}
		writeJSON(w, code, st)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	st, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.Job(id); err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	// ?from=N resumes a dropped stream: the first N complete NDJSON lines
	// are skipped and exactly the missing suffix flows. N is the line
	// count the client already holds (equivalently: the next replica
	// index, since replica lines precede the single terminal line).
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "bad from offset %q", q)
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	var flush func()
	if f, ok := w.(http.Flusher); ok {
		flush = f.Flush
	}
	// A mid-stream failure (client gone) just ends the copy; the status
	// line is already out.
	_ = s.StreamFrom(id, from, w, flush)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "build": s.cfg.Build})
}
