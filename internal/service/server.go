// Package service is the karyon-d daemon core: simulation-as-a-service
// over the harness runner, with a deterministic run cache.
//
// A job is a JobSpec — scenario config plus seed matrix. Because every
// run is a pure function of (scenario config, seed matrix, build), the
// canonical hash of those three is both the job's ID and the content
// address of its result: retried submissions dedupe onto the in-flight
// execution instead of double-executing, and completed NDJSON result
// streams are archived in an on-disk cache (Cache) and replayed
// byte-identically for every later submission of the same spec — a
// million clients asking for the same sweep cost one execution.
//
// The Server schedules cache misses onto a bounded worker pool of
// harness.Runner calls, streams replica results incrementally (NDJSON, in
// seed order) to any number of concurrent readers while the job runs,
// enforces per-job timeouts, and drains gracefully: Drain stops intake,
// lets running jobs finish until the deadline, then cancels them at the
// next window barrier. HTTP transport lives in http.go; the thin client
// in internal/serviceclient.
package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"karyon/internal/harness"
	"karyon/internal/metrics"
)

// State is a job's lifecycle phase.
type State string

// Job lifecycle states. Queued and running jobs are live; done, failed,
// and cancelled are terminal. Only done jobs have (and archive) a
// complete result stream.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

func terminal(st State) bool {
	return st == StateDone || st == StateFailed || st == StateCancelled
}

// Config configures a Server.
type Config struct {
	// CacheDir roots the on-disk run cache (required).
	CacheDir string
	// JournalDir roots the crash-safe job journal. When set, every job
	// transition is recorded through the same atomic tmp+rename discipline
	// as the cache, and New replays the journal: jobs that were queued or
	// running when the previous process died are re-enqueued and converge
	// to the same byte-identical archives (re-execution is idempotent —
	// every run is a pure function of (spec, seed matrix, build)). Empty
	// disables journaling.
	JournalDir string
	// Workers bounds how many jobs execute concurrently (default: number
	// of CPUs).
	Workers int
	// QueueDepth bounds accepted-but-not-started jobs; submissions beyond
	// it are refused with ErrBusy rather than buffered without bound
	// (default 1024).
	QueueDepth int
	// JobTimeout caps any single job's execution wall time; a spec's own
	// Timeout may shorten but never exceed it (default 10m; negative =
	// uncapped).
	JobTimeout time.Duration
	// Parallel is the per-job replica worker-pool width (default:
	// GOMAXPROCS/Workers, min 1). Wall time only — never output.
	Parallel int
	// Runner executes jobs; its zero value is the in-process local
	// backend. A remote Backend drops in here.
	Runner harness.Runner
	// Build overrides the binary fingerprint folded into job IDs and
	// cache keys. Tests set it for stable keys; the daemon leaves it
	// empty and gets BuildFingerprint().
	Build string
	// Log receives operational messages (default: os.Stderr).
	Log io.Writer
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 1024
	}
	if c.JobTimeout == 0 {
		c.JobTimeout = 10 * time.Minute
	} else if c.JobTimeout < 0 {
		c.JobTimeout = 0 // explicit "uncapped"
	}
	if c.Parallel < 1 {
		c.Parallel = max(1, runtime.GOMAXPROCS(0)/c.Workers)
	}
	if c.Build == "" {
		c.Build = BuildFingerprint()
	}
	if c.Log == nil {
		c.Log = os.Stderr
	}
	return c
}

// Submission errors the transport layer maps to HTTP statuses.
var (
	// ErrDraining rejects new submissions during graceful shutdown.
	ErrDraining = errors.New("service: draining, not accepting jobs")
	// ErrBusy rejects submissions when the job queue is full.
	ErrBusy = errors.New("service: job queue full")
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("service: no such job")
)

// Status is the wire form of one job's state.
type Status struct {
	// ID is the job's deterministic identity: the cache key of its spec
	// under the server's build. Resubmitting an equivalent spec yields
	// the same ID.
	ID    string `json:"id"`
	State State  `json:"state"`
	// Cached is true when the result stream was served from the archive
	// (or from a completed in-memory job) without a new execution.
	Cached bool   `json:"cached"`
	Error  string `json:"error,omitempty"`
	// Stack is the captured goroutine stack when the job failed because
	// its scenario panicked; the panic was contained to this job.
	Stack string `json:"stack,omitempty"`
	// Recovered is true when this execution was re-enqueued from the
	// journal after a daemon crash rather than submitted by a client.
	Recovered bool `json:"recovered,omitempty"`
	// Spec is the normalized spec the job runs.
	Spec        JobSpec    `json:"spec"`
	CreatedAt   time.Time  `json:"created_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	ResultBytes int        `json:"result_bytes"`
	// TraceHash is the SHA-256 of the result stream — the byte-identity
	// fingerprint of the run (see CacheMeta.TraceHash). Empty until the
	// job completes.
	TraceHash string `json:"trace_hash,omitempty"`
}

// Stats is the server's operational counter snapshot.
type Stats struct {
	// Submitted counts every POST that resolved to a job (including
	// dedupes and hits).
	Submitted int64 `json:"submitted"`
	// CacheHits counts submissions answered by an already-complete result
	// (disk archive or finished in-memory job); CacheMisses counts
	// submissions that scheduled a new execution; Deduped counts
	// submissions attached to an in-flight execution of the same spec.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	Deduped     int64 `json:"deduped"`
	Completed   int64 `json:"completed"`
	Failed      int64 `json:"failed"`
	Cancelled   int64 `json:"cancelled"`
	// Recovered counts jobs re-enqueued from the journal at startup —
	// work a previous process left interrupted that this one finished.
	Recovered int64 `json:"recovered"`
	// Panics counts contained scenario panics: each failed exactly its own
	// job (stack in the job status), never the daemon.
	Panics int64 `json:"panics"`
	// Swept counts stranded cache temp files removed at boot — debris of a
	// crash mid-archive, cleaned before the first submission.
	Swept    int64  `json:"swept"`
	Queued   int    `json:"queued"`
	Running  int    `json:"running"`
	Workers  int    `json:"workers"`
	Build    string `json:"build"`
	Draining bool   `json:"draining"`
	// Degraded lists the explicit degraded modes currently in force
	// ("queue-full", "cache-unavailable", "journal-unavailable"), in the
	// KARYON level-of-service spirit: reduced service is announced, never
	// silent. Empty means full service.
	Degraded []string `json:"degraded,omitempty"`
}

// job is the in-memory record of one submission chain. Its buf accumulates
// the NDJSON stream while running; cond broadcasts every append and state
// change so any number of StreamTo readers can tail it concurrently. Jobs
// revived from the disk archive carry no buf — their bytes are served from
// disk per read, so a hot cache does not pin every archived stream in
// daemon memory.
type job struct {
	id   string
	spec JobSpec

	mu        sync.Mutex
	cond      *sync.Cond
	state     State
	errmsg    string
	stack     string // captured stack of a contained scenario panic
	cached    bool
	recovered bool // re-enqueued from the journal at startup
	archived  bool // result bytes live (also) in the disk cache
	buf       []byte
	// resultBytes is the stream length for jobs whose bytes live only on
	// disk (buf == nil); len(buf) covers the rest.
	resultBytes int
	// traceHash is the stream's SHA-256, set on completion (or revived
	// from the archive's meta sidecar).
	traceHash string
	created   time.Time
	started   time.Time
	finished  time.Time
	// cancelRequested distinguishes an explicit cancel from a timeout once
	// the context dies; cancel aborts a running execution. drainKill marks
	// a cancellation forced by shutdown: an interruption, not a decision —
	// a journaled drain-killed job is recovered at the next startup.
	cancelRequested bool
	drainKill       bool
	cancel          context.CancelFunc
}

func newJob(id string, spec JobSpec, state State) *job {
	j := &job{id: id, spec: spec, state: state, created: time.Now()}
	j.cond = sync.NewCond(&j.mu)
	return j
}

func (j *job) status() *Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := &Status{
		ID:          j.id,
		State:       j.state,
		Cached:      j.cached,
		Error:       j.errmsg,
		Stack:       j.stack,
		Recovered:   j.recovered,
		Spec:        j.spec,
		CreatedAt:   j.created,
		ResultBytes: max(len(j.buf), j.resultBytes),
		TraceHash:   j.traceHash,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

// appendStream appends bytes to the job's result stream and wakes readers.
func (j *job) appendStream(b []byte) {
	j.mu.Lock()
	j.buf = append(j.buf, b...)
	j.cond.Broadcast()
	j.mu.Unlock()
}

// finish moves the job to a terminal state and wakes readers.
func (j *job) finish(state State, errmsg string) {
	j.mu.Lock()
	j.state = state
	j.errmsg = errmsg
	j.finished = time.Now()
	j.cond.Broadcast()
	j.mu.Unlock()
}

// Server is the daemon core. Create with New, serve its Handler, stop
// with Drain (graceful) or Close (immediate).
type Server struct {
	cfg     Config
	cache   *Cache
	journal *Journal // nil when journaling is disabled
	log     *log.Logger

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for listing
	queue    chan *job
	draining bool
	stats    Stats
	// Sticky degraded-mode flags (set on the first failed operation,
	// cleared on the next successful one); queue-full is computed live.
	cacheDegraded   bool
	journalDegraded bool

	wg sync.WaitGroup
}

// New opens the cache, replays the journal (re-enqueueing every job a
// previous process left interrupted), and starts the worker pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.CacheDir == "" {
		return nil, errors.New("service: Config.CacheDir is required")
	}
	cache, err := NewCache(cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		cache: cache,
		log:   log.New(cfg.Log, "karyon-d: ", log.LstdFlags),
		jobs:  map[string]*job{},
		queue: make(chan *job, cfg.QueueDepth),
	}
	s.stats.Workers = cfg.Workers
	s.stats.Build = cfg.Build
	s.stats.Swept = cache.Swept()
	if cfg.JournalDir != "" {
		journal, err := OpenJournal(cfg.JournalDir)
		if err != nil {
			return nil, err
		}
		s.journal = journal
		if err := s.recoverJournal(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// recoverJournal replays the journal before the workers start: every journaled
// job without a complete archive is re-enqueued and will converge to the
// same byte-identical result a crash-free run would have produced —
// re-execution is free of side effects and deterministic by construction.
// Jobs whose archive already landed (the crash hit between cache.Put and
// the journal cleanup) are resolved in place. Recovery never fails the
// boot for one bad entry; at worst a job re-runs.
func (s *Server) recoverJournal() error {
	entries, skipped, err := s.journal.Replay()
	if err != nil {
		return err
	}
	if skipped > 0 {
		s.log.Printf("journal: skipped %d unreadable entries", skipped)
	}
	for _, e := range entries {
		if _, ok, err := s.cache.Get(e.Key); err == nil && ok {
			// Finished and archived; only the journal cleanup was lost.
			if err := s.journal.Remove(e.Key); err != nil {
				s.log.Printf("journal: cleanup of archived job %.12s: %v", e.Key, err)
			}
			continue
		}
		if len(s.jobs) == cap(s.queue) {
			// More interrupted jobs than queue slots: the remainder stays
			// journaled and recovers on the next restart.
			s.log.Printf("journal: queue full, deferring recovery of job %.12s", e.Key)
			continue
		}
		j := newJob(e.Key, e.Last.Spec, StateQueued)
		j.recovered = true
		s.queue <- j
		s.remember(j)
		s.stats.Recovered++
		s.stats.Queued++
		s.journalRecord(JournalRecord{
			Key: e.Key, State: StateQueued, Spec: e.Last.Spec,
			At: time.Now(), Recovered: true,
		})
		s.log.Printf("job %.12s: recovered from journal (was %s), re-enqueued", e.Key, e.Last.State)
	}
	return nil
}

// journalRecord writes one transition, downgrading a journal failure to a
// logged degraded mode: losing durability must not fail live requests.
// Callers hold s.mu (or run before the workers start).
func (s *Server) journalRecord(rec JournalRecord) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Record(rec); err != nil {
		s.journalDegraded = true
		s.log.Printf("job %.12s: journal write failed: %v", rec.Key, err)
		return
	}
	s.journalDegraded = false
}

// journalRemove resolves a job's journal entry (same degraded-mode
// discipline as journalRecord). Callers hold s.mu.
func (s *Server) journalRemove(key string) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Remove(key); err != nil {
		s.journalDegraded = true
		s.log.Printf("job %.12s: journal cleanup failed: %v", key, err)
	}
}

// Build returns the fingerprint job IDs are derived under.
func (s *Server) Build() string { return s.cfg.Build }

// Submit resolves a spec to its deterministic job: a fresh execution on a
// cache miss, the archived result on a hit, or the in-flight job when an
// equivalent spec is already queued or running. The returned status's ID
// is the cache key; Cached reports whether the result already existed.
func (s *Server) Submit(spec JobSpec) (*Status, error) {
	norm, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	id, err := norm.CacheKey(s.cfg.Build)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	s.stats.Submitted++

	if j, ok := s.jobs[id]; ok {
		j.mu.Lock()
		st, errmsg := j.state, j.errmsg
		j.mu.Unlock()
		switch {
		case st == StateDone:
			s.stats.CacheHits++
			out := j.status()
			out.Cached = true
			return out, nil
		case !terminal(st):
			s.stats.Deduped++
			return j.status(), nil
		default:
			// A failed or cancelled attempt is not a result; a retry
			// submission schedules a fresh execution under the same ID.
			s.log.Printf("job %.12s: retrying after %s (%s)", id, st, errmsg)
			s.forget(id)
		}
	}

	if stream, ok, err := s.cache.Get(id); err != nil {
		// Cache unreadable (directory vanished, permissions, bad disk):
		// degrade explicitly and execute as a miss instead of failing the
		// submission — the archive is an optimization, not the service.
		s.cacheDegraded = true
		s.log.Printf("job %.12s: cache read failed, degrading to execution: %v", id, err)
	} else if ok {
		s.cacheDegraded = false
		// Record the length but drop the bytes: disk-backed jobs stream
		// from the archive per read, so a hot cache does not pin every
		// archived stream in daemon memory.
		j := newJob(id, norm, StateDone)
		j.cached, j.archived = true, true
		j.finished = j.created
		j.resultBytes = len(stream)
		if meta, ok, _ := s.cache.Meta(id); ok {
			j.traceHash = meta.TraceHash
		}
		s.remember(j)
		s.stats.CacheHits++
		return j.status(), nil
	}

	j := newJob(id, norm, StateQueued)
	select {
	case s.queue <- j:
	default:
		return nil, ErrBusy
	}
	s.remember(j)
	s.stats.CacheMisses++
	s.stats.Queued++
	s.journalRecord(JournalRecord{Key: id, State: StateQueued, Spec: norm, At: time.Now()})
	return j.status(), nil
}

// remember/forget maintain the id index; callers hold s.mu.
func (s *Server) remember(j *job) {
	if _, ok := s.jobs[j.id]; !ok {
		s.order = append(s.order, j.id)
	}
	s.jobs[j.id] = j
}

func (s *Server) forget(id string) {
	delete(s.jobs, id)
	for i, v := range s.order {
		if v == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// Job returns the status of a known job.
func (s *Server) Job(id string) (*Status, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	return j.status(), nil
}

// Jobs lists every known job in submission order.
func (s *Server) Jobs() []*Status {
	s.mu.Lock()
	ids := append([]string{}, s.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]*Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	return out
}

// Cancel stops a job: a queued job is cancelled in place (the worker
// skips it), a running one has its context cancelled — the world stops at
// the next window barrier. Cancelling a terminal job is a no-op.
func (s *Server) Cancel(id string) (*Status, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	wasQueued := false
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		wasQueued = true
		j.state = StateCancelled
		j.errmsg = "cancelled before start"
		j.finished = time.Now()
		j.buf = append(j.buf, errorLine(j.errmsg)...)
		j.cond.Broadcast()
	case StateRunning:
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	j.mu.Unlock()
	if wasQueued {
		// Lock order is always s.mu before j.mu, so the counters update
		// after j.mu is released.
		s.mu.Lock()
		s.stats.Cancelled++
		s.stats.Queued--
		// An explicit client cancel is a resolution, not an interruption:
		// the job must not come back at the next restart.
		s.journalRemove(id)
		s.mu.Unlock()
	}
	return j.status(), nil
}

// Stats snapshots the operational counters, including the degraded-mode
// list computed from the live queue and the sticky cache/journal flags.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Degraded = s.degradedLocked()
	return st
}

// degradedLocked names every degraded mode currently in force; s.mu held.
func (s *Server) degradedLocked() []string {
	var d []string
	if s.cacheDegraded {
		d = append(d, "cache-unavailable")
	}
	if s.journalDegraded {
		d = append(d, "journal-unavailable")
	}
	if len(s.queue) == cap(s.queue) && !s.draining {
		d = append(d, "queue-full")
	}
	sort.Strings(d)
	return d
}

// StreamTo copies the job's NDJSON result stream to w, tailing a live job
// until it reaches a terminal state: a caller attaching mid-run gets the
// buffered prefix immediately and the remainder as replicas complete. If
// flush is non-nil it runs after every write (HTTP streaming). The bytes
// written for a given job ID are identical for every caller, live or
// cached — that is the service's central contract.
func (s *Server) StreamTo(id string, w io.Writer, flush func()) error {
	return s.StreamFrom(id, 0, w, flush)
}

// StreamFrom is StreamTo with a resume offset: the first from complete
// NDJSON lines are skipped and exactly the missing suffix is written. A
// client whose connection dropped after reading N lines reconnects with
// from=N and continues mid-job instead of re-reading (and re-simulating
// nothing — the bytes are the same either way; resume only saves
// transfer and client-side dedupe). from beyond the final line yields an
// empty, immediately-terminated stream.
func (s *Server) StreamFrom(id string, from int, w io.Writer, flush func()) error {
	if from < 0 {
		return fmt.Errorf("service: negative resume offset %d", from)
	}
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return ErrNotFound
	}

	j.mu.Lock()
	fromDisk := j.archived && j.buf == nil
	j.mu.Unlock()
	if fromDisk {
		stream, ok, err := s.cache.Get(id)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("service: archive for job %.12s vanished", id)
		}
		if _, err := w.Write(skipLines(stream, from)); err != nil {
			return err
		}
		if flush != nil {
			flush()
		}
		return nil
	}

	// Live (or in-memory completed) job: skip `from` complete lines as they
	// arrive, then tail the remainder. The stream only ever grows by whole
	// lines, so line counting over the shared buffer is exact.
	off, skipped := 0, 0
	for skipped < from {
		j.mu.Lock()
		for off == len(j.buf) && !terminal(j.state) {
			j.cond.Wait()
		}
		buf := j.buf
		done := terminal(j.state)
		j.mu.Unlock()
		for off < len(buf) && skipped < from {
			i := bytes.IndexByte(buf[off:], '\n')
			if i < 0 {
				off = len(buf)
				break
			}
			off += i + 1
			skipped++
		}
		if done && off == len(buf) && skipped < from {
			return nil // stream ended before the offset: empty suffix
		}
	}
	for {
		j.mu.Lock()
		for off == len(j.buf) && !terminal(j.state) {
			j.cond.Wait()
		}
		chunk := append([]byte{}, j.buf[off:]...)
		off += len(chunk)
		done := terminal(j.state) && off == len(j.buf)
		j.mu.Unlock()
		if len(chunk) > 0 {
			if _, err := w.Write(chunk); err != nil {
				return err
			}
			if flush != nil {
				flush()
			}
		}
		if done {
			return nil
		}
	}
}

// skipLines returns b without its first n complete lines.
func skipLines(b []byte, n int) []byte {
	for ; n > 0 && len(b) > 0; n-- {
		i := bytes.IndexByte(b, '\n')
		if i < 0 {
			return nil
		}
		b = b[i+1:]
	}
	return b
}

// worker executes queued jobs until the queue closes at drain.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.execute(j)
	}
}

func (s *Server) execute(j *job) {
	j.mu.Lock()
	if j.state != StateQueued { // cancelled while queued
		j.mu.Unlock()
		return
	}
	ctx := context.Background()
	var cancel context.CancelFunc
	if d := j.spec.timeout(s.cfg.JobTimeout); d > 0 {
		ctx, cancel = context.WithTimeout(ctx, d)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	j.cond.Broadcast()
	j.mu.Unlock()
	defer cancel()

	s.mu.Lock()
	s.stats.Queued--
	s.stats.Running++
	s.journalRecord(JournalRecord{Key: j.id, State: StateRunning, Spec: j.spec, At: time.Now(), Recovered: j.recovered})
	s.mu.Unlock()
	start := time.Now()
	err := s.runContained(ctx, j)
	elapsed := time.Since(start)

	s.mu.Lock()
	s.stats.Running--
	s.mu.Unlock()

	if err == nil {
		j.mu.Lock()
		stream := j.buf
		j.mu.Unlock()
		sum := sha256.Sum256(stream)
		traceHash := hex.EncodeToString(sum[:])
		meta := CacheMeta{
			Spec: j.spec, Build: s.cfg.Build, CreatedAt: time.Now(),
			ElapsedMS: elapsed.Milliseconds(), TraceHash: traceHash,
		}
		j.mu.Lock()
		j.traceHash = traceHash
		j.mu.Unlock()
		archived := false
		if cerr := s.cache.Put(j.id, stream, meta); cerr != nil {
			// The job still succeeded; only the archive is lost. Degrade
			// explicitly and keep the journal entry: without an archive the
			// result is not durable, so a restart re-runs the job.
			s.log.Printf("job %.12s: archive failed: %v", j.id, cerr)
		} else {
			archived = true
			j.mu.Lock()
			j.archived = true
			j.mu.Unlock()
		}
		j.finish(StateDone, "")
		s.mu.Lock()
		s.stats.Completed++
		s.cacheDegraded = !archived
		if archived {
			// The archive is the durable record now; the journal entry has
			// done its job.
			s.journalRemove(j.id)
		} else {
			s.journalRecord(JournalRecord{Key: j.id, State: StateDone, Spec: j.spec, At: time.Now(), Error: "archive failed"})
		}
		s.mu.Unlock()
		s.log.Printf("job %.12s: done (%s, %s)", j.id, j.spec.Scenario, elapsed.Round(time.Millisecond))
		return
	}

	j.mu.Lock()
	cancelled := j.cancelRequested
	drainKill := j.drainKill
	j.mu.Unlock()
	state, msg, stack := StateFailed, err.Error(), ""
	var pe *harness.PanicError
	switch {
	case cancelled:
		state, msg = StateCancelled, "cancelled"
	case errors.Is(err, context.DeadlineExceeded):
		msg = fmt.Sprintf("timeout after %s", j.spec.timeout(s.cfg.JobTimeout))
	case errors.As(err, &pe):
		// The scenario panicked; the panic was contained to this job.
		// Surface the captured stack in the status and the stream's error
		// envelope so the failure is debuggable without daemon access.
		stack = pe.Stack
	}
	j.mu.Lock()
	j.stack = stack
	j.mu.Unlock()
	j.appendStream(errorLineStack(msg, stack))
	j.finish(state, msg)
	s.mu.Lock()
	if state == StateCancelled {
		s.stats.Cancelled++
	} else {
		s.stats.Failed++
	}
	if stack != "" {
		s.stats.Panics++
	}
	if drainKill {
		// Interrupted by shutdown, not resolved: leave the journal entry so
		// the next startup re-enqueues the job.
		s.journalRecord(JournalRecord{Key: j.id, State: StateCancelled, Spec: j.spec, At: time.Now(), Error: "interrupted by shutdown"})
	} else {
		s.journalRemove(j.id)
	}
	s.mu.Unlock()
	s.log.Printf("job %.12s: %s: %s", j.id, state, msg)
}

// runContained runs the job with a final panic backstop: whatever escapes
// the scenario, the backend, or the encoding path fails this job — never
// the daemon. The harness already contains per-replica panics; this guard
// covers custom backends and the streaming/encoding layer above them.
func (s *Server) runContained(ctx context.Context, j *job) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &harness.PanicError{Value: fmt.Sprint(p), Stack: string(debug.Stack())}
		}
	}()
	return s.run(ctx, j)
}

// run builds the scenario and streams the replicated run into the job.
func (s *Server) run(ctx context.Context, j *job) error {
	sc, err := j.spec.scenario()
	if err != nil {
		return err
	}
	var encErr error
	rep, err := s.cfg.Runner.RunStream(ctx, sc, j.spec.options(s.cfg.Parallel),
		func(i int, seed int64, res *metrics.Result) {
			line, err := replicaLine(i, seed, res)
			if err != nil {
				encErr = err
				return
			}
			j.appendStream(line)
		})
	if err != nil {
		return err
	}
	if encErr != nil {
		return encErr
	}
	line, err := summaryLine(rep)
	if err != nil {
		return err
	}
	j.appendStream(line)
	return nil
}

// Drain gracefully shuts the server down: new submissions are refused,
// queued and running jobs are given until ctx's deadline to finish, then
// every survivor is cancelled (deterministically, at its next window
// barrier) and awaited. Safe to call once; returns ctx.Err() when the
// deadline forced cancellations, nil on a clean drain.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("service: already draining")
	}
	s.draining = true
	s.stats.Draining = true
	close(s.queue)
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	// Deadline: cancel everything still live and wait for the workers.
	s.mu.Lock()
	live := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		live = append(live, j)
	}
	s.mu.Unlock()
	for _, j := range live {
		j.mu.Lock()
		switch j.state {
		case StateQueued:
			// Interrupted, not resolved: the journal entry (if any) stays,
			// so a restarted daemon re-enqueues the job.
			j.state = StateCancelled
			j.errmsg = "cancelled at drain"
			j.finished = time.Now()
			j.buf = append(j.buf, errorLine(j.errmsg)...)
			j.cond.Broadcast()
		case StateRunning:
			j.cancelRequested = true
			j.drainKill = true
			if j.cancel != nil {
				j.cancel()
			}
		}
		j.mu.Unlock()
	}
	<-done
	return ctx.Err()
}

// Close shuts down immediately: Drain with an already-expired deadline.
func (s *Server) Close() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = s.Drain(ctx)
}
