package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// JournalRecord is one job lifecycle transition. A job's journal file is
// the NDJSON sequence of its transitions in order; the last record is the
// job's state as of the most recent atomic publication.
type JournalRecord struct {
	Key   string    `json:"key"`
	State State     `json:"state"`
	Spec  JobSpec   `json:"spec"`
	At    time.Time `json:"at"`
	Error string    `json:"error,omitempty"`
	// Recovered marks transitions written by startup replay rather than a
	// live submission, for auditability.
	Recovered bool `json:"recovered,omitempty"`
}

// JournalEntry is one job's replayed journal: its full transition history
// and the last (authoritative) record.
type JournalEntry struct {
	Key     string
	Last    JournalRecord
	History []JournalRecord
}

// Journal is the crash-safe job log: one file per live job under dir,
// holding the NDJSON history of the job's submitted/running/... transitions.
// Every append rewrites the whole file through the same atomic temp-file +
// rename discipline as the run cache, so a SIGKILL at any instant leaves
// either the previous complete history or the new one — never a torn tail.
// Entries are removed once the job no longer needs recovery (archived in
// the cache, or terminally failed/cancelled by an explicit decision), so
// the directory holds exactly the jobs a restarted daemon must deal with.
//
// Safe for use by one daemon process at a time; the Server serializes
// access under its own lock.
type Journal struct {
	dir string
	// live caches each journaled job's history so appends don't re-read
	// the file.
	live map[string][]JournalRecord
}

// OpenJournal opens (creating if needed) a journal rooted at dir.
func OpenJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: journal dir: %w", err)
	}
	return &Journal{dir: dir, live: map[string][]JournalRecord{}}, nil
}

// Dir returns the journal root.
func (j *Journal) Dir() string { return j.dir }

func (j *Journal) path(key string) string {
	return filepath.Join(j.dir, key+".journal")
}

// Record appends one transition to the job's journal and atomically
// publishes the new history.
func (j *Journal) Record(rec JournalRecord) error {
	if !validKey.MatchString(rec.Key) {
		return fmt.Errorf("service: refusing to journal invalid key %q", rec.Key)
	}
	hist := append(j.live[rec.Key], rec)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range hist {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("service: encoding journal record: %w", err)
		}
	}
	if err := writeAtomic(j.dir, j.path(rec.Key), buf.Bytes()); err != nil {
		return err
	}
	j.live[rec.Key] = hist
	return nil
}

// Remove drops a job's journal entry: the job is durably resolved (its
// result is archived in the cache, or it was terminally failed/cancelled)
// and must not be re-enqueued by a future recovery.
func (j *Journal) Remove(key string) error {
	if !validKey.MatchString(key) {
		return nil
	}
	delete(j.live, key)
	err := os.Remove(j.path(key))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Replay reads every journal entry on disk, in key order, and primes the
// in-memory history cache. Unparseable files or records are skipped (and
// counted), never fatal: a journal that cannot be read must not keep a
// daemon from booting — the worst case is re-executing a job, which is
// idempotent by construction.
func (j *Journal) Replay() (entries []JournalEntry, skipped int, err error) {
	des, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, 0, fmt.Errorf("service: journal replay: %w", err)
	}
	names := make([]string, 0, len(des))
	for _, de := range des {
		if de.Type().IsRegular() && strings.HasSuffix(de.Name(), ".journal") {
			names = append(names, de.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		key := strings.TrimSuffix(name, ".journal")
		if !validKey.MatchString(key) {
			skipped++
			continue
		}
		hist, ok := readJournalFile(filepath.Join(j.dir, name), key)
		if !ok {
			skipped++
			continue
		}
		j.live[key] = hist
		entries = append(entries, JournalEntry{Key: key, Last: hist[len(hist)-1], History: hist})
	}
	return entries, skipped, nil
}

// readJournalFile parses one job's transition history; ok is false when no
// valid record survives. Individual bad lines are dropped — the atomic
// rename discipline should make them impossible, but a recovery path must
// not trust that.
func readJournalFile(path, key string) (hist []JournalRecord, ok bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		var rec JournalRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil || rec.Key != key {
			continue
		}
		hist = append(hist, rec)
	}
	return hist, len(hist) > 0
}
