package service

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testKey(fill byte) string {
	return strings.Repeat(string([]byte{fill}), 64)
}

func TestCacheRoundTrip(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey('a')
	if _, ok, err := c.Get(key); err != nil || ok {
		t.Fatalf("empty cache Get = ok=%v err=%v", ok, err)
	}
	stream := []byte(`{"type":"summary"}` + "\n")
	meta := CacheMeta{Spec: JobSpec{Scenario: "highway"}, Build: "b", CreatedAt: time.Now(), ElapsedMS: 42}
	if err := c.Put(key, stream, meta); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get after Put: ok=%v err=%v", ok, err)
	}
	if string(got) != string(stream) {
		t.Fatalf("archived bytes differ: %q vs %q", got, stream)
	}
	m, ok, err := c.Meta(key)
	if err != nil || !ok {
		t.Fatalf("Meta after Put: ok=%v err=%v", ok, err)
	}
	if m.Key != key || m.Bytes != len(stream) || m.Build != "b" || m.ElapsedMS != 42 {
		t.Fatalf("bad meta %+v", m)
	}
}

func TestCacheRejectsInvalidKeys(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "abc", "../../../../etc/passwd", testKey('a')[:63] + "/", strings.ToUpper(testKey('a'))} {
		if err := c.Put(key, []byte("x"), CacheMeta{}); err == nil {
			t.Errorf("Put accepted invalid key %q", key)
		}
		if _, ok, err := c.Get(key); ok || err != nil {
			t.Errorf("Get(%q) = ok=%v err=%v, want miss", key, ok, err)
		}
	}
}

// A crash between os.CreateTemp and the rename in writeAtomic strands a
// ".tmp-*" file; the next NewCache must sweep it (and count it) without
// touching published archives.
func TestCacheSweepsStrandedTempFiles(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Swept() != 0 {
		t.Fatalf("fresh cache swept %d", c.Swept())
	}
	key := testKey('c')
	if err := c.Put(key, []byte("data\n"), CacheMeta{}); err != nil {
		t.Fatal(err)
	}
	// Plant the debris a mid-Put crash would leave: one orphan in the
	// key's shard subdir, one in the root.
	for _, p := range []string{
		filepath.Join(dir, key[:2], ".tmp-123456"),
		filepath.Join(dir, ".tmp-654321"),
	} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	c2, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Swept() != 2 {
		t.Fatalf("swept %d temp files, want 2", c2.Swept())
	}
	if _, ok, err := c2.Get(key); err != nil || !ok {
		t.Fatalf("published archive lost by the sweep: ok=%v err=%v", ok, err)
	}
	err = filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && strings.HasPrefix(filepath.Base(path), ".tmp-") {
			t.Errorf("temp file survived the sweep: %s", path)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCacheLeavesNoTempDebris(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(testKey('b'), []byte("data\n"), CacheMeta{}); err != nil {
		t.Fatal(err)
	}
	err = filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && strings.HasPrefix(filepath.Base(path), ".tmp-") {
			t.Errorf("temp file left behind: %s", path)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}
