package serviceclient

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// FaultTransport is a seeded fault-injecting http.RoundTripper for chaos
// testing the client's resilience envelope: it drops requests at the
// transport level, synthesizes 503 degraded-mode refusals with
// Retry-After, delays responses, and cuts response bodies mid-stream —
// all drawn from one seeded stream, so a test's fault schedule is
// exactly reproducible. Plug it into Options.Transport.
//
// Each injected fault counts against MaxFaults (when >0); once spent, the
// transport becomes transparent. Probability-1 knobs plus a MaxFaults
// budget script exact failure sequences ("fail the first two attempts,
// then succeed") without giving up the seeded-randomness form.
type FaultTransport struct {
	// Base handles requests that survive injection (default:
	// http.DefaultTransport).
	Base http.RoundTripper
	// Drop is the probability a request fails with a connection error
	// before reaching the server.
	Drop float64
	// Err503 is the probability a 503 + Retry-After response is
	// synthesized without reaching the server.
	Err503 float64
	// RetryAfter is the hint carried by synthesized 503s, in whole
	// seconds (0 = no header).
	RetryAfter time.Duration
	// Slow is the probability the request is delayed by Delay before being
	// forwarded. Slowness counts as a fault for MaxFaults but never fails
	// the request.
	Slow  float64
	Delay time.Duration
	// CutBodyAfter > 0 truncates response bodies with a connection error
	// after that many bytes (each cut is a fault).
	CutBodyAfter int
	// MaxFaults caps the total injected faults; 0 = unlimited.
	MaxFaults int

	mu     sync.Mutex
	rng    *rand.Rand
	faults int
}

// NewFaultTransport returns a transparent transport drawing its fault
// schedule from seed; set the exported knobs before use.
func NewFaultTransport(seed int64) *FaultTransport {
	return &FaultTransport{rng: rand.New(rand.NewSource(seed))}
}

// Faults reports how many faults have been injected so far.
func (t *FaultTransport) Faults() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.faults
}

// roll draws one decision; it consumes the budget only when it fires.
func (t *FaultTransport) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	if t.MaxFaults > 0 && t.faults >= t.MaxFaults {
		return false
	}
	if t.rng.Float64() >= p {
		return false
	}
	t.faults++
	return true
}

// RoundTrip implements http.RoundTripper.
func (t *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	drop := t.roll(t.Drop)
	err503 := !drop && t.roll(t.Err503)
	slow := !drop && !err503 && t.roll(t.Slow)
	cut := false
	if !drop && !err503 && t.CutBodyAfter > 0 {
		cut = t.roll(1)
	}
	t.mu.Unlock()

	switch {
	case drop:
		return nil, fmt.Errorf("faulttransport: injected connection drop for %s %s", req.Method, req.URL.Path)
	case err503:
		resp := &http.Response{
			StatusCode: http.StatusServiceUnavailable,
			Status:     "503 Service Unavailable (injected)",
			Header:     http.Header{"Content-Type": []string{"application/json"}},
			Body:       io.NopCloser(strings.NewReader(`{"error":"injected degraded mode"}`)),
			Request:    req,
		}
		if t.RetryAfter > 0 {
			resp.Header.Set("Retry-After", fmt.Sprint(int(t.RetryAfter/time.Second)))
		}
		return resp, nil
	case slow:
		timer := time.NewTimer(t.Delay)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}

	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil || !cut {
		return resp, err
	}
	resp.Body = &cutBody{body: resp.Body, remaining: t.CutBodyAfter}
	return resp, nil
}

// cutBody yields the first remaining bytes, then fails like a dropped
// connection.
type cutBody struct {
	body      io.ReadCloser
	remaining int
}

func (b *cutBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, fmt.Errorf("faulttransport: injected mid-body connection drop")
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.body.Read(p)
	b.remaining -= n
	if err == io.EOF {
		return n, io.EOF
	}
	return n, err
}

func (b *cutBody) Close() error { return b.body.Close() }
