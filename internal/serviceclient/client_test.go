package serviceclient

import (
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"testing"
	"time"

	"karyon/internal/service"
)

func newTestDaemon(t *testing.T) (*service.Server, *Client) {
	t.Helper()
	srv, err := service.New(service.Config{
		CacheDir: t.TempDir(),
		Workers:  2,
		Build:    "client-test-build",
		Log:      io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, New(hs.URL)
}

func tinySpec() service.JobSpec {
	return service.JobSpec{Scenario: "highway", Seed: 11, Replicas: 2, Duration: "10s", Cars: 6}
}

func TestClientRunRoundTrip(t *testing.T) {
	_, c := newTestDaemon(t)
	ctx := context.Background()

	st, rep, err := c.Run(ctx, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if st.Cached {
		t.Fatal("first run claims cached")
	}
	if rep == nil || rep.Summary == nil || len(rep.Summary.Records) == 0 {
		t.Fatalf("empty report: %+v", rep)
	}

	// Second run: same deterministic ID, answered from the cache, same report.
	st2, rep2, err := c.Run(ctx, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID != st.ID {
		t.Fatalf("retry changed job ID: %s vs %s", st2.ID, st.ID)
	}
	if !st2.Cached {
		t.Fatal("second run not served from cache")
	}
	if len(rep2.Summary.Records) != len(rep.Summary.Records) {
		t.Fatalf("cached report differs: %d vs %d records", len(rep2.Summary.Records), len(rep.Summary.Records))
	}
}

func TestClientStreamLineShape(t *testing.T) {
	_, c := newTestDaemon(t)
	ctx := context.Background()
	st, err := c.Submit(ctx, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	var replicas, summaries int
	err = c.StreamResults(ctx, st.ID, func(line service.Line) error {
		switch line.Type {
		case service.LineReplica:
			if line.Index == nil || line.Seed == nil || line.Result == nil {
				t.Errorf("replica line missing fields: %+v", line)
			} else if *line.Index != replicas {
				t.Errorf("replica %d arrived out of order (want %d)", *line.Index, replicas)
			}
			replicas++
		case service.LineSummary:
			if line.Report == nil {
				t.Error("summary line missing report")
			}
			summaries++
		default:
			t.Errorf("unexpected line type %q", line.Type)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if replicas != 2 || summaries != 1 {
		t.Fatalf("stream had %d replicas, %d summaries", replicas, summaries)
	}
}

func TestClientRawResultsAreByteIdentical(t *testing.T) {
	_, c := newTestDaemon(t)
	ctx := context.Background()
	st, _, err := c.Run(ctx, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	read := func() string {
		body, err := c.Results(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		defer body.Close()
		b, err := io.ReadAll(body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if a, b := read(), read(); a != b || a == "" {
		t.Fatalf("result stream not byte-stable across reads (%d vs %d bytes)", len(a), len(b))
	}
}

func TestClientStatusAndStats(t *testing.T) {
	_, c := newTestDaemon(t)
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}
	st, _, err := c.Run(ctx, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Job(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != service.StateDone || got.ResultBytes == 0 {
		t.Fatalf("job status %+v", got)
	}
	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != st.ID {
		t.Fatalf("jobs list %+v", jobs)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Submitted != 1 || stats.CacheMisses != 1 || stats.Completed != 1 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestClientAPIErrors(t *testing.T) {
	_, c := newTestDaemon(t)
	ctx := context.Background()

	_, err := c.Submit(ctx, service.JobSpec{Scenario: "warp-drive"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != 400 {
		t.Fatalf("bad spec error = %v", err)
	}

	if _, err := c.Job(ctx, "deadbeef"); !errors.As(err, &apiErr) || apiErr.Code != 404 {
		t.Fatalf("unknown job error = %v", err)
	}
	if _, err := c.Cancel(ctx, "deadbeef"); !errors.As(err, &apiErr) || apiErr.Code != 404 {
		t.Fatalf("unknown cancel error = %v", err)
	}
}

func TestClientCancel(t *testing.T) {
	srv, c := newTestDaemon(t)
	ctx := context.Background()
	// A big job we can cancel mid-flight.
	st, err := c.Submit(ctx, service.JobSpec{Scenario: "megahighway", Seed: 3, Replicas: 4, Duration: "2m", Cars: 400})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		got, err := c.Job(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State == service.StateCancelled {
			break
		}
		if got.State == service.StateDone || time.Now().After(deadline) {
			t.Fatalf("job state %s after cancel", got.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	_ = srv
}
