package serviceclient

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"karyon/internal/service"
)

// newChaosDaemon is newTestDaemon exposing the URL, so tests can point
// fault-injecting clients at the same daemon.
func newChaosDaemon(t *testing.T) (*service.Server, string) {
	t.Helper()
	srv, err := service.New(service.Config{
		CacheDir: t.TempDir(),
		Workers:  2,
		Build:    "client-test-build",
		Log:      io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs.URL
}

// instantSleep records each backoff instead of waiting it out.
func instantSleep(sleeps *[]time.Duration) func(context.Context, time.Duration) {
	var mu sync.Mutex
	return func(ctx context.Context, d time.Duration) {
		mu.Lock()
		*sleeps = append(*sleeps, d)
		mu.Unlock()
	}
}

// recordingTransport logs every request URI on its way to base.
type recordingTransport struct {
	base http.RoundTripper

	mu   sync.Mutex
	uris []string
}

func (t *recordingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	t.uris = append(t.uris, req.URL.RequestURI())
	t.mu.Unlock()
	return t.base.RoundTrip(req)
}

func (t *recordingTransport) requests() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string{}, t.uris...)
}

// TestNewHasRealTimeouts: the default client must never ship the zero-value
// http.Client (no connect, header, or request bounds — a hung daemon would
// hang every caller forever).
func TestNewHasRealTimeouts(t *testing.T) {
	c := New("http://127.0.0.1:1")
	tr, ok := c.http.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("default transport is %T, want *http.Transport", c.http.Transport)
	}
	if tr.DialContext == nil {
		t.Fatal("no connect timeout: DialContext is nil")
	}
	if tr.ResponseHeaderTimeout != 30*time.Second {
		t.Fatalf("ResponseHeaderTimeout = %v, want 30s", tr.ResponseHeaderTimeout)
	}
	if tr.TLSHandshakeTimeout != 5*time.Second {
		t.Fatalf("TLSHandshakeTimeout = %v, want 5s", tr.TLSHandshakeTimeout)
	}
	o := c.opts
	if o.ConnectTimeout != 5*time.Second || o.RequestTimeout != time.Minute || o.Retries != 3 {
		t.Fatalf("defaults = connect %v request %v retries %d", o.ConnectTimeout, o.RequestTimeout, o.Retries)
	}
}

// TestBackoffScheduleIsSeeded: same seed, same schedule — the property the
// chaos suite leans on — plus exponential bounds and Retry-After override.
func TestBackoffScheduleIsSeeded(t *testing.T) {
	mk := func(seed int64) *Client {
		return NewWithOptions("http://127.0.0.1:1", Options{Seed: seed})
	}
	a, b := mk(7), mk(7)
	base, max := a.opts.BackoffBase, a.opts.BackoffMax
	for attempt := 0; attempt < 6; attempt++ {
		da, db := a.backoff(attempt, 0), b.backoff(attempt, 0)
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", attempt, da, db)
		}
		lo := base << attempt
		if lo > max {
			lo = max
		}
		if da < lo || da > lo+lo/2 {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, da, lo, lo+lo/2)
		}
	}
	if d := mk(3).backoff(0, 10*time.Second); d < 10*time.Second {
		t.Fatalf("backoff ignored a longer Retry-After hint: %v", d)
	}
}

// TestSubmitRetriesThroughDrops: connection drops on an idempotent submit
// are retried to success; the deterministic job ID makes the replay land
// on the same job.
func TestSubmitRetriesThroughDrops(t *testing.T) {
	_, url := newChaosDaemon(t)
	ft := NewFaultTransport(1)
	ft.Drop = 1
	ft.MaxFaults = 2
	var sleeps []time.Duration
	c := NewWithOptions(url, Options{
		Transport: ft, Retries: 3, Seed: 5, sleep: instantSleep(&sleeps),
	})
	st, err := c.Submit(context.Background(), tinySpec())
	if err != nil {
		t.Fatalf("submit did not survive 2 drops: %v", err)
	}
	if st.ID == "" {
		t.Fatal("empty job ID")
	}
	if ft.Faults() != 2 {
		t.Fatalf("injected %d faults, want 2", ft.Faults())
	}
	if len(sleeps) != 2 {
		t.Fatalf("%d backoff waits for 2 drops, want 2", len(sleeps))
	}
	if sleeps[1] < sleeps[0] {
		t.Fatalf("backoff not growing: %v then %v", sleeps[0], sleeps[1])
	}
}

// TestRetryHonorsRetryAfter: a degraded-mode 503 with Retry-After is
// retried no sooner than the server asked.
func TestRetryHonorsRetryAfter(t *testing.T) {
	_, url := newChaosDaemon(t)
	ft := NewFaultTransport(1)
	ft.Err503 = 1
	ft.RetryAfter = 2 * time.Second
	ft.MaxFaults = 1
	var sleeps []time.Duration
	c := NewWithOptions(url, Options{
		Transport: ft, Retries: 3, BackoffBase: time.Millisecond, Seed: 5,
		sleep: instantSleep(&sleeps),
	})
	if _, err := c.Submit(context.Background(), tinySpec()); err != nil {
		t.Fatalf("submit did not survive the 503: %v", err)
	}
	if len(sleeps) != 1 || sleeps[0] < 2*time.Second {
		t.Fatalf("backoff %v ignored Retry-After: 2s", sleeps)
	}
}

// TestNonRetriableFailsFast: a 400 is the caller's bug, not the wire's —
// no retries, no backoff.
func TestNonRetriableFailsFast(t *testing.T) {
	_, url := newChaosDaemon(t)
	rec := &recordingTransport{base: http.DefaultTransport}
	var sleeps []time.Duration
	c := NewWithOptions(url, Options{
		Transport: rec, Retries: 3, sleep: instantSleep(&sleeps),
	})
	_, err := c.Submit(context.Background(), service.JobSpec{Scenario: "warp-drive"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != 400 {
		t.Fatalf("err = %v, want APIError 400", err)
	}
	if n := len(rec.requests()); n != 1 {
		t.Fatalf("400 was attempted %d times, want 1", n)
	}
	if len(sleeps) != 0 {
		t.Fatalf("400 triggered backoff: %v", sleeps)
	}
}

// TestResultsFromReturnsExactSuffix drives the ?from= wire protocol: for
// every offset the response is the full stream minus its first N lines.
func TestResultsFromReturnsExactSuffix(t *testing.T) {
	_, url := newChaosDaemon(t)
	c := New(url)
	ctx := context.Background()
	st, _, err := c.Run(ctx, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	readFrom := func(from int) string {
		body, err := c.ResultsFrom(ctx, st.ID, from)
		if err != nil {
			t.Fatalf("ResultsFrom(%d): %v", from, err)
		}
		defer body.Close()
		b, err := io.ReadAll(body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	full := readFrom(0)
	if full == "" {
		t.Fatal("empty stream")
	}
	lines := strings.SplitAfter(full, "\n")
	lines = lines[:len(lines)-1] // trailing "" after the final \n
	for from := 0; from <= len(lines)+1; from++ {
		want := ""
		if from < len(lines) {
			want = strings.Join(lines[from:], "")
		}
		if got := readFrom(from); got != want {
			t.Fatalf("from=%d: got %d bytes, want %d", from, len(got), len(want))
		}
	}
}

// TestStreamResumeAfterMidBodyCut is the client half of the chaos
// contract: a stream severed mid-body reconnects with ?from=<lines held>
// and the caller sees every line exactly once, in order.
func TestStreamResumeAfterMidBodyCut(t *testing.T) {
	_, url := newChaosDaemon(t)
	if _, _, err := New(url).Run(context.Background(), tinySpec()); err != nil {
		t.Fatal(err) // job complete and archived before the chaos client reads it
	}

	ft := NewFaultTransport(1)
	ft.CutBodyAfter = 700 // sever mid-stream, wherever line boundaries fall
	ft.MaxFaults = 2
	rec := &recordingTransport{base: http.DefaultTransport}
	ft.Base = rec
	var sleeps []time.Duration
	c := NewWithOptions(url, Options{
		Transport: ft, Retries: 4, Seed: 9, sleep: instantSleep(&sleeps),
	})
	st, err := c.Submit(context.Background(), tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	var got []service.Line
	if err := c.StreamResults(context.Background(), st.ID, func(l service.Line) error {
		got = append(got, l)
		return nil
	}); err != nil {
		t.Fatalf("stream did not survive %d cuts: %v", ft.Faults(), err)
	}
	if ft.Faults() != 2 {
		t.Fatalf("injected %d faults, want 2", ft.Faults())
	}
	// Exactly once, in order: replicas 0..N-1 then one terminal summary.
	if len(got) != 3 {
		t.Fatalf("saw %d lines across reconnects, want 3", len(got))
	}
	for i := 0; i < 2; i++ {
		l := got[i]
		if l.Type != service.LineReplica || l.Index == nil || *l.Index != i {
			t.Fatalf("line %d: %+v, want replica %d exactly once", i, l, i)
		}
	}
	if got[2].Type != service.LineSummary {
		t.Fatalf("terminal line: %+v, want summary", got[2])
	}
	// The wire shows the resumes: more than one results request, each
	// after the first carrying a from= offset.
	var results []string
	for _, uri := range rec.requests() {
		if strings.Contains(uri, "/results") {
			results = append(results, uri)
		}
	}
	if len(results) < 2 {
		t.Fatalf("no reconnect on the wire: %v", results)
	}
}

// TestStreamCallbackErrorAborts: an error from the caller's callback is a
// decision, not a drop — no reconnect, no retry.
func TestStreamCallbackErrorAborts(t *testing.T) {
	_, url := newChaosDaemon(t)
	c := New(url)
	st, _, err := c.Run(context.Background(), tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("caller says stop")
	calls := 0
	err = c.StreamResults(context.Background(), st.ID, func(service.Line) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the callback's error", err)
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times after aborting, want 1", calls)
	}
}

// TestRunSurvivesSeededChaos: the end-to-end convenience call completes
// through a seeded storm of drops and 503s, returning a real report.
func TestRunSurvivesSeededChaos(t *testing.T) {
	_, url := newChaosDaemon(t)
	ft := NewFaultTransport(42)
	ft.Drop = 0.5
	ft.Err503 = 0.5
	ft.RetryAfter = time.Second
	ft.MaxFaults = 4
	var sleeps []time.Duration
	c := NewWithOptions(url, Options{
		Transport: ft, Retries: 6, Seed: 42, sleep: instantSleep(&sleeps),
	})
	st, rep, err := c.Run(context.Background(), tinySpec())
	if err != nil {
		t.Fatalf("run did not survive the chaos (%d faults): %v", ft.Faults(), err)
	}
	if rep == nil || rep.Summary == nil || rep.Summary.Replicas != 2 {
		t.Fatalf("bad report through chaos: %+v", rep)
	}
	if st.ID == "" {
		t.Fatal("empty job ID")
	}
}
