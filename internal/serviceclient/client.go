// Package serviceclient is the resilient HTTP client for the karyon-d
// control API (internal/service). It speaks the wire types of that
// package — service.JobSpec in, service.Status and NDJSON service.Line
// streams out — and adds the transport-level robustness the daemon's
// determinism makes safe: every call is idempotent (job IDs are
// content-addressed, so a retried submit dedupes onto the same execution
// instead of double-running), which lets the client retry with
// exponential backoff and seeded jitter, honor Retry-After on the
// daemon's explicit degraded modes (503), and resume a dropped NDJSON
// result stream mid-job via the ?from=<line> offset instead of
// re-reading. The daemon still owns all semantics; the client only makes
// the wire survivable. karyon-sim's -daemon mode and the load-test
// benchmarks both drive it.
package serviceclient

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"karyon/internal/harness"
	"karyon/internal/service"
)

// APIError is a non-2xx control-API response.
type APIError struct {
	Code int
	Msg  string
	// RetryAfter is the server's Retry-After hint, when present: how long
	// it asked us to back off before retrying a degraded-mode refusal.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("karyon-d: HTTP %d: %s", e.Code, e.Msg)
}

// Options tunes the client's resilience envelope. The zero value gets
// sane defaults; construct with NewWithOptions to override.
type Options struct {
	// ConnectTimeout bounds TCP connect + TLS handshake (default 5s).
	ConnectTimeout time.Duration
	// HeaderTimeout bounds the wait for response headers on every call —
	// a hung daemon fails fast instead of blocking a stream open forever
	// (default 30s).
	HeaderTimeout time.Duration
	// RequestTimeout bounds each non-streaming call end to end, applied as
	// a per-call context deadline when the caller's context has none
	// (default 1m). Result streams are exempt: they legitimately run as
	// long as the job; bound them through ctx.
	RequestTimeout time.Duration
	// Retries is how many times a failed idempotent call is retried after
	// the first attempt (default 3; negative disables retries).
	Retries int
	// BackoffBase and BackoffMax shape the exponential backoff between
	// retries: base·2^attempt plus jitter, capped at max (defaults 100ms
	// and 5s). A server Retry-After hint overrides a shorter backoff.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed seeds the jitter stream (default 1). Fixing it makes the retry
	// schedule reproducible — the chaos suite depends on that.
	Seed int64
	// Transport overrides the underlying RoundTripper; the chaos suite
	// injects its fault transport here. Timeouts above configure the
	// default transport only — a custom Transport brings its own.
	Transport http.RoundTripper
	// sleep is the test seam for backoff waits.
	sleep func(context.Context, time.Duration)
}

func (o Options) withDefaults() Options {
	if o.ConnectTimeout <= 0 {
		o.ConnectTimeout = 5 * time.Second
	}
	if o.HeaderTimeout <= 0 {
		o.HeaderTimeout = 30 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = time.Minute
	}
	if o.Retries == 0 {
		o.Retries = 3
	} else if o.Retries < 0 {
		o.Retries = 0
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.sleep == nil {
		o.sleep = sleepCtx
	}
	return o
}

func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Client talks to one karyon-d daemon.
type Client struct {
	base string
	http *http.Client
	opts Options

	mu  sync.Mutex
	rng *rand.Rand
}

// New returns a client for the daemon at base (e.g.
// "http://127.0.0.1:7077") with the default resilience envelope: connect
// and header timeouts, per-call deadlines on non-streaming calls, and
// retries with exponential backoff on transport errors and degraded-mode
// refusals. Result streams can tail long-running jobs, so no overall
// timeout is imposed on them — bound those waits with the request context.
func New(base string) *Client {
	return NewWithOptions(base, Options{})
}

// NewWithOptions is New with explicit knobs.
func NewWithOptions(base string, opts Options) *Client {
	opts = opts.withDefaults()
	rt := opts.Transport
	if rt == nil {
		rt = &http.Transport{
			DialContext:           (&net.Dialer{Timeout: opts.ConnectTimeout}).DialContext,
			TLSHandshakeTimeout:   opts.ConnectTimeout,
			ResponseHeaderTimeout: opts.HeaderTimeout,
		}
	}
	return &Client{
		base: strings.TrimRight(base, "/"),
		http: &http.Client{Transport: rt},
		opts: opts,
		rng:  rand.New(rand.NewSource(opts.Seed)),
	}
}

// backoff returns the wait before retry #attempt (0-based): exponential
// with seeded jitter, capped, and never shorter than the server's
// Retry-After hint.
func (c *Client) backoff(attempt int, hint time.Duration) time.Duration {
	d := c.opts.BackoffBase << attempt
	if d > c.opts.BackoffMax || d <= 0 {
		d = c.opts.BackoffMax
	}
	c.mu.Lock()
	jitter := time.Duration(c.rng.Int63n(int64(d)/2 + 1))
	c.mu.Unlock()
	d += jitter
	if hint > d {
		d = hint
	}
	return d
}

// retriable reports whether err is worth retrying, plus any server wait
// hint. Transport-level failures retry (the call may never have reached
// the daemon — and if it did, deterministic IDs make the replay
// harmless); of the API errors only the explicitly-transient statuses do:
// 503 (degraded: queue full or draining), 429, 502, 504.
func retriable(err error) (bool, time.Duration) {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		switch apiErr.Code {
		case http.StatusServiceUnavailable, http.StatusTooManyRequests,
			http.StatusBadGateway, http.StatusGatewayTimeout:
			return true, apiErr.RetryAfter
		}
		return false, 0
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false, 0
	}
	return true, 0 // connection refused/reset, dropped mid-flight, …
}

// do issues one API call with retries. body is replayed verbatim on every
// attempt; stream=false adds the RequestTimeout deadline.
func (c *Client) do(ctx context.Context, method, path string, body []byte, stream bool) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		resp, err := c.once(ctx, method, path, body, stream)
		if err == nil {
			return resp, nil
		}
		ok, hint := retriable(err)
		if !ok || attempt >= c.opts.Retries || ctx.Err() != nil {
			return nil, err
		}
		c.opts.sleep(ctx, c.backoff(attempt, hint))
	}
}

// cancelBody ties a per-call timeout context to the response body: the
// deadline must cover the caller's body read, so the cancel fires at
// Close, not when the issuing frame returns.
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	b.cancel()
	return b.ReadCloser.Close()
}

func (c *Client) once(ctx context.Context, method, path string, body []byte, stream bool) (*http.Response, error) {
	cancel := context.CancelFunc(func() {})
	if !stream {
		ctx, cancel = context.WithTimeout(ctx, c.opts.RequestTimeout)
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		cancel()
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
	if resp.StatusCode >= 300 {
		defer resp.Body.Close()
		var apiErr struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&apiErr); err == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		var retryAfter time.Duration
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
				retryAfter = time.Duration(secs) * time.Second
			}
		}
		return nil, &APIError{Code: resp.StatusCode, Msg: msg, RetryAfter: retryAfter}
	}
	return resp, nil
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	resp, err := c.do(ctx, http.MethodGet, path, nil, false)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a job spec and returns the resolved job: fresh, deduped
// onto an in-flight run, or answered from the cache (Status.Cached).
// Submission is safe to retry — and the client does, on transport errors
// and degraded-mode 503s — because the job ID is a deterministic content
// address: a replayed submit lands on the same job.
func (c *Client) Submit(ctx context.Context, spec service.JobSpec) (*service.Status, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/jobs", body, false)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st service.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (*service.Status, error) {
	var st service.Status
	if err := c.getJSON(ctx, "/v1/jobs/"+id, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Jobs lists the daemon's known jobs in submission order.
func (c *Client) Jobs(ctx context.Context) ([]*service.Status, error) {
	var jobs []*service.Status
	if err := c.getJSON(ctx, "/v1/jobs", &jobs); err != nil {
		return nil, err
	}
	return jobs, nil
}

// Cancel stops a queued or running job. Cancelling is idempotent on the
// daemon, so it retries like every other call.
func (c *Client) Cancel(ctx context.Context, id string) (*service.Status, error) {
	resp, err := c.do(ctx, http.MethodPost, "/v1/jobs/"+id+"/cancel", nil, false)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st service.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Stats fetches the daemon's operational counters.
func (c *Client) Stats(ctx context.Context) (*service.Stats, error) {
	var st service.Stats
	if err := c.getJSON(ctx, "/v1/stats", &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Health probes the daemon.
func (c *Client) Health(ctx context.Context) error {
	resp, err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, false)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// Results opens the raw NDJSON result stream. For a live job it tails
// until the job reaches a terminal state; the caller must Close it. Only
// the open is retried — for mid-stream drop recovery use StreamResults,
// which resumes from the last line received.
func (c *Client) Results(ctx context.Context, id string) (io.ReadCloser, error) {
	return c.ResultsFrom(ctx, id, 0)
}

// ResultsFrom is Results with a resume offset: the response carries the
// stream's lines from index from onward — exactly the suffix a reader
// holding from lines is missing.
func (c *Client) ResultsFrom(ctx context.Context, id string, from int) (io.ReadCloser, error) {
	path := "/v1/jobs/" + id + "/results"
	if from > 0 {
		path += "?from=" + strconv.Itoa(from)
	}
	resp, err := c.do(ctx, http.MethodGet, path, nil, true)
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// fnError marks an error returned by the caller's line callback, which
// must abort the stream rather than trigger a reconnect.
type fnError struct{ err error }

func (e *fnError) Error() string { return e.err.Error() }
func (e *fnError) Unwrap() error { return e.err }

// StreamResults decodes the result stream line by line into fn, stopping
// on the first error fn returns. The summary (or error) line is the last
// call. A connection dropped mid-stream is resumed with ?from=<lines
// received>, so fn sees every line exactly once however many reconnects
// it takes; the retry budget refills whenever a reconnect makes progress.
func (c *Client) StreamResults(ctx context.Context, id string, fn func(service.Line) error) error {
	lines, attempts := 0, 0
	for {
		got, err := c.streamOnce(ctx, id, &lines, fn)
		var fe *fnError
		switch {
		case err == nil:
			return nil
		case errors.As(err, &fe):
			return fe.err
		case ctx.Err() != nil:
			return err
		}
		if got {
			attempts = 0 // progress: the daemon is alive, keep going
		}
		if attempts >= c.opts.Retries {
			return err
		}
		c.opts.sleep(ctx, c.backoff(attempts, 0))
		attempts++
	}
}

// streamOnce reads one connection's worth of the stream, resuming at
// *lines and advancing it per decoded line. got reports whether any line
// arrived. A stream that ends cleanly but without a terminal
// summary/error line was dropped by something that swallowed the EOF
// error (a proxy, a killed daemon) — it reports an error so the caller
// reconnects.
func (c *Client) streamOnce(ctx context.Context, id string, lines *int, fn func(service.Line) error) (got bool, err error) {
	body, err := c.ResultsFrom(ctx, id, *lines)
	if err != nil {
		return false, err
	}
	defer body.Close()
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	terminal := false
	for sc.Scan() {
		var line service.Line
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			// A torn line means the connection died mid-write; the resume
			// re-requests it whole.
			return got, fmt.Errorf("karyon-d: bad stream line: %w", err)
		}
		*lines++
		got = true
		terminal = line.Type == service.LineSummary || line.Type == service.LineError
		if err := fn(line); err != nil {
			return got, &fnError{err}
		}
	}
	if err := sc.Err(); err != nil {
		return got, err
	}
	if !terminal {
		return got, fmt.Errorf("karyon-d: stream ended without a terminal line (after %d lines)", *lines)
	}
	return got, nil
}

// Run is the one-call convenience karyon-sim -daemon uses: submit the
// spec, tail the stream to completion (resuming across drops), and return
// the aggregated report from the summary line. A failed or cancelled job
// surfaces its error line as an error.
func (c *Client) Run(ctx context.Context, spec service.JobSpec) (*service.Status, *harness.Report, error) {
	st, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, nil, err
	}
	var rep *harness.Report
	err = c.StreamResults(ctx, st.ID, func(line service.Line) error {
		switch line.Type {
		case service.LineSummary:
			rep = line.Report
		case service.LineError:
			return fmt.Errorf("karyon-d: job %.12s: %s", st.ID, line.Error)
		}
		return nil
	})
	if err != nil {
		return st, nil, err
	}
	if rep == nil {
		return st, nil, fmt.Errorf("karyon-d: job %.12s: stream ended without a summary", st.ID)
	}
	return st, rep, nil
}
