// Package serviceclient is the thin HTTP client for the karyon-d control
// API (internal/service). It speaks the wire types of that package —
// service.JobSpec in, service.Status and NDJSON service.Line streams out
// — and adds nothing on top: the daemon owns all semantics (deterministic
// job IDs, dedupe, the run cache), so the client stays a transport.
// karyon-sim's -daemon mode and the load-test benchmarks both drive it.
package serviceclient

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"karyon/internal/harness"
	"karyon/internal/service"
)

// APIError is a non-2xx control-API response.
type APIError struct {
	Code int
	Msg  string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("karyon-d: HTTP %d: %s", e.Code, e.Msg)
}

// Client talks to one karyon-d daemon.
type Client struct {
	base string
	http *http.Client
}

// New returns a client for the daemon at base (e.g.
// "http://127.0.0.1:7077"). The default http.Client is used; result
// streams can tail long-running jobs, so no client-side timeout is
// imposed — bound waits with the request context instead.
func New(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), http: &http.Client{}}
}

func (c *Client) do(ctx context.Context, method, path string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 300 {
		defer resp.Body.Close()
		var apiErr struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&apiErr); err == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		return nil, &APIError{Code: resp.StatusCode, Msg: msg}
	}
	return resp, nil
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	resp, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a job spec and returns the resolved job: fresh, deduped
// onto an in-flight run, or answered from the cache (Status.Cached).
func (c *Client) Submit(ctx context.Context, spec service.JobSpec) (*service.Status, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st service.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (*service.Status, error) {
	var st service.Status
	if err := c.getJSON(ctx, "/v1/jobs/"+id, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Jobs lists the daemon's known jobs in submission order.
func (c *Client) Jobs(ctx context.Context) ([]*service.Status, error) {
	var jobs []*service.Status
	if err := c.getJSON(ctx, "/v1/jobs", &jobs); err != nil {
		return nil, err
	}
	return jobs, nil
}

// Cancel stops a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (*service.Status, error) {
	resp, err := c.do(ctx, http.MethodPost, "/v1/jobs/"+id+"/cancel", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st service.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Stats fetches the daemon's operational counters.
func (c *Client) Stats(ctx context.Context) (*service.Stats, error) {
	var st service.Stats
	if err := c.getJSON(ctx, "/v1/stats", &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Health probes the daemon.
func (c *Client) Health(ctx context.Context) error {
	resp, err := c.do(ctx, http.MethodGet, "/v1/healthz", nil)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// Results opens the raw NDJSON result stream. For a live job it tails
// until the job reaches a terminal state; the caller must Close it.
func (c *Client) Results(ctx context.Context, id string) (io.ReadCloser, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/results", nil)
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// StreamResults decodes the result stream line by line into fn, stopping
// on the first error fn returns. The summary (or error) line is the last
// call.
func (c *Client) StreamResults(ctx context.Context, id string, fn func(service.Line) error) error {
	body, err := c.Results(ctx, id)
	if err != nil {
		return err
	}
	defer body.Close()
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	for sc.Scan() {
		var line service.Line
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return fmt.Errorf("karyon-d: bad stream line: %w", err)
		}
		if err := fn(line); err != nil {
			return err
		}
	}
	return sc.Err()
}

// Run is the one-call convenience karyon-sim -daemon uses: submit the
// spec, tail the stream to completion, and return the aggregated report
// from the summary line. A failed or cancelled job surfaces its error
// line as an error.
func (c *Client) Run(ctx context.Context, spec service.JobSpec) (*service.Status, *harness.Report, error) {
	st, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, nil, err
	}
	var rep *harness.Report
	err = c.StreamResults(ctx, st.ID, func(line service.Line) error {
		switch line.Type {
		case service.LineSummary:
			rep = line.Report
		case service.LineError:
			return fmt.Errorf("karyon-d: job %.12s: %s", st.ID, line.Error)
		}
		return nil
	})
	if err != nil {
		return st, nil, err
	}
	if rep == nil {
		return st, nil, fmt.Errorf("karyon-d: job %.12s: stream ended without a summary", st.ID)
	}
	return st, rep, nil
}
