package inaccess

import (
	"testing"

	"karyon/internal/sim"
	"karyon/internal/wireless"
)

type rig struct {
	k      *sim.Kernel
	medium *wireless.Medium
	meds   []*Mediator
}

func newRig(t *testing.T, seed int64, n, channels int, cfg Config) *rig {
	t.Helper()
	k := sim.NewKernel(seed)
	mcfg := wireless.DefaultConfig()
	mcfg.Channels = channels
	medium := wireless.NewMedium(k, mcfg)
	r := &rig{k: k, medium: medium}
	for i := 0; i < n; i++ {
		radio, err := medium.Attach(wireless.NodeID(i), wireless.Position{X: float64(i) * 10})
		if err != nil {
			t.Fatal(err)
		}
		med, err := New(k, medium, radio, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := med.Start(); err != nil {
			t.Fatal(err)
		}
		r.meds = append(r.meds, med)
	}
	return r
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.FailAfter = bad.HeartbeatInterval
	if err := bad.Validate(); err == nil {
		t.Fatal("FailAfter <= HeartbeatInterval must fail validation")
	}
	bad = cfg
	bad.ProbeInterval = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero probe interval must fail validation")
	}
	bad = cfg
	bad.Deadline = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero deadline must fail validation")
	}
}

func TestInaccessibilityDetectedAndClosed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HopEnabled = false
	r := newRig(t, 1, 2, 1, cfg)
	jam := 20 * sim.Millisecond
	r.k.Schedule(10*sim.Millisecond, func() { r.medium.Jam(0, jam) })
	r.k.RunFor(100 * sim.Millisecond)
	s := r.meds[0].Stats()
	if len(s.Periods) != 1 {
		t.Fatalf("periods = %d, want 1", len(s.Periods))
	}
	d := s.Periods[0].Duration()
	if d < 15*sim.Millisecond || d > 25*sim.Millisecond {
		t.Fatalf("measured inaccessibility %v, want ~20ms", d)
	}
	if r.meds[0].Inaccessible() {
		t.Fatal("episode not closed")
	}
}

func TestShortBusyDoesNotTrigger(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HopEnabled = false
	r := newRig(t, 2, 2, 1, cfg)
	// A jam shorter than DetectAfter must not be declared inaccessibility.
	r.k.Schedule(10*sim.Millisecond, func() { r.medium.Jam(0, sim.Millisecond) })
	r.k.RunFor(100 * sim.Millisecond)
	if n := len(r.meds[0].Stats().Periods); n != 0 {
		t.Fatalf("short jam produced %d inaccessibility periods", n)
	}
}

func TestChannelHopBoundsInaccessibility(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, 3, 4, 4, cfg)
	// A long jam on channel 0 only; other channels clear.
	longJam := 500 * sim.Millisecond
	r.k.Schedule(10*sim.Millisecond, func() { r.medium.Jam(0, longJam) })
	r.k.RunFor(sim.Second)
	for i, med := range r.meds {
		s := med.Stats()
		if s.Hops == 0 {
			t.Fatalf("mediator %d never hopped", i)
		}
		if med.Inaccessible() {
			t.Fatalf("mediator %d still inaccessible after hop", i)
		}
		for _, p := range s.Periods {
			// Bounded by detect + settle + probe slack, far below 500 ms.
			if p.Duration() > 20*sim.Millisecond {
				t.Fatalf("mediator %d episode %v not bounded by hop", i, p.Duration())
			}
		}
		if med.radioChannel() == 0 {
			t.Fatalf("mediator %d still on jammed channel", i)
		}
	}
	// All mediators must land on the same channel (deterministic sequence).
	ch := r.meds[0].radioChannel()
	for _, med := range r.meds[1:] {
		if med.radioChannel() != ch {
			t.Fatalf("mediators diverged: %d vs %d", med.radioChannel(), ch)
		}
	}
}

func TestMembershipSeesPeers(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, 4, 3, 1, cfg)
	r.k.RunFor(200 * sim.Millisecond)
	m := r.meds[0].Members()
	if len(m) != 2 || m[0] != 1 || m[1] != 2 {
		t.Fatalf("members = %v, want [1 2]", m)
	}
}

func TestCrashedPeerSuspected(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, 5, 3, 1, cfg)
	r.k.RunFor(100 * sim.Millisecond)
	var suspectedAt sim.Time
	r.meds[0].OnSuspect(func(id wireless.NodeID) {
		if id == 2 && suspectedAt == 0 {
			suspectedAt = r.k.Now()
		}
	})
	crashAt := 100 * sim.Millisecond
	r.meds[2].Stop()
	r.k.RunFor(400 * sim.Millisecond)
	if !r.meds[0].Suspected(2) {
		t.Fatal("crashed peer never suspected")
	}
	// The peer's last heartbeat may precede the crash by up to one period.
	if suspectedAt == 0 || suspectedAt < crashAt+cfg.FailAfter-cfg.HeartbeatInterval {
		t.Fatalf("suspected too early: %v", suspectedAt)
	}
	// Peer 1 is alive and must not be suspected.
	if r.meds[0].Suspected(1) {
		t.Fatal("live peer suspected")
	}
}

func TestJamDoesNotCauseFalseSuspicion(t *testing.T) {
	// The core R2T-MAC claim: with inaccessibility awareness, a jam longer
	// than the failure-detection timeout must not produce suspicions of
	// live peers. Without awareness it would (see contrast below).
	cfg := DefaultConfig()
	cfg.HopEnabled = false // no escape: jam covers the only channel
	r := newRig(t, 6, 3, 1, cfg)
	for _, med := range r.meds {
		med.SetAliveOracle(func(wireless.NodeID) bool { return true })
	}
	r.k.RunFor(100 * sim.Millisecond)
	r.medium.Jam(0, 300*sim.Millisecond) // 3x FailAfter
	r.k.RunFor(500 * sim.Millisecond)
	for i, med := range r.meds {
		if med.Stats().FalseSuspicions != 0 {
			t.Fatalf("mediator %d produced false suspicions under jam", i)
		}
		for _, peer := range []wireless.NodeID{0, 1, 2} {
			if peer == med.ID() {
				continue
			}
			if med.Suspected(peer) {
				t.Fatalf("mediator %d suspects live peer %d after jam", i, peer)
			}
		}
	}
}

func TestReliableSendDeliversAndAcks(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, 7, 2, 1, cfg)
	var delivered []DataFrame
	r.meds[1].OnData(func(f DataFrame) { delivered = append(delivered, f) })
	outcome := 0
	r.meds[0].SendReliable(1, "payload", func(ok bool) {
		if ok {
			outcome = 1
		} else {
			outcome = -1
		}
	})
	r.k.RunFor(100 * sim.Millisecond)
	if outcome != 1 {
		t.Fatalf("outcome = %d, want acked", outcome)
	}
	if len(delivered) != 1 || delivered[0].Body != "payload" || delivered[0].From != 0 {
		t.Fatalf("delivered = %+v", delivered)
	}
	s := r.meds[0].Stats()
	if s.DeliveredInTime != 1 || s.MissedDeadline != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestReliableSendRetriesThroughLoss(t *testing.T) {
	cfg := DefaultConfig()
	k := sim.NewKernel(8)
	mcfg := wireless.DefaultConfig()
	mcfg.LossProb = 0.5
	medium := wireless.NewMedium(k, mcfg)
	var meds []*Mediator
	for i := 0; i < 2; i++ {
		radio, err := medium.Attach(wireless.NodeID(i), wireless.Position{X: float64(i) * 10})
		if err != nil {
			t.Fatal(err)
		}
		med, err := New(k, medium, radio, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := med.Start(); err != nil {
			t.Fatal(err)
		}
		meds = append(meds, med)
	}
	meds[1].OnData(func(DataFrame) {})
	okCount, missCount := 0, 0
	for i := 0; i < 20; i++ {
		meds[0].SendReliable(1, i, func(ok bool) {
			if ok {
				okCount++
			} else {
				missCount++
			}
		})
		k.RunFor(60 * sim.Millisecond)
	}
	if okCount+missCount != 20 {
		t.Fatalf("outcomes = %d+%d, want 20 total", okCount, missCount)
	}
	// With 60% loss and 10 attempts within the deadline, the vast
	// majority must get through.
	if okCount < 17 {
		t.Fatalf("only %d/20 delivered through loss", okCount)
	}
}

func TestReliableSendDeadlineMiss(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, 9, 2, 1, cfg)
	// Jam the only channel for longer than the deadline: delivery must
	// fail and be reported as a timing failure.
	r.medium.Jam(0, 200*sim.Millisecond)
	missed := false
	r.meds[0].SendReliable(1, "x", func(ok bool) { missed = !ok })
	r.k.RunFor(300 * sim.Millisecond)
	if !missed {
		t.Fatal("deadline miss not reported under jam")
	}
	if r.meds[0].Stats().MissedDeadline != 1 {
		t.Fatalf("stats = %+v", r.meds[0].Stats())
	}
}

func TestDuplicateAckIgnored(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, 10, 2, 1, cfg)
	r.meds[1].OnData(func(DataFrame) {})
	completions := 0
	r.meds[0].SendReliable(1, "x", func(bool) { completions++ })
	r.k.RunFor(100 * sim.Millisecond)
	// Re-inject a duplicate ack by hand.
	r.meds[0].onFrame(wireless.Frame{From: 1, Payload: ackFrame{From: 1, To: 0, Seq: 1}})
	if completions != 1 {
		t.Fatalf("completions = %d, want exactly 1", completions)
	}
}

// radioChannel is a test helper exposing the mediator's current channel.
func (m *Mediator) radioChannel() int { return m.radio.Channel() }

func TestAllChannelsJammedNoEscape(t *testing.T) {
	// When interference covers every channel, hopping cannot help: the
	// inaccessibility must last the full burst on every channel visited,
	// and membership must still not produce false suspicions.
	cfg := DefaultConfig()
	r := newRig(t, 20, 3, 4, cfg)
	for _, med := range r.meds {
		med.SetAliveOracle(func(wireless.NodeID) bool { return true })
	}
	r.k.RunFor(100 * sim.Millisecond)
	for ch := 0; ch < 4; ch++ {
		r.medium.Jam(ch, 300*sim.Millisecond)
	}
	r.k.RunFor(250 * sim.Millisecond)
	for i, med := range r.meds {
		if !med.Inaccessible() {
			t.Fatalf("mediator %d not inaccessible under total jam", i)
		}
	}
	r.k.RunFor(400 * sim.Millisecond)
	for i, med := range r.meds {
		if med.Inaccessible() {
			t.Fatalf("mediator %d stuck inaccessible after total jam ended", i)
		}
		if med.Stats().FalseSuspicions != 0 {
			t.Fatalf("mediator %d false suspicions under total jam", i)
		}
	}
}
