// Package inaccess implements KARYON's R2T-MAC architecture (paper
// Sec. V-A1, Fig. 4): a Mediator Layer and a Channel Control Layer wrapped
// around a standard MAC/medium. The Mediator Layer detects periods of
// network inaccessibility (e.g. external interference), isolates their
// effects from upper layers (notably keeping failure detection from
// falsely suspecting live peers during a jam), and provides reliable
// real-time frame transmission with explicit timing-failure signalling.
// The Channel Control Layer exploits radio-channel diversity: when the
// current channel is found inaccessible, all mediators hop along the same
// deterministic channel sequence, bounding inaccessibility to the
// detection-plus-switch time instead of the interference duration.
package inaccess

import (
	"fmt"

	"karyon/internal/sim"
	"karyon/internal/wireless"
)

// Config parameterizes a Mediator.
type Config struct {
	// ProbeInterval is how often the carrier is sampled for jam detection.
	ProbeInterval sim.Time
	// DetectAfter declares inaccessibility when the carrier has been
	// continuously busy for this long.
	DetectAfter sim.Time
	// HopEnabled engages the Channel Control Layer (requires a multi-
	// channel medium).
	HopEnabled bool
	// HopSettle is the wait after a hop before the new channel may be
	// judged inaccessible again.
	HopSettle sim.Time
	// HeartbeatInterval is the membership beacon period.
	HeartbeatInterval sim.Time
	// FailAfter is the silence threshold after which a peer is suspected
	// failed. It must exceed HeartbeatInterval.
	FailAfter sim.Time
	// RetryInterval and Deadline control reliable transmission: frames are
	// retransmitted every RetryInterval until acked or Deadline passes.
	RetryInterval sim.Time
	Deadline      sim.Time
}

// DefaultConfig returns mediator parameters matched to the default medium.
func DefaultConfig() Config {
	return Config{
		ProbeInterval:     500 * sim.Microsecond,
		DetectAfter:       3 * sim.Millisecond,
		HopEnabled:        true,
		HopSettle:         2 * sim.Millisecond,
		HeartbeatInterval: 20 * sim.Millisecond,
		FailAfter:         100 * sim.Millisecond,
		RetryInterval:     5 * sim.Millisecond,
		Deadline:          50 * sim.Millisecond,
	}
}

// Validate checks config consistency.
func (c Config) Validate() error {
	if c.ProbeInterval <= 0 || c.HeartbeatInterval <= 0 {
		return fmt.Errorf("inaccess: intervals must be positive")
	}
	if c.FailAfter <= c.HeartbeatInterval {
		return fmt.Errorf("inaccess: FailAfter %v must exceed HeartbeatInterval %v",
			c.FailAfter, c.HeartbeatInterval)
	}
	if c.RetryInterval <= 0 || c.Deadline <= 0 {
		return fmt.Errorf("inaccess: retry/deadline must be positive")
	}
	return nil
}

// message kinds carried over the medium.
type heartbeat struct {
	ID wireless.NodeID
}

// DataFrame is a reliable-transmission payload.
type DataFrame struct {
	From wireless.NodeID
	To   wireless.NodeID
	Seq  uint64
	Body any
}

type ackFrame struct {
	From wireless.NodeID
	To   wireless.NodeID
	Seq  uint64
}

// Period records one detected inaccessibility episode.
type Period struct {
	Start sim.Time
	End   sim.Time
}

// Duration returns the episode length.
func (p Period) Duration() sim.Time { return p.End - p.Start }

// Stats aggregates mediator-level outcomes.
type Stats struct {
	// Periods are the closed inaccessibility episodes observed.
	Periods []Period
	// Hops counts channel switches performed.
	Hops int
	// DeliveredInTime / MissedDeadline count reliable sends.
	DeliveredInTime int
	MissedDeadline  int
	// FalseSuspicions counts peers suspected failed that were alive.
	FalseSuspicions int
}

// Mediator is one node's R2T-MAC instance.
type Mediator struct {
	cfg    Config
	kernel *sim.Kernel
	medium *wireless.Medium
	radio  *wireless.Radio

	// inaccessibility detection state
	busySince    sim.Time
	busy         bool
	inaccessible bool
	inaccStart   sim.Time
	settleUntil  sim.Time

	// membership
	lastHeard map[wireless.NodeID]sim.Time
	suspected map[wireless.NodeID]bool
	// alive is consulted for false-suspicion accounting in experiments.
	aliveFn func(wireless.NodeID) bool

	// reliable transmission
	nextSeq     uint64
	pending     map[uint64]*pendingSend
	ackHandlers map[uint64]func()

	// upper-layer delivery hook
	onData func(DataFrame)
	// onSuspect fires when a peer transitions to suspected.
	onSuspect func(wireless.NodeID)

	probeT *sim.Ticker
	hbT    *sim.Ticker

	stats   Stats
	stopped bool
}

type pendingSend struct {
	frame    DataFrame
	deadline sim.Time
	timer    sim.Timer
	acked    bool
}

// New creates a mediator over an already-attached radio.
func New(kernel *sim.Kernel, medium *wireless.Medium, radio *wireless.Radio, cfg Config) (*Mediator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Mediator{
		cfg:       cfg,
		kernel:    kernel,
		medium:    medium,
		radio:     radio,
		lastHeard: make(map[wireless.NodeID]sim.Time),
		suspected: make(map[wireless.NodeID]bool),
		pending:   make(map[uint64]*pendingSend),
	}
	radio.OnReceive(m.onFrame)
	return m, nil
}

// ID returns the node id.
func (m *Mediator) ID() wireless.NodeID { return m.radio.ID() }

// Stats returns a copy of accumulated statistics. An open inaccessibility
// episode is not included until it closes.
func (m *Mediator) Stats() Stats {
	cp := m.stats
	cp.Periods = append([]Period(nil), m.stats.Periods...)
	return cp
}

// Inaccessible reports whether the mediator currently declares the network
// inaccessible.
func (m *Mediator) Inaccessible() bool { return m.inaccessible }

// OnData registers the upper-layer delivery handler.
func (m *Mediator) OnData(fn func(DataFrame)) { m.onData = fn }

// OnSuspect registers a callback for new failure suspicions.
func (m *Mediator) OnSuspect(fn func(wireless.NodeID)) { m.onSuspect = fn }

// SetAliveOracle supplies ground truth about peer liveness, used only for
// false-suspicion accounting in experiments.
func (m *Mediator) SetAliveOracle(fn func(wireless.NodeID) bool) { m.aliveFn = fn }

// Start launches probing, heartbeating and membership checking.
func (m *Mediator) Start() error {
	pt, err := m.kernel.Every(m.cfg.ProbeInterval, m.probe)
	if err != nil {
		return err
	}
	m.probeT = pt
	// Heartbeats start at a random phase: synchronized beacons from every
	// node would collide on the shared medium every single period.
	phase := sim.Time(m.kernel.Rand().Int63n(int64(m.cfg.HeartbeatInterval)))
	m.kernel.Schedule(phase, func() {
		if m.stopped {
			return
		}
		ht, herr := m.kernel.Every(m.cfg.HeartbeatInterval, m.heartbeatTick)
		if herr != nil {
			return // interval validated in New
		}
		m.hbT = ht
	})
	return nil
}

// Stop halts the mediator (node crash or shutdown).
func (m *Mediator) Stop() {
	m.stopped = true
	if m.probeT != nil {
		m.probeT.Stop()
	}
	if m.hbT != nil {
		m.hbT.Stop()
	}
	for _, p := range m.pending {
		p.timer.Cancel()
	}
}

// probe samples the carrier and updates inaccessibility state; it is the
// Mediator Layer's "control of temporary network partitions".
func (m *Mediator) probe() {
	if m.stopped {
		return
	}
	now := m.kernel.Now()
	jammed := m.medium.Jammed(m.radio.Channel())
	if jammed {
		if !m.busy {
			m.busy = true
			m.busySince = now
		}
		if !m.inaccessible && now-m.busySince >= m.cfg.DetectAfter {
			m.inaccessible = true
			m.inaccStart = m.busySince
		}
		if m.inaccessible && m.cfg.HopEnabled && now >= m.settleUntil {
			m.hop()
		}
		return
	}
	m.busy = false
	if m.inaccessible {
		// Channel clear again: close the episode. Silence accumulated
		// during the episode is not failure evidence — reset every peer's
		// silence clock so a crash is (re)detected only from FailAfter of
		// *post-episode* silence.
		m.inaccessible = false
		m.stats.Periods = append(m.stats.Periods, Period{Start: m.inaccStart, End: now})
		floor := now - m.cfg.HeartbeatInterval
		for id, last := range m.lastHeard {
			if last < floor {
				m.lastHeard[id] = floor
			}
		}
	}
}

// hop advances to the next channel in the deterministic hop sequence. All
// mediators share the sequence, so they reconverge on the same channel
// without coordination.
func (m *Mediator) hop() {
	ch := (m.radio.Channel() + 1) % m.medium.Config().Channels
	if ch == m.radio.Channel() {
		return // single-channel medium: nothing to hop to
	}
	m.radio.SetChannel(ch)
	m.stats.Hops++
	m.settleUntil = m.kernel.Now() + m.cfg.HopSettle
	// The new channel may be clear: close the episode on the next probe.
	m.busy = false
}

// heartbeatTick broadcasts a heartbeat and runs the membership check.
func (m *Mediator) heartbeatTick() {
	if m.stopped {
		return
	}
	m.radio.Broadcast(heartbeat{ID: m.radio.ID()})
	m.checkMembership()
}

// checkMembership suspects peers silent for longer than FailAfter — except
// while the network is inaccessible: the paper's point is precisely that
// inaccessibility awareness must gate timing-failure detection, otherwise
// every jam produces a storm of false suspicions.
func (m *Mediator) checkMembership() {
	if m.inaccessible {
		return
	}
	now := m.kernel.Now()
	for id, last := range m.lastHeard {
		if m.suspected[id] {
			continue
		}
		silence := now - last
		if silence > m.cfg.FailAfter {
			m.suspected[id] = true
			if m.aliveFn != nil && m.aliveFn(id) {
				m.stats.FalseSuspicions++
			}
			if m.onSuspect != nil {
				m.onSuspect(id)
			}
		}
	}
}

// Suspected reports whether the mediator currently suspects the peer.
func (m *Mediator) Suspected(id wireless.NodeID) bool { return m.suspected[id] }

// Members returns the peers currently considered alive, sorted by id.
func (m *Mediator) Members() []wireless.NodeID {
	out := make([]wireless.NodeID, 0, len(m.lastHeard))
	for id := range m.lastHeard {
		if !m.suspected[id] {
			out = append(out, id)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// SendReliable transmits body to the peer with ack+retransmit until the
// configured deadline. done (optional) is invoked exactly once with the
// outcome: true if acked in time, false on deadline miss.
func (m *Mediator) SendReliable(to wireless.NodeID, body any, done func(ok bool)) {
	m.nextSeq++
	seq := m.nextSeq
	ps := &pendingSend{
		frame:    DataFrame{From: m.radio.ID(), To: to, Seq: seq, Body: body},
		deadline: m.kernel.Now() + m.cfg.Deadline,
	}
	m.pending[seq] = ps
	var attempt func()
	attempt = func() {
		if m.stopped || ps.acked {
			return
		}
		now := m.kernel.Now()
		if now >= ps.deadline {
			delete(m.pending, seq)
			m.stats.MissedDeadline++
			if done != nil {
				done(false)
			}
			return
		}
		m.radio.Broadcast(ps.frame)
		ps.timer = m.kernel.Schedule(m.cfg.RetryInterval, attempt)
	}
	// Remember the completion callback for ack handling.
	psDone := done
	psOnAck := func() {
		if ps.acked {
			return
		}
		ps.acked = true
		ps.timer.Cancel()
		delete(m.pending, seq)
		m.stats.DeliveredInTime++
		if psDone != nil {
			psDone(true)
		}
	}
	if m.ackHandlers == nil {
		m.ackHandlers = make(map[uint64]func())
	}
	m.ackHandlers[seq] = psOnAck
	attempt()
}

// onFrame dispatches received frames.
func (m *Mediator) onFrame(f wireless.Frame) {
	if m.stopped {
		return
	}
	now := m.kernel.Now()
	switch p := f.Payload.(type) {
	case heartbeat:
		m.noteAlive(p.ID, now)
	case DataFrame:
		m.noteAlive(p.From, now)
		if p.To != m.radio.ID() {
			return
		}
		m.radio.Broadcast(ackFrame{From: m.radio.ID(), To: p.From, Seq: p.Seq})
		if m.onData != nil {
			m.onData(p)
		}
	case ackFrame:
		m.noteAlive(p.From, now)
		if p.To != m.radio.ID() {
			return
		}
		if fn, ok := m.ackHandlers[p.Seq]; ok {
			delete(m.ackHandlers, p.Seq)
			fn()
		}
	}
}

// noteAlive refreshes membership state for a heard peer; hearing a
// previously suspected peer rehabilitates it.
func (m *Mediator) noteAlive(id wireless.NodeID, now sim.Time) {
	m.lastHeard[id] = now
	if m.suspected[id] {
		delete(m.suspected, id)
	}
}
