package sim

import (
	"cmp"
	"context"
	"fmt"
	"slices"
	"sync"
)

// SplitSeed derives an independent seed from (seed, stream) with a
// splitmix64-style mixer. Sharded models use it to give every entity (car,
// radio, sensor) its own deterministic random stream, so that a model's
// output does not depend on which shard an entity happens to run on.
func SplitSeed(seed, stream int64) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(stream)*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// message is one cross-shard mailbox entry: a callback addressed to a
// destination shard at (or after) a future instant. Sender identifies the
// originating entity — NOT the originating shard — so that the drain order
// is a pure function of the model, independent of how entities are
// partitioned.
type message struct {
	dst    int
	at     Time
	sender int64
	fn     func()
}

// Shard is one partition of a ShardedKernel: a private event queue (its own
// Kernel, with its own free list) plus an outbox of cross-shard messages.
// During a window, each shard runs on its own goroutine; a shard's Kernel
// and outbox must only be touched from that shard's events (or from the
// single-threaded barrier between windows).
type Shard struct {
	idx    int
	kernel *Kernel
	sk     *ShardedKernel
	outbox []message
}

// Index returns the shard's position in the partition.
func (s *Shard) Index() int { return s.idx }

// Kernel returns the shard's private event kernel.
func (s *Shard) Kernel() *Kernel { return s.kernel }

// Send enqueues fn for execution on shard dst at virtual instant at. It is
// the only legal way for one shard's events to affect another shard.
//
// Messages are buffered in the sending shard's outbox and drained at the
// next window barrier, sorted by (at, sender, send order). The conservative
// contract: at must be no earlier than the edge of the window in which Send
// is called (the model's lookahead guarantees a frame cannot affect a
// neighboring shard sooner). Earlier instants are clamped to the drain edge
// and counted in Clamped — a nonzero count means the model's lookahead
// claim is wrong.
//
// A message whose instant has arrived by drain time executes during the
// barrier itself (single-threaded, deterministic order); later instants are
// scheduled onto the destination shard's kernel.
func (s *Shard) Send(dst int, at Time, sender int64, fn func()) {
	if dst < 0 || dst >= len(s.sk.shards) {
		panic(fmt.Sprintf("sim: Send to unknown shard %d of %d", dst, len(s.sk.shards)))
	}
	s.outbox = append(s.outbox, message{dst: dst, at: at, sender: sender, fn: fn})
}

// ShardedKernel partitions one simulation across n shard kernels that
// advance in lockstep through conservative time windows. Within a window
// shards execute their event queues in parallel (one goroutine per shard);
// at each window edge a single-threaded barrier drains cross-shard
// mailboxes in deterministic order and runs the registered window hooks
// (state exchange, entity handoff).
//
// Determinism: for a model that (a) routes every cross-entity interaction
// through Send, (b) draws per-entity randomness from SplitSeed streams
// rather than shard kernels, and (c) accumulates shared metrics only at
// barriers in a fixed entity order, the run's output is byte-identical for
// every shard count — the window edges, drain order, and hook order are all
// independent of the partition.
type ShardedKernel struct {
	seed       int64
	window     Time
	now        Time
	shards     []*Shard
	hooks      []func(edge Time)
	shardHooks []func(shard int, edge Time)

	// drainBuf is the merged-outbox scratch reused across barriers so the
	// drain stops allocating once it reaches its high-water mark.
	drainBuf []message

	// barrierExec counts mailbox messages executed at barriers (they bypass
	// the shard kernels, so Executed must add them back in).
	barrierExec uint64
	clamped     uint64

	// failed latches the first window error: a poisoned sharded run must
	// not silently continue half-advanced.
	failed error

	// errs holds one per-shard slot for errors recovered inside a window,
	// reset (not reallocated) at every dispatch.
	errs []error

	// workers are the fan-out channels for shards 1..n-1; shard 0 always
	// runs inline on the coordinating goroutine. The worker goroutines
	// themselves live only for the duration of one Run call (an idle
	// kernel must hold no goroutines — tests build thousands and there is
	// no Close), but the channels are allocated once, so the steady-state
	// window dispatch allocates nothing.
	workers []chan shardJob
	wg      sync.WaitGroup // per-window shard completion
	stopWG  sync.WaitGroup // worker exit at the end of Run

	// spec, when non-nil, enables optimistic shard windows (see
	// speculate.go).
	spec *specController
}

// shardJob describes one window's worth of work for one shard. It is sent
// by value over the worker channels and carries no pointers, so dispatch
// does not allocate.
type shardJob struct {
	edge  Time
	prev  Time // previous edge (speculative windows only)
	spec  bool // speculative window: SpecOpen/run/SpecClose instead of lockstep
	first bool // first window of a speculative batch
	stop  bool // sentinel: worker exits
}

// NewShardedKernel creates a sharded kernel over n partitions with the
// given synchronization window (the model's conservative lookahead). Each
// shard kernel gets an independent seed derived from (seed, shard index);
// shard-count-invariant models should ignore these and use SplitSeed
// per-entity streams instead.
func NewShardedKernel(seed int64, n int, window Time) (*ShardedKernel, error) {
	if n < 1 {
		return nil, fmt.Errorf("sim: shard count %d must be at least 1", n)
	}
	if window <= 0 {
		return nil, fmt.Errorf("sim: sync window %d must be positive", window)
	}
	sk := &ShardedKernel{seed: seed, window: window}
	for i := 0; i < n; i++ {
		sk.shards = append(sk.shards, &Shard{
			idx:    i,
			kernel: NewKernel(SplitSeed(seed, int64(i)+1)),
			sk:     sk,
		})
	}
	sk.errs = make([]error, n)
	return sk, nil
}

// Seed returns the seed the sharded kernel was constructed with.
func (sk *ShardedKernel) Seed() int64 { return sk.seed }

// Window returns the synchronization window.
func (sk *ShardedKernel) Window() Time { return sk.window }

// Shards returns the number of partitions.
func (sk *ShardedKernel) Shards() int { return len(sk.shards) }

// Shard returns partition i.
func (sk *ShardedKernel) Shard(i int) *Shard { return sk.shards[i] }

// Now returns the last window edge every shard has reached.
func (sk *ShardedKernel) Now() Time { return sk.now }

// Executed returns the total number of events executed across all shards,
// including mailbox messages executed at barriers.
func (sk *ShardedKernel) Executed() uint64 {
	total := sk.barrierExec
	for _, s := range sk.shards {
		total += s.kernel.Executed()
	}
	return total
}

// Clamped reports how many cross-shard messages violated the conservative
// contract (scheduled before their drain edge) and were clamped to it.
func (sk *ShardedKernel) Clamped() uint64 { return sk.clamped }

// OnWindow registers a hook that runs single-threaded at every window edge,
// after the mailboxes have been drained. Hooks run in registration order;
// models use them for snapshot exchange, entity handoff, and metric
// accumulation in a fixed entity order.
func (sk *ShardedKernel) OnWindow(fn func(edge Time)) {
	sk.hooks = append(sk.hooks, fn)
}

// OnShardWindow registers a pre-barrier per-shard phase hook: it runs on
// every shard's own goroutine once that shard's event queue has drained to
// the window edge, before the single-threaded barrier (mailbox drain and
// OnWindow hooks). This is where a model does work that is parallel per
// partition but must complete before the barrier — e.g. refreshing and
// re-sorting a shard-local snapshot — so the barrier itself only pays for
// reconciliation, not for world-sized rebuilds.
//
// Discipline: the hook for shard i runs concurrently with other shards'
// event execution and hooks, so it must touch only state owned by shard i
// (plus immutable shared state). It must not Send, schedule events, or
// read other shards' entities.
func (sk *ShardedKernel) OnShardWindow(fn func(shard int, edge Time)) {
	sk.shardHooks = append(sk.shardHooks, fn)
}

// NextEdge returns the first window edge strictly after t... except when t
// is itself an edge, which is returned unchanged: an event running exactly
// at an edge belongs to the window that edge closes, so its mailbox
// messages drain at that same barrier.
func (sk *ShardedKernel) NextEdge(t Time) Time {
	if t <= 0 {
		return 0
	}
	return (t + sk.window - 1) / sk.window * sk.window
}

// Warp rewinds (or fast-forwards) the whole sharded kernel to a window
// edge without executing anything: every shard's event queue is emptied
// and its clock set to at, outboxes are cleared, and the barrier clock
// moves to at. The caller is responsible for re-seeding the model's
// state and event schedule for the window that opens at the target —
// this is the restore half of trace replay, the cross-run counterpart of
// the in-run speculation rollback. The target must be non-negative and
// on the window grid.
func (sk *ShardedKernel) Warp(at Time) error {
	if sk.failed != nil {
		return sk.failed
	}
	if at < 0 || at%sk.window != 0 {
		return fmt.Errorf("sim: warp target %v is not on the window grid (%v)", at, sk.window)
	}
	for _, s := range sk.shards {
		s.kernel.Rollback(KernelMark{now: at, executed: s.kernel.executed})
		for i := range s.outbox {
			s.outbox[i].fn = nil
		}
		s.outbox = s.outbox[:0]
	}
	sk.now = at
	return nil
}

// windowError wraps a panic recovered inside a sharded window so callers
// can identify which phase (shard execution, barrier drain, window hook)
// blew up.
func windowError(phase string, edge Time, p any) error {
	return fmt.Errorf("sim: panic in %s at window edge %v: %v", phase, edge, p)
}

// Run advances all shards to until, window by window. Barriers stay on
// the NextEdge grid (multiples of the window): a horizon that is not a
// window multiple closes with one short window, and the next Run
// re-aligns to the grid — so models computing delivery instants with
// NextEdge never violate the conservative contract across repeated Run
// calls. Run stops early with an error when ctx is cancelled (checked at
// every barrier, so a cancellation mid-window surfaces at the next edge
// rather than hanging) or when any shard event, drained message, or
// window hook panics. A failed sharded kernel stays failed: subsequent
// Run calls return the same error.
func (sk *ShardedKernel) Run(ctx context.Context, until Time) error {
	if sk.failed != nil {
		return sk.failed
	}
	sk.startWorkers()
	defer sk.stopWorkers()
	for sk.now < until {
		if err := ctx.Err(); err != nil {
			sk.failed = fmt.Errorf("sim: sharded run cancelled at %v: %w", sk.now, err)
			return sk.failed
		}
		if c := sk.spec; c != nil {
			if k := sk.planBatch(until); k > 0 {
				if err := sk.runBatch(k); err != nil {
					sk.failed = err
					return err
				}
				continue
			}
			if c.penalty > 0 {
				c.penalty--
			}
		}
		edge := sk.NextEdge(sk.now + 1)
		if edge > until {
			edge = until
		}
		if err := sk.runWindow(edge); err != nil {
			sk.failed = err
			return err
		}
	}
	return nil
}

// startWorkers spawns one worker goroutine per shard past the first for
// the duration of a Run call: every window inside the Run dispatches
// through the reused channels instead of spawning a goroutine per shard
// per window. The spawn cost is amortized over all the windows of the Run
// and an idle kernel holds no goroutines. Single-shard kernels skip the
// machinery entirely.
func (sk *ShardedKernel) startWorkers() {
	if len(sk.shards) == 1 {
		return
	}
	if sk.workers == nil {
		sk.workers = make([]chan shardJob, len(sk.shards)-1)
		for i := range sk.workers {
			sk.workers[i] = make(chan shardJob, 1)
		}
	}
	sk.stopWG.Add(len(sk.workers))
	for i, ch := range sk.workers {
		go sk.shardWorker(sk.shards[i+1], ch)
	}
}

// stopWorkers sends every worker its exit sentinel and waits for them to
// return, so a finished Run leaves no goroutines behind.
func (sk *ShardedKernel) stopWorkers() {
	if len(sk.shards) == 1 {
		return
	}
	for _, ch := range sk.workers {
		ch <- shardJob{stop: true}
	}
	sk.stopWG.Wait()
}

func (sk *ShardedKernel) shardWorker(s *Shard, jobs chan shardJob) {
	defer sk.stopWG.Done()
	for job := range jobs {
		if job.stop {
			return
		}
		sk.runShardWindow(s, job)
		sk.wg.Done()
	}
}

// runShardWindow executes one shard's half of one window — event-queue
// drain plus either the lockstep per-shard hooks or the speculative
// open/close callbacks — recording any panic in the shard's errs slot.
func (sk *ShardedKernel) runShardWindow(s *Shard, job shardJob) {
	defer func() {
		if p := recover(); p != nil {
			phase := "shard"
			if job.spec {
				phase = "speculative shard"
			}
			sk.errs[s.idx] = windowError(fmt.Sprintf("%s %d", phase, s.idx), job.edge, p)
		}
	}()
	if job.spec {
		c := sk.spec
		c.model.SpecOpen(s.idx, job.prev, job.first)
		s.kernel.Run(job.edge)
		ok := c.model.SpecClose(s.idx, job.edge)
		// A Send during a speculative window violates the speculation
		// contract; flag it as a conflict so the batch replays.
		if !ok || len(s.outbox) > 0 {
			c.bad[s.idx] = true
		}
		return
	}
	s.kernel.Run(job.edge)
	for _, fn := range sk.shardHooks {
		fn(s.idx, job.edge)
	}
}

// dispatch runs one window's parallel shard phase: shards 1..n-1 through
// the Run workers, shard 0 inline on the coordinating goroutine, returning
// once every shard has finished. Allocation-free in the steady state.
func (sk *ShardedKernel) dispatch(job shardJob) error {
	for i := range sk.errs {
		sk.errs[i] = nil
	}
	sk.wg.Add(len(sk.workers))
	for _, ch := range sk.workers {
		ch <- job
	}
	sk.runShardWindow(sk.shards[0], job)
	sk.wg.Wait()
	for _, err := range sk.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runWindow executes one window in parallel across shards, then performs
// the single-threaded barrier: mailbox drain followed by window hooks.
// Now() reads the new edge throughout the barrier — every shard kernel has
// already reached it.
func (sk *ShardedKernel) runWindow(edge Time) error {
	if err := sk.dispatch(shardJob{edge: edge}); err != nil {
		return err
	}
	sk.now = edge
	if err := sk.drain(edge); err != nil {
		return err
	}
	for _, hook := range sk.hooks {
		if err := runHook(hook, edge); err != nil {
			return err
		}
	}
	return nil
}

func runHook(hook func(Time), edge Time) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = windowError("window hook", edge, p)
		}
	}()
	hook(edge)
	return nil
}

// drain merges every shard's outbox and applies the messages in
// deterministic order: stable-sorted by (at, sender), which preserves each
// sender's program order because one sender's messages all live in one
// outbox. Messages due now execute at the barrier; future ones are
// scheduled onto their destination shard's kernel.
func (sk *ShardedKernel) drain(edge Time) (err error) {
	pending := sk.drainBuf[:0]
	for _, s := range sk.shards {
		pending = append(pending, s.outbox...)
		s.outbox = s.outbox[:0]
	}
	sk.drainBuf = pending[:0]
	if len(pending) == 0 {
		return nil
	}
	// Capture-free comparator: sort.SliceStable's interface boxing and
	// closure cost one allocation per barrier; the generic stable sort
	// costs none.
	slices.SortStableFunc(pending, func(a, b message) int {
		if c := cmp.Compare(a.at, b.at); c != 0 {
			return c
		}
		return cmp.Compare(a.sender, b.sender)
	})
	defer func() {
		if p := recover(); p != nil {
			err = windowError("mailbox drain", edge, p)
		}
	}()
	for _, m := range pending {
		if m.at <= edge {
			if m.at < edge {
				sk.clamped++
			}
			sk.barrierExec++
			m.fn()
			continue
		}
		sk.shards[m.dst].kernel.At(m.at, m.fn)
	}
	// Drop the closure references so the reused scratch does not pin a
	// window's worth of captures until the next barrier.
	for i := range pending {
		pending[i].fn = nil
	}
	return nil
}
