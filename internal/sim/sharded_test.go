package sim

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestShardedKernelValidation(t *testing.T) {
	if _, err := NewShardedKernel(1, 0, Millisecond); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := NewShardedKernel(1, 2, 0); err == nil {
		t.Fatal("zero window accepted")
	}
	sk, err := NewShardedKernel(7, 3, Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if sk.Shards() != 3 || sk.Seed() != 7 || sk.Window() != Millisecond {
		t.Fatalf("sk = %+v", sk)
	}
}

func TestSplitSeedStreamsAreDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for seed := int64(1); seed <= 3; seed++ {
		for stream := int64(0); stream < 100; stream++ {
			s := SplitSeed(seed, stream)
			if seen[s] {
				t.Fatalf("SplitSeed(%d,%d) collides", seed, stream)
			}
			seen[s] = true
			if s != SplitSeed(seed, stream) {
				t.Fatal("SplitSeed not deterministic")
			}
		}
	}
}

// Shards advance in lockstep: after Run, every shard kernel rests at the
// horizon and events scheduled inside windows have executed.
func TestShardedKernelLockstep(t *testing.T) {
	sk, err := NewShardedKernel(1, 4, 10*Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var fired [4]int
	for i := 0; i < 4; i++ {
		i := i
		k := sk.Shard(i).Kernel()
		if _, err := k.Every(3*Millisecond, func() { fired[i]++ }); err != nil {
			t.Fatal(err)
		}
	}
	if err := sk.Run(context.Background(), 30*Millisecond); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if got := sk.Shard(i).Kernel().Now(); got != 30*Millisecond {
			t.Fatalf("shard %d at %v, want 30ms", i, got)
		}
		if fired[i] != 10 {
			t.Fatalf("shard %d fired %d, want 10", i, fired[i])
		}
	}
	if sk.Now() != 30*Millisecond {
		t.Fatalf("Now = %v", sk.Now())
	}
}

// Cross-shard messages drain at window edges in (at, sender) order,
// independent of which shard sent them or in which order shards ran.
func TestShardedKernelMailboxOrder(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		sk, err := NewShardedKernel(1, 3, 10*Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		for i := 0; i < 3; i++ {
			s := sk.Shard(i)
			sender := int64(i)
			s.Kernel().Schedule(Millisecond*Time(i+1), func() {
				edge := sk.NextEdge(s.Kernel().Now())
				s.Send((s.Index()+1)%3, edge, sender, func() {
					got = append(got, fmt.Sprintf("m%d", sender))
				})
			})
		}
		if err := sk.Run(context.Background(), 10*Millisecond); err != nil {
			t.Fatal(err)
		}
		if want := "m0,m1,m2"; strings.Join(got, ",") != want {
			t.Fatalf("drain order = %v, want %s", got, want)
		}
	}
}

// A message with an instant beyond the drain edge is scheduled onto the
// destination shard's kernel and executes in the correct later window.
func TestShardedKernelFutureMessage(t *testing.T) {
	sk, err := NewShardedKernel(1, 2, 10*Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var at Time
	src := sk.Shard(0)
	src.Kernel().Schedule(Millisecond, func() {
		src.Send(1, 25*Millisecond, 0, func() { at = sk.Shard(1).Kernel().Now() })
	})
	if err := sk.Run(context.Background(), 40*Millisecond); err != nil {
		t.Fatal(err)
	}
	if at != 25*Millisecond {
		t.Fatalf("future message ran at %v, want 25ms", at)
	}
	if sk.Clamped() != 0 {
		t.Fatalf("clamped = %d", sk.Clamped())
	}
}

// Messages violating the conservative contract are clamped to the drain
// edge and counted — a nonzero count flags a broken lookahead claim.
func TestShardedKernelClampsContractViolations(t *testing.T) {
	sk, err := NewShardedKernel(1, 2, 10*Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var ranAt Time
	src := sk.Shard(0)
	src.Kernel().Schedule(7*Millisecond, func() {
		src.Send(1, 8*Millisecond, 0, func() { ranAt = sk.Now() })
	})
	if err := sk.Run(context.Background(), 20*Millisecond); err != nil {
		t.Fatal(err)
	}
	if sk.Clamped() != 1 {
		t.Fatalf("clamped = %d, want 1", sk.Clamped())
	}
	if ranAt != 10*Millisecond { // executed during the 10ms barrier
		t.Fatalf("clamped message observed Now = %v", ranAt)
	}
}

// Executed sums shard kernels plus barrier-drained messages.
func TestShardedKernelExecutedCount(t *testing.T) {
	sk, err := NewShardedKernel(1, 2, 10*Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	src := sk.Shard(0)
	src.Kernel().Schedule(Millisecond, func() {
		src.Send(1, 10*Millisecond, 0, func() {})
	})
	if err := sk.Run(context.Background(), 10*Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := sk.Executed(); got != 2 {
		t.Fatalf("Executed = %d, want 2 (one event + one drained message)", got)
	}
}

func TestShardedKernelWindowHooks(t *testing.T) {
	sk, err := NewShardedKernel(1, 2, 10*Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var edges []Time
	sk.OnWindow(func(edge Time) { edges = append(edges, edge) })
	if err := sk.Run(context.Background(), 25*Millisecond); err != nil {
		t.Fatal(err)
	}
	want := []Time{10 * Millisecond, 20 * Millisecond, 25 * Millisecond}
	if len(edges) != len(want) {
		t.Fatalf("edges = %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("edges = %v, want %v", edges, want)
		}
	}
	// A continuation after an off-grid horizon re-aligns barriers to the
	// window grid, so NextEdge-based delivery instants stay conservative.
	edges = edges[:0]
	if err := sk.Run(context.Background(), 50*Millisecond); err != nil {
		t.Fatal(err)
	}
	cont := []Time{30 * Millisecond, 40 * Millisecond, 50 * Millisecond}
	if len(edges) != len(cont) {
		t.Fatalf("continuation edges = %v, want %v", edges, cont)
	}
	for i := range cont {
		if edges[i] != cont[i] {
			t.Fatalf("continuation edges = %v, want %v", edges, cont)
		}
	}
}

// A panic inside a shard's event must surface as an error identifying the
// shard, and the kernel must stay poisoned.
func TestShardedKernelShardPanicSurfaces(t *testing.T) {
	sk, err := NewShardedKernel(1, 3, 10*Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	sk.Shard(2).Kernel().Schedule(Millisecond, func() { panic("boom") })
	err = sk.Run(context.Background(), 30*Millisecond)
	if err == nil || !strings.Contains(err.Error(), "shard 2") || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
	if err2 := sk.Run(context.Background(), 60*Millisecond); err2 == nil || err2.Error() != err.Error() {
		t.Fatalf("poisoned kernel re-ran: %v", err2)
	}
}

// A panic inside the barrier (mailbox drain or window hook) must surface
// too — this is the "replica panics inside a shard barrier" failure path.
func TestShardedKernelBarrierPanicSurfaces(t *testing.T) {
	sk, err := NewShardedKernel(1, 2, 10*Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	src := sk.Shard(0)
	src.Kernel().Schedule(Millisecond, func() {
		src.Send(1, 10*Millisecond, 0, func() { panic("mailbox boom") })
	})
	err = sk.Run(context.Background(), 30*Millisecond)
	if err == nil || !strings.Contains(err.Error(), "mailbox drain") {
		t.Fatalf("err = %v", err)
	}

	sk2, err := NewShardedKernel(1, 2, 10*Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	sk2.OnWindow(func(Time) { panic("hook boom") })
	err = sk2.Run(context.Background(), 30*Millisecond)
	if err == nil || !strings.Contains(err.Error(), "window hook") {
		t.Fatalf("err = %v", err)
	}
}

// Cancellation mid-window surfaces as an error at the next barrier — never
// a hang, never a silent partial run.
func TestShardedKernelCancellation(t *testing.T) {
	sk, err := NewShardedKernel(1, 2, 10*Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var windows atomic.Int64
	sk.OnWindow(func(Time) {
		if windows.Add(1) == 2 {
			cancel()
		}
	})
	err = sk.Run(ctx, Second)
	if err == nil || !strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("err = %v", err)
	}
	if got := sk.Now(); got != 20*Millisecond {
		t.Fatalf("cancelled at %v, want 20ms", got)
	}
	if err2 := sk.Run(context.Background(), Second); err2 == nil {
		t.Fatal("cancelled kernel re-ran")
	}
}

// OnShardWindow hooks run on every shard for every window, after the
// shard's events have reached the edge and strictly before the barrier's
// mailbox drain and OnWindow hooks.
func TestOnShardWindowRunsPerShardBeforeBarrier(t *testing.T) {
	const shards = 3
	sk, err := NewShardedKernel(1, shards, 10*Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Each shard appends to its own slot (shard-owned state, no locks);
	// the barrier hook checks every shard reached this edge.
	edges := make([][]Time, shards)
	stepped := make([]Time, shards)
	for i := 0; i < shards; i++ {
		i := i
		sk.Shard(i).Kernel().At(5*Millisecond, func() { stepped[i] = 5 * Millisecond })
	}
	sk.OnShardWindow(func(shard int, edge Time) {
		if sk.Shard(shard).Kernel().Now() != edge {
			t.Errorf("shard %d hook at kernel time %v, want %v", shard, sk.Shard(shard).Kernel().Now(), edge)
		}
		edges[shard] = append(edges[shard], edge)
	})
	sk.OnWindow(func(edge Time) {
		for s := 0; s < shards; s++ {
			if n := len(edges[s]); n == 0 || edges[s][n-1] != edge {
				t.Errorf("barrier at %v before shard %d's phase hook", edge, s)
			}
		}
	})
	if err := sk.Run(context.Background(), 30*Millisecond); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < shards; s++ {
		if len(edges[s]) != 3 {
			t.Fatalf("shard %d ran %d phase hooks, want 3", s, len(edges[s]))
		}
		if stepped[s] != 5*Millisecond {
			t.Fatalf("shard %d event did not run before its phase hook", s)
		}
		for w, e := range edges[s] {
			if want := Time(w+1) * 10 * Millisecond; e != want {
				t.Fatalf("shard %d window %d edge %v, want %v", s, w, e, want)
			}
		}
	}
}

// A panicking per-shard phase hook surfaces as that shard's window error.
func TestOnShardWindowPanicSurfaces(t *testing.T) {
	sk, err := NewShardedKernel(1, 2, 10*Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	sk.OnShardWindow(func(shard int, _ Time) {
		if shard == 1 {
			panic("phase boom")
		}
	})
	err = sk.Run(context.Background(), 30*Millisecond)
	if err == nil || !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("err = %v", err)
	}
}
