package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	k := NewKernel(1)
	var got []int
	k.Schedule(30*Millisecond, func() { got = append(got, 3) })
	k.Schedule(10*Millisecond, func() { got = append(got, 1) })
	k.Schedule(20*Millisecond, func() { got = append(got, 2) })
	k.RunUntilIdle()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 30*Millisecond {
		t.Fatalf("Now() = %v, want 30ms", k.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	k := NewKernel(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(5*Millisecond, func() { got = append(got, i) })
	}
	k.RunUntilIdle()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	k := NewKernel(1)
	k.Schedule(10*Millisecond, func() {})
	k.RunUntilIdle()
	fired := false
	k.Schedule(-5*Millisecond, func() { fired = true })
	k.RunUntilIdle()
	if !fired {
		t.Fatal("negative-delay event did not fire")
	}
	if k.Now() != 10*Millisecond {
		t.Fatalf("clock moved backwards: %v", k.Now())
	}
}

func TestAtPastClamped(t *testing.T) {
	k := NewKernel(1)
	k.Schedule(20*Millisecond, func() {})
	k.RunUntilIdle()
	var at Time
	k.At(5*Millisecond, func() { at = k.Now() })
	k.RunUntilIdle()
	if at != 20*Millisecond {
		t.Fatalf("past At fired at %v, want clamp to 20ms", at)
	}
}

func TestTimerCancel(t *testing.T) {
	k := NewKernel(1)
	fired := false
	tm := k.Schedule(10*Millisecond, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending before run")
	}
	if !tm.Cancel() {
		t.Fatal("first Cancel should report true")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel should report false")
	}
	k.RunUntilIdle()
	if fired {
		t.Fatal("canceled timer fired")
	}
	if tm.Pending() {
		t.Fatal("canceled timer still pending")
	}
}

func TestTimerPendingAfterFire(t *testing.T) {
	k := NewKernel(1)
	tm := k.Schedule(1*Millisecond, func() {})
	k.RunUntilIdle()
	if tm.Pending() {
		t.Fatal("fired timer reports pending")
	}
	if tm.Cancel() {
		t.Fatal("Cancel after fire should report false")
	}
}

func TestRunHorizon(t *testing.T) {
	k := NewKernel(1)
	fired := make([]bool, 2)
	k.Schedule(10*Millisecond, func() { fired[0] = true })
	k.Schedule(30*Millisecond, func() { fired[1] = true })
	k.Run(20 * Millisecond)
	if !fired[0] || fired[1] {
		t.Fatalf("horizon run executed wrong events: %v", fired)
	}
	if k.Now() != 20*Millisecond {
		t.Fatalf("clock after horizon run = %v, want 20ms", k.Now())
	}
	k.Run(40 * Millisecond)
	if !fired[1] {
		t.Fatal("second run did not execute deferred event")
	}
}

func TestRunForComposes(t *testing.T) {
	k := NewKernel(1)
	count := 0
	tk, err := k.Every(10*Millisecond, func() { count++ })
	if err != nil {
		t.Fatal(err)
	}
	k.RunFor(35 * Millisecond)
	if count != 3 {
		t.Fatalf("ticks after 35ms = %d, want 3", count)
	}
	k.RunFor(35 * Millisecond)
	if count != 7 {
		t.Fatalf("ticks after 70ms = %d, want 7", count)
	}
	tk.Stop()
	k.RunFor(100 * Millisecond)
	if count != 7 {
		t.Fatalf("ticker fired after Stop: %d", count)
	}
}

func TestEveryRejectsNonPositive(t *testing.T) {
	k := NewKernel(1)
	if _, err := k.Every(0, func() {}); err == nil {
		t.Fatal("Every(0) should error")
	}
	if _, err := k.Every(-Second, func() {}); err == nil {
		t.Fatal("Every(-1s) should error")
	}
}

func TestStopInsideEvent(t *testing.T) {
	k := NewKernel(1)
	ran := 0
	k.Schedule(Millisecond, func() { ran++; k.Stop() })
	k.Schedule(2*Millisecond, func() { ran++ })
	k.Run(10 * Millisecond)
	if ran != 1 {
		t.Fatalf("Stop did not halt loop: ran=%d", ran)
	}
	k.Run(10 * Millisecond)
	if ran != 2 {
		t.Fatalf("run after Stop did not resume: ran=%d", ran)
	}
}

func TestDeterminismAcrossKernels(t *testing.T) {
	trace := func(seed int64) []int64 {
		k := NewKernel(seed)
		var out []int64
		for i := 0; i < 50; i++ {
			d := Time(k.Rand().Intn(1000)) * Millisecond
			k.Schedule(d, func() { out = append(out, int64(k.Now())) })
		}
		k.RunUntilIdle()
		return out
	}
	a, b := trace(42), trace(42)
	if len(a) != len(b) {
		t.Fatal("trace lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("determinism violated at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := trace(43)
	same := true
	for i := range a {
		if i >= len(c) || a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces (suspicious)")
	}
}

func TestTimeConversions(t *testing.T) {
	if FromDuration(1500*time.Millisecond) != 1500*Millisecond {
		t.Fatal("FromDuration mismatch")
	}
	if FromSeconds(2.5) != 2500*Millisecond {
		t.Fatal("FromSeconds mismatch")
	}
	if (3 * Second).Seconds() != 3.0 {
		t.Fatal("Seconds() mismatch")
	}
	if (2 * Millisecond).Duration() != 2*time.Millisecond {
		t.Fatal("Duration() mismatch")
	}
}

// Property: events always execute in non-decreasing time order regardless of
// the scheduling pattern.
func TestPropertyMonotonicExecution(t *testing.T) {
	f := func(delays []uint16) bool {
		k := NewKernel(7)
		var times []Time
		for _, d := range delays {
			k.Schedule(Time(d)*Microsecond, func() {
				times = append(times, k.Now())
			})
		}
		k.RunUntilIdle()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: nested scheduling from inside events preserves ordering and
// executes everything.
func TestPropertyNestedScheduling(t *testing.T) {
	f := func(spec []uint8) bool {
		k := NewKernel(11)
		executed := 0
		total := 0
		for _, n := range spec {
			nested := int(n % 5)
			total += 1 + nested
			k.Schedule(Time(n)*Millisecond, func() {
				executed++
				for j := 0; j < nested; j++ {
					k.Schedule(Time(j)*Microsecond, func() { executed++ })
				}
			})
		}
		k.RunUntilIdle()
		return executed == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDriftClock(t *testing.T) {
	k := NewKernel(1)
	fast := NewDriftClock(k, 100e-6, 0) // +100 ppm
	slow := NewDriftClock(k, -100e-6, 0)
	ref := NewDriftClock(k, 0, 0)
	k.Schedule(10*Second, func() {})
	k.RunUntilIdle()
	if ref.Now() != 10*Second {
		t.Fatalf("zero-drift clock = %v, want 10s", ref.Now())
	}
	// After 10 s, ±100 ppm is ±1 ms.
	if got := fast.ErrorVersus(ref); got != Millisecond {
		t.Fatalf("fast clock error = %v, want 1ms", got)
	}
	if got := slow.ErrorVersus(ref); got != -Millisecond {
		t.Fatalf("slow clock error = %v, want -1ms", got)
	}
	fast.Adjust(-Millisecond)
	if got := fast.ErrorVersus(ref); got != 0 {
		t.Fatalf("adjusted clock error = %v, want 0", got)
	}
	if fast.Offset() != -Millisecond {
		t.Fatalf("offset = %v, want -1ms", fast.Offset())
	}
	if fast.Drift() != 100e-6 {
		t.Fatalf("drift = %v", fast.Drift())
	}
}

func TestExecutedCounter(t *testing.T) {
	k := NewKernel(1)
	for i := 0; i < 5; i++ {
		k.Schedule(Time(i)*Millisecond, func() {})
	}
	tm := k.Schedule(6*Millisecond, func() {})
	tm.Cancel()
	k.RunUntilIdle()
	if k.Executed() != 5 {
		t.Fatalf("Executed = %d, want 5 (canceled events must not count)", k.Executed())
	}
}

func TestTickerStopsItselfInsideCallback(t *testing.T) {
	k := NewKernel(1)
	count := 0
	var tk *Ticker
	var err error
	tk, err = k.Every(10*Millisecond, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RunFor(Second)
	if count != 3 {
		t.Fatalf("self-stopping ticker fired %d times, want 3", count)
	}
}

func TestPendingCount(t *testing.T) {
	k := NewKernel(1)
	if k.Pending() != 0 {
		t.Fatal("fresh kernel has pending events")
	}
	k.Schedule(Millisecond, func() {})
	k.Schedule(2*Millisecond, func() {})
	if k.Pending() != 2 {
		t.Fatalf("Pending = %d", k.Pending())
	}
	k.RunUntilIdle()
	if k.Pending() != 0 {
		t.Fatalf("Pending after drain = %d", k.Pending())
	}
}

func TestSeedAccessor(t *testing.T) {
	if got := NewKernel(42).Seed(); got != 42 {
		t.Fatalf("Seed() = %d, want 42", got)
	}
}

// A Timer held across its event's firing must not be able to cancel or
// observe the event struct after the kernel recycles it for a later
// callback: the seq fence makes stale handles inert.
func TestStaleTimerCannotTouchRecycledEvent(t *testing.T) {
	k := NewKernel(1)
	stale := k.Schedule(Millisecond, func() {})
	if !k.Step() {
		t.Fatal("no event to step")
	}
	// The freed struct is reused for the next scheduled event.
	fired := false
	fresh := k.Schedule(Millisecond, func() { fired = true })
	if stale.Pending() {
		t.Fatal("stale timer reports pending after reuse")
	}
	if stale.Cancel() {
		t.Fatal("stale timer canceled a recycled event")
	}
	if !fresh.Pending() {
		t.Fatal("fresh timer lost its event to a stale handle")
	}
	k.RunUntilIdle()
	if !fired {
		t.Fatal("recycled event never fired")
	}
}

// Steady-state scheduling must not allocate: fired events are recycled
// through the kernel's free list.
func TestScheduleStepDoesNotAllocateSteadyState(t *testing.T) {
	k := NewKernel(1)
	fn := func() {}
	k.Schedule(Microsecond, fn)
	k.Step()
	allocs := testing.AllocsPerRun(1000, func() {
		k.Schedule(Microsecond, fn)
		k.Step()
	})
	if allocs > 0 {
		t.Fatalf("Schedule+Step allocates %.1f objects/op in steady state, want 0", allocs)
	}
}
